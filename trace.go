package audb

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/metrics"
	"github.com/audb/audb/internal/obs"
	"github.com/audb/audb/internal/opt"
	"github.com/audb/audb/internal/phys"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/sql"
)

// QueryTrace is the span tree for one traced execution: parse →
// optimize (one child span per effective rule, with the rule trace's
// timings) → cost-based planning → physical lowering → execution (one
// child span per physical operator, carrying the same rows/est/batches
// counters ExplainAnalyze reports). The traced query really runs;
// Result holds its answer.
type QueryTrace struct {
	Query  string
	Root   *obs.Span
	Result *Result
}

// String renders the span tree (the audbsh \trace output).
func (t *QueryTrace) String() string { return t.Root.String() }

// Trace compiles and executes a query with the full lifecycle
// instrumented. Options compose as for QueryContext; like
// ExplainAnalyze, only the native engine is instrumented, and the
// execution is the analyzed physical plan (per-operator counters on).
// Cancelling ctx aborts the execution.
func (d *Database) Trace(ctx context.Context, q string, opts ...QueryOption) (*QueryTrace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := d.resolve(opts)
	if cfg.engine != EngineNative {
		return nil, fmt.Errorf("audb: Trace instruments the native engine only (got engine %v)", cfg.engine)
	}
	root := obs.StartSpan("query")
	root.SetAttr("sql", q)

	snap := d.cat.Snapshot()
	cat := ra.CatalogMap(snap.Schemas())
	sp := root.StartChild("parse")
	plan, err := sql.Compile(q, cat)
	sp.End()
	if err != nil {
		return nil, err
	}

	if cfg.optimizer == OptimizerOn {
		sp = root.StartChild("optimize")
		optimized, tr, err := opt.OptimizeTrace(plan, cat)
		sp.End()
		if err != nil {
			return nil, err
		}
		sp.SetInt("passes", int64(tr.Passes))
		for _, s := range tr.Steps {
			rule := &obs.Span{Name: "rule " + s.Rule, Dur: s.Elapsed}
			rule.SetInt("pass", int64(s.Pass))
			sp.Attach(rule)
		}
		plan = optimized
	}

	var est *opt.Annotations
	if d.costEnabled(cfg) {
		sp = root.StartChild("cost")
		var steps []opt.Step
		plan, est, steps, err = opt.CostOptimizeTrace(plan, cat, d.st)
		sp.End()
		if err != nil {
			return nil, err
		}
		for _, s := range steps {
			sp.Attach(&obs.Span{Name: "rule " + s.Rule, Dur: s.Elapsed})
		}
		if rows, ok := est.EstRows(plan); ok {
			sp.SetInt("est_rows", rows)
		}
	}

	mode := phys.Pipelined
	if cfg.execMode == ExecMaterialized {
		mode = phys.Materialized
	}
	sp = root.StartChild("lower")
	pp, err := phys.Compile(plan, snap, phys.Options{Mode: mode, Exec: cfg.opts, Analyze: true, Est: est})
	sp.End()
	if err != nil {
		return nil, err
	}

	ex := root.StartChild("execute")
	res, err := pp.Execute(ctx)
	ex.End()
	if err != nil {
		return nil, err
	}
	if st := pp.Stats(); st != nil {
		ex.SetAttr("mode", st.Mode)
		ex.SetInt("batch_size", int64(st.BatchSize))
		if st.Root != nil {
			ex.Attach(opSpan(st.Root))
		}
	}
	root.SetInt("rows", int64(res.Len()))
	root.End()
	return &QueryTrace{Query: q, Root: root, Result: res}, nil
}

// opSpan converts one operator's execution counters into a pre-timed
// span, adopting metrics.OpStats as the span payload.
func opSpan(o *metrics.OpStats) *obs.Span {
	s := &obs.Span{Name: o.Op, Dur: o.Elapsed}
	s.SetAttr("strategy", o.Strategy)
	s.SetInt("rows", o.Rows)
	if o.HasEst {
		s.SetInt("est", o.EstRows)
	}
	s.SetInt("batches", o.Batches)
	for _, c := range o.Children {
		s.Attach(opSpan(c))
	}
	return s
}
