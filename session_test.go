package audb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/testutil"
)

// randomDB builds a database with two random uncertain tables. Ranges,
// optional tuples and duplicate multiplicities are all exercised so the
// engine-equivalence corpus covers the attribute- and tuple-level
// uncertainty cases of the paper.
func randomDB(rng *rand.Rand, rows int) *Database {
	mk := func(name string, cols ...string) *UncertainTable {
		t := NewUncertainTable(name, cols...)
		for i := 0; i < rows; i++ {
			row := make(RangeRow, len(cols))
			for c := range cols {
				sg := int64(rng.Intn(6))
				switch rng.Intn(3) {
				case 0:
					row[c] = CertainOf(Int(sg))
				case 1:
					row[c] = Range(Int(sg-int64(rng.Intn(2))), Int(sg), Int(sg+int64(rng.Intn(3))))
				default:
					row[c] = Range(Int(0), Int(sg), Int(5))
				}
			}
			m := CertainMult(int64(1 + rng.Intn(2)))
			if rng.Intn(4) == 0 {
				m = Mult(0, 1, 1+int64(rng.Intn(2)))
			}
			t.AddRow(row, m)
		}
		return t
	}
	db := New()
	db.Add(mk("r", "a", "b"))
	db.Add(mk("s", "c", "d"))
	return db
}

// sessionCorpus is the query corpus for the dispatcher equivalence and
// prepared-statement tests: selection, projection expressions, grouping
// aggregation and an equi-join, all through the SQL front end.
var sessionCorpus = []string{
	`SELECT a, b FROM r WHERE a <= 3`,
	`SELECT a + b AS ab FROM r`,
	`SELECT b, sum(a) AS s, count(*) AS n FROM r GROUP BY b`,
	`SELECT min(a) AS lo, max(b) AS hi, avg(a) AS m FROM r`,
	`SELECT b, d FROM r JOIN s ON a = c`,
	`SELECT b, sum(d) AS sd FROM r JOIN s ON a = c GROUP BY b`,
}

// TestDispatcherEngineEquivalence is Theorem 8 cross-checked through the
// new dispatcher: WithEngine(EngineNative) and WithEngine(EngineRewrite)
// must produce identical AU-relations on the property-test corpus, and
// the selected-guess world of either must equal the EngineSGW answer.
func TestDispatcherEngineEquivalence(t *testing.T) {
	ctx := context.Background()
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial * 131)))
		db := randomDB(rng, 2+rng.Intn(6))
		for _, q := range sessionCorpus {
			native, err := db.QueryContext(ctx, q, WithEngine(EngineNative))
			if err != nil {
				t.Fatalf("[trial %d] %s: native: %v", trial, q, err)
			}
			rewritten, err := db.QueryContext(ctx, q, WithEngine(EngineRewrite))
			if err != nil {
				t.Fatalf("[trial %d] %s: rewrite: %v", trial, q, err)
			}
			if native.Sort().String() != rewritten.Sort().String() {
				t.Fatalf("[trial %d] %s: native vs rewrite mismatch:\n%s\nvs\n%s",
					trial, q, native, rewritten)
			}
			sgw, err := db.QueryContext(ctx, q, WithEngine(EngineSGW))
			if err != nil {
				t.Fatalf("[trial %d] %s: sgw: %v", trial, q, err)
			}
			if !native.SGW().Equal(sgw.SGW()) {
				t.Fatalf("[trial %d] %s: SGW embedding broken:\n%s\nvs\n%s",
					trial, q, native.SGW(), sgw.SGW())
			}
		}
	}
}

// TestDeprecatedWrappersDelegate: the legacy single-shot methods must give
// exactly the dispatcher's answers.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(7)), 5)
	q := sessionCorpus[2]
	oldRes, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if oldRes.Sort().String() != newRes.Sort().String() {
		t.Fatal("Query disagrees with QueryContext")
	}
	oldSGW, err := db.QuerySGW(q)
	if err != nil {
		t.Fatal(err)
	}
	newSGW, err := db.QueryContext(ctx, q, WithEngine(EngineSGW))
	if err != nil {
		t.Fatal(err)
	}
	if !oldSGW.Equal(newSGW.SGW()) {
		t.Fatal("QuerySGW disagrees with the SGW engine")
	}
}

// TestQueryOptionsOverrideDefaults: per-query options must win over
// SetOptions, and results must be identical across worker counts and
// engines regardless of how the options were supplied.
func TestQueryOptionsOverrideDefaults(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(3)), 8)
	q := sessionCorpus[5]
	db.SetOptions(Options{Workers: 1})
	serial, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := db.QueryContext(ctx, q, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Sort().String() != parallel.Sort().String() {
		t.Fatal("worker count changed the result")
	}
	// Compression options trade tightness for time but must keep bounding:
	// the possible size may only grow, the certain size only shrink.
	compressed, err := db.QueryContext(ctx, q, WithJoinCompression(2), WithAggCompression(2))
	if err != nil {
		t.Fatal(err)
	}
	if compressed.PossibleSize() < serial.PossibleSize() {
		t.Fatalf("compression tightened the possible size: %d < %d",
			compressed.PossibleSize(), serial.PossibleSize())
	}
	if compressed.CertainSize() > serial.CertainSize() {
		t.Fatalf("compression grew the certain size: %d > %d",
			compressed.CertainSize(), serial.CertainSize())
	}
}

// TestStmtConcurrentExec: one prepared statement executed from many
// goroutines must be race-clean and bit-identical to unprepared
// execution, on every engine.
func TestStmtConcurrentExec(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(11)), 10)
	for _, q := range sessionCorpus {
		stmt, err := db.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if stmt.Text() != q || stmt.Plan() == nil {
			t.Fatalf("%s: statement accessors", q)
		}
		for _, eng := range []Engine{EngineNative, EngineRewrite, EngineSGW} {
			want, err := db.QueryContext(ctx, q, WithEngine(eng))
			if err != nil {
				t.Fatalf("%s [%s]: unprepared: %v", q, eng, err)
			}
			wantStr := want.Sort().String()
			const goroutines = 8
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						res, err := stmt.Exec(ctx, WithEngine(eng))
						if err != nil {
							errs[g] = err
							return
						}
						if got := res.Sort().String(); got != wantStr {
							errs[g] = fmt.Errorf("prepared result differs:\n%s\nvs\n%s", got, wantStr)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatalf("%s [%s]: %v", q, eng, err)
				}
			}
		}
	}
}

// TestStmtRewriteRetriesAfterFailure: a failed Section 10 rewrite (e.g.
// a referenced table was dropped) must not be cached — once the catalog
// is repaired, the same Stmt succeeds, staying equivalent to unprepared
// execution.
func TestStmtRewriteRetriesAfterFailure(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(5)), 4)
	stmt, err := db.Prepare(`SELECT b, sum(a) AS s FROM r GROUP BY b`)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	db.Drop("r")
	if _, err := stmt.Exec(ctx, WithEngine(EngineRewrite)); err == nil {
		t.Fatal("rewrite over a dropped table should fail")
	}
	db.AddRelation("r", rel)
	res, err := stmt.Exec(ctx, WithEngine(EngineRewrite))
	if err != nil {
		t.Fatalf("rewrite should succeed after the table is restored: %v", err)
	}
	want, err := db.QueryContext(ctx, stmt.Text(), WithEngine(EngineRewrite))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sort().String() != want.Sort().String() {
		t.Fatal("recovered prepared result differs from unprepared")
	}
}

// cancelDB builds a database whose corpus join is expensive: every join
// attribute is uncertain, forcing the quadratic overlap join.
func cancelDB(rows int) *Database {
	mk := func(name string) *UncertainTable {
		t := NewUncertainTable(name, "k", "v")
		for i := 0; i < rows; i++ {
			t.AddRow(RangeRow{
				Range(Int(int64(i)), Int(int64(i+1)), Int(int64(i+3))),
				CertainOf(Int(int64(i % 97))),
			}, CertainMult(1))
		}
		return t
	}
	db := New()
	db.Add(mk("l"))
	db.Add(mk("r"))
	return db
}

// TestQueryContextCancellation: a long-running join cancelled mid-flight
// must return context.Canceled well under a second, in both serial and
// parallel modes, without leaking goroutines.
func TestQueryContextCancellation(t *testing.T) {
	rows := 3000
	if testing.Short() {
		rows = 1200
	}
	db := cancelDB(rows)
	q := `SELECT l.v, count(*) AS n FROM l JOIN r ON l.k = r.k GROUP BY l.v`
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testutil.NoLeaks(t)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := db.QueryContext(ctx, q, WithWorkers(workers))
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v (after %s)", err, elapsed)
			}
			if elapsed > time.Second {
				t.Fatalf("cancellation took %s, want well under a second", elapsed)
			}
		})
	}
	// A context cancelled before the call returns immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: want context.Canceled, got %v", err)
	}
	// Deadline expiry surfaces as context.DeadlineExceeded.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	if _, err := db.QueryContext(dctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: want context.DeadlineExceeded, got %v", err)
	}
}

// TestCancellationAllEngines: every engine behind the dispatcher honours
// cancellation.
func TestCancellationAllEngines(t *testing.T) {
	rows := 1500
	if testing.Short() {
		rows = 800
	}
	db := cancelDB(rows)
	q := `SELECT l.v, count(*) AS n FROM l JOIN r ON l.k = r.k GROUP BY l.v`
	for _, eng := range []Engine{EngineNative, EngineRewrite, EngineSGW} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := db.QueryContext(ctx, q, WithEngine(eng)); !errors.Is(err, context.Canceled) {
			t.Errorf("engine %s: want context.Canceled, got %v", eng, err)
		}
	}
}

// TestCatalogConcurrency: concurrent registration, listing and querying
// must be race-clean (run under -race) and Tables must stay sorted.
func TestCatalogConcurrency(t *testing.T) {
	db := New()
	seedTbl := NewUncertainTable("t0", "a")
	seedTbl.AddCertainRow(Int(1))
	db.Add(seedTbl)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 1; i <= 50; i++ {
			tbl := NewUncertainTable(fmt.Sprintf("t%d", i), "a")
			tbl.AddCertainRow(Int(int64(i)))
			db.Add(tbl)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			names := db.Tables()
			for j := 1; j < len(names); j++ {
				if names[j-1] >= names[j] {
					errs[1] = fmt.Errorf("Tables not sorted: %v", names)
					return
				}
			}
			db.SetOptions(Options{Workers: 1})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := db.QueryContext(ctx, `SELECT a FROM t0`); err != nil {
				errs[2] = err
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCatalogReplaceRace: replacing a table with a different-arity
// relation while it is being queried must never desynchronize plan and
// data — compilation and execution share one catalog snapshot, so each
// query sees either the old or the new table wholesale (errors are fine;
// panics are not).
func TestCatalogReplaceRace(t *testing.T) {
	db := New()
	wide := NewUncertainTable("t", "a", "b", "c")
	wide.AddCertainRow(Int(1), Int(2), Int(3))
	narrow := NewUncertainTable("t", "a")
	narrow.AddCertainRow(Int(1))
	db.Add(wide)
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				db.Add(narrow)
			} else {
				db.Add(wide)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// Valid against the wide schema only; the narrow catalog state
			// must yield a clean planning error, never a panic.
			_, _ = db.QueryContext(ctx, `SELECT c FROM t`)
		}
	}()
	wg.Wait()
}

// TestUnknownTableDiagnostics: unknown-table errors enumerate the catalog
// deterministically, in sorted order.
func TestUnknownTableDiagnostics(t *testing.T) {
	db := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		tbl := NewUncertainTable(name, "a")
		tbl.AddCertainRow(Int(1))
		db.Add(tbl)
	}
	_, err := db.Relation("missing")
	if err == nil || !strings.Contains(err.Error(), "alpha, mid, zeta") {
		t.Fatalf("Relation error should list tables in sorted order, got: %v", err)
	}
	if got := db.Tables(); strings.Join(got, ",") != "alpha,mid,zeta" {
		t.Fatalf("Tables() = %v, want sorted", got)
	}
	_, err = db.QueryContext(context.Background(), `SELECT a FROM missing`)
	if err == nil {
		t.Fatal("unknown table should error")
	}
	db.Drop("mid")
	if got := db.Tables(); strings.Join(got, ",") != "alpha,zeta" {
		t.Fatalf("Drop: Tables() = %v", got)
	}
	empty := New()
	if _, err := empty.Relation("x"); err == nil || !strings.Contains(err.Error(), "no tables registered") {
		t.Fatalf("empty-catalog error: %v", err)
	}
}

// TestNilPlanAllEngines: nil and typed-nil plans error cleanly (no
// panic) on every engine behind the dispatcher.
func TestNilPlanAllEngines(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(1)), 2)
	ctx := context.Background()
	for _, eng := range []Engine{EngineNative, EngineRewrite, EngineSGW} {
		if _, err := db.ExecPlan(ctx, nil, WithEngine(eng)); err == nil {
			t.Errorf("engine %s: nil plan should error", eng)
		}
		var typedNil *ra.Scan
		if _, err := db.ExecPlan(ctx, typedNil, WithEngine(eng)); err == nil {
			t.Errorf("engine %s: typed-nil plan should error", eng)
		}
		nested := &ra.Distinct{Child: (*ra.Scan)(nil)}
		if _, err := db.ExecPlan(ctx, nested, WithEngine(eng)); err == nil {
			t.Errorf("engine %s: nested typed-nil node should error, not panic", eng)
		}
	}
}

// TestScanSubsetIgnoresUnrelatedTables: the rewrite and SGW paths only
// touch the tables the plan scans — a huge unrelated table in the catalog
// must not change the result (and, per scanSubset, is not encoded).
func TestScanSubsetIgnoresUnrelatedTables(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(9)), 6)
	q := sessionCorpus[2]
	wantRewrite, err := db.QueryContext(ctx, q, WithEngine(EngineRewrite))
	if err != nil {
		t.Fatal(err)
	}
	wantSGW, err := db.QueryContext(ctx, q, WithEngine(EngineSGW))
	if err != nil {
		t.Fatal(err)
	}
	unrelated := NewUncertainTable("unrelated", "x")
	for i := 0; i < 100; i++ {
		unrelated.AddCertainRow(Int(int64(i)))
	}
	db.Add(unrelated)
	gotRewrite, err := db.QueryContext(ctx, q, WithEngine(EngineRewrite))
	if err != nil {
		t.Fatal(err)
	}
	gotSGW, err := db.QueryContext(ctx, q, WithEngine(EngineSGW))
	if err != nil {
		t.Fatal(err)
	}
	if gotRewrite.Sort().String() != wantRewrite.Sort().String() {
		t.Fatal("unrelated table changed the rewrite result")
	}
	if !gotSGW.SGW().Equal(wantSGW.SGW()) {
		t.Fatal("unrelated table changed the SGW result")
	}
	// Unknown tables still get the full sorted catalog in the error.
	_, err = db.QueryContext(ctx, `SELECT x FROM nope`)
	if err == nil {
		t.Fatal("unknown table should error")
	}
}

// TestMixedCaseTableNames: planning resolves names case-insensitively,
// so execution must too — a table registered with mixed case is
// queryable in lowercase on every engine.
func TestMixedCaseTableNames(t *testing.T) {
	db := New()
	tbl := NewUncertainTable("Locales", "size")
	tbl.AddCertainRow(Str("metro"))
	db.Add(tbl)
	ctx := context.Background()
	for _, eng := range []Engine{EngineNative, EngineRewrite, EngineSGW} {
		res, err := db.QueryContext(ctx, `SELECT size FROM locales`, WithEngine(eng))
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		if res.Len() != 1 {
			t.Fatalf("engine %s: %d rows", eng, res.Len())
		}
	}
	// Relation and Drop resolve names the same way queries do.
	if _, err := db.Relation("locales"); err != nil {
		t.Fatalf("Relation should case-fold like the planner: %v", err)
	}
	db.Drop("LOCALES")
	if len(db.Tables()) != 0 {
		t.Fatalf("Drop should case-fold like the planner: %v", db.Tables())
	}
}

// TestEngineNames: Engine round-trips through String/ParseEngine.
func TestEngineNames(t *testing.T) {
	for _, eng := range []Engine{EngineNative, EngineRewrite, EngineSGW} {
		got, err := ParseEngine(eng.String())
		if err != nil || got != eng {
			t.Errorf("ParseEngine(%q) = %v, %v", eng.String(), got, err)
		}
	}
	if e, err := ParseEngine(""); err != nil || e != EngineNative {
		t.Errorf("empty engine name should default to native, got %v, %v", e, err)
	}
	if _, err := ParseEngine("postgres"); err == nil {
		t.Error("unknown engine name should error")
	}
	if !strings.Contains(Engine(42).String(), "42") {
		t.Error("out-of-range engine String")
	}
}
