// Command audblint is the multichecker for the AU-DB invariant
// analyzers in internal/lint. It loads the packages matching its
// argument patterns (default ./...), runs the suite, and prints one
// finding per line in file:line:col form.
//
//	go run ./cmd/audblint ./...
//	go run ./cmd/audblint -only boundsctor,gatedoc ./internal/...
//	go run ./cmd/audblint -counts ./...
//
// Exit status: 0 clean, 1 findings, 2 load or usage error. A finding is
// suppressed by a same- or previous-line comment
//
//	//lint:allow audblint-<analyzer> reason
//
// where the reason is mandatory. See README.md, "Static analysis &
// invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/audb/audb/internal/lint"
	"github.com/audb/audb/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("audblint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: the gating suite)")
	shadow := fs.Bool("shadow", false, "also run the non-gating shadow analyzer")
	counts := fs.Bool("counts", false, "print a per-analyzer finding count table after the findings")
	list := fs.Bool("list", false, "list the analyzers and their invariants, then exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: audblint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *shadow {
		analyzers = lint.AllAnalyzers()
	}
	if *list {
		gating := map[string]bool{}
		for _, a := range lint.Analyzers() {
			gating[a.Name] = true
		}
		for _, a := range lint.AllAnalyzers() {
			tag := ""
			if !gating[a.Name] {
				tag = " (non-gating; enable with -shadow or -only)"
			}
			fmt.Printf("%-12s %s%s\n", a.Name, a.Doc, tag)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range lint.AllAnalyzers() {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "audblint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "audblint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if *counts {
		printCounts(analyzers, findings)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printCounts renders the per-analyzer table the CI job summary embeds.
func printCounts(analyzers []*analysis.Analyzer, findings []lint.Finding) {
	n := map[string]int{}
	for _, f := range findings {
		n[f.Analyzer]++
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Println("analyzer      findings")
	for _, name := range names {
		fmt.Printf("%-12s  %d\n", name, n[name])
	}
}
