// Command audbench regenerates the tables and figures of the paper's
// evaluation (Section 12). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md discusses paper-vs-measured shapes.
//
// Usage:
//
//	audbench -exp fig10a            # one experiment, quick sizes
//	audbench -exp all -full         # the whole suite at full sizes
//	audbench -list                  # list available experiments
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/audb/audb/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig10a, fig10b, fig11, fig12, fig13a-d, fig14, fig15, fig16, fig17, par, prep, opt, pipe, cbo, net, sparse, vec) or 'all'")
		full    = flag.Bool("full", false, "run full-size experiments (slow)")
		tiny    = flag.Bool("tiny", false, "run smoke-test sizes (seconds for the whole suite)")
		seed    = flag.Int64("seed", 1, "workload generator seed")
		workers = flag.Int("workers", 0, "AU-DB executor workers (0 = one per CPU, 1 = serial)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "also write each experiment's result to BENCH_<exp>.json in the current directory")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		return
	}

	cfg := bench.Config{Quick: !*full, Tiny: *tiny && !*full, Seed: *seed, Workers: *workers}
	var toRun []bench.Experiment
	if *exp == "all" {
		toRun = bench.Registry()
	} else {
		e, ok := bench.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "audbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []bench.Experiment{e}
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	if cfg.Tiny {
		mode = "tiny"
	}
	// Ctrl-C cancels the running experiment's queries instead of killing
	// the process mid-computation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first Ctrl-C cancels ctx, restore default SIGINT handling
	// so a second Ctrl-C can kill the process even while a baseline that
	// only checks the context at segment boundaries is running.
	context.AfterFunc(ctx, stop)

	fmt.Printf("audbench: running %d experiment(s) in %s mode (seed %d, workers %d)\n\n",
		len(toRun), mode, *seed, *workers)
	for _, e := range toRun {
		start := time.Now()
		tbl, err := e.Run(ctx, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "audbench: %s interrupted\n", e.ID)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "audbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		took := time.Since(start)
		fmt.Printf("%s(reproduces %s; took %s)\n\n", tbl.Render(), e.Paper, took.Round(time.Millisecond))
		if *jsonOut {
			path, err := bench.WriteJSON(".", bench.JSONResult(tbl, e.Paper, mode, *seed, *workers, took))
			if err != nil {
				fmt.Fprintf(os.Stderr, "audbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
