package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"github.com/audb/audb"
	"github.com/audb/audb/client"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/translate"
)

// remoteOpts carries the resolved flags into the -connect path.
type remoteOpts struct {
	addr  string
	query string

	explain, analyze         bool
	trace, serverStats       bool
	statsTable, analyzeTable string

	eng       audb.Engine
	optimizer audb.OptimizerMode
	cost      audb.CostModel
	em        audb.ExecMode
	workers   int
	joinCT    int
	aggCT     int

	tables, auTables, repairs []string
}

// runRemote executes the query against a live audbd server instead of
// an in-process database. Any -table/-au-table CSVs are bulk-uploaded
// first (with -repair-key lenses applied locally before upload), then
// the query — or the \explain / \analyze / \stats command — runs
// server-side and prints the same output the local mode would.
func runRemote(o remoteOpts) error {
	c, err := client.DialConfig(o.addr, client.Config{Name: "audbsh"})
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Load and upload tables. Plain tables lift to certain AU-relations;
	// repair-key lenses transform locally so the server only ever speaks
	// AU-relations.
	repairKey := map[string]string{}
	for _, spec := range o.repairs {
		name, keyCol, err := splitSpec(spec)
		if err != nil {
			return err
		}
		repairKey[name] = keyCol
	}
	for _, spec := range o.tables {
		name, file, err := splitSpec(spec)
		if err != nil {
			return err
		}
		rel, err := loadCSV(file, false)
		if err != nil {
			return err
		}
		au := core.FromDeterministic(rel.det)
		if keyCol, ok := repairKey[name]; ok {
			idx, err := rel.det.Schema.MustIndexOf(keyCol)
			if err != nil {
				return err
			}
			au = translate.KeyRepair(rel.det, []int{idx})
			delete(repairKey, name)
		}
		if err := upload(ctx, c, name, au); err != nil {
			return err
		}
	}
	for _, spec := range o.auTables {
		name, file, err := splitSpec(spec)
		if err != nil {
			return err
		}
		rel, err := loadCSV(file, true)
		if err != nil {
			return err
		}
		if err := upload(ctx, c, name, rel.au); err != nil {
			return err
		}
	}
	for name := range repairKey {
		return fmt.Errorf("audbsh: -repair-key %s: table not loaded with -table", name)
	}

	// \server prints the server's metrics snapshot and recent traces.
	if o.serverStats {
		text, err := c.ServerStats(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	// Statistics commands print and exit, as in local mode.
	if o.statsTable != "" {
		text, err := c.TableStats(ctx, o.statsTable)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	if o.analyzeTable != "" {
		text, err := c.Analyze(ctx, o.analyzeTable)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}

	qopts := []client.QueryOption{
		client.WithEngine(o.eng),
		client.WithOptimizer(o.optimizer),
		client.WithCostModel(o.cost),
		client.WithExecMode(o.em),
		client.WithWorkers(o.workers),
		client.WithJoinCompression(o.joinCT),
		client.WithAggCompression(o.aggCT),
	}
	if o.explain {
		text, err := c.Explain(ctx, o.query, qopts...)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	if o.analyze {
		text, err := c.ExplainAnalyze(ctx, o.query, qopts...)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	if o.trace {
		text, err := c.Trace(ctx, o.query, qopts...)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	res, err := c.Query(ctx, o.query, qopts...)
	if err != nil {
		return err
	}
	if o.eng == audb.EngineSGW {
		fmt.Print(res.SGW().Sort())
		return nil
	}
	fmt.Print(res.Sort())
	return nil
}

// upload streams one AU-relation into the server as a new table.
func upload(ctx context.Context, c *client.Conn, name string, rel *core.Relation) error {
	b := c.Bulk(name, rel.Schema.Attrs...)
	// EachTuple handles both storage representations. Bulk.Add buffers the
	// row until the next chunk flush, so the scratch tuple a sparse
	// relation reuses between callbacks must be copied before handing over.
	if err := rel.EachTuple(func(t core.Tuple) error {
		vals := t.Vals
		if rel.IsSparse() {
			vals = append(rangeval.Tuple(nil), vals...)
		}
		b.Add(vals, t.M)
		return nil
	}); err != nil {
		return fmt.Errorf("audbsh: upload %s: %w", name, err)
	}
	if _, err := b.Close(ctx); err != nil {
		return fmt.Errorf("audbsh: upload %s: %w", name, err)
	}
	return nil
}
