// Command audbsh runs SQL over CSV files with the AU-DB uncertainty
// semantics. Plain CSV files become certain tables; the extended range
// syntax ("lb|sg|ub" cells, "?" for unknown, _mult_lb/_mult_ub columns)
// carries uncertainty; -repair-key exposes key-violation repair
// uncertainty for a plain CSV.
//
// Queries run through the session API (audb.QueryContext) with an
// interrupt-aware context: Ctrl-C cancels the running query instead of
// killing the process mid-computation. The engine is selected with
// -engine (native, rewrite, sgw); the older -rewrite and -sgw flags
// remain as shorthands.
//
// Plans are optimized by the rule-based logical optimizer by default;
// -opt=off executes the plan exactly as compiled. On top of the rules,
// the cost-based planner uses per-table statistics to reorder join
// chains, pick hash build sides and pre-size operators; -cost=off keeps
// the written join order. -explain (or prefixing the query with
// `\explain `) prints the compiled plan, the per-rule rewrite trace and
// the optimized plan — with per-operator row estimates when the cost
// model is on — instead of executing.
//
// The native engine runs the pipelined physical executor by default;
// -exec materialized forces the operator-at-a-time reference executor.
// -analyze (or prefixing the query with `\analyze `) executes the query
// and prints per-operator est/rows/batches/time counters (EXPLAIN
// ANALYZE) instead of the result.
//
// Statistics are inspected with `\stats <table>` (the cached statistics
// the planner sees, collected on first use) and refreshed with
// `\analyze <table>` (recollects and prints them — `\analyze` followed
// by a single table name analyzes the table; followed by a query it
// analyzes the execution).
//
// `\trace <query>` executes with the full lifecycle instrumented and
// prints the span tree: parse, per-rule optimize, cost-based planning,
// physical lowering, and per-operator execution spans carrying the same
// counters as \analyze. Remotely it adds the server's admission-wait
// and wire-encode spans. `\server` (remote only) prints the server's
// metrics snapshot and its recent sampled request traces.
//
// With -connect host:port the query runs against a live audbd server
// instead of in-process: any -table/-au-table CSVs are bulk-uploaded
// over the wire first, and \explain, \analyze, \stats, \trace and
// \server print the server-rendered text. Ctrl-C sends a Cancel frame,
// aborting the server-side query.
//
// Usage:
//
//	audbsh -table locales=locales.csv "SELECT size, avg(rate) FROM locales GROUP BY size"
//	audbsh -connect localhost:7687 "SELECT a, b FROM r WHERE a < 3"
//	audbsh -au-table r=ranges.csv -engine sgw "SELECT * FROM r"
//	audbsh -table cat=catalog.csv -repair-key cat=id "SELECT category, sum(price) FROM cat GROUP BY category"
//	audbsh -table e=emp.csv -table d=dept.csv "\explain SELECT e.name FROM e, d WHERE e.dept = d.name"
//	audbsh -table e=emp.csv "\analyze SELECT name FROM e WHERE salary > 70 ORDER BY salary LIMIT 5"
//	audbsh -table e=emp.csv "\stats e"
//	audbsh -table e=emp.csv "\analyze e"
//	audbsh -table e=emp.csv "\trace SELECT name FROM e WHERE salary > 70"
//	audbsh -connect localhost:7687 "\server"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/csvio"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/translate"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var (
		tables   listFlag
		auTables listFlag
		repairs  listFlag
		engine   = flag.String("engine", "", "query engine: native (default), rewrite (Section 10 middleware) or sgw (selected-guess world)")
		sgw      = flag.Bool("sgw", false, "shorthand for -engine sgw")
		rewrite  = flag.Bool("rewrite", false, "shorthand for -engine rewrite")
		joinCT   = flag.Int("join-ct", 0, "join compression target (0 = exact)")
		aggCT    = flag.Int("agg-ct", 0, "aggregation compression target (0 = exact)")
		workers  = flag.Int("workers", 0, "executor worker goroutines (0 = one per CPU, 1 = serial)")
		execMode = flag.String("exec", "", "physical executor: pipelined (default) or materialized")
		showPlan = flag.Bool("plan", false, "print the loaded tables and the compiled plan")
		explain  = flag.Bool("explain", false, "print the compiled plan, optimizer trace and optimized plan instead of executing")
		analyze  = flag.Bool("analyze", false, "EXPLAIN ANALYZE: execute and print per-operator est/rows/batches/time instead of the result")
		optMode  = flag.String("opt", "on", "logical optimizer: on (default) or off")
		costMode = flag.String("cost", "on", "cost-based planner (statistics, join reordering, build sides): on (default) or off")
		connect  = flag.String("connect", "", "host:port of an audbd server: run remotely instead of in-process (CSV tables are uploaded first)")
	)
	flag.Var(&tables, "table", "name=file.csv: load a certain CSV table (repeatable)")
	flag.Var(&auTables, "au-table", "name=file.csv: load an uncertain CSV table with range cells (repeatable)")
	flag.Var(&repairs, "repair-key", "name=keycol: apply the key-repair lens to a loaded table (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "audbsh: exactly one SQL query argument expected")
		flag.Usage()
		os.Exit(2)
	}
	query := flag.Arg(0)
	// `\explain SELECT ...` and `\analyze SELECT ...` are the query-prefix
	// forms of -explain and -analyze; `\analyze <table>` (a single table
	// name) recollects that table's statistics and `\stats <table>` prints
	// the cached ones.
	statsTable, analyzeTable := "", ""
	trace, serverStats := false, false
	if rest, ok := strings.CutPrefix(strings.TrimSpace(query), `\explain `); ok {
		*explain = true
		query = rest
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(query), `\trace `); ok {
		trace = true
		query = rest
	}
	if strings.TrimSpace(query) == `\server` {
		serverStats = true
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(query), `\stats `); ok {
		statsTable = strings.TrimSpace(rest)
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(query), `\analyze `); ok {
		if fields := strings.Fields(rest); len(fields) == 1 {
			analyzeTable = fields[0]
		} else {
			*analyze = true
			query = rest
		}
	}

	optimizer := audb.OptimizerOn
	switch strings.ToLower(*optMode) {
	case "on", "":
	case "off":
		optimizer = audb.OptimizerOff
	default:
		fatal(fmt.Errorf("audbsh: -opt must be on or off, got %q", *optMode))
	}
	cost, err := audb.ParseCostModel(*costMode)
	if err != nil {
		fatal(fmt.Errorf("audbsh: -cost must be on or off, got %q", *costMode))
	}

	eng, err := audb.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	em, err := audb.ParseExecMode(*execMode)
	if err != nil {
		fatal(err)
	}
	if *engine != "" && (*sgw || *rewrite) {
		fatal(fmt.Errorf("audbsh: use either -engine or the -sgw/-rewrite shorthands, not both"))
	}
	if *sgw && *rewrite {
		fatal(fmt.Errorf("audbsh: -sgw and -rewrite are mutually exclusive"))
	}
	if *rewrite {
		eng = audb.EngineRewrite
	}
	if *sgw {
		eng = audb.EngineSGW
	}

	if *connect != "" {
		if *showPlan {
			fatal(fmt.Errorf("audbsh: -plan is not supported with -connect (use \\explain)"))
		}
		err := runRemote(remoteOpts{
			addr:         *connect,
			query:        query,
			explain:      *explain,
			analyze:      *analyze,
			trace:        trace,
			serverStats:  serverStats,
			statsTable:   statsTable,
			analyzeTable: analyzeTable,
			eng:          eng,
			optimizer:    optimizer,
			cost:         cost,
			em:           em,
			workers:      *workers,
			joinCT:       *joinCT,
			aggCT:        *aggCT,
			tables:       tables,
			auTables:     auTables,
			repairs:      repairs,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "audbsh: interrupted")
				os.Exit(130)
			}
			fatal(err)
		}
		return
	}

	db := audb.New()
	plain := map[string]*bag.Relation{}
	for _, spec := range tables {
		name, file, err := splitSpec(spec)
		if err != nil {
			fatal(err)
		}
		rel, err := loadCSV(file, false)
		if err != nil {
			fatal(err)
		}
		plain[name] = rel.det
		db.AddRelation(name, core.FromDeterministic(rel.det))
	}
	for _, spec := range auTables {
		name, file, err := splitSpec(spec)
		if err != nil {
			fatal(err)
		}
		rel, err := loadCSV(file, true)
		if err != nil {
			fatal(err)
		}
		db.AddRelation(name, rel.au)
	}
	for _, spec := range repairs {
		name, keyCol, err := splitSpec(spec)
		if err != nil {
			fatal(err)
		}
		rel, ok := plain[name]
		if !ok {
			fatal(fmt.Errorf("audbsh: -repair-key %s: table not loaded with -table", name))
		}
		idx, err := rel.Schema.MustIndexOf(keyCol)
		if err != nil {
			fatal(err)
		}
		db.AddRelation(name, translate.KeyRepair(rel, []int{idx}))
	}
	if db.NumTables() == 0 {
		fatal(fmt.Errorf("audbsh: no tables loaded (use -table / -au-table)"))
	}

	if serverStats {
		fatal(fmt.Errorf(`audbsh: \server inspects a remote audbd (use -connect)`))
	}
	// Statistics commands print and exit before any query planning.
	if statsTable != "" {
		ts, err := db.TableStats(statsTable)
		if err != nil {
			fatal(err)
		}
		fmt.Print(ts)
		return
	}
	if analyzeTable != "" {
		ts, err := db.Analyze(analyzeTable)
		if err != nil {
			fatal(err)
		}
		fmt.Print(ts)
		return
	}

	if trace {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		qt, err := db.Trace(ctx, query,
			audb.WithEngine(eng),
			audb.WithOptimizer(optimizer),
			audb.WithCostModel(cost),
			audb.WithExecMode(em),
			audb.WithWorkers(*workers),
			audb.WithJoinCompression(*joinCT),
			audb.WithAggCompression(*aggCT),
		)
		stop()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "audbsh: interrupted")
				os.Exit(130)
			}
			fatal(err)
		}
		fmt.Print(qt)
		return
	}

	plan, err := db.Plan(query)
	if err != nil {
		fatal(err)
	}
	if *showPlan {
		// Tables print in sorted order — deterministic diagnostics.
		fmt.Fprintf(os.Stderr, "tables: %s\n", strings.Join(db.Tables(), ", "))
		fmt.Fprint(os.Stderr, ra.Render(plan))
	}
	if *explain {
		exp, err := db.Explain(query,
			audb.WithEngine(eng),
			audb.WithOptimizer(optimizer),
			audb.WithCostModel(cost),
			audb.WithJoinCompression(*joinCT),
			audb.WithAggCompression(*aggCT),
		)
		if err != nil {
			fatal(err)
		}
		fmt.Print(exp)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *analyze {
		exp, err := db.ExplainAnalyze(ctx, query,
			audb.WithEngine(eng),
			audb.WithOptimizer(optimizer),
			audb.WithCostModel(cost),
			audb.WithExecMode(em),
			audb.WithWorkers(*workers),
			audb.WithJoinCompression(*joinCT),
			audb.WithAggCompression(*aggCT),
		)
		stop()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "audbsh: interrupted")
				os.Exit(130)
			}
			fatal(err)
		}
		// \analyze prints the execution counters only; -explain shows the
		// optimizer trace.
		fmt.Print(exp.Stats)
		return
	}

	res, err := db.ExecPlan(ctx, plan,
		audb.WithEngine(eng),
		audb.WithOptimizer(optimizer),
		audb.WithCostModel(cost),
		audb.WithExecMode(em),
		audb.WithWorkers(*workers),
		audb.WithJoinCompression(*joinCT),
		audb.WithAggCompression(*aggCT),
	)
	// Restore default SIGINT handling once execution is done, so Ctrl-C
	// still kills the process while the result is being sorted/printed.
	stop()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "audbsh: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}
	if eng == audb.EngineSGW {
		fmt.Print(res.SGW().Sort())
		return
	}
	fmt.Print(res.Sort())
}

type loaded struct {
	det *bag.Relation
	au  *core.Relation
}

func loadCSV(file string, uncertain bool) (*loaded, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if uncertain {
		rel, err := csvio.ReadAU(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		return &loaded{au: rel}, nil
	}
	rel, err := csvio.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return &loaded{det: rel}, nil
}

func splitSpec(spec string) (string, string, error) {
	parts := strings.SplitN(spec, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("audbsh: bad spec %q (want name=value)", spec)
	}
	return parts[0], parts[1], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
