// Command audbd serves an AU-DB database over TCP to concurrent clients
// speaking the internal/wire protocol (see the client package and
// audbsh -connect). It is a thin shell around internal/server: flags,
// CSV table loading, and signal handling.
//
// Tables are loaded at startup with the same -table/-au-table flags as
// audbsh; clients can add more with COPY (client.Bulk). Admission
// control caps concurrently executing queries at -max-concurrency;
// excess requests wait up to -queue-timeout before failing with a
// queue_timeout error. -max-query-time bounds each query server-side.
//
// Observability: -metrics-addr serves /metrics (Prometheus text
// exposition of the server's audbd_* and the database's audb_* series),
// /healthz and /debug/pprof/* on a second listener. -slow-query-ms
// emits one structured log line per query at least that slow (failed
// queries always log); -log-format picks text or json lines.
// -trace-sample records one request in every N into the ring the
// \server command reports.
//
// SIGINT/SIGTERM shuts down gracefully: the listener closes, in-flight
// queries finish, queued requests are refused, and after -drain-timeout
// any stragglers are cancelled through their contexts.
//
// Usage:
//
//	audbd -addr :7687 -table emp=emp.csv -au-table r=ranges.csv
//	audbd -addr 127.0.0.1:0 -max-concurrency 8 -queue-timeout 2s
//	audbd -metrics-addr 127.0.0.1:9100 -slow-query-ms 250 -log-format json
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/csvio"
	"github.com/audb/audb/internal/obs"
	"github.com/audb/audb/internal/server"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var (
		tables      listFlag
		auTables    listFlag
		addr        = flag.String("addr", "127.0.0.1:7687", "listen address")
		maxConc     = flag.Int("max-concurrency", 0, "max queries executing at once (0 = one per CPU)")
		queueTO     = flag.Duration("queue-timeout", 5*time.Second, "max wait for an execution slot before queue_timeout")
		maxQuery    = flag.Duration("max-query-time", 0, "server-side cap on each query's execution time (0 = none)")
		drainTO     = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight queries on shutdown")
		quiet       = flag.Bool("quiet", false, "suppress connection logging")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
		logFormat   = flag.String("log-format", "text", "log line format: text or json")
		slowQueryMS = flag.Int("slow-query-ms", 0, "log queries at least this slow, one structured line each (0 = off)")
		traceSample = flag.Int("trace-sample", 0, "record one request trace in every N (0 = default 16, negative = off)")
	)
	flag.Var(&tables, "table", "name=file.csv: load a certain CSV table (repeatable)")
	flag.Var(&auTables, "au-table", "name=file.csv: load an uncertain CSV table with range cells (repeatable)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fatal(err)
	}

	db := audb.New()
	for _, spec := range tables {
		loadTable(db, spec, false)
	}
	for _, spec := range auTables {
		loadTable(db, spec, true)
	}
	if *slowQueryMS > 0 {
		db.SetQueryHook(obs.SlowQueryHook(logger, time.Duration(*slowQueryMS)*time.Millisecond))
	}

	cfg := server.Config{
		MaxConcurrency: *maxConc,
		QueueTimeout:   *queueTO,
		MaxQueryTime:   *maxQuery,
		TraceSample:    *traceSample,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}
	srv := server.New(db, cfg)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	conc := *maxConc
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	logger.Info("audbd: listening",
		"addr", lis.Addr().String(), "tables", db.NumTables(), "max_concurrency", conc)

	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		logger.Info("audbd: metrics listening", "addr", mlis.Addr().String())
		go func() {
			if err := http.Serve(mlis, obs.Handler(srv.Metrics(), db.Metrics())); err != nil {
				logger.Error("audbd: metrics server", "err", err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(lis) }()

	select {
	case sig := <-sigCh:
		logger.Info("audbd: draining", "signal", sig.String(), "timeout", drainTO.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("audbd: forced shutdown after drain timeout", "err", err)
		}
		logger.Info("audbd: stopped")
	case err := <-errCh:
		if err != nil && err != server.ErrServerClosed {
			fatal(err)
		}
	}
}

// newLogger builds the process logger behind -log-format. Everything —
// connection lines, the slow-query log, lifecycle messages — funnels
// through it so json mode yields machine-parseable output end to end.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("audbd: unknown -log-format %q (want text or json)", format)
	}
}

func loadTable(db *audb.Database, spec string, uncertain bool) {
	parts := strings.SplitN(spec, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fatal(fmt.Errorf("audbd: bad table spec %q (want name=file.csv)", spec))
	}
	name, file := parts[0], parts[1]
	f, err := os.Open(file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if uncertain {
		rel, err := csvio.ReadAU(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", file, err))
		}
		db.AddRelation(name, rel)
		return
	}
	rel, err := csvio.Read(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", file, err))
	}
	db.AddRelation(name, core.FromDeterministic(rel))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
