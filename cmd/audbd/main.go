// Command audbd serves an AU-DB database over TCP to concurrent clients
// speaking the internal/wire protocol (see the client package and
// audbsh -connect). It is a thin shell around internal/server: flags,
// CSV table loading, and signal handling.
//
// Tables are loaded at startup with the same -table/-au-table flags as
// audbsh; clients can add more with COPY (client.Bulk). Admission
// control caps concurrently executing queries at -max-concurrency;
// excess requests wait up to -queue-timeout before failing with a
// queue_timeout error. -max-query-time bounds each query server-side.
//
// SIGINT/SIGTERM shuts down gracefully: the listener closes, in-flight
// queries finish, queued requests are refused, and after -drain-timeout
// any stragglers are cancelled through their contexts.
//
// Usage:
//
//	audbd -addr :7687 -table emp=emp.csv -au-table r=ranges.csv
//	audbd -addr 127.0.0.1:0 -max-concurrency 8 -queue-timeout 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/csvio"
	"github.com/audb/audb/internal/server"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var (
		tables   listFlag
		auTables listFlag
		addr     = flag.String("addr", "127.0.0.1:7687", "listen address")
		maxConc  = flag.Int("max-concurrency", 0, "max queries executing at once (0 = one per CPU)")
		queueTO  = flag.Duration("queue-timeout", 5*time.Second, "max wait for an execution slot before queue_timeout")
		maxQuery = flag.Duration("max-query-time", 0, "server-side cap on each query's execution time (0 = none)")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight queries on shutdown")
		quiet    = flag.Bool("quiet", false, "suppress connection logging")
	)
	flag.Var(&tables, "table", "name=file.csv: load a certain CSV table (repeatable)")
	flag.Var(&auTables, "au-table", "name=file.csv: load an uncertain CSV table with range cells (repeatable)")
	flag.Parse()

	db := audb.New()
	for _, spec := range tables {
		loadTable(db, spec, false)
	}
	for _, spec := range auTables {
		loadTable(db, spec, true)
	}

	cfg := server.Config{
		MaxConcurrency: *maxConc,
		QueueTimeout:   *queueTO,
		MaxQueryTime:   *maxQuery,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := server.New(db, cfg)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	conc := *maxConc
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	log.Printf("audbd: listening on %s (%d tables, max-concurrency %d)",
		lis.Addr(), db.NumTables(), conc)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(lis) }()

	select {
	case sig := <-sigCh:
		log.Printf("audbd: %v: draining (up to %s)", sig, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("audbd: forced shutdown after drain timeout: %v", err)
		}
		log.Printf("audbd: stopped")
	case err := <-errCh:
		if err != nil && err != server.ErrServerClosed {
			fatal(err)
		}
	}
}

func loadTable(db *audb.Database, spec string, uncertain bool) {
	parts := strings.SplitN(spec, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fatal(fmt.Errorf("audbd: bad table spec %q (want name=file.csv)", spec))
	}
	name, file := parts[0], parts[1]
	f, err := os.Open(file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if uncertain {
		rel, err := csvio.ReadAU(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", file, err))
		}
		db.AddRelation(name, rel)
		return
	}
	rel, err := csvio.Read(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", file, err))
	}
	db.AddRelation(name, core.FromDeterministic(rel))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
