package audb

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/audb/audb/internal/core"
)

// mostlyCertainRows generates rows for a two-column table where the first
// column is always certain and the second is uncertain in roughly one row
// out of ten — the ≥90%-certain regime the sparse representation targets.
// A sprinkling of certain nulls and uncertain multiplicities exercises the
// fast-path disqualification gates (a flat column with nulls, a triple
// multiplicity) without tipping the table dense.
type testRow struct {
	vals RangeRow
	m    Multiplicity
}

func mostlyCertainRows(rows int, rng *rand.Rand) []testRow {
	out := make([]testRow, 0, rows)
	for i := 0; i < rows; i++ {
		a := CertainOf(Int(int64(rng.Intn(6))))
		b := CertainOf(Int(int64(rng.Intn(6))))
		switch rng.Intn(10) {
		case 0:
			sg := int64(rng.Intn(6))
			b = Range(Int(sg-1), Int(sg), Int(sg+int64(rng.Intn(3))))
		case 1:
			b = CertainOf(Null())
		}
		m := CertainMult(int64(1 + rng.Intn(2)))
		if rng.Intn(12) == 0 {
			m = Mult(0, 1, 2)
		}
		out = append(out, testRow{vals: RangeRow{a, b}, m: m})
	}
	return out
}

// storageDB builds a database holding tables r(a,b) and s(c,d) from the
// given row sets under an explicit storage mode. Each call builds fresh
// UncertainTables: a relation is compacted in place on first registration,
// so two databases with different policies must never share one.
func storageDB(mode StorageMode, rrows, srows []testRow) *Database {
	db := New()
	db.SetStoragePolicy(StoragePolicy{Mode: mode})
	mk := func(name string, rows []testRow, cols ...string) {
		t := NewUncertainTable(name, cols...)
		for _, row := range rows {
			t.AddRow(row.vals, row.m)
		}
		db.Add(t)
	}
	mk("r", rrows, "a", "b")
	mk("s", srows, "c", "d")
	return db
}

// TestSparseDenseEquivalence is the tentpole acceptance property: on
// mostly-certain data, a force-sparse database and a force-dense database
// produce bit-identical results for the full optimizer corpus across all
// three engines, serial and parallel, pipelined and materialized. The
// sparse side takes the certain-only fast paths wherever its gates allow;
// any divergence from the dense kernels fails here before the sparse
// bench experiment is allowed to time them.
func TestSparseDenseEquivalence(t *testing.T) {
	ctx := context.Background()
	trials := 4
	if testing.Short() {
		trials = 2
	}
	engines := []Engine{EngineNative, EngineRewrite, EngineSGW}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*877 + 29)))
		rrows := mostlyCertainRows(8+rng.Intn(20), rng)
		srows := mostlyCertainRows(8+rng.Intn(20), rng)
		dense := storageDB(StorageForceDense, rrows, srows)
		sparse := storageDB(StorageForceSparse, rrows, srows)

		// The representations must actually differ, or the test is vacuous.
		if rel, _ := dense.Relation("r"); rel.IsSparse() {
			t.Fatal("force-dense database compacted a table")
		}
		if rel, _ := sparse.Relation("r"); !rel.IsSparse() {
			t.Fatal("force-sparse database kept a table dense")
		}

		corpus := append(optCorpus(rng), sessionCorpus...)
		for _, q := range corpus {
			for _, eng := range engines {
				for _, workers := range []int{1, 4} {
					for _, em := range []ExecMode{ExecPipelined, ExecMaterialized} {
						opts := []QueryOption{WithEngine(eng), WithWorkers(workers), WithExecMode(em)}
						want, errD := dense.QueryContext(ctx, q, opts...)
						got, errS := sparse.QueryContext(ctx, q, opts...)
						if (errD == nil) != (errS == nil) {
							t.Fatalf("[trial %d] %s [%s workers=%d %s]: representation changed acceptance: dense=%v sparse=%v",
								trial, q, eng, workers, em, errD, errS)
						}
						if errD != nil {
							continue // e.g. DISTINCT on the rewrite middleware
						}
						if want.Sort().String() != got.Sort().String() {
							t.Fatalf("[trial %d] %s [%s workers=%d %s]: sparse result diverged:\n%s\nvs\n%s",
								trial, q, eng, workers, em, want, got)
						}
					}
				}
			}
		}
	}
}

// TestStorageRepresentationFlip covers the representation lifecycle: a
// certain table compacts on registration, goes dense the moment in-place
// updates make it uncertain, is re-evaluated by Analyze in both
// directions, and honors per-table overrides — with every state change
// visible in the reported statistics and none of them changing a query's
// answer.
func TestStorageRepresentationFlip(t *testing.T) {
	ctx := context.Background()
	const q = `SELECT a, b FROM t WHERE a <= 3`

	db := New()
	tbl := NewUncertainTable("t", "a", "b")
	for i := 0; i < 40; i++ {
		tbl.AddRow(RangeRow{CertainOf(Int(int64(i % 7))), CertainOf(Int(int64(i)))}, CertainMult(1))
	}
	db.Add(tbl)

	ts, err := db.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Storage != core.ReprSparse || ts.FlatCols != 2 || !ts.MultFlat {
		t.Fatalf("certain table should register sparse: %+v", ts)
	}
	if !strings.Contains(ts.String(), "storage: sparse (2/2 flat columns, flat multiplicities)") {
		t.Fatalf("stats rendering lacks the storage line:\n%s", ts)
	}
	want, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	wantText := want.Sort().String()

	// In-place updates that introduce uncertainty densify the relation
	// immediately — the fast-path precondition is gone before the next
	// query can observe the new rows, never after.
	for i := 0; i < 60; i++ {
		tbl.AddRow(RangeRow{Range(Int(0), Int(int64(i%7)), Int(6)), CertainOf(Int(int64(i)))}, Mult(0, 1, 1))
	}
	if rel, _ := db.Relation("t"); rel.IsSparse() || rel.FastCertain() {
		t.Fatal("uncertain updates left the relation sparse")
	}

	// Analyze re-evaluates: now mostly uncertain, the table stays dense
	// and the statistics say so.
	ts, err = db.Analyze("t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 100 || ts.Storage != core.ReprDense {
		t.Fatalf("post-update Analyze: %+v", ts)
	}
	if !strings.Contains(ts.String(), "storage: dense") {
		t.Fatalf("stats rendering lacks the dense storage line:\n%s", ts)
	}

	// Manual override pins it sparse (partially flat: column a went
	// uncertain, column b is still flat), and back.
	ts, err = db.SetTableStorage("t", StorageForceSparse)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Storage != core.ReprSparse || ts.FlatCols != 1 || ts.MultFlat {
		t.Fatalf("force-sparse override: %+v", ts)
	}
	if rel, _ := db.Relation("t"); !rel.IsSparse() || rel.FastCertain() {
		t.Fatal("override should give a sparse, not-fast-certain relation")
	}
	ts, err = db.SetTableStorage("t", StorageForceDense)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Storage != core.ReprDense {
		t.Fatalf("force-dense override: %+v", ts)
	}

	// Re-registering a fully certain replacement flips back to sparse
	// under the auto policy, fast path and all.
	repl := NewUncertainTable("t", "a", "b")
	for i := 0; i < 40; i++ {
		repl.AddRow(RangeRow{CertainOf(Int(int64(i % 7))), CertainOf(Int(int64(i)))}, CertainMult(1))
	}
	db.Add(repl)
	if rel, _ := db.Relation("t"); !rel.FastCertain() {
		t.Fatal("certain replacement should re-register fast-certain")
	}
	got, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sort().String() != wantText {
		t.Fatalf("representation lifecycle changed the query answer:\n%s\nvs\n%s", wantText, got)
	}

	// Unknown tables error through both new entry points.
	if _, err := db.SetTableStorage("nope", StorageForceSparse); err == nil {
		t.Fatal("SetTableStorage on an unknown table should error")
	}
}

// TestStorageFlipRace races representation flips (Analyze, SetTableStorage,
// re-registration) against concurrent queries and statistics reads, run
// under -race: flips happen by atomically registering replacement
// relations, so queries must keep executing over consistent snapshots and
// must never observe a half-flipped table. Goroutines never mutate a
// shared relation — only re-register different ones (the supported
// pattern, as in TestStatsLifecycleRace).
func TestStorageFlipRace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rrows := mostlyCertainRows(40, rng)
	srows := mostlyCertainRows(40, rng)
	db := storageDB(StorageAuto, rrows, srows)

	// Pre-built replacements alternating between mostly-certain (compacts)
	// and mostly-uncertain (stays dense), so re-registration keeps flipping
	// the representation back and forth.
	repl := make([]*UncertainTable, 4)
	for i := range repl {
		tb := NewUncertainTable("r", "a", "b")
		for j := 0; j < 30; j++ {
			if i%2 == 0 {
				tb.AddRow(RangeRow{CertainOf(Int(int64(j % 5))), CertainOf(Int(int64(j)))}, CertainMult(1))
			} else {
				tb.AddRow(RangeRow{Range(Int(0), Int(int64(j%5)), Int(9)), CertainOf(Int(int64(j)))}, Mult(0, 1, 2))
			}
		}
		repl[i] = tb
	}

	const q = `SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 4`
	var mutators sync.WaitGroup
	for w := 0; w < 4; w++ {
		mutators.Add(1)
		go func(w int) {
			defer mutators.Done()
			for i := 0; i < 50; i++ {
				switch (w + i) % 4 {
				case 0:
					db.Add(repl[i%len(repl)])
				case 1:
					db.Analyze("r") // may race a re-registration; only data races matter
				case 2:
					db.SetTableStorage("r", StorageForceSparse)
				default:
					db.SetTableStorage("r", StorageForceDense)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.QueryContext(context.Background(), q, WithWorkers(2))
				if err == nil && res == nil {
					t.Error("nil result without error")
					return
				}
				db.TableStats("r")
			}
		}()
	}
	mutators.Wait()
	close(stop)
	readers.Wait()

	// The catalog settles on whichever replacement won; a final Analyze
	// must serve statistics consistent with the registered relation.
	ts, err := db.Analyze("r")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	if (ts.Storage == core.ReprSparse) != rel.IsSparse() {
		t.Fatalf("statistics disagree with the relation: stats=%v sparse=%v", ts.Storage, rel.IsSparse())
	}
}
