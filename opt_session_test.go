package audb

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// optCorpus is a randomized query corpus covering pushdown targets
// (joins, unions, projections) and pushdown barriers (difference,
// distinct, aggregation, order/limit) through the SQL front end.
func optCorpus(rng *rand.Rand) []string {
	k := func() int { return rng.Intn(6) }
	return []string{
		fmt.Sprintf(`SELECT a, b FROM r WHERE a <= %d AND b > %d`, k(), k()),
		fmt.Sprintf(`SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < %d`, k()),
		fmt.Sprintf(`SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND s.d >= %d`, k()),
		fmt.Sprintf(`SELECT b, sum(a) AS s, count(*) AS n FROM r WHERE a < %d GROUP BY b`, k()),
		fmt.Sprintf(`SELECT b, max(a) AS m FROM r GROUP BY b HAVING max(a) >= %d`, k()),
		fmt.Sprintf(`SELECT a FROM r WHERE a < %d UNION SELECT c FROM s WHERE d > %d`, k(), k()),
		fmt.Sprintf(`SELECT a FROM r EXCEPT SELECT c FROM s WHERE d = %d`, k()),
		fmt.Sprintf(`SELECT a, b FROM r WHERE a BETWEEN %d AND %d ORDER BY a LIMIT 3`, k(), k()+3),
		fmt.Sprintf(`SELECT x.ab, count(*) AS n FROM (SELECT a + b AS ab FROM r WHERE a <> %d) x GROUP BY x.ab`, k()),
		fmt.Sprintf(`SELECT r.a, s.c FROM r JOIN s ON r.a = s.c WHERE r.b < %d AND s.d >= %d`, k(), k()),
	}
}

// TestOptimizerEngineEquivalence is the session-level acceptance
// property: for a random query corpus, WithOptimizer(OptimizerOn) and
// WithOptimizer(OptimizerOff) produce bit-identical results on all three
// engines, with serial and parallel workers.
func TestOptimizerEngineEquivalence(t *testing.T) {
	ctx := context.Background()
	trials := 6
	if testing.Short() {
		trials = 2
	}
	engines := []Engine{EngineNative, EngineRewrite, EngineSGW}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*997 + 5)))
		db := randomDB(rng, 2+rng.Intn(6))
		for _, q := range optCorpus(rng) {
			for _, eng := range engines {
				for _, workers := range []int{1, 4} {
					off, errOff := db.QueryContext(ctx, q,
						WithEngine(eng), WithWorkers(workers), WithOptimizer(OptimizerOff))
					on, errOn := db.QueryContext(ctx, q,
						WithEngine(eng), WithWorkers(workers), WithOptimizer(OptimizerOn))
					if (errOff == nil) != (errOn == nil) {
						t.Fatalf("[trial %d] %s [%s workers=%d]: optimizer changed acceptance: off=%v on=%v",
							trial, q, eng, workers, errOff, errOn)
					}
					if errOff != nil {
						continue // e.g. DISTINCT on the rewrite middleware
					}
					if off.Sort().String() != on.Sort().String() {
						t.Fatalf("[trial %d] %s [%s workers=%d]: optimizer changed the result:\n%s\nvs\n%s",
							trial, q, eng, workers, off, on)
					}
				}
			}
		}
	}
}

// TestOptimizerOnByDefault: a plain QueryContext call must behave as
// WithOptimizer(OptimizerOn).
func TestOptimizerOnByDefault(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(21)), 6)
	q := `SELECT r.b, s.d FROM r, s WHERE r.a = s.c`
	def, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	on, err := db.QueryContext(ctx, q, WithOptimizer(OptimizerOn))
	if err != nil {
		t.Fatal(err)
	}
	if def.Sort().String() != on.Sort().String() {
		t.Fatal("default execution differs from WithOptimizer(OptimizerOn)")
	}
	if OptimizerOn.String() != "on" || OptimizerOff.String() != "off" {
		t.Fatal("OptimizerMode.String")
	}
}

// TestStmtCachesOptimizedPlan: prepared statements must serve the
// optimized plan (and stay bit-identical to unprepared execution) in
// both optimizer modes, on every engine, under concurrency.
func TestStmtCachesOptimizedPlan(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(33)), 8)
	q := `SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND r.b <= 3`
	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineNative, EngineRewrite, EngineSGW} {
		for _, mode := range []OptimizerMode{OptimizerOn, OptimizerOff} {
			want, err := db.QueryContext(ctx, q, WithEngine(eng), WithOptimizer(mode))
			if err != nil {
				t.Fatalf("[%s %s] unprepared: %v", eng, mode, err)
			}
			for i := 0; i < 3; i++ {
				got, err := stmt.Exec(ctx, WithEngine(eng), WithOptimizer(mode))
				if err != nil {
					t.Fatalf("[%s %s] prepared: %v", eng, mode, err)
				}
				if want.Sort().String() != got.Sort().String() {
					t.Fatalf("[%s %s] prepared result differs from unprepared", eng, mode)
				}
			}
		}
	}
}

// TestExplain: the explanation carries both plans and the rule trace,
// and renders them; Explain does not execute anything.
func TestExplain(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(9)), 4)
	exp, err := db.Explain(`SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND r.b <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Plan == "" || exp.Optimized == "" || exp.Passes < 1 {
		t.Fatalf("incomplete explanation: %+v", exp)
	}
	if len(exp.Rules) == 0 {
		t.Fatal("expected rule applications for a pushable query")
	}
	if !strings.Contains(exp.Plan, "CrossProduct") {
		t.Fatalf("compiled plan should contain the cross product:\n%s", exp.Plan)
	}
	if strings.Contains(exp.Optimized, "CrossProduct") {
		t.Fatalf("optimized plan should have an equi-join:\n%s", exp.Optimized)
	}
	text := exp.String()
	for _, want := range []string{"query:", "plan:", "optimized:", "rule "} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}
	// A query with nothing to optimize reports that.
	plain, err := db.Explain(`SELECT a FROM r`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rules) != 0 {
		// Identity-projection elimination may legitimately fire here;
		// only insist the rendering stays consistent.
		if !strings.Contains(plain.String(), "optimized:") {
			t.Fatalf("trace rendering inconsistent:\n%s", plain.String())
		}
	} else if !strings.Contains(plain.String(), "no rules applied") {
		t.Fatalf("no-op optimization should say so:\n%s", plain.String())
	}
	// Errors propagate.
	if _, err := db.Explain(`SELECT nope FROM r`); err == nil {
		t.Fatal("unknown column should error")
	}
}

// randomDB3 extends randomDB with a small third table so cost-based join
// reordering has 3-input chains to work with.
func randomDB3(rng *rand.Rand, rows int) *Database {
	db := randomDB(rng, rows)
	u := NewUncertainTable("u", "e", "f")
	for i := 0; i < 2+rng.Intn(3); i++ {
		sg := int64(rng.Intn(6))
		v := CertainOf(Int(sg))
		if rng.Intn(3) == 0 {
			v = Range(Int(sg), Int(sg), Int(sg+1))
		}
		u.AddRow(RangeRow{v, CertainOf(Int(int64(rng.Intn(6))))}, CertainMult(1))
	}
	db.Add(u)
	return db
}

// costCorpus is the session-level corpus for the cost-model equivalence
// property: multi-table chains the reorder rule restructures, plus
// shapes where cost-based planning only annotates.
func costSessionCorpus(rng *rand.Rand) []string {
	k := func() int { return rng.Intn(6) }
	return []string{
		fmt.Sprintf(`SELECT r.b, s.d, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e AND u.f <= %d`, k()),
		fmt.Sprintf(`SELECT r.a, u.e FROM r JOIN s ON r.a = s.c JOIN u ON s.d = u.e WHERE r.b >= %d`, k()),
		fmt.Sprintf(`SELECT u.e, count(*) AS n FROM r, s, u WHERE r.a = s.c AND s.d = u.e GROUP BY u.e HAVING count(*) > %d`, k()),
		fmt.Sprintf(`SELECT DISTINCT s.d FROM r, s, u WHERE r.a = s.c AND s.d = u.e AND r.b < %d`, k()),
		fmt.Sprintf(`SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND s.d >= %d`, k()),
		fmt.Sprintf(`SELECT a, b FROM r WHERE a <= %d ORDER BY b LIMIT 4`, k()),
		// LIMIT above a join chain: arrival order is result-visible, so
		// the cost pass must freeze the subtree (multisets still match;
		// TestCostModelLimitRawIdentity additionally pins the raw order).
		fmt.Sprintf(`SELECT r.b, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e AND u.f <= %d LIMIT 3`, k()+2),
		`SELECT r.b, s.d FROM r, s WHERE r.a = s.c LIMIT 2`,
		// ORDER BY with heavy sort-key ties over a reorderable chain:
		// tie presentation order may differ (documented at CostOn), but
		// the canonical multiset must not.
		`SELECT r.b, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e ORDER BY r.b`,
		fmt.Sprintf(`SELECT b, sum(a) AS t FROM r WHERE a < %d GROUP BY b`, k()),
		`SELECT r.a FROM r, s, u WHERE r.a = s.c AND s.c = u.e EXCEPT SELECT e FROM u`,
	}
}

// TestCostModelEngineEquivalence is the session-level acceptance property
// for cost-based planning: WithCostModel(CostOn) and CostOff produce
// bit-identical results on all three engines, with serial and parallel
// workers, in both execution modes of the native engine.
func TestCostModelEngineEquivalence(t *testing.T) {
	ctx := context.Background()
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*773 + 19)))
		db := randomDB3(rng, 3+rng.Intn(6))
		for _, q := range costSessionCorpus(rng) {
			for _, eng := range []Engine{EngineNative, EngineRewrite, EngineSGW} {
				for _, workers := range []int{1, 4} {
					modes := []ExecMode{ExecPipelined}
					if eng == EngineNative {
						modes = append(modes, ExecMaterialized)
					}
					for _, em := range modes {
						off, errOff := db.QueryContext(ctx, q,
							WithEngine(eng), WithWorkers(workers), WithExecMode(em), WithCostModel(CostOff))
						on, errOn := db.QueryContext(ctx, q,
							WithEngine(eng), WithWorkers(workers), WithExecMode(em), WithCostModel(CostOn))
						if (errOff == nil) != (errOn == nil) {
							t.Fatalf("[trial %d] %s [%s workers=%d %s]: cost model changed acceptance: off=%v on=%v",
								trial, q, eng, workers, em, errOff, errOn)
						}
						if errOff != nil {
							continue // e.g. EXCEPT on the rewrite middleware
						}
						if off.Sort().String() != on.Sort().String() {
							t.Fatalf("[trial %d] %s [%s workers=%d %s]: cost model changed the result:\n%s\nvs\n%s",
								trial, q, eng, workers, em, off, on)
						}
					}
				}
			}
		}
	}
}

// TestCostModelOnByDefault: a plain QueryContext call behaves as
// WithCostModel(CostOn), and the mode names render.
func TestCostModelOnByDefault(t *testing.T) {
	ctx := context.Background()
	db := randomDB3(rand.New(rand.NewSource(77)), 6)
	q := `SELECT r.b, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e`
	def, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	on, err := db.QueryContext(ctx, q, WithCostModel(CostOn))
	if err != nil {
		t.Fatal(err)
	}
	if def.Sort().String() != on.Sort().String() {
		t.Fatal("default execution differs from WithCostModel(CostOn)")
	}
	if CostOn.String() != "on" || CostOff.String() != "off" {
		t.Fatal("CostModel.String")
	}
	if m, err := ParseCostModel("off"); err != nil || m != CostOff {
		t.Fatal("ParseCostModel off")
	}
	if _, err := ParseCostModel("bogus"); err == nil {
		t.Fatal("ParseCostModel should reject bogus")
	}
}

// TestCostModelCompressionGate: compressed executions skip the reorder
// pass (merge granularity is observable) but still run and still match
// the cost-off result bit for bit.
func TestCostModelCompressionGate(t *testing.T) {
	ctx := context.Background()
	db := randomDB3(rand.New(rand.NewSource(99)), 8)
	q := `SELECT r.b, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e`
	off, err := db.QueryContext(ctx, q, WithJoinCompression(4), WithCostModel(CostOff))
	if err != nil {
		t.Fatal(err)
	}
	on, err := db.QueryContext(ctx, q, WithJoinCompression(4), WithCostModel(CostOn))
	if err != nil {
		t.Fatal(err)
	}
	if off.Sort().String() != on.Sort().String() {
		t.Fatal("cost model changed a compressed execution's result")
	}
}

// TestCostModelLimitRawIdentity pins the Limit freeze gate at the
// session level with RAW (unsorted) output comparison: below a Limit the
// cost pass must leave the plan alone, so cost-on and cost-off return
// the exact same rows in the exact same order — not merely the same
// multiset. (Plain ORDER BY is compared canonically elsewhere: sort-key
// ties keep arrival order, which a reordered plan may legitimately
// change, as documented at CostOn.)
func TestCostModelLimitRawIdentity(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*311 + 13)))
		db := randomDB3(rng, 4+rng.Intn(5))
		queries := []string{
			`SELECT r.b, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e LIMIT 4`,
			`SELECT r.b, s.d FROM r, s, u WHERE r.a = u.e AND s.c = u.f LIMIT 3`,
			`SELECT r.a, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e ORDER BY u.f LIMIT 3`,
		}
		for _, q := range queries {
			for _, workers := range []int{1, 4} {
				off, err := db.QueryContext(ctx, q, WithWorkers(workers), WithCostModel(CostOff))
				if err != nil {
					t.Fatalf("[%d] %s: %v", trial, q, err)
				}
				on, err := db.QueryContext(ctx, q, WithWorkers(workers), WithCostModel(CostOn))
				if err != nil {
					t.Fatalf("[%d] %s: %v", trial, q, err)
				}
				if off.String() != on.String() {
					t.Fatalf("[%d] %s (workers=%d): cost model changed a LIMIT result's rows or order:\n%s\nvs\n%s",
						trial, q, workers, off, on)
				}
			}
		}
	}
}
