module github.com/audb/audb

go 1.22
