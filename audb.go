// Package audb is an uncertainty-aware database engine: a Go implementation
// of AU-DBs (attribute-annotated uncertain databases) from "Efficient
// Uncertainty Tracking for Complex Queries with Attribute-level Bounds"
// (Feng, Huber, Glavic, Kennedy; SIGMOD 2021).
//
// An AU-DB annotates one selected-guess world of an uncertain database:
// every attribute value carries bounds [lb/sg/ub] on its value across all
// possible worlds, and every tuple carries a multiplicity triple
// (lb, sg, ub) sandwiching its certain and possible multiplicities. Full
// relational algebra with aggregation evaluates directly on this
// representation in PTIME while preserving the bounds: query answers
// under-approximate the certain answers and over-approximate the possible
// answers, with the selected-guess world behaving exactly like a
// conventional database.
//
// Basic usage:
//
//	db := audb.New()
//	t := audb.NewUncertainTable("locales", "locale", "rate", "size")
//	t.AddRow(audb.RangeRow{
//		audb.CertainOf(audb.Str("Los Angeles")),
//		audb.Range(audb.Float(3), audb.Float(3), audb.Float(4)),
//		audb.CertainOf(audb.Str("metro")),
//	}, audb.CertainMult(1))
//	db.Add(t)
//	res, err := db.Query(`SELECT size, avg(rate) AS rate FROM locales GROUP BY size`)
//
// Uncertain inputs can also be derived from incomplete/probabilistic data
// models (tuple-independent tables, block-independent x-tables, C-tables)
// and from cleaning lenses such as key repair; see FromXTable, FromTITable,
// FromCTable and RepairKey.
//
// Performance is tuned through Options (see SetOptions). JoinCompression
// and AggCompression enable the paper's split+compress optimizations
// (Sections 10.4-10.5), trading bound tightness for running time. Workers
// sets the number of goroutines the executor may use for the hot operators
// (hybrid join, aggregation, selection, projection, split): 0 — the
// default — means one worker per CPU, 1 forces the serial reference
// evaluation. Query results are bit-identical for every worker count, so
// parallelism never affects the paper's bound-preservation guarantees.
package audb

import (
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/encoding"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
	"github.com/audb/audb/internal/translate"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// Value is an element of the universal domain (null, bool, int, float,
// string, plus the two infinity sentinels).
type Value = types.Value

// Value constructors.
func Int(i int64) Value     { return types.Int(i) }
func Float(f float64) Value { return types.Float(f) }
func Str(s string) Value    { return types.String(s) }
func Bool(b bool) Value     { return types.Bool(b) }
func Null() Value           { return types.Null() }
func NegInfinity() Value    { return types.NegInf() }
func PosInfinity() Value    { return types.PosInf() }

// RangeValue is a range-annotated value [lb/sg/ub].
type RangeValue = rangeval.V

// Range builds a range-annotated value (bounds are normalized to satisfy
// lb <= sg <= ub).
func Range(lb, sg, ub Value) RangeValue { return rangeval.New(lb, sg, ub) }

// CertainOf wraps a deterministic value as the certain range [v/v/v].
func CertainOf(v Value) RangeValue { return rangeval.Certain(v) }

// FullRange marks a completely unknown value with selected guess sg.
func FullRange(sg Value) RangeValue { return rangeval.Full(sg) }

// Multiplicity is a tuple annotation (lb, sg, ub) in N^AU.
type Multiplicity = core.Mult

// CertainMult annotates a tuple that appears exactly n times in every
// world.
func CertainMult(n int64) Multiplicity { return Multiplicity{Lo: n, SG: n, Hi: n} }

// MaybeMult annotates a tuple present in the selected-guess world but
// possibly absent elsewhere.
func MaybeMult() Multiplicity { return Multiplicity{Lo: 0, SG: 1, Hi: 1} }

// Mult builds an explicit annotation.
func Mult(lb, sg, ub int64) Multiplicity { return Multiplicity{Lo: lb, SG: sg, Hi: ub} }

// Row is a deterministic tuple.
type Row = types.Tuple

// RangeRow is a tuple of range-annotated values.
type RangeRow = rangeval.Tuple

// Table is a deterministic bag relation.
type Table struct {
	Name string
	rel  *bag.Relation
}

// NewTable creates an empty deterministic table.
func NewTable(name string, cols ...string) *Table {
	return &Table{Name: name, rel: bag.New(schema.New(cols...))}
}

// AddRow appends a row with multiplicity 1.
func (t *Table) AddRow(vals ...Value) *Table {
	t.rel.Add(types.Tuple(vals), 1)
	return t
}

// Rel exposes the underlying relation (advanced use).
func (t *Table) Rel() *bag.Relation { return t.rel }

// UncertainTable is an AU-relation under construction.
type UncertainTable struct {
	Name string
	rel  *core.Relation
}

// NewUncertainTable creates an empty AU-table.
func NewUncertainTable(name string, cols ...string) *UncertainTable {
	return &UncertainTable{Name: name, rel: core.New(schema.New(cols...))}
}

// AddRow appends a range-annotated row.
func (t *UncertainTable) AddRow(vals RangeRow, m Multiplicity) *UncertainTable {
	t.rel.Add(core.Tuple{Vals: vals, M: m})
	return t
}

// AddCertainRow appends a fully certain row.
func (t *UncertainTable) AddCertainRow(vals ...Value) *UncertainTable {
	t.rel.Add(core.Tuple{Vals: rangeval.CertainTuple(types.Tuple(vals)), M: core.One})
	return t
}

// Rel exposes the underlying AU-relation (advanced use).
func (t *UncertainTable) Rel() *core.Relation { return t.rel }

// Result is an AU-relation produced by a query. Each tuple pairs
// range-annotated values with a multiplicity triple.
type Result = core.Relation

// Options tunes the performance/precision trade-offs of Section 10.4-10.5
// of the paper and executor parallelism; the zero value evaluates the
// exact semantics with one worker goroutine per CPU. Set Workers to 1 for
// the serial reference evaluation (results are identical either way).
type Options = core.Options

// Database is a collection of AU-relations queryable with SQL.
type Database struct {
	rels core.DB
	opts Options
}

// New creates an empty database.
func New() *Database { return &Database{rels: core.DB{}} }

// SetOptions configures compression options for subsequent queries.
func (d *Database) SetOptions(o Options) { d.opts = o }

// Add registers an uncertain table.
func (d *Database) Add(t *UncertainTable) *Database {
	d.rels[t.Name] = t.rel
	return d
}

// AddDeterministic registers a deterministic table (lifted to certain
// annotations).
func (d *Database) AddDeterministic(t *Table) *Database {
	d.rels[t.Name] = core.FromDeterministic(t.rel)
	return d
}

// AddRelation registers a pre-built AU-relation under the given name.
func (d *Database) AddRelation(name string, rel *core.Relation) *Database {
	d.rels[name] = rel
	return d
}

// Relation returns a registered AU-relation.
func (d *Database) Relation(name string) (*core.Relation, error) {
	r, ok := d.rels[name]
	if !ok {
		return nil, fmt.Errorf("audb: unknown table %q", name)
	}
	return r, nil
}

// Plan compiles a SQL query against this database's catalog.
func (d *Database) Plan(q string) (ra.Node, error) {
	return sql.Compile(q, ra.CatalogMap(d.rels.Schemas()))
}

// Query evaluates a SQL query with the bound-preserving AU-DB semantics
// (native engine).
func (d *Database) Query(q string) (*Result, error) {
	plan, err := d.Plan(q)
	if err != nil {
		return nil, err
	}
	return core.Exec(plan, d.rels, d.opts)
}

// QueryPlan evaluates a pre-compiled plan.
func (d *Database) QueryPlan(plan ra.Node) (*Result, error) {
	return core.Exec(plan, d.rels, d.opts)
}

// QueryRewrite evaluates through the relational-encoding middleware
// (Section 10 of the paper): encode, rewrite, run on the deterministic
// engine, decode. The result equals Query's (Theorem 8); exposed for
// cross-checking and for environments that only have a deterministic
// executor.
func (d *Database) QueryRewrite(q string) (*Result, error) {
	plan, err := d.Plan(q)
	if err != nil {
		return nil, err
	}
	return encoding.Exec(plan, d.rels)
}

// QuerySGW evaluates the query over the selected-guess world only —
// conventional selected-guess query processing (SGQP).
func (d *Database) QuerySGW(q string) (*bag.Relation, error) {
	plan, err := d.Plan(q)
	if err != nil {
		return nil, err
	}
	return bag.Exec(plan, d.rels.SGW())
}

// ---------------------------------------------------------------- inputs --

// XTable re-exports the block-independent x-relation model.
type XTable = worlds.XRelation

// XBlock is one block of alternatives.
type XBlock = worlds.XTuple

// NewXTable creates an empty x-relation.
func NewXTable(cols ...string) *XTable { return worlds.NewXRelation(schema.New(cols...)) }

// FromXTable translates an x-table into a bound-preserving AU-relation
// (Section 11.2 of the paper).
func FromXTable(x *XTable) *core.Relation { return translate.XDB(x) }

// FromTITable translates a tuple-independent table (one alternative per
// block) into an AU-relation (Section 11.1).
func FromTITable(x *XTable) (*core.Relation, error) { return translate.TIDB(x) }

// CTable re-exports the C-table model.
type CTable = worlds.CTable

// FromCTable translates a C-table into an AU-relation, deriving attribute
// and multiplicity bounds from the variable domains (Section 11.3). limit
// caps the number of enumerated valuations.
func FromCTable(ct *CTable, limit int) (*core.Relation, error) {
	return translate.CTable(ct, limit)
}

// RepairKey is the key-repair lens (Section 11.4): it groups a
// deterministic table by the named key columns and exposes the repair
// uncertainty as an AU-relation.
func RepairKey(t *Table, keyCols ...string) (*core.Relation, error) {
	idx := make([]int, len(keyCols))
	for i, c := range keyCols {
		j, err := t.rel.Schema.MustIndexOf(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	return translate.KeyRepair(t.rel, idx), nil
}

// MakeUncertain builds a range value from explicit bounds, mirroring the
// MakeUncertain construct of Section 11.4.
func MakeUncertain(lb, sg, ub Value) RangeValue { return translate.MakeUncertain(lb, sg, ub) }
