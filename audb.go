// Package audb is an uncertainty-aware database engine: a Go implementation
// of AU-DBs (attribute-annotated uncertain databases) from "Efficient
// Uncertainty Tracking for Complex Queries with Attribute-level Bounds"
// (Feng, Huber, Glavic, Kennedy; SIGMOD 2021).
//
// An AU-DB annotates one selected-guess world of an uncertain database:
// every attribute value carries bounds [lb/sg/ub] on its value across all
// possible worlds, and every tuple carries a multiplicity triple
// (lb, sg, ub) sandwiching its certain and possible multiplicities. Full
// relational algebra with aggregation evaluates directly on this
// representation in PTIME while preserving the bounds: query answers
// under-approximate the certain answers and over-approximate the possible
// answers, with the selected-guess world behaving exactly like a
// conventional database.
//
// Basic usage:
//
//	db := audb.New()
//	t := audb.NewUncertainTable("locales", "locale", "rate", "size")
//	t.AddRow(audb.RangeRow{
//		audb.CertainOf(audb.Str("Los Angeles")),
//		audb.Range(audb.Float(3), audb.Float(3), audb.Float(4)),
//		audb.CertainOf(audb.Str("metro")),
//	}, audb.CertainMult(1))
//	db.Add(t)
//	res, err := db.Query(`SELECT size, avg(rate) AS rate FROM locales GROUP BY size`)
//
// Uncertain inputs can also be derived from incomplete/probabilistic data
// models (tuple-independent tables, block-independent x-tables, C-tables)
// and from cleaning lenses such as key repair; see FromXTable, FromTITable,
// FromCTable and RepairKey.
//
// Queries go through one context-aware dispatcher, QueryContext, that
// serves all three engines — the native AU-DB executor, the Section 10
// relational-encoding middleware, and selected-guess-world processing —
// selected per query with WithEngine. The native engine evaluates through
// a pipelined physical plan (internal/phys) by default; WithExecMode(
// ExecMaterialized) selects the operator-at-a-time reference executor,
// with bit-identical results. Prepare compiles a query once into a Stmt
// whose Exec skips parse/plan on every execution and is safe for
// concurrent use. Cancelling the context aborts execution promptly with
// ctx.Err(). ExplainAnalyze executes a query with instrumented operators
// and reports per-operator rows/batches/time.
//
// Plans pass a rule-based logical optimizer and, on the native engine, a
// cost-based planning pass: per-table statistics (collected lazily at
// registration, refreshed with Analyze) feed a range-aware cardinality
// estimator that reorders join chains, picks hash build sides and
// pre-sizes the physical operators. WithCostModel(CostOff) keeps the
// written join order; Explain and ExplainAnalyze show the per-operator
// row estimates the decisions were based on.
//
// Performance is tuned per query with functional options (WithWorkers,
// WithJoinCompression, WithAggCompression) or database-wide with
// SetOptions. JoinCompression and AggCompression enable the paper's
// split+compress optimizations (Sections 10.4-10.5), trading bound
// tightness for running time. Workers sets the number of goroutines the
// executor may use for the hot operators (hybrid join, aggregation,
// selection, projection, split): 0 — the default — means one worker per
// CPU, 1 forces the serial reference evaluation. Query results are
// bit-identical for every worker count, so parallelism never affects the
// paper's bound-preservation guarantees.
package audb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/encoding"
	"github.com/audb/audb/internal/metrics"
	"github.com/audb/audb/internal/obs"
	"github.com/audb/audb/internal/opt"
	"github.com/audb/audb/internal/phys"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
	"github.com/audb/audb/internal/stats"
	"github.com/audb/audb/internal/translate"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// Value is an element of the universal domain (null, bool, int, float,
// string, plus the two infinity sentinels).
type Value = types.Value

// Value constructors.
func Int(i int64) Value     { return types.Int(i) }
func Float(f float64) Value { return types.Float(f) }
func Str(s string) Value    { return types.String(s) }
func Bool(b bool) Value     { return types.Bool(b) }
func Null() Value           { return types.Null() }
func NegInfinity() Value    { return types.NegInf() }
func PosInfinity() Value    { return types.PosInf() }

// RangeValue is a range-annotated value [lb/sg/ub].
type RangeValue = rangeval.V

// Range builds a range-annotated value (bounds are normalized to satisfy
// lb <= sg <= ub).
func Range(lb, sg, ub Value) RangeValue { return rangeval.New(lb, sg, ub) }

// CertainOf wraps a deterministic value as the certain range [v/v/v].
func CertainOf(v Value) RangeValue { return rangeval.Certain(v) }

// FullRange marks a completely unknown value with selected guess sg.
func FullRange(sg Value) RangeValue { return rangeval.Full(sg) }

// Multiplicity is a tuple annotation (lb, sg, ub) in N^AU.
type Multiplicity = core.Mult

// CertainMult annotates a tuple that appears exactly n times in every
// world.
func CertainMult(n int64) Multiplicity { return Multiplicity{Lo: n, SG: n, Hi: n} }

// MaybeMult annotates a tuple present in the selected-guess world but
// possibly absent elsewhere.
func MaybeMult() Multiplicity { return Multiplicity{Lo: 0, SG: 1, Hi: 1} }

// Mult builds an explicit annotation.
func Mult(lb, sg, ub int64) Multiplicity { return Multiplicity{Lo: lb, SG: sg, Hi: ub} }

// Row is a deterministic tuple.
type Row = types.Tuple

// RangeRow is a tuple of range-annotated values.
type RangeRow = rangeval.Tuple

// Table is a deterministic bag relation.
type Table struct {
	Name string
	rel  *bag.Relation
}

// NewTable creates an empty deterministic table.
func NewTable(name string, cols ...string) *Table {
	return &Table{Name: name, rel: bag.New(schema.New(cols...))}
}

// AddRow appends a row with multiplicity 1.
func (t *Table) AddRow(vals ...Value) *Table {
	t.rel.Add(types.Tuple(vals), 1)
	return t
}

// Rel exposes the underlying relation (advanced use).
func (t *Table) Rel() *bag.Relation { return t.rel }

// UncertainTable is an AU-relation under construction.
type UncertainTable struct {
	Name string
	rel  *core.Relation
}

// NewUncertainTable creates an empty AU-table.
func NewUncertainTable(name string, cols ...string) *UncertainTable {
	return &UncertainTable{Name: name, rel: core.New(schema.New(cols...))}
}

// AddRow appends a range-annotated row.
func (t *UncertainTable) AddRow(vals RangeRow, m Multiplicity) *UncertainTable {
	t.rel.Add(core.Tuple{Vals: vals, M: m})
	return t
}

// AddCertainRow appends a fully certain row.
func (t *UncertainTable) AddCertainRow(vals ...Value) *UncertainTable {
	t.rel.Add(core.Tuple{Vals: rangeval.CertainTuple(types.Tuple(vals)), M: core.One})
	return t
}

// Rel exposes the underlying AU-relation (advanced use).
func (t *UncertainTable) Rel() *core.Relation { return t.rel }

// Result is an AU-relation produced by a query. Each tuple pairs
// range-annotated values with a multiplicity triple.
type Result = core.Relation

// Options tunes the performance/precision trade-offs of Section 10.4-10.5
// of the paper and executor parallelism; the zero value evaluates the
// exact semantics with one worker goroutine per CPU. Set Workers to 1 for
// the serial reference evaluation (results are identical either way).
type Options = core.Options

// Engine selects which of the three query-processing paths evaluates a
// query. All three implement the same SQL surface; Theorem 8 guarantees
// EngineNative and EngineRewrite produce identical AU-relations, and the
// selected-guess world of either equals the EngineSGW answer.
type Engine int

const (
	// EngineNative is the native bound-preserving AU-DB executor
	// (Sections 7-9 of the paper). The default.
	EngineNative Engine = iota
	// EngineRewrite is the relational-encoding middleware (Section 10):
	// encode, rewrite, run on the deterministic engine, decode.
	EngineRewrite
	// EngineSGW evaluates over the selected-guess world only —
	// conventional selected-guess query processing (SGQP). The result is
	// lifted back to a (fully certain) AU-relation; use Result.SGW to
	// recover the bag relation.
	EngineSGW
)

// String names the engine ("native", "rewrite", "sgw").
func (e Engine) String() string {
	switch e {
	case EngineNative:
		return "native"
	case EngineRewrite:
		return "rewrite"
	case EngineSGW:
		return "sgw"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine resolves an engine name as printed by Engine.String.
func ParseEngine(name string) (Engine, error) {
	switch strings.ToLower(name) {
	case "native", "":
		return EngineNative, nil
	case "rewrite":
		return EngineRewrite, nil
	case "sgw":
		return EngineSGW, nil
	}
	return EngineNative, fmt.Errorf("audb: unknown engine %q (want native, rewrite or sgw)", name)
}

// ExecMode selects the physical executor for the native engine.
type ExecMode int

const (
	// ExecPipelined evaluates through the streaming physical plan layer
	// (internal/phys): Scan→Select→Project→Limit chains run in fixed-size
	// batches without materializing intermediates, LIMIT keeps O(n) state,
	// ORDER BY + LIMIT fuses into a top-k heap, and pipeline breakers run
	// the reference kernels. The default; results are bit-identical to
	// ExecMaterialized.
	ExecPipelined ExecMode = iota
	// ExecMaterialized evaluates with the operator-at-a-time reference
	// executor (core.Exec), which materializes every intermediate
	// relation — the property-test oracle the pipelined executor is
	// checked against.
	ExecMaterialized
)

// String names the mode ("pipelined", "materialized").
func (m ExecMode) String() string {
	if m == ExecMaterialized {
		return "materialized"
	}
	return "pipelined"
}

// ParseExecMode resolves an execution mode name as printed by String.
func ParseExecMode(name string) (ExecMode, error) {
	switch strings.ToLower(name) {
	case "pipelined", "":
		return ExecPipelined, nil
	case "materialized":
		return ExecMaterialized, nil
	}
	return ExecPipelined, fmt.Errorf("audb: unknown exec mode %q (want pipelined or materialized)", name)
}

// OptimizerMode switches the logical optimizer for a query.
type OptimizerMode int

const (
	// OptimizerOn runs the rule-based logical optimizer (internal/opt)
	// over the compiled plan before execution. The default: every rule is
	// result-exact under AU-DB bound semantics, so answers are identical
	// to the unoptimized plan's.
	OptimizerOn OptimizerMode = iota
	// OptimizerOff executes the plan exactly as compiled. Useful for
	// debugging, plan inspection, and the `opt` benchmark baseline.
	OptimizerOff
)

// String names the mode ("on", "off").
func (m OptimizerMode) String() string {
	if m == OptimizerOff {
		return "off"
	}
	return "on"
}

// CostModel switches cost-based planning for a query.
type CostModel int

const (
	// CostOn applies the cost-based planning pass after the rule-based
	// optimizer: catalog statistics drive greedy join reordering, hash
	// build-side selection and size hints for the physical operators, and
	// every operator carries a row estimate shown by Explain and
	// ExplainAnalyze. The default. Results are bit-identical to CostOff —
	// the reorder rule is result-exact under AU-DB bound semantics and
	// the physical hints never affect results — with one presentation
	// caveat: like any plan change in a conventional DBMS, reordering may
	// change the order in which ORDER BY rows with EQUAL sort keys
	// appear (ties keep arrival order per core.OrderCompare; the row
	// multiset, ranges and multiplicities are identical). LIMIT results
	// are protected outright: the planner never reorders or flips build
	// sides below a Limit, whose first-N truncation observes arrival
	// order. Cost-based planning applies to the native engine with the
	// rule optimizer on; it is skipped for compressed executions
	// (JoinCompression/AggCompression), whose merge granularity the
	// restoring projection would perturb.
	CostOn CostModel = iota
	// CostOff executes the rule-optimized plan in the written join order,
	// with default build sides and no pre-sizing. The `cbo` benchmark
	// baseline.
	CostOff
)

// String names the mode ("on", "off").
func (m CostModel) String() string {
	if m == CostOff {
		return "off"
	}
	return "on"
}

// ParseCostModel resolves a cost model name as printed by String.
func ParseCostModel(name string) (CostModel, error) {
	switch strings.ToLower(name) {
	case "on", "":
		return CostOn, nil
	case "off":
		return CostOff, nil
	}
	return CostOn, fmt.Errorf("audb: unknown cost model %q (want on or off)", name)
}

// queryConfig is the resolved per-query configuration: the database
// defaults overlaid with this query's functional options.
type queryConfig struct {
	engine     Engine
	opts       Options
	optimizer  OptimizerMode
	execMode   ExecMode
	cost       CostModel
	rowBatches bool
}

// QueryOption customizes a single query execution, overriding the
// database's defaults (SetOptions) for that query only.
type QueryOption func(*queryConfig)

// WithEngine routes the query to the given engine.
func WithEngine(e Engine) QueryOption {
	return func(c *queryConfig) { c.engine = e }
}

// WithOptimizer switches the logical optimizer for this query.
// Optimization is on by default; WithOptimizer(OptimizerOff) runs the
// plan exactly as the SQL front end compiled it.
func WithOptimizer(m OptimizerMode) QueryOption {
	return func(c *queryConfig) { c.optimizer = m }
}

// WithCostModel switches cost-based planning for this query. It is on by
// default; WithCostModel(CostOff) keeps the written join order and the
// default physical lowering (the rule-based optimizer still runs unless
// WithOptimizer(OptimizerOff) disables it too).
func WithCostModel(m CostModel) QueryOption {
	return func(c *queryConfig) { c.cost = m }
}

// WithExecMode selects the physical executor for this query. The native
// engine runs the pipelined executor by default; WithExecMode(
// ExecMaterialized) forces the operator-at-a-time reference executor.
// Results are bit-identical either way. EngineRewrite and EngineSGW run on
// the deterministic engine and ignore it.
func WithExecMode(m ExecMode) QueryOption {
	return func(c *queryConfig) { c.execMode = m }
}

// WithWorkers sets the executor worker-goroutine count for this query:
// 0 means one worker per CPU, 1 forces the serial reference evaluation.
// Like the compression options it tunes the native engine; EngineRewrite
// and EngineSGW run on the (serial, exact) deterministic engine and
// ignore it.
func WithWorkers(n int) QueryOption {
	return func(c *queryConfig) { c.opts.Workers = n }
}

// WithRowBatches forces the pipelined executor's legacy row-at-a-time
// batch representation for this query: scans densify sparse tables per
// batch instead of streaming columnar views through the vectorized
// kernels. Results are bit-identical either way; the knob exists for A/B
// benchmarking and debugging. EngineNative's pipelined executor only.
func WithRowBatches(on bool) QueryOption {
	return func(c *queryConfig) { c.rowBatches = on }
}

// WithJoinCompression enables the split+Cpr join optimization
// (Section 10.4) with the given compression target; 0 disables it.
// EngineNative only.
func WithJoinCompression(target int) QueryOption {
	return func(c *queryConfig) { c.opts.JoinCompression = target }
}

// WithAggCompression compresses the possible-group side of aggregation
// (Section 10.5) to the given target; 0 disables it. EngineNative only.
func WithAggCompression(target int) QueryOption {
	return func(c *queryConfig) { c.opts.AggCompression = target }
}

// Database is a collection of AU-relations queryable with SQL. All methods
// are safe for concurrent use: registration goes through a mutex-guarded
// catalog and every query executes over an immutable snapshot of it.
// (Mutating a registered table's rows while queries are in flight remains
// the caller's race to avoid.)
type Database struct {
	cat *core.Catalog
	// st caches per-table statistics for the cost-based planner. The
	// catalog notifies it of every Register/Drop (collection itself is
	// lazy), so statistics are never served for a dropped table.
	st *stats.Registry
	// met holds the pre-resolved session-layer metric handles (see
	// observe.go); hook is the optional per-query observer installed
	// with SetQueryHook (stores a *func(QueryInfo)).
	met  *dbMetrics
	hook atomic.Value

	mu   sync.RWMutex
	opts Options // database-wide defaults, overridable per query
}

// New creates an empty database.
func New() *Database {
	cat := core.NewCatalog()
	st := stats.NewRegistry()
	cat.SetObserver(st)
	met := newDBMetrics()
	st.Instrument(met.reg)
	return &Database{cat: cat, st: st, met: met}
}

// SetOptions configures the database-wide default execution options.
// Per-query functional options (WithWorkers, WithJoinCompression,
// WithAggCompression) override these for a single execution.
func (d *Database) SetOptions(o Options) {
	d.mu.Lock()
	d.opts = o
	d.mu.Unlock()
}

// defaults snapshots the database-wide options.
func (d *Database) defaults() Options {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.opts
}

// Add registers an uncertain table.
func (d *Database) Add(t *UncertainTable) *Database {
	d.cat.Register(t.Name, t.rel)
	return d
}

// AddDeterministic registers a deterministic table (lifted to certain
// annotations).
func (d *Database) AddDeterministic(t *Table) *Database {
	d.cat.Register(t.Name, core.FromDeterministic(t.rel))
	return d
}

// AddRelation registers a pre-built AU-relation under the given name.
func (d *Database) AddRelation(name string, rel *core.Relation) *Database {
	d.cat.Register(name, rel)
	return d
}

// Drop removes a table; unknown names are a no-op.
func (d *Database) Drop(name string) { d.cat.Drop(name) }

// Tables lists the registered table names in sorted order.
func (d *Database) Tables() []string { return d.cat.Tables() }

// NumTables returns the number of registered tables.
func (d *Database) NumTables() int { return d.cat.Len() }

// Relation returns a registered AU-relation.
func (d *Database) Relation(name string) (*core.Relation, error) {
	r, ok := d.cat.Lookup(name)
	if !ok {
		return nil, schema.UnknownTable("audb", name, d.cat.Tables())
	}
	return r, nil
}

// TableStats is the per-table statistics summary the cost-based planner
// consumes (see internal/stats for the collected measures).
type TableStats = stats.TableStats

// ColStats is one column's statistics summary.
type ColStats = stats.ColStats

// TableStats returns the current statistics for a registered table,
// collecting them on first use. Statistics reflect the rows at collection
// time; use Analyze after mutating a registered relation in place.
func (d *Database) TableStats(name string) (*TableStats, error) {
	if ts, ok := d.st.TableStats(name); ok {
		return ts, nil
	}
	return nil, schema.UnknownTable("audb", name, d.cat.Tables())
}

// StoragePolicy decides the storage representation of registered tables:
// mostly-certain tables compact to a sparse columnar form (flat value
// slices for certain columns) that the certain-only kernel fast paths
// read directly. See internal/core.StoragePolicy.
type StoragePolicy = core.StoragePolicy

// StorageMode selects how a table's representation is chosen.
type StorageMode = core.ReprMode

// Storage representation modes for SetStoragePolicy and SetTableStorage.
const (
	// StorageAuto compacts a table when its flat-column fraction reaches
	// the policy threshold. The default.
	StorageAuto = core.ReprAuto
	// StorageForceDense keeps every relation in the row-major layout.
	StorageForceDense = core.ReprForceDense
	// StorageForceSparse compacts every non-empty relation.
	StorageForceSparse = core.ReprForceSparse
)

// SetStoragePolicy installs the storage representation policy applied to
// tables registered from now on. Already registered tables keep their
// representation until re-registered, re-analyzed (Analyze re-evaluates
// under the current policy) or overridden with SetTableStorage.
func (d *Database) SetStoragePolicy(p StoragePolicy) { d.cat.SetStoragePolicy(p) }

// StoragePolicy returns the current storage representation policy.
func (d *Database) StoragePolicy() StoragePolicy { return d.cat.StoragePolicy() }

// Analyze recollects the statistics for a registered table immediately
// and returns them. Registration already (lazily) collects statistics, so
// Analyze is only needed after mutating a registered relation's rows in
// place — or to pay the collection cost eagerly at load time.
//
// Analyze also re-evaluates the table's storage representation under the
// current policy: a table whose rows went uncertain (mutation densified
// it) or certain enough to compact is flipped by atomically registering a
// freshly built replacement, never by mutating the relation queries may
// be scanning.
func (d *Database) Analyze(name string) (*TableStats, error) {
	return d.restorage(name, d.cat.StoragePolicy())
}

// SetTableStorage re-evaluates one table's representation under an
// explicit mode override (the policy threshold still applies to
// StorageAuto), returning the refreshed statistics. Use it to pin a table
// dense or sparse regardless of the database-wide policy.
func (d *Database) SetTableStorage(name string, mode StorageMode) (*TableStats, error) {
	pol := d.cat.StoragePolicy()
	pol.Mode = mode
	return d.restorage(name, pol)
}

// restorage is the shared body of Analyze and SetTableStorage: one pass
// over the table feeds a statistics collector and a relation builder, the
// builder's choice under pol decides the representation, and a change is
// applied with a compare-and-swap replacement so a concurrent Register or
// Drop is never clobbered. The refreshed statistics are primed into the
// registry (guarded the same way, see stats.Registry.Prime).
func (d *Database) restorage(name string, pol StoragePolicy) (*TableStats, error) {
	rel, ok := d.cat.Lookup(name)
	if !ok {
		return nil, schema.UnknownTable("audb", name, d.cat.Tables())
	}
	col := stats.NewCollector(name, rel.Schema)
	b := core.NewRelationBuilder(rel.Schema, rel.Len())
	_ = rel.EachTuple(func(t core.Tuple) error {
		col.Add(t)
		b.Add(t)
		return nil
	})
	ts := col.Finish()
	cur := rel
	if fresh := b.Finish(pol); fresh.Repr() != rel.Repr() || fresh.FastCertain() != rel.FastCertain() {
		if d.cat.ReplaceIf(name, rel, fresh) {
			cur = fresh
		}
	}
	ts.SetStorage(cur)
	d.st.Prime(name, cur, ts)
	return ts, nil
}

// TableLoader streams rows into a new table: the rows accumulate in a
// core.RelationBuilder (so the table materializes directly in its final
// storage representation, chosen by the database policy at Commit) and
// feed a statistics collector in the same pass, so the committed table
// arrives with primed statistics — no separate Analyze, no second scan.
// The server's COPY ingest is built on this. Not safe for concurrent use.
type TableLoader struct {
	db   *Database
	name string
	b    *core.RelationBuilder
	c    *stats.Collector
}

// NewLoader starts a streaming load of a new table.
func (d *Database) NewLoader(name string, cols ...string) *TableLoader {
	sch := schema.New(cols...)
	return &TableLoader{
		db:   d,
		name: name,
		b:    core.NewRelationBuilder(sch, 0),
		c:    stats.NewCollector(name, sch),
	}
}

// Arity returns the loader's column count.
func (l *TableLoader) Arity() int { return l.b.Arity() }

// Len returns the number of rows accepted so far.
func (l *TableLoader) Len() int { return l.b.Len() }

// Add appends one row. Rows with a non-positive upper multiplicity are
// dropped, exactly as registration would; vals must match the arity. The
// row is copied — callers may reuse the backing slice.
func (l *TableLoader) Add(vals RangeRow, m Multiplicity) {
	t := core.Tuple{Vals: vals, M: m}
	if m.Hi > 0 {
		l.c.Add(t)
	}
	l.b.Add(t)
}

// Commit registers the loaded table (replacing any previous table of that
// name) with its statistics primed, and returns the relation. The loader
// must not be used afterwards.
func (l *TableLoader) Commit() *core.Relation {
	rel := l.b.Finish(l.db.cat.StoragePolicy())
	l.db.cat.RegisterPrebuilt(l.name, rel)
	ts := l.c.Finish()
	ts.SetStorage(rel)
	l.db.st.Prime(l.name, rel, ts)
	return rel
}

// Plan compiles a SQL query against this database's catalog.
func (d *Database) Plan(q string) (ra.Node, error) {
	return sql.Compile(q, ra.CatalogMap(d.cat.Schemas()))
}

// RuleApplication records one optimizer rule that changed the plan.
type RuleApplication struct {
	// Rule is the rule name (e.g. "push-selections").
	Rule string
	// Pass is the 1-based fixpoint pass the rule fired in.
	Pass int
	// Plan is the rendered plan after the rule applied.
	Plan string
}

// PlanExplanation is the result of Explain: the compiled plan, the
// optimized plan, and the per-rule trace in between.
type PlanExplanation struct {
	// Query is the SQL text.
	Query string
	// Plan is the rendered plan as compiled by the SQL front end.
	Plan string
	// Optimized is the rendered plan after optimization.
	Optimized string
	// Rules lists the effective rule applications in order.
	Rules []RuleApplication
	// Passes is the number of fixpoint passes the optimizer ran.
	Passes int
	// Stats carries the per-operator execution counters (rows, batches,
	// time) when the explanation was produced by ExplainAnalyze; nil for
	// plain Explain.
	Stats *metrics.ExecStats
}

// String renders the explanation the way audbsh -explain prints it. The
// body rendering is the optimizer trace's own (one format, one place).
func (e *PlanExplanation) String() string {
	tr := opt.Trace{Input: e.Plan, Output: e.Optimized, Passes: e.Passes}
	for _, r := range e.Rules {
		tr.Steps = append(tr.Steps, opt.Step{Rule: r.Rule, Pass: r.Pass, Plan: r.Plan})
	}
	body := tr.String()
	if e.Query != "" {
		body = fmt.Sprintf("query: %s\n%s", e.Query, body)
	}
	if e.Stats != nil {
		body += e.Stats.String()
	}
	return body
}

// Explain compiles a SQL query and runs the logical optimizer and the
// cost-based planning pass with tracing, without executing anything. The
// same final plan is what QueryContext executes by default. With cost-
// based planning active (the default), the optimized plan is rendered
// with each operator's estimated row count, and join reorderings appear
// in the rule trace; options (WithOptimizer, WithCostModel, WithEngine,
// the compression knobs) select the same planning path they select for
// execution.
func (d *Database) Explain(q string, opts ...QueryOption) (*PlanExplanation, error) {
	snap := d.cat.Snapshot()
	cat := ra.CatalogMap(snap.Schemas())
	plan, err := sql.Compile(q, cat)
	if err != nil {
		return nil, err
	}
	exp, _, _, err := d.explainPlan(q, plan, cat, d.resolve(opts))
	return exp, err
}

// ExplainAnalyze is the ANALYZE mode of Explain: it compiles and (by
// default) optimizes the query like Explain, then actually executes it
// through the instrumented physical plan layer and attaches per-operator
// rows/batches/time counters (Stats) to the explanation. Options compose
// as for QueryContext — WithWorkers, the compression knobs and
// WithExecMode shape the physical plan being measured (ExecMaterialized
// instruments the operator-at-a-time lowering, every operator a
// materialization point). Only the native engine is instrumented;
// WithEngine selecting another engine is an error. The query's result is
// discarded; cancelling ctx aborts the execution.
func (d *Database) ExplainAnalyze(ctx context.Context, q string, opts ...QueryOption) (*PlanExplanation, error) {
	snap := d.cat.Snapshot()
	cat := ra.CatalogMap(snap.Schemas())
	plan, err := sql.Compile(q, cat)
	if err != nil {
		return nil, err
	}
	cfg := d.resolve(opts)
	if cfg.engine != EngineNative {
		return nil, fmt.Errorf("audb: ExplainAnalyze instruments the native engine only (got engine %v)", cfg.engine)
	}
	exp, execPlan, ann, err := d.explainPlan(q, plan, cat, cfg)
	if err != nil {
		return nil, err
	}
	mode := phys.Pipelined
	if cfg.execMode == ExecMaterialized {
		mode = phys.Materialized
	}
	pp, err := phys.Compile(execPlan, snap, phys.Options{Mode: mode, RowBatches: cfg.rowBatches, Exec: cfg.opts, Analyze: true, Est: ann})
	if err != nil {
		return nil, err
	}
	if _, err := pp.Execute(ctx); err != nil {
		return nil, err
	}
	exp.Stats = pp.Stats()
	return exp, nil
}

// ExplainPlan is Explain for a pre-compiled plan.
func (d *Database) ExplainPlan(plan ra.Node, opts ...QueryOption) (*PlanExplanation, error) {
	exp, _, _, err := d.explainPlan("", plan, ra.CatalogMap(d.cat.Schemas()), d.resolve(opts))
	return exp, err
}

// resolve overlays the per-query options onto the database defaults.
func (d *Database) resolve(opts []QueryOption) queryConfig {
	cfg := queryConfig{engine: EngineNative, opts: d.defaults()}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// costEnabled reports whether the cost-based planning pass runs for this
// configuration: cost model on, over a rule-optimized plan, and not
// compressed (the reorder rule's restoring projection is a merge point,
// observable under split+compress — the same gate the pipelined executor
// applies to streaming projections).
func (d *Database) costEnabled(cfg queryConfig) bool {
	return cfg.cost == CostOn && cfg.optimizer == OptimizerOn && !cfg.opts.Compressed()
}

// explainPlan runs the optimizer (with tracing) and, for the native
// engine, the cost-based planning pass, assembling the explanation. It
// also returns the final plan and its cost annotations for callers that
// go on to execute it (ExplainAnalyze).
func (d *Database) explainPlan(q string, plan ra.Node, cat ra.CatalogMap, cfg queryConfig) (*PlanExplanation, ra.Node, *opt.Annotations, error) {
	exp := &PlanExplanation{Query: q}
	cur := plan
	if cfg.optimizer == OptimizerOn {
		optimized, trace, err := opt.OptimizeTrace(plan, cat)
		if err != nil {
			return nil, nil, nil, err
		}
		exp.Plan, exp.Optimized, exp.Passes = trace.Input, trace.Output, trace.Passes
		for _, s := range trace.Steps {
			exp.Rules = append(exp.Rules, RuleApplication{Rule: s.Rule, Pass: s.Pass, Plan: s.Plan})
		}
		cur = optimized
	} else {
		rendered := ra.Render(plan)
		exp.Plan, exp.Optimized = rendered, rendered
	}
	var ann *opt.Annotations
	if cfg.engine == EngineNative && d.costEnabled(cfg) {
		var steps []opt.Step
		var err error
		cur, ann, steps, err = opt.CostOptimizeTrace(cur, cat, d.st)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(steps) > 0 {
			exp.Passes++
		}
		for _, s := range steps {
			exp.Rules = append(exp.Rules, RuleApplication{Rule: s.Rule, Pass: exp.Passes, Plan: s.Plan})
		}
		// The final plan renders with per-operator row estimates — the
		// EXPLAIN surface of the cost model.
		exp.Optimized = ann.Render(cur)
	}
	return exp, cur, ann, nil
}

// QueryContext compiles and evaluates a SQL query. The engine and
// execution options default to EngineNative with the database's SetOptions
// values; functional options override both per query. Cancelling ctx
// aborts the execution promptly and returns ctx.Err().
//
// Compilation and execution see one catalog snapshot, so a concurrent
// table replacement between planning and execution cannot desynchronize
// the plan from the data it runs over.
func (d *Database) QueryContext(ctx context.Context, q string, opts ...QueryOption) (*Result, error) {
	snap := d.cat.Snapshot()
	plan, err := sql.Compile(q, ra.CatalogMap(snap.Schemas()))
	if err != nil {
		return nil, err
	}
	return d.dispatch(ctx, snap, plan, nil, q, opts)
}

// ExecPlan evaluates a pre-compiled plan with the same dispatch semantics
// as QueryContext. The plan must have been compiled against this
// database's catalog (Plan); if a referenced table's schema changed since,
// re-plan first.
func (d *Database) ExecPlan(ctx context.Context, plan ra.Node, opts ...QueryOption) (*Result, error) {
	return d.dispatch(ctx, d.cat.Snapshot(), plan, nil, "", opts)
}

// dispatch is the single execution path behind QueryContext, ExecPlan and
// Stmt.Exec: resolve options, optimize the plan (unless switched off),
// and route to an engine, executing over the given catalog snapshot.
// q is the statement text when the caller has it ("" for pre-compiled
// plans) — it feeds the query hook, never execution. The wrapper
// records the session metrics and, when a hook is installed, assembles
// the QueryInfo; both are allocation-free when idle.
func (d *Database) dispatch(ctx context.Context, snap core.DB, plan ra.Node, st *Stmt, q string, opts []QueryOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ra.IsNil(plan) {
		return nil, fmt.Errorf("audb: nil plan")
	}
	cfg := d.resolve(opts)
	start := time.Now()
	res, estRows, hasEst, err := d.run(ctx, snap, plan, st, cfg)
	dur := time.Since(start)
	d.met.record(cfg, dur, err)
	if hook := d.queryHook(); hook != nil {
		text := q
		if text == "" && st != nil {
			text = st.text
		}
		info := QueryInfo{
			Query:       text,
			Fingerprint: obs.Fingerprint(text),
			Engine:      cfg.engine.String(),
			Duration:    dur,
			EstRows:     estRows,
			HasEst:      hasEst,
			ErrCode:     errCodeOf(err),
		}
		if cfg.engine == EngineNative {
			info.ExecMode = cfg.execMode.String()
		}
		if res != nil {
			info.Rows = int64(res.Len())
		}
		hook(info)
	}
	return res, err
}

// run is dispatch's engine-routing body. For the native engine it also
// reports the cost model's root-cardinality estimate so the query hook
// can surface est-vs-actual drift.
func (d *Database) run(ctx context.Context, snap core.DB, plan ra.Node, st *Stmt, cfg queryConfig) (res *Result, estRows int64, hasEst bool, err error) {
	if cfg.optimizer == OptimizerOn {
		if st != nil {
			plan, err = st.optimizedPlan(snap)
		} else {
			plan, err = opt.OptimizeObserved(plan, ra.CatalogMap(snap.Schemas()), d.met.onRule)
		}
		if err != nil {
			return nil, 0, false, err
		}
	}
	switch cfg.engine {
	case EngineNative:
		// Cost-based planning runs per execution (it is a cheap tree
		// pass) so prepared statements always plan against the current
		// statistics; only the rule-based optimization is cached.
		var est *opt.Annotations
		if d.costEnabled(cfg) {
			plan, est, err = opt.CostOptimize(plan, ra.CatalogMap(snap.Schemas()), d.st)
			if err != nil {
				return nil, 0, false, err
			}
		}
		estRows, hasEst = est.EstRows(plan)
		if cfg.execMode == ExecMaterialized {
			res, err = core.Exec(ctx, plan, snap, cfg.opts)
			return res, estRows, hasEst, err
		}
		res, err = phys.Exec(ctx, plan, snap, phys.Options{RowBatches: cfg.rowBatches, Exec: cfg.opts, Est: est})
		return res, estRows, hasEst, err
	case EngineRewrite:
		// Encode only the tables the plan scans: the middleware pays an
		// O(table size) encoding cost per execution, and unrelated
		// catalog entries must not be part of it.
		db, err := scanSubset(plan, snap)
		if err != nil {
			return nil, 0, false, err
		}
		if st != nil {
			rp, rs, err := st.rewritten(db, plan, cfg.optimizer)
			if err != nil {
				return nil, 0, false, err
			}
			res, err = encoding.ExecRewritten(ctx, rp, rs, db)
			return res, 0, false, err
		}
		res, err = encoding.Exec(ctx, plan, db)
		return res, 0, false, err
	case EngineSGW:
		db, err := scanSubset(plan, snap)
		if err != nil {
			return nil, 0, false, err
		}
		sgw, err := db.SGWContext(ctx)
		if err != nil {
			return nil, 0, false, err
		}
		det, err := bag.Exec(ctx, plan, sgw)
		if err != nil {
			return nil, 0, false, err
		}
		return core.FromDeterministic(det), 0, false, nil
	}
	return nil, 0, false, fmt.Errorf("audb: unknown engine %v", cfg.engine)
}

// scanSubset restricts a catalog snapshot to the tables the plan scans,
// erroring up front — with the whole catalog enumerated, sorted — when
// the plan references a table the snapshot does not have, so no engine
// pays an O(database) encode/extraction just to fail the same way.
func scanSubset(plan ra.Node, snap core.DB) (core.DB, error) {
	names := map[string]bool{}
	var walk func(n ra.Node)
	walk = func(n ra.Node) {
		if ra.IsNil(n) {
			return
		}
		if sc, ok := n.(*ra.Scan); ok {
			names[sc.Table] = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan)
	out := make(core.DB, len(names))
	for n := range names {
		// Key by the resolved catalog name so case-variant spellings of
		// one table collapse to a single entry (encoded once).
		k, ok := schema.ResolveFold(snap, n)
		if !ok {
			return nil, schema.UnknownTable("audb", n, snap.Names())
		}
		out[k] = snap[k]
	}
	return out, nil
}

// Stmt is a prepared statement: the query is parsed and planned once at
// Prepare time (and, for EngineRewrite, rewritten once on first use), so
// repeated executions skip the front end entirely. A Stmt is immutable
// after preparation and safe for concurrent Exec from many goroutines;
// results are bit-identical to unprepared execution.
//
// The plan is bound to the table schemas at Prepare time. Registering new
// tables afterwards is fine; changing the schema of a table the statement
// references requires re-preparing.
type Stmt struct {
	db   *Database
	text string
	plan ra.Node

	optMu   sync.Mutex
	optPlan ra.Node

	rewriteMu sync.Mutex
	// One Section 10 rewrite cache per optimizer mode, so toggling
	// WithOptimizer per execution never serves the wrong plan.
	rewrites [2]*rewriteEntry
}

// rewriteEntry is one cached Section 10 rewrite.
type rewriteEntry struct {
	plan ra.Node
	sch  schema.Schema
}

// Prepare compiles a SQL query into a reusable statement.
func (d *Database) Prepare(q string) (*Stmt, error) {
	plan, err := d.Plan(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: d, text: q, plan: plan}, nil
}

// Text returns the SQL the statement was prepared from.
func (s *Stmt) Text() string { return s.text }

// Plan returns the cached compiled plan (advanced use; treat as
// read-only).
func (s *Stmt) Plan() ra.Node { return s.plan }

// Exec evaluates the prepared statement with the same dispatch semantics
// as QueryContext. Safe for concurrent use.
func (s *Stmt) Exec(ctx context.Context, opts ...QueryOption) (*Result, error) {
	return s.db.dispatch(ctx, s.db.cat.Snapshot(), s.plan, s, s.text, opts)
}

// optimizedPlan caches the logically optimized plan. Optimization
// depends only on the referenced schemas (which the statement is bound
// to), so one optimization serves every execution; like the rewrite
// cache, failures are not cached and are retried on the next execution.
func (s *Stmt) optimizedPlan(snap core.DB) (ra.Node, error) {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	if s.optPlan != nil {
		s.db.met.stmtHits.Add(1)
		return s.optPlan, nil
	}
	s.db.met.stmtMiss.Add(1)
	plan, err := opt.OptimizeObserved(s.plan, ra.CatalogMap(snap.Schemas()), s.db.met.onRule)
	if err != nil {
		return nil, err
	}
	s.optPlan = plan
	return plan, nil
}

// rewritten caches the Section 10 rewrite of the plan this execution
// runs (the optimized plan by default, the raw plan under
// WithOptimizer(OptimizerOff)). The rewrite depends only on the
// referenced schemas, so one successful rewrite per optimizer mode
// serves every execution. Failures are not cached: a rewrite that fails
// against the current catalog (e.g. a referenced table was dropped) is
// retried on the next execution, keeping Stmt.Exec equivalent to
// unprepared execution over time.
func (s *Stmt) rewritten(snap core.DB, plan ra.Node, mode OptimizerMode) (ra.Node, schema.Schema, error) {
	slot := 0
	if mode == OptimizerOff {
		slot = 1
	}
	s.rewriteMu.Lock()
	defer s.rewriteMu.Unlock()
	if e := s.rewrites[slot]; e != nil {
		return e.plan, e.sch, nil
	}
	rp, sch, err := encoding.Rewrite(plan, ra.CatalogMap(snap.Schemas()))
	if err != nil {
		return nil, schema.Schema{}, err
	}
	s.rewrites[slot] = &rewriteEntry{plan: rp, sch: sch}
	return rp, sch, nil
}

// ------------------------------------------------- deprecated wrappers --

// Query evaluates a SQL query with the bound-preserving AU-DB semantics
// (native engine).
//
// Deprecated: Use QueryContext, which adds cancellation and per-query
// options. Query(q) is QueryContext(context.Background(), q).
func (d *Database) Query(q string) (*Result, error) {
	return d.QueryContext(context.Background(), q)
}

// QueryPlan evaluates a pre-compiled plan.
//
// Deprecated: Use ExecPlan (or Prepare/Stmt.Exec, which also caches the
// plan for you).
func (d *Database) QueryPlan(plan ra.Node) (*Result, error) {
	return d.ExecPlan(context.Background(), plan)
}

// QueryRewrite evaluates through the relational-encoding middleware
// (Section 10 of the paper): encode, rewrite, run on the deterministic
// engine, decode. The result equals Query's (Theorem 8); exposed for
// cross-checking and for environments that only have a deterministic
// executor.
//
// Deprecated: Use QueryContext with WithEngine(EngineRewrite).
func (d *Database) QueryRewrite(q string) (*Result, error) {
	return d.QueryContext(context.Background(), q, WithEngine(EngineRewrite))
}

// QuerySGW evaluates the query over the selected-guess world only —
// conventional selected-guess query processing (SGQP).
//
// Deprecated: Use QueryContext with WithEngine(EngineSGW); its Result is
// the same answer lifted to certain annotations (Result.SGW recovers the
// bag relation this method returns).
func (d *Database) QuerySGW(q string) (*bag.Relation, error) {
	res, err := d.QueryContext(context.Background(), q, WithEngine(EngineSGW))
	if err != nil {
		return nil, err
	}
	return res.SGW(), nil
}

// ---------------------------------------------------------------- inputs --

// XTable re-exports the block-independent x-relation model.
type XTable = worlds.XRelation

// XBlock is one block of alternatives.
type XBlock = worlds.XTuple

// NewXTable creates an empty x-relation.
func NewXTable(cols ...string) *XTable { return worlds.NewXRelation(schema.New(cols...)) }

// FromXTable translates an x-table into a bound-preserving AU-relation
// (Section 11.2 of the paper).
func FromXTable(x *XTable) *core.Relation { return translate.XDB(x) }

// FromTITable translates a tuple-independent table (one alternative per
// block) into an AU-relation (Section 11.1).
func FromTITable(x *XTable) (*core.Relation, error) { return translate.TIDB(x) }

// CTable re-exports the C-table model.
type CTable = worlds.CTable

// FromCTable translates a C-table into an AU-relation, deriving attribute
// and multiplicity bounds from the variable domains (Section 11.3). limit
// caps the number of enumerated valuations.
func FromCTable(ct *CTable, limit int) (*core.Relation, error) {
	return translate.CTable(ct, limit)
}

// RepairKey is the key-repair lens (Section 11.4): it groups a
// deterministic table by the named key columns and exposes the repair
// uncertainty as an AU-relation.
func RepairKey(t *Table, keyCols ...string) (*core.Relation, error) {
	idx := make([]int, len(keyCols))
	for i, c := range keyCols {
		j, err := t.rel.Schema.MustIndexOf(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	return translate.KeyRepair(t.rel, idx), nil
}

// MakeUncertain builds a range value from explicit bounds, mirroring the
// MakeUncertain construct of Section 11.4.
func MakeUncertain(lb, sg, ub Value) RangeValue { return translate.MakeUncertain(lb, sg, ub) }
