package audb

import (
	"context"
	"strings"
	"testing"

	"github.com/audb/audb/internal/testutil"
)

func obsTestDB() *Database {
	a := NewUncertainTable("a", "x", "y")
	b := NewUncertainTable("b", "x", "z")
	for i := 0; i < 32; i++ {
		a.AddCertainRow(Int(int64(i)), Int(int64(i%5)))
		b.AddCertainRow(Int(int64(i%8)), Int(int64(i)))
	}
	return New().Add(a).Add(b)
}

const obsJoinQuery = `SELECT a.x, b.z FROM a, b WHERE a.x = b.x AND a.y < 4`

// TestTraceSpans: a traced WHERE-join shows the full lifecycle —
// parse, per-rule optimize, cost, lower, execute with per-operator
// children — and the operator spans agree with ExplainAnalyze.
func TestTraceSpans(t *testing.T) {
	testutil.NoLeaks(t)
	db := obsTestDB()
	qt, err := db.Trace(context.Background(), obsJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if qt.Result == nil || qt.Result.Len() == 0 {
		t.Fatal("traced query returned no result")
	}
	out := qt.String()
	for _, name := range []string{"query", "parse", "optimize", "cost", "lower", "execute"} {
		if !strings.Contains(out, name) {
			t.Errorf("trace missing %q span:\n%s", name, out)
		}
	}
	// The optimizer fired at least one rule on this query (selection
	// pushdown applies), and it shows up as a child span.
	if !strings.Contains(out, "rule ") {
		t.Errorf("trace has no per-rule spans:\n%s", out)
	}
	// Per-operator execution spans carry the ExplainAnalyze counters.
	exp, err := db.ExplainAnalyze(context.Background(), obsJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Stats == nil || exp.Stats.Root == nil {
		t.Fatal("ExplainAnalyze returned no stats")
	}
	var ops []string
	for _, line := range strings.Split(exp.Stats.String(), "\n")[1:] {
		f := strings.Fields(line)
		if len(f) > 0 {
			ops = append(ops, f[0])
		}
	}
	for _, op := range ops {
		if !strings.Contains(out, op) {
			t.Errorf("trace missing operator %q present in ExplainAnalyze:\n%s", op, out)
		}
	}
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "strategy=") {
		t.Errorf("operator spans missing counters:\n%s", out)
	}
}

// TestTraceNativeOnly: like ExplainAnalyze, Trace refuses the
// uninstrumented engines.
func TestTraceNativeOnly(t *testing.T) {
	db := obsTestDB()
	if _, err := db.Trace(context.Background(), `SELECT x FROM a`, WithEngine(EngineRewrite)); err == nil {
		t.Fatal("Trace with EngineRewrite should error")
	}
}

// TestQueryHook: the hook sees fingerprint, engine, rows, and the cost
// model's root estimate for a plain query; errors carry a code.
func TestQueryHook(t *testing.T) {
	testutil.NoLeaks(t)
	db := obsTestDB()
	var got []QueryInfo
	db.SetQueryHook(func(qi QueryInfo) { got = append(got, qi) })

	if _, err := db.QueryContext(context.Background(), obsJoinQuery); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook calls = %d, want 1", len(got))
	}
	qi := got[0]
	if qi.Query != obsJoinQuery || qi.Engine != "native" || qi.ExecMode != "pipelined" {
		t.Fatalf("QueryInfo = %+v", qi)
	}
	if want := "select a.x, b.z from a, b where a.x = b.x and a.y < ?"; qi.Fingerprint != want {
		t.Fatalf("fingerprint = %q, want %q", qi.Fingerprint, want)
	}
	if qi.Rows == 0 || qi.ErrCode != "" {
		t.Fatalf("QueryInfo rows/err = %+v", qi)
	}
	if !qi.HasEst || qi.EstRows <= 0 {
		t.Fatalf("expected a root cardinality estimate, got %+v", qi)
	}

	// A failing query reports its code, and the hook can be removed.
	if _, err := db.QueryContext(context.Background(), `SELECT nope FROM a`); err == nil {
		t.Fatal("expected compile error")
	}
	// Compile errors happen before dispatch; force a dispatch error via
	// a cancelled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, obsJoinQuery); err == nil {
		t.Fatal("expected cancellation")
	}
	last := got[len(got)-1]
	if last.ErrCode != "canceled" {
		t.Fatalf("ErrCode = %q, want canceled", last.ErrCode)
	}
	db.SetQueryHook(nil)
	n := len(got)
	if _, err := db.QueryContext(context.Background(), obsJoinQuery); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatal("hook still firing after SetQueryHook(nil)")
	}
}

// TestDatabaseMetrics: the session-layer counters move — queries by
// engine and mode, statement-cache hits, rule hits, stats collections.
func TestDatabaseMetrics(t *testing.T) {
	testutil.NoLeaks(t)
	db := obsTestDB()
	ctx := context.Background()
	if _, err := db.QueryContext(ctx, obsJoinQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryContext(ctx, `SELECT x FROM a`, WithEngine(EngineSGW)); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`SELECT x FROM a WHERE y = 1`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Exec(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Metrics().Snapshot()
	for _, want := range []string{
		`audb_queries_total{engine="native"} 4`,
		`audb_queries_total{engine="sgw"} 1`,
		`audb_native_exec_total{mode="pipelined"} 4`,
		`audb_stmt_cache_hits_total 2`,
		`audb_stmt_cache_misses_total 1`,
		`audb_stats_collections_total`,
		`audb_query_seconds count=5`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
	// The join query applied at least one rule.
	if !strings.Contains(snap, `audb_opt_rule_hits_total{rule=`) {
		t.Errorf("no rule hit counters:\n%s", snap)
	}
}
