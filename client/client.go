// Package client is the Go client for audbd, the AU-DB network server.
// It mirrors the in-process session API (audb.Database): Query executes
// SQL and returns the same *audb.Result a local QueryContext would,
// Prepare/Stmt.Exec reuse a server-side compiled statement, Explain and
// ExplainAnalyze return the server-rendered plan text, and Bulk streams
// range tuples into a new table with the COPY protocol. A small Pool
// reuses connections across concurrent callers.
//
// Cancellation propagates: when the context of an in-flight call is
// cancelled, the client sends a Cancel frame and returns ctx.Err()
// immediately; the server aborts the query through its own context
// within milliseconds, and the connection stays usable. Closing the
// connection (or the client process dying) aborts server-side work just
// as fast.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/wire"
)

// Config tunes a connection. The zero value picks defaults.
type Config struct {
	// Name identifies the client in server logs; default "audb-client".
	Name string
	// DialTimeout bounds connection + handshake; default 10s.
	DialTimeout time.Duration
	// MaxFrame caps incoming frame payloads; 0 means wire.DefaultMaxFrame.
	MaxFrame int
}

// ErrClosed is returned by calls on a closed or broken connection.
var ErrClosed = errors.New("client: connection closed")

// ServerError is an error reported by the server, carrying the stable
// wire code ("sql", "canceled", "queue_timeout", "shutdown", ...).
type ServerError struct {
	Code    string
	Message string
}

func (e *ServerError) Error() string { return fmt.Sprintf("audbd: %s: %s", e.Code, e.Message) }

// Conn is one connection to an audbd server. It is safe for concurrent
// use: calls are multiplexed by request ID (the server answers them in
// order).
type Conn struct {
	conn   net.Conn
	server string   // server name from HelloOK
	tables []string // table names at connect time

	wmu sync.Mutex // serializes frame writes
	w   *wire.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wire.Msg
	err     error // terminal error once the reader exits

	readerDone chan struct{}
}

// Dial connects to an audbd server with default configuration.
func Dial(addr string) (*Conn, error) { return DialConfig(addr, Config{}) }

// DialConfig connects and performs the Hello handshake.
func DialConfig(addr string, cfg Config) (*Conn, error) {
	if cfg.Name == "" {
		cfg.Name = "audb-client"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn:       nc,
		w:          wire.NewWriter(nc),
		pending:    make(map[uint64]chan wire.Msg),
		readerDone: make(chan struct{}),
	}
	r := wire.NewReader(nc)
	if cfg.MaxFrame > 0 {
		r.SetMaxFrame(cfg.MaxFrame)
	}
	nc.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := c.w.Write(wire.Hello{Version: wire.Version, Client: cfg.Name}); err != nil {
		nc.Close()
		return nil, err
	}
	m, err := r.Read()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch m := m.(type) {
	case wire.HelloOK:
		c.server = m.Server
		c.tables = m.Tables
	case wire.Error:
		nc.Close()
		return nil, &ServerError{Code: m.Code, Message: m.Message}
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %s", wire.TypeName(wire.Type(m)))
	}
	nc.SetDeadline(time.Time{})
	go c.readLoop(r)
	return c, nil
}

// Server returns the server name from the handshake.
func (c *Conn) Server() string { return c.server }

// TablesAtConnect returns the table names the server reported during
// the handshake. Tables queries the live set.
func (c *Conn) TablesAtConnect() []string { return c.tables }

// Close tears down the connection. In-flight calls fail with ErrClosed;
// the server aborts their queries on the disconnect.
func (c *Conn) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// readLoop demuxes responses to the waiting calls. Responses whose
// request was abandoned (context cancelled) are dropped.
func (c *Conn) readLoop(r *wire.Reader) {
	defer close(c.readerDone)
	for {
		m, err := r.Read()
		if err != nil {
			c.mu.Lock()
			c.err = fmt.Errorf("%w: %v", ErrClosed, err)
			c.pending = nil
			c.mu.Unlock()
			c.conn.Close()
			return
		}
		id, ok := wire.ResponseID(m)
		if !ok {
			continue
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- m // buffered; never blocks
		}
	}
}

// register allocates a request ID and its response channel.
func (c *Conn) register() (uint64, chan wire.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan wire.Msg, 1)
	c.pending[id] = ch
	return id, ch, nil
}

// abandon drops a request the caller stopped waiting for; a late
// response is discarded by the read loop.
func (c *Conn) abandon(id uint64) {
	c.mu.Lock()
	if c.pending != nil {
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// write sends one frame under the write lock.
func (c *Conn) write(m wire.Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Write(m)
}

// await waits for the response to id. On context cancellation it sends
// a Cancel frame — aborting the server-side query in milliseconds — and
// returns ctx.Err() without waiting for the server's acknowledgement.
func (c *Conn) await(ctx context.Context, id uint64, ch chan wire.Msg) (wire.Msg, error) {
	select {
	case m := <-ch:
		if e, ok := m.(wire.Error); ok {
			return nil, &ServerError{Code: e.Code, Message: e.Message}
		}
		return m, nil
	case <-ctx.Done():
		c.abandon(id)
		c.write(wire.Cancel{ID: id}) // best effort; ignore write errors
		return nil, ctx.Err()
	case <-c.readerDone:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
}

// roundTrip issues one request and awaits its terminal response.
// build receives the allocated request ID.
func (c *Conn) roundTrip(ctx context.Context, build func(id uint64) wire.Msg) (wire.Msg, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.write(build(id)); err != nil {
		c.abandon(id)
		return nil, err
	}
	return c.await(ctx, id, ch)
}

// Query executes one SQL statement and returns its AU-relation, exactly
// as the in-process audb.Database.QueryContext would.
func (c *Conn) Query(ctx context.Context, sql string, opts ...QueryOption) (*audb.Result, error) {
	m, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.Query{ID: id, SQL: sql, Opts: resolve(opts)}
	})
	if err != nil {
		return nil, err
	}
	res, ok := m.(wire.Result)
	if !ok {
		return nil, fmt.Errorf("client: unexpected %s response to Query", wire.TypeName(wire.Type(m)))
	}
	return res.Rel, nil
}

// Stmt is a server-side prepared statement, bound to its connection.
type Stmt struct {
	c      *Conn
	handle uint64
	text   string
}

// Prepare compiles sql server-side and returns the statement handle.
func (c *Conn) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	m, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.Prepare{ID: id, SQL: sql}
	})
	if err != nil {
		return nil, err
	}
	ok, isOK := m.(wire.PrepareOK)
	if !isOK {
		return nil, fmt.Errorf("client: unexpected %s response to Prepare", wire.TypeName(wire.Type(m)))
	}
	return &Stmt{c: c, handle: ok.Stmt, text: sql}, nil
}

// Text returns the statement's SQL.
func (s *Stmt) Text() string { return s.text }

// Exec executes the prepared statement, mirroring audb.Stmt.Exec.
func (s *Stmt) Exec(ctx context.Context, opts ...QueryOption) (*audb.Result, error) {
	m, err := s.c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.ExecStmt{ID: id, Stmt: s.handle, Opts: resolve(opts)}
	})
	if err != nil {
		return nil, err
	}
	res, ok := m.(wire.Result)
	if !ok {
		return nil, fmt.Errorf("client: unexpected %s response to ExecStmt", wire.TypeName(wire.Type(m)))
	}
	return res.Rel, nil
}

// Close releases the server-side statement.
func (s *Stmt) Close(ctx context.Context) error {
	_, err := s.c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.CloseStmt{ID: id, Stmt: s.handle}
	})
	return err
}

// Explain returns the server-rendered plan explanation (compiled plan,
// rule trace, optimized plan) without executing.
func (c *Conn) Explain(ctx context.Context, sql string, opts ...QueryOption) (string, error) {
	return c.explain(ctx, sql, false, opts)
}

// ExplainAnalyze executes the query through the server's instrumented
// physical layer and returns the rendered per-operator counters.
func (c *Conn) ExplainAnalyze(ctx context.Context, sql string, opts ...QueryOption) (string, error) {
	return c.explain(ctx, sql, true, opts)
}

func (c *Conn) explain(ctx context.Context, sql string, analyze bool, opts []QueryOption) (string, error) {
	m, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.Explain{ID: id, SQL: sql, Opts: resolve(opts), Analyze: analyze}
	})
	if err != nil {
		return "", err
	}
	res, ok := m.(wire.ExplainResult)
	if !ok {
		return "", fmt.Errorf("client: unexpected %s response to Explain", wire.TypeName(wire.Type(m)))
	}
	return res.Text, nil
}

// Trace executes the query with the full lifecycle instrumented
// server-side (admission wait, parse, per-rule optimize, cost, lower,
// per-operator execute, wire encode) and returns the rendered span
// tree. Like ExplainAnalyze, the query really runs.
func (c *Conn) Trace(ctx context.Context, sql string, opts ...QueryOption) (string, error) {
	m, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.Trace{ID: id, SQL: sql, Opts: resolve(opts)}
	})
	if err != nil {
		return "", err
	}
	res, ok := m.(wire.TraceResult)
	if !ok {
		return "", fmt.Errorf("client: unexpected %s response to Trace", wire.TypeName(wire.Type(m)))
	}
	return res.Text, nil
}

// ServerStats returns the server's rendered metrics snapshot — the
// audbd_* counters, the embedded database's audb_* registry, and the
// most recent sampled request traces.
func (c *Conn) ServerStats(ctx context.Context) (string, error) {
	m, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.ServerStats{ID: id}
	})
	if err != nil {
		return "", err
	}
	res, ok := m.(wire.ServerStatsResult)
	if !ok {
		return "", fmt.Errorf("client: unexpected %s response to ServerStats", wire.TypeName(wire.Type(m)))
	}
	return res.Text, nil
}

// TableStats returns the server-rendered statistics for a table (the
// cached statistics the planner sees).
func (c *Conn) TableStats(ctx context.Context, table string) (string, error) {
	return c.stats(ctx, table, false)
}

// Analyze recollects a table's statistics server-side and returns them.
func (c *Conn) Analyze(ctx context.Context, table string) (string, error) {
	return c.stats(ctx, table, true)
}

func (c *Conn) stats(ctx context.Context, table string, analyze bool) (string, error) {
	m, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.TableStats{ID: id, Table: table, Analyze: analyze}
	})
	if err != nil {
		return "", err
	}
	res, ok := m.(wire.StatsResult)
	if !ok {
		return "", fmt.Errorf("client: unexpected %s response to TableStats", wire.TypeName(wire.Type(m)))
	}
	return res.Text, nil
}

// Tables returns the server's current table names, sorted.
func (c *Conn) Tables(ctx context.Context) ([]string, error) {
	m, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.ListTables{ID: id}
	})
	if err != nil {
		return nil, err
	}
	res, ok := m.(wire.Tables)
	if !ok {
		return nil, fmt.Errorf("client: unexpected %s response to ListTables", wire.TypeName(wire.Type(m)))
	}
	return res.Names, nil
}

// Ping checks server liveness.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, func(id uint64) wire.Msg {
		return wire.Ping{ID: id}
	})
	return err
}
