package client

import (
	"context"
	"sync"

	"github.com/audb/audb"
)

// Pool is a small connection pool: Get reuses an idle connection or
// dials a new one, Put returns it. Broken connections are discarded
// instead of pooled, so a server restart heals transparently.
type Pool struct {
	addr string
	cfg  Config
	max  int // max idle connections retained

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewPool creates a pool keeping up to maxIdle idle connections.
func NewPool(addr string, maxIdle int) *Pool {
	return NewPoolConfig(addr, maxIdle, Config{})
}

// NewPoolConfig is NewPool with a connection Config.
func NewPoolConfig(addr string, maxIdle int, cfg Config) *Pool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &Pool{addr: addr, cfg: cfg, max: maxIdle}
}

// broken reports whether the connection's reader has exited (server
// closed it, network error, or Close).
func (c *Conn) broken() bool {
	select {
	case <-c.readerDone:
		return true
	default:
		return false
	}
}

// Get returns a healthy connection, dialing if the pool is empty.
func (p *Pool) Get(ctx context.Context) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	for len(p.idle) > 0 {
		c := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		if !c.broken() {
			p.mu.Unlock()
			return c, nil
		}
		c.Close()
	}
	p.mu.Unlock()
	return DialConfig(p.addr, p.cfg)
}

// Put returns a connection to the pool; broken connections and
// overflow are closed.
func (p *Pool) Put(c *Conn) {
	if c == nil {
		return
	}
	if c.broken() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.max {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes every idle connection and marks the pool closed.
// Connections currently checked out are closed by their Put.
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	var first error
	for _, c := range idle {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Query is the Get/Query/Put convenience for one-shot callers.
func (p *Pool) Query(ctx context.Context, sql string, opts ...QueryOption) (*audb.Result, error) {
	c, err := p.Get(ctx)
	if err != nil {
		return nil, err
	}
	defer p.Put(c)
	return c.Query(ctx, sql, opts...)
}
