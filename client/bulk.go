package client

import (
	"context"
	"fmt"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/wire"
)

// bulkChunk is how many tuples a Bulk accumulates before streaming a
// CopyData frame.
const bulkChunk = 1024

// Bulk is a mass-insert builder: it streams range tuples to the server
// with the COPY protocol and registers them as a new table on Close.
// Errors are latched: Add after a failure is a no-op and Close reports
// the first error. A Bulk is not safe for concurrent use.
type Bulk struct {
	c       *Conn
	table   string
	cols    []string
	id      uint64
	ch      chan wire.Msg
	started bool
	err     error
	buf     []core.Tuple
}

// Bulk starts a mass insert into table with the given columns. The
// table is created (or replaced) when Close commits the stream.
func (c *Conn) Bulk(table string, cols ...string) *Bulk {
	b := &Bulk{c: c, table: table, cols: cols}
	if table == "" || len(cols) == 0 {
		b.err = fmt.Errorf("client: Bulk needs a table name and at least one column")
	}
	return b
}

// Add appends one range tuple with its multiplicity.
func (b *Bulk) Add(vals audb.RangeRow, m audb.Multiplicity) *Bulk {
	if b.err != nil {
		return b
	}
	if len(vals) != len(b.cols) {
		b.err = fmt.Errorf("client: Bulk(%s): tuple has %d values, want %d", b.table, len(vals), len(b.cols))
		return b
	}
	b.buf = append(b.buf, core.Tuple{Vals: vals, M: m})
	if len(b.buf) >= bulkChunk {
		b.flush()
	}
	return b
}

// AddCertainRow appends a fully certain tuple with multiplicity one.
func (b *Bulk) AddCertainRow(vals ...audb.Value) *Bulk {
	row := make(audb.RangeRow, len(vals))
	for i, v := range vals {
		row[i] = audb.CertainOf(v)
	}
	return b.Add(row, audb.CertainMult(1))
}

// begin registers the request and opens the copy stream.
func (b *Bulk) begin() {
	id, ch, err := b.c.register()
	if err != nil {
		b.err = err
		return
	}
	b.id, b.ch, b.started = id, ch, true
	if err := b.c.write(wire.CopyBegin{ID: id, Table: b.table, Cols: b.cols}); err != nil {
		b.err = err
	}
}

// flush streams the buffered tuples. A server error that already
// arrived (e.g. a rejected earlier chunk) is picked up here so the
// stream stops early instead of pushing data the server is dropping.
func (b *Bulk) flush() {
	if b.err != nil {
		return
	}
	if !b.started {
		b.begin()
		if b.err != nil {
			return
		}
	}
	select {
	case m := <-b.ch:
		if e, ok := m.(wire.Error); ok {
			b.err = &ServerError{Code: e.Code, Message: e.Message}
		} else {
			b.err = fmt.Errorf("client: unexpected %s during copy", wire.TypeName(wire.Type(m)))
		}
		return
	default:
	}
	if len(b.buf) == 0 {
		return
	}
	err := b.c.write(wire.CopyData{ID: b.id, Tuples: b.buf})
	b.buf = b.buf[:0]
	if err != nil {
		b.err = err
	}
}

// Close streams any remaining tuples, commits the copy and returns the
// number of rows the server registered. On error the server-side state
// is still cleaned up so the connection stays usable.
func (b *Bulk) Close(ctx context.Context) (uint64, error) {
	if !b.started && b.err == nil {
		b.begin()
	}
	b.flush()
	if b.err != nil {
		// The server answered (or the connection broke) mid-stream; send
		// CopyEnd so a still-healthy session clears its copy state.
		if b.started {
			b.c.write(wire.CopyEnd{ID: b.id})
			b.c.abandon(b.id)
		}
		return 0, b.err
	}
	if err := b.c.write(wire.CopyEnd{ID: b.id}); err != nil {
		b.c.abandon(b.id)
		return 0, err
	}
	m, err := b.c.await(ctx, b.id, b.ch)
	if err != nil {
		return 0, err
	}
	ok, isOK := m.(wire.CopyOK)
	if !isOK {
		return 0, fmt.Errorf("client: unexpected %s response to CopyEnd", wire.TypeName(wire.Type(m)))
	}
	return ok.Rows, nil
}
