package client

import (
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/wire"
)

// QueryOption customizes one remote execution, mirroring the root
// package's functional options (audb.WithEngine and friends) plus
// WithTimeout, which the in-process API expresses with a context
// deadline and the wire expresses as a server-side bound.
type QueryOption func(*wire.ExecOptions)

// resolve folds the options into the wire form.
func resolve(opts []QueryOption) wire.ExecOptions {
	var o wire.ExecOptions
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// WithEngine routes the query to the given engine.
func WithEngine(e audb.Engine) QueryOption {
	return func(o *wire.ExecOptions) { o.Engine = uint8(e) }
}

// WithWorkers sets the executor worker count (0 = one per CPU, 1 = serial).
func WithWorkers(n int) QueryOption {
	return func(o *wire.ExecOptions) { o.Workers = n }
}

// WithJoinCompression bounds intermediate join results (Section 10.4).
func WithJoinCompression(target int) QueryOption {
	return func(o *wire.ExecOptions) { o.JoinCompression = target }
}

// WithAggCompression bounds aggregation group counts (Section 10.5).
func WithAggCompression(target int) QueryOption {
	return func(o *wire.ExecOptions) { o.AggCompression = target }
}

// WithOptimizer switches the logical optimizer for this query.
func WithOptimizer(m audb.OptimizerMode) QueryOption {
	return func(o *wire.ExecOptions) { o.OptimizerOff = m == audb.OptimizerOff }
}

// WithCostModel switches cost-based planning for this query.
func WithCostModel(m audb.CostModel) QueryOption {
	return func(o *wire.ExecOptions) { o.CostOff = m == audb.CostOff }
}

// WithExecMode selects the physical executor for the native engine.
func WithExecMode(m audb.ExecMode) QueryOption {
	return func(o *wire.ExecOptions) { o.Materialized = m == audb.ExecMaterialized }
}

// WithTimeout bounds the query's execution server-side. Unlike a
// context deadline — which cancels from the client on round-trip time —
// this deadline is enforced where the work runs.
func WithTimeout(d time.Duration) QueryOption {
	return func(o *wire.ExecOptions) {
		if d > 0 {
			o.TimeoutMS = uint64(d / time.Millisecond)
		}
	}
}
