package client_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/client"
	"github.com/audb/audb/internal/server"
	"github.com/audb/audb/internal/testutil"
)

// startServer runs a server on a loopback port and shuts it down at
// test cleanup (generous drain so healthy tests never hit the force
// path by accident).
func startServer(t testing.TB, db *audb.Database, cfg server.Config) (string, *server.Server) {
	t.Helper()
	srv := server.New(db, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveErr; err != nil && !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return lis.Addr().String(), srv
}

// randomDB mirrors the root package's property-test database: two
// uncertain tables with mixed certain/range attributes and optional or
// duplicated tuples.
func randomDB(rng *rand.Rand, rows int) *audb.Database {
	mk := func(name string, cols ...string) *audb.UncertainTable {
		tbl := audb.NewUncertainTable(name, cols...)
		for i := 0; i < rows; i++ {
			row := make(audb.RangeRow, len(cols))
			for c := range cols {
				sg := int64(rng.Intn(6))
				switch rng.Intn(3) {
				case 0:
					row[c] = audb.CertainOf(audb.Int(sg))
				case 1:
					row[c] = audb.Range(audb.Int(sg-int64(rng.Intn(2))), audb.Int(sg), audb.Int(sg+int64(rng.Intn(3))))
				default:
					row[c] = audb.Range(audb.Int(0), audb.Int(sg), audb.Int(5))
				}
			}
			m := audb.CertainMult(int64(1 + rng.Intn(2)))
			if rng.Intn(4) == 0 {
				m = audb.Mult(0, 1, 1+int64(rng.Intn(2)))
			}
			tbl.AddRow(row, m)
		}
		return tbl
	}
	db := audb.New()
	db.Add(mk("r", "a", "b"))
	db.Add(mk("s", "c", "d"))
	return db
}

// corpus is the remote-equivalence query corpus: selections, expression
// projections, grouping aggregation, joins, set operations, order/limit
// and a subquery — the same shapes the in-process property tests cover.
func corpus(rng *rand.Rand) []string {
	k := func() int { return rng.Intn(6) }
	return []string{
		fmt.Sprintf(`SELECT a, b FROM r WHERE a <= %d AND b > %d`, k(), k()),
		fmt.Sprintf(`SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < %d`, k()),
		fmt.Sprintf(`SELECT b, sum(a) AS s, count(*) AS n FROM r WHERE a < %d GROUP BY b`, k()),
		fmt.Sprintf(`SELECT a FROM r WHERE a < %d UNION SELECT c FROM s WHERE d > %d`, k(), k()),
		fmt.Sprintf(`SELECT a FROM r EXCEPT SELECT c FROM s WHERE d = %d`, k()),
		fmt.Sprintf(`SELECT a, b FROM r WHERE a BETWEEN %d AND %d ORDER BY a LIMIT 3`, k(), k()+3),
		fmt.Sprintf(`SELECT x.ab, count(*) AS n FROM (SELECT a + b AS ab FROM r WHERE a <> %d) x GROUP BY x.ab`, k()),
	}
}

// slowJoinDB builds the quadratic worst case: join keys that are always
// uncertain degrade an equi-join to the full overlap join, giving the
// cancellation tests something that runs for seconds unless aborted.
func slowJoinDB(rows int) *audb.Database {
	mk := func(name, kc, vc string) *audb.UncertainTable {
		tbl := audb.NewUncertainTable(name, kc, vc)
		for i := 0; i < rows; i++ {
			tbl.AddRow(audb.RangeRow{
				audb.Range(audb.Int(int64(i)), audb.Int(int64(i+1)), audb.Int(int64(i+2))),
				audb.CertainOf(audb.Int(int64(i % 31))),
			}, audb.CertainMult(1))
		}
		return tbl
	}
	return audb.New().Add(mk("l", "lk", "lv")).Add(mk("rr", "rk", "rv"))
}

const slowJoinQuery = `SELECT lv, count(*) AS n FROM l JOIN rr ON lk = rk GROUP BY lv`

func dial(t testing.TB, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitInFlight polls until the server's in-flight count reaches want.
func waitInFlight(t testing.TB, srv *server.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() != want {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight count stuck at %d, want %d", srv.InFlight(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRemoteMatchesInProcess is the acceptance property: concurrent
// remote clients get results bit-identical to in-process execution, for
// a random query corpus across all three engines.
func TestRemoteMatchesInProcess(t *testing.T) {
	testutil.NoLeaks(t)
	trials := 4
	if testing.Short() {
		trials = 2
	}
	engines := []audb.Engine{audb.EngineNative, audb.EngineRewrite, audb.EngineSGW}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*271 + 17)))
		db := randomDB(rng, 2+rng.Intn(6))
		queries := corpus(rng)
		addr, _ := startServer(t, db, server.Config{})

		// In-process expectations first (errors included: the rewrite
		// middleware rejects some shapes, and the remote path must agree).
		type expect struct {
			res string
			err bool
		}
		want := map[string]expect{}
		for _, q := range queries {
			for _, eng := range engines {
				res, err := db.QueryContext(context.Background(), q, audb.WithEngine(eng))
				e := expect{err: err != nil}
				if err == nil {
					e.res = res.Sort().String()
				}
				want[q+"|"+eng.String()] = e
			}
		}

		pool := client.NewPool(addr, 4)
		var wg sync.WaitGroup
		errCh := make(chan error, 16)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := context.Background()
				for _, q := range queries {
					for _, eng := range engines {
						res, err := pool.Query(ctx, q, client.WithEngine(eng))
						exp := want[q+"|"+eng.String()]
						if exp.err != (err != nil) {
							errCh <- fmt.Errorf("[w%d] %s [%s]: acceptance differs: remote err=%v", w, q, eng, err)
							return
						}
						if err != nil {
							continue
						}
						if got := res.Sort().String(); got != exp.res {
							errCh <- fmt.Errorf("[w%d] %s [%s]: remote result differs:\n%s\nvs in-process:\n%s", w, q, eng, got, exp.res)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPreparedStatements: Prepare/Exec round-trips match Query, handles
// survive multiple executions with different options, and a closed
// handle is rejected with unknown_stmt.
func TestPreparedStatements(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(99))
	db := randomDB(rng, 6)
	addr, _ := startServer(t, db, server.Config{})
	c := dial(t, addr)
	defer c.Close()
	ctx := context.Background()

	const q = `SELECT b, sum(a) AS s FROM r GROUP BY b`
	want, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := c.Prepare(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Text() != q {
		t.Fatalf("Text = %q", stmt.Text())
	}
	for i := 0; i < 3; i++ {
		got, err := stmt.Exec(ctx, client.WithWorkers(1+i))
		if err != nil {
			t.Fatalf("Exec %d: %v", i, err)
		}
		if got.Sort().String() != want.Sort().String() {
			t.Fatalf("Exec %d differs from Query", i)
		}
	}
	if err := stmt.Close(ctx); err != nil {
		t.Fatal(err)
	}
	_, err = stmt.Exec(ctx)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "unknown_stmt" {
		t.Fatalf("Exec after Close = %v, want unknown_stmt", err)
	}
}

// TestContextCancelFreesServer: cancelling the client context aborts
// the server-side quadratic join within milliseconds and keeps the
// connection usable.
func TestContextCancelFreesServer(t *testing.T) {
	testutil.NoLeaks(t)
	rows := 2500
	if testing.Short() {
		rows = 1200
	}
	addr, srv := startServer(t, slowJoinDB(rows), server.Config{})
	c := dial(t, addr)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Query(ctx, slowJoinQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (after %s)", err, elapsed)
	}
	if elapsed > time.Second {
		t.Fatalf("client unblocked after %s, want well under a second", elapsed)
	}
	// The server must drop to zero in-flight promptly: the Cancel frame
	// reached the executing query's context.
	free := time.Now()
	waitInFlight(t, srv, 0)
	if waited := time.Since(free); waited > time.Second {
		t.Fatalf("server still busy %s after cancel", waited)
	}
	// The connection survives a cancelled request.
	if _, err := c.Query(context.Background(), `SELECT lv FROM l WHERE lv < 0`); err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
}

// TestDisconnectFreesServer: abruptly closing the client connection
// mid-join cancels the server-side query just as fast as a Cancel frame.
func TestDisconnectFreesServer(t *testing.T) {
	testutil.NoLeaks(t)
	rows := 2500
	if testing.Short() {
		rows = 1200
	}
	addr, srv := startServer(t, slowJoinDB(rows), server.Config{})
	c := dial(t, addr)

	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), slowJoinQuery)
		done <- err
	}()
	waitInFlight(t, srv, 1)
	start := time.Now()
	c.Close()
	if err := <-done; err == nil {
		t.Fatal("query on closed connection succeeded")
	}
	waitInFlight(t, srv, 0)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("server freed the worker after %s, want well under a second", elapsed)
	}
}

// TestQueueTimeout: with one execution slot taken by a long query, a
// second query times out in the admission queue with queue_timeout.
func TestQueueTimeout(t *testing.T) {
	testutil.NoLeaks(t)
	rows := 2500
	if testing.Short() {
		rows = 1500
	}
	addr, srv := startServer(t, slowJoinDB(rows), server.Config{
		MaxConcurrency: 1,
		QueueTimeout:   50 * time.Millisecond,
	})
	slow := dial(t, addr)
	defer slow.Close()
	fast := dial(t, addr)
	defer fast.Close()

	slowCtx, cancelSlow := context.WithCancel(context.Background())
	defer cancelSlow()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		slow.Query(slowCtx, slowJoinQuery)
	}()
	waitInFlight(t, srv, 1)

	start := time.Now()
	_, err := fast.Query(context.Background(), `SELECT lv FROM l WHERE lv < 0`)
	elapsed := time.Since(start)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "queue_timeout" {
		t.Fatalf("want queue_timeout, got %v (after %s)", err, elapsed)
	}
	if elapsed > time.Second {
		t.Fatalf("queue timeout surfaced after %s, want ~50ms", elapsed)
	}
	cancelSlow()
	<-slowDone
}

// TestServerSideDeadline: WithTimeout bounds execution on the server;
// the query fails with the deadline code, not a client-side timeout.
func TestServerSideDeadline(t *testing.T) {
	testutil.NoLeaks(t)
	rows := 2500
	if testing.Short() {
		rows = 1200
	}
	addr, _ := startServer(t, slowJoinDB(rows), server.Config{})
	c := dial(t, addr)
	defer c.Close()

	_, err := c.Query(context.Background(), slowJoinQuery, client.WithTimeout(20*time.Millisecond))
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "deadline" {
		t.Fatalf("want deadline error, got %v", err)
	}
}

// TestGracefulShutdown: Shutdown lets the in-flight query finish and
// deliver its result, refuses a request queued behind it with the
// shutdown code, and rejects new connections.
func TestGracefulShutdown(t *testing.T) {
	testutil.NoLeaks(t)
	rows := 2000
	if testing.Short() {
		rows = 1200
	}
	db := slowJoinDB(rows)
	srv := server.New(db, server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	c := dial(t, addr)
	defer c.Close()
	// Expected result via a second connection before shutdown begins.
	want, err := c.Query(context.Background(), `SELECT lv FROM l WHERE lv <= 3`)
	if err != nil {
		t.Fatal(err)
	}

	inFlight := make(chan error, 1)
	var got *audb.Result
	go func() {
		res, err := c.Query(context.Background(), slowJoinQuery)
		got = res
		inFlight <- err
	}()
	waitInFlight(t, srv, 1)
	// Queue a second request behind the running one on the same
	// connection: it must be refused, not executed.
	queued := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), `SELECT lv FROM l WHERE lv <= 3`)
		queued <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the frame reach the session queue

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// In-flight query completed with its full result.
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight query during drain: %v", err)
	}
	if got == nil || got.Len() == 0 {
		t.Fatal("in-flight query returned no rows")
	}
	// Queued query refused with the shutdown code (or the connection
	// closed under it after the refusal was sent).
	qerr := <-queued
	var se *client.ServerError
	if !errors.As(qerr, &se) || se.Code != "shutdown" {
		t.Fatalf("queued query: want shutdown refusal, got %v", qerr)
	}
	// New connections are refused.
	if cc, err := client.Dial(addr); err == nil {
		cc.Close()
		t.Fatal("Dial succeeded after Shutdown")
	}
	_ = want
}

// TestForcedShutdown: when the drain deadline expires, in-flight
// queries are cancelled through their contexts and Shutdown still
// returns with every session goroutine joined.
func TestForcedShutdown(t *testing.T) {
	testutil.NoLeaks(t)
	rows := 2500
	if testing.Short() {
		rows = 1500
	}
	db := slowJoinDB(rows)
	srv := server.New(db, server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	c := dial(t, lis.Addr().String())
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), slowJoinQuery)
		done <- err
	}()
	waitInFlight(t, srv, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("forced shutdown took %s", elapsed)
	}
	if err := <-done; err == nil {
		t.Fatal("query survived a forced shutdown")
	}
	if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("in-flight count %d after forced shutdown", n)
	}
}

// TestBulkIngest: Bulk streams mixed certain/range tuples, the server
// registers the table, and remote queries over it match an in-process
// database built from the same rows.
func TestBulkIngest(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(7))
	addr, _ := startServer(t, randomDB(rng, 4), server.Config{})
	c := dial(t, addr)
	defer c.Close()
	ctx := context.Background()

	// Build identical data remotely (Bulk) and locally (UncertainTable).
	local := audb.NewUncertainTable("t", "x", "y")
	b := c.Bulk("t", "x", "y")
	n := 4*1024 + 37 // multiple CopyData chunks plus a tail
	for i := 0; i < n; i++ {
		var row audb.RangeRow
		switch i % 3 {
		case 0:
			row = audb.RangeRow{audb.CertainOf(audb.Int(int64(i % 50))), audb.CertainOf(audb.Int(int64(i % 7)))}
		case 1:
			row = audb.RangeRow{
				audb.Range(audb.Int(int64(i%50-1)), audb.Int(int64(i%50)), audb.Int(int64(i%50+2))),
				audb.CertainOf(audb.Int(int64(i % 7))),
			}
		default:
			row = audb.RangeRow{audb.CertainOf(audb.Int(int64(i % 50))), audb.FullRange(audb.Int(int64(i % 7)))}
		}
		m := audb.CertainMult(int64(1 + i%2))
		if i%5 == 0 {
			m = audb.Mult(0, 1, 2)
		}
		local.AddRow(row, m)
		b.Add(row, m)
	}
	rows, err := b.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rows != uint64(n) {
		t.Fatalf("ingested %d rows, want %d", rows, n)
	}

	names, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(names, ","), "t") {
		t.Fatalf("table t missing from %v", names)
	}

	ldb := audb.New().Add(local)
	const q = `SELECT y, sum(x) AS s, count(*) AS cnt FROM t GROUP BY y`
	want, err := ldb.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sort().String() != want.Sort().String() {
		t.Fatalf("bulk-ingested query differs:\n%s\nvs\n%s", got.Sort(), want.Sort())
	}
}

// TestBulkErrors: arity mismatches are rejected (client- and
// server-side) and the connection stays usable after a failed copy.
func TestBulkErrors(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(8))
	addr, _ := startServer(t, randomDB(rng, 4), server.Config{})
	c := dial(t, addr)
	defer c.Close()
	ctx := context.Background()

	// Client-side arity check.
	b := c.Bulk("bad", "x", "y")
	b.Add(audb.RangeRow{audb.CertainOf(audb.Int(1))}, audb.CertainMult(1))
	if _, err := b.Close(ctx); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// No table name.
	if _, err := c.Bulk("").Close(ctx); err == nil {
		t.Fatal("empty bulk spec accepted")
	}
	// The connection still works.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after failed bulk: %v", err)
	}
	if _, err := c.Query(ctx, `SELECT a FROM r WHERE a < 0`); err != nil {
		t.Fatalf("query after failed bulk: %v", err)
	}
}

// TestExplainAndStats: the diagnostics round-trip returns the
// server-rendered text audbsh prints locally.
func TestExplainAndStats(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(9))
	db := randomDB(rng, 6)
	addr, _ := startServer(t, db, server.Config{})
	c := dial(t, addr)
	defer c.Close()
	ctx := context.Background()

	const q = `SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 3`
	text, err := c.Explain(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if text != want.String() {
		t.Fatalf("remote Explain differs from in-process:\n%s\nvs\n%s", text, want)
	}
	analyzed, err := c.ExplainAnalyze(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"rows=", "Scan"} {
		if !strings.Contains(analyzed, frag) {
			t.Fatalf("ExplainAnalyze output missing %q:\n%s", frag, analyzed)
		}
	}
	st, err := c.TableStats(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	wantSt, err := db.TableStats("r")
	if err != nil {
		t.Fatal(err)
	}
	if st != wantSt.String() {
		t.Fatal("remote TableStats differs from in-process")
	}
	if _, err := c.Analyze(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TableStats(ctx, "missing"); err == nil {
		t.Fatal("stats for unknown table succeeded")
	}
}

// TestServerErrors: SQL errors carry the sql code and the connection
// survives them.
func TestServerErrors(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(10))
	addr, _ := startServer(t, randomDB(rng, 4), server.Config{})
	c := dial(t, addr)
	defer c.Close()
	ctx := context.Background()

	_, err := c.Query(ctx, `SELECT nope FROM missing`)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "sql" {
		t.Fatalf("want sql error, got %v", err)
	}
	if se.Error() == "" || !strings.Contains(se.Error(), "sql") {
		t.Fatalf("ServerError rendering: %q", se.Error())
	}
	if _, err := c.Query(ctx, `SELECT a FROM r WHERE a < 2`); err != nil {
		t.Fatalf("query after SQL error: %v", err)
	}
}

// TestPoolReuse: the pool hands back the same connection, discards
// broken ones, and Close leaves no goroutines behind.
func TestPoolReuse(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(11))
	addr, _ := startServer(t, randomDB(rng, 4), server.Config{})
	pool := client.NewPool(addr, 2)
	ctx := context.Background()

	c1, err := pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(c1)
	c2, err := pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("pool did not reuse the idle connection")
	}
	// A broken connection is not pooled.
	c2.Close()
	pool.Put(c2)
	c3, err := pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c2 {
		t.Fatal("pool handed back a closed connection")
	}
	if err := c3.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	pool.Put(c3)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(ctx); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Get on closed pool = %v", err)
	}
}

// TestHandshake: the connection reports the server name and the tables
// visible at connect time.
func TestHandshake(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(12))
	addr, _ := startServer(t, randomDB(rng, 2), server.Config{Name: "audbd-test"})
	c, err := client.DialConfig(addr, client.Config{Name: "handshake-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Server() != "audbd-test" {
		t.Fatalf("server name %q", c.Server())
	}
	if got := strings.Join(c.TablesAtConnect(), ","); got != "r,s" {
		t.Fatalf("tables at connect: %q", got)
	}
}

// TestTraceAndServerStats: the observability round trips — Trace
// returns the server-rendered span tree, ServerStats the metric
// snapshot, and both flow through the normal request/response plumbing
// (errors included).
func TestTraceAndServerStats(t *testing.T) {
	testutil.NoLeaks(t)
	rng := rand.New(rand.NewSource(11))
	addr, _ := startServer(t, randomDB(rng, 6), server.Config{})
	c := dial(t, addr)
	defer c.Close()
	ctx := context.Background()

	text, err := c.Trace(ctx, `SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 3`)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"request", "admission.wait", "parse", "optimize", "execute", "wire.encode"} {
		if !strings.Contains(text, span) {
			t.Errorf("trace missing %q:\n%s", span, text)
		}
	}
	if _, err := c.Trace(ctx, `SELECT broken FROM r`); err == nil {
		t.Fatal("Trace of a bad query should error")
	}
	var se *client.ServerError
	if err := func() error { _, err := c.Trace(ctx, `SELECT broken FROM r`); return err }(); !errors.As(err, &se) {
		t.Fatalf("want ServerError, got %v", err)
	}

	stats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"audbd_requests_total", "audb_queries_total"} {
		if !strings.Contains(stats, want) {
			t.Errorf("server stats missing %q:\n%s", want, stats)
		}
	}
}
