package rangeval

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/audb/audb/internal/types"
)

func TestCertain(t *testing.T) {
	v := Certain(types.Int(5))
	if !v.IsCertain() || !v.Valid() {
		t.Error("Certain not certain/valid")
	}
	if v.String() != "5" {
		t.Errorf("certain renders as %q", v.String())
	}
}

func TestNewNormalizes(t *testing.T) {
	v := New(types.Int(5), types.Int(2), types.Int(3))
	if !v.Valid() {
		t.Errorf("New produced invalid range %v", v)
	}
	if types.Compare(v.Lo, types.Int(2)) != 0 {
		t.Errorf("lo should widen to sg, got %v", v.Lo)
	}
	v = New(types.Int(1), types.Int(4), types.Int(2))
	if !v.Valid() || types.Compare(v.Hi, types.Int(4)) != 0 {
		t.Errorf("hi should widen to sg, got %v", v)
	}
}

func TestChecked(t *testing.T) {
	if _, err := Checked(types.Int(3), types.Int(2), types.Int(4)); err == nil {
		t.Error("out-of-order bounds should error")
	}
	if _, err := Checked(types.Int(1), types.Int(2), types.Int(1)); err == nil {
		t.Error("hi < sg should error")
	}
	v, err := Checked(types.Int(1), types.Int(2), types.Int(3))
	if err != nil || !v.Valid() {
		t.Error("valid bounds rejected")
	}
}

func TestFull(t *testing.T) {
	v := Full(types.String("x"))
	if !v.Valid() {
		t.Error("Full invalid")
	}
	if !v.Contains(types.Int(123)) || !v.Contains(types.String("zzz")) || !v.Contains(types.Null()) {
		t.Error("Full should contain everything")
	}
	if v.IsCertain() {
		t.Error("Full should not be certain")
	}
}

func TestContainsOverlaps(t *testing.T) {
	a := New(types.Int(1), types.Int(2), types.Int(5))
	if !a.Contains(types.Int(1)) || !a.Contains(types.Int(5)) || a.Contains(types.Int(6)) || a.Contains(types.Int(0)) {
		t.Error("Contains endpoints broken")
	}
	b := New(types.Int(5), types.Int(6), types.Int(9))
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("touching intervals should overlap")
	}
	c := New(types.Int(6), types.Int(7), types.Int(9))
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint intervals should not overlap")
	}
}

func TestUnion(t *testing.T) {
	a := New(types.Int(1), types.Int(2), types.Int(5))
	b := New(types.Int(0), types.Int(4), types.Int(9))
	u := a.Union(b)
	if types.Compare(u.Lo, types.Int(0)) != 0 || types.Compare(u.Hi, types.Int(9)) != 0 {
		t.Errorf("union bounds wrong: %v", u)
	}
	if types.Compare(u.SG, types.Int(2)) != 0 {
		t.Error("union should keep receiver's SG")
	}
	if !u.Valid() {
		t.Error("union invalid")
	}
}

func TestStringRendering(t *testing.T) {
	v := New(types.Int(1), types.Int(2), types.Int(3))
	if v.String() != "[1/2/3]" {
		t.Errorf("render %q", v.String())
	}
}

func TestBoolConstants(t *testing.T) {
	for _, c := range []V{CertTrue, CertFalse, MaybeTrue, MaybeFalse} {
		if !c.Valid() {
			t.Errorf("constant %v invalid", c)
		}
	}
	if !CertTrue.IsCertain() || !CertFalse.IsCertain() {
		t.Error("certain constants not certain")
	}
	if MaybeTrue.IsCertain() || MaybeFalse.IsCertain() {
		t.Error("maybe constants should be uncertain")
	}
}

func TestTupleBasics(t *testing.T) {
	dt := types.Tuple{types.Int(1), types.String("a")}
	rt := CertainTuple(dt)
	if !rt.IsCertain() {
		t.Error("CertainTuple not certain")
	}
	if !rt.SG().Equal(dt) {
		t.Error("SG extraction")
	}
	if !rt.Bounds(dt) {
		t.Error("certain tuple must bound its own SG")
	}
	if rt.Bounds(types.Tuple{types.Int(2), types.String("a")}) {
		t.Error("should not bound different tuple")
	}
	if rt.Bounds(types.Tuple{types.Int(1)}) {
		t.Error("arity mismatch should not bound")
	}
	cl := rt.Clone()
	cl[0] = Full(types.Int(0))
	if !rt.IsCertain() {
		t.Error("Clone aliases")
	}
}

func TestTuplePredicates(t *testing.T) {
	a := Tuple{New(types.Int(1), types.Int(2), types.Int(3)), Certain(types.String("x"))}
	b := Tuple{New(types.Int(3), types.Int(4), types.Int(5)), Certain(types.String("x"))}
	c := Tuple{New(types.Int(4), types.Int(4), types.Int(5)), Certain(types.String("x"))}
	if !a.Overlaps(b) {
		t.Error("a ≃ b should hold (attribute ranges touch)")
	}
	if a.Overlaps(c) {
		t.Error("a ≃ c should not hold")
	}
	if a.CertainlyEqual(a) {
		t.Error("a has uncertain attribute; a ≡ a must be false")
	}
	d := Tuple{Certain(types.Int(7)), Certain(types.String("y"))}
	if !d.CertainlyEqual(d.Clone()) {
		t.Error("certain equal tuples: d ≡ d")
	}
	if a.Overlaps(Tuple{Certain(types.Int(2))}) {
		t.Error("arity mismatch overlap")
	}
	if d.CertainlyEqual(Tuple{Certain(types.Int(7))}) {
		t.Error("arity mismatch certain-equal")
	}
}

func TestTupleUnionProjectConcatKeys(t *testing.T) {
	a := Tuple{New(types.Int(1), types.Int(2), types.Int(3)), Certain(types.Int(9))}
	b := Tuple{New(types.Int(0), types.Int(5), types.Int(7)), Certain(types.Int(9))}
	u := a.Union(b)
	if types.Compare(u[0].Lo, types.Int(0)) != 0 || types.Compare(u[0].Hi, types.Int(7)) != 0 {
		t.Error("tuple union bounds")
	}
	p := a.Project([]int{1})
	if len(p) != 1 || types.Compare(p[0].SG, types.Int(9)) != 0 {
		t.Error("project")
	}
	cc := a.Concat(b)
	if len(cc) != 4 {
		t.Error("concat")
	}
	if a.Key() == b.Key() {
		t.Error("distinct triple tuples must have distinct keys")
	}
	if a.SGKey() == b.SGKey() {
		t.Error("distinct SG tuples must have distinct SG keys")
	}
	b2 := Tuple{New(types.Int(-1), types.Int(2), types.Int(99)), Certain(types.Int(9))}
	if a.SGKey() != b2.SGKey() {
		t.Error("same SG values must share SG key")
	}
	if a.String() == "" {
		t.Error("empty render")
	}
}

// Property: Union always bounds both inputs' intervals; New always valid.
func TestRangePropertyQuick(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rv := func() V {
		x, y, z := int64(r.Intn(40)-20), int64(r.Intn(40)-20), int64(r.Intn(40)-20)
		return New(types.Int(x), types.Int(y), types.Int(z))
	}
	f := func() bool {
		a, b := rv(), rv()
		if !a.Valid() || !b.Valid() {
			return false
		}
		u := a.Union(b)
		return u.Valid() &&
			u.Contains(a.Lo) && u.Contains(a.Hi) &&
			u.Contains(b.Lo) && u.Contains(b.Hi) &&
			(a.Overlaps(b) == b.Overlaps(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCheckedErrorPaths pins down Checked's rejection behavior: which
// orderings error, what the error carries, and that the returned V on
// error is the zero (all-NULL) value rather than a half-built triple.
func TestCheckedErrorPaths(t *testing.T) {
	cases := []struct {
		name       string
		lo, sg, hi types.Value
		wantErr    bool
	}{
		{"ordered", types.Int(1), types.Int(2), types.Int(3), false},
		{"all equal", types.Int(7), types.Int(7), types.Int(7), false},
		{"lo equals sg", types.Int(2), types.Int(2), types.Int(9), false},
		{"sg equals hi", types.Int(1), types.Int(9), types.Int(9), false},
		{"sg below lo", types.Int(3), types.Int(2), types.Int(4), true},
		{"hi below sg", types.Int(1), types.Int(2), types.Int(1), true},
		{"fully reversed", types.Int(9), types.Int(5), types.Int(1), true},
		// Infinities are the extreme elements of the total order.
		{"infinite bounds", types.NegInf(), types.Int(0), types.PosInf(), false},
		{"posinf lower bound", types.PosInf(), types.Int(0), types.PosInf(), true},
		{"neginf upper bound", types.NegInf(), types.Int(0), types.NegInf(), true},
		// NULL sorts between -inf and every non-null domain value.
		{"all null", types.Null(), types.Null(), types.Null(), false},
		{"null lower bound", types.Null(), types.Int(5), types.String("z"), false},
		{"null guess above int", types.Int(1), types.Null(), types.Int(2), true},
		// Mixed types follow the kind order null < bool < numeric < string.
		{"bool below int below string", types.Bool(false), types.Int(3), types.String("a"), false},
		{"string below int", types.String("a"), types.Int(3), types.PosInf(), true},
		{"int and float compare numerically", types.Int(1), types.Float(1.5), types.Int(2), false},
		{"float above int guess", types.Float(2.5), types.Int(2), types.Int(3), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, err := Checked(c.lo, c.sg, c.hi)
			if c.wantErr {
				if err == nil {
					t.Fatalf("Checked(%v, %v, %v): want error, got %v", c.lo, c.sg, c.hi, v)
				}
				if !strings.Contains(err.Error(), "bounds out of order") {
					t.Errorf("error should name the violation, got %q", err)
				}
				if zero := (V{}); v != zero {
					t.Errorf("on error Checked must return the zero V, got %v", v)
				}
				return
			}
			if err != nil {
				t.Fatalf("Checked(%v, %v, %v): unexpected error %v", c.lo, c.sg, c.hi, err)
			}
			if !v.Valid() {
				t.Errorf("accepted triple %v is not Valid", v)
			}
		})
	}
}

// TestValidNullAndMixedKinds exercises Valid directly on triples the
// constructors cannot produce, since the executor trusts Valid when
// auditing decoded or hand-assembled values.
func TestValidNullAndMixedKinds(t *testing.T) {
	null, one, two := types.Null(), types.Int(1), types.Int(2)
	cases := []struct {
		name string
		v    V
		want bool
	}{
		{"zero value is all-NULL and valid", V{}, true},
		{"certain NULL", Certain(null), true},
		{"null lo under numeric", V{Lo: null, SG: one, Hi: two}, true},
		{"null hi above numeric", V{Lo: one, SG: two, Hi: null}, false},
		{"null guess between numerics", V{Lo: one, SG: null, Hi: two}, false},
		{"null guess above neginf", V{Lo: types.NegInf(), SG: null, Hi: one}, true},
		{"bool below string", V{Lo: types.Bool(true), SG: types.Int(0), Hi: types.String("")}, true},
		{"string below bool", V{Lo: types.String(""), SG: types.String("a"), Hi: types.Bool(true)}, false},
		{"float between ints", V{Lo: types.Int(1), SG: types.Float(1.25), Hi: types.Int(2)}, true},
		{"equal int and float", V{Lo: types.Int(1), SG: types.Float(1), Hi: types.Int(1)}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.v.Valid(); got != c.want {
				t.Errorf("Valid(%v) = %v, want %v", c.v, got, c.want)
			}
		})
	}
}
