// Package rangeval implements the range-annotated domain D_I of the paper
// (Definition 6): triples [lb/sg/ub] of domain values with lb <= sg <= ub
// under the total order of the universal domain. A range value encodes a
// selected-guess value together with bounds on the value across all possible
// worlds.
package rangeval

import (
	"fmt"

	"github.com/audb/audb/internal/types"
)

// V is a range-annotated value [Lo/SG/Hi] with Lo <= SG <= Hi.
type V struct {
	Lo, SG, Hi types.Value
}

// Certain returns the range value [v/v/v].
func Certain(v types.Value) V { return V{Lo: v, SG: v, Hi: v} }

// New returns [lo/sg/hi], normalizing the bounds so that the invariant
// lo <= sg <= hi holds (widening as needed).
func New(lo, sg, hi types.Value) V {
	if types.Less(sg, lo) {
		lo = sg
	}
	if types.Less(hi, sg) {
		hi = sg
	}
	return V{Lo: lo, SG: sg, Hi: hi}
}

// Checked returns [lo/sg/hi] and an error if the bounds are out of order.
func Checked(lo, sg, hi types.Value) (V, error) {
	if types.Less(sg, lo) || types.Less(hi, sg) {
		return V{}, fmt.Errorf("rangeval: bounds out of order: [%v/%v/%v]", lo, sg, hi)
	}
	return V{Lo: lo, SG: sg, Hi: hi}, nil
}

// Full returns the maximally uncertain range around the selected guess sg:
// [-inf/sg/+inf].
func Full(sg types.Value) V {
	return V{Lo: types.NegInf(), SG: sg, Hi: types.PosInf()}
}

// Bool range constants used by condition evaluation.
var (
	CertTrue   = Certain(types.Bool(true))                                 // [T/T/T]
	CertFalse  = Certain(types.Bool(false))                                // [F/F/F]
	MaybeTrue  = V{types.Bool(false), types.Bool(true), types.Bool(true)}  // [F/T/T]
	MaybeFalse = V{types.Bool(false), types.Bool(false), types.Bool(true)} // [F/F/T]
)

// IsCertain reports whether lo = sg = hi, i.e. the value is the same in
// every possible world.
func (v V) IsCertain() bool {
	return types.Equal(v.Lo, v.SG) && types.Equal(v.SG, v.Hi)
}

// Valid reports whether the invariant lo <= sg <= hi holds.
func (v V) Valid() bool {
	return !types.Less(v.SG, v.Lo) && !types.Less(v.Hi, v.SG)
}

// Contains reports whether the deterministic value x lies within [lo, hi].
func (v V) Contains(x types.Value) bool {
	return !types.Less(x, v.Lo) && !types.Less(v.Hi, x)
}

// Overlaps reports whether the intervals [v.Lo, v.Hi] and [o.Lo, o.Hi]
// intersect. This is the predicate "t ≃ t'" of Definition 22 lifted to a
// single attribute: the two range values may be equal in some world.
func (v V) Overlaps(o V) bool {
	return !types.Less(v.Hi, o.Lo) && !types.Less(o.Hi, v.Lo)
}

// Union returns the minimum bounding range of v and o, keeping v's selected
// guess. This is the attribute-merge used by the SG-combiner (Definition 21)
// and by group-by bound computation (Definition 25).
func (v V) Union(o V) V {
	return V{
		Lo: types.Min(v.Lo, o.Lo),
		SG: v.SG,
		Hi: types.Max(v.Hi, o.Hi),
	}
}

// String renders the value; certain values render as the bare value.
func (v V) String() string {
	if v.IsCertain() {
		return v.SG.String()
	}
	return fmt.Sprintf("[%v/%v/%v]", v.Lo, v.SG, v.Hi)
}

// Tuple is a tuple of range-annotated values.
type Tuple []V

// CertainTuple lifts a deterministic tuple into D_I with certain values.
func CertainTuple(t types.Tuple) Tuple {
	out := make(Tuple, len(t))
	for i, v := range t {
		out[i] = Certain(v)
	}
	return out
}

// SG extracts the selected-guess tuple t^sg (Definition 13).
func (t Tuple) SG() types.Tuple {
	out := make(types.Tuple, len(t))
	for i, v := range t {
		out[i] = v.SG
	}
	return out
}

// Clone returns a deep copy.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// IsCertain reports whether every attribute value is certain.
func (t Tuple) IsCertain() bool {
	for _, v := range t {
		if !v.IsCertain() {
			return false
		}
	}
	return true
}

// Bounds reports whether t bounds the deterministic tuple d (Definition 14):
// every attribute of d lies within the corresponding range of t.
func (t Tuple) Bounds(d types.Tuple) bool {
	if len(t) != len(d) {
		return false
	}
	for i := range t {
		if !t[i].Contains(d[i]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether t and o overlap on every attribute (t ≃ o,
// Definition 22): the tuples may represent the same tuple in some world.
func (t Tuple) Overlaps(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Overlaps(o[i]) {
			return false
		}
	}
	return true
}

// CertainlyEqual reports t ≡ o (Definition 22): t and o are attribute-wise
// certain and equal, i.e. they denote the same tuple in every world.
func (t Tuple) CertainlyEqual(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].IsCertain() || !o[i].IsCertain() || !types.Equal(t[i].SG, o[i].SG) {
			return false
		}
	}
	return true
}

// Union merges the bounds of o into t attribute-wise, keeping t's guesses.
func (t Tuple) Union(o Tuple) Tuple {
	out := make(Tuple, len(t))
	for i := range t {
		out[i] = t[i].Union(o[i])
	}
	return out
}

// Project returns the projection of t onto the given column indexes.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Concat returns the concatenation of t and o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Key returns an injective encoding of the full triple tuple, used to merge
// value-equivalent tuples.
func (t Tuple) Key() string { return string(t.AppendKey(nil)) }

// AppendKey appends Key's encoding to buf — the allocation-free form for
// hot loops that probe a map with m[string(buf)] before deciding whether
// to retain the key.
func (t Tuple) AppendKey(buf []byte) []byte {
	for _, v := range t {
		buf = v.Lo.AppendKey(buf)
		buf = v.SG.AppendKey(buf)
		buf = v.Hi.AppendKey(buf)
	}
	return buf
}

// SGKey returns an injective encoding of the selected-guess tuple, used by
// the SG-combiner and the default grouping strategy.
func (t Tuple) SGKey() string {
	var buf []byte
	for _, v := range t {
		buf = v.SG.AppendKey(buf)
	}
	return string(buf)
}

// String renders the tuple.
func (t Tuple) String() string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
