package rangeval

import "github.com/audb/audb/internal/types"

// Sparse column storage: the vertical-decomposition idea of U-relations
// applied to the range-annotated domain. A column whose every row is
// certain ([v/v/v]) stores one flat value per row instead of a triple —
// one third of the memory and no bound arithmetic to widen — while a
// column with any uncertain row keeps the dense triple layout. The
// ColBuilder starts flat and promotes to dense the moment it sees an
// uncertain value, backfilling the rows appended so far.
//
// Col's fields are exported so hot loops in internal/core can read them
// without a call per value, but *writing* them (composite literals, field
// or element assignment, taking a field address) outside this package is
// forbidden and enforced by the audblint boundsctor rule: the only way
// into sparse form is a ColBuilder, the only ways out are At/Build. That
// keeps the representation invariants (exactly one of Flat/Dense set,
// Nulls consistent with Flat) in one package.

// Col is one column of a sparse relation: either a flat slice of certain
// values or a dense slice of range triples, never both.
type Col struct {
	// Flat holds the per-row values of a column whose every row is
	// certain; the range value of row i is [Flat[i]/Flat[i]/Flat[i]].
	// nil when the column is dense. Read-only outside rangeval.
	Flat []types.Value
	// Dense holds the per-row triples of a column with at least one
	// uncertain row. nil when the column is flat. Read-only outside
	// rangeval.
	Dense []V
	// Nulls counts the null values in a flat column (a certain null is a
	// legal certain value, but it still disqualifies the null-sensitive
	// certain-only predicate fast path). Always 0 for dense columns.
	Nulls int
}

// Len returns the number of rows in the column.
func (c Col) Len() int {
	if c.Flat != nil {
		return len(c.Flat)
	}
	return len(c.Dense)
}

// IsFlat reports whether the column stores flat certain values.
func (c Col) IsFlat() bool { return c.Dense == nil }

// HasNulls reports whether a flat column contains null values.
func (c Col) HasNulls() bool { return c.Nulls > 0 }

// At returns row i as a range value, expanding flat values to [v/v/v].
func (c Col) At(i int) V {
	if c.Flat != nil {
		return Certain(c.Flat[i])
	}
	return c.Dense[i]
}

// Slice returns the column restricted to rows [lo, hi), sharing storage —
// the zero-copy view the pipelined executor's columnar batches are built
// from. A flat slice keeps the whole column's null count: a null-free
// column has null-free spans (the case the fast paths gate on), while a
// column with nulls stays conservatively marked.
func (c Col) Slice(lo, hi int) Col {
	if c.Flat != nil {
		return Col{Flat: c.Flat[lo:hi], Nulls: c.Nulls}
	}
	return Col{Dense: c.Dense[lo:hi]}
}

// AppendRowKey appends row i's injective triple encoding to buf —
// byte-identical to Tuple.AppendKey of the expanded [v/v/v] triple, so
// keys built from columns and keys built from dense tuples probe the same
// maps interchangeably.
func (c Col) AppendRowKey(buf []byte, i int) []byte {
	if c.Flat != nil {
		v := c.Flat[i]
		buf = v.AppendKey(buf)
		buf = v.AppendKey(buf)
		return v.AppendKey(buf)
	}
	d := c.Dense[i]
	buf = d.Lo.AppendKey(buf)
	buf = d.SG.AppendKey(buf)
	return d.Hi.AppendKey(buf)
}

// ColFromFlat returns a flat column aliasing vals, counting its nulls.
// The caller must not mutate vals while the column is in use; the
// pipelined executor's vectorized projection builds its per-batch output
// columns through here (the batch contract — valid until the next Next —
// bounds the aliasing).
func ColFromFlat(vals []types.Value) Col {
	nulls := 0
	for _, v := range vals {
		if v.IsNull() {
			nulls++
		}
	}
	return Col{Flat: vals, Nulls: nulls}
}

// ColFromDense returns a dense column aliasing d, under the same
// no-mutation contract as ColFromFlat. Every element of d is a V built by
// this package's constructors, so the lb ≤ sg ≤ ub invariant holds by
// construction.
func ColFromDense(d []V) Col { return Col{Dense: d} }

// ColBuilder accumulates one column row by row, keeping the flat layout
// for as long as every appended value is certain. The zero value is an
// empty builder.
type ColBuilder struct {
	flat  []types.Value
	dense []V
	nulls int
}

// Grow reserves capacity for n additional rows.
func (b *ColBuilder) Grow(n int) {
	if b.dense != nil {
		if cap(b.dense)-len(b.dense) < n {
			next := make([]V, len(b.dense), len(b.dense)+n)
			copy(next, b.dense)
			b.dense = next
		}
		return
	}
	if cap(b.flat)-len(b.flat) < n {
		next := make([]types.Value, len(b.flat), len(b.flat)+n)
		copy(next, b.flat)
		b.flat = next
	}
}

// Append adds one row. The first uncertain value promotes the column to
// the dense layout, expanding every previously appended value to [v/v/v].
func (b *ColBuilder) Append(v V) {
	if b.dense == nil {
		if v.IsCertain() {
			if v.SG.IsNull() {
				b.nulls++
			}
			b.flat = append(b.flat, v.SG)
			return
		}
		dense := make([]V, len(b.flat), cap(b.flat)+1)
		for i, sv := range b.flat {
			dense[i] = Certain(sv)
		}
		b.dense = dense
		b.flat = nil
		b.nulls = 0
	}
	b.dense = append(b.dense, v)
}

// Len returns the number of rows appended so far.
func (b *ColBuilder) Len() int {
	if b.dense != nil {
		return len(b.dense)
	}
	return len(b.flat)
}

// IsFlat reports whether the column is still in the flat layout.
func (b *ColBuilder) IsFlat() bool { return b.dense == nil }

// Nulls returns the null count of a still-flat column.
func (b *ColBuilder) Nulls() int { return b.nulls }

// Build returns the finished column. The builder must not be reused.
func (b *ColBuilder) Build() Col {
	if b.dense != nil {
		return Col{Dense: b.dense}
	}
	return Col{Flat: b.flat, Nulls: b.nulls}
}
