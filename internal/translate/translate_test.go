package translate

import (
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

func row(vs ...int64) types.Tuple {
	out := make(types.Tuple, len(vs))
	for i, v := range vs {
		out[i] = types.Int(v)
	}
	return out
}

// TestTIDBTheorem9: the translation bounds all worlds of the TI-DB.
func TestTIDBTheorem9(t *testing.T) {
	r := worlds.NewXRelation(schema.New("v"))
	r.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(1)}, Probs: []float64{1.0}})
	r.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(2)}, Probs: []float64{0.7}})
	r.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(3)}, Probs: []float64{0.2}})
	au, err := TIDB(r)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := r.Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	if !au.BoundsWorlds(ws) {
		t.Fatalf("TI translation does not bound its worlds:\n%s", au)
	}
	// SGW keeps tuples with p >= 0.5.
	sgw := au.SGW()
	if sgw.Count(row(1)) != 1 || sgw.Count(row(2)) != 1 || sgw.Count(row(3)) != 0 {
		t.Errorf("SGW:\n%s", sgw)
	}
	// Multi-alternative blocks are rejected.
	bad := worlds.NewXRelation(schema.New("v"))
	bad.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(1), row(2)}})
	if _, err := TIDB(bad); err == nil {
		t.Error("TI-DB with alternatives should error")
	}
}

// TestXDBTheorem10: the translation bounds all worlds of the x-DB.
func TestXDBTheorem10(t *testing.T) {
	r := worlds.NewXRelation(schema.New("a", "b"))
	r.AddCertain(row(1, 10))
	r.AddBlock(worlds.XTuple{
		Alts:  []types.Tuple{row(2, 20), row(3, 30), row(2, 25)},
		Probs: []float64{0.2, 0.5, 0.3},
	})
	r.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(7, 70)}, Probs: []float64{0.1}})
	au := XDB(r)
	ws, err := r.Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	if !au.BoundsWorlds(ws) {
		t.Fatalf("x-DB translation does not bound its worlds:\n%s", au)
	}
	// The SG of the second block is the 0.5 alternative (3, 30).
	sgw := au.SGW()
	if sgw.Count(row(3, 30)) != 1 {
		t.Errorf("SGW should pick best alternative:\n%s", sgw)
	}
	// The low-probability optional block is absent from the SGW.
	if sgw.Count(row(7, 70)) != 0 {
		t.Errorf("SGW should drop 0.1 block:\n%s", sgw)
	}
	dbs := XDBAll(worlds.XDB{"r": r})
	if dbs["r"].Len() != 3 {
		t.Error("XDBAll")
	}
}

// TestCTableTheorem11: the translation bounds all worlds of the C-table.
func TestCTableTheorem11(t *testing.T) {
	ct := &worlds.CTable{
		Schema: schema.New("v", "w"),
		Vars: []worlds.CVar{
			{Name: "x", Domain: []types.Value{types.Int(1), types.Int(2), types.Int(3)},
				Probs: []float64{0.5, 0.3, 0.2}},
			{Name: "y", Domain: []types.Value{types.Int(0), types.Int(9)}},
		},
	}
	ct.Rows = []worlds.CRow{
		{Cells: []worlds.CValue{worlds.CRef("x"), worlds.CConst(types.Int(5))}},
		{Cells: []worlds.CValue{worlds.CConst(types.Int(4)), worlds.CRef("y")},
			Local: expr.Gt(ct.Ref("x"), expr.CInt(1))},
	}
	au, err := CTable(ct, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ct.Worlds(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if !au.BoundsWorld(w) {
			t.Fatalf("C-table translation misses world:\n%s\nAU:\n%s", w, au)
		}
	}
	// Row 1 is a tautology: lower bound 1. Row 2 is satisfiable only.
	if au.Tuples[0].M.Lo != 1 {
		t.Errorf("tautological row lower bound: %v", au.Tuples[0].M)
	}
	if au.Tuples[1].M.Lo != 0 || au.Tuples[1].M.Hi != 1 {
		t.Errorf("conditional row bounds: %v", au.Tuples[1].M)
	}
	// Attribute bounds of row 1 span the domain of x.
	v := au.Tuples[0].Vals[0]
	if v.Lo.AsInt() != 1 || v.Hi.AsInt() != 3 {
		t.Errorf("row 1 attribute bounds %v", v)
	}
	// SG valuation picks x=1 (p=0.5): local condition of row 2 fails in
	// the SGW, so its SG annotation is 0.
	if au.Tuples[1].M.SG != 0 {
		t.Errorf("row 2 SG annotation %v", au.Tuples[1].M)
	}
}

func TestCTableUnsatisfiableRowDropped(t *testing.T) {
	ct := &worlds.CTable{
		Schema: schema.New("v"),
		Vars:   []worlds.CVar{{Name: "x", Domain: []types.Value{types.Int(1), types.Int(2)}}},
	}
	ct.Rows = []worlds.CRow{
		{Cells: []worlds.CValue{worlds.CRef("x")}, Local: expr.Gt(ct.Ref("x"), expr.CInt(5))},
		{Cells: []worlds.CValue{worlds.CConst(types.Int(7))}},
	}
	au, err := CTable(ct, 100)
	if err != nil {
		t.Fatal(err)
	}
	if au.Len() != 1 {
		t.Fatalf("unsatisfiable row should vanish:\n%s", au)
	}
	// Errors surface: unknown variable, unsatisfiable global, too many vals.
	bad := &worlds.CTable{
		Schema: schema.New("v"),
		Vars:   []worlds.CVar{{Name: "x", Domain: []types.Value{types.Int(1)}}},
		Rows:   []worlds.CRow{{Cells: []worlds.CValue{worlds.CRef("zzz")}}},
	}
	if _, err := CTable(bad, 100); err == nil {
		t.Error("unknown variable should error")
	}
	unsat := &worlds.CTable{
		Schema: schema.New("v"),
		Vars:   []worlds.CVar{{Name: "x", Domain: []types.Value{types.Int(1)}}},
		Global: expr.Gt(expr.Col(0, "x"), expr.CInt(9)),
		Rows:   []worlds.CRow{{Cells: []worlds.CValue{worlds.CRef("x")}}},
	}
	if _, err := CTable(unsat, 100); err == nil {
		t.Error("unsatisfiable global should error")
	}
}

func TestKeyRepair(t *testing.T) {
	// Relation with key a; two tuples violate the key for a=1.
	r := bag.New(schema.New("a", "b"))
	r.Add(row(1, 10), 1)
	r.Add(row(1, 30), 1)
	r.Add(row(2, 20), 1)
	au := KeyRepair(r, []int{0})
	if au.Len() != 2 {
		t.Fatalf("repaired groups: %d", au.Len())
	}
	// SG takes the first tuple per group.
	sgw := au.SGW()
	if sgw.Count(row(1, 10)) != 1 || sgw.Count(row(2, 20)) != 1 {
		t.Errorf("SGW:\n%s", sgw)
	}
	// Every repair world is bounded (Definition 17 via enumeration).
	ws, err := KeyRepairWorlds(r, []int{0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("repairs: %d", len(ws))
	}
	if !au.BoundsWorlds(ws) {
		t.Fatal("key repair translation does not bound its repairs")
	}
	// b-range of group a=1 spans [10,30].
	var found bool
	for _, tup := range au.Tuples {
		if tup.Vals[0].SG.AsInt() == 1 {
			found = true
			if tup.Vals[1].Lo.AsInt() != 10 || tup.Vals[1].Hi.AsInt() != 30 {
				t.Errorf("group bounds %v", tup.Vals[1])
			}
		}
	}
	if !found {
		t.Error("group a=1 missing")
	}
	// Repair enumeration limit.
	big := bag.New(schema.New("a", "b"))
	for i := int64(0); i < 12; i++ {
		big.Add(row(i/2, i), 1)
	}
	if _, err := KeyRepairWorlds(big, []int{0}, 10); err == nil {
		t.Error("repair explosion should error")
	}
}

func TestMakeUncertain(t *testing.T) {
	v := MakeUncertain(types.Int(1), types.Int(2), types.Int(3))
	if v.Lo.AsInt() != 1 || v.SG.AsInt() != 2 || v.Hi.AsInt() != 3 {
		t.Error("MakeUncertain")
	}
	// Out-of-order bounds normalize.
	v = MakeUncertain(types.Int(5), types.Int(2), types.Int(3))
	if !v.Valid() {
		t.Error("normalization")
	}
}
