// Package translate creates AU-DBs from incomplete and probabilistic data
// models (Section 11 of the paper): tuple-independent databases, x-DBs
// (block-independent databases), C-tables, and lens-style cleaning
// operators such as key repair. Every translation is bound preserving
// (Theorems 9-11): the produced AU-relation bounds the set of possible
// worlds of its source.
package translate

import (
	"fmt"
	"sort"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// TIDB translates a probabilistic tuple-independent relation (Section
// 11.1): every block must have exactly one alternative. Attribute values
// are certain; the annotation is (1,1,1) for certain tuples, (0,1,1) for
// tuples in the SGW (p >= 0.5), and (0,0,1) for merely possible ones.
func TIDB(r *worlds.XRelation) (*core.Relation, error) {
	out := core.New(r.Schema)
	for i := range r.Tuples {
		blk := &r.Tuples[i]
		if len(blk.Alts) != 1 {
			return nil, fmt.Errorf("translate: TI-DB block %d has %d alternatives", i, len(blk.Alts))
		}
		p := blk.P()
		m := core.Mult{Lo: 0, SG: 0, Hi: 1}
		if !blk.IsOptional() {
			m.Lo = 1
		}
		if p >= 0.5 {
			m.SG = 1
		}
		if m.Lo > m.SG {
			m.SG = m.Lo
		}
		out.Add(core.Tuple{Vals: rangeval.CertainTuple(blk.Alts[0]), M: m})
	}
	return out.Merge(), nil
}

// XDB translates a block-independent relation (Section 11.2): each block
// becomes one AU-tuple whose attribute ranges span all alternatives and
// whose SG values come from the highest-probability alternative. The tuple
// annotation is (0-or-1, sg, 1) where sg reflects whether keeping the best
// alternative is at least as likely as dropping the block.
func XDB(r *worlds.XRelation) *core.Relation {
	out := core.New(r.Schema)
	for i := range r.Tuples {
		blk := &r.Tuples[i]
		best := blk.BestAlt()
		vals := make(rangeval.Tuple, r.Schema.Arity())
		for c := 0; c < r.Schema.Arity(); c++ {
			lo, hi := blk.Alts[0][c], blk.Alts[0][c]
			for _, a := range blk.Alts[1:] {
				lo = types.Min(lo, a[c])
				hi = types.Max(hi, a[c])
			}
			vals[c] = rangeval.New(lo, blk.Alts[best][c], hi)
		}
		m := core.Mult{Lo: 1, SG: 1, Hi: 1}
		if blk.IsOptional() {
			m.Lo = 0
			if blk.Probs != nil && 1-blk.P() > blk.Probs[best] {
				m.SG = 0
			}
		}
		out.Add(core.Tuple{Vals: vals, M: m})
	}
	return out
}

// XDBAll translates a whole x-database.
func XDBAll(db worlds.XDB) core.DB {
	out := core.DB{}
	for n, r := range db {
		out[n] = XDB(r)
	}
	return out
}

// CTable translates a C-table (Section 11.3). Per-tuple attribute bounds
// come from minimizing/maximizing each cell over all valuations that
// satisfy the global and local conditions (the "constraint solver" of the
// paper, realized by enumeration over the finite variable domains); the
// multiplicity bounds classify each row's local condition as tautology
// (certain), satisfiable (possible), or unsatisfiable (absent).
func CTable(ct *worlds.CTable, limit int) (*core.Relation, error) {
	mu, err := ct.BestValuation(limit)
	if err != nil {
		return nil, err
	}
	vals, err := ctValuations(ct, limit)
	if err != nil {
		return nil, err
	}
	out := core.New(ct.Schema)
	for ri, row := range ct.Rows {
		lo := make([]types.Value, len(row.Cells))
		hi := make([]types.Value, len(row.Cells))
		sat, taut := 0, 0
		total := 0
		for _, v := range vals {
			t, holds, err := ctRowUnder(ct, row, v)
			if err != nil {
				return nil, fmt.Errorf("translate: C-table row %d: %w", ri, err)
			}
			total++
			if !holds {
				continue
			}
			sat++
			for c := range t {
				if sat == 1 {
					lo[c], hi[c] = t[c], t[c]
				} else {
					lo[c] = types.Min(lo[c], t[c])
					hi[c] = types.Max(hi[c], t[c])
				}
			}
		}
		taut = 0
		if sat == total {
			taut = 1
		}
		if sat == 0 {
			continue // unsatisfiable row: certainly absent
		}
		sgTuple, sgHolds, err := ctRowUnder(ct, row, mu)
		if err != nil {
			return nil, err
		}
		rv := make(rangeval.Tuple, len(row.Cells))
		for c := range rv {
			sg := hi[c]
			if sgHolds {
				sg = sgTuple[c]
			}
			// New widens the triple if the SG valuation fell outside the
			// accumulated bounds (the global-condition fallback can do that).
			rv[c] = rangeval.New(lo[c], sg, hi[c])
		}
		m := core.Mult{Lo: int64(taut), SG: 0, Hi: 1}
		if sgHolds {
			m.SG = 1
		}
		if m.Lo > m.SG {
			// A tautological condition whose SG valuation was overridden
			// by the global-condition fallback still holds.
			m.SG = m.Lo
		}
		out.Add(core.Tuple{Vals: rv, M: m})
	}
	return out, nil
}

// ctValuations returns all valuations satisfying the global condition.
func ctValuations(ct *worlds.CTable, limit int) ([]types.Tuple, error) {
	all, err := allValuations(ct, limit)
	if err != nil {
		return nil, err
	}
	if ct.Global == nil {
		return all, nil
	}
	var out []types.Tuple
	for _, v := range all {
		g, err := ct.Global.Eval(v)
		if err != nil {
			return nil, err
		}
		if g.AsBool() {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("translate: C-table global condition unsatisfiable")
	}
	return out, nil
}

func allValuations(ct *worlds.CTable, limit int) ([]types.Tuple, error) {
	n := 1
	for _, v := range ct.Vars {
		n *= len(v.Domain)
		if n > limit {
			return nil, fmt.Errorf("translate: more than %d C-table valuations", limit)
		}
	}
	out := []types.Tuple{{}}
	for _, v := range ct.Vars {
		var next []types.Tuple
		for _, val := range out {
			for _, d := range v.Domain {
				next = append(next, append(append(types.Tuple{}, val...), d))
			}
		}
		out = next
	}
	return out, nil
}

// ctRowUnder instantiates a row under one valuation.
func ctRowUnder(ct *worlds.CTable, row worlds.CRow, mu types.Tuple) (types.Tuple, bool, error) {
	if row.Local != nil {
		v, err := row.Local.Eval(mu)
		if err != nil {
			return nil, false, err
		}
		if !v.AsBool() {
			return nil, false, nil
		}
	}
	t := make(types.Tuple, len(row.Cells))
	for i, cell := range row.Cells {
		if cell.IsVar {
			idx := ct.VarIndex(cell.Var)
			if idx < 0 {
				return nil, false, fmt.Errorf("unknown variable %q", cell.Var)
			}
			t[i] = mu[idx]
		} else {
			t[i] = cell.Const
		}
	}
	return t, true, nil
}

// KeyRepair is the lens of Section 11.4 / Example 16: it exposes the
// uncertainty of repairing key violations in a deterministic relation.
// Tuples are grouped by the key attributes; each group becomes one certain
// AU-tuple (every repair keeps exactly one tuple per key) whose non-key
// attribute ranges span the group. The selected guess takes the first
// tuple of the group in insertion order (the paper's "cleaning heuristic"
// slot; callers can pre-sort by trustworthiness).
func KeyRepair(r *bag.Relation, keyCols []int) *core.Relation {
	type group struct {
		first types.Tuple
		lo    types.Tuple
		hi    types.Tuple
	}
	groups := map[string]*group{}
	var order []string
	for _, t := range r.Tuples {
		k := t.KeyOn(keyCols)
		g, ok := groups[k]
		if !ok {
			g = &group{first: t.Clone(), lo: t.Clone(), hi: t.Clone()}
			groups[k] = g
			order = append(order, k)
			continue
		}
		for c := range t {
			g.lo[c] = types.Min(g.lo[c], t[c])
			g.hi[c] = types.Max(g.hi[c], t[c])
		}
	}
	out := core.New(r.Schema)
	for _, k := range order {
		g := groups[k]
		vals := make(rangeval.Tuple, r.Schema.Arity())
		for c := range vals {
			vals[c] = rangeval.New(g.lo[c], g.first[c], g.hi[c])
		}
		out.Add(core.Tuple{Vals: vals, M: core.One})
	}
	return out
}

// KeyRepairWorlds enumerates the possible repairs of a key-violating
// relation (one choice per violated key group), for ground-truth
// computations on small inputs.
func KeyRepairWorlds(r *bag.Relation, keyCols []int, limit int) ([]*bag.Relation, error) {
	groups := map[string][]types.Tuple{}
	var order []string
	for _, t := range r.Tuples {
		k := t.KeyOn(keyCols)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], t)
	}
	sort.Strings(order)
	combos := []*bag.Relation{bag.New(r.Schema)}
	for _, k := range order {
		var next []*bag.Relation
		for _, w := range combos {
			for _, choice := range groups[k] {
				nw := w.Clone()
				nw.Add(choice, 1)
				next = append(next, nw)
			}
		}
		if len(next) > limit {
			return nil, fmt.Errorf("translate: more than %d repairs", limit)
		}
		combos = next
	}
	return combos, nil
}

// MakeUncertain builds an AU-tuple attribute from explicit bounds, the
// user-facing uncertainty constructor of Section 11.4.
func MakeUncertain(lo, sg, hi types.Value) rangeval.V { return rangeval.New(lo, sg, hi) }
