package types

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNegInf: "neginf", KindNull: "null", KindBool: "bool",
		KindInt: "int", KindFloat: "float", KindString: "string",
		KindPosInf: "posinf",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value is not null")
	}
	if Bool(true).Kind() != KindBool || !Bool(true).AsBool() {
		t.Error("Bool(true) broken")
	}
	if Bool(false).AsBool() {
		t.Error("Bool(false).AsBool() = true")
	}
	if Int(7).AsInt() != 7 {
		t.Error("Int roundtrip")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float roundtrip")
	}
	if String("xy").AsString() != "xy" {
		t.Error("String roundtrip")
	}
	if !Int(3).IsNumeric() || !Float(3).IsNumeric() || String("a").IsNumeric() {
		t.Error("IsNumeric misclassifies")
	}
	if !NegInf().IsInf() || !PosInf().IsInf() || Int(0).IsInf() {
		t.Error("IsInf misclassifies")
	}
	if Float(3.9).AsInt() != 3 {
		t.Error("AsInt truncation")
	}
	if Bool(true).AsInt() != 1 || Bool(false).AsInt() != 0 {
		t.Error("bool AsInt")
	}
	if Bool(true).AsFloat() != 1 || Bool(false).AsFloat() != 0 {
		t.Error("bool AsFloat")
	}
	if !math.IsInf(NegInf().AsFloat(), -1) || !math.IsInf(PosInf().AsFloat(), 1) {
		t.Error("inf AsFloat")
	}
	if Null().AsInt() != 0 || Null().AsFloat() != 0 {
		t.Error("null numeric coercion should be zero")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-4), "-4"},
		{Float(1.5), "1.5"},
		{String("hi"), "hi"},
		{NegInf(), "-inf"},
		{PosInf(), "+inf"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q want %q", c.v.Kind(), got, c.want)
		}
	}
	if String("hello").AsString() != "hello" {
		t.Error("AsString on string")
	}
	if Int(2).AsString() != "2" {
		t.Error("AsString on non-string should render")
	}
}

func TestCompareTotalOrderAcrossKinds(t *testing.T) {
	asc := []Value{NegInf(), Null(), Bool(false), Bool(true), Int(-5), Int(0),
		Float(0.5), Int(1), Float(1.5), String("a"), String("b"), PosInf()}
	for i := range asc {
		for j := range asc {
			got := Compare(asc[i], asc[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Int(0) and Float(0.5) etc are strictly ordered; equal
			// positions only at i==j here.
			if got != want {
				t.Errorf("Compare(%v,%v) = %d want %d", asc[i], asc[j], got, want)
			}
		}
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("Int(2) != Float(2.0)")
	}
	if Compare(Float(1.5), Int(2)) != -1 {
		t.Error("1.5 < 2 fails")
	}
	if Compare(Int(3), Float(2.5)) != 1 {
		t.Error("3 > 2.5 fails")
	}
	if !Equal(Int(2), Float(2)) || Equal(Int(2), Int(3)) {
		t.Error("Equal broken")
	}
	if !Less(Int(1), Int(2)) || Less(Int(2), Int(1)) {
		t.Error("Less broken")
	}
}

func TestMinMax(t *testing.T) {
	if Min(Int(3), Int(5)) != Int(3) || Max(Int(3), Int(5)) != Int(5) {
		t.Error("Min/Max ints")
	}
	if Min(String("b"), Int(7)).Kind() != KindInt {
		t.Error("numeric < string in total order")
	}
	if Max(NegInf(), Null()).Kind() != KindNull {
		t.Error("null > -inf")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(7) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(int64(r.Intn(21) - 10))
	case 3:
		return Float(float64(r.Intn(200)-100) / 4)
	case 4:
		return String(string(rune('a' + r.Intn(5))))
	case 5:
		return NegInf()
	default:
		return PosInf()
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		// antisymmetry
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		// reflexivity
		if Compare(a, a) != 0 {
			return false
		}
		// transitivity of <=
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
	if got := mustV(Add(Int(2), Int(3))); got != Int(5) {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Add(Int(2), Float(0.5))); got != Float(2.5) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Sub(Int(2), Int(5))); got != Int(-3) {
		t.Errorf("2-5 = %v", got)
	}
	if got := mustV(Mul(Int(4), Int(-3))); got != Int(-12) {
		t.Errorf("4*-3 = %v", got)
	}
	if got := mustV(Mul(Float(0.5), Int(8))); got != Float(4) {
		t.Errorf("0.5*8 = %v", got)
	}
	if got := mustV(Div(Int(7), Int(2))); got != Float(3.5) {
		t.Errorf("7/2 = %v", got)
	}
	if got := mustV(Neg(Float(1.5))); got != Float(-1.5) {
		t.Errorf("-1.5 = %v", got)
	}
	if got := mustV(Neg(Int(4))); got != Int(-4) {
		t.Errorf("neg 4 = %v", got)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	for _, op := range []func(a, b Value) (Value, error){Add, Sub, Mul, Div} {
		v, err := op(Null(), Int(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op(null,1) = %v, %v", v, err)
		}
		v, err = op(Int(1), Null())
		if err != nil || !v.IsNull() {
			t.Errorf("op(1,null) = %v, %v", v, err)
		}
	}
	v, err := Neg(Null())
	if err != nil || !v.IsNull() {
		t.Errorf("neg(null) = %v, %v", v, err)
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Add(String("a"), Int(1)); err == nil {
		t.Error("string + int should fail")
	}
	if _, err := Mul(Bool(true), Int(1)); err == nil {
		t.Error("bool * int should fail")
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := Div(Int(1), Float(0)); err == nil {
		t.Error("division by float zero should fail")
	}
	if _, err := Add(NegInf(), PosInf()); err == nil {
		t.Error("-inf + +inf should fail")
	}
	if _, err := Neg(String("x")); err == nil {
		t.Error("neg string should fail")
	}
	var te *ErrType
	_, err := Add(String("a"), Int(1))
	if e, ok := err.(*ErrType); ok {
		te = e
	} else {
		t.Fatalf("expected *ErrType, got %T", err)
	}
	if te.Error() == "" {
		t.Error("empty error message")
	}
	if (ErrDivisionByZero{}).Error() == "" {
		t.Error("empty division error message")
	}
}

func TestInfArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
		if Compare(got, want) != 0 {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	v, err := Add(PosInf(), Int(5))
	check(v, err, PosInf())
	v, err = Add(Int(5), NegInf())
	check(v, err, NegInf())
	v, err = Mul(PosInf(), Int(-2))
	check(v, err, NegInf())
	v, err = Mul(NegInf(), Int(-2))
	check(v, err, PosInf())
	v, err = Mul(PosInf(), Int(0))
	check(v, err, Int(0)) // annihilation convention
	v, err = Mul(PosInf(), PosInf())
	check(v, err, PosInf())
	v, err = Div(Int(3), PosInf())
	check(v, err, Float(0))
	v, err = Div(PosInf(), Int(2))
	check(v, err, PosInf())
	v, err = Div(PosInf(), Int(-2))
	check(v, err, NegInf())
	if _, err := Div(PosInf(), NegInf()); err == nil {
		t.Error("inf/inf should fail")
	}
	v, err = Sub(PosInf(), Int(1))
	check(v, err, PosInf())
}

func TestAppendKeyInjective(t *testing.T) {
	vals := []Value{Null(), Bool(false), Bool(true), Int(0), Int(1), Int(256),
		Float(0.5), Float(-0.5), String(""), String("a"), String("ab"),
		NegInf(), PosInf()}
	seen := map[string]Value{}
	for _, v := range vals {
		k := string(v.AppendKey(nil))
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestAppendKeyIntFloatAgree(t *testing.T) {
	ki := string(Int(42).AppendKey(nil))
	kf := string(Float(42).AppendKey(nil))
	if ki != kf {
		t.Error("Int(42) and Float(42) should share a key (Compare-equal)")
	}
	kf2 := string(Float(42.5).AppendKey(nil))
	if ki == kf2 {
		t.Error("Float(42.5) must not collide with Int(42)")
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{Int(1), String("x")}
	b := a.Clone()
	b[0] = Int(2)
	if a[0] != Int(1) {
		t.Error("Clone aliases")
	}
	if !a.Equal(Tuple{Float(1), String("x")}) {
		t.Error("Equal should coerce numerics")
	}
	if a.Equal(Tuple{Int(1)}) {
		t.Error("length mismatch should not be equal")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare ordering")
	}
	if (Tuple{Int(1)}).Compare(Tuple{Int(1), Int(2)}) != -1 {
		t.Error("prefix should order first")
	}
	if (Tuple{Int(1), Int(2)}).Compare(Tuple{Int(1)}) != 1 {
		t.Error("longer should order later")
	}
	c := a.Concat(b)
	if len(c) != 4 || c[2] != Int(2) {
		t.Error("Concat broken")
	}
	p := c.Project([]int{3, 0})
	if len(p) != 2 || p[0] != String("x") || p[1] != Int(1) {
		t.Error("Project broken")
	}
	if a.Key() == b.Key() {
		t.Error("distinct tuples share a key")
	}
	if c.KeyOn([]int{0, 1}) != a.Key() {
		t.Error("KeyOn prefix should equal Key of prefix")
	}
	if a.String() != "(1, x)" {
		t.Errorf("String: %s", a.String())
	}
}
