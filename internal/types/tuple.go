package types

import "strings"

// Tuple is a deterministic tuple over the universal domain.
type Tuple []Value

// Clone returns a deep copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Key returns an injective string encoding of t, suitable as a map key for
// hash joins, grouping and duplicate elimination.
func (t Tuple) Key() string {
	var buf []byte
	for _, v := range t {
		buf = v.AppendKey(buf)
	}
	return string(buf)
}

// KeyOn returns the key of the projection of t onto the given column indexes.
func (t Tuple) KeyOn(cols []int) string {
	var buf []byte
	for _, c := range cols {
		buf = t[c].AppendKey(buf)
	}
	return string(buf)
}

// Equal reports component-wise equality under the domain's total order.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if Compare(t[i], o[i]) != 0 {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Concat returns the concatenation of t and o as a fresh tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Project returns the projection of t onto the given column indexes.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
