// Package types implements the universal domain D of attribute values used
// throughout the AU-DB system: a tagged union over null, booleans, 64-bit
// integers, 64-bit floats and strings, equipped with the total order the
// paper requires (Section 3, footnote 2) and with the arithmetic used by
// scalar expressions (Section 5).
//
// Two sentinel values, NegInf and PosInf, order below and above every other
// value. They serve as the end points of "whole domain" ranges and as the
// neutral elements of the MIN and MAX aggregation monoids.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies which member of the tagged union a Value holds.
type Kind uint8

// The kinds. KindNull is zero so that the zero Value is null. The total
// order over D is defined by rank(), not by the numeric kind codes:
// -inf < null < bool < numeric < string < +inf.
const (
	KindNull Kind = iota // SQL-style null / completely unknown marker
	KindBool
	KindInt
	KindFloat
	KindString
	KindNegInf // -infinity sentinel; smaller than everything
	KindPosInf // +infinity sentinel; larger than everything
)

func (k Kind) String() string {
	switch k {
	case KindNegInf:
		return "neginf"
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindPosInf:
		return "posinf"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is an element of the universal domain D. The zero value is Null.
// Value is a comparable struct and may be used as a map key; note however
// that map-key identity distinguishes Int(2) from Float(2) even though
// Compare treats them as equal (homogeneously typed columns, which all
// generators in this repository produce, avoid the distinction).
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
}

// Null returns the null value. It is also the zero Value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a boolean domain value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer domain value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating point domain value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string domain value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// NegInf returns the sentinel that orders below every domain value.
func NegInf() Value { return Value{kind: KindNegInf} }

// PosInf returns the sentinel that orders above every domain value.
func PosInf() Value { return Value{kind: KindPosInf} }

// True and False are convenience boolean constants.
var (
	TrueValue  = Bool(true)
	FalseValue = Bool(false)
)

// Kind reports which member of the union v holds.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsInf reports whether v is one of the two infinity sentinels.
func (v Value) IsInf() bool { return v.kind == KindNegInf || v.kind == KindPosInf }

// AsBool returns the boolean payload. It is false for non-boolean values.
func (v Value) AsBool() bool { return v.kind == KindBool && v.b }

// AsInt returns the value coerced to int64 (truncating floats).
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	}
	return 0
}

// AsFloat returns the value coerced to float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindNegInf:
		return math.Inf(-1)
	case KindPosInf:
		return math.Inf(1)
	}
	return 0
}

// AsString returns the string payload, or a rendering for other kinds.
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// String renders the value for human consumption.
func (v Value) String() string {
	switch v.kind {
	case KindNegInf:
		return "-inf"
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindPosInf:
		return "+inf"
	}
	return "?"
}

// rank maps kinds onto the total order of D: -inf < null < bool < numeric <
// string < +inf. Int and float share a rank and compare numerically.
func (v Value) rank() int {
	switch v.kind {
	case KindNegInf:
		return 0
	case KindNull:
		return 1
	case KindBool:
		return 2
	case KindInt, KindFloat:
		return 3
	case KindString:
		return 4
	case KindPosInf:
		return 5
	}
	return 6
}

// Compare implements the total order over D. It returns -1, 0 or +1.
func Compare(a, b Value) int {
	ra, rb := a.rank(), b.rank()
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNegInf, KindNull, KindPosInf:
		return 0
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(a.s, b.s)
	default: // numeric
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
}

// Equal reports whether a and b are equal under the total order.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports a < b under the total order.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Min returns the smaller of a and b under the total order.
func Min(a, b Value) Value {
	if Compare(a, b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b under the total order.
func Max(a, b Value) Value {
	if Compare(a, b) >= 0 {
		return a
	}
	return b
}

// ErrType is returned by arithmetic on operands of unsuitable kinds.
type ErrType struct {
	Op   string
	A, B Value
}

func (e *ErrType) Error() string {
	return fmt.Sprintf("types: invalid operands for %s: %s (%s), %s (%s)",
		e.Op, e.A, e.A.kind, e.B, e.B.kind)
}

// ErrDivisionByZero is returned by Div when the divisor is zero.
type ErrDivisionByZero struct{}

func (ErrDivisionByZero) Error() string { return "types: division by zero" }

func numericPair(op string, a, b Value) error {
	okA := a.IsNumeric() || a.IsInf() || a.IsNull()
	okB := b.IsNumeric() || b.IsInf() || b.IsNull()
	if !okA || !okB {
		return &ErrType{Op: op, A: a, B: b}
	}
	return nil
}

// Add returns a + b. Null propagates; infinities absorb (inf + x = inf).
// Adding opposite infinities is an error.
func Add(a, b Value) (Value, error) {
	if err := numericPair("+", a, b); err != nil {
		return Null(), err
	}
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if a.IsInf() || b.IsInf() {
		return addInf(a, b)
	}
	if a.kind == KindInt && b.kind == KindInt {
		return Int(a.i + b.i), nil
	}
	return Float(a.AsFloat() + b.AsFloat()), nil
}

func addInf(a, b Value) (Value, error) {
	sa, sb := infSign(a), infSign(b)
	if sa != 0 && sb != 0 && sa != sb {
		return Null(), &ErrType{Op: "+inf", A: a, B: b}
	}
	if sa < 0 || sb < 0 {
		return NegInf(), nil
	}
	return PosInf(), nil
}

func infSign(v Value) int {
	switch v.kind {
	case KindNegInf:
		return -1
	case KindPosInf:
		return 1
	}
	return 0
}

// Sub returns a - b.
func Sub(a, b Value) (Value, error) {
	nb, err := Neg(b)
	if err != nil {
		return Null(), err
	}
	return Add(a, nb)
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		return Int(-a.i), nil
	case KindFloat:
		return Float(-a.f), nil
	case KindNegInf:
		return PosInf(), nil
	case KindPosInf:
		return NegInf(), nil
	}
	return Null(), &ErrType{Op: "neg", A: a, B: Null()}
}

// Mul returns a * b. Inf times zero yields zero (the convention needed for
// multiplicity-weighted aggregation, where a zero multiplicity annihilates).
func Mul(a, b Value) (Value, error) {
	if err := numericPair("*", a, b); err != nil {
		return Null(), err
	}
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if a.IsInf() || b.IsInf() {
		return mulInf(a, b)
	}
	if a.kind == KindInt && b.kind == KindInt {
		return Int(a.i * b.i), nil
	}
	return Float(a.AsFloat() * b.AsFloat()), nil
}

func mulInf(a, b Value) (Value, error) {
	signOf := func(v Value) int {
		if s := infSign(v); s != 0 {
			return s
		}
		f := v.AsFloat()
		switch {
		case f < 0:
			return -1
		case f > 0:
			return 1
		}
		return 0
	}
	sa, sb := signOf(a), signOf(b)
	if sa == 0 || sb == 0 {
		return Int(0), nil
	}
	if sa*sb > 0 {
		return PosInf(), nil
	}
	return NegInf(), nil
}

// Div returns a / b as a float. Division by zero is an error.
func Div(a, b Value) (Value, error) {
	if err := numericPair("/", a, b); err != nil {
		return Null(), err
	}
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if b.IsNumeric() && b.AsFloat() == 0 {
		return Null(), ErrDivisionByZero{}
	}
	if a.IsInf() && b.IsInf() {
		return Null(), &ErrType{Op: "inf/inf", A: a, B: b}
	}
	if b.IsInf() {
		return Float(0), nil
	}
	if a.IsInf() {
		if b.AsFloat() < 0 {
			return neg(a), nil
		}
		return a, nil
	}
	return Float(a.AsFloat() / b.AsFloat()), nil
}

func neg(a Value) Value {
	v, err := Neg(a)
	if err != nil {
		return Null()
	}
	return v
}

// AppendKey appends a collation-stable, injective encoding of v to dst.
// Keys are used for hash joins and grouping.
func (v Value) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = appendInt64(dst, v.i)
	case KindFloat:
		// Integral floats share their key with the equal int so that
		// Compare-equality and key-equality agree for mixed columns.
		if f := v.f; f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			dst[len(dst)-1] = byte(KindInt)
			dst = appendInt64(dst, int64(f))
		} else {
			dst = appendInt64(dst, int64(math.Float64bits(f)))
		}
	case KindString:
		dst = appendInt64(dst, int64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

func appendInt64(dst []byte, x int64) []byte {
	u := uint64(x)
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
