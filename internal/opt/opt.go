// Package opt is the rule-based logical optimizer for RA_agg plans. It
// rewrites the engine-agnostic ra.Node trees produced by internal/sql
// before any engine interprets them, and it is shared by all three
// engines (internal/core, internal/bag, internal/encoding) because every
// rewrite is exact under both evaluation semantics: deterministic bag
// evaluation and the bound-preserving AU-DB range semantics of the paper
// (Sections 7-9).
//
// # Soundness discipline
//
// Classical algebraic equivalences do not automatically carry over to
// annotated representations. Following the U-relations line of work
// (Antova et al., "Fast and Simple Relational Processing of Uncertain
// Data"), a rewrite is admitted here only if it preserves the annotation
// computation, not merely the possible-world semantics. Concretely, every
// rule in this package preserves the result relation exactly — same
// schema, and the same tuples with the same [lb/sg/ub] attribute ranges
// and (lb, sg, hi) multiplicities after the canonical merge — on every
// input database. Rules that are classically valid but unsound (or not
// result-exact) under AU-DB bound semantics are explicitly gated off at
// their application site:
//
//   - selections never push below Diff: the bound-preserving monus
//     (Section 8, Theorem 4) subtracts the right side's upper bounds from
//     possibly-equal left tuples, and multiplying annotations by a
//     selection triple does not distribute over that monus;
//   - selections never push below Distinct: the lower bound of δ
//     (Definition 21) depends on which stored tuples ≃-overlap each
//     other, and filtering first changes the overlap set;
//   - selections never push below Agg: possible-group bounding boxes
//     (Section 9.3) are computed from the unfiltered input, so filtering
//     group attributes before aggregation changes the boxes;
//   - selections never push below Limit, and column pruning never
//     narrows below Limit: the cutoff applies to the merged row sequence,
//     which early merging would reorder or shorten;
//   - rewrites that would evaluate a partial predicate (one containing
//     arithmetic, see expr.Total) over more tuples than the original
//     plan are gated on totality, so the optimizer can suppress runtime
//     errors (by evaluating less) but never introduce one.
//
// # Use
//
// Optimize rewrites a plan; OptimizeTrace additionally records which rule
// fired in which pass, for EXPLAIN surfaces. Input plans are never
// mutated: rewrites build new nodes and share unchanged subtrees, so
// cached plans (prepared statements) stay valid.
package opt

import (
	"fmt"
	"strings"
	"time"

	"github.com/audb/audb/internal/ra"
)

// maxPasses bounds the fixpoint loop. Every rule strictly reduces a
// measure (predicate height above its final operator, projection chain
// length, plan width), so real plans converge in 2-3 passes; the cap is a
// backstop against rule bugs, not a tuning knob.
const maxPasses = 12

// Step records one effective rule application.
type Step struct {
	// Rule is the rule name (see Rules).
	Rule string
	// Pass is the 1-based fixpoint pass the rule fired in.
	Pass int
	// Plan is the rendered plan after the rule applied.
	Plan string
	// Elapsed is the rule application's wall time. It is measured only
	// on the trace path (OptimizeTrace), where rendering already makes
	// the pass observation-grade; plain Optimize leaves it zero.
	Elapsed time.Duration
}

// Trace is the optimization record surfaced by EXPLAIN.
type Trace struct {
	// Input and Output are the rendered plans before and after.
	Input, Output string
	// Steps lists the effective rule applications in order.
	Steps []Step
	// Passes is the number of fixpoint passes run (including the final
	// pass that found nothing left to do).
	Passes int
}

// String renders the trace in the audbsh -explain format.
func (t *Trace) String() string {
	var sb strings.Builder
	sb.WriteString("plan:\n")
	writeIndented(&sb, t.Input)
	if len(t.Steps) == 0 {
		sb.WriteString("optimizer: no rules applied\n")
		return sb.String()
	}
	for _, s := range t.Steps {
		fmt.Fprintf(&sb, "rule %s (pass %d):\n", s.Rule, s.Pass)
		writeIndented(&sb, s.Plan)
	}
	sb.WriteString("optimized:\n")
	writeIndented(&sb, t.Output)
	return sb.String()
}

func writeIndented(sb *strings.Builder, plan string) {
	for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
		sb.WriteString("  ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
}

// rule is one rewrite: it returns the (possibly shared) rewritten plan.
// Rules report no change flag of their own; the driver compares plans
// structurally (ra.Equal), which is the ground truth.
type rule struct {
	name  string
	apply func(cat ra.Catalog, n ra.Node) (ra.Node, error)
}

// rules returns the rule pipeline in application order. Constant folding
// runs first so later rules see simplified predicates; pushdown before
// merging so conjuncts move independently; composition and pruning after
// pushdown so the projections they touch have settled; trivial-operator
// elimination last to sweep up what the others exposed.
func rules() []rule {
	return []rule{
		{"fold-constants", foldConstants},
		{"push-selections", pushSelections},
		{"merge-selections", mergeSelections},
		{"compose-projections", composeProjections},
		{"prune-columns", pruneColumns},
		{"eliminate-trivial", eliminateTrivial},
	}
}

// Rules lists the rule names in application order (for docs and tests).
func Rules() []string {
	rs := rules()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.name
	}
	return out
}

// checkNoNil rejects plans containing nil or typed-nil nodes before any
// rule dereferences one — the same defensive check every executor entry
// point performs.
func checkNoNil(n ra.Node) error {
	if ra.IsNil(n) {
		return fmt.Errorf("opt: nil plan node")
	}
	for _, c := range n.Children() {
		if err := checkNoNil(c); err != nil {
			return err
		}
	}
	return nil
}

// Optimize rewrites the plan to fixpoint and returns the optimized plan.
// The input is not mutated. Optimization requires a catalog because
// several rules need input arities and attribute names.
func Optimize(n ra.Node, cat ra.Catalog) (ra.Node, error) {
	out, _, err := optimize(n, cat, false, nil)
	return out, err
}

// OptimizeObserved is Optimize with a per-rule hit callback: onRule is
// invoked with the rule name for every effective application. The
// callback must be cheap (the session layer feeds it a counter); the
// plan-rendering trace machinery stays off.
func OptimizeObserved(n ra.Node, cat ra.Catalog, onRule func(string)) (ra.Node, error) {
	out, _, err := optimize(n, cat, false, onRule)
	return out, err
}

// OptimizeTrace is Optimize with a per-rule application trace.
func OptimizeTrace(n ra.Node, cat ra.Catalog) (ra.Node, *Trace, error) {
	return optimize(n, cat, true, nil)
}

func optimize(n ra.Node, cat ra.Catalog, withTrace bool, onRule func(string)) (ra.Node, *Trace, error) {
	if err := checkNoNil(n); err != nil {
		return nil, nil, err
	}
	inSchema, err := ra.InferSchema(n, cat)
	if err != nil {
		return nil, nil, fmt.Errorf("opt: input plan does not type-check: %w", err)
	}
	// Rendering is trace-only: the per-query Optimize path must not pay
	// for strings it throws away.
	var tr *Trace
	if withTrace {
		tr = &Trace{Input: ra.Render(n)}
	}
	cur := n
	for pass := 1; pass <= maxPasses; pass++ {
		if withTrace {
			tr.Passes = pass
		}
		changed := false
		for _, r := range rules() {
			var t0 time.Time
			if withTrace {
				t0 = time.Now()
			}
			next, err := r.apply(cat, cur)
			if err != nil {
				return nil, nil, fmt.Errorf("opt: rule %s: %w", r.name, err)
			}
			if ra.IsNil(next) {
				return nil, nil, fmt.Errorf("opt: rule %s returned a nil plan", r.name)
			}
			if !ra.Equal(next, cur) {
				cur = next
				changed = true
				if onRule != nil {
					onRule(r.name)
				}
				if withTrace {
					tr.Steps = append(tr.Steps, Step{Rule: r.name, Pass: pass, Plan: ra.Render(cur), Elapsed: time.Since(t0)})
				}
			}
		}
		if !changed {
			break
		}
	}
	// Invariant: optimization never changes the plan's output schema
	// (names included — the result relation prints them). A violation is
	// an optimizer bug; fail loudly rather than return a wrong plan.
	outSchema, err := ra.InferSchema(cur, cat)
	if err != nil {
		return nil, nil, fmt.Errorf("opt: optimized plan does not type-check: %w", err)
	}
	if len(inSchema.Attrs) != len(outSchema.Attrs) {
		return nil, nil, fmt.Errorf("opt: optimization changed the schema: %s vs %s", inSchema, outSchema)
	}
	for i := range inSchema.Attrs {
		if inSchema.Attrs[i] != outSchema.Attrs[i] {
			return nil, nil, fmt.Errorf("opt: optimization changed the schema: %s vs %s", inSchema, outSchema)
		}
	}
	if withTrace {
		tr.Output = ra.Render(cur)
	}
	return cur, tr, nil
}
