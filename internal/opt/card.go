package opt

// This file is the range-aware cardinality estimator behind the
// cost-based planning pass (join_order.go). Estimates propagate catalog
// statistics (internal/stats) bottom-up through every RA_agg operator.
// The one departure from a textbook System-R estimator is that range
// tuples make predicates fuzzier, not sharper: a tuple whose attribute
// carries bounds [lb, ub] possibly satisfies a predicate whenever the
// bounds overlap its window, so every selectivity below is WIDENED by the
// column's mean bound width (or, for non-numeric columns, by the
// uncertain fraction). Under-estimating an uncertain predicate would make
// the planner put the quadratic overlap-join quadrants on the wrong side;
// over-estimating only costs a slightly larger pre-allocation.
//
// Estimates never affect results — they drive join ordering, build-side
// selection and pre-sizing only — so all formulas are deliberately simple
// and documented in the README's "Cost-based planning" section.

import (
	"fmt"
	"math"
	"strings"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/stats"
	"github.com/audb/audb/internal/types"
)

const (
	// defaultRows is the scan estimate for tables without statistics.
	defaultRows = 1000
	// defaultNDVFrac estimates NDV as this fraction of rows when unknown.
	defaultNDVFrac = 0.1
	// defaultSel is the selectivity of a predicate the estimator cannot
	// analyze (the classical 1/3).
	defaultSel = 1.0 / 3
	// defaultEqSel is the fallback equality selectivity.
	defaultEqSel = 0.1
	// minSel keeps selectivities away from zero so chained predicates
	// never collapse an estimate entirely.
	minSel = 1e-4
)

// colCard is the estimator's per-column summary, propagated alongside row
// counts.
type colCard struct {
	// ndv estimates the distinct selected-guess values (>= 1 unless the
	// input is empty).
	ndv float64
	// lo/hi span the numeric selected-guess domain when numeric is set.
	lo, hi  float64
	numeric bool
	// width is the mean bound width ub-lb (0 for certain columns).
	width float64
	// certFrac is the fraction of rows whose value is certain.
	certFrac float64
}

// domain returns the numeric domain width (0 when unknown or degenerate).
func (c colCard) domain() float64 {
	if !c.numeric || c.hi <= c.lo {
		return 0
	}
	return c.hi - c.lo
}

// Card is one operator's cardinality estimate: output rows (stored
// AU-tuples) plus per-column summaries.
type Card struct {
	Rows float64
	cols []colCard
}

// defaultCol is the summary for a column nothing is known about.
func defaultCol(rows float64) colCard {
	ndv := rows * defaultNDVFrac
	if ndv < 1 {
		ndv = 1
	}
	return colCard{ndv: ndv, certFrac: 1}
}

// defaultCard is the estimate for an input without statistics.
func defaultCard(arity int) Card {
	c := Card{Rows: defaultRows, cols: make([]colCard, arity)}
	for i := range c.cols {
		c.cols[i] = defaultCol(c.Rows)
	}
	return c
}

// fromStats converts collected table statistics into an estimator card.
func fromStats(ts *stats.TableStats) Card {
	c := Card{Rows: float64(ts.Rows), cols: make([]colCard, len(ts.Cols))}
	for i, cs := range ts.Cols {
		cc := colCard{
			ndv:      float64(cs.NDV),
			width:    cs.MeanWidth,
			certFrac: cs.CertainFrac,
		}
		if cc.ndv < 1 {
			cc.ndv = 1
		}
		if cs.Numeric && cs.MinSG.IsNumeric() && cs.MaxSG.IsNumeric() {
			cc.numeric = true
			cc.lo = cs.MinSG.AsFloat()
			cc.hi = cs.MaxSG.AsFloat()
		}
		c.cols[i] = cc
	}
	return c
}

// estimator computes and memoizes per-node cardinalities. The memo map
// doubles as the Annotations table handed to the physical layer.
type estimator struct {
	cat  ra.Catalog
	prov stats.Provider
	memo map[ra.Node]Card
}

func newEstimator(cat ra.Catalog, prov stats.Provider) *estimator {
	return &estimator{cat: cat, prov: prov, memo: map[ra.Node]Card{}}
}

// card estimates n's output cardinality (memoized by node identity).
func (e *estimator) card(n ra.Node) (Card, error) {
	if c, ok := e.memo[n]; ok {
		return c, nil
	}
	c, err := e.cardUncached(n)
	if err != nil {
		return Card{}, err
	}
	e.memo[n] = c
	return c, nil
}

func (e *estimator) cardUncached(n ra.Node) (Card, error) {
	switch t := n.(type) {
	case *ra.Scan:
		if e.prov != nil {
			if ts, ok := e.prov.TableStats(t.Table); ok {
				return fromStats(ts), nil
			}
		}
		sch, err := e.cat.TableSchema(t.Table)
		if err != nil {
			return Card{}, err
		}
		return defaultCard(sch.Arity()), nil

	case *ra.Select:
		in, err := e.card(t.Child)
		if err != nil {
			return Card{}, err
		}
		return applyPred(in, t.Pred), nil

	case *ra.Project:
		in, err := e.card(t.Child)
		if err != nil {
			return Card{}, err
		}
		out := Card{Rows: in.Rows, cols: make([]colCard, len(t.Cols))}
		for i, pc := range t.Cols {
			out.cols[i] = projectCol(in, pc.E)
		}
		return out, nil

	case *ra.Join:
		l, err := e.card(t.Left)
		if err != nil {
			return Card{}, err
		}
		r, err := e.card(t.Right)
		if err != nil {
			return Card{}, err
		}
		return joinCard(l, r, t.Cond), nil

	case *ra.Union:
		l, err := e.card(t.Left)
		if err != nil {
			return Card{}, err
		}
		r, err := e.card(t.Right)
		if err != nil {
			return Card{}, err
		}
		out := Card{Rows: l.Rows + r.Rows, cols: make([]colCard, len(l.cols))}
		for i := range out.cols {
			lc := l.cols[i]
			var rc colCard
			if i < len(r.cols) {
				rc = r.cols[i]
			}
			cc := colCard{ndv: lc.ndv + rc.ndv, numeric: lc.numeric && rc.numeric}
			if cc.numeric {
				cc.lo = math.Min(lc.lo, rc.lo)
				cc.hi = math.Max(lc.hi, rc.hi)
			}
			if out.Rows > 0 {
				cc.width = (lc.width*l.Rows + rc.width*r.Rows) / out.Rows
				cc.certFrac = (lc.certFrac*l.Rows + rc.certFrac*r.Rows) / out.Rows
			} else {
				cc.certFrac = 1
			}
			out.cols[i] = clampCol(cc, out.Rows)
		}
		return out, nil

	case *ra.Diff:
		// The bound-preserving monus can only remove left tuples.
		l, err := e.card(t.Left)
		if err != nil {
			return Card{}, err
		}
		if _, err := e.card(t.Right); err != nil {
			return Card{}, err
		}
		return l, nil

	case *ra.Distinct:
		in, err := e.card(t.Child)
		if err != nil {
			return Card{}, err
		}
		rows := groupCount(in, allCols(len(in.cols)))
		return scaleRows(in, rows), nil

	case *ra.Agg:
		in, err := e.card(t.Child)
		if err != nil {
			return Card{}, err
		}
		rows := groupCount(in, t.GroupBy)
		out := Card{Rows: rows, cols: make([]colCard, 0, len(t.GroupBy)+len(t.Aggs))}
		for _, g := range t.GroupBy {
			out.cols = append(out.cols, clampCol(in.cols[g], rows))
		}
		for range t.Aggs {
			c := defaultCol(rows)
			c.ndv = rows
			if c.ndv < 1 {
				c.ndv = 1
			}
			out.cols = append(out.cols, c)
		}
		return out, nil

	case *ra.OrderBy:
		return e.card(t.Child)

	case *ra.Limit:
		in, err := e.card(t.Child)
		if err != nil {
			return Card{}, err
		}
		rows := in.Rows
		if float64(t.N) < rows {
			rows = float64(t.N)
		}
		if rows < 0 {
			rows = 0
		}
		return scaleRows(in, rows), nil
	}
	return Card{}, fmt.Errorf("opt: cannot estimate node %T", n)
}

// groupCount estimates the number of distinct groups over the listed
// columns: the NDV product capped by the input rows, at least one (an
// empty group-by aggregates the whole input into one tuple; possible-group
// bounding boxes add at most a constant over the SG group count).
func groupCount(in Card, cols []int) float64 {
	groups := 1.0
	for _, c := range cols {
		if c >= 0 && c < len(in.cols) {
			groups *= math.Max(in.cols[c].ndv, 1)
		}
		if groups > in.Rows {
			break
		}
	}
	if groups > in.Rows {
		groups = in.Rows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// scaleRows rescales a card to a new row count, clamping column NDVs.
func scaleRows(in Card, rows float64) Card {
	out := Card{Rows: rows, cols: make([]colCard, len(in.cols))}
	for i, c := range in.cols {
		out.cols[i] = clampCol(c, rows)
	}
	return out
}

// clampCol keeps a column's NDV within the relation's row count.
func clampCol(c colCard, rows float64) colCard {
	if rows >= 1 && c.ndv > rows {
		c.ndv = rows
	}
	if c.ndv < 1 {
		c.ndv = 1
	}
	return c
}

// projectCol derives the output column summary of one projection
// expression: attribute references pass their input summary through,
// constants are single-valued and certain, and computed expressions fall
// back to a conservative summary whose certain fraction is the product of
// the referenced columns' (an expression over an uncertain input is
// uncertain).
func projectCol(in Card, ex expr.Expr) colCard {
	switch x := ex.(type) {
	case expr.Attr:
		if x.Idx >= 0 && x.Idx < len(in.cols) {
			return in.cols[x.Idx]
		}
	case expr.Const:
		return colCard{ndv: 1, certFrac: 1}
	}
	c := defaultCol(in.Rows)
	c.ndv = math.Max(1, in.Rows)
	for _, idx := range expr.Attrs(ex) {
		if idx >= 0 && idx < len(in.cols) {
			c.certFrac *= in.cols[idx].certFrac
		}
	}
	return clampCol(c, math.Max(in.Rows, 1))
}

// applyPred estimates a selection: the product of the conjuncts'
// selectivities, each widened for attribute uncertainty.
func applyPred(in Card, pred expr.Expr) Card {
	sel := 1.0
	eqCols := map[int]bool{}
	for _, c := range expr.Conjuncts(pred) {
		s := condSel(c, in)
		sel *= s
		if col, _, op, ok := attrConst(c, in); ok && op == expr.OpEq {
			eqCols[col] = true
		}
	}
	sel = clampSel(sel)
	out := Card{Rows: in.Rows * sel, cols: make([]colCard, len(in.cols))}
	for i, c := range in.cols {
		if eqCols[i] {
			c.ndv = 1
		}
		out.cols[i] = clampCol(c, math.Max(out.Rows, 1))
	}
	return out
}

// condSel estimates one boolean condition's selectivity over in.
func condSel(c expr.Expr, in Card) float64 {
	switch x := c.(type) {
	case expr.Logic:
		l, r := condSel(x.L, in), condSel(x.R, in)
		if x.Op == expr.OpAnd {
			return clampSel(l * r)
		}
		return clampSel(l + r - l*r)
	case expr.Not:
		return clampSel(1 - condSel(x.E, in))
	case expr.Const:
		if expr.IsConstTrue(c) {
			return 1
		}
		return minSel
	case expr.IsNull:
		return defaultEqSel
	case expr.Cmp:
		return cmpSel(x, in)
	}
	return defaultSel
}

// cmpSel estimates a comparison's selectivity, widened by bound width.
func cmpSel(c expr.Cmp, in Card) float64 {
	// attribute vs attribute (within one input): an equality keeps about
	// one partner per distinct value; other comparisons get the default.
	la, lok := c.L.(expr.Attr)
	ra_, rok := c.R.(expr.Attr)
	if lok && rok {
		if c.Op != expr.OpEq {
			return defaultSel
		}
		s := defaultEqSel
		if la.Idx < len(in.cols) && ra_.Idx < len(in.cols) {
			s = 1 / math.Max(math.Max(in.cols[la.Idx].ndv, in.cols[ra_.Idx].ndv), 1)
		}
		return clampSel(s)
	}
	col, v, op, ok := attrConst(c, in)
	if !ok {
		if c.Op == expr.OpEq {
			return defaultEqSel
		}
		return defaultSel
	}
	cc := in.cols[col]
	w := cc.domain()
	switch op {
	case expr.OpEq:
		s := 1 / math.Max(cc.ndv, 1)
		if w > 0 {
			// A range tuple possibly equals v whenever its bounds cover
			// it: widen by the mean window the bounds add.
			s += cc.width / w
		} else {
			s += (1 - cc.certFrac) * defaultEqSel
		}
		return clampSel(s)
	case expr.OpNeq:
		return clampSel(1 - 1/math.Max(cc.ndv, 1))
	case expr.OpLt, expr.OpLeq:
		if !cc.numeric || w <= 0 || !v.IsNumeric() {
			return defaultSel
		}
		// Fraction of the domain below v, widened by the mean bound
		// width: a tuple possibly passes when its lower bound does.
		return clampSel((v.AsFloat() - cc.lo + cc.width) / w)
	case expr.OpGt, expr.OpGeq:
		if !cc.numeric || w <= 0 || !v.IsNumeric() {
			return defaultSel
		}
		return clampSel((cc.hi - v.AsFloat() + cc.width) / w)
	}
	return defaultSel
}

// attrConst normalizes a comparison of one attribute against a constant,
// flipping the operator when the constant is on the left. ok is false for
// any other shape (or an out-of-range attribute).
func attrConst(c expr.Expr, in Card) (col int, v types.Value, op expr.CmpOp, ok bool) {
	cmp, isCmp := c.(expr.Cmp)
	if !isCmp {
		return 0, types.Null(), 0, false
	}
	if a, aok := cmp.L.(expr.Attr); aok {
		if k, kok := cmp.R.(expr.Const); kok && a.Idx >= 0 && a.Idx < len(in.cols) {
			return a.Idx, k.V, cmp.Op, true
		}
	}
	if k, kok := cmp.L.(expr.Const); kok {
		if a, aok := cmp.R.(expr.Attr); aok && a.Idx >= 0 && a.Idx < len(in.cols) {
			return a.Idx, k.V, flipCmp(cmp.Op), true
		}
	}
	return 0, types.Null(), 0, false
}

// flipCmp mirrors an operator across its operands (5 < a ⇔ a > 5).
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLeq:
		return expr.OpGeq
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGeq:
		return expr.OpLeq
	}
	return op
}

func clampSel(s float64) float64 {
	if s < minSel {
		return minSel
	}
	if s > 1 {
		return 1
	}
	return s
}

// equiSel estimates the selectivity of one equi-join conjunct between two
// column summaries: the classical 1/max(ndv) for the certain part, widened
// by the mean bound widths (numeric) or the uncertain pair fraction
// (non-numeric) — interval-overlap joins match everything the windows
// touch.
func equiSel(a, b colCard) float64 {
	s := 1 / math.Max(math.Max(a.ndv, b.ndv), 1)
	if a.numeric && b.numeric {
		lo := math.Min(a.lo, b.lo)
		hi := math.Max(a.hi, b.hi)
		if w := hi - lo; w > 0 {
			s += (a.width + b.width) / w
		}
	} else {
		s += (1 - a.certFrac*b.certFrac) * defaultEqSel
	}
	return clampSel(s)
}

// joinCard estimates a join's output: the cross product scaled by every
// conjunct's selectivity (equi conjuncts use the per-column summaries).
func joinCard(l, r Card, cond expr.Expr) Card {
	rows := l.Rows * r.Rows
	cols := make([]colCard, 0, len(l.cols)+len(r.cols))
	cols = append(cols, l.cols...)
	cols = append(cols, r.cols...)
	out := Card{Rows: rows, cols: cols}
	if cond != nil {
		for _, c := range expr.Conjuncts(cond) {
			if li, ri, ok := expr.EquiPair(c, len(l.cols)); ok &&
				li < len(l.cols) && ri < len(r.cols) {
				out.Rows *= equiSel(l.cols[li], r.cols[ri])
				continue
			}
			out.Rows *= condSel(c, out)
		}
	}
	for i, c := range out.cols {
		out.cols[i] = clampCol(c, math.Max(out.Rows, 1))
	}
	return out
}

// joinCost scores one join step for the greedy ordering. It models the
// hybrid overlap join of internal/core: certain join keys meet through a
// hash table (linear build + probe), while every pair involving an
// uncertain key goes through the quadratic nested-loop quadrants — which
// is why the certain fractions, not just the row counts, decide the
// order. The estimated output size is included so cheap-but-exploding
// joins rank behind selective ones. split is the left card's arity.
func joinCost(l, r Card, cond expr.Expr, split int) (float64, Card) {
	out := joinCard(l, r, cond)
	cfL, cfR := 1.0, 1.0
	hasEqui := false
	if cond != nil {
		for _, c := range expr.Conjuncts(cond) {
			if li, ri, ok := expr.EquiPair(c, split); ok &&
				li < len(l.cols) && ri < len(r.cols) {
				hasEqui = true
				cfL *= l.cols[li].certFrac
				cfR *= r.cols[ri].certFrac
			}
		}
	}
	if !hasEqui {
		// Pure cross (or non-equi) joins are nested loops over all pairs.
		return out.Rows + l.Rows*r.Rows, out
	}
	hash := cfL*l.Rows + cfR*r.Rows
	nested := (1-cfL)*l.Rows*r.Rows + cfL*(1-cfR)*l.Rows*r.Rows
	return out.Rows + hash + nested, out
}

// ------------------------------------------------------- annotations --

// Annotations is the side table of per-operator estimates the cost-based
// pass computes and the physical layer (internal/phys) consumes: row
// estimates for EXPLAIN and pre-sizing, and the per-join build side.
// Annotations are keyed by plan-node identity, so they are only valid for
// the exact plan CostOptimize returned. Read-only after construction and
// safe for concurrent use.
type Annotations struct {
	est   map[ra.Node]Card
	build map[*ra.Join]bool
}

// Rows returns the estimated output rows (stored tuples) for a node of
// the annotated plan.
func (a *Annotations) Rows(n ra.Node) (float64, bool) {
	if a == nil {
		return 0, false
	}
	c, ok := a.est[n]
	return c.Rows, ok
}

// EstRows is Rows rounded to an integer row count. Estimates beyond the
// int64 range (chained cross-join estimates can overflow any integer)
// saturate at MaxInt64 — an out-of-range float-to-int conversion is
// implementation-defined in Go.
func (a *Annotations) EstRows(n ra.Node) (int64, bool) {
	r, ok := a.Rows(n)
	if !ok {
		return 0, false
	}
	r = math.Round(r)
	if r >= math.MaxInt64 {
		return math.MaxInt64, true
	}
	if r < 0 {
		return 0, true
	}
	return int64(r), true
}

// BuildLeft reports whether the hybrid join should build its hash index
// over the left input (estimated smaller than the right).
func (a *Annotations) BuildLeft(j *ra.Join) bool {
	if a == nil {
		return false
	}
	return a.build[j]
}

// Render pretty-prints a plan like ra.Render with each operator's
// estimated row count appended — the EXPLAIN surface of the cost model.
func (a *Annotations) Render(n ra.Node) string {
	var sb strings.Builder
	var walk func(ra.Node, int)
	walk = func(n ra.Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		if rows, ok := a.EstRows(n); ok {
			fmt.Fprintf(&sb, "  (est %d rows)", rows)
		}
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// annotate estimates every node of the plan and decides join build
// sides. Joins below a Limit never get a build-side flip: flipping
// changes the probe order and therefore the arrival order of the join's
// output, which Limit's first-N-merged-rows truncation observes (the
// same gate reorder applies).
func (e *estimator) annotate(n ra.Node) (*Annotations, error) {
	ann := &Annotations{est: e.memo, build: map[*ra.Join]bool{}}
	var walk func(ra.Node, bool) error
	walk = func(n ra.Node, frozen bool) error {
		if _, err := e.card(n); err != nil {
			return err
		}
		if _, ok := n.(*ra.Limit); ok {
			frozen = true
		}
		if j, ok := n.(*ra.Join); ok && !frozen {
			l, err := e.card(j.Left)
			if err != nil {
				return err
			}
			r, err := e.card(j.Right)
			if err != nil {
				return err
			}
			ann.build[j] = l.Rows < r.Rows
		}
		for _, c := range n.Children() {
			if err := walk(c, frozen); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n, false); err != nil {
		return nil, err
	}
	return ann, nil
}
