package opt

import (
	"strings"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
)

// testCat is the two-table catalog the shape tests compile against.
func testCat() ra.CatalogMap {
	return ra.CatalogMap{
		"r": schema.New("a", "b"),
		"s": schema.New("c", "d"),
	}
}

func mustCompile(t *testing.T, q string) ra.Node {
	t.Helper()
	plan, err := sql.Compile(q, testCat())
	if err != nil {
		t.Fatalf("compile %s: %v", q, err)
	}
	return plan
}

func mustOptimize(t *testing.T, n ra.Node) ra.Node {
	t.Helper()
	out, err := Optimize(n, testCat())
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if err := ra.Validate(out, testCat()); err != nil {
		t.Fatalf("optimized plan does not validate: %v\n%s", err, ra.Render(out))
	}
	return out
}

// nodes collects every node of the plan in preorder.
func nodes(n ra.Node) []ra.Node {
	out := []ra.Node{n}
	for _, c := range n.Children() {
		out = append(out, nodes(c)...)
	}
	return out
}

func countType[T ra.Node](n ra.Node) int {
	c := 0
	for _, m := range nodes(n) {
		if _, ok := m.(T); ok {
			c++
		}
	}
	return c
}

// TestPushdownBelowJoin: a one-sided WHERE conjunct must end up below the
// join, on its own side, and disappear from above it.
func TestPushdownBelowJoin(t *testing.T) {
	plan := mustCompile(t, `SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 2`)
	out := mustOptimize(t, plan)
	for _, m := range nodes(out) {
		if sel, ok := m.(*ra.Select); ok {
			if _, isJoin := sel.Child.(*ra.Join); isJoin {
				t.Fatalf("selection still above the join:\n%s", ra.Render(out))
			}
		}
	}
	// The selection survives somewhere below the join's left input.
	if countType[*ra.Select](out) != 1 {
		t.Fatalf("want exactly one pushed selection:\n%s", ra.Render(out))
	}
}

// TestWhereBecomesJoinCondition: `FROM r, s WHERE r.a = s.c` compiles to
// a selection above a cross product; the optimizer must fold the
// equality into the join condition so the hybrid executor can hash it.
func TestWhereBecomesJoinCondition(t *testing.T) {
	plan := mustCompile(t, `SELECT r.b, s.d FROM r, s WHERE r.a = s.c`)
	out := mustOptimize(t, plan)
	joins := 0
	for _, m := range nodes(out) {
		if j, ok := m.(*ra.Join); ok {
			joins++
			if j.Cond == nil {
				t.Fatalf("join condition not installed:\n%s", ra.Render(out))
			}
		}
	}
	if joins != 1 {
		t.Fatalf("want one join, got %d", joins)
	}
	if countType[*ra.Select](out) != 0 {
		t.Fatalf("cross-product selection should be gone:\n%s", ra.Render(out))
	}
}

// TestPushdownThroughUnion: a selection over a UNION distributes into
// both branches.
func TestPushdownThroughUnion(t *testing.T) {
	u := &ra.Union{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "r"}}
	plan := &ra.Select{Child: u, Pred: expr.Lt(expr.Col(0, "a"), expr.CInt(3))}
	out := mustOptimize(t, plan)
	un, ok := out.(*ra.Union)
	if !ok {
		t.Fatalf("want a union root:\n%s", ra.Render(out))
	}
	if _, ok := un.Left.(*ra.Select); !ok {
		t.Fatalf("left branch not filtered:\n%s", ra.Render(out))
	}
	if _, ok := un.Right.(*ra.Select); !ok {
		t.Fatalf("right branch not filtered:\n%s", ra.Render(out))
	}
}

// TestPushdownGatedAtDiff: selections must NOT push below a bag
// difference — the bound-preserving monus does not distribute.
func TestPushdownGatedAtDiff(t *testing.T) {
	d := &ra.Diff{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "r"}}
	plan := &ra.Select{Child: d, Pred: expr.Lt(expr.Col(0, "a"), expr.CInt(3))}
	out := mustOptimize(t, plan)
	sel, ok := out.(*ra.Select)
	if !ok {
		t.Fatalf("selection must stay above Diff:\n%s", ra.Render(out))
	}
	if _, ok := sel.Child.(*ra.Diff); !ok {
		t.Fatalf("selection must stay directly above Diff:\n%s", ra.Render(out))
	}
}

// TestPushdownGatedAtDistinctAndAgg: δ and aggregation are pushdown
// barriers too.
func TestPushdownGatedAtDistinctAndAgg(t *testing.T) {
	for _, q := range []string{
		// HAVING survives as a selection above the aggregation.
		`SELECT b, sum(a) AS s FROM r GROUP BY b HAVING sum(a) > 1`,
	} {
		out := mustOptimize(t, mustCompile(t, q))
		found := false
		for _, m := range nodes(out) {
			if sel, ok := m.(*ra.Select); ok {
				if _, isAgg := sel.Child.(*ra.Agg); isAgg {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("%s: HAVING selection must stay above Agg:\n%s", q, ra.Render(out))
		}
	}
	d := &ra.Distinct{Child: &ra.Scan{Table: "r"}}
	plan := &ra.Select{Child: d, Pred: expr.Lt(expr.Col(0, "a"), expr.CInt(3))}
	out := mustOptimize(t, plan)
	if _, ok := out.(*ra.Select); !ok {
		t.Fatalf("selection must stay above Distinct:\n%s", ra.Render(out))
	}
}

// TestPartialPredicateStaysAboveJoin: a predicate containing arithmetic
// (division can fail) must not be pushed below the join, where it would
// be evaluated on tuples that never join.
func TestPartialPredicateStaysAboveJoin(t *testing.T) {
	join := &ra.Join{
		Left:  &ra.Scan{Table: "r"},
		Right: &ra.Scan{Table: "s"},
		Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
	}
	pred := expr.Lt(expr.Div(expr.CInt(10), expr.Col(1, "b")), expr.CInt(3))
	plan := &ra.Select{Child: join, Pred: pred}
	out := mustOptimize(t, plan)
	sel, ok := out.(*ra.Select)
	if !ok || !expr.Equal(sel.Pred, pred) {
		t.Fatalf("partial predicate must stay above the join:\n%s", ra.Render(out))
	}
}

// TestConstantFoldingAndTrivialElimination: WHERE TRUE AND 1+1 = 2
// disappears entirely.
func TestConstantFoldingAndTrivialElimination(t *testing.T) {
	plan := mustCompile(t, `SELECT a FROM r WHERE TRUE AND 1 + 1 = 2`)
	out := mustOptimize(t, plan)
	if countType[*ra.Select](out) != 0 {
		t.Fatalf("trivially-true selection should be eliminated:\n%s", ra.Render(out))
	}
}

// TestConstantFoldingKeepsErrors: a constant subexpression that fails to
// evaluate (division by zero) must be left in the plan so the runtime
// error surfaces exactly as before.
func TestConstantFoldingKeepsErrors(t *testing.T) {
	pred := expr.Eq(expr.Div(expr.CInt(1), expr.CInt(0)), expr.CInt(1))
	plan := &ra.Select{Child: &ra.Scan{Table: "r"}, Pred: pred}
	out := mustOptimize(t, plan)
	sel, ok := out.(*ra.Select)
	if !ok || !expr.Equal(sel.Pred, pred) {
		t.Fatalf("failing constant must not fold away:\n%s", ra.Render(out))
	}
}

// TestMergeSelections: stacked selections fuse into one conjunction with
// the inner predicate first.
func TestMergeSelections(t *testing.T) {
	inner := expr.Lt(expr.Col(0, "a"), expr.CInt(5))
	outer := expr.Gt(expr.Col(1, "b"), expr.CInt(1))
	plan := &ra.Select{
		Child: &ra.Select{Child: &ra.Scan{Table: "r"}, Pred: inner},
		Pred:  outer,
	}
	out := mustOptimize(t, plan)
	sel, ok := out.(*ra.Select)
	if !ok {
		t.Fatalf("want a single selection:\n%s", ra.Render(out))
	}
	if _, ok := sel.Child.(*ra.Scan); !ok {
		t.Fatalf("selections not merged:\n%s", ra.Render(out))
	}
	if !expr.Equal(sel.Pred, expr.And(inner, outer)) {
		t.Fatalf("merged predicate order wrong: %s", sel.Pred)
	}
}

// TestProjectionPruningNarrowsJoinInputs: a narrow projection over a wide
// join must push the narrowing below the join — for range tuples every
// dropped column is three values per intermediate tuple.
func TestProjectionPruningNarrowsJoinInputs(t *testing.T) {
	cat := ra.CatalogMap{
		"w1": schema.New("a", "b", "c", "d", "e"),
		"w2": schema.New("f", "g", "h", "i", "j"),
	}
	join := &ra.Join{
		Left:  &ra.Scan{Table: "w1"},
		Right: &ra.Scan{Table: "w2"},
		Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(5, "f")),
	}
	plan := &ra.Project{Child: join, Cols: []ra.ProjCol{
		{E: expr.Col(1, "b"), Name: "b"},
		{E: expr.Col(6, "g"), Name: "g"},
	}}
	out, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Validate(out, cat); err != nil {
		t.Fatalf("optimized plan does not validate: %v\n%s", err, ra.Render(out))
	}
	j := findJoin(out)
	if j == nil {
		t.Fatalf("join missing:\n%s", ra.Render(out))
	}
	for side, c := range map[string]ra.Node{"left": j.Left, "right": j.Right} {
		p, ok := c.(*ra.Project)
		if !ok {
			t.Fatalf("%s join input not narrowed:\n%s", side, ra.Render(out))
		}
		if len(p.Cols) != 2 { // join column + projected column
			t.Fatalf("%s input keeps %d columns, want 2:\n%s", side, len(p.Cols), ra.Render(out))
		}
	}
}

func findJoin(n ra.Node) *ra.Join {
	for _, m := range nodes(n) {
		if j, ok := m.(*ra.Join); ok {
			return j
		}
	}
	return nil
}

// TestComposeProjections: stacked projections (e.g. the planner's alias
// qualification) collapse into one.
func TestComposeProjections(t *testing.T) {
	inner := &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{
		{E: expr.Col(0, "a"), Name: "r.a"},
		{E: expr.Col(1, "b"), Name: "r.b"},
	}}
	outer := &ra.Project{Child: inner, Cols: []ra.ProjCol{
		{E: expr.Add(expr.Col(0, "r.a"), expr.Col(1, "r.b")), Name: "ab"},
	}}
	out := mustOptimize(t, outer)
	if countType[*ra.Project](out) != 1 {
		t.Fatalf("projections not composed:\n%s", ra.Render(out))
	}
}

// TestComposeSkipsDuplicatingComputedColumns: fusing would evaluate the
// inner computed column twice; the chain must be kept.
func TestComposeSkipsDuplicatingComputedColumns(t *testing.T) {
	inner := &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{
		{E: expr.Add(expr.Col(0, "a"), expr.Col(1, "b")), Name: "ab"},
	}}
	outer := &ra.Project{Child: inner, Cols: []ra.ProjCol{
		{E: expr.Mul(expr.Col(0, "ab"), expr.Col(0, "ab")), Name: "sq"},
	}}
	out := mustOptimize(t, outer)
	if countType[*ra.Project](out) != 2 {
		t.Fatalf("computed column should not be duplicated:\n%s", ra.Render(out))
	}
}

// TestPushdownSkipsDuplicatingComputedColumns: substituting a predicate
// that references a computed projection column twice would evaluate the
// column's expression twice per tuple; the push must be refused.
func TestPushdownSkipsDuplicatingComputedColumns(t *testing.T) {
	proj := &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{
		{E: expr.Add(expr.Col(0, "a"), expr.Col(1, "b")), Name: "x"},
	}}
	pred := expr.Eq(expr.Col(0, "x"), expr.Col(0, "x"))
	plan := &ra.Select{Child: proj, Pred: pred}
	out := mustOptimize(t, plan)
	sel, ok := out.(*ra.Select)
	if !ok || !expr.Equal(sel.Pred, pred) {
		t.Fatalf("double-referencing predicate must stay above the projection:\n%s", ra.Render(out))
	}
	// A leaf-only projection still accepts the same shape of predicate.
	leafProj := &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{
		{E: expr.Col(1, "b"), Name: "x"},
	}}
	out = mustOptimize(t, &ra.Select{Child: leafProj, Pred: pred})
	if _, ok := out.(*ra.Select); ok {
		t.Fatalf("leaf rename must not block the push:\n%s", ra.Render(out))
	}
}

// TestIdentityProjectionElimination: a projection that renames nothing
// and keeps every column in place is dropped.
func TestIdentityProjectionElimination(t *testing.T) {
	plan := &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{
		{E: expr.Col(0, "x"), Name: "a"},
		{E: expr.Col(1, "y"), Name: "b"},
	}}
	out := mustOptimize(t, plan)
	if _, ok := out.(*ra.Scan); !ok {
		t.Fatalf("identity projection should be eliminated:\n%s", ra.Render(out))
	}

	// A renaming projection must survive: the result prints its schema.
	renaming := &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{
		{E: expr.Col(0, "a"), Name: "x"},
		{E: expr.Col(1, "b"), Name: "y"},
	}}
	out = mustOptimize(t, renaming)
	if _, ok := out.(*ra.Project); !ok {
		t.Fatalf("renaming projection must be kept:\n%s", ra.Render(out))
	}
}

// TestTraceRecordsRules: OptimizeTrace reports the rules that fired, and
// the trace renders both plans.
func TestTraceRecordsRules(t *testing.T) {
	plan := mustCompile(t, `SELECT r.a FROM r, s WHERE r.a = s.c AND r.b < 2`)
	out, tr, err := OptimizeTrace(plan, testCat())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) == 0 {
		t.Fatal("expected rule applications")
	}
	seen := map[string]bool{}
	for _, s := range tr.Steps {
		seen[s.Rule] = true
		if s.Pass < 1 || s.Plan == "" {
			t.Fatalf("malformed step %+v", s)
		}
	}
	if !seen["push-selections"] {
		t.Fatalf("push-selections should have fired, saw %v", seen)
	}
	if tr.Output != ra.Render(out) {
		t.Fatal("trace output does not match the optimized plan")
	}
	text := tr.String()
	for _, want := range []string{"plan:", "optimized:", "rule push-selections"} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace rendering missing %q:\n%s", want, text)
		}
	}
}

// TestOptimizeDoesNotMutateInput: the input plan must be structurally
// unchanged after optimization (prepared statements keep the raw plan).
func TestOptimizeDoesNotMutateInput(t *testing.T) {
	q := `SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 2 AND s.d > 0`
	plan := mustCompile(t, q)
	before := ra.Render(plan)
	if _, err := Optimize(plan, testCat()); err != nil {
		t.Fatal(err)
	}
	if ra.Render(plan) != before {
		t.Fatal("Optimize mutated its input plan")
	}
}

// TestOptimizeIdempotent: optimizing an optimized plan changes nothing.
func TestOptimizeIdempotent(t *testing.T) {
	for _, q := range []string{
		`SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 2`,
		`SELECT r.b, s.d FROM r, s WHERE r.a = s.c`,
		`SELECT b, sum(a) AS s FROM r WHERE a <= 3 GROUP BY b HAVING sum(a) > 1`,
		`SELECT a FROM r WHERE a < 2 UNION SELECT c FROM s WHERE d > 1`,
	} {
		once := mustOptimize(t, mustCompile(t, q))
		twice := mustOptimize(t, once)
		if !ra.Equal(once, twice) {
			t.Fatalf("%s: not idempotent:\n%s\nvs\n%s", q, ra.Render(once), ra.Render(twice))
		}
	}
}

// TestNilPlanErrors: nil and typed-nil nodes error cleanly.
func TestNilPlanErrors(t *testing.T) {
	if _, err := Optimize(nil, testCat()); err == nil {
		t.Fatal("nil plan should error")
	}
	var typed *ra.Scan
	if _, err := Optimize(typed, testCat()); err == nil {
		t.Fatal("typed-nil plan should error")
	}
	nested := &ra.Distinct{Child: (*ra.Scan)(nil)}
	if _, err := Optimize(nested, testCat()); err == nil {
		t.Fatal("nested typed-nil should error, not panic")
	}
}

// TestRulesList: the published rule list matches the pipeline.
func TestRulesList(t *testing.T) {
	want := []string{
		"fold-constants", "push-selections", "merge-selections",
		"compose-projections", "prune-columns", "eliminate-trivial",
	}
	got := Rules()
	if len(got) != len(want) {
		t.Fatalf("Rules() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rules() = %v, want %v", got, want)
		}
	}
}
