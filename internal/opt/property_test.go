package opt

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/encoding"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
	"github.com/audb/audb/internal/stats"
	"github.com/audb/audb/internal/types"
)

// randomAUDB builds a random two-table AU-database exercising certain
// values, proper ranges, optional tuples and duplicate multiplicities.
func randomAUDB(rng *rand.Rand, rows int) core.DB {
	mk := func(cols ...string) *core.Relation {
		rel := core.New(schema.New(cols...))
		for i := 0; i < rows; i++ {
			vals := make(rangeval.Tuple, len(cols))
			for c := range cols {
				sg := int64(rng.Intn(6))
				switch rng.Intn(3) {
				case 0:
					vals[c] = rangeval.Certain(types.Int(sg))
				case 1:
					vals[c] = rangeval.New(types.Int(sg-int64(rng.Intn(2))), types.Int(sg), types.Int(sg+int64(rng.Intn(3))))
				default:
					vals[c] = rangeval.New(types.Int(0), types.Int(sg), types.Int(5))
				}
			}
			m := core.Mult{Lo: 1, SG: 1, Hi: 1}
			if rng.Intn(3) == 0 {
				m = core.Mult{Lo: 0, SG: 1, Hi: 1 + int64(rng.Intn(2))}
			}
			if rng.Intn(4) == 0 {
				m = core.Mult{Lo: 2, SG: 2, Hi: 2}
			}
			rel.Add(core.Tuple{Vals: vals, M: m})
		}
		return rel
	}
	return core.DB{"r": mk("a", "b"), "s": mk("c", "d")}
}

// propertyCorpus yields a randomized SQL query corpus covering every
// operator the optimizer touches and every operator it must not touch
// (Diff, Distinct, Agg, OrderBy/Limit). Constants are randomized so each
// trial exercises different selectivities.
func propertyCorpus(rng *rand.Rand) []string {
	k := func() int { return rng.Intn(6) }
	return []string{
		fmt.Sprintf(`SELECT a, b FROM r WHERE a <= %d AND b > %d`, k(), k()),
		fmt.Sprintf(`SELECT a + b AS ab FROM r WHERE a <= %d OR b = %d`, k(), k()),
		fmt.Sprintf(`SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < %d`, k()),
		fmt.Sprintf(`SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND s.d >= %d`, k()),
		fmt.Sprintf(`SELECT r.a, s.c FROM r JOIN s ON r.a = s.c WHERE r.b < %d AND s.d >= %d`, k(), k()),
		fmt.Sprintf(`SELECT b, sum(a) AS s, count(*) AS n FROM r WHERE a < %d GROUP BY b`, k()),
		fmt.Sprintf(`SELECT b, max(a) AS m FROM r GROUP BY b HAVING max(a) >= %d`, k()),
		fmt.Sprintf(`SELECT DISTINCT b FROM r WHERE a >= %d`, k()),
		fmt.Sprintf(`SELECT a FROM r WHERE a < %d UNION SELECT c FROM s WHERE d > %d`, k(), k()),
		fmt.Sprintf(`SELECT a FROM r EXCEPT SELECT c FROM s WHERE d = %d`, k()),
		fmt.Sprintf(`SELECT a, b FROM r WHERE a BETWEEN %d AND %d ORDER BY a LIMIT 3`, k(), k()+3),
		fmt.Sprintf(`SELECT x.ab, count(*) AS n FROM (SELECT a + b AS ab FROM r WHERE a <> %d) x GROUP BY x.ab`, k()),
		fmt.Sprintf(`SELECT CASE WHEN a > %d THEN 1 ELSE 0 END AS flag, b FROM r WHERE TRUE AND b <= %d`, k(), k()),
		fmt.Sprintf(`SELECT b, d FROM r JOIN s ON a = c WHERE b <= %d`, k()),
		fmt.Sprintf(`SELECT least(a, %d) AS la, greatest(b, %d) AS gb FROM r WHERE a IS NOT NULL`, k(), k()),
	}
}

// TestOptimizedPlansAreResultExact is the optimizer's core guarantee: on
// a random query corpus, the optimized and unoptimized plans produce
// bit-identical results (canonical merged + sorted form) on all three
// engines — the native AU-DB executor (serial and parallel), the
// deterministic bag engine over the selected-guess world, and the
// Section 10 rewriting middleware.
func TestOptimizedPlansAreResultExact(t *testing.T) {
	ctx := context.Background()
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial*77)))
		db := randomAUDB(rng, 3+rng.Intn(6))
		cat := ra.CatalogMap(db.Schemas())
		sgw := db.SGW()
		for _, q := range propertyCorpus(rng) {
			plan, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[trial %d] compile %s: %v", trial, q, err)
			}
			opl, err := Optimize(plan, cat)
			if err != nil {
				t.Fatalf("[trial %d] optimize %s: %v", trial, q, err)
			}
			if err := ra.Validate(opl, cat); err != nil {
				t.Fatalf("[trial %d] %s: optimized plan invalid: %v\n%s", trial, q, err, ra.Render(opl))
			}

			// Native engine, serial and parallel.
			for _, workers := range []int{1, 4} {
				opts := core.Options{Workers: workers}
				want, err := core.Exec(ctx, plan, db, opts)
				if err != nil {
					t.Fatalf("[trial %d] %s (workers=%d): unoptimized: %v", trial, q, workers, err)
				}
				got, err := core.Exec(ctx, opl, db, opts)
				if err != nil {
					t.Fatalf("[trial %d] %s (workers=%d): optimized: %v", trial, q, workers, err)
				}
				if want.Sort().String() != got.Sort().String() {
					t.Fatalf("[trial %d] %s (workers=%d): native result changed:\nunoptimized plan:\n%s%s\noptimized plan:\n%s%s",
						trial, q, workers, ra.Render(plan), want, ra.Render(opl), got)
				}
			}

			// Deterministic bag engine over the selected-guess world.
			want, err := bag.Exec(ctx, plan, sgw)
			if err != nil {
				t.Fatalf("[trial %d] %s: bag unoptimized: %v", trial, q, err)
			}
			got, err := bag.Exec(ctx, opl, sgw)
			if err != nil {
				t.Fatalf("[trial %d] %s: bag optimized: %v", trial, q, err)
			}
			if !want.Clone().Merge().Equal(got.Clone().Merge()) {
				t.Fatalf("[trial %d] %s: bag result changed:\n%s\nvs\n%s", trial, q, want, got)
			}

			// Section 10 rewriting middleware. The middleware rejects
			// some operators (DISTINCT); optimization must not change
			// whether a query is rejected.
			wantR, wantErr := encoding.Exec(ctx, plan, db)
			gotR, gotErr := encoding.Exec(ctx, opl, db)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("[trial %d] %s: rewrite acceptance changed: unoptimized err=%v, optimized err=%v",
					trial, q, wantErr, gotErr)
			}
			if wantErr == nil && wantR.Sort().String() != gotR.Sort().String() {
				t.Fatalf("[trial %d] %s: rewrite result changed:\n%s\nvs\n%s", trial, q, wantR, gotR)
			}
		}
	}
}

// TestOptimizedPlansStillBoundWorlds: on hand-built plans including the
// gated operators, the optimized plan's result over a random incomplete
// database must keep bounding every possible world (Corollary 2) — the
// bound-preservation property is engine-level, but a broken rewrite
// would break it too.
func TestOptimizedPlansStillBoundWorlds(t *testing.T) {
	cat := ra.CatalogMap{"r": schema.New("a", "b"), "r2": schema.New("a", "b")}
	queries := []string{
		`SELECT r.a, r2.b FROM r, r2 WHERE r.a = r2.a AND r.b <= 3`,
		`SELECT a FROM r EXCEPT SELECT a FROM r2`,
		`SELECT DISTINCT a FROM r WHERE b >= 1`,
		`SELECT b, sum(a) AS s FROM r WHERE a <= 4 GROUP BY b`,
	}
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*53 + 7)))
		rRel, rWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(3))
		sRel, sWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(2))
		db := core.DB{"r": rRel, "r2": sRel}
		for _, q := range queries {
			plan, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			opl, err := Optimize(plan, cat)
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			res, err := core.Exec(context.Background(), opl, db, core.Options{})
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			for _, rw := range rWorlds {
				for _, sw := range sWorlds {
					det, err := bag.Exec(context.Background(), plan, bag.DB{"r": rw, "r2": sw})
					if err != nil {
						t.Fatalf("[%d] %s: det: %v", trial, q, err)
					}
					if !res.BoundsWorld(det) {
						t.Fatalf("[%d] %s: optimized result does not bound world:\nworld:\n%s\nresult:\n%s",
							trial, q, det, res)
					}
				}
			}
		}
	}
}

// randomIncomplete builds an AU-relation plus all its possible worlds
// (mirrors the generator of internal/encoding's property test).
func randomIncomplete(r *rand.Rand, s schema.Schema, rows int) (*core.Relation, []*bag.Relation) {
	type rowSpec struct {
		alts     []types.Tuple
		optional bool
	}
	var specs []rowSpec
	for i := 0; i < rows; i++ {
		n := 1 + r.Intn(2)
		spec := rowSpec{optional: r.Intn(4) == 0}
		for a := 0; a < n; a++ {
			t := make(types.Tuple, s.Arity())
			for c := range t {
				t[c] = types.Int(int64(r.Intn(5)))
			}
			spec.alts = append(spec.alts, t)
		}
		specs = append(specs, spec)
	}
	au := core.New(s)
	for _, spec := range specs {
		vals := make(rangeval.Tuple, s.Arity())
		for c := 0; c < s.Arity(); c++ {
			lo, hi := spec.alts[0][c], spec.alts[0][c]
			for _, a := range spec.alts[1:] {
				lo, hi = types.Min(lo, a[c]), types.Max(hi, a[c])
			}
			vals[c] = rangeval.New(lo, spec.alts[0][c], hi)
		}
		m := core.Mult{Lo: 1, SG: 1, Hi: 1}
		if spec.optional {
			m.Lo = 0
		}
		au.Add(core.Tuple{Vals: vals, M: m})
	}
	worlds := []*bag.Relation{bag.New(s)}
	for _, spec := range specs {
		var next []*bag.Relation
		for _, w := range worlds {
			for _, alt := range spec.alts {
				nw := w.Clone()
				nw.Add(alt, 1)
				next = append(next, nw)
			}
			if spec.optional {
				next = append(next, w.Clone())
			}
		}
		worlds = next
	}
	for _, w := range worlds {
		w.Merge()
	}
	return au, worlds
}

// ---------------------------------------------------------------- cost --

// randomAUDB3 extends randomAUDB with a third, smaller table so the
// cost-based reorder rule sees 3-input chains.
func randomAUDB3(rng *rand.Rand, rows int) core.DB {
	db := randomAUDB(rng, rows)
	rel := core.New(schema.New("e", "f"))
	for i := 0; i < 2+rng.Intn(3); i++ {
		sg := int64(rng.Intn(6))
		v := rangeval.Certain(types.Int(sg))
		if rng.Intn(3) == 0 {
			v = rangeval.New(types.Int(sg), types.Int(sg), types.Int(sg+1))
		}
		rel.Add(core.Tuple{
			Vals: rangeval.Tuple{v, rangeval.Certain(types.Int(int64(rng.Intn(6))))},
			M:    core.Mult{Lo: 1, SG: 1, Hi: 1},
		})
	}
	db["u"] = rel
	return db
}

// statsProvider collects real statistics for every table of a database.
type statsProvider map[string]*stats.TableStats

func (p statsProvider) TableStats(name string) (*stats.TableStats, bool) {
	ts, ok := p[name]
	return ts, ok
}

func collectAll(db core.DB) statsProvider {
	p := statsProvider{}
	for name, rel := range db {
		p[name] = stats.Collect(name, rel)
	}
	return p
}

// costCorpus adds multi-table join chains (the reorder rule's targets) to
// the standard corpus (where cost-based planning must be a no-op or a
// benign annotation pass).
func costCorpus(rng *rand.Rand) []string {
	k := func() int { return rng.Intn(6) }
	qs := propertyCorpus(rng)
	return append(qs,
		fmt.Sprintf(`SELECT r.b, s.d, u.f FROM r, s, u WHERE r.a = s.c AND s.d = u.e AND u.f <= %d`, k()),
		fmt.Sprintf(`SELECT r.a, u.e FROM r JOIN s ON r.a = s.c JOIN u ON s.d = u.e WHERE r.b >= %d`, k()),
		`SELECT r.b, u.f FROM r, s, u WHERE r.a = s.c AND s.c = u.e`,
		fmt.Sprintf(`SELECT u.e, count(*) AS n FROM r, s, u WHERE r.a = s.c AND s.d = u.e GROUP BY u.e HAVING count(*) > %d`, k()),
		fmt.Sprintf(`SELECT DISTINCT s.d FROM r, s, u WHERE r.a = s.c AND s.d = u.e AND r.b < %d`, k()),
	)
}

// TestCostOptimizedPlansAreResultExact is the cost-based pass's core
// guarantee: with real collected statistics, the cost-optimized plan is
// bit-identical to the rule-only plan (canonical merged + sorted form) on
// all three engines, serial and parallel.
func TestCostOptimizedPlansAreResultExact(t *testing.T) {
	ctx := context.Background()
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial*131)))
		db := randomAUDB3(rng, 3+rng.Intn(6))
		cat := ra.CatalogMap(db.Schemas())
		prov := collectAll(db)
		sgw := db.SGW()
		for _, q := range costCorpus(rng) {
			plan, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[trial %d] compile %s: %v", trial, q, err)
			}
			ruleOnly, err := Optimize(plan, cat)
			if err != nil {
				t.Fatalf("[trial %d] optimize %s: %v", trial, q, err)
			}
			costPlan, ann, err := CostOptimize(ruleOnly, cat, prov)
			if err != nil {
				t.Fatalf("[trial %d] cost-optimize %s: %v", trial, q, err)
			}
			if err := ra.Validate(costPlan, cat); err != nil {
				t.Fatalf("[trial %d] %s: cost plan invalid: %v\n%s", trial, q, err, ra.Render(costPlan))
			}
			if ann == nil {
				t.Fatalf("[trial %d] %s: nil annotations", trial, q)
			}

			for _, workers := range []int{1, 4} {
				opts := core.Options{Workers: workers}
				want, err := core.Exec(ctx, ruleOnly, db, opts)
				if err != nil {
					t.Fatalf("[trial %d] %s (workers=%d): rule-only: %v", trial, q, workers, err)
				}
				got, err := core.Exec(ctx, costPlan, db, opts)
				if err != nil {
					t.Fatalf("[trial %d] %s (workers=%d): cost: %v", trial, q, workers, err)
				}
				if want.Sort().String() != got.Sort().String() {
					t.Fatalf("[trial %d] %s (workers=%d): cost-based plan changed the result:\nrule-only:\n%s%s\ncost:\n%s%s",
						trial, q, workers, ra.Render(ruleOnly), want, ra.Render(costPlan), got)
				}
			}

			want, err := bag.Exec(ctx, ruleOnly, sgw)
			if err != nil {
				t.Fatalf("[trial %d] %s: bag rule-only: %v", trial, q, err)
			}
			got, err := bag.Exec(ctx, costPlan, sgw)
			if err != nil {
				t.Fatalf("[trial %d] %s: bag cost: %v", trial, q, err)
			}
			if !want.Clone().Merge().Equal(got.Clone().Merge()) {
				t.Fatalf("[trial %d] %s: bag result changed", trial, q)
			}

			wantR, wantErr := encoding.Exec(ctx, ruleOnly, db)
			gotR, gotErr := encoding.Exec(ctx, costPlan, db)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("[trial %d] %s: rewrite acceptance changed: %v vs %v", trial, q, wantErr, gotErr)
			}
			if wantErr == nil && wantR.Sort().String() != gotR.Sort().String() {
				t.Fatalf("[trial %d] %s: rewrite result changed", trial, q)
			}
		}
	}
}

// TestCostOptimizedPlansStillBoundWorlds: the cost-optimized plan's
// result over a random incomplete database must keep bounding every
// possible world (Corollary 2) — reordering and the restoring projection
// must not lose the bound-preservation property.
func TestCostOptimizedPlansStillBoundWorlds(t *testing.T) {
	cat := ra.CatalogMap{
		"r":  schema.New("a", "b"),
		"r2": schema.New("a", "b"),
		"r3": schema.New("a", "b"),
	}
	queries := []string{
		`SELECT r.a, r2.b, r3.b FROM r, r2, r3 WHERE r.a = r2.a AND r2.b = r3.a`,
		`SELECT r.a FROM r, r2, r3 WHERE r.a = r2.a AND r2.b = r3.a AND r3.b <= 3`,
		`SELECT r3.b, sum(r.a) AS s FROM r, r2, r3 WHERE r.a = r2.a AND r2.b = r3.a GROUP BY r3.b`,
	}
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*59 + 11)))
		rRel, rWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(2))
		sRel, sWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(2))
		uRel, uWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(2))
		db := core.DB{"r": rRel, "r2": sRel, "r3": uRel}
		prov := collectAll(db)
		for _, q := range queries {
			plan, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			opl, err := Optimize(plan, cat)
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			costPlan, _, err := CostOptimize(opl, cat, prov)
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			res, err := core.Exec(context.Background(), costPlan, db, core.Options{})
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			for _, rw := range rWorlds {
				for _, sw := range sWorlds {
					for _, uw := range uWorlds {
						det, err := bag.Exec(context.Background(), plan, bag.DB{"r": rw, "r2": sw, "r3": uw})
						if err != nil {
							t.Fatalf("[%d] %s: det: %v", trial, q, err)
						}
						if !res.BoundsWorld(det) {
							t.Fatalf("[%d] %s: cost-optimized result does not bound world:\nworld:\n%s\nresult:\n%s",
								trial, q, det, res)
						}
					}
				}
			}
		}
	}
}
