package opt

// This file is the cost-based planning pass: greedy join reordering over
// catalog statistics, plus the per-operator estimate annotations the
// physical layer consumes. It runs AFTER the rule-based fixpoint (which
// has already pushed selections down and turned WHERE equalities into
// join conditions) and is invoked separately — through CostOptimize, not
// the rule pipeline — because it needs a stats.Provider and because its
// one plan-shape rewrite has a precondition the rule pipeline cannot see.
//
// # Soundness
//
// Reordering a chain of inner joins is result-exact under AU-DB bound
// semantics: the output annotation of a join chain is the pointwise
// N^AU-product of the input annotations and the condition triples
// (Definitions 19/20), and multiplication in N^AU is commutative and
// associative, so evaluating the same conjuncts in any grouping yields
// the same tuples with the same [lb/sg/ub] ranges and multiplicity
// triples. Two gates keep the rewrite exact in practice:
//
//   - every join condition in the chain must be total (expr.Total):
//     reordering evaluates conjuncts on different intermediate pairs, and
//     only total predicates are guaranteed not to raise a runtime error
//     the original plan would not have raised (the same gate predicate
//     pushdown uses);
//   - reordering permutes the concatenated output columns, so the chain
//     is wrapped in a Project restoring the original order. Project is a
//     merge point, which is observable only when split+compress
//     (JoinCompression/AggCompression) is enabled — the session layer
//     therefore disables cost-based planning for compressed executions,
//     exactly as the pipelined executor demotes Project to a breaker.
//
// The ordering itself is the classical greedy heuristic: start from the
// cheapest connected pair, then repeatedly attach the input that
// minimizes the estimated cost of the next join (joinCost — which models
// the hybrid join's hash path AND the quadratic uncertain quadrants, so
// attribute-level uncertainty influences the order, not just row counts).
// The reordered plan is kept only when its simulated total cost beats the
// original order's.

import (
	"fmt"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/stats"
)

// ReorderRule is the rule name the cost-based join reordering reports in
// EXPLAIN traces.
const ReorderRule = "reorder-joins"

// CostOptimize applies cost-based planning to a (rule-optimized) plan:
// join chains are greedily reordered using the statistics provider, and
// every operator of the resulting plan is annotated with its estimated
// cardinality. The input plan is never mutated; the returned Annotations
// are keyed to the returned plan. A nil provider still annotates (with
// default estimates) but sees every table as equal-sized.
func CostOptimize(n ra.Node, cat ra.Catalog, prov stats.Provider) (ra.Node, *Annotations, error) {
	out, ann, _, err := costOptimize(n, cat, prov)
	return out, ann, err
}

// CostOptimizeTrace is CostOptimize with the EXPLAIN trace steps of the
// reorderings that fired (empty when the plan was left alone).
func CostOptimizeTrace(n ra.Node, cat ra.Catalog, prov stats.Provider) (ra.Node, *Annotations, []Step, error) {
	return costOptimize(n, cat, prov)
}

func costOptimize(n ra.Node, cat ra.Catalog, prov stats.Provider) (ra.Node, *Annotations, []Step, error) {
	if err := checkNoNil(n); err != nil {
		return nil, nil, nil, err
	}
	inSchema, err := ra.InferSchema(n, cat)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("opt: input plan does not type-check: %w", err)
	}
	e := newEstimator(cat, prov)
	out, changed, err := e.reorder(n, false)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("opt: rule %s: %w", ReorderRule, err)
	}
	// The same invariant the rule pipeline enforces: cost-based planning
	// must never change the plan's output schema.
	outSchema, err := ra.InferSchema(out, cat)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("opt: cost-optimized plan does not type-check: %w", err)
	}
	if inSchema.String() != outSchema.String() {
		return nil, nil, nil, fmt.Errorf("opt: cost optimization changed the schema: %s vs %s", inSchema, outSchema)
	}
	ann, err := e.annotate(out)
	if err != nil {
		return nil, nil, nil, err
	}
	var steps []Step
	if changed {
		steps = append(steps, Step{Rule: ReorderRule, Pass: 1, Plan: ra.Render(out)})
	}
	return out, ann, steps, nil
}

// reorder rewrites every maximal join chain of the plan, bottom-up.
// frozen marks subtrees whose tuple ARRIVAL ORDER is result-visible:
// Limit truncates the first N merged rows in arrival order (and the
// fused top-k breaks sort-key ties by it), so below a Limit neither
// reordering nor a build-side flip may change the order — the same
// reason the rule pipeline never rewrites below Limit. The estimator
// still annotates frozen subtrees; see annotate for the matching
// build-side gate.
func (e *estimator) reorder(n ra.Node, frozen bool) (ra.Node, bool, error) {
	if _, ok := n.(*ra.Limit); ok {
		frozen = true
	}
	if j, ok := n.(*ra.Join); ok && !frozen {
		return e.reorderChain(j)
	}
	children := n.Children()
	if len(children) == 0 {
		return n, false, nil
	}
	next := make([]ra.Node, len(children))
	changed := false
	for i, c := range children {
		nc, ch, err := e.reorder(c, frozen)
		if err != nil {
			return nil, false, err
		}
		next[i] = nc
		changed = changed || ch
	}
	return ra.WithChildren(n, next), changed, nil
}

// flatInput is one leaf of a flattened join chain.
type flatInput struct {
	node  ra.Node
	start int // attribute offset in the original concatenation
	arity int
	card  Card
}

// reorderChain flattens the maximal join chain rooted at j, reorders its
// inputs when the gates pass and the greedy order is estimated cheaper,
// and otherwise rebuilds the original shape (with reordered subplans
// inside the leaves).
func (e *estimator) reorderChain(j *ra.Join) (ra.Node, bool, error) {
	fc, err := e.flattenJoin(j)
	if err != nil {
		return nil, false, err
	}
	changed := false
	for i, leaf := range fc.leaves {
		// Leaves of an unfrozen chain are themselves unfrozen (a Limit
		// inside a leaf re-freezes its own subtree).
		nl, ch, err := e.reorder(leaf, false)
		if err != nil {
			return nil, false, err
		}
		fc.leaves[i] = nl
		changed = changed || ch
	}
	rebuild := func() ra.Node {
		pos := 0
		return rebuildChainTree(j, fc.leaves, &pos)
	}
	if !fc.total || len(fc.leaves) < 3 {
		return rebuild(), changed, nil
	}

	ins := make([]flatInput, len(fc.leaves))
	off := 0
	for i, leaf := range fc.leaves {
		sch, err := ra.InferSchema(leaf, e.cat)
		if err != nil {
			return nil, false, err
		}
		card, err := e.card(leaf)
		if err != nil {
			return nil, false, err
		}
		ins[i] = flatInput{node: leaf, start: off, arity: sch.Arity(), card: card}
		off += sch.Arity()
	}

	order, greedyCost := greedyOrder(ins, fc.conds)
	identity := make([]int, len(ins))
	for i := range identity {
		identity[i] = i
	}
	identityCost := chainCost(ins, fc.conds, identity)
	isIdentity := true
	for i := range order {
		if order[i] != i {
			isIdentity = false
			break
		}
	}
	// Keep the written order unless the greedy order is clearly cheaper:
	// the restoring projection is not free, and estimates are estimates.
	if isIdentity || greedyCost >= 0.9*identityCost {
		return rebuild(), changed, nil
	}
	outSchema, err := ra.InferSchema(j, e.cat)
	if err != nil {
		return nil, false, err
	}
	reordered := buildChainPlan(ins, fc.conds, order, fc.outMap, outSchema.Attrs)
	return reordered, true, nil
}

// flatChain is a flattened join chain: the non-join leaves in
// left-to-right order, every join condition's conjuncts rewritten to the
// coordinates of the concatenated leaf schemas, and the mapping from the
// chain root's output columns to those coordinates. Narrowing
// attribute-only projections between joins (inserted by the prune-columns
// rule) are flattened through: their column selections compose into the
// conjunct coordinates and outMap, so pruning never hides a reorderable
// chain.
type flatChain struct {
	leaves []ra.Node
	arity  int // total leaf arity (the coordinate space of conds/outMap)
	conds  []expr.Expr
	outMap []int // chain-root output position -> leaf coordinate
	// total reports whether every join condition is total — the gate for
	// reordering (a non-total condition could raise errors on pairs the
	// original order never evaluated it on).
	total bool
}

// chainNode reports whether n continues a join chain — flattenJoin
// decomposes it — rather than being a leaf. Projections continue the
// chain only when they are pure column selections over a chain.
func chainNode(n ra.Node) bool {
	switch t := n.(type) {
	case *ra.Join:
		return true
	case *ra.Project:
		for _, c := range t.Cols {
			if _, ok := c.E.(expr.Attr); !ok {
				return false
			}
		}
		return chainNode(t.Child)
	}
	return false
}

// flattenJoin decomposes the maximal join chain under n.
func (e *estimator) flattenJoin(n ra.Node) (flatChain, error) {
	if !chainNode(n) {
		sch, err := ra.InferSchema(n, e.cat)
		if err != nil {
			return flatChain{}, err
		}
		fc := flatChain{leaves: []ra.Node{n}, arity: sch.Arity(), total: true}
		fc.outMap = make([]int, fc.arity)
		for i := range fc.outMap {
			fc.outMap[i] = i
		}
		return fc, nil
	}
	if p, ok := n.(*ra.Project); ok {
		fc, err := e.flattenJoin(p.Child)
		if err != nil {
			return flatChain{}, err
		}
		outMap := make([]int, len(p.Cols))
		for i, c := range p.Cols {
			outMap[i] = fc.outMap[c.E.(expr.Attr).Idx]
		}
		fc.outMap = outMap
		return fc, nil
	}
	j := n.(*ra.Join)
	l, err := e.flattenJoin(j.Left)
	if err != nil {
		return flatChain{}, err
	}
	r, err := e.flattenJoin(j.Right)
	if err != nil {
		return flatChain{}, err
	}
	fc := flatChain{
		leaves: append(l.leaves, r.leaves...),
		arity:  l.arity + r.arity,
		total:  l.total && r.total,
	}
	fc.conds = append(fc.conds, l.conds...)
	for _, c := range r.conds {
		fc.conds = append(fc.conds, expr.ShiftAttrs(c, l.arity))
	}
	fc.outMap = append(fc.outMap, l.outMap...)
	for _, g := range r.outMap {
		fc.outMap = append(fc.outMap, g+l.arity)
	}
	if j.Cond != nil {
		fc.total = fc.total && expr.Total(j.Cond)
		// The condition references the two children's OUTPUT columns;
		// compose with their outMaps into leaf coordinates.
		for _, c := range expr.Conjuncts(j.Cond) {
			fc.conds = append(fc.conds, expr.MapAttrs(c, func(a expr.Attr) expr.Attr {
				if a.Idx < len(l.outMap) {
					a.Idx = l.outMap[a.Idx]
				} else {
					a.Idx = r.outMap[a.Idx-len(l.outMap)] + l.arity
				}
				return a
			}))
		}
	}
	return fc, nil
}

// rebuildChainTree re-assembles the original chain shape over the
// (possibly rewritten) leaves, sharing nodes when nothing changed. It
// mirrors flattenJoin's structural decisions exactly.
func rebuildChainTree(n ra.Node, leaves []ra.Node, pos *int) ra.Node {
	if !chainNode(n) {
		leaf := leaves[*pos]
		*pos++
		return leaf
	}
	if p, ok := n.(*ra.Project); ok {
		c := rebuildChainTree(p.Child, leaves, pos)
		if c == p.Child {
			return p
		}
		return &ra.Project{Child: c, Cols: p.Cols}
	}
	j := n.(*ra.Join)
	l := rebuildChainTree(j.Left, leaves, pos)
	r := rebuildChainTree(j.Right, leaves, pos)
	if l == j.Left && r == j.Right {
		return j
	}
	return &ra.Join{Left: l, Right: r, Cond: j.Cond}
}

// placement tracks one simulated chain prefix: which inputs are placed,
// where each original attribute currently lives, and the running card.
type placement struct {
	ins    []flatInput
	conjs  []expr.Expr
	used   []bool
	placed []bool
	pos    []int // original attribute index -> current position (-1 unplaced)
	arity  int
	card   Card
	cost   float64
}

func newPlacement(ins []flatInput, conjs []expr.Expr) *placement {
	total := 0
	for _, in := range ins {
		total += in.arity
	}
	pos := make([]int, total)
	for i := range pos {
		pos[i] = -1
	}
	return &placement{
		ins:    ins,
		conjs:  conjs,
		used:   make([]bool, len(conjs)),
		placed: make([]bool, len(ins)),
		pos:    pos,
	}
}

// start places the first input.
func (p *placement) start(i int) {
	in := p.ins[i]
	for a := 0; a < in.arity; a++ {
		p.pos[in.start+a] = a
	}
	p.placed[i] = true
	p.arity = in.arity
	p.card = in.card
}

// condFor collects the unused conjuncts that become applicable when cand
// joins the placed prefix, remapped to the new concatenation's
// coordinates, without consuming them.
func (p *placement) condFor(cand int) (expr.Expr, []int) {
	in := p.ins[cand]
	var applicable []int
	var parts []expr.Expr
	for ci, c := range p.conjs {
		if p.used[ci] {
			continue
		}
		ok := true
		for _, g := range expr.Attrs(c) {
			if p.pos[g] < 0 && !(g >= in.start && g < in.start+in.arity) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		applicable = append(applicable, ci)
		parts = append(parts, expr.MapAttrs(c, func(a expr.Attr) expr.Attr {
			if p.pos[a.Idx] >= 0 {
				a.Idx = p.pos[a.Idx]
			} else {
				a.Idx = p.arity + (a.Idx - in.start)
			}
			return a
		}))
	}
	if len(parts) == 0 {
		return nil, nil
	}
	return expr.And(parts...), applicable
}

// add joins cand onto the prefix, consuming its applicable conjuncts.
func (p *placement) add(cand int) (cond expr.Expr) {
	cond, applicable := p.condFor(cand)
	for _, ci := range applicable {
		p.used[ci] = true
	}
	in := p.ins[cand]
	cost, card := joinCost(p.card, in.card, cond, p.arity)
	for a := 0; a < in.arity; a++ {
		p.pos[in.start+a] = p.arity + a
	}
	p.placed[cand] = true
	p.arity += in.arity
	p.card = card
	p.cost += cost
	return cond
}

// stepCost scores joining cand next without committing.
func (p *placement) stepCost(cand int) float64 {
	cond, _ := p.condFor(cand)
	cost, _ := joinCost(p.card, p.ins[cand].card, cond, p.arity)
	return cost
}

// greedyOrder picks the placement order: the cheapest first join over all
// ordered pairs, then repeatedly the input with the cheapest next join
// (joinCost makes unconnected inputs — cross products — rank last
// naturally). Returns the order and its simulated total cost.
func greedyOrder(ins []flatInput, conjs []expr.Expr) ([]int, float64) {
	n := len(ins)
	bestI, bestJ, bestCost := 0, 1, 0.0
	first := true
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := newPlacement(ins, conjs)
			p.start(i)
			c := p.stepCost(j)
			if first || c < bestCost {
				bestI, bestJ, bestCost, first = i, j, c, false
			}
		}
	}
	p := newPlacement(ins, conjs)
	p.start(bestI)
	p.add(bestJ)
	order := []int{bestI, bestJ}
	for len(order) < n {
		best, bestC := -1, 0.0
		for cand := 0; cand < n; cand++ {
			if p.placed[cand] {
				continue
			}
			c := p.stepCost(cand)
			if best < 0 || c < bestC {
				best, bestC = cand, c
			}
		}
		p.add(best)
		order = append(order, best)
	}
	return order, p.cost
}

// chainCost simulates placing the inputs in the given order and returns
// the total cost — used to score the original (written) order.
func chainCost(ins []flatInput, conjs []expr.Expr, order []int) float64 {
	p := newPlacement(ins, conjs)
	p.start(order[0])
	for _, i := range order[1:] {
		p.add(i)
	}
	return p.cost
}

// buildChainPlan materializes the chosen order as a left-deep join tree
// wrapped in a Project that restores the chain root's output columns (and
// names); outMap maps those outputs to leaf coordinates. Conjuncts attach
// to the first join whose inputs cover them; any conjunct is covered by
// the final join at the latest, so none are dropped. The intermediate
// narrowing projections of the original chain are not reinstated — the
// single restoring projection prunes once, at the top.
func buildChainPlan(ins []flatInput, conjs []expr.Expr, order []int, outMap []int, names []string) ra.Node {
	p := newPlacement(ins, conjs)
	p.start(order[0])
	cur := p.ins[order[0]].node
	for _, i := range order[1:] {
		right := p.ins[i].node
		cond := p.add(i)
		cur = &ra.Join{Left: cur, Right: right, Cond: cond}
	}
	cols := make([]ra.ProjCol, len(outMap))
	for i, g := range outMap {
		cols[i] = ra.ProjCol{E: expr.Col(p.pos[g], names[i]), Name: names[i]}
	}
	return &ra.Project{Child: cur, Cols: cols}
}
