package opt

import (
	"strings"
	"testing"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
	"github.com/audb/audb/internal/stats"
	"github.com/audb/audb/internal/types"
)

// statDB builds relations with known statistics and a provider over them.
type mapProvider map[string]*stats.TableStats

func (m mapProvider) TableStats(name string) (*stats.TableStats, bool) {
	ts, ok := m[name]
	return ts, ok
}

// uniformRel builds rows with a0 = i % ndv (certain) and a1 = i (certain),
// with uncFrac of the a0 values widened by +-1.
func uniformRel(rows, ndv int, uncFrac float64) *core.Relation {
	rel := core.New(schema.New("a0", "a1"))
	unc := int(float64(rows) * uncFrac)
	for i := 0; i < rows; i++ {
		v := int64(i % ndv)
		a0 := rangeval.Certain(types.Int(v))
		if i < unc {
			a0 = rangeval.New(types.Int(v-1), types.Int(v), types.Int(v+1))
		}
		rel.Add(core.Tuple{
			Vals: rangeval.Tuple{a0, rangeval.Certain(types.Int(int64(i)))},
			M:    core.One,
		})
	}
	return rel
}

func provFor(rels map[string]*core.Relation) (mapProvider, ra.CatalogMap) {
	prov := mapProvider{}
	cat := ra.CatalogMap{}
	for name, rel := range rels {
		prov[name] = stats.Collect(name, rel)
		cat[name] = rel.Schema
	}
	return prov, cat
}

func TestEstimateScanSelectJoin(t *testing.T) {
	rels := map[string]*core.Relation{
		"big":   uniformRel(1000, 100, 0),
		"small": uniformRel(10, 10, 0),
	}
	prov, cat := provFor(rels)
	e := newEstimator(cat, prov)

	scan := &ra.Scan{Table: "big"}
	c, err := e.card(scan)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 1000 {
		t.Fatalf("scan rows = %v", c.Rows)
	}

	// Equality on a 100-NDV certain column: ~1% selectivity.
	sel := &ra.Select{Child: scan, Pred: expr.Eq(expr.Col(0, "a0"), expr.CInt(5))}
	c, err = e.card(sel)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows < 5 || c.Rows > 25 {
		t.Fatalf("eq selectivity estimate off: %v rows", c.Rows)
	}

	// Range predicate keeping ~10% of a uniform [0,999] column.
	sel2 := &ra.Select{Child: scan, Pred: expr.Lt(expr.Col(1, "a1"), expr.CInt(100))}
	c, err = e.card(sel2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows < 50 || c.Rows > 200 {
		t.Fatalf("range selectivity estimate off: %v rows", c.Rows)
	}

	// Equi join big(a0) x small(a0): ~ 1000*10/max(100,10) = 100.
	join := &ra.Join{
		Left:  scan,
		Right: &ra.Scan{Table: "small"},
		Cond:  expr.Eq(expr.Col(0, "a0"), expr.Col(2, "a0")),
	}
	c, err = e.card(join)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows < 50 || c.Rows > 200 {
		t.Fatalf("join estimate off: %v rows", c.Rows)
	}
}

// TestEstimateWidensForUncertainty: the same predicate over an uncertain
// column must estimate at least as many rows as over a certain one —
// uncertain predicates must not under-estimate.
func TestEstimateWidensForUncertainty(t *testing.T) {
	rels := map[string]*core.Relation{
		"cert": uniformRel(1000, 50, 0),
		"unc":  uniformRel(1000, 50, 0.5),
	}
	prov, cat := provFor(rels)
	e := newEstimator(cat, prov)
	pred := expr.Eq(expr.Col(0, "a0"), expr.CInt(7))
	cc, err := e.card(&ra.Select{Child: &ra.Scan{Table: "cert"}, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	cu, err := e.card(&ra.Select{Child: &ra.Scan{Table: "unc"}, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if cu.Rows <= cc.Rows {
		t.Fatalf("uncertain estimate %v not wider than certain %v", cu.Rows, cc.Rows)
	}
}

// TestEstimateEveryOperator: every node of a plan covering the full
// operator set gets an annotation, and estimates respect basic shape
// invariants (Limit caps, Union adds, Agg groups).
func TestEstimateEveryOperator(t *testing.T) {
	rels := map[string]*core.Relation{
		"r": uniformRel(600, 20, 0.1),
		"s": uniformRel(60, 20, 0),
	}
	prov, cat := provFor(rels)
	queries := []string{
		`SELECT a0, a1 FROM r WHERE a0 <= 5 ORDER BY a1 LIMIT 7`,
		`SELECT r.a1, s.a1 FROM r JOIN s ON r.a0 = s.a0 WHERE s.a1 > 3`,
		`SELECT a0, sum(a1) AS t, count(*) AS n FROM r GROUP BY a0`,
		`SELECT DISTINCT a0 FROM r`,
		`SELECT a0 FROM r UNION SELECT a0 FROM s`,
		`SELECT a0 FROM r EXCEPT SELECT a0 FROM s`,
		`SELECT a0 + a1 AS x FROM r`,
	}
	for _, q := range queries {
		plan, err := sql.Compile(q, cat)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		opl, err := Optimize(plan, cat)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		final, ann, err := CostOptimize(opl, cat, prov)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var walk func(n ra.Node)
		walk = func(n ra.Node) {
			if _, ok := ann.Rows(n); !ok {
				t.Fatalf("%s: node %s missing estimate", q, n.String())
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(final)
		rendered := ann.Render(final)
		if !strings.Contains(rendered, "(est ") {
			t.Fatalf("%s: rendering lacks estimates:\n%s", q, rendered)
		}
		for _, line := range strings.Split(strings.TrimSpace(rendered), "\n") {
			if !strings.Contains(line, "(est ") {
				t.Fatalf("%s: line lacks estimate: %q", q, line)
			}
		}
	}
}

// TestEstimateLimitAndAgg checks two concrete propagation rules.
func TestEstimateLimitAndAgg(t *testing.T) {
	rels := map[string]*core.Relation{"r": uniformRel(500, 25, 0)}
	prov, cat := provFor(rels)
	e := newEstimator(cat, prov)
	lim := &ra.Limit{Child: &ra.Scan{Table: "r"}, N: 3}
	c, err := e.card(lim)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 3 {
		t.Fatalf("limit rows = %v", c.Rows)
	}
	agg := &ra.Agg{
		Child:   &ra.Scan{Table: "r"},
		GroupBy: []int{0},
		Aggs:    []ra.AggSpec{{Fn: ra.AggCount, Name: "n"}},
	}
	c, err = e.card(agg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows < 20 || c.Rows > 30 {
		t.Fatalf("agg groups = %v, want ~25", c.Rows)
	}
}

// TestEstimateWithoutProvider: defaults keep planning alive when no
// statistics exist.
func TestEstimateWithoutProvider(t *testing.T) {
	cat := ra.CatalogMap{"r": schema.New("a", "b")}
	e := newEstimator(cat, nil)
	c, err := e.card(&ra.Scan{Table: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != defaultRows || len(c.cols) != 2 {
		t.Fatalf("default card: %+v", c)
	}
}
