package opt

import (
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
)

// foldConstants applies expr.Fold to every expression in the plan:
// selection predicates, projection columns, join conditions and aggregate
// arguments. Folding is exact under both evaluation semantics (see
// expr.Fold), so this rule is unconditionally sound.
//
// sound: result-exact on every input — a folded subexpression evaluates
// to the same certain triple the original produces under the range
// semantics of Section 7 (Definition 9).
func foldConstants(cat ra.Catalog, n ra.Node) (ra.Node, error) {
	return ra.Transform(n, func(m ra.Node) ra.Node {
		switch t := m.(type) {
		case *ra.Select:
			if p := expr.Fold(t.Pred); !expr.Equal(p, t.Pred) {
				return &ra.Select{Child: t.Child, Pred: p}
			}
		case *ra.Project:
			changed := false
			cols := make([]ra.ProjCol, len(t.Cols))
			for i, c := range t.Cols {
				e := expr.Fold(c.E)
				if !expr.Equal(e, c.E) {
					changed = true
				}
				cols[i] = ra.ProjCol{E: e, Name: c.Name}
			}
			if changed {
				return &ra.Project{Child: t.Child, Cols: cols}
			}
		case *ra.Join:
			if t.Cond != nil {
				if c := expr.Fold(t.Cond); !expr.Equal(c, t.Cond) {
					return &ra.Join{Left: t.Left, Right: t.Right, Cond: c}
				}
			}
		case *ra.Agg:
			changed := false
			aggs := make([]ra.AggSpec, len(t.Aggs))
			for i, a := range t.Aggs {
				aggs[i] = a
				if a.Arg != nil {
					e := expr.Fold(a.Arg)
					if !expr.Equal(e, a.Arg) {
						changed = true
					}
					aggs[i].Arg = e
				}
			}
			if changed {
				return &ra.Agg{Child: t.Child, GroupBy: t.GroupBy, Aggs: aggs}
			}
		}
		return m
	}), nil
}

// pushSelections implements predicate pushdown with selection splitting:
// every Select is split into its top-level conjuncts, each conjunct is
// pushed as deep as pushPred allows, and what remains is recombined (in
// the original conjunct order) above the rewritten child.
//
// gated: pushPred never moves a conjunct below Diff, Distinct, Agg or
// Limit — multiplying annotations by a selection triple does not
// distribute over the bound-preserving monus (Theorem 4), δ's lower
// bound (Definition 21), possible-group boxes (Section 9.3), or a
// cutoff; partial predicates are additionally gated on totality (see
// the package comment).
func pushSelections(cat ra.Catalog, n ra.Node) (ra.Node, error) {
	var outerErr error
	out := ra.Transform(n, func(m ra.Node) ra.Node {
		sel, ok := m.(*ra.Select)
		if !ok || outerErr != nil {
			return m
		}
		child := sel.Child
		var residual []expr.Expr
		pushedAny := false
		for _, c := range expr.Conjuncts(sel.Pred) {
			next, pushed, err := pushPred(cat, child, c)
			if err != nil {
				outerErr = err
				return m
			}
			if pushed {
				child = next
				pushedAny = true
			} else {
				residual = append(residual, c)
			}
		}
		if !pushedAny {
			return m
		}
		if len(residual) == 0 {
			return child
		}
		return &ra.Select{Child: child, Pred: expr.And(residual...)}
	})
	return out, outerErr
}

// pushPred pushes a single conjunct p into n, returning the rewritten
// node and whether the push happened. Every rewrite here is result-exact
// for all three engines:
//
//   - through Project, p is composed with the projection's expressions
//     (expr.Subst); evaluation is compositional, so the substituted
//     predicate computes the identical truth triple, and annotation
//     multiplication distributes over the projection's merge;
//   - into a Join side (or the join condition), annotation multiplication
//     is commutative and associative in N^AU, so filtering early
//     multiplies the same factors; this is gated on expr.Total because
//     the predicate is evaluated on tuples/pairs that the original plan
//     never evaluated it on;
//   - through Union, the predicate distributes over the annotation sum;
//   - through OrderBy, filtering commutes with the stable sort.
//
// Diff, Distinct, Agg and Limit refuse the push — see the package comment
// for the paper-level reasons each is unsound under AU-DB bounds.
func pushPred(cat ra.Catalog, n ra.Node, p expr.Expr) (ra.Node, bool, error) {
	switch t := n.(type) {
	case *ra.Project:
		// Substituting would inline a computed column once per
		// reference; like compose-projections, refuse when that
		// duplicates a non-trivial expression.
		refs := make([]int, len(t.Cols))
		countAttrRefs(p, refs)
		cols := make([]expr.Expr, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.E
			if refs[i] > 1 {
				switch c.E.(type) {
				case expr.Attr, expr.Const:
				default:
					return n, false, nil
				}
			}
		}
		sub := expr.Fold(expr.Subst(p, cols))
		child, _, err := pushOrWrap(cat, t.Child, sub)
		if err != nil {
			return nil, false, err
		}
		return &ra.Project{Child: child, Cols: t.Cols}, true, nil
	case *ra.Select:
		// Swapping p below an existing selection makes p evaluate on
		// tuples the inner predicate rejects; only total predicates may.
		if !expr.Total(p) {
			return n, false, nil
		}
		child, pushed, err := pushPred(cat, t.Child, p)
		if err != nil {
			return nil, false, err
		}
		if !pushed {
			return n, false, nil
		}
		return &ra.Select{Child: child, Pred: t.Pred}, true, nil
	case *ra.Join:
		if !expr.Total(p) {
			// A one-sided push evaluates p on tuples that never find a
			// join partner; a condition merge evaluates it on pairs the
			// condition rejects. Either could raise a new runtime error
			// for a partial predicate.
			return n, false, nil
		}
		ls, err := ra.InferSchema(t.Left, cat)
		if err != nil {
			return nil, false, err
		}
		lar := ls.Arity()
		attrs := expr.Attrs(p)
		leftOnly, rightOnly := true, true
		for _, a := range attrs {
			if a >= lar {
				leftOnly = false
			} else {
				rightOnly = false
			}
		}
		switch {
		case leftOnly && len(attrs) > 0:
			left, _, err := pushOrWrap(cat, t.Left, p)
			if err != nil {
				return nil, false, err
			}
			return &ra.Join{Left: left, Right: t.Right, Cond: t.Cond}, true, nil
		case rightOnly && len(attrs) > 0:
			right, _, err := pushOrWrap(cat, t.Right, expr.ShiftAttrs(p, -lar))
			if err != nil {
				return nil, false, err
			}
			return &ra.Join{Left: t.Left, Right: right, Cond: t.Cond}, true, nil
		default:
			// Spans both sides (or references nothing): merge into the
			// join condition. This is what turns `FROM a, b WHERE a.x =
			// b.y` into an equi-join the hybrid executor can hash.
			cond := p
			if t.Cond != nil {
				cond = expr.And(t.Cond, p)
			}
			return &ra.Join{Left: t.Left, Right: t.Right, Cond: cond}, true, nil
		}
	case *ra.Union:
		left, _, err := pushOrWrap(cat, t.Left, p)
		if err != nil {
			return nil, false, err
		}
		right, _, err := pushOrWrap(cat, t.Right, p)
		if err != nil {
			return nil, false, err
		}
		return &ra.Union{Left: left, Right: right}, true, nil
	case *ra.OrderBy:
		child, _, err := pushOrWrap(cat, t.Child, p)
		if err != nil {
			return nil, false, err
		}
		return &ra.OrderBy{Child: child, Keys: t.Keys, Desc: t.Desc}, true, nil
	}
	// Scan, Diff, Distinct, Agg, Limit: the predicate stays above.
	return n, false, nil
}

// pushOrWrap pushes p into n, wrapping n in a Select when it cannot
// descend further. Used where the push has already been decided (the
// predicate is moving into a subtree) and only its final depth is open.
func pushOrWrap(cat ra.Catalog, n ra.Node, p expr.Expr) (ra.Node, bool, error) {
	next, pushed, err := pushPred(cat, n, p)
	if err != nil {
		return nil, false, err
	}
	if pushed {
		return next, true, nil
	}
	return &ra.Select{Child: n, Pred: p}, true, nil
}

// mergeSelections fuses adjacent selections into one conjunction,
// removing a full pass over the input per fused operator. The inner
// predicate becomes the left conjunct, so deterministic short-circuit
// evaluation keeps the original order (inner first). The merge is gated
// on the OUTER predicate being total: range evaluation does not
// short-circuit, so a merged partial outer predicate would be evaluated
// on tuples the inner selection used to filter out.
//
// sound: selection triples multiply, and annotation multiplication is
// associative in N^AU (Section 8), so σ_p(σ_q(R)) and σ_{q AND p}(R)
// annotate every tuple identically; the totality gate only prevents
// introducing evaluation errors.
func mergeSelections(cat ra.Catalog, n ra.Node) (ra.Node, error) {
	return ra.Transform(n, func(m ra.Node) ra.Node {
		outer, ok := m.(*ra.Select)
		if !ok {
			return m
		}
		inner, ok := outer.Child.(*ra.Select)
		if !ok || !expr.Total(outer.Pred) {
			return m
		}
		return &ra.Select{Child: inner.Child, Pred: expr.And(inner.Pred, outer.Pred)}
	}), nil
}
