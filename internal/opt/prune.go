package opt

import (
	"fmt"
	"sort"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
)

// composeProjections fuses Project-over-Project chains into a single
// projection by composing the expressions (expr.Subst). The intermediate
// merge the inner projection performed is subsumed by the outer one:
// tuples the inner projection would merge have identical inner values,
// hence identical composed values, so they merge in the outer projection
// instead and the final annotation sums agree.
//
// To avoid re-evaluating an expensive computed column several times, the
// fusion is skipped when an inner computed column (anything but a bare
// attribute or constant) is referenced more than once by the outer
// projection.
//
// sound: expression composition is exact and the inner projection's
// merge is subsumed by the outer one — the annotation sums agree
// tuple-by-tuple under the N^AU semiring semantics of Section 8.
func composeProjections(cat ra.Catalog, n ra.Node) (ra.Node, error) {
	return ra.Transform(n, func(m ra.Node) ra.Node {
		outer, ok := m.(*ra.Project)
		if !ok {
			return m
		}
		inner, ok := outer.Child.(*ra.Project)
		if !ok {
			return m
		}
		refs := make([]int, len(inner.Cols))
		for _, c := range outer.Cols {
			countAttrRefs(c.E, refs)
		}
		innerExprs := make([]expr.Expr, len(inner.Cols))
		for i, c := range inner.Cols {
			innerExprs[i] = c.E
			if refs[i] > 1 {
				switch c.E.(type) {
				case expr.Attr, expr.Const:
				default:
					return m // would duplicate a computed column
				}
			}
		}
		cols := make([]ra.ProjCol, len(outer.Cols))
		for i, c := range outer.Cols {
			cols[i] = ra.ProjCol{E: expr.Fold(expr.Subst(c.E, innerExprs)), Name: c.Name}
		}
		return &ra.Project{Child: inner.Child, Cols: cols}
	}), nil
}

// countAttrRefs counts every occurrence of each attribute reference in e
// (expr.Attrs dedups per expression, which would hide a column referenced
// twice by one output expression).
func countAttrRefs(e expr.Expr, refs []int) {
	switch n := e.(type) {
	case expr.Const:
	case expr.Attr:
		if n.Idx >= 0 && n.Idx < len(refs) {
			refs[n.Idx]++
		}
	case expr.Logic:
		countAttrRefs(n.L, refs)
		countAttrRefs(n.R, refs)
	case expr.Not:
		countAttrRefs(n.E, refs)
	case expr.Cmp:
		countAttrRefs(n.L, refs)
		countAttrRefs(n.R, refs)
	case expr.Arith:
		countAttrRefs(n.L, refs)
		countAttrRefs(n.R, refs)
	case expr.If:
		countAttrRefs(n.Cond, refs)
		countAttrRefs(n.Then, refs)
		countAttrRefs(n.Else, refs)
	case expr.IsNull:
		countAttrRefs(n.E, refs)
	case expr.NAry:
		for _, a := range n.Args {
			countAttrRefs(a, refs)
		}
	}
}

// pruneColumns narrows the plan so that joins and aggregations only carry
// columns that are referenced above them — for range tuples a triple win,
// since every dropped column removes a [lb/sg/ub] triple from every
// intermediate tuple. The pass is top-down: each operator tells its
// children which columns it needs; Project nodes absorb the narrowing
// exactly, and explicit narrowing projections are materialized only at
// Join, Agg and Union inputs where they pay for themselves.
//
// Narrowing is exact for the AU-DB semantics because the only effect of
// an inserted projection is merging value-equivalent tuples early, and
// annotation multiplication (joins, selections) distributes over the
// annotation sum of a merge. Diff, Distinct and Limit act as barriers
// requiring their full input width (see the package comment).
//
// sound: a narrowing projection only merges value-equivalent tuples
// early, and annotation multiplication distributes over the merge's
// annotation sum (Section 8); the Diff, Distinct and Limit barriers
// gate the cases where it would not (Theorem 4, Definition 21).
func pruneColumns(cat ra.Catalog, n ra.Node) (ra.Node, error) {
	s, err := ra.InferSchema(n, cat)
	if err != nil {
		return nil, err
	}
	p := &pruner{cat: cat}
	out, cols, err := p.prune(n, allCols(s.Arity()))
	if err != nil {
		return nil, err
	}
	if len(cols) != s.Arity() {
		return nil, fmt.Errorf("opt: prune dropped root columns: kept %v of %d", cols, s.Arity())
	}
	return out, nil
}

type pruner struct {
	cat ra.Catalog
}

// prune rewrites n so that its output covers at least the columns `need`
// (ascending original indices into n's schema). It returns the rewritten
// node together with the columns it actually outputs (a superset of
// need, ascending, preserving the original relative order); the caller
// remaps its expressions accordingly.
func (p *pruner) prune(n ra.Node, need []int) (ra.Node, []int, error) {
	if len(need) == 0 {
		// Keep at least one column: zero-arity relations would merge
		// every tuple into one, changing row structure for operators
		// above.
		need = []int{0}
	}
	switch t := n.(type) {
	case *ra.Scan:
		s, err := p.cat.TableSchema(t.Table)
		if err != nil {
			return nil, nil, err
		}
		return t, allCols(s.Arity()), nil

	case *ra.Select:
		childNeed := unionCols(need, expr.Attrs(t.Pred))
		child, out, err := p.prune(t.Child, childNeed)
		if err != nil {
			return nil, nil, err
		}
		return &ra.Select{Child: child, Pred: remap(t.Pred, out)}, out, nil

	case *ra.Project:
		var childNeed []int
		for _, i := range need {
			childNeed = unionCols(childNeed, expr.Attrs(t.Cols[i].E))
		}
		child, out, err := p.prune(t.Child, childNeed)
		if err != nil {
			return nil, nil, err
		}
		cols := make([]ra.ProjCol, len(need))
		for j, i := range need {
			cols[j] = ra.ProjCol{E: remap(t.Cols[i].E, out), Name: t.Cols[i].Name}
		}
		return &ra.Project{Child: child, Cols: cols}, need, nil

	case *ra.Join:
		ls, err := ra.InferSchema(t.Left, p.cat)
		if err != nil {
			return nil, nil, err
		}
		rs, err := ra.InferSchema(t.Right, p.cat)
		if err != nil {
			return nil, nil, err
		}
		lar := ls.Arity()
		joinNeed := need
		if t.Cond != nil {
			joinNeed = unionCols(joinNeed, expr.Attrs(t.Cond))
		}
		var needL, needR []int
		for _, i := range joinNeed {
			if i < lar {
				needL = append(needL, i)
			} else {
				needR = append(needR, i-lar)
			}
		}
		left, outL, err := p.pruneNarrow(t.Left, needL, ls)
		if err != nil {
			return nil, nil, err
		}
		right, outR, err := p.pruneNarrow(t.Right, needR, rs)
		if err != nil {
			return nil, nil, err
		}
		newLar := len(outL)
		var cond expr.Expr
		if t.Cond != nil {
			cond = expr.MapAttrs(t.Cond, func(a expr.Attr) expr.Attr {
				if a.Idx < lar {
					a.Idx = colPos(outL, a.Idx)
				} else {
					a.Idx = newLar + colPos(outR, a.Idx-lar)
				}
				return a
			})
		}
		out := make([]int, 0, len(outL)+len(outR))
		out = append(out, outL...)
		for _, i := range outR {
			out = append(out, i+lar)
		}
		return &ra.Join{Left: left, Right: right, Cond: cond}, out, nil

	case *ra.Union:
		ls, err := ra.InferSchema(t.Left, p.cat)
		if err != nil {
			return nil, nil, err
		}
		rs, err := ra.InferSchema(t.Right, p.cat)
		if err != nil {
			return nil, nil, err
		}
		left, outL, err := p.prune(t.Left, need)
		if err != nil {
			return nil, nil, err
		}
		right, outR, err := p.prune(t.Right, need)
		if err != nil {
			return nil, nil, err
		}
		if !equalCols(outL, outR) {
			// Align both sides on exactly the needed columns.
			left = narrowTo(left, outL, need, ls)
			right = narrowTo(right, outR, need, rs)
			outL = need
		}
		return &ra.Union{Left: left, Right: right}, outL, nil

	case *ra.Diff:
		// Barrier: difference matches tuples on their full width.
		return p.pruneBinaryBarrier(t)

	case *ra.Distinct:
		// Barrier: δ's lower bound depends on overlaps over all columns.
		cs, err := ra.InferSchema(t.Child, p.cat)
		if err != nil {
			return nil, nil, err
		}
		child, _, err := p.prune(t.Child, allCols(cs.Arity()))
		if err != nil {
			return nil, nil, err
		}
		return &ra.Distinct{Child: child}, allCols(cs.Arity()), nil

	case *ra.Agg:
		cs, err := ra.InferSchema(t.Child, p.cat)
		if err != nil {
			return nil, nil, err
		}
		childNeed := unionCols(nil, t.GroupBy)
		for _, a := range t.Aggs {
			if a.Arg != nil {
				childNeed = unionCols(childNeed, expr.Attrs(a.Arg))
			}
		}
		if len(childNeed) == 0 {
			childNeed = []int{0}
		}
		child, out, err := p.pruneNarrow(t.Child, childNeed, cs)
		if err != nil {
			return nil, nil, err
		}
		gb := make([]int, len(t.GroupBy))
		for i, g := range t.GroupBy {
			gb[i] = colPos(out, g)
		}
		aggs := make([]ra.AggSpec, len(t.Aggs))
		for i, a := range t.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = remap(a.Arg, out)
			}
		}
		return &ra.Agg{Child: child, GroupBy: gb, Aggs: aggs}, allCols(len(gb) + len(aggs)), nil

	case *ra.OrderBy:
		childNeed := unionCols(need, t.Keys)
		child, out, err := p.prune(t.Child, childNeed)
		if err != nil {
			return nil, nil, err
		}
		keys := make([]int, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = colPos(out, k)
		}
		return &ra.OrderBy{Child: child, Keys: keys, Desc: t.Desc}, out, nil

	case *ra.Limit:
		// Barrier: the cutoff applies to the merged row sequence of the
		// full-width child; early merging could change which rows
		// survive.
		cs, err := ra.InferSchema(t.Child, p.cat)
		if err != nil {
			return nil, nil, err
		}
		child, _, err := p.prune(t.Child, allCols(cs.Arity()))
		if err != nil {
			return nil, nil, err
		}
		return &ra.Limit{Child: child, N: t.N}, allCols(cs.Arity()), nil
	}
	return nil, nil, fmt.Errorf("opt: prune: unknown node %T", n)
}

// pruneBinaryBarrier prunes both inputs of a Diff at full width.
func (p *pruner) pruneBinaryBarrier(t *ra.Diff) (ra.Node, []int, error) {
	ls, err := ra.InferSchema(t.Left, p.cat)
	if err != nil {
		return nil, nil, err
	}
	left, _, err := p.prune(t.Left, allCols(ls.Arity()))
	if err != nil {
		return nil, nil, err
	}
	right, _, err := p.prune(t.Right, allCols(ls.Arity()))
	if err != nil {
		return nil, nil, err
	}
	return &ra.Diff{Left: left, Right: right}, allCols(ls.Arity()), nil
}

// pruneNarrow prunes the child and materializes a narrowing projection
// when the child naturally outputs more than `need` — the insertion
// points are Join/Agg inputs, where each dropped column saves a range
// triple per intermediate tuple.
func (p *pruner) pruneNarrow(n ra.Node, need []int, s schema.Schema) (ra.Node, []int, error) {
	if len(need) == 0 {
		need = []int{0}
	}
	child, out, err := p.prune(n, need)
	if err != nil {
		return nil, nil, err
	}
	if len(out) > len(need) {
		return narrowTo(child, out, need, s), need, nil
	}
	return child, out, nil
}

// narrowTo wraps n (currently outputting columns `out` of the original
// schema s) in a projection keeping exactly `want` ⊆ out, preserving the
// original attribute names.
func narrowTo(n ra.Node, out, want []int, s schema.Schema) ra.Node {
	if equalCols(out, want) {
		return n
	}
	cols := make([]ra.ProjCol, len(want))
	for j, w := range want {
		name := ""
		if w < len(s.Attrs) {
			name = s.Attrs[w]
		}
		cols[j] = ra.ProjCol{E: expr.Col(colPos(out, w), name), Name: name}
	}
	return &ra.Project{Child: n, Cols: cols}
}

// remap re-points an expression's attribute indices from original column
// indices to positions within out.
func remap(e expr.Expr, out []int) expr.Expr {
	return expr.MapAttrs(e, func(a expr.Attr) expr.Attr {
		a.Idx = colPos(out, a.Idx)
		return a
	})
}

// colPos returns the position of column i within the ascending list out.
func colPos(out []int, i int) int {
	j := sort.SearchInts(out, i)
	if j >= len(out) || out[j] != i {
		// Unreachable for well-formed plans: prune always requests every
		// referenced column. Keep the original index so validation
		// catches the inconsistency instead of silently mis-wiring.
		return i
	}
	return j
}

// allCols returns [0..n).
func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// unionCols merges two ascending-or-arbitrary index lists into a sorted,
// deduplicated ascending list.
func unionCols(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, i := range a {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, i := range b {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// equalCols reports whether two index lists are identical.
func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// eliminateTrivial removes operators that provably do nothing:
//
//   - Select with the constant-true predicate (its condition triple is
//     (1,1,1), the multiplicative identity of N^AU);
//   - a Join condition that folded to constant true becomes a cross
//     product (skips per-pair condition evaluation);
//   - an identity projection — every column is the bare attribute at its
//     own position and the full child width is kept — whose names equal
//     the child schema exactly, so removing it cannot change any schema
//     an outer operator or the result would observe. (Its merge is
//     subsumed by the canonical merge every engine applies.)
//
// sound: every removed operator is an annotation-level identity — the
// constant-true condition triple (1,1,1) is the multiplicative identity
// of N^AU (Section 8), and an identity projection's merge is subsumed
// by the canonical merge every engine applies.
func eliminateTrivial(cat ra.Catalog, n ra.Node) (ra.Node, error) {
	var outerErr error
	out := ra.Transform(n, func(m ra.Node) ra.Node {
		if outerErr != nil {
			return m
		}
		switch t := m.(type) {
		case *ra.Select:
			if expr.IsConstTrue(t.Pred) {
				return t.Child
			}
		case *ra.Join:
			if t.Cond != nil && expr.IsConstTrue(t.Cond) {
				return &ra.Join{Left: t.Left, Right: t.Right}
			}
		case *ra.Project:
			cs, err := ra.InferSchema(t.Child, cat)
			if err != nil {
				outerErr = err
				return m
			}
			if len(t.Cols) != cs.Arity() {
				return m
			}
			for i, c := range t.Cols {
				a, ok := c.E.(expr.Attr)
				if !ok || a.Idx != i || c.Name != cs.Attrs[i] {
					return m
				}
			}
			return t.Child
		}
		return m
	})
	return out, outerErr
}
