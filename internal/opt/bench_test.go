package opt

import (
	"fmt"
	"testing"

	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
)

// The BenchmarkOptimize* family measures the optimizer itself — the
// per-query planning overhead QueryContext pays (prepared statements pay
// it once). Run with: go test ./internal/opt -run='^$' -bench BenchmarkOptimize

func benchOptimize(b *testing.B, cat ra.CatalogMap, q string) {
	b.Helper()
	plan, err := sql.Compile(q, cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeFilterJoin(b *testing.B) {
	cat := ra.CatalogMap{"r": schema.New("a", "b"), "s": schema.New("c", "d")}
	benchOptimize(b, cat, `SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 2 AND s.d >= 1`)
}

func BenchmarkOptimizeCrossToEqui(b *testing.B) {
	cat := ra.CatalogMap{"r": schema.New("a", "b"), "s": schema.New("c", "d")}
	benchOptimize(b, cat, `SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND r.b <= 3`)
}

func BenchmarkOptimizeAggregate(b *testing.B) {
	cat := ra.CatalogMap{"r": schema.New("a", "b"), "s": schema.New("c", "d")}
	benchOptimize(b, cat, `SELECT b, sum(a) AS s, count(*) AS n FROM r WHERE a < 4 GROUP BY b HAVING sum(a) > 1`)
}

// BenchmarkOptimizeWideChain: a four-way join over wide tables with a
// narrow output — the projection-pruning stress case.
func BenchmarkOptimizeWideChain(b *testing.B) {
	cat := ra.CatalogMap{}
	for i := 0; i < 4; i++ {
		cat[fmt.Sprintf("w%d", i)] = schema.New("k", "v0", "v1", "v2", "v3", "v4", "v5")
	}
	q := `SELECT w0.v0, w3.v5 FROM w0
	  JOIN w1 ON w0.k = w1.k
	  JOIN w2 ON w1.k = w2.k
	  JOIN w3 ON w2.k = w3.k
	  WHERE w0.v1 <= 3 AND w3.v2 > 1`
	benchOptimize(b, cat, q)
}
