package opt

import (
	"context"
	"strings"
	"testing"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/sql"
)

// adversarialDB: two big dense tables and one tiny one; the written order
// joins the two big tables first, the cost-based order should start from
// the tiny one.
func adversarialDB() (core.DB, mapProvider, ra.CatalogMap) {
	db := core.DB{
		"big1": uniformRel(400, 20, 0),
		"big2": uniformRel(400, 20, 0),
		"tiny": uniformRel(8, 8, 0),
	}
	rels := map[string]*core.Relation{}
	for n, r := range db {
		rels[n] = r
	}
	prov, cat := provFor(rels)
	return db, prov, cat
}

const adversarialQuery = `SELECT big1.a1, big2.a1, tiny.a1 FROM big1, big2, tiny ` +
	`WHERE big1.a0 = big2.a0 AND big2.a1 = tiny.a0 AND tiny.a1 <= 3`

func TestJoinReorderFiresOnAdversarialOrder(t *testing.T) {
	db, prov, cat := adversarialDB()
	plan, err := sql.Compile(adversarialQuery, cat)
	if err != nil {
		t.Fatal(err)
	}
	opl, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	final, ann, steps, err := CostOptimizeTrace(opl, cat, prov)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || steps[0].Rule != ReorderRule {
		t.Fatalf("expected %s to fire, got steps %+v\nplan:\n%s", ReorderRule, steps, ra.Render(opl))
	}
	// The reordered chain must not start with big1 |x| big2: the first
	// (deepest) join must involve tiny.
	rendered := ra.Render(final)
	if !strings.Contains(rendered, "tiny") {
		t.Fatalf("reordered plan lost the tiny table:\n%s", rendered)
	}
	var deepest *ra.Join
	var walk func(n ra.Node)
	walk = func(n ra.Node) {
		if j, ok := n.(*ra.Join); ok {
			deepest = j
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(final)
	if deepest == nil {
		t.Fatalf("no join in reordered plan:\n%s", rendered)
	}
	usesTiny := false
	for _, tb := range ra.Tables(deepest) {
		if tb == "tiny" {
			usesTiny = true
		}
	}
	if !usesTiny {
		t.Fatalf("deepest join does not involve tiny:\n%s", rendered)
	}
	if ann == nil {
		t.Fatal("nil annotations")
	}

	// Result-exactness: the reordered plan computes the identical
	// canonical result.
	want, err := core.Exec(context.Background(), opl, db, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Exec(context.Background(), final, db, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want.Sort().String() != got.Sort().String() {
		t.Fatalf("reordering changed the result:\nwant\n%s\ngot\n%s", want, got)
	}
	// And the schema (including names) is untouched.
	ws, _ := ra.InferSchema(opl, cat)
	gs, _ := ra.InferSchema(final, cat)
	if ws.String() != gs.String() {
		t.Fatalf("schema changed: %s vs %s", ws, gs)
	}
}

// TestJoinReorderKeepsGoodOrder: when the written order is already the
// cheap one, the plan is left alone (no gratuitous restoring Project).
func TestJoinReorderKeepsGoodOrder(t *testing.T) {
	_, prov, cat := adversarialDB()
	goodQuery := `SELECT big1.a1, big2.a1, tiny.a1 FROM tiny, big2, big1 ` +
		`WHERE tiny.a1 <= 3 AND big2.a1 = tiny.a0 AND big1.a0 = big2.a0`
	plan, err := sql.Compile(goodQuery, cat)
	if err != nil {
		t.Fatal(err)
	}
	opl, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	final, _, steps, err := CostOptimizeTrace(opl, cat, prov)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatalf("reorder fired on an already-good order:\n%s", ra.Render(final))
	}
	if !ra.Equal(final, opl) {
		t.Fatalf("plan changed without a step:\n%s\nvs\n%s", ra.Render(opl), ra.Render(final))
	}
}

// TestJoinReorderGateTwoTables: two-table joins are never restructured
// (build-side selection handles them without a permutation Project).
func TestJoinReorderGateTwoTables(t *testing.T) {
	_, prov, cat := adversarialDB()
	plan, err := sql.Compile(`SELECT big1.a1 FROM big1, tiny WHERE big1.a0 = tiny.a0`, cat)
	if err != nil {
		t.Fatal(err)
	}
	opl, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	final, ann, steps, err := CostOptimizeTrace(opl, cat, prov)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 || !ra.Equal(final, opl) {
		t.Fatalf("two-table join restructured:\n%s", ra.Render(final))
	}
	// But the join still gets a build side: tiny is on the right here, so
	// the default (build right) stands; flipped inputs must flip it.
	var join *ra.Join
	var walk func(n ra.Node)
	walk = func(n ra.Node) {
		if j, ok := n.(*ra.Join); ok && join == nil {
			join = j
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(final)
	if join == nil {
		t.Fatal("no join")
	}
	if ann.BuildLeft(join) {
		t.Fatal("BuildLeft set although the right input is smaller")
	}

	plan2, err := sql.Compile(`SELECT big1.a1 FROM tiny, big1 WHERE big1.a0 = tiny.a0`, cat)
	if err != nil {
		t.Fatal(err)
	}
	opl2, err := Optimize(plan2, cat)
	if err != nil {
		t.Fatal(err)
	}
	final2, ann2, err := CostOptimize(opl2, cat, prov)
	if err != nil {
		t.Fatal(err)
	}
	join = nil
	walk(final2)
	if join == nil {
		t.Fatal("no join in flipped plan")
	}
	if !ann2.BuildLeft(join) {
		t.Fatal("BuildLeft not set although the left input is smaller")
	}
}

// TestJoinReorderFourTables: a 4-table chain reorders and stays exact.
func TestJoinReorderFourTables(t *testing.T) {
	db := core.DB{
		"a": uniformRel(200, 10, 0.05),
		"b": uniformRel(200, 10, 0),
		"c": uniformRel(12, 12, 0),
		"d": uniformRel(6, 6, 0),
	}
	rels := map[string]*core.Relation{}
	for n, r := range db {
		rels[n] = r
	}
	prov, cat := provFor(rels)
	q := `SELECT a.a1, d.a1 FROM a, b, c, d ` +
		`WHERE a.a0 = b.a0 AND b.a1 = c.a0 AND c.a1 = d.a0`
	plan, err := sql.Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	opl, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	final, _, steps, err := CostOptimizeTrace(opl, cat, prov)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatalf("reorder did not fire:\n%s", ra.Render(opl))
	}
	want, err := core.Exec(context.Background(), opl, db, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Exec(context.Background(), final, db, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want.Sort().String() != got.Sort().String() {
		t.Fatal("4-table reordering changed the result")
	}
}

// TestJoinReorderFrozenBelowLimit: LIMIT truncates the first N merged
// rows in arrival order, so below a Limit the cost pass must neither
// reorder joins nor flip build sides — either would change which rows
// survive. The bridge query makes every order-sensitive mistake visible:
// reordering changes which pairs arrive first.
func TestJoinReorderFrozenBelowLimit(t *testing.T) {
	db, prov, cat := adversarialDB()
	queries := []string{
		adversarialQuery + ` LIMIT 3`,
		`SELECT big1.a1, big2.a1 FROM big1, big2, tiny ` +
			`WHERE big1.a0 = tiny.a0 AND big2.a0 = tiny.a1 LIMIT 3`,
		`SELECT big1.a1 FROM tiny, big1 WHERE big1.a0 = tiny.a0 LIMIT 2`,
	}
	for _, q := range queries {
		plan, err := sql.Compile(q, cat)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		opl, err := Optimize(plan, cat)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		final, ann, steps, err := CostOptimizeTrace(opl, cat, prov)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(steps) != 0 || !ra.Equal(final, opl) {
			t.Fatalf("%s: reorder fired below a Limit:\n%s", q, ra.Render(final))
		}
		var walk func(n ra.Node)
		walk = func(n ra.Node) {
			if j, ok := n.(*ra.Join); ok && ann.BuildLeft(j) {
				t.Fatalf("%s: build side flipped below a Limit:\n%s", q, ra.Render(final))
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(final)
		// The results must be identical multisets either way.
		want, err := core.Exec(context.Background(), opl, db, core.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := core.Exec(context.Background(), final, db, core.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if want.Sort().String() != got.Sort().String() {
			t.Fatalf("%s: cost pass changed a LIMIT result", q)
		}
	}
	// A Limit INSIDE a chain leaf freezes only that subtree: the outer
	// chain may still reorder. (The leaf's output multiset and order are
	// fixed before the outer joins consume it.)
	q := `SELECT big1.a1, big2.a1, x.a1 FROM big1, big2, (SELECT a0, a1 FROM tiny LIMIT 4) x ` +
		`WHERE big1.a0 = big2.a0 AND big2.a1 = x.a0`
	plan, err := sql.Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	opl, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	final, _, steps, err := CostOptimizeTrace(opl, cat, prov)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatalf("outer chain above a leaf-level Limit should still reorder:\n%s", ra.Render(final))
	}
	want, err := core.Exec(context.Background(), opl, db, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Exec(context.Background(), final, db, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want.Sort().String() != got.Sort().String() {
		t.Fatal("leaf-Limit reorder changed the result")
	}
}
