// Package ctxpoll provides the amortized cooperative-cancellation check
// shared by the executors (internal/core and internal/bag): hot loops
// call Due every iteration, but the context — whose Err takes a lock on
// cancellable contexts — is only consulted every Stride calls, keeping
// the overhead unmeasurable while bounding the reaction time to well
// under a millisecond of work.
package ctxpoll

import "context"

// Stride is how many hot-loop iterations may run between context checks.
const Stride = 2048

// Poll amortizes cooperative cancellation checks. A Poll is owned by a
// single goroutine (one per executor chunk) and must not be shared.
type Poll struct {
	ctx context.Context
	n   int
}

// New binds a poll to the query context.
func New(ctx context.Context) *Poll { return &Poll{ctx: ctx} }

// Due reports whether the query was cancelled, at stride granularity.
func (p *Poll) Due() error {
	if p.n++; p.n%Stride != 0 {
		return nil
	}
	return p.ctx.Err()
}
