package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// ---- AST -----------------------------------------------------------------

// queryAST is a select statement possibly combined with UNION / EXCEPT.
type queryAST struct {
	left  *selectAST
	op    string // "", "UNION", "EXCEPT"
	right *queryAST
}

type selectAST struct {
	distinct bool
	items    []selectItem
	from     []fromItem
	joins    []joinClause
	where    sqlExpr
	groupBy  []sqlExpr
	having   sqlExpr
	orderBy  []orderItem
	limit    int // -1 = none
}

type selectItem struct {
	star  bool
	ex    sqlExpr
	alias string
}

type fromItem struct {
	table string
	sub   *queryAST
	alias string
}

type joinClause struct {
	item fromItem
	on   sqlExpr
}

type orderItem struct {
	ex   sqlExpr
	desc bool
}

// sqlExpr is the parsed scalar/aggregate expression tree.
type sqlExpr interface{ exprNode() }

type litExpr struct {
	kind string // "int", "float", "string", "bool", "null"
	text string
}

type colExpr struct{ name string } // possibly qualified a.b

type unaryExpr struct {
	op string // "NOT", "-"
	e  sqlExpr
}

type binExpr struct {
	op   string // AND OR = <> < <= > >= + - * /
	l, r sqlExpr
}

type isNullExpr struct {
	e   sqlExpr
	not bool
}

type betweenExpr struct {
	e, lo, hi sqlExpr
}

type inExpr struct {
	e    sqlExpr
	list []sqlExpr
}

type caseExpr struct {
	whens []whenClause
	els   sqlExpr
}

type whenClause struct{ cond, result sqlExpr }

type funcExpr struct {
	name     string // lowercase
	star     bool
	distinct bool
	args     []sqlExpr
}

func (litExpr) exprNode()     {}
func (colExpr) exprNode()     {}
func (unaryExpr) exprNode()   {}
func (binExpr) exprNode()     {}
func (isNullExpr) exprNode()  {}
func (betweenExpr) exprNode() {}
func (inExpr) exprNode()      {}
func (caseExpr) exprNode()    {}
func (funcExpr) exprNode()    {}

// ---- parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

// Parse parses a SQL query string.
func Parse(src string) (*queryAST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) error {
	if p.accept(k, text) {
		return nil
	}
	return p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: at position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*queryAST, error) {
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	q := &queryAST{left: sel}
	for {
		switch {
		case p.accept(tokKeyword, "UNION"):
			p.accept(tokKeyword, "ALL") // bag semantics: UNION = UNION ALL
			rest, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			return &queryAST{left: sel, op: "UNION", right: rest}, nil
		case p.accept(tokKeyword, "EXCEPT"):
			p.accept(tokKeyword, "ALL")
			rest, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			return &queryAST{left: sel, op: "EXCEPT", right: rest}, nil
		default:
			return q, nil
		}
	}
}

func (p *parser) parseSelect() (*selectAST, error) {
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &selectAST{limit: -1}
	sel.distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.items = append(sel.items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		sel.from = append(sel.from, fi)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	for {
		if p.accept(tokKeyword, "CROSS") {
			if err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			sel.joins = append(sel.joins, joinClause{item: fi})
			continue
		}
		if p.accept(tokKeyword, "INNER") {
			if err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.joins = append(sel.joins, joinClause{item: fi, on: on})
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.groupBy = append(sel.groupBy, g)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := orderItem{ex: e}
			if p.accept(tokKeyword, "DESC") {
				oi.desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.orderBy = append(sel.orderBy, oi)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		if !p.at(tokNumber, "") {
			return nil, p.errf("expected LIMIT count")
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil {
			return nil, p.errf("bad LIMIT: %v", err)
		}
		sel.limit = n
		p.advance()
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.accept(tokSymbol, "*") {
		return selectItem{star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{ex: e}
	if p.accept(tokKeyword, "AS") {
		if !p.at(tokIdent, "") {
			return selectItem{}, p.errf("expected alias after AS")
		}
		item.alias = p.cur().text
		p.advance()
	} else if p.at(tokIdent, "") {
		item.alias = p.cur().text
		p.advance()
	}
	return item, nil
}

func (p *parser) parseFromItem() (fromItem, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseQuery()
		if err != nil {
			return fromItem{}, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return fromItem{}, err
		}
		fi := fromItem{sub: sub}
		p.accept(tokKeyword, "AS")
		if p.at(tokIdent, "") {
			fi.alias = p.cur().text
			p.advance()
		} else {
			return fromItem{}, p.errf("subquery in FROM requires an alias")
		}
		return fi, nil
	}
	if !p.at(tokIdent, "") {
		return fromItem{}, p.errf("expected table name, found %q", p.cur().text)
	}
	fi := fromItem{table: p.cur().text}
	p.advance()
	p.accept(tokKeyword, "AS")
	if p.at(tokIdent, "") {
		fi.alias = p.cur().text
		p.advance()
	}
	return fi, nil
}

// Expression precedence: OR < AND < NOT < comparison < additive <
// multiplicative < unary < primary.
func (p *parser) parseExpr() (sqlExpr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (sqlExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (sqlExpr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "NOT", e: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (sqlExpr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		not := p.accept(tokKeyword, "NOT")
		if err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return isNullExpr{e: l, not: not}, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return betweenExpr{e: l, lo: lo, hi: hi}, nil
	}
	if p.accept(tokKeyword, "IN") {
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []sqlExpr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return inExpr{e: l, list: list}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return binExpr{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (sqlExpr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "+", l: l, r: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (sqlExpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "*", l: l, r: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "/", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (sqlExpr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "-", e: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sqlExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			return litExpr{kind: "float", text: t.text}, nil
		}
		return litExpr{kind: "int", text: t.text}, nil
	case t.kind == tokString:
		p.advance()
		return litExpr{kind: "string", text: t.text}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.advance()
		return litExpr{kind: "bool", text: strings.ToLower(t.text)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.advance()
		return litExpr{kind: "null"}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func (p *parser) parseCase() (sqlExpr, error) {
	if err := p.expect(tokKeyword, "CASE"); err != nil {
		return nil, err
	}
	var ce caseExpr
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.whens = append(ce.whens, whenClause{cond: cond, result: res})
	}
	if len(ce.whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.els = els
	}
	if err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseIdentExpr() (sqlExpr, error) {
	name := p.cur().text
	p.advance()
	// Function call?
	if p.accept(tokSymbol, "(") {
		f := funcExpr{name: strings.ToLower(name)}
		f.distinct = p.accept(tokKeyword, "DISTINCT")
		if p.accept(tokSymbol, "*") {
			f.star = true
		} else if !p.at(tokSymbol, ")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.args = append(f.args, a)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	// Qualified column a.b?
	if p.accept(tokSymbol, ".") {
		if !p.at(tokIdent, "") {
			return nil, p.errf("expected column after %q.", name)
		}
		col := p.cur().text
		p.advance()
		return colExpr{name: name + "." + col}, nil
	}
	return colExpr{name: name}, nil
}
