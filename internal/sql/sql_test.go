package sql

import (
	"context"
	"strings"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

func row(vs ...interface{}) types.Tuple {
	out := make(types.Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			out[i] = types.Int(int64(x))
		case float64:
			out[i] = types.Float(x)
		case string:
			out[i] = types.String(x)
		case types.Value:
			out[i] = x
		default:
			panic("bad value")
		}
	}
	return out
}

func testDB() bag.DB {
	emp := bag.New(schema.New("id", "name", "dept", "salary"))
	emp.Add(row(1, "ann", "eng", 100), 1)
	emp.Add(row(2, "bob", "eng", 80), 1)
	emp.Add(row(3, "cat", "ops", 60), 1)
	emp.Add(row(4, "dan", "ops", 70), 1)
	dept := bag.New(schema.New("name", "city"))
	dept.Add(row("eng", "nyc"), 1)
	dept.Add(row("ops", "sf"), 1)
	return bag.DB{"emp": emp, "dept": dept}
}

func runSQL(t *testing.T, q string) *bag.Relation {
	t.Helper()
	db := testDB()
	plan, err := Compile(q, ra.CatalogMap(db.Schemas()))
	if err != nil {
		t.Fatalf("compile %q: %v", q, err)
	}
	out, err := bag.Exec(context.Background(), plan, db)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return out
}

func compileErr(t *testing.T, q string) error {
	t.Helper()
	db := testDB()
	_, err := Compile(q, ra.CatalogMap(db.Schemas()))
	if err == nil {
		t.Fatalf("expected error for %q", q)
	}
	return err
}

func TestSelectWhere(t *testing.T) {
	out := runSQL(t, "SELECT name FROM emp WHERE salary > 65")
	if out.Size() != 3 {
		t.Errorf("rows: %d\n%s", out.Size(), out)
	}
	out = runSQL(t, "SELECT name, salary FROM emp WHERE dept = 'eng' AND salary >= 100")
	if out.Size() != 1 || out.Count(row("ann", 100)) != 1 {
		t.Errorf("filtered:\n%s", out)
	}
}

func TestStarAndAliases(t *testing.T) {
	out := runSQL(t, "SELECT * FROM emp")
	if out.Schema.Arity() != 4 || out.Size() != 4 {
		t.Errorf("star:\n%s", out)
	}
	out = runSQL(t, "SELECT salary * 2 AS double_pay FROM emp WHERE id = 1")
	if out.Count(row(200)) != 1 {
		t.Errorf("alias:\n%s", out)
	}
	if out.Schema.Attrs[0] != "double_pay" {
		t.Errorf("alias name: %s", out.Schema)
	}
	// Implicit alias without AS.
	out = runSQL(t, "SELECT salary s FROM emp WHERE id = 1")
	if out.Schema.Attrs[0] != "s" {
		t.Errorf("implicit alias: %s", out.Schema)
	}
}

func TestJoins(t *testing.T) {
	out := runSQL(t, "SELECT e.name, d.city FROM emp e JOIN dept d ON e.dept = d.name WHERE d.city = 'nyc'")
	if out.Size() != 2 {
		t.Errorf("join:\n%s", out)
	}
	// Comma join + WHERE.
	out = runSQL(t, "SELECT e.name FROM emp e, dept d WHERE e.dept = d.name AND d.city = 'sf'")
	if out.Size() != 2 {
		t.Errorf("comma join:\n%s", out)
	}
	// CROSS JOIN.
	out = runSQL(t, "SELECT e.name FROM emp e CROSS JOIN dept d")
	if out.Size() != 8 {
		t.Errorf("cross join:\n%s", out)
	}
	// INNER JOIN keyword.
	out = runSQL(t, "SELECT e.name FROM emp e INNER JOIN dept d ON e.dept = d.name")
	if out.Size() != 4 {
		t.Errorf("inner join:\n%s", out)
	}
}

func TestGroupByHaving(t *testing.T) {
	out := runSQL(t, "SELECT dept, sum(salary) AS total, count(*) AS cnt FROM emp GROUP BY dept")
	if out.Count(row("eng", 180, 2)) != 1 || out.Count(row("ops", 130, 2)) != 1 {
		t.Errorf("group by:\n%s", out)
	}
	out = runSQL(t, "SELECT dept, sum(salary) AS total FROM emp GROUP BY dept HAVING sum(salary) > 150")
	if out.Size() != 1 || out.Count(row("eng", 180)) != 1 {
		t.Errorf("having:\n%s", out)
	}
	// avg / min / max.
	out = runSQL(t, "SELECT dept, avg(salary) a, min(salary) mn, max(salary) mx FROM emp GROUP BY dept")
	if out.Count(row("eng", 90.0, 80, 100)) != 1 {
		t.Errorf("avg/min/max:\n%s", out)
	}
	// Aggregation without group-by.
	out = runSQL(t, "SELECT count(*) AS c, sum(salary) AS s FROM emp")
	if out.Count(row(4, 310)) != 1 {
		t.Errorf("global agg:\n%s", out)
	}
	// Expression over aggregates.
	out = runSQL(t, "SELECT dept, sum(salary) / count(*) AS per_head FROM emp GROUP BY dept")
	if out.Count(row("eng", 90.0)) != 1 {
		t.Errorf("agg expr:\n%s", out)
	}
	// Computed group-by expression (division yields floats: 1, .8, .7, .6).
	out = runSQL(t, "SELECT salary / 100, count(*) FROM emp GROUP BY salary / 100")
	if out.Len() != 4 {
		t.Errorf("computed group-by:\n%s", out)
	}
	// Computed group-by with collisions.
	out = runSQL(t, "SELECT count(*) FROM emp GROUP BY salary > 65")
	if out.Len() != 2 {
		t.Errorf("boolean group-by:\n%s", out)
	}
}

func TestCaseBetweenInDistinctOrder(t *testing.T) {
	out := runSQL(t, `SELECT name, CASE WHEN salary >= 80 THEN 'high' ELSE 'low' END AS band FROM emp`)
	if out.Count(row("ann", "high")) != 1 || out.Count(row("cat", "low")) != 1 {
		t.Errorf("case:\n%s", out)
	}
	out = runSQL(t, "SELECT name FROM emp WHERE salary BETWEEN 60 AND 80")
	if out.Size() != 3 {
		t.Errorf("between:\n%s", out)
	}
	out = runSQL(t, "SELECT name FROM emp WHERE dept IN ('ops')")
	if out.Size() != 2 {
		t.Errorf("in:\n%s", out)
	}
	out = runSQL(t, "SELECT DISTINCT dept FROM emp")
	if out.Len() != 2 || out.Size() != 2 {
		t.Errorf("distinct:\n%s", out)
	}
	out = runSQL(t, "SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2")
	if out.Len() != 2 || out.Tuples[0][1] != types.Int(100) {
		t.Errorf("order/limit:\n%s", out)
	}
	out = runSQL(t, "SELECT name, salary FROM emp ORDER BY 2")
	if out.Tuples[0][1] != types.Int(60) {
		t.Errorf("positional order:\n%s", out)
	}
}

func TestUnionExceptSubquery(t *testing.T) {
	out := runSQL(t, "SELECT name FROM emp WHERE dept = 'eng' UNION SELECT name FROM emp WHERE salary > 65")
	// eng: ann,bob ; >65: ann,bob,dan -> bag union of 2+3 = 5
	if out.Size() != 5 {
		t.Errorf("union:\n%s", out)
	}
	out = runSQL(t, "SELECT name FROM emp EXCEPT SELECT name FROM emp WHERE dept = 'eng'")
	if out.Size() != 2 {
		t.Errorf("except:\n%s", out)
	}
	out = runSQL(t, `SELECT t.dept, t.total FROM (SELECT dept, sum(salary) AS total FROM emp GROUP BY dept) t WHERE t.total > 150`)
	if out.Size() != 1 || out.Count(row("eng", 180)) != 1 {
		t.Errorf("subquery:\n%s", out)
	}
}

func TestNullAndBooleans(t *testing.T) {
	out := runSQL(t, "SELECT name FROM emp WHERE name IS NOT NULL AND TRUE")
	if out.Size() != 4 {
		t.Errorf("is not null:\n%s", out)
	}
	out = runSQL(t, "SELECT name FROM emp WHERE name IS NULL")
	if out.Size() != 0 {
		t.Errorf("is null:\n%s", out)
	}
	out = runSQL(t, "SELECT least(salary, 75) AS v FROM emp WHERE id = 1")
	if out.Count(row(75)) != 1 {
		t.Errorf("least:\n%s", out)
	}
	out = runSQL(t, "SELECT greatest(salary, -salary) AS v FROM emp WHERE id = 3")
	if out.Count(row(60)) != 1 {
		t.Errorf("greatest/negation:\n%s", out)
	}
	out = runSQL(t, "SELECT count(name) AS c FROM emp")
	if out.Count(row(4)) != 1 {
		t.Errorf("count(col):\n%s", out)
	}
	out = runSQL(t, "SELECT count(DISTINCT dept) AS c FROM emp")
	if out.Count(row(2)) != 1 {
		t.Errorf("count distinct:\n%s", out)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM emp",
		"SELECT name",
		"SELECT name FROM",
		"SELECT name FROM emp WHERE",
		"SELECT name FROM emp GROUP",
		"SELECT name FROM (SELECT name FROM emp)", // missing alias
		"SELECT name FROM emp ORDER",
		"SELECT nope FROM emp",
		"SELECT name FROM nosuch",
		"SELECT sum(salary) FROM emp WHERE sum(salary) > 1",
		"SELECT name, sum(salary) FROM emp GROUP BY dept",
		"SELECT * FROM emp GROUP BY dept",
		"SELECT name FROM emp WHERE salary @ 3",
		"SELECT 'unterminated FROM emp",
		"SELECT name FROM emp LIMIT x",
		"SELECT frob(salary) FROM emp",
		"SELECT name FROM emp UNION SELECT name, salary FROM emp",
		"SELECT name FROM emp ORDER BY salary + 1",
		"SELECT name FROM emp ORDER BY 9",
		"SELECT CASE END FROM emp",
		"SELECT name FROM emp trailing garbage",
		"SELECT group_stuff FROM emp GROUP BY sum(salary)",
	}
	for _, q := range bad {
		compileErr(t, q)
	}
}

func TestCommentsAndSemicolon(t *testing.T) {
	out := runSQL(t, "SELECT name FROM emp -- a comment\nWHERE id = 1;")
	if out.Size() != 1 {
		t.Errorf("comment/semicolon:\n%s", out)
	}
	out = runSQL(t, "SELECT 'it''s' AS s FROM emp WHERE id = 1")
	if out.Count(row("it's")) != 1 {
		t.Errorf("escaped quote:\n%s", out)
	}
}

func TestPlanShape(t *testing.T) {
	db := testDB()
	plan, err := Compile("SELECT dept, sum(salary) AS t FROM emp GROUP BY dept HAVING sum(salary) > 10 ORDER BY dept", ra.CatalogMap(db.Schemas()))
	if err != nil {
		t.Fatal(err)
	}
	rendered := ra.Render(plan)
	for _, want := range []string{"OrderBy", "Project", "Select", "Agg", "Scan(emp)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("plan missing %s:\n%s", want, rendered)
		}
	}
}
