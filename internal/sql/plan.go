package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Compile parses and plans a SQL query against the given catalog, producing
// an engine-agnostic RA_agg plan.
func Compile(src string, cat ra.Catalog) (ra.Node, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return planQuery(q, cat)
}

func planQuery(q *queryAST, cat ra.Catalog) (ra.Node, error) {
	left, err := planSelect(q.left, cat)
	if err != nil {
		return nil, err
	}
	if q.op == "" {
		return left, nil
	}
	right, err := planQuery(q.right, cat)
	if err != nil {
		return nil, err
	}
	ls, err := ra.InferSchema(left, cat)
	if err != nil {
		return nil, err
	}
	rs, err := ra.InferSchema(right, cat)
	if err != nil {
		return nil, err
	}
	if ls.Arity() != rs.Arity() {
		return nil, fmt.Errorf("sql: %s arity mismatch: %s vs %s", q.op, ls, rs)
	}
	if q.op == "UNION" {
		return &ra.Union{Left: left, Right: right}, nil
	}
	return &ra.Diff{Left: left, Right: right}, nil
}

var aggFuncs = map[string]ra.AggFn{
	"sum": ra.AggSum, "count": ra.AggCount, "min": ra.AggMin,
	"max": ra.AggMax, "avg": ra.AggAvg,
}

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(e sqlExpr) bool {
	switch n := e.(type) {
	case litExpr, colExpr:
		return false
	case unaryExpr:
		return hasAggregate(n.e)
	case binExpr:
		return hasAggregate(n.l) || hasAggregate(n.r)
	case isNullExpr:
		return hasAggregate(n.e)
	case betweenExpr:
		return hasAggregate(n.e) || hasAggregate(n.lo) || hasAggregate(n.hi)
	case inExpr:
		if hasAggregate(n.e) {
			return true
		}
		for _, x := range n.list {
			if hasAggregate(x) {
				return true
			}
		}
		return false
	case caseExpr:
		for _, w := range n.whens {
			if hasAggregate(w.cond) || hasAggregate(w.result) {
				return true
			}
		}
		return n.els != nil && hasAggregate(n.els)
	case funcExpr:
		if _, ok := aggFuncs[n.name]; ok {
			return true
		}
		for _, a := range n.args {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	}
	return false
}

// qualify renames a node's attributes to alias.attr via an identity
// projection (skipped when already qualified with the same alias).
func qualify(n ra.Node, s schema.Schema, alias string) (ra.Node, schema.Schema) {
	cols := make([]ra.ProjCol, s.Arity())
	attrs := make([]string, s.Arity())
	for i, a := range s.Attrs {
		base := a
		if j := strings.LastIndex(a, "."); j >= 0 {
			base = a[j+1:]
		}
		attrs[i] = alias + "." + base
		cols[i] = ra.ProjCol{E: expr.Col(i, a), Name: attrs[i]}
	}
	return &ra.Project{Child: n, Cols: cols}, schema.Schema{Attrs: attrs}
}

// planFromItem plans one FROM entry.
func planFromItem(fi fromItem, cat ra.Catalog) (ra.Node, schema.Schema, error) {
	var node ra.Node
	var s schema.Schema
	var err error
	switch {
	case fi.sub != nil:
		node, err = planQuery(fi.sub, cat)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		s, err = ra.InferSchema(node, cat)
		if err != nil {
			return nil, schema.Schema{}, err
		}
	default:
		node = &ra.Scan{Table: fi.table}
		s, err = cat.TableSchema(fi.table)
		if err != nil {
			return nil, schema.Schema{}, err
		}
	}
	alias := fi.alias
	if alias == "" {
		alias = fi.table
	}
	if alias != "" {
		node, s = qualify(node, s, alias)
	}
	return node, s, nil
}

func planSelect(sel *selectAST, cat ra.Catalog) (ra.Node, error) {
	// FROM clause: cross products plus explicit joins.
	var cur ra.Node
	var curS schema.Schema
	for i, fi := range sel.from {
		node, s, err := planFromItem(fi, cat)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			cur, curS = node, s
			continue
		}
		cur = &ra.Join{Left: cur, Right: node}
		curS = curS.Concat(s)
	}
	for _, jc := range sel.joins {
		node, s, err := planFromItem(jc.item, cat)
		if err != nil {
			return nil, err
		}
		joinedS := curS.Concat(s)
		var cond expr.Expr
		if jc.on != nil {
			cond, err = compileScalar(jc.on, joinedS)
			if err != nil {
				return nil, err
			}
		}
		cur = &ra.Join{Left: cur, Right: node, Cond: cond}
		curS = joinedS
	}
	if cur == nil {
		return nil, fmt.Errorf("sql: empty FROM clause")
	}
	// WHERE.
	if sel.where != nil {
		if hasAggregate(sel.where) {
			return nil, fmt.Errorf("sql: aggregates are not allowed in WHERE")
		}
		pred, err := compileScalar(sel.where, curS)
		if err != nil {
			return nil, err
		}
		cur = &ra.Select{Child: cur, Pred: pred}
	}

	grouped := len(sel.groupBy) > 0
	hasAggs := grouped
	for _, it := range sel.items {
		if !it.star && hasAggregate(it.ex) {
			hasAggs = true
		}
	}
	if sel.having != nil {
		hasAggs = true
	}

	var out ra.Node
	var outS schema.Schema
	var err error
	if hasAggs {
		out, outS, err = planAggregateSelect(sel, cur, curS)
	} else {
		out, outS, err = planPlainSelect(sel, cur, curS)
	}
	if err != nil {
		return nil, err
	}

	if sel.distinct {
		out = &ra.Distinct{Child: out}
	}
	// ORDER BY over the output schema (names or positions).
	if len(sel.orderBy) > 0 {
		keys := make([]int, 0, len(sel.orderBy))
		desc := false
		for _, oi := range sel.orderBy {
			idx, err := resolveOrderKey(oi.ex, outS)
			if err != nil {
				return nil, err
			}
			keys = append(keys, idx)
			desc = oi.desc // single direction applies to the whole sort
		}
		out = &ra.OrderBy{Child: out, Keys: keys, Desc: desc}
	}
	if sel.limit >= 0 {
		out = &ra.Limit{Child: out, N: sel.limit}
	}
	return out, nil
}

func resolveOrderKey(e sqlExpr, s schema.Schema) (int, error) {
	switch n := e.(type) {
	case colExpr:
		return s.MustIndexOf(n.name)
	case litExpr:
		if n.kind == "int" {
			i, err := strconv.Atoi(n.text)
			if err != nil || i < 1 || i > s.Arity() {
				return -1, fmt.Errorf("sql: ORDER BY position %s out of range", n.text)
			}
			return i - 1, nil
		}
	}
	return -1, fmt.Errorf("sql: ORDER BY supports column names and positions only")
}

// planPlainSelect handles selects without aggregation.
func planPlainSelect(sel *selectAST, cur ra.Node, curS schema.Schema) (ra.Node, schema.Schema, error) {
	var cols []ra.ProjCol
	var attrs []string
	for i, it := range sel.items {
		if it.star {
			for j, a := range curS.Attrs {
				cols = append(cols, ra.ProjCol{E: expr.Col(j, a), Name: a})
				attrs = append(attrs, a)
			}
			continue
		}
		e, err := compileScalar(it.ex, curS)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		name := it.alias
		if name == "" {
			name = defaultName(it.ex, i)
		}
		cols = append(cols, ra.ProjCol{E: e, Name: name})
		attrs = append(attrs, name)
	}
	return &ra.Project{Child: cur, Cols: cols}, schema.Schema{Attrs: attrs}, nil
}

func defaultName(e sqlExpr, i int) string {
	switch n := e.(type) {
	case colExpr:
		if j := strings.LastIndex(n.name, "."); j >= 0 {
			return n.name[j+1:]
		}
		return n.name
	case funcExpr:
		return n.name
	}
	return fmt.Sprintf("col%d", i+1)
}

// aggEnv collects the aggregate calls of a query and their output slots.
type aggEnv struct {
	srcSchema schema.Schema
	groupExpr []sqlExpr // group-by expressions (as written)
	groupIdx  []int     // their column positions in the (pre-projected) source
	specs     []ra.AggSpec
	keys      []string // rendered keys of collected aggregates
}

// collect registers an aggregate call and returns its position in the agg
// output (after the group-by columns).
func (env *aggEnv) collect(f funcExpr) (int, error) {
	fn, ok := aggFuncs[f.name]
	if !ok {
		return -1, fmt.Errorf("sql: unknown aggregate %q", f.name)
	}
	var arg expr.Expr
	var err error
	key := f.name
	if f.star {
		key += "(*)"
	} else {
		if len(f.args) != 1 {
			return -1, fmt.Errorf("sql: aggregate %s expects one argument", f.name)
		}
		arg, err = compileScalar(f.args[0], env.srcSchema)
		if err != nil {
			return -1, err
		}
		key += "(" + arg.String() + ")"
	}
	if f.distinct {
		key = "distinct:" + key
	}
	for i, k := range env.keys {
		if k == key {
			return len(env.groupIdx) + i, nil
		}
	}
	env.keys = append(env.keys, key)
	env.specs = append(env.specs, ra.AggSpec{
		Fn: fn, Arg: arg, Distinct: f.distinct,
		Name: fmt.Sprintf("agg%d", len(env.specs)+1),
	})
	return len(env.groupIdx) + len(env.specs) - 1, nil
}

// groupSlot finds the agg-output position of a group-by expression, or -1.
func (env *aggEnv) groupSlot(e sqlExpr) int {
	for i, g := range env.groupExpr {
		if renderSQL(g) == renderSQL(e) {
			return i
		}
	}
	return -1
}

// renderSQL gives a stable structural key for matching group-by items.
func renderSQL(e sqlExpr) string { return fmt.Sprintf("%#v", e) }

// planAggregateSelect handles grouped / aggregated selects.
func planAggregateSelect(sel *selectAST, cur ra.Node, curS schema.Schema) (ra.Node, schema.Schema, error) {
	env := &aggEnv{srcSchema: curS, groupExpr: sel.groupBy}

	// Resolve group-by expressions: plain columns reference the source;
	// computed expressions are appended by a pre-projection.
	var pre []ra.ProjCol
	needPre := false
	for i, a := range curS.Attrs {
		pre = append(pre, ra.ProjCol{E: expr.Col(i, a), Name: a})
	}
	preS := curS
	for gi, g := range sel.groupBy {
		if c, ok := g.(colExpr); ok {
			idx, err := curS.MustIndexOf(c.name)
			if err != nil {
				return nil, schema.Schema{}, err
			}
			env.groupIdx = append(env.groupIdx, idx)
			continue
		}
		if hasAggregate(g) {
			return nil, schema.Schema{}, fmt.Errorf("sql: aggregates are not allowed in GROUP BY")
		}
		e, err := compileScalar(g, curS)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		name := fmt.Sprintf("groupexpr%d", gi+1)
		pre = append(pre, ra.ProjCol{E: e, Name: name})
		preS = schema.Schema{Attrs: append(append([]string{}, preS.Attrs...), name)}
		env.groupIdx = append(env.groupIdx, preS.Arity()-1)
		needPre = true
	}
	if needPre {
		cur = &ra.Project{Child: cur, Cols: pre}
		env.srcSchema = preS
	}

	// Collect aggregates from the SELECT list and HAVING, and build the
	// post-aggregation expressions.
	groupNames := make([]string, len(env.groupIdx))
	for i, idx := range env.groupIdx {
		groupNames[i] = env.srcSchema.Attrs[idx]
	}

	var postCols []ra.ProjCol
	var outAttrs []string
	for i, it := range sel.items {
		if it.star {
			return nil, schema.Schema{}, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY / aggregates")
		}
		name := it.alias
		if name == "" {
			name = defaultName(it.ex, i)
		}
		post, err := compilePostAgg(it.ex, env)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		postCols = append(postCols, ra.ProjCol{E: post, Name: name})
		outAttrs = append(outAttrs, name)
	}
	var havingExpr expr.Expr
	if sel.having != nil {
		var err error
		havingExpr, err = compilePostAgg(sel.having, env)
		if err != nil {
			return nil, schema.Schema{}, err
		}
	}

	agg := &ra.Agg{Child: cur, GroupBy: env.groupIdx, Aggs: env.specs}
	var out ra.Node = agg
	if havingExpr != nil {
		out = &ra.Select{Child: out, Pred: havingExpr}
	}
	out = &ra.Project{Child: out, Cols: postCols}
	return out, schema.Schema{Attrs: outAttrs}, nil
}

// compilePostAgg compiles an expression evaluated over the aggregation
// output: group-by expressions and aggregate calls become column
// references.
func compilePostAgg(e sqlExpr, env *aggEnv) (expr.Expr, error) {
	if slot := env.groupSlot(e); slot >= 0 {
		return expr.Col(slot, renderName(e)), nil
	}
	switch n := e.(type) {
	case litExpr:
		return compileLit(n)
	case colExpr:
		// A bare column must be one of the group-by columns.
		for i, idx := range env.groupIdx {
			if matchesName(env.srcSchema.Attrs[idx], n.name) {
				return expr.Col(i, n.name), nil
			}
		}
		return nil, fmt.Errorf("sql: column %q must appear in GROUP BY or an aggregate", n.name)
	case funcExpr:
		if _, ok := aggFuncs[n.name]; ok {
			slot, err := env.collect(n)
			if err != nil {
				return nil, err
			}
			return expr.Col(slot, n.name), nil
		}
		args := make([]expr.Expr, len(n.args))
		for i, a := range n.args {
			x, err := compilePostAgg(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return compileFunc(n.name, args)
	case unaryExpr:
		x, err := compilePostAgg(n.e, env)
		if err != nil {
			return nil, err
		}
		return compileUnary(n.op, x)
	case binExpr:
		l, err := compilePostAgg(n.l, env)
		if err != nil {
			return nil, err
		}
		r, err := compilePostAgg(n.r, env)
		if err != nil {
			return nil, err
		}
		return compileBin(n.op, l, r)
	case isNullExpr:
		x, err := compilePostAgg(n.e, env)
		if err != nil {
			return nil, err
		}
		var out expr.Expr = expr.IsNull{E: x}
		if n.not {
			out = expr.Not{E: out}
		}
		return out, nil
	case betweenExpr:
		x, err := compilePostAgg(n.e, env)
		if err != nil {
			return nil, err
		}
		lo, err := compilePostAgg(n.lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := compilePostAgg(n.hi, env)
		if err != nil {
			return nil, err
		}
		return expr.And(expr.Geq(x, lo), expr.Leq(x, hi)), nil
	case inExpr:
		x, err := compilePostAgg(n.e, env)
		if err != nil {
			return nil, err
		}
		var ors []expr.Expr
		for _, item := range n.list {
			y, err := compilePostAgg(item, env)
			if err != nil {
				return nil, err
			}
			ors = append(ors, expr.Eq(x, y))
		}
		return expr.Or(ors...), nil
	case caseExpr:
		return compileCase(n, func(e sqlExpr) (expr.Expr, error) { return compilePostAgg(e, env) })
	}
	return nil, fmt.Errorf("sql: unsupported expression %T after aggregation", e)
}

func renderName(e sqlExpr) string {
	if c, ok := e.(colExpr); ok {
		return c.name
	}
	return ""
}

func matchesName(attr, name string) bool {
	if strings.EqualFold(attr, name) {
		return true
	}
	la, ln := strings.ToLower(attr), strings.ToLower(name)
	return strings.HasSuffix(la, "."+ln) || strings.HasSuffix(ln, "."+la)
}

// compileScalar compiles a non-aggregate expression against a schema.
func compileScalar(e sqlExpr, s schema.Schema) (expr.Expr, error) {
	switch n := e.(type) {
	case litExpr:
		return compileLit(n)
	case colExpr:
		idx, err := s.MustIndexOf(n.name)
		if err != nil {
			return nil, err
		}
		return expr.Col(idx, n.name), nil
	case unaryExpr:
		x, err := compileScalar(n.e, s)
		if err != nil {
			return nil, err
		}
		return compileUnary(n.op, x)
	case binExpr:
		l, err := compileScalar(n.l, s)
		if err != nil {
			return nil, err
		}
		r, err := compileScalar(n.r, s)
		if err != nil {
			return nil, err
		}
		return compileBin(n.op, l, r)
	case isNullExpr:
		x, err := compileScalar(n.e, s)
		if err != nil {
			return nil, err
		}
		var out expr.Expr = expr.IsNull{E: x}
		if n.not {
			out = expr.Not{E: out}
		}
		return out, nil
	case betweenExpr:
		x, err := compileScalar(n.e, s)
		if err != nil {
			return nil, err
		}
		lo, err := compileScalar(n.lo, s)
		if err != nil {
			return nil, err
		}
		hi, err := compileScalar(n.hi, s)
		if err != nil {
			return nil, err
		}
		return expr.And(expr.Geq(x, lo), expr.Leq(x, hi)), nil
	case inExpr:
		x, err := compileScalar(n.e, s)
		if err != nil {
			return nil, err
		}
		var ors []expr.Expr
		for _, item := range n.list {
			y, err := compileScalar(item, s)
			if err != nil {
				return nil, err
			}
			ors = append(ors, expr.Eq(x, y))
		}
		return expr.Or(ors...), nil
	case caseExpr:
		return compileCase(n, func(e sqlExpr) (expr.Expr, error) { return compileScalar(e, s) })
	case funcExpr:
		if _, ok := aggFuncs[n.name]; ok {
			return nil, fmt.Errorf("sql: aggregate %s is not allowed here", n.name)
		}
		args := make([]expr.Expr, len(n.args))
		for i, a := range n.args {
			x, err := compileScalar(a, s)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return compileFunc(n.name, args)
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}

func compileLit(n litExpr) (expr.Expr, error) {
	switch n.kind {
	case "int":
		i, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q", n.text)
		}
		return expr.CInt(i), nil
	case "float":
		f, err := strconv.ParseFloat(n.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad float %q", n.text)
		}
		return expr.CFloat(f), nil
	case "string":
		return expr.CStr(n.text), nil
	case "bool":
		return expr.CBool(n.text == "true"), nil
	case "null":
		return expr.C(types.Null()), nil
	}
	return nil, fmt.Errorf("sql: unknown literal kind %q", n.kind)
}

func compileUnary(op string, x expr.Expr) (expr.Expr, error) {
	switch op {
	case "NOT":
		return expr.Not{E: x}, nil
	case "-":
		return expr.Sub(expr.CInt(0), x), nil
	}
	return nil, fmt.Errorf("sql: unknown unary operator %q", op)
}

func compileBin(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "AND":
		return expr.And(l, r), nil
	case "OR":
		return expr.Or(l, r), nil
	case "=":
		return expr.Eq(l, r), nil
	case "<>":
		return expr.Neq(l, r), nil
	case "<":
		return expr.Lt(l, r), nil
	case "<=":
		return expr.Leq(l, r), nil
	case ">":
		return expr.Gt(l, r), nil
	case ">=":
		return expr.Geq(l, r), nil
	case "+":
		return expr.Add(l, r), nil
	case "-":
		return expr.Sub(l, r), nil
	case "*":
		return expr.Mul(l, r), nil
	case "/":
		return expr.Div(l, r), nil
	}
	return nil, fmt.Errorf("sql: unknown operator %q", op)
}

func compileFunc(name string, args []expr.Expr) (expr.Expr, error) {
	switch name {
	case "least":
		if len(args) == 0 {
			return nil, fmt.Errorf("sql: least() needs arguments")
		}
		return expr.Least(args...), nil
	case "greatest":
		if len(args) == 0 {
			return nil, fmt.Errorf("sql: greatest() needs arguments")
		}
		return expr.Greatest(args...), nil
	}
	return nil, fmt.Errorf("sql: unknown function %q", name)
}

func compileCase(n caseExpr, sub func(sqlExpr) (expr.Expr, error)) (expr.Expr, error) {
	var out expr.Expr
	if n.els != nil {
		e, err := sub(n.els)
		if err != nil {
			return nil, err
		}
		out = e
	} else {
		out = expr.C(types.Null())
	}
	for i := len(n.whens) - 1; i >= 0; i-- {
		cond, err := sub(n.whens[i].cond)
		if err != nil {
			return nil, err
		}
		res, err := sub(n.whens[i].result)
		if err != nil {
			return nil, err
		}
		out = expr.If{Cond: cond, Then: res, Else: out}
	}
	return out, nil
}
