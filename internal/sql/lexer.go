// Package sql implements a SQL front end for the AU-DB system: a lexer,
// recursive-descent parser and planner that compile a practical subset of
// SQL (SELECT-FROM-WHERE-GROUP BY-HAVING-ORDER BY, joins, subqueries in
// FROM, UNION/EXCEPT, CASE, the paper's aggregate functions) into the
// shared RA_agg plans executed by every engine in this repository.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords uppercased, identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "UNION": true, "EXCEPT": true, "ALL": true,
	"JOIN": true, "ON": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "TRUE": true, "FALSE": true, "IS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"BETWEEN": true, "IN": true, "LIMIT": true, "INNER": true, "CROSS": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
		} else if c == '.' && !seenDot {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

var twoCharSymbols = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexSymbol() error {
	start := l.pos
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[l.pos : l.pos+2], pos: start})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';', '%':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		l.pos++
		return nil
	default:
		return fmt.Errorf("sql: unexpected character %q at %d", string(c), start)
	}
}
