package sql

import (
	"testing"

	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
)

// fuzzCatalog is the fixed catalog FuzzCompile resolves against: two
// joinable tables plus a mixed-case name, so case folding is fuzzed too.
func fuzzCatalog() ra.CatalogMap {
	return ra.CatalogMap{
		"emp":  schema.New("id", "name", "dept", "salary"),
		"dept": schema.New("name", "city"),
		"Wide": schema.New("a", "b", "c", "d", "e"),
	}
}

// fuzzSeeds is the seed corpus: every construct the existing tests
// exercise (valid and invalid), so the fuzzer starts from the full
// grammar surface.
var fuzzSeeds = []string{
	"SELECT name FROM emp WHERE salary > 65",
	"SELECT name, salary FROM emp WHERE dept = 'eng' AND salary >= 100",
	"SELECT * FROM emp",
	"SELECT salary * 2 AS double_pay FROM emp WHERE id = 1",
	"SELECT salary s FROM emp WHERE id = 1",
	"SELECT e.name, d.city FROM emp e JOIN dept d ON e.dept = d.name WHERE d.city = 'nyc'",
	"SELECT e.name FROM emp e, dept d WHERE e.dept = d.name AND d.city = 'sf'",
	"SELECT e.name FROM emp e CROSS JOIN dept d",
	"SELECT dept, sum(salary) AS total, count(*) AS cnt FROM emp GROUP BY dept",
	"SELECT dept, sum(salary) AS total FROM emp GROUP BY dept HAVING sum(salary) > 150",
	"SELECT dept, avg(salary) a, min(salary) mn, max(salary) mx FROM emp GROUP BY dept",
	"SELECT salary / 100, count(*) FROM emp GROUP BY salary / 100",
	"SELECT count(*) FROM emp GROUP BY salary > 65",
	"SELECT name, CASE WHEN salary >= 80 THEN 'high' ELSE 'low' END AS band FROM emp",
	"SELECT name FROM emp WHERE salary BETWEEN 60 AND 80",
	"SELECT name FROM emp WHERE dept IN ('ops')",
	"SELECT DISTINCT dept FROM emp",
	"SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2",
	"SELECT name, salary FROM emp ORDER BY 2",
	"SELECT name FROM emp WHERE dept = 'eng' UNION SELECT name FROM emp WHERE salary > 65",
	"SELECT name FROM emp EXCEPT SELECT name FROM emp WHERE dept = 'eng'",
	"SELECT t.dept, t.total FROM (SELECT dept, sum(salary) AS total FROM emp GROUP BY dept) t WHERE t.total > 150",
	"SELECT name FROM emp WHERE name IS NOT NULL AND TRUE",
	"SELECT least(salary, 75) AS v FROM emp WHERE id = 1",
	"SELECT greatest(salary, -salary) AS v FROM emp WHERE id = 3",
	"SELECT count(DISTINCT dept) AS c FROM emp",
	"SELECT a FROM wide WHERE b <= 3 ORDER BY a LIMIT 5",
	"SELECT",
	"SELECT FROM emp",
	"SELECT name FROM",
	"SELECT name FROM emp WHERE",
	"SELECT name FROM (SELECT name FROM emp)",
	"SELECT nope FROM emp",
	"SELECT 'unterminated FROM emp",
	"SELECT 1.5e FROM emp",
	"SELECT ((a FROM wide",
	"\x00\x01 SELECT",
}

// FuzzCompile fuzzes the whole SQL front end: lexer, parser and planner.
// Two invariants: Compile never panics on any input, and any plan that
// compiles also passes the schema checker (ra.Validate) — the planner
// must never emit dangling attribute references.
func FuzzCompile(f *testing.F) {
	for _, q := range fuzzSeeds {
		f.Add(q)
	}
	cat := fuzzCatalog()
	f.Fuzz(func(t *testing.T, q string) {
		plan, err := Compile(q, cat)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		if plan == nil {
			t.Fatalf("Compile(%q) returned a nil plan without error", q)
		}
		if err := ra.Validate(plan, cat); err != nil {
			t.Fatalf("Compile(%q) produced a plan that fails schema checking: %v\n%s",
				q, err, ra.Render(plan))
		}
	})
}
