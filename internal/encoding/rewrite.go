package encoding

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
)

// Exec evaluates an RA_agg plan over an AU-database through the middleware
// path: encode the database, rewrite the query (rewr(·), Section 10.2),
// run it on the deterministic engine, decode the result. Cancellation of
// ctx aborts the deterministic execution promptly with ctx.Err().
func Exec(ctx context.Context, n ra.Node, db core.DB) (*core.Relation, error) {
	auCat := ra.CatalogMap(db.Schemas())
	plan, auSchema, err := Rewrite(n, auCat)
	if err != nil {
		return nil, err
	}
	return ExecRewritten(ctx, plan, auSchema, db)
}

// ExecRewritten runs an already-rewritten plan (as produced by Rewrite)
// over db: encode, execute on the deterministic engine, decode. Callers
// that execute the same query repeatedly (prepared statements) rewrite
// once and come through here to skip the per-execution rewrite.
func ExecRewritten(ctx context.Context, plan ra.Node, auSchema schema.Schema, db core.DB) (*core.Relation, error) {
	enc, err := EncodeDBContext(ctx, db)
	if err != nil {
		return nil, err
	}
	res, err := bag.Exec(ctx, plan, enc)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Dec(res, auSchema)
}

// Rewrite compiles an RA_agg plan over AU-relations into a deterministic
// plan over their encodings, returning the plan and the AU result schema.
// Every rewritten subplan produces the canonical encoded layout of its AU
// schema, so operators compose freely; the final merging of
// value-equivalent rows (Q_merge) is applied by the caller via bag
// aggregation or, equivalently, by Dec.
func Rewrite(n ra.Node, cat ra.Catalog) (ra.Node, schema.Schema, error) {
	switch t := n.(type) {
	case *ra.Scan:
		s, err := cat.TableSchema(t.Table)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		return &ra.Scan{Table: t.Table}, s, nil

	case *ra.Select:
		return rewriteSelect(t, cat)

	case *ra.Project:
		return rewriteProject(t, cat)

	case *ra.Join:
		return rewriteJoin(t, cat)

	case *ra.Union:
		lp, ls, err := Rewrite(t.Left, cat)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		rp, rs, err := Rewrite(t.Right, cat)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		if ls.Arity() != rs.Arity() {
			return nil, schema.Schema{}, fmt.Errorf("encoding: union arity mismatch %s vs %s", ls, rs)
		}
		return &ra.Union{Left: lp, Right: rp}, ls, nil

	case *ra.Diff:
		return rewriteDiff(t, cat)

	case *ra.Agg:
		return rewriteAgg(t, cat)

	case *ra.OrderBy:
		cp, cs, err := Rewrite(t.Child, cat)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		return &ra.OrderBy{Child: cp, Keys: t.Keys, Desc: t.Desc}, cs, nil

	case *ra.Distinct:
		// Duplicate elimination is not part of the paper's rewrite set
		// (Section 10.2); the native engine supports it directly.
		return nil, schema.Schema{}, fmt.Errorf("encoding: DISTINCT is not supported by the rewrite middleware; use the native engine")
	}
	return nil, schema.Schema{}, fmt.Errorf("encoding: cannot rewrite %T", n)
}

// identityCols projects the value columns of a canonical layout unchanged.
func identityCols(l Layout, s schema.Schema) []ra.ProjCol {
	enc := EncSchema(s)
	cols := make([]ra.ProjCol, 0, 3*l.N)
	for i := 0; i < 3*l.N; i++ {
		cols = append(cols, ra.ProjCol{E: expr.Col(i, ""), Name: enc.Attrs[i]})
	}
	return cols
}

func boolToMult(b expr.Expr) expr.Expr {
	return expr.If{Cond: b, Then: expr.CInt(1), Else: expr.CInt(0)}
}

func rewriteSelect(t *ra.Select, cat ra.Catalog) (ra.Node, schema.Schema, error) {
	cp, cs, err := Rewrite(t.Child, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	l := Layout{N: cs.Arity()}
	plo, psg, phi, err := RewriteExpr(t.Pred, triple(l, 0))
	if err != nil {
		return nil, schema.Schema{}, err
	}
	cols := identityCols(l, cs)
	cols = append(cols,
		ra.ProjCol{E: expr.Mul(boolToMult(plo), expr.Col(l.RowLo(), "")), Name: "row_lb"},
		ra.ProjCol{E: expr.Mul(boolToMult(psg), expr.Col(l.RowSG(), "")), Name: "row_sg"},
		ra.ProjCol{E: expr.Col(l.RowHi(), ""), Name: "row_ub"},
	)
	return &ra.Project{Child: &ra.Select{Child: cp, Pred: phi}, Cols: cols}, cs, nil
}

func triple(l Layout, offset int) AttrTriple { return LayoutTriple(l, offset) }

func rewriteProject(t *ra.Project, cat ra.Catalog) (ra.Node, schema.Schema, error) {
	cp, cs, err := Rewrite(t.Child, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	l := Layout{N: cs.Arity()}
	outAttrs := make([]string, len(t.Cols))
	var sgCols, loCols, hiCols []ra.ProjCol
	for i, c := range t.Cols {
		outAttrs[i] = c.Name
		lo, sg, hi, err := RewriteExpr(c.E, triple(l, 0))
		if err != nil {
			return nil, schema.Schema{}, err
		}
		sgCols = append(sgCols, ra.ProjCol{E: sg, Name: c.Name})
		loCols = append(loCols, ra.ProjCol{E: lo, Name: c.Name + "_lb"})
		hiCols = append(hiCols, ra.ProjCol{E: hi, Name: c.Name + "_ub"})
	}
	cols := append(append(append([]ra.ProjCol{}, sgCols...), loCols...), hiCols...)
	cols = append(cols,
		ra.ProjCol{E: expr.Col(l.RowLo(), ""), Name: "row_lb"},
		ra.ProjCol{E: expr.Col(l.RowSG(), ""), Name: "row_sg"},
		ra.ProjCol{E: expr.Col(l.RowHi(), ""), Name: "row_ub"},
	)
	return &ra.Project{Child: cp, Cols: cols}, schema.Schema{Attrs: outAttrs}, nil
}

func rewriteJoin(t *ra.Join, cat ra.Catalog) (ra.Node, schema.Schema, error) {
	lp, ls, err := Rewrite(t.Left, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	rp, rs, err := Rewrite(t.Right, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	ll := Layout{N: ls.Arity()}
	rl := Layout{N: rs.Arity()}
	outSchema := ls.Concat(rs)
	// Attribute triples over the concatenated encoded layouts.
	joinedAttr := func(i int) (sg, lo, hi expr.Expr) {
		if i < ll.N {
			return LayoutTriple(ll, 0)(i)
		}
		return LayoutTriple(rl, ll.Width())(i - ll.N)
	}
	var condLo, condSG, condHi expr.Expr
	if t.Cond != nil {
		condLo, condSG, condHi, err = RewriteExpr(t.Cond, joinedAttr)
		if err != nil {
			return nil, schema.Schema{}, err
		}
	}
	joined := &ra.Join{Left: lp, Right: rp, Cond: condHi}
	// Canonical projection of the joined layout.
	enc := EncSchema(outSchema)
	var cols []ra.ProjCol
	add := func(idx int, name string) {
		cols = append(cols, ra.ProjCol{E: expr.Col(idx, ""), Name: name})
	}
	for i := 0; i < ll.N; i++ {
		add(ll.SG(i), enc.Attrs[len(cols)])
	}
	for i := 0; i < rl.N; i++ {
		add(ll.Width()+rl.SG(i), enc.Attrs[len(cols)])
	}
	for i := 0; i < ll.N; i++ {
		add(ll.Lo(i), enc.Attrs[len(cols)])
	}
	for i := 0; i < rl.N; i++ {
		add(ll.Width()+rl.Lo(i), enc.Attrs[len(cols)])
	}
	for i := 0; i < ll.N; i++ {
		add(ll.Hi(i), enc.Attrs[len(cols)])
	}
	for i := 0; i < rl.N; i++ {
		add(ll.Width()+rl.Hi(i), enc.Attrs[len(cols)])
	}
	rowLo := expr.Mul(expr.Col(ll.RowLo(), ""), expr.Col(ll.Width()+rl.RowLo(), ""))
	rowSG := expr.Mul(expr.Col(ll.RowSG(), ""), expr.Col(ll.Width()+rl.RowSG(), ""))
	rowHi := expr.Mul(expr.Col(ll.RowHi(), ""), expr.Col(ll.Width()+rl.RowHi(), ""))
	if t.Cond != nil {
		rowLo = expr.Mul(rowLo, boolToMult(condLo))
		rowSG = expr.Mul(rowSG, boolToMult(condSG))
	}
	cols = append(cols,
		ra.ProjCol{E: rowLo, Name: "row_lb"},
		ra.ProjCol{E: rowSG, Name: "row_sg"},
		ra.ProjCol{E: rowHi, Name: "row_ub"},
	)
	return &ra.Project{Child: joined, Cols: cols}, outSchema, nil
}

// rewritePsi is the SG-combiner Ψ: group by selected-guess values, merge
// bounds, sum annotations.
func rewritePsi(child ra.Node, s schema.Schema) ra.Node {
	l := Layout{N: s.Arity()}
	enc := EncSchema(s)
	groupBy := make([]int, l.N)
	for i := range groupBy {
		groupBy[i] = l.SG(i)
	}
	var aggs []ra.AggSpec
	for i := 0; i < l.N; i++ {
		aggs = append(aggs, ra.AggSpec{Fn: ra.AggMin, Arg: expr.Col(l.Lo(i), ""), Name: enc.Attrs[l.Lo(i)]})
	}
	for i := 0; i < l.N; i++ {
		aggs = append(aggs, ra.AggSpec{Fn: ra.AggMax, Arg: expr.Col(l.Hi(i), ""), Name: enc.Attrs[l.Hi(i)]})
	}
	aggs = append(aggs,
		ra.AggSpec{Fn: ra.AggSum, Arg: expr.Col(l.RowLo(), ""), Name: "row_lb"},
		ra.AggSpec{Fn: ra.AggSum, Arg: expr.Col(l.RowSG(), ""), Name: "row_sg"},
		ra.AggSpec{Fn: ra.AggSum, Arg: expr.Col(l.RowHi(), ""), Name: "row_ub"},
	)
	return &ra.Agg{Child: child, GroupBy: groupBy, Aggs: aggs}
}

func rewriteDiff(t *ra.Diff, cat ra.Catalog) (ra.Node, schema.Schema, error) {
	lp, ls, err := Rewrite(t.Left, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	rp, rs, err := Rewrite(t.Right, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	if ls.Arity() != rs.Arity() {
		return nil, schema.Schema{}, fmt.Errorf("encoding: difference arity mismatch %s vs %s", ls, rs)
	}
	n := ls.Arity()
	l := Layout{N: n}
	// Ψ-combine the left side so every SG tuple appears once.
	left := rewritePsi(lp, ls)
	wl := l.Width()

	// Join on attribute-range overlap (t ≃ t').
	var overlap []expr.Expr
	for i := 0; i < n; i++ {
		overlap = append(overlap,
			expr.Leq(expr.Col(l.Lo(i), ""), expr.Col(wl+l.Hi(i), "")),
			expr.Leq(expr.Col(wl+l.Lo(i), ""), expr.Col(l.Hi(i), "")))
	}
	joined := &ra.Join{Left: left, Right: rp, Cond: expr.And(overlap...)}

	// Per-pair subtraction contributions.
	var sgEqC, certEqC []expr.Expr
	for i := 0; i < n; i++ {
		sgEqC = append(sgEqC, expr.Eq(expr.Col(l.SG(i), ""), expr.Col(wl+l.SG(i), "")))
		certEqC = append(certEqC,
			expr.Eq(expr.Col(l.Lo(i), ""), expr.Col(l.Hi(i), "")),
			expr.Eq(expr.Col(wl+l.Lo(i), ""), expr.Col(wl+l.Hi(i), "")),
			expr.Eq(expr.Col(l.Lo(i), ""), expr.Col(wl+l.Lo(i), "")))
	}
	sgEq, certEq := expr.And(sgEqC...), expr.And(certEqC...)

	groupBy := make([]int, wl)
	for i := range groupBy {
		groupBy[i] = i
	}
	sums := &ra.Agg{
		Child:   joined,
		GroupBy: groupBy,
		Aggs: []ra.AggSpec{
			{Fn: ra.AggSum, Arg: expr.If{Cond: certEq, Then: expr.Col(wl+l.RowLo(), ""), Else: expr.CInt(0)}, Name: "sub_lb"},
			{Fn: ra.AggSum, Arg: expr.If{Cond: sgEq, Then: expr.Col(wl+l.RowSG(), ""), Else: expr.CInt(0)}, Name: "sub_sg"},
			{Fn: ra.AggSum, Arg: expr.Col(wl+l.RowHi(), ""), Name: "sub_ub"},
		},
	}
	// Matched rows: subtract; keep the clamped triple ordering.
	zero := expr.CInt(0)
	rawLo := expr.Greatest(zero, expr.Sub(expr.Col(l.RowLo(), ""), expr.Col(wl+2, "")))
	rawSG := expr.Greatest(zero, expr.Sub(expr.Col(l.RowSG(), ""), expr.Col(wl+1, "")))
	rawHi := expr.Greatest(zero, expr.Sub(expr.Col(l.RowHi(), ""), expr.Col(wl+0, "")))
	clampedSG := expr.Least(rawSG, rawHi)
	clampedLo := expr.Least(rawLo, clampedSG)
	matchedCols := identityCols(l, ls)
	matchedCols = append(matchedCols,
		ra.ProjCol{E: clampedLo, Name: "row_lb"},
		ra.ProjCol{E: clampedSG, Name: "row_sg"},
		ra.ProjCol{E: rawHi, Name: "row_ub"},
	)
	matched := &ra.Project{Child: sums, Cols: matchedCols}

	// Unmatched left rows pass through unchanged: left minus the matched
	// keys (full encoded rows are unique after Ψ).
	matchedKeys := &ra.Project{Child: sums, Cols: fullIdentity(l, ls, wl)}
	unmatched := &ra.Diff{Left: left, Right: matchedKeys}

	union := &ra.Union{Left: matched, Right: unmatched}
	filtered := &ra.Select{Child: union, Pred: expr.Gt(expr.Col(l.RowHi(), ""), zero)}
	return filtered, ls, nil
}

// fullIdentity projects an entire encoded row (value + row columns).
func fullIdentity(l Layout, s schema.Schema, width int) []ra.ProjCol {
	enc := EncSchema(s)
	cols := make([]ra.ProjCol, 0, width)
	for i := 0; i < width; i++ {
		name := "c" + fmt.Sprint(i)
		if i < len(enc.Attrs) {
			name = enc.Attrs[i]
		}
		cols = append(cols, ra.ProjCol{E: expr.Col(i, ""), Name: name})
	}
	return cols
}
