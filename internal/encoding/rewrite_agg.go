package encoding

import (
	"fmt"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// aggKind distinguishes the monoid folds used by the rewrite.
type aggKind uint8

const (
	kindSum aggKind = iota
	kindMin
	kindMax
	kindAvg // sum + count pair, divided in the post-projection
)

func classify(fn ra.AggFn) (aggKind, error) {
	switch fn {
	case ra.AggSum, ra.AggCount:
		return kindSum, nil
	case ra.AggMin:
		return kindMin, nil
	case ra.AggMax:
		return kindMax, nil
	case ra.AggAvg:
		return kindAvg, nil
	}
	return 0, fmt.Errorf("encoding: unknown aggregate %v", fn)
}

func (k aggKind) fold() ra.AggFn {
	switch k {
	case kindMin:
		return ra.AggMin
	case kindMax:
		return ra.AggMax
	default:
		return ra.AggSum
	}
}

func (k aggKind) neutral() expr.Expr {
	switch k {
	case kindMin:
		return expr.C(types.PosInf())
	case kindMax:
		return expr.C(types.NegInf())
	default:
		return expr.CInt(0)
	}
}

// argTriple returns the (lo, sg, hi) expressions of the aggregate's input
// value for one encoded row: the rewritten argument for sum/min/max/avg,
// the not-null indicator for count(e), and the constant 1 for count(*).
func argTriple(spec ra.AggSpec, attr AttrTriple) (lo, sg, hi expr.Expr, err error) {
	if spec.Fn == ra.AggCount {
		if spec.Arg == nil {
			one := expr.CInt(1)
			return one, one, one, nil
		}
		ind := expr.If{Cond: expr.IsNull{E: spec.Arg}, Then: expr.CInt(0), Else: expr.CInt(1)}
		return RewriteExpr(ind, attr)
	}
	return RewriteExpr(spec.Arg, attr)
}

// perRowBounds builds the lba / uba / sga expressions of Section 10.2 for
// one aggregate over one joined row.
//
//	rowLo/rowSG/rowHi: the tuple's annotation columns
//	certMember:        θ_c ∧ row↓ > 0 (certain group membership)
//	sgMember:          θ_sg (selected-guess group membership)
func perRowBounds(k aggKind, aLo, aSg, aHi, rowLo, rowSG, rowHi, certMember, sgMember expr.Expr) (lba, sga, uba expr.Expr) {
	zero := expr.CInt(0)
	switch k {
	case kindSum, kindAvg:
		lbaF := expr.If{
			Cond: expr.Lt(aLo, zero),
			Then: expr.Mul(aLo, rowHi),
			Else: expr.Mul(aLo, rowLo),
		}
		ubaF := expr.If{
			Cond: expr.Lt(aHi, zero),
			Then: expr.Mul(aHi, rowLo),
			Else: expr.Mul(aHi, rowHi),
		}
		lba = expr.If{Cond: certMember, Then: lbaF, Else: expr.Least(zero, lbaF)}
		uba = expr.If{Cond: certMember, Then: ubaF, Else: expr.Greatest(zero, ubaF)}
		sga = expr.If{Cond: sgMember, Then: expr.Mul(aSg, rowSG), Else: zero}
	case kindMin:
		posInf := expr.C(types.PosInf())
		// A tuple that may exist can pull the minimum down to its lower
		// value; only certainly-present certain members cap it from above.
		lba = expr.If{Cond: expr.Gt(rowHi, zero), Then: aLo, Else: posInf}
		ubaF := expr.If{Cond: expr.Gt(rowLo, zero), Then: aHi, Else: posInf}
		uba = expr.If{Cond: certMember, Then: ubaF, Else: posInf}
		sga = expr.If{Cond: expr.And(sgMember, expr.Gt(rowSG, zero)), Then: aSg, Else: posInf}
	case kindMax:
		negInf := expr.C(types.NegInf())
		uba = expr.If{Cond: expr.Gt(rowHi, zero), Then: aHi, Else: negInf}
		lbaF := expr.If{Cond: expr.Gt(rowLo, zero), Then: aLo, Else: negInf}
		lba = expr.If{Cond: certMember, Then: lbaF, Else: negInf}
		sga = expr.If{Cond: expr.And(sgMember, expr.Gt(rowSG, zero)), Then: aSg, Else: negInf}
	}
	return lba, sga, uba
}

// avgProjection derives AVG bounds from sum and count columns, mirroring
// core.avgBounds: interval division with counts clamped to >= 1, widened
// by the selected-guess quotient.
func avgProjection(sumLo, sumSG, sumHi, cntLo, cntSG, cntHi expr.Expr) (lo, sg, hi expr.Expr) {
	one := expr.CInt(1)
	cLo := expr.Greatest(one, cntLo)
	cHi := expr.Greatest(one, cntHi)
	sg = expr.If{
		Cond: expr.Leq(cntSG, expr.CInt(0)),
		Then: expr.CFloat(0),
		Else: expr.Div(sumSG, cntSG),
	}
	quots := []expr.Expr{
		expr.Div(sumLo, cLo), expr.Div(sumLo, cHi),
		expr.Div(sumHi, cLo), expr.Div(sumHi, cHi),
	}
	lo = expr.Least(append(quots, sg)...)
	hi = expr.Greatest(append(quots, sg)...)
	return lo, sg, hi
}

// rewriteAgg implements the aggregation rewrite of Section 10.2: group
// bounds (Q_gbounds), the overlap join with the input (Q_join), per-row
// bound expressions, the outer aggregation, and the final projection
// computing row annotations (with δ) and AVG division.
func rewriteAgg(t *ra.Agg, cat ra.Catalog) (ra.Node, schema.Schema, error) {
	cp, cs, err := Rewrite(t.Child, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	l := Layout{N: cs.Arity()}
	auOut, err := ra.InferSchema(t, cat)
	if err != nil {
		return nil, schema.Schema{}, err
	}
	kinds := make([]aggKind, len(t.Aggs))
	for i, a := range t.Aggs {
		if a.Distinct {
			return nil, schema.Schema{}, fmt.Errorf("encoding: DISTINCT aggregates are unsupported (aggregate %s)", a.Name)
		}
		if kinds[i], err = classify(a.Fn); err != nil {
			return nil, schema.Schema{}, err
		}
	}
	g := len(t.GroupBy)
	if g == 0 {
		return rewriteAggGlobal(t, cp, cs, kinds, auOut)
	}

	// Q_gbounds: per SG group, the group-by bounding box.
	gbGroup := make([]int, g)
	var gbAggs []ra.AggSpec
	for i, c := range t.GroupBy {
		gbGroup[i] = l.SG(c)
	}
	for i, c := range t.GroupBy {
		gbAggs = append(gbAggs, ra.AggSpec{Fn: ra.AggMin, Arg: expr.Col(l.Lo(c), ""), Name: fmt.Sprintf("g%d_lb", i)})
	}
	for i, c := range t.GroupBy {
		gbAggs = append(gbAggs, ra.AggSpec{Fn: ra.AggMax, Arg: expr.Col(l.Hi(c), ""), Name: fmt.Sprintf("g%d_ub", i)})
	}
	gbounds := &ra.Agg{Child: cp, GroupBy: gbGroup, Aggs: gbAggs}
	// gbounds layout: [g sg][g lo][g hi].
	gW := 3 * g

	// Q_join: groups x tuples whose group-by ranges overlap the box.
	var overlap []expr.Expr
	for i, c := range t.GroupBy {
		overlap = append(overlap,
			expr.Leq(expr.Col(g+i, ""), expr.Col(gW+l.Hi(c), "")),   // g_lb <= B_ub
			expr.Leq(expr.Col(gW+l.Lo(c), ""), expr.Col(2*g+i, ""))) // B_lb <= g_ub
	}
	joined := &ra.Join{Left: gbounds, Right: cp, Cond: expr.And(overlap...)}

	// Membership predicates over the joined layout.
	var sgEqC, certC []expr.Expr
	for i, c := range t.GroupBy {
		sgEqC = append(sgEqC, expr.Eq(expr.Col(i, ""), expr.Col(gW+l.SG(c), "")))
		certC = append(certC,
			expr.Eq(expr.Col(g+i, ""), expr.Col(gW+l.Lo(c), "")),        // g_lb = B_lb
			expr.Eq(expr.Col(2*g+i, ""), expr.Col(gW+l.Hi(c), "")),      // g_ub = B_ub
			expr.Eq(expr.Col(gW+l.Lo(c), ""), expr.Col(gW+l.Hi(c), ""))) // B_lb = B_ub
	}
	sgMember := expr.And(sgEqC...)
	rowLo := expr.Col(gW+l.RowLo(), "")
	rowSG := expr.Col(gW+l.RowSG(), "")
	rowHi := expr.Col(gW+l.RowHi(), "")
	certMember := expr.And(expr.And(certC...), expr.Gt(rowLo, expr.CInt(0)))
	tupleCert := expr.And(tupleCertConds(l, t.GroupBy, gW)...)

	// Outer aggregation: group by the 3g box columns.
	outerGroup := make([]int, gW)
	for i := range outerGroup {
		outerGroup[i] = i
	}
	var outerAggs []ra.AggSpec
	attr := LayoutTriple(l, gW)
	for j, spec := range t.Aggs {
		aLo, aSg, aHi, err := argTriple(spec, attr)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		lba, sga, uba := perRowBounds(kinds[j], aLo, aSg, aHi, rowLo, rowSG, rowHi, certMember, sgMember)
		fold := kinds[j].fold()
		outerAggs = append(outerAggs,
			ra.AggSpec{Fn: fold, Arg: lba, Name: fmt.Sprintf("a%d_lb", j)},
			ra.AggSpec{Fn: fold, Arg: sga, Name: fmt.Sprintf("a%d_sg", j)},
			ra.AggSpec{Fn: fold, Arg: uba, Name: fmt.Sprintf("a%d_ub", j)},
		)
		if kinds[j] == kindAvg {
			// The paired count(*) for the AVG division.
			one := expr.CInt(1)
			clba, csga, cuba := perRowBounds(kindSum, one, one, one, rowLo, rowSG, rowHi, certMember, sgMember)
			outerAggs = append(outerAggs,
				ra.AggSpec{Fn: ra.AggSum, Arg: clba, Name: fmt.Sprintf("a%d_clb", j)},
				ra.AggSpec{Fn: ra.AggSum, Arg: csga, Name: fmt.Sprintf("a%d_csg", j)},
				ra.AggSpec{Fn: ra.AggSum, Arg: cuba, Name: fmt.Sprintf("a%d_cub", j)},
			)
		}
	}
	// Row annotations (Definition 28).
	zero := expr.CInt(0)
	memberLo := expr.If{
		Cond: expr.And(sgMember, tupleCert, expr.Gt(rowLo, zero)),
		Then: rowLo, Else: zero,
	}
	memberSG := expr.If{Cond: sgMember, Then: rowSG, Else: zero}
	memberHi := expr.If{Cond: sgMember, Then: rowHi, Else: zero}
	outerAggs = append(outerAggs,
		ra.AggSpec{Fn: ra.AggSum, Arg: memberLo, Name: "m_lb"},
		ra.AggSpec{Fn: ra.AggSum, Arg: memberSG, Name: "m_sg"},
		ra.AggSpec{Fn: ra.AggSum, Arg: memberHi, Name: "m_ub"},
	)
	outer := &ra.Agg{Child: joined, GroupBy: outerGroup, Aggs: outerAggs}

	// Final projection into the canonical layout of the result schema
	// (group attrs + aggregate attrs).
	return projectAggResult(outer, t, kinds, auOut, g, gW)
}

func tupleCertConds(l Layout, groupBy []int, gW int) []expr.Expr {
	var out []expr.Expr
	for _, c := range groupBy {
		out = append(out, expr.Eq(expr.Col(gW+l.Lo(c), ""), expr.Col(gW+l.Hi(c), "")))
	}
	return out
}

// projectAggResult arranges the outer aggregation's columns into the
// canonical encoded layout and applies δ and AVG division.
func projectAggResult(outer ra.Node, t *ra.Agg, kinds []aggKind, auOut schema.Schema, g, gW int) (ra.Node, schema.Schema, error) {
	enc := EncSchema(auOut)
	// Column positions in `outer`: [0..gW): box (g sg, g lo, g hi), then
	// per aggregate 3 (or 6 for avg) columns, then 3 member columns.
	aggBase := gW
	aggPos := make([]int, len(kinds))
	pos := aggBase
	for j, k := range kinds {
		aggPos[j] = pos
		pos += 3
		if k == kindAvg {
			pos += 3
		}
	}
	mPos := pos

	var sgCols, loCols, hiCols []ra.ProjCol
	for i := 0; i < g; i++ {
		sgCols = append(sgCols, ra.ProjCol{E: expr.Col(i, ""), Name: enc.Attrs[i]})
		loCols = append(loCols, ra.ProjCol{E: expr.Col(g+i, ""), Name: enc.Attrs[auOut.Arity()+i]})
		hiCols = append(hiCols, ra.ProjCol{E: expr.Col(2*g+i, ""), Name: enc.Attrs[2*auOut.Arity()+i]})
	}
	for j, k := range kinds {
		p := aggPos[j]
		var lo, sg, hi expr.Expr = expr.Col(p, ""), expr.Col(p+1, ""), expr.Col(p+2, "")
		if k == kindAvg {
			lo, sg, hi = avgProjection(
				expr.Col(p, ""), expr.Col(p+1, ""), expr.Col(p+2, ""),
				expr.Col(p+3, ""), expr.Col(p+4, ""), expr.Col(p+5, ""))
		}
		idx := g + j
		sgCols = append(sgCols, ra.ProjCol{E: sg, Name: enc.Attrs[idx]})
		loCols = append(loCols, ra.ProjCol{E: lo, Name: enc.Attrs[auOut.Arity()+idx]})
		hiCols = append(hiCols, ra.ProjCol{E: hi, Name: enc.Attrs[2*auOut.Arity()+idx]})
	}
	zero := expr.CInt(0)
	one := expr.CInt(1)
	delta := func(e expr.Expr) expr.Expr {
		return expr.If{Cond: expr.Gt(e, zero), Then: one, Else: zero}
	}
	var rowCols []ra.ProjCol
	if g == 0 {
		// Definition 27: aggregation without group-by always has (1,1,1).
		rowCols = []ra.ProjCol{
			{E: one, Name: "row_lb"}, {E: one, Name: "row_sg"}, {E: one, Name: "row_ub"},
		}
	} else {
		rowCols = []ra.ProjCol{
			{E: delta(expr.Col(mPos, "")), Name: "row_lb"},
			{E: delta(expr.Col(mPos+1, "")), Name: "row_sg"},
			{E: expr.Col(mPos+2, ""), Name: "row_ub"},
		}
	}
	cols := append(append(append(sgCols, loCols...), hiCols...), rowCols...)
	return &ra.Project{Child: outer, Cols: cols}, auOut, nil
}

// rewriteAggGlobal handles aggregation without group-by: no join is
// needed; every tuple is a member of the single output group.
func rewriteAggGlobal(t *ra.Agg, cp ra.Node, cs schema.Schema, kinds []aggKind, auOut schema.Schema) (ra.Node, schema.Schema, error) {
	l := Layout{N: cs.Arity()}
	rowLo := expr.Col(l.RowLo(), "")
	rowSG := expr.Col(l.RowSG(), "")
	rowHi := expr.Col(l.RowHi(), "")
	certMember := expr.Gt(rowLo, expr.CInt(0))
	sgMember := expr.CBool(true)
	attr := LayoutTriple(l, 0)
	var aggs []ra.AggSpec
	for j, spec := range t.Aggs {
		aLo, aSg, aHi, err := argTriple(spec, attr)
		if err != nil {
			return nil, schema.Schema{}, err
		}
		lba, sga, uba := perRowBounds(kinds[j], aLo, aSg, aHi, rowLo, rowSG, rowHi, certMember, sgMember)
		fold := kinds[j].fold()
		aggs = append(aggs,
			ra.AggSpec{Fn: fold, Arg: lba, Name: fmt.Sprintf("a%d_lb", j)},
			ra.AggSpec{Fn: fold, Arg: sga, Name: fmt.Sprintf("a%d_sg", j)},
			ra.AggSpec{Fn: fold, Arg: uba, Name: fmt.Sprintf("a%d_ub", j)},
		)
		if kinds[j] == kindAvg {
			one := expr.CInt(1)
			clba, csga, cuba := perRowBounds(kindSum, one, one, one, rowLo, rowSG, rowHi, certMember, sgMember)
			aggs = append(aggs,
				ra.AggSpec{Fn: ra.AggSum, Arg: clba, Name: fmt.Sprintf("a%d_clb", j)},
				ra.AggSpec{Fn: ra.AggSum, Arg: csga, Name: fmt.Sprintf("a%d_csg", j)},
				ra.AggSpec{Fn: ra.AggSum, Arg: cuba, Name: fmt.Sprintf("a%d_cub", j)},
			)
		}
	}
	outer := &ra.Agg{Child: cp, Aggs: aggs}
	return projectAggResult(outer, t, kinds, auOut, 0, 0)
}

var _ = types.Null // keep types imported for constants above
