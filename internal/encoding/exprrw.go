package encoding

import (
	"fmt"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/types"
)

// AttrTriple maps an AU-schema attribute index to the three deterministic
// expressions reading its selected-guess, lower and upper values from the
// encoded layout.
type AttrTriple func(i int) (sg, lo, hi expr.Expr)

// LayoutTriple is the AttrTriple for a canonical layout, shifted by offset
// columns (used when the encoded relation appears to the right of other
// columns in a join).
func LayoutTriple(l Layout, offset int) AttrTriple {
	return func(i int) (sg, lo, hi expr.Expr) {
		return expr.Col(offset+l.SG(i), ""),
			expr.Col(offset+l.Lo(i), ""),
			expr.Col(offset+l.Hi(i), "")
	}
}

// RewriteExpr compiles a scalar expression over an AU schema into three
// deterministic expressions computing the lower bound, selected-guess and
// upper bound of its range-annotated result (the e↓ / e_sg / e↑ of Section
// 10.2). The construction mirrors Definition 9 case by case.
func RewriteExpr(e expr.Expr, attr AttrTriple) (lo, sg, hi expr.Expr, err error) {
	switch n := e.(type) {
	case expr.Const:
		return n, n, n, nil

	case expr.Attr:
		s, l, h := attr(n.Idx)
		return l, s, h, nil

	case expr.Logic:
		llo, lsg, lhi, err := RewriteExpr(n.L, attr)
		if err != nil {
			return nil, nil, nil, err
		}
		rlo, rsg, rhi, err := RewriteExpr(n.R, attr)
		if err != nil {
			return nil, nil, nil, err
		}
		if n.Op == expr.OpAnd {
			return expr.And(llo, rlo), expr.And(lsg, rsg), expr.And(lhi, rhi), nil
		}
		return expr.Or(llo, rlo), expr.Or(lsg, rsg), expr.Or(lhi, rhi), nil

	case expr.Not:
		l, s, h, err := RewriteExpr(n.E, attr)
		if err != nil {
			return nil, nil, nil, err
		}
		return expr.Not{E: h}, expr.Not{E: s}, expr.Not{E: l}, nil

	case expr.Cmp:
		return rewriteCmp(n, attr)

	case expr.Arith:
		return rewriteArith(n, attr)

	case expr.If:
		return rewriteIf(n, attr)

	case expr.IsNull:
		l, s, h, err := RewriteExpr(n.E, attr)
		if err != nil {
			return nil, nil, nil, err
		}
		nullC := expr.C(types.Null())
		negInf := expr.C(types.NegInf())
		certainlyNull := expr.And(expr.IsNull{E: l}, expr.IsNull{E: h})
		// [lo, hi] contains null iff lo <= null (lo is null or -inf) and
		// null <= hi (hi is not -inf). Comparisons against the null
		// constant are always false in the deterministic semantics, so
		// the tests are spelled out with IsNull / -inf equality.
		possiblyNull := expr.And(
			expr.Or(expr.IsNull{E: l}, expr.Eq(l, negInf)),
			expr.Not{E: expr.Eq(h, negInf)},
		)
		_ = nullC
		return certainlyNull, expr.IsNull{E: s}, possiblyNull, nil

	case expr.NAry:
		los := make([]expr.Expr, len(n.Args))
		sgs := make([]expr.Expr, len(n.Args))
		his := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			l, s, h, err := RewriteExpr(a, attr)
			if err != nil {
				return nil, nil, nil, err
			}
			los[i], sgs[i], his[i] = l, s, h
		}
		if n.Op == expr.OpLeast {
			return expr.Least(los...), expr.Least(sgs...), expr.Least(his...), nil
		}
		return expr.Greatest(los...), expr.Greatest(sgs...), expr.Greatest(his...), nil
	}
	return nil, nil, nil, fmt.Errorf("encoding: cannot rewrite expression %T", e)
}

func rewriteCmp(n expr.Cmp, attr AttrTriple) (lo, sg, hi expr.Expr, err error) {
	alo, asg, ahi, err := RewriteExpr(n.L, attr)
	if err != nil {
		return nil, nil, nil, err
	}
	blo, bsg, bhi, err := RewriteExpr(n.R, attr)
	if err != nil {
		return nil, nil, nil, err
	}
	sg = expr.Cmp{Op: n.Op, L: asg, R: bsg}
	certEq := expr.And(expr.Eq(ahi, blo), expr.Eq(bhi, alo))
	overlap := expr.And(expr.Leq(alo, bhi), expr.Leq(blo, ahi))
	switch n.Op {
	case expr.OpEq:
		return certEq, sg, overlap, nil
	case expr.OpNeq:
		return expr.Not{E: overlap}, sg, expr.Not{E: certEq}, nil
	case expr.OpLt:
		return expr.Lt(ahi, blo), sg, expr.Lt(alo, bhi), nil
	case expr.OpLeq:
		return expr.Leq(ahi, blo), sg, expr.Leq(alo, bhi), nil
	case expr.OpGt:
		return expr.Gt(alo, bhi), sg, expr.Gt(ahi, blo), nil
	case expr.OpGeq:
		return expr.Geq(alo, bhi), sg, expr.Geq(ahi, blo), nil
	}
	return nil, nil, nil, fmt.Errorf("encoding: unknown comparison %v", n.Op)
}

func rewriteArith(n expr.Arith, attr AttrTriple) (lo, sg, hi expr.Expr, err error) {
	alo, asg, ahi, err := RewriteExpr(n.L, attr)
	if err != nil {
		return nil, nil, nil, err
	}
	blo, bsg, bhi, err := RewriteExpr(n.R, attr)
	if err != nil {
		return nil, nil, nil, err
	}
	switch n.Op {
	case expr.OpAdd:
		return expr.Add(alo, blo), expr.Add(asg, bsg), expr.Add(ahi, bhi), nil
	case expr.OpSub:
		return expr.Sub(alo, bhi), expr.Sub(asg, bsg), expr.Sub(ahi, blo), nil
	case expr.OpMul:
		prods := func(f func(l, r expr.Expr) expr.Arith) []expr.Expr {
			return []expr.Expr{f(alo, blo), f(alo, bhi), f(ahi, blo), f(ahi, bhi)}
		}
		return expr.Least(prods(expr.Mul)...), expr.Mul(asg, bsg), expr.Greatest(prods(expr.Mul)...), nil
	case expr.OpDiv:
		// A divisor interval spanning zero makes the quotient unbounded;
		// the guard keeps the deterministic engine from dividing by zero.
		spansZero := expr.And(
			expr.Leq(blo, expr.CInt(0)),
			expr.Geq(bhi, expr.CInt(0)))
		quots := []expr.Expr{
			expr.Div(alo, blo), expr.Div(alo, bhi),
			expr.Div(ahi, blo), expr.Div(ahi, bhi)}
		lo = expr.If{Cond: spansZero, Then: expr.C(types.NegInf()), Else: expr.Least(quots...)}
		hi = expr.If{Cond: spansZero, Then: expr.C(types.PosInf()), Else: expr.Greatest(quots...)}
		return lo, expr.Div(asg, bsg), hi, nil
	}
	return nil, nil, nil, fmt.Errorf("encoding: unknown arithmetic %v", n.Op)
}

func rewriteIf(n expr.If, attr AttrTriple) (lo, sg, hi expr.Expr, err error) {
	clo, csg, chi, err := RewriteExpr(n.Cond, attr)
	if err != nil {
		return nil, nil, nil, err
	}
	tlo, tsg, thi, err := RewriteExpr(n.Then, attr)
	if err != nil {
		return nil, nil, nil, err
	}
	elo, esg, ehi, err := RewriteExpr(n.Else, attr)
	if err != nil {
		return nil, nil, nil, err
	}
	certTrue := expr.And(clo, chi)
	certFalse := expr.And(expr.Not{E: clo}, expr.Not{E: chi})
	lo = expr.If{Cond: certTrue, Then: tlo,
		Else: expr.If{Cond: certFalse, Then: elo, Else: expr.Least(tlo, elo)}}
	hi = expr.If{Cond: certTrue, Then: thi,
		Else: expr.If{Cond: certFalse, Then: ehi, Else: expr.Greatest(thi, ehi)}}
	sg = expr.If{Cond: csg, Then: tsg, Else: esg}
	return lo, sg, hi, nil
}
