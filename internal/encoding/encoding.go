// Package encoding implements the paper's middleware path (Section 10):
// AU-DBs are encoded as ordinary bag relations with three columns per
// attribute plus three row-annotation columns (Enc / Dec, Section 10.1),
// and RA_agg queries over AU-DBs are rewritten into deterministic queries
// over the encoding (rewr(·), Section 10.2) executed by the deterministic
// engine. Theorem 8: Dec(Q_merge(Enc(D))) = Q(D); the tests cross-validate
// this path against the native engine of internal/core.
package encoding

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Layout describes the column layout of an encoded AU-relation of arity n:
// columns [0,n) hold selected-guess values, [n,2n) lower bounds, [2n,3n)
// upper bounds, followed by row_lb, row_sg, row_ub.
type Layout struct{ N int }

// Column accessors.
func (l Layout) SG(i int) int { return i }
func (l Layout) Lo(i int) int { return l.N + i }
func (l Layout) Hi(i int) int { return 2*l.N + i }
func (l Layout) RowLo() int   { return 3 * l.N }
func (l Layout) RowSG() int   { return 3*l.N + 1 }
func (l Layout) RowHi() int   { return 3*l.N + 2 }
func (l Layout) Width() int   { return 3*l.N + 3 }

// EncSchema builds the encoded schema for an AU schema.
func EncSchema(s schema.Schema) schema.Schema {
	n := s.Arity()
	attrs := make([]string, 0, 3*n+3)
	for _, a := range s.Attrs {
		attrs = append(attrs, a)
	}
	for _, a := range s.Attrs {
		attrs = append(attrs, a+"_lb")
	}
	for _, a := range s.Attrs {
		attrs = append(attrs, a+"_ub")
	}
	attrs = append(attrs, "row_lb", "row_sg", "row_ub")
	return schema.Schema{Attrs: attrs}
}

// Enc encodes an AU-relation as a deterministic bag relation
// (Definition 29); every encoded row has multiplicity 1.
func Enc(r *core.Relation) *bag.Relation {
	// The background context is never cancelled, so encCtx cannot fail.
	out, _ := encCtx(context.Background(), r)
	return out
}

// encCtx is Enc with cooperative cancellation, polled per tuple.
func encCtx(ctx context.Context, r *core.Relation) (*bag.Relation, error) {
	l := Layout{N: r.Schema.Arity()}
	out := bag.New(EncSchema(r.Schema))
	p := ctxpoll.New(ctx)
	// EachTuple may reuse its scratch tuple between calls; every value is
	// copied into a fresh row before the callback returns, so nothing from
	// the scratch storage is retained.
	err := r.EachTuple(func(t core.Tuple) error {
		if err := p.Due(); err != nil {
			return err
		}
		row := make(types.Tuple, l.Width())
		for i, v := range t.Vals {
			row[l.SG(i)] = v.SG
			row[l.Lo(i)] = v.Lo
			row[l.Hi(i)] = v.Hi
		}
		row[l.RowLo()] = types.Int(t.M.Lo)
		row[l.RowSG()] = types.Int(t.M.SG)
		row[l.RowHi()] = types.Int(t.M.Hi)
		out.Add(row, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Dec decodes an encoded relation back into an AU-relation, merging
// value-equivalent rows and dropping rows whose upper multiplicity is zero.
func Dec(r *bag.Relation, auSchema schema.Schema) (*core.Relation, error) {
	l := Layout{N: auSchema.Arity()}
	if r.Schema.Arity() != l.Width() {
		return nil, fmt.Errorf("encoding: expected %d columns for %s, got %d",
			l.Width(), auSchema, r.Schema.Arity())
	}
	out := core.New(auSchema)
	for idx, row := range r.Tuples {
		mult := r.Counts[idx]
		vals := make(rangeval.Tuple, l.N)
		for i := 0; i < l.N; i++ {
			vals[i] = rangeval.New(row[l.Lo(i)], row[l.SG(i)], row[l.Hi(i)])
		}
		m := core.Mult{
			Lo: row[l.RowLo()].AsInt() * mult,
			SG: row[l.RowSG()].AsInt() * mult,
			Hi: row[l.RowHi()].AsInt() * mult,
		}
		if m.Lo < 0 {
			m.Lo = 0
		}
		if m.SG < m.Lo {
			m.SG = m.Lo
		}
		if m.Hi < m.SG {
			m.Hi = m.SG
		}
		if m.Hi > 0 {
			out.Add(core.Tuple{Vals: vals, M: m})
		}
	}
	return out.Merge(), nil
}

// EncodeDB encodes every relation of an AU-database.
func EncodeDB(db core.DB) bag.DB {
	out, _ := EncodeDBContext(context.Background(), db)
	return out
}

// EncodeDBContext is EncodeDB with cooperative cancellation: the
// per-tuple encoding loops observe ctx, so cancelling a middleware query
// aborts promptly even during the O(database) encode phase.
func EncodeDBContext(ctx context.Context, db core.DB) (bag.DB, error) {
	out := bag.DB{}
	for n, r := range db {
		enc, err := encCtx(ctx, r)
		if err != nil {
			return nil, err
		}
		out[n] = enc
	}
	return out, nil
}
