package encoding

import (
	"context"
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

func iv(lo, sg, hi int64) rangeval.V {
	return rangeval.New(types.Int(lo), types.Int(sg), types.Int(hi))
}

func sampleRelation(r *rand.Rand, s schema.Schema, rows int) *core.Relation {
	out := core.New(s)
	for i := 0; i < rows; i++ {
		vals := make(rangeval.Tuple, s.Arity())
		for c := range vals {
			sg := int64(r.Intn(6))
			lo := sg - int64(r.Intn(3))
			hi := sg + int64(r.Intn(3))
			vals[c] = iv(lo, sg, hi)
		}
		lo := int64(r.Intn(2))
		sgm := lo + int64(r.Intn(2))
		hi := sgm + int64(r.Intn(2))
		if hi == 0 {
			hi = 1
		}
		out.Add(core.Tuple{Vals: vals, M: core.Mult{Lo: lo, SG: sgm, Hi: hi}})
	}
	return out
}

func TestEncDecRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rel := sampleRelation(r, schema.New("a", "b"), 8).Merge()
	enc := Enc(rel)
	if enc.Schema.Arity() != 9 {
		t.Fatalf("encoded arity %d", enc.Schema.Arity())
	}
	dec, err := Dec(enc, rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !relEqual(rel, dec) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", rel, dec)
	}
	// Dec with a wrong schema arity errors.
	if _, err := Dec(enc, schema.New("a")); err == nil {
		t.Error("arity mismatch should error")
	}
	// Layout accessors.
	l := Layout{N: 2}
	if l.SG(1) != 1 || l.Lo(1) != 3 || l.Hi(1) != 5 || l.RowLo() != 6 || l.RowSG() != 7 || l.RowHi() != 8 || l.Width() != 9 {
		t.Error("layout")
	}
	if EncodeDB(core.DB{"x": rel})["x"].Len() != rel.Len() {
		t.Error("EncodeDB")
	}
}

// relEqual compares two merged AU relations as bags of (triple-tuple,
// annotation) pairs.
func relEqual(a, b *core.Relation) bool {
	am := map[string]core.Mult{}
	for _, t := range a.Clone().Merge().Tuples {
		am[t.Vals.Key()] = t.M
	}
	bm := map[string]core.Mult{}
	for _, t := range b.Clone().Merge().Tuples {
		bm[t.Vals.Key()] = t.M
	}
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}

// rewritePlans lists the RA_agg plans cross-validated against the native
// engine. Tables: r (a, b) and s (c, d).
func rewritePlans() map[string]ra.Node {
	scanR := func() ra.Node { return &ra.Scan{Table: "r"} }
	scanS := func() ra.Node { return &ra.Scan{Table: "s"} }
	return map[string]ra.Node{
		"scan":   scanR(),
		"select": &ra.Select{Child: scanR(), Pred: expr.Leq(expr.Col(0, "a"), expr.CInt(3))},
		"select-complex": &ra.Select{Child: scanR(), Pred: expr.Or(
			expr.And(expr.Gt(expr.Col(0, "a"), expr.CInt(1)), expr.Lt(expr.Col(1, "b"), expr.CInt(4))),
			expr.Eq(expr.Col(0, "a"), expr.Col(1, "b")))},
		"project": &ra.Project{Child: scanR(), Cols: []ra.ProjCol{
			{E: expr.Add(expr.Col(0, "a"), expr.Col(1, "b")), Name: "ab"},
			{E: expr.Sub(expr.Col(0, "a"), expr.CInt(1)), Name: "am"},
			{E: expr.Mul(expr.Col(0, "a"), expr.Col(1, "b")), Name: "prod"},
		}},
		"project-if": &ra.Project{Child: scanR(), Cols: []ra.ProjCol{
			{E: expr.If{
				Cond: expr.Lt(expr.Col(0, "a"), expr.CInt(3)),
				Then: expr.Col(1, "b"),
				Else: expr.Mul(expr.Col(1, "b"), expr.CInt(10))}, Name: "v"},
		}},
		"join": &ra.Join{Left: scanR(), Right: scanS(),
			Cond: expr.Eq(expr.Col(0, "a"), expr.Col(2, "c"))},
		"join-theta": &ra.Join{Left: scanR(), Right: scanS(),
			Cond: expr.Lt(expr.Col(1, "b"), expr.Col(3, "d"))},
		"cross": &ra.Join{Left: scanR(), Right: scanS()},
		"union": &ra.Union{Left: scanR(), Right: scanR()},
		"diff": &ra.Diff{Left: scanR(), Right: &ra.Project{Child: scanS(), Cols: []ra.ProjCol{
			{E: expr.Col(0, "c"), Name: "a"}, {E: expr.Col(1, "d"), Name: "b"}}}},
		"agg-global": &ra.Agg{Child: scanR(), Aggs: []ra.AggSpec{
			{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
			{Fn: ra.AggCount, Name: "c"},
			{Fn: ra.AggMin, Arg: expr.Col(0, "a"), Name: "mn"},
			{Fn: ra.AggMax, Arg: expr.Col(1, "b"), Name: "mx"},
		}},
		"agg-group": &ra.Agg{Child: scanR(), GroupBy: []int{1}, Aggs: []ra.AggSpec{
			{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
			{Fn: ra.AggCount, Name: "c"},
			{Fn: ra.AggMin, Arg: expr.Col(0, "a"), Name: "mn"},
			{Fn: ra.AggMax, Arg: expr.Col(0, "a"), Name: "mx"},
		}},
		"agg-avg": &ra.Agg{Child: scanR(), GroupBy: []int{1}, Aggs: []ra.AggSpec{
			{Fn: ra.AggAvg, Arg: expr.Col(0, "a"), Name: "av"}}},
		"agg-avg-global": &ra.Agg{Child: scanR(), Aggs: []ra.AggSpec{
			{Fn: ra.AggAvg, Arg: expr.Col(0, "a"), Name: "av"}}},
		"having": &ra.Select{
			Child: &ra.Agg{Child: scanR(), GroupBy: []int{1}, Aggs: []ra.AggSpec{
				{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"}}},
			Pred: expr.Gt(expr.Col(1, "s"), expr.CInt(3))},
		"join-agg": &ra.Agg{
			Child: &ra.Join{Left: scanR(), Right: scanS(),
				Cond: expr.Eq(expr.Col(0, "a"), expr.Col(2, "c"))},
			GroupBy: []int{1},
			Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(3, "d"), Name: "sd"}}},
		"orderby": &ra.OrderBy{Child: scanR(), Keys: []int{0}},
	}
}

// TestTheorem8RewriteEqualsNative: the middleware path must produce
// exactly the native result: Dec(rewr(Q)(Enc(D))) = Q(D).
func TestTheorem8RewriteEqualsNative(t *testing.T) {
	plans := rewritePlans()
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for name, plan := range plans {
		for trial := 0; trial < trials; trial++ {
			seed := int64(trial*977) + int64(len(name))
			r := rand.New(rand.NewSource(seed))
			db := core.DB{
				"r": sampleRelation(r, schema.New("a", "b"), 1+r.Intn(5)),
				"s": sampleRelation(r, schema.New("c", "d"), 1+r.Intn(4)),
			}
			native, err := core.Exec(context.Background(), plan, db, core.Options{})
			if err != nil {
				t.Fatalf("[%s seed=%d] native: %v", name, seed, err)
			}
			viaEnc, err := Exec(context.Background(), plan, db)
			if err != nil {
				t.Fatalf("[%s seed=%d] rewrite: %v", name, seed, err)
			}
			if !relEqual(native, viaEnc) {
				t.Fatalf("[%s seed=%d] mismatch:\nnative:\n%s\nrewrite:\n%s\ninput r:\n%s\ninput s:\n%s",
					name, seed, native.Sort(), viaEnc.Sort(), db["r"], db["s"])
			}
		}
	}
}

func TestRewriteDistinctUnsupported(t *testing.T) {
	db := core.DB{"r": core.New(schema.New("a"))}
	if _, err := Exec(context.Background(), &ra.Distinct{Child: &ra.Scan{Table: "r"}}, db); err == nil {
		t.Error("distinct should be rejected by the middleware")
	}
	_, _, err := Rewrite(&ra.Scan{Table: "missing"}, ra.CatalogMap{})
	if err == nil {
		t.Error("unknown table should error")
	}
}

func TestRewriteExprIsNull(t *testing.T) {
	// Null handling through the rewrite: IS NULL over an uncertain value.
	rel := core.New(schema.New("a"))
	rel.Add(core.Tuple{Vals: rangeval.Tuple{rangeval.Certain(types.Null())}, M: core.One})
	rel.Add(core.Tuple{Vals: rangeval.Tuple{iv(1, 2, 3)}, M: core.One})
	rel.Add(core.Tuple{Vals: rangeval.Tuple{rangeval.New(types.Null(), types.Int(5), types.Int(9))}, M: core.One})
	plan := &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{
		{E: expr.If{Cond: expr.IsNull{E: expr.Col(0, "a")}, Then: expr.CInt(1), Else: expr.CInt(0)}, Name: "isnull"},
	}}
	db := core.DB{"r": rel}
	native, err := core.Exec(context.Background(), plan, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaEnc, err := Exec(context.Background(), plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relEqual(native, viaEnc) {
		t.Fatalf("IS NULL mismatch:\nnative:\n%s\nrewrite:\n%s", native, viaEnc)
	}
}
