package encoding

import (
	"context"
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// TestRewritePathPreservesBounds is Corollary 2 exercised END TO END
// through the middleware: random block-independent databases are encoded,
// queries are rewritten and run on the deterministic engine, and the
// decoded result must bound the query answer in every enumerated world.
func TestRewritePathPreservesBounds(t *testing.T) {
	plans := map[string]ra.Node{
		"select": &ra.Select{Child: &ra.Scan{Table: "r"},
			Pred: expr.Leq(expr.Col(0, "a"), expr.CInt(3))},
		"agg": &ra.Agg{Child: &ra.Scan{Table: "r"}, GroupBy: []int{1},
			Aggs: []ra.AggSpec{
				{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
				{Fn: ra.AggCount, Name: "c"},
			}},
		"diff": &ra.Diff{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "r2"}},
	}
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for name, plan := range plans {
		for trial := 0; trial < trials; trial++ {
			seed := int64(trial*31 + len(name))
			rng := rand.New(rand.NewSource(seed))
			rRel, rWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(3))
			sRel, sWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(2))
			db := core.DB{"r": rRel, "r2": sRel}
			res, err := Exec(context.Background(), plan, db)
			if err != nil {
				t.Fatalf("[%s seed=%d] %v", name, seed, err)
			}
			for _, rw := range rWorlds {
				for _, sw := range sWorlds {
					det, err := bag.Exec(context.Background(), plan, bag.DB{"r": rw, "r2": sw})
					if err != nil {
						t.Fatalf("[%s seed=%d] det: %v", name, seed, err)
					}
					if !res.BoundsWorld(det) {
						t.Fatalf("[%s seed=%d] middleware result does not bound world:\nworld:\n%s\nresult:\n%s",
							name, seed, det, res)
					}
				}
			}
		}
	}
}

// randomIncomplete builds an AU-relation plus all its possible worlds.
func randomIncomplete(r *rand.Rand, s schema.Schema, rows int) (*core.Relation, []*bag.Relation) {
	type rowSpec struct {
		alts     []types.Tuple
		optional bool
	}
	var specs []rowSpec
	for i := 0; i < rows; i++ {
		n := 1 + r.Intn(2)
		spec := rowSpec{optional: r.Intn(4) == 0}
		for a := 0; a < n; a++ {
			t := make(types.Tuple, s.Arity())
			for c := range t {
				t[c] = types.Int(int64(r.Intn(5)))
			}
			spec.alts = append(spec.alts, t)
		}
		specs = append(specs, spec)
	}
	au := core.New(s)
	for _, spec := range specs {
		vals := make(rangeval.Tuple, s.Arity())
		for c := 0; c < s.Arity(); c++ {
			lo, hi := spec.alts[0][c], spec.alts[0][c]
			for _, a := range spec.alts[1:] {
				lo, hi = types.Min(lo, a[c]), types.Max(hi, a[c])
			}
			vals[c] = rangeval.New(lo, spec.alts[0][c], hi)
		}
		m := core.Mult{Lo: 1, SG: 1, Hi: 1}
		if spec.optional {
			m.Lo = 0
		}
		au.Add(core.Tuple{Vals: vals, M: m})
	}
	worlds := []*bag.Relation{bag.New(s)}
	for _, spec := range specs {
		var next []*bag.Relation
		for _, w := range worlds {
			for _, alt := range spec.alts {
				nw := w.Clone()
				nw.Add(alt, 1)
				next = append(next, nw)
			}
			if spec.optional {
				next = append(next, w.Clone())
			}
		}
		worlds = next
	}
	for _, w := range worlds {
		w.Merge()
	}
	return au, worlds
}
