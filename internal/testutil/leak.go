// Package testutil holds small helpers shared by tests across packages.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// NoLeaks asserts at test cleanup that the goroutine count has returned
// to (about) what it was when NoLeaks was called: the contract that
// cancellation, server shutdown and client/pool Close leave nothing
// running. Goroutines wind down asynchronously after a cancel or a
// Close, so the check polls with a deadline instead of sampling once.
//
// slack tolerates runtime-owned goroutines that appear lazily (e.g. the
// first timer); 2 matches what the executor cancellation tests have
// always allowed. Tests using NoLeaks must not run in parallel with
// tests that start goroutines, so call it from sequential tests only.
func NoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		const slack = 2
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, stacks())
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// stacks renders all goroutine stacks, truncated to keep failures
// readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	s := string(buf)
	const max = 16 << 10
	if len(s) > max {
		if i := strings.LastIndex(s[:max], "\n\ngoroutine "); i > 0 {
			s = s[:i]
		} else {
			s = s[:max]
		}
		s = fmt.Sprintf("%s\n... (stacks truncated)", s)
	}
	return s
}
