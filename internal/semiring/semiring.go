// Package semiring implements the commutative semiring framework of
// K-relations (Green et al., reviewed in Section 3.1 of the paper): the bag
// semiring N, the set semiring B, natural orders, the monus operation used
// for set difference (Section 8.2), lattice operations (glb/lub) for
// l-semirings (Section 3.2.1), and the K^AU triple construction
// (Definition 11).
//
// The production query pipeline is specialized to N^AU (see internal/core);
// this package carries the generic formal layer, exercised by unit and
// property tests mirroring the paper's algebraic claims.
package semiring

import "fmt"

// Semiring is a commutative semiring over K.
type Semiring[K any] interface {
	Zero() K
	One() K
	Add(a, b K) K
	Mul(a, b K) K
	Eq(a, b K) bool
}

// Ordered is a naturally ordered semiring: k <= k' iff exists k” with
// k + k” = k' (Section 3.1, eq. 1).
type Ordered[K any] interface {
	Semiring[K]
	// NatLeq is the natural order.
	NatLeq(a, b K) bool
}

// Lattice is an l-semiring: the natural order forms a lattice.
type Lattice[K any] interface {
	Ordered[K]
	// Glb is the greatest lower bound (certain annotation, ⊓).
	Glb(a, b K) K
	// Lub is the least upper bound (possible annotation, ⊔).
	Lub(a, b K) K
}

// WithMonus is an m-semiring: a semiring with monus (truncated difference).
type WithMonus[K any] interface {
	Semiring[K]
	// Monus returns the smallest k with b + k >= a.
	Monus(a, b K) K
}

// --------------------------------------------------------------------- N --

// N is the bag semiring of natural numbers (represented as int64).
type N struct{}

func (N) Zero() int64            { return 0 }
func (N) One() int64             { return 1 }
func (N) Add(a, b int64) int64   { return a + b }
func (N) Mul(a, b int64) int64   { return a * b }
func (N) Eq(a, b int64) bool     { return a == b }
func (N) NatLeq(a, b int64) bool { return a <= b }
func (N) Glb(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func (N) Lub(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Monus is truncated subtraction: max(0, a-b).
func (N) Monus(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return 0
}

// --------------------------------------------------------------------- B --

// B is the set semiring of booleans.
type B struct{}

func (B) Zero() bool         { return false }
func (B) One() bool          { return true }
func (B) Add(a, b bool) bool { return a || b }
func (B) Mul(a, b bool) bool { return a && b }
func (B) Eq(a, b bool) bool  { return a == b }
func (B) NatLeq(a, b bool) bool {
	return !a || b // false <= true
}
func (B) Glb(a, b bool) bool { return a && b }
func (B) Lub(a, b bool) bool { return a || b }

// Monus: a - b = a AND NOT b is the smallest k with b OR k >= a.
func (B) Monus(a, b bool) bool { return a && !b }

// ------------------------------------------------------------------ K^AU --

// Triple is an element of K^AU (Definition 11): a lower bound on the
// certain annotation, the selected-guess annotation, and an upper bound on
// the possible annotation, with Lo <= SG <= Hi in the natural order.
type Triple[K any] struct {
	Lo, SG, Hi K
}

// AU lifts an l-semiring K to the semiring K^AU of bound triples with
// pointwise operations (the direct product K^3 restricted to ordered
// triples; the restriction is preserved by + and · because semiring
// operations preserve the natural order in l-semirings).
type AU[K any] struct {
	K Lattice[K]
}

func (s AU[K]) Zero() Triple[K] {
	return Triple[K]{Lo: s.K.Zero(), SG: s.K.Zero(), Hi: s.K.Zero()}
}

func (s AU[K]) One() Triple[K] {
	return Triple[K]{Lo: s.K.One(), SG: s.K.One(), Hi: s.K.One()}
}

func (s AU[K]) Add(a, b Triple[K]) Triple[K] {
	return Triple[K]{Lo: s.K.Add(a.Lo, b.Lo), SG: s.K.Add(a.SG, b.SG), Hi: s.K.Add(a.Hi, b.Hi)}
}

func (s AU[K]) Mul(a, b Triple[K]) Triple[K] {
	return Triple[K]{Lo: s.K.Mul(a.Lo, b.Lo), SG: s.K.Mul(a.SG, b.SG), Hi: s.K.Mul(a.Hi, b.Hi)}
}

func (s AU[K]) Eq(a, b Triple[K]) bool {
	return s.K.Eq(a.Lo, b.Lo) && s.K.Eq(a.SG, b.SG) && s.K.Eq(a.Hi, b.Hi)
}

// Valid reports whether the triple satisfies Lo <= SG <= Hi.
func (s AU[K]) Valid(a Triple[K]) bool {
	return s.K.NatLeq(a.Lo, a.SG) && s.K.NatLeq(a.SG, a.Hi)
}

// MonusBoundPreserving implements the bound-preserving set-difference
// combination of Section 8.2: the lower bound subtracts the other side's
// upper bound and vice versa. (The naive pointwise monus does NOT preserve
// bounds; see the counterexample before Definition 22.)
func MonusBoundPreserving[K any](k WithMonus[K], a, b Triple[K]) Triple[K] {
	return Triple[K]{
		Lo: k.Monus(a.Lo, b.Hi),
		SG: k.Monus(a.SG, b.SG),
		Hi: k.Monus(a.Hi, b.Lo),
	}
}

// String renders a triple.
func (t Triple[K]) String() string { return fmt.Sprintf("(%v,%v,%v)", t.Lo, t.SG, t.Hi) }
