package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkSemiringLaws verifies the commutative semiring axioms on sampled
// elements.
func checkSemiringLaws[K any](t *testing.T, s Semiring[K], sample func() K) {
	t.Helper()
	f := func() bool {
		a, b, c := sample(), sample(), sample()
		// commutativity
		if !s.Eq(s.Add(a, b), s.Add(b, a)) || !s.Eq(s.Mul(a, b), s.Mul(b, a)) {
			return false
		}
		// associativity
		if !s.Eq(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			return false
		}
		if !s.Eq(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			return false
		}
		// identities
		if !s.Eq(s.Add(a, s.Zero()), a) || !s.Eq(s.Mul(a, s.One()), a) {
			return false
		}
		// annihilation
		if !s.Eq(s.Mul(a, s.Zero()), s.Zero()) {
			return false
		}
		// distributivity
		if !s.Eq(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	checkSemiringLaws[int64](t, N{}, func() int64 { return int64(r.Intn(20)) })
}

func TestBLaws(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	checkSemiringLaws[bool](t, B{}, func() bool { return r.Intn(2) == 0 })
}

func TestAULaws(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	au := AU[int64]{K: N{}}
	sample := func() Triple[int64] {
		a, b, c := int64(r.Intn(5)), int64(r.Intn(5)), int64(r.Intn(5))
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return Triple[int64]{Lo: a, SG: b, Hi: c}
	}
	checkSemiringLaws[Triple[int64]](t, au, sample)
	// Closure: operations preserve Lo <= SG <= Hi (Definition 11 remark).
	f := func() bool {
		a, b := sample(), sample()
		return au.Valid(au.Add(a, b)) && au.Valid(au.Mul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNaturalOrder(t *testing.T) {
	n := N{}
	if !n.NatLeq(2, 5) || n.NatLeq(5, 2) || !n.NatLeq(3, 3) {
		t.Error("N natural order")
	}
	// natural order is induced by addition: a <= b iff exists c: a+c=b
	for a := int64(0); a < 6; a++ {
		for b := int64(0); b < 6; b++ {
			exists := b >= a
			if n.NatLeq(a, b) != exists {
				t.Errorf("NatLeq(%d,%d)", a, b)
			}
		}
	}
	bs := B{}
	if !bs.NatLeq(false, true) || bs.NatLeq(true, false) || !bs.NatLeq(true, true) || !bs.NatLeq(false, false) {
		t.Error("B natural order")
	}
}

func TestLattice(t *testing.T) {
	n := N{}
	if n.Glb(3, 5) != 3 || n.Lub(3, 5) != 5 {
		t.Error("N glb/lub")
	}
	b := B{}
	if b.Glb(true, false) != false || b.Lub(true, false) != true {
		t.Error("B glb/lub")
	}
	// glb is the certain annotation and lub the possible annotation for
	// bag semantics (certN = min, possN = max), Section 3.2.1.
	anns := []int64{2, 3}
	cert, poss := anns[0], anns[0]
	for _, a := range anns[1:] {
		cert, poss = n.Glb(cert, a), n.Lub(poss, a)
	}
	if cert != 2 || poss != 3 {
		t.Error("cert/poss over worlds")
	}
}

func TestMonus(t *testing.T) {
	n := N{}
	if n.Monus(5, 3) != 2 || n.Monus(3, 5) != 0 || n.Monus(4, 4) != 0 {
		t.Error("N monus")
	}
	// Monus law: a - b is the least k with b + k >= a.
	for a := int64(0); a < 8; a++ {
		for b := int64(0); b < 8; b++ {
			m := n.Monus(a, b)
			if b+m < a {
				t.Errorf("monus too small: %d-%d=%d", a, b, m)
			}
			if m > 0 && b+(m-1) >= a {
				t.Errorf("monus not minimal: %d-%d=%d", a, b, m)
			}
		}
	}
	b := B{}
	if b.Monus(true, false) != true || b.Monus(true, true) != false || b.Monus(false, true) != false {
		t.Error("B monus")
	}
}

// TestMonusPointwiseNotBoundPreserving reproduces the counterexample from
// Section 8.2: pointwise monus on triples can produce Lo > Hi, i.e. it is
// not closed over K^AU, while the bound-preserving variant is.
func TestMonusPointwiseNotBoundPreserving(t *testing.T) {
	au := AU[int64]{K: N{}}
	r := Triple[int64]{Lo: 1, SG: 2, Hi: 2}
	s := Triple[int64]{Lo: 0, SG: 0, Hi: 3}
	n := N{}
	pointwise := Triple[int64]{
		Lo: n.Monus(r.Lo, s.Lo), SG: n.Monus(r.SG, s.SG), Hi: n.Monus(r.Hi, s.Hi),
	}
	if au.Valid(pointwise) {
		t.Fatalf("expected pointwise monus to violate triple ordering, got %v", pointwise)
	}
	fixed := MonusBoundPreserving[int64](n, r, s)
	if !au.Valid(fixed) {
		t.Fatalf("bound-preserving monus invalid: %v", fixed)
	}
	want := Triple[int64]{Lo: 0, SG: 2, Hi: 2}
	if !au.Eq(fixed, want) {
		t.Fatalf("got %v want %v", fixed, want)
	}
}

// Property: bound-preserving monus always yields valid triples.
func TestMonusBoundPreservingValidity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	au := AU[int64]{K: N{}}
	n := N{}
	sample := func() Triple[int64] {
		a := int64(r.Intn(5))
		b := a + int64(r.Intn(5))
		c := b + int64(r.Intn(5))
		return Triple[int64]{Lo: a, SG: b, Hi: c}
	}
	f := func() bool {
		x, y := sample(), sample()
		return au.Valid(MonusBoundPreserving[int64](n, x, y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTripleString(t *testing.T) {
	tr := Triple[int64]{Lo: 1, SG: 2, Hi: 3}
	if tr.String() != "(1,2,3)" {
		t.Errorf("render %q", tr.String())
	}
}
