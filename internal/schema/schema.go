// Package schema implements relation schemas: ordered lists of named
// attributes with index resolution, the minimal metadata layer shared by the
// deterministic bag engine and the AU-DB engine.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// SortedNames returns the keys of a string-keyed map in sorted order: the
// one way every catalog diagnostic (unknown-table errors, table listings)
// enumerates names, never in Go map order.
func SortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResolveFold resolves a table name against a string-keyed map the way
// the planner does — exact match first, then case-insensitive (the
// lexicographically smallest matching name, for determinism) — and
// returns the key it resolved to. Shared by the catalog and both
// executors so their name resolution cannot diverge.
func ResolveFold[V any](m map[string]V, name string) (string, bool) {
	if _, ok := m[name]; ok {
		return name, true
	}
	best := ""
	for n := range m {
		if strings.EqualFold(n, name) && (best == "" || n < best) {
			best = n
		}
	}
	return best, best != ""
}

// LookupFold is ResolveFold returning the resolved value.
func LookupFold[V any](m map[string]V, name string) (V, bool) {
	if k, ok := ResolveFold(m, name); ok {
		return m[k], true
	}
	var zero V
	return zero, false
}

// UnknownTable formats the canonical unknown-table diagnostic shared by
// every catalog (prefix names the reporting package): the available
// tables, already sorted, or a note that none are registered.
func UnknownTable(prefix, name string, names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("%s: unknown table %q (no tables registered)", prefix, name)
	}
	return fmt.Errorf("%s: unknown table %q (have: %s)", prefix, name, strings.Join(names, ", "))
}

// Schema is an ordered list of attribute names.
type Schema struct {
	Attrs []string
}

// New builds a schema from attribute names.
func New(attrs ...string) Schema {
	return Schema{Attrs: append([]string(nil), attrs...)}
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Attrs) }

// IndexOf returns the position of the named attribute, or -1. Lookup is
// case-insensitive and also matches "qualifier.name" suffixes, so "r.a"
// resolves attribute "a" and attribute "r.a" resolves from lookup "a".
func (s Schema) IndexOf(name string) int {
	lower := strings.ToLower(name)
	// Exact (case-insensitive) match first.
	for i, a := range s.Attrs {
		if strings.ToLower(a) == lower {
			return i
		}
	}
	// Qualified suffix match: schema attr "r.a" vs lookup "a" or vice versa.
	for i, a := range s.Attrs {
		la := strings.ToLower(a)
		if strings.HasSuffix(la, "."+lower) || strings.HasSuffix(lower, "."+la) {
			return i
		}
	}
	return -1
}

// MustIndexOf is IndexOf that returns an error for unknown attributes.
func (s Schema) MustIndexOf(name string) (int, error) {
	if i := s.IndexOf(name); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("schema: unknown attribute %q (have %s)", name, s)
}

// Concat returns the concatenation of two schemas, as produced by joins.
func (s Schema) Concat(o Schema) Schema {
	out := make([]string, 0, len(s.Attrs)+len(o.Attrs))
	out = append(out, s.Attrs...)
	out = append(out, o.Attrs...)
	return Schema{Attrs: out}
}

// Project returns the schema of a projection onto the given columns.
func (s Schema) Project(cols []int) Schema {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = s.Attrs[c]
	}
	return Schema{Attrs: out}
}

// Qualify returns a copy with every unqualified attribute prefixed by
// "name.".
func (s Schema) Qualify(name string) Schema {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		if strings.Contains(a, ".") {
			out[i] = a
		} else {
			out[i] = name + "." + a
		}
	}
	return Schema{Attrs: out}
}

// Equal reports whether the two schemas have the same attribute names.
func (s Schema) Equal(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if !strings.EqualFold(s.Attrs[i], o.Attrs[i]) {
			return false
		}
	}
	return true
}

// String renders the schema as (a, b, c).
func (s Schema) String() string {
	return "(" + strings.Join(s.Attrs, ", ") + ")"
}
