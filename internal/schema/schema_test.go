package schema

import "testing"

func TestBasics(t *testing.T) {
	s := New("a", "b", "c")
	if s.Arity() != 3 {
		t.Error("arity")
	}
	if s.IndexOf("b") != 1 || s.IndexOf("B") != 1 {
		t.Error("IndexOf case-insensitive")
	}
	if s.IndexOf("nope") != -1 {
		t.Error("missing attr should be -1")
	}
	if _, err := s.MustIndexOf("nope"); err == nil {
		t.Error("MustIndexOf should error")
	}
	if i, err := s.MustIndexOf("c"); err != nil || i != 2 {
		t.Error("MustIndexOf c")
	}
	if s.String() != "(a, b, c)" {
		t.Errorf("render %q", s.String())
	}
}

func TestQualified(t *testing.T) {
	s := New("r.a", "r.b", "s.a")
	if s.IndexOf("b") != 1 {
		t.Error("suffix match b")
	}
	if s.IndexOf("r.a") != 0 || s.IndexOf("s.a") != 2 {
		t.Error("exact qualified match")
	}
	// "a" matches the first qualified candidate.
	if s.IndexOf("a") != 0 {
		t.Error("ambiguous a resolves to first")
	}
	q := New("x", "y").Qualify("t")
	if q.IndexOf("t.x") != 0 || q.IndexOf("y") != 1 {
		t.Error("Qualify")
	}
	// Already-qualified attrs are not re-qualified.
	qq := q.Qualify("u")
	if qq.Attrs[0] != "t.x" {
		t.Error("double qualify")
	}
	// Reverse suffix: schema has bare name, lookup is qualified.
	s2 := New("a", "b")
	if s2.IndexOf("r.a") != 0 {
		t.Error("qualified lookup against bare schema")
	}
}

func TestConcatProjectEqual(t *testing.T) {
	s := New("a", "b").Concat(New("c"))
	if s.Arity() != 3 || s.IndexOf("c") != 2 {
		t.Error("concat")
	}
	p := s.Project([]int{2, 0})
	if p.Attrs[0] != "c" || p.Attrs[1] != "a" {
		t.Error("project")
	}
	if !New("a", "b").Equal(New("A", "B")) {
		t.Error("equal case-insensitive")
	}
	if New("a").Equal(New("a", "b")) {
		t.Error("arity mismatch equality")
	}
	if New("a", "x").Equal(New("a", "y")) {
		t.Error("name mismatch equality")
	}
}
