package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

func catRel(v int64) *Relation {
	r := New(schema.New("a"))
	r.Add(Tuple{Vals: rangeval.Tuple{rangeval.Certain(types.Int(v))}, M: One})
	return r
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 || len(c.Tables()) != 0 {
		t.Fatal("fresh catalog not empty")
	}
	c.Register("zeta", catRel(1))
	c.Register("alpha", catRel(2))
	c.Register("mid", catRel(3))
	if got := c.Tables(); !sort.StringsAreSorted(got) || len(got) != 3 {
		t.Fatalf("Tables() = %v, want 3 sorted names", got)
	}
	if r, ok := c.Lookup("alpha"); !ok || r.Len() != 1 {
		t.Fatal("Lookup alpha")
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("Lookup nope should miss")
	}
	// Re-registering replaces. (Registered relations may be compacted to
	// the sparse representation, so read rows through the dense view.)
	c.Register("alpha", catRel(9))
	if r, _ := c.Lookup("alpha"); r.Dense().Tuples[0].Vals[0].SG.AsInt() != 9 {
		t.Fatal("Register should replace")
	}
	// ... including under a case-variant spelling: the planner folds
	// names, so the catalog must never hold two case-variants at once.
	c.Register("ALPHA", catRel(10))
	if c.Len() != 3 {
		t.Fatalf("case-variant Register should replace, catalog: %v", c.Tables())
	}
	if r, ok := c.Lookup("alpha"); !ok || r.Dense().Tuples[0].Vals[0].SG.AsInt() != 10 {
		t.Fatal("case-variant Register should be visible through folded Lookup")
	}
	c.Register("alpha", catRel(11))
	c.Drop("mid")
	c.Drop("mid") // no-op
	if c.Len() != 2 {
		t.Fatalf("Len = %d after drop", c.Len())
	}
	if len(c.Schemas()) != 2 || len(c.Snapshot().SGW()) != 2 {
		t.Fatal("Schemas/SGW views")
	}
}

// TestCatalogSnapshotIsolation: a snapshot taken before later
// registrations must not observe them, so in-flight queries are immune to
// concurrent catalog mutation.
func TestCatalogSnapshotIsolation(t *testing.T) {
	c := NewCatalog()
	c.Register("t", catRel(1))
	snap := c.Snapshot()
	c.Register("u", catRel(2))
	c.Drop("t")
	if len(snap) != 1 {
		t.Fatalf("snapshot mutated: %v", snap.Names())
	}
	if _, err := Exec(context.Background(), &ra.Scan{Table: "t"}, snap, Options{}); err != nil {
		t.Fatalf("query over snapshot after Drop: %v", err)
	}
}

// TestCatalogConcurrentAccess is the registration-vs-query race the
// catalog exists to make safe; meaningful under -race.
func TestCatalogConcurrentAccess(t *testing.T) {
	c := NewCatalog()
	c.Register("base", catRel(0))
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			c.Register(fmt.Sprintf("t%d", i), catRel(int64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = c.Tables()
			_, _ = c.Lookup("base")
		}
	}()
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := Exec(context.Background(), &ra.Scan{Table: "base"}, c.Snapshot(), Options{}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// eventObserver records catalog mutation notifications in order.
type eventObserver struct {
	mu     sync.Mutex
	events []string
}

func (o *eventObserver) Registered(name string, r *Relation) {
	o.mu.Lock()
	o.events = append(o.events, "reg:"+name)
	o.mu.Unlock()
}

func (o *eventObserver) Dropped(name string) {
	o.mu.Lock()
	o.events = append(o.events, "drop:"+name)
	o.mu.Unlock()
}

func TestCatalogObserver(t *testing.T) {
	c := NewCatalog()
	obs := &eventObserver{}
	c.SetObserver(obs)
	c.Register("t", catRel(1))
	c.Register("t", catRel(2)) // replacement: Registered only
	c.Register("T", catRel(3)) // case-variant displaces "t"
	c.Drop("nope")             // unknown: no event
	c.Drop("t")                // folds to "T"
	want := []string{"reg:t", "reg:t", "drop:t", "reg:T", "drop:T"}
	if fmt.Sprint(obs.events) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
	// Uninstalling stops notifications.
	c.SetObserver(nil)
	c.Register("u", catRel(4))
	if len(obs.events) != len(want) {
		t.Fatalf("observer notified after uninstall: %v", obs.events)
	}
}
