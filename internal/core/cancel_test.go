package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/testutil"
	"github.com/audb/audb/internal/types"
)

// uncertainJoinInput builds a relation whose join attribute is always
// uncertain, so an equi-join degenerates to the quadratic overlap join —
// the worst case the cancellation machinery must abort from.
func uncertainJoinInput(name string, rows int) *Relation {
	r := New(schema.New(name+"k", name+"v"))
	for i := 0; i < rows; i++ {
		r.Add(Tuple{
			Vals: rangeval.Tuple{
				rangeval.New(types.Int(int64(i)), types.Int(int64(i+1)), types.Int(int64(i+2))),
				rangeval.Certain(types.Int(int64(i % 31))),
			},
			M: One,
		})
	}
	return r
}

func cancelPlan() ra.Node {
	return &ra.Agg{
		Child: &ra.Join{
			Left:  &ra.Scan{Table: "l"},
			Right: &ra.Scan{Table: "r"},
			Cond:  expr.Eq(expr.Col(0, "lk"), expr.Col(2, "rk")),
		},
		GroupBy: []int{1},
		Aggs:    []ra.AggSpec{{Fn: ra.AggCount, Name: "n"}},
	}
}

// TestExecCancellation: a mid-flight cancellation of a long join +
// aggregation must surface ctx.Err() promptly in both the serial and the
// parallel executor, with every worker goroutine joined.
func TestExecCancellation(t *testing.T) {
	rows := 2500
	if testing.Short() {
		rows = 1000
	}
	db := DB{"l": uncertainJoinInput("l", rows), "r": uncertainJoinInput("r", rows)}
	for _, workers := range []int{1, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testutil.NoLeaks(t)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(15 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := Exec(ctx, cancelPlan(), db, Options{Workers: workers})
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v (after %s)", err, elapsed)
			}
			if elapsed > time.Second {
				t.Fatalf("cancellation took %s, want well under a second", elapsed)
			}
		})
	}
}

// TestExecPreCancelled: operators must not start work under an already
// cancelled context, including the per-operator paths (scan, select,
// distinct, diff, orderby) that never reach a chunked loop.
func TestExecPreCancelled(t *testing.T) {
	r := uncertainJoinInput("r", 8)
	db := DB{"l": uncertainJoinInput("l", 8), "r": r}
	plans := []ra.Node{
		&ra.Scan{Table: "r"},
		&ra.Select{Child: &ra.Scan{Table: "r"}, Pred: expr.Leq(expr.Col(0, "rk"), expr.CInt(3))},
		&ra.Distinct{Child: &ra.Scan{Table: "r"}},
		&ra.Diff{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "r"}},
		&ra.OrderBy{Child: &ra.Scan{Table: "r"}, Keys: []int{0}},
		cancelPlan(),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, plan := range plans {
		if _, err := Exec(ctx, plan, db, Options{}); !errors.Is(err, context.Canceled) {
			t.Errorf("%T: want context.Canceled, got %v", plan, err)
		}
	}
	// A nil context falls back to context.Background and succeeds.
	var nilCtx context.Context
	if _, err := Exec(nilCtx, &ra.Scan{Table: "r"}, db, Options{}); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
}

// TestNilContextCompression: the compressed join path also respects
// cancellation (it routes through split + nested join).
func TestCompressedJoinCancellation(t *testing.T) {
	rows := 1500
	if testing.Short() {
		rows = 600
	}
	db := DB{"l": uncertainJoinInput("l", rows), "r": uncertainJoinInput("r", rows)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Exec(ctx, cancelPlan(), db, Options{JoinCompression: 8, AggCompression: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("compressed path: want context.Canceled, got %v", err)
	}
}
