package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// randomAURelation builds a random AU-relation mixing certain and
// uncertain tuples.
func randomAURelation(r *rand.Rand, s schema.Schema, rows int) *Relation {
	out := New(s)
	for i := 0; i < rows; i++ {
		vals := make(rangeval.Tuple, s.Arity())
		for c := range vals {
			sg := int64(r.Intn(20))
			if r.Intn(3) == 0 {
				vals[c] = iv(sg-int64(r.Intn(4)), sg, sg+int64(r.Intn(4)))
			} else {
				vals[c] = civ(sg)
			}
		}
		lo := int64(r.Intn(2))
		sgm := lo + int64(r.Intn(2))
		hi := sgm + int64(r.Intn(2))
		if hi == 0 {
			hi = 1
		}
		out.Add(Tuple{Vals: vals, M: Mult{lo, sgm, hi}})
	}
	return out
}

// TestHybridJoinEqualsNaive: the hash-partitioned hybrid join is an exact
// implementation — it must produce the same merged result as the nested
// loop on every input (an ablation of the fast path, not a bound check).
func TestHybridJoinEqualsNaive(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		l := randomAURelation(r, schema.New("a", "b"), 1+r.Intn(8))
		rr := randomAURelation(r, schema.New("c", "d"), 1+r.Intn(8))
		db := DB{"l": l, "r": rr}
		plan := &ra.Join{
			Left:  &ra.Scan{Table: "l"},
			Right: &ra.Scan{Table: "r"},
			Cond: expr.And(
				expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
				expr.Leq(expr.Col(1, "b"), expr.Col(3, "d"))),
		}
		hybrid, err := Exec(context.Background(), plan, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Exec(context.Background(), plan, db, Options{NaiveJoin: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameRelation(hybrid, naive) {
			t.Fatalf("trial %d: hybrid != naive\nhybrid:\n%s\nnaive:\n%s\ninputs:\n%s\n%s",
				trial, hybrid.Sort(), naive.Sort(), l, rr)
		}
	}
}

func sameRelation(a, b *Relation) bool {
	am := map[string]Mult{}
	for _, t := range a.Clone().Merge().Tuples {
		am[t.Vals.Key()] = t.M
	}
	bm := map[string]Mult{}
	for _, t := range b.Clone().Merge().Tuples {
		bm[t.Vals.Key()] = t.M
	}
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}

// TestCompressionMonotonicity: smaller compression targets yield coarser
// relations — fewer stored tuples, never less possible mass.
func TestCompressionMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	rel := randomAURelation(r, schema.New("a", "b"), 60)
	_, up := Split(rel)
	prevLen := up.Len() + 1
	for _, ct := range []int{32, 8, 2} {
		c := Compress(up, 0, ct)
		if c.Len() > ct {
			t.Fatalf("CT=%d produced %d tuples", ct, c.Len())
		}
		if c.Len() > prevLen {
			t.Fatalf("compression not monotone: %d then %d", prevLen, c.Len())
		}
		if c.PossibleSize() != up.PossibleSize() {
			t.Fatalf("CT=%d lost mass: %d vs %d", ct, c.PossibleSize(), up.PossibleSize())
		}
		prevLen = c.Len()
	}
}

// TestSplitRoundtripSGW: splitting preserves the selected-guess world for
// random relations (Lemma 6's SGW clause).
func TestSplitRoundtripSGW(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		r := rand.New(rand.NewSource(int64(200 + trial)))
		rel := randomAURelation(r, schema.New("a", "b"), 1+r.Intn(12))
		sg, up := Split(rel)
		both := New(rel.Schema)
		both.Tuples = append(both.Tuples, sg.Tuples...)
		both.Tuples = append(both.Tuples, up.Tuples...)
		if !both.SGW().Equal(rel.SGW()) {
			t.Fatalf("trial %d: split changed the SGW\noriginal:\n%s\nsplit:\n%s",
				trial, rel.SGW(), both.SGW())
		}
	}
}

// TestJoinCompressionNeverLosesSGW: Lemma 10.1's practical consequence —
// under any compression target the join result's SGW equals the
// deterministic join of the SGWs.
func TestJoinCompressionNeverLosesSGW(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		r := rand.New(rand.NewSource(int64(300 + trial)))
		db := DB{
			"l": randomAURelation(r, schema.New("a", "b"), 1+r.Intn(10)),
			"r": randomAURelation(r, schema.New("c", "d"), 1+r.Intn(10)),
		}
		plan := &ra.Join{
			Left:  &ra.Scan{Table: "l"},
			Right: &ra.Scan{Table: "r"},
			Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
		}
		exact, err := Exec(context.Background(), plan, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ct := range []int{1, 2, 7} {
			comp, err := Exec(context.Background(), plan, db, Options{JoinCompression: ct})
			if err != nil {
				t.Fatal(err)
			}
			if !comp.SGW().Equal(exact.SGW()) {
				t.Fatalf("trial %d CT=%d: SGW changed", trial, ct)
			}
			// Possible mass can only grow under compression.
			if comp.PossibleSize() < exact.PossibleSize() {
				t.Fatalf("trial %d CT=%d: possible mass shrank (%d < %d)",
					trial, ct, comp.PossibleSize(), exact.PossibleSize())
			}
		}
	}
}

// TestLimitAndOrderByOverAU covers the presentation operators on the
// native engine.
func TestLimitAndOrderByOverAU(t *testing.T) {
	rel := New(schema.New("v"))
	for i := int64(5); i >= 1; i-- {
		rel.Add(Tuple{Vals: rangeval.Tuple{civ(i)}, M: One})
	}
	db := DB{"t": rel}
	out, err := Exec(context.Background(), &ra.Limit{Child: &ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{0}}, N: 2}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Tuples[0].Vals[0].SG.AsInt() != 1 {
		t.Fatalf("limit/order:\n%s", out)
	}
	big, err := Exec(context.Background(), &ra.Limit{Child: &ra.Scan{Table: "t"}, N: 99}, db, Options{})
	if err != nil || big.Len() != 5 {
		t.Fatalf("limit larger than input: %v", err)
	}
}

// TestSelectionErrorPropagation: scalar errors surface, they do not panic.
func TestSelectionErrorPropagation(t *testing.T) {
	rel := New(schema.New("v"))
	rel.Add(Tuple{Vals: rangeval.Tuple{civ(1)}, M: One})
	db := DB{"t": rel}
	bad := expr.Eq(expr.Div(expr.CInt(1), expr.CInt(0)), expr.CInt(1))
	if _, err := Exec(context.Background(), &ra.Select{Child: &ra.Scan{Table: "t"}, Pred: bad}, db, Options{}); err == nil {
		t.Error("division by zero in predicate should error")
	}
	if _, err := Exec(context.Background(), &ra.Project{Child: &ra.Scan{Table: "t"},
		Cols: []ra.ProjCol{{E: expr.Add(expr.Col(0, "v"), expr.CStr("x")), Name: "bad"}}}, db, Options{}); err == nil {
		t.Error("type error in projection should error")
	}
	if _, err := Exec(context.Background(), &ra.Agg{Child: &ra.Scan{Table: "t"},
		Aggs: []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Mul(expr.Col(0, "v"), expr.CStr("x")), Name: "bad"}}}, db, Options{}); err == nil {
		t.Error("type error in aggregate should error")
	}
}

// TestAggregationMinMaxWithUncertainExistence pins the MIN/MAX neutral
// element semantics: a group whose only member may be absent has an
// unbounded-above MIN (it may be empty, so no upper cap exists).
func TestAggregationMinMaxWithUncertainExistence(t *testing.T) {
	rel := New(schema.New("g", "v"))
	rel.Add(Tuple{Vals: rangeval.Tuple{civ(1), civ(10)}, M: Mult{0, 1, 1}})
	out, err := Exec(context.Background(), &ra.Agg{
		Child:   &ra.Scan{Table: "t"},
		GroupBy: []int{0},
		Aggs: []ra.AggSpec{
			{Fn: ra.AggMin, Arg: expr.Col(1, "v"), Name: "mn"},
			{Fn: ra.AggMax, Arg: expr.Col(1, "v"), Name: "mx"},
		},
	}, DB{"t": rel}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mn := out.Tuples[0].Vals[1]
	mx := out.Tuples[0].Vals[2]
	if mn.Hi.Kind() != types.KindPosInf {
		t.Errorf("uncertain-existence MIN upper must be +inf: %v", mn)
	}
	if types.Compare(mn.Lo, types.Int(10)) != 0 {
		t.Errorf("MIN lower should be 10: %v", mn)
	}
	if mx.Lo.Kind() != types.KindNegInf {
		t.Errorf("uncertain-existence MAX lower must be -inf: %v", mx)
	}
	if out.Tuples[0].M != (Mult{0, 1, 1}) {
		t.Errorf("row annotation %v", out.Tuples[0].M)
	}
}
