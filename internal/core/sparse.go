package core

import (
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Sparse relation storage. A Relation normally stores its rows as a slice
// of Tuples — a full [lb/sg/ub] triple per attribute and a multiplicity
// triple per row — but on realistic workloads most values are certain, so
// the dense layout pays 3x memory and per-attribute range arithmetic for
// bounds that are all equal. A compacted relation instead stores columns
// (rangeval.Col): a fully certain column is one flat value slice, an
// uncertain column keeps its triples; multiplicities get the same
// treatment (one int64 per row when every row's triple is (m,m,m)).
//
// The representation is invisible to query semantics: operators that have
// a certain-only fast path read the flat columns directly, everything
// else materializes a fresh dense view at operator entry (Dense), and any
// in-place mutation densifies first. A sparse relation is never converted
// back to dense in place while it may be shared (see Compact); flips go
// through replacement registration in the catalog.

// Repr identifies a relation's storage representation.
type Repr uint8

const (
	// ReprDense is the row-major []Tuple layout.
	ReprDense Repr = iota
	// ReprSparse is the columnar layout with flat certain columns.
	ReprSparse
)

// String renders the representation name as audbsh \stats reports it.
func (r Repr) String() string {
	if r == ReprSparse {
		return "sparse"
	}
	return "dense"
}

// ReprMode selects how a relation's representation is chosen.
type ReprMode uint8

const (
	// ReprAuto picks sparse when the flat-column fraction reaches the
	// policy threshold.
	ReprAuto ReprMode = iota
	// ReprForceDense keeps every relation dense.
	ReprForceDense
	// ReprForceSparse compacts every non-empty relation.
	ReprForceSparse
)

// DefaultSparseThreshold is the flat-column fraction (the multiplicity
// column counts as one more column) at which ReprAuto compacts a table.
const DefaultSparseThreshold = 0.5

// StoragePolicy decides the storage representation of registered
// relations. The zero value is ReprAuto with DefaultSparseThreshold.
type StoragePolicy struct {
	// Mode selects automatic choice or a manual override.
	Mode ReprMode
	// Threshold is the minimum fraction of flat columns (out of
	// arity+1, counting multiplicities) for ReprAuto to pick sparse;
	// <= 0 means DefaultSparseThreshold.
	Threshold float64
}

func (p StoragePolicy) threshold() float64 {
	if p.Threshold <= 0 {
		return DefaultSparseThreshold
	}
	return p.Threshold
}

// sparseRows is the columnar payload of a compacted relation.
type sparseRows struct {
	n    int
	cols []rangeval.Col
	// mflat holds per-row certain multiplicities (the triple (m,m,m)
	// stored once); mdense holds full triples. Exactly one is non-nil
	// for n > 0.
	mflat  []int64
	mdense []Mult
	// fastCertain caches the precondition for the certain-only kernels:
	// every column flat and null-free, every multiplicity certain.
	// (Null-free matters because certain-null comparisons diverge:
	// range evaluation keeps a maybe-row where deterministic evaluation
	// drops it.)
	fastCertain bool
}

func (sp *sparseRows) multAt(i int) Mult {
	if sp.mflat != nil {
		m := sp.mflat[i]
		return Mult{Lo: m, SG: m, Hi: m}
	}
	return sp.mdense[i]
}

// denseTuples materializes rows [lo, hi) as fresh dense tuples. The Vals
// slices are carved from one arena allocation and share nothing with the
// sparse storage except immutable value internals.
func (sp *sparseRows) denseTuples(lo, hi int) []Tuple {
	n := hi - lo
	arity := len(sp.cols)
	out := make([]Tuple, n)
	arena := make(rangeval.Tuple, n*arity)
	for i := 0; i < n; i++ {
		vals := arena[i*arity : (i+1)*arity : (i+1)*arity]
		for c := range sp.cols {
			vals[c] = sp.cols[c].At(lo + i)
		}
		out[i] = Tuple{Vals: vals, M: sp.multAt(lo + i)}
	}
	return out
}

// Repr returns the relation's current storage representation.
func (r *Relation) Repr() Repr {
	if r.sp != nil {
		return ReprSparse
	}
	return ReprDense
}

// IsSparse reports whether the relation is in the columnar representation.
func (r *Relation) IsSparse() bool { return r.sp != nil }

// FastCertain reports whether the relation qualifies for the certain-only
// kernels: sparse, every column flat and null-free, every multiplicity
// certain. Operators must re-check after any fallback densification.
func (r *Relation) FastCertain() bool { return r.sp != nil && r.sp.fastCertain }

// StorageDetail describes the representation for statistics reporting:
// how many of the relation's columns are flat and whether multiplicities
// are stored flat. For a dense relation flatCols and multFlat are zero.
func (r *Relation) StorageDetail() (repr Repr, flatCols int, multFlat bool) {
	if r.sp == nil {
		return ReprDense, 0, false
	}
	for _, c := range r.sp.cols {
		if c.IsFlat() {
			flatCols++
		}
	}
	return ReprSparse, flatCols, r.sp.mflat != nil
}

// FlatCol returns column c's flat value slice when the relation is sparse
// and that column is flat (read-only), or nil. The certain-only kernels
// use it to evaluate deterministic expressions without materializing
// range triples.
func (r *Relation) FlatCol(c int) []types.Value {
	if r.sp == nil {
		return nil
	}
	return r.sp.cols[c].Flat
}

// flatView returns every flat column slice of a FastCertain relation,
// indexable as flat[col][row].
func (r *Relation) flatView() [][]types.Value {
	out := make([][]types.Value, len(r.sp.cols))
	for c := range out {
		out[c] = r.sp.cols[c].Flat
	}
	return out
}

// SparseView exposes the sparse storage for zero-copy batched iteration
// (the pipelined executor's columnar scans): the per-column storage and
// the multiplicity slices, of which exactly one is non-nil when the
// relation has rows. ok is false for a dense relation. All returned
// slices alias the relation's storage and are read-only, like the columns
// themselves (see rangeval.Col).
func (r *Relation) SparseView() (cols []rangeval.Col, mflat []int64, mdense []Mult, ok bool) {
	if r.sp == nil {
		return nil, nil, nil, false
	}
	return r.sp.cols, r.sp.mflat, r.sp.mdense, true
}

// MultAt returns row i's multiplicity in either representation.
func (r *Relation) MultAt(i int) Mult {
	if r.sp != nil {
		return r.sp.multAt(i)
	}
	return r.Tuples[i].M
}

// Dense returns a dense view of the relation: r itself when already
// dense, otherwise a fresh materialization that shares no mutable state
// with r. Operators without a sparse-aware path call this at entry; the
// result is transient and never cached back onto r.
func (r *Relation) Dense() *Relation {
	if r.sp == nil {
		return r
	}
	out := New(r.Schema)
	out.Tuples = r.sp.denseTuples(0, r.sp.n)
	return out
}

// DenseRange materializes rows [lo, hi) as fresh dense tuples, for
// batched iteration (internal/phys) over a sparse relation.
func (r *Relation) DenseRange(lo, hi int) []Tuple {
	if r.sp == nil {
		return r.Tuples[lo:hi]
	}
	return r.sp.denseTuples(lo, hi)
}

// CertainRow fills det with row i's flat values. Only valid when
// FastCertain holds; det must have the relation's arity.
func (r *Relation) CertainRow(i int, det types.Tuple) {
	for c := range r.sp.cols {
		det[c] = r.sp.cols[c].Flat[i]
	}
}

// EachTuple calls fn for every row in either representation. For a sparse
// relation the Tuple's Vals slice is a scratch buffer reused between
// calls: fn must not retain it (Clone first to keep a row).
func (r *Relation) EachTuple(fn func(Tuple) error) error {
	if r.sp == nil {
		for _, t := range r.Tuples {
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	}
	sp := r.sp
	scratch := make(rangeval.Tuple, len(sp.cols))
	for i := 0; i < sp.n; i++ {
		for c := range sp.cols {
			scratch[c] = sp.cols[c].At(i)
		}
		if err := fn(Tuple{Vals: scratch, M: sp.multAt(i)}); err != nil {
			return err
		}
	}
	return nil
}

// densifyInPlace converts the relation back to the dense layout. Only
// safe on relations the caller owns exclusively (mutation entry points);
// a registered relation flips representation via replacement in the
// catalog instead, never in place under concurrent readers.
func (r *Relation) densifyInPlace() {
	if r.sp == nil {
		return
	}
	r.Tuples = r.sp.denseTuples(0, r.sp.n)
	r.sp = nil
}

// flatFrac returns the fraction of the relation's columns (multiplicities
// count as one more) that are entirely certain, or -1 when rows disagree
// with the schema arity and the relation must stay dense.
func flatFrac(r *Relation) float64 {
	arity := r.Schema.Arity()
	colFlat := make([]bool, arity)
	for i := range colFlat {
		colFlat[i] = true
	}
	multFlat := true
	for i := range r.Tuples {
		t := &r.Tuples[i]
		if len(t.Vals) != arity {
			return -1
		}
		if multFlat && !(t.M.Lo == t.M.SG && t.M.SG == t.M.Hi) {
			multFlat = false
		}
		for c := range t.Vals {
			if colFlat[c] && !t.Vals[c].IsCertain() {
				colFlat[c] = false
			}
		}
	}
	flat := 0
	for _, f := range colFlat {
		if f {
			flat++
		}
	}
	if multFlat {
		flat++
	}
	return float64(flat) / float64(arity+1)
}

// Compact converts a dense relation to the sparse representation in place
// when the policy calls for it, returning the representation in effect.
// An already sparse relation is left as is even under ReprForceDense:
// compaction runs before a relation becomes visible to queries, and a
// visible sparse relation may have concurrent readers, so sparse→dense
// flips are done by building a replacement (see Database.Analyze), never
// in place. Empty relations stay dense so the register-then-add-rows
// pattern keeps appending to []Tuple.
func (r *Relation) Compact(pol StoragePolicy) Repr {
	if r.sp != nil {
		return ReprSparse
	}
	if pol.Mode == ReprForceDense || len(r.Tuples) == 0 {
		return ReprDense
	}
	frac := flatFrac(r)
	if frac < 0 || (pol.Mode == ReprAuto && frac < pol.threshold()) {
		return ReprDense
	}
	b := NewRelationBuilder(r.Schema, len(r.Tuples))
	for _, t := range r.Tuples {
		b.Add(t)
	}
	r.sp = b.buildSparse()
	r.Tuples = nil
	return ReprSparse
}

// RelationBuilder accumulates rows column-wise so bulk ingest (COPY, the
// wire decoder) can materialize straight into sparse form without a
// second pass over the data. Add mirrors Relation.Add (rows with a zero
// upper multiplicity are dropped); rows must match the schema's arity.
type RelationBuilder struct {
	sch    schema.Schema
	cols   []rangeval.ColBuilder
	mflat  []int64
	mdense []Mult
	n      int
}

// NewRelationBuilder creates a builder for the given schema, reserving
// capacity for sizeHint rows.
func NewRelationBuilder(s schema.Schema, sizeHint int) *RelationBuilder {
	b := &RelationBuilder{sch: s, cols: make([]rangeval.ColBuilder, s.Arity())}
	if sizeHint > 0 {
		for i := range b.cols {
			b.cols[i].Grow(sizeHint)
		}
		b.mflat = make([]int64, 0, sizeHint)
	}
	return b
}

// Arity returns the builder's schema arity.
func (b *RelationBuilder) Arity() int { return b.sch.Arity() }

// Len returns the number of rows added so far.
func (b *RelationBuilder) Len() int { return b.n }

// Add appends one row. Rows whose upper multiplicity is <= 0 are dropped,
// exactly like Relation.Add.
func (b *RelationBuilder) Add(t Tuple) {
	if t.M.Hi <= 0 {
		return
	}
	for c := range b.cols {
		b.cols[c].Append(t.Vals[c])
	}
	if b.mdense == nil {
		if t.M.Lo == t.M.SG && t.M.SG == t.M.Hi {
			b.mflat = append(b.mflat, t.M.SG)
		} else {
			b.mdense = make([]Mult, b.n, cap(b.mflat)+1)
			for i, m := range b.mflat {
				b.mdense[i] = Mult{Lo: m, SG: m, Hi: m}
			}
			b.mflat = nil
			b.mdense = append(b.mdense, t.M)
		}
	} else {
		b.mdense = append(b.mdense, t.M)
	}
	b.n++
}

// FlatFrac returns the current flat-column fraction (multiplicities count
// as one more column), the quantity the storage policy thresholds.
func (b *RelationBuilder) FlatFrac() float64 {
	flat := 0
	for i := range b.cols {
		if b.cols[i].IsFlat() {
			flat++
		}
	}
	if b.mdense == nil {
		flat++
	}
	return float64(flat) / float64(len(b.cols)+1)
}

func (b *RelationBuilder) buildSparse() *sparseRows {
	sp := &sparseRows{n: b.n, cols: make([]rangeval.Col, len(b.cols)), mflat: b.mflat, mdense: b.mdense}
	fast := sp.mflat != nil || b.n == 0
	for i := range b.cols {
		sp.cols[i] = b.cols[i].Build()
		if !sp.cols[i].IsFlat() || sp.cols[i].HasNulls() {
			fast = false
		}
	}
	sp.fastCertain = fast
	return sp
}

// Finish builds the relation, choosing the representation by policy. The
// builder must not be reused afterwards.
func (b *RelationBuilder) Finish(pol StoragePolicy) *Relation {
	out := New(b.sch)
	if b.n == 0 {
		return out
	}
	sparse := pol.Mode == ReprForceSparse ||
		(pol.Mode == ReprAuto && b.FlatFrac() >= pol.threshold())
	sp := b.buildSparse()
	if sparse {
		out.sp = sp
	} else {
		out.Tuples = sp.denseTuples(0, sp.n)
	}
	return out
}
