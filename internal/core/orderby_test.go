package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// TestOrderBySGSemantics guards the intended ORDER BY semantics (see
// OrderCompare): presentation order is defined in the selected-guess world,
// so tuples compare only by the SG component of the key attributes — ties
// keep the stable input order and lb/ub bounds never participate, no
// matter how the intervals overlap or contain one another.
func TestOrderBySGSemantics(t *testing.T) {
	rel := New(schema.New("a", "tag"))
	add := func(lo, sg, hi int64, tag string) {
		rel.Add(Tuple{Vals: rangeval.Tuple{
			rangeval.New(types.Int(lo), types.Int(sg), types.Int(hi)),
			rangeval.Certain(types.String(tag)),
		}, M: One})
	}
	// Deliberately adversarial bounds: the lb/ub order disagrees with the
	// SG order in every way — wide ranges around small guesses, narrow
	// ranges around large ones, containment, and exact ties.
	add(0, 5, 90, "wide-5")  // huge upper bound, SG 5
	add(2, 2, 2, "cert-2")   // certain 2
	add(-10, 3, 4, "low-3")  // very low lower bound, SG 3
	add(1, 3, 99, "tie-3a")  // ties SG 3; bounds contain low-3's entirely
	add(3, 3, 3, "tie-3b")   // ties SG 3 again, certain
	add(0, 2, 100, "tie-2")  // ties SG 2; interval contains everything
	add(4, 4, 5, "narrow-4") // narrow interval, SG between the 3s and 5

	db := DB{"t": rel}
	res, err := Exec(context.Background(), &ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{0}}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, tp := range res.Tuples {
		got = append(got, tp.Vals[1].SG.AsString())
	}
	// Ascending SG order; SG ties resolved by input position (stable).
	want := []string{"cert-2", "tie-2", "low-3", "tie-3a", "tie-3b", "narrow-4", "wide-5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ORDER BY no longer sorts by SG with stable ties:\ngot  %v\nwant %v", got, want)
	}

	// Descending reverses the SG comparison but still keeps input order on
	// ties.
	res, err = Exec(context.Background(), &ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{0}, Desc: true}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	for _, tp := range res.Tuples {
		got = append(got, tp.Vals[1].SG.AsString())
	}
	want = []string{"wide-5", "narrow-4", "low-3", "tie-3a", "tie-3b", "cert-2", "tie-2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ORDER BY DESC order changed:\ngot  %v\nwant %v", got, want)
	}
}

// bigSortInput builds a relation large enough that sorting and merging take
// visible time.
func bigSortInput(rows int) *Relation {
	r := New(schema.New("a", "b"))
	for i := 0; i < rows; i++ {
		r.Add(Tuple{Vals: rangeval.Tuple{
			rangeval.Certain(types.Int(int64((i * 2654435761) % rows))),
			rangeval.Certain(types.Int(int64(i % 97))),
		}, M: One})
	}
	return r
}

// TestOrderByCancellation: cancelling mid-sort must abort the
// sort.SliceStable loop via the comparison-function poll and surface
// ctx.Err() promptly.
func TestOrderByCancellation(t *testing.T) {
	rows := 400000
	if testing.Short() {
		rows = 150000
	}
	db := DB{"t": bigSortInput(rows)}
	plan := &ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{0}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Exec(ctx, plan, db, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (after %s)", err, time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("sort cancellation took %s", elapsed)
	}
}

// TestLimitCancellation: Limit's full-input merge polls the context too.
func TestLimitCancellation(t *testing.T) {
	rows := 400000
	if testing.Short() {
		rows = 150000
	}
	db := DB{"t": bigSortInput(rows)}
	plan := &ra.Limit{Child: &ra.Scan{Table: "t"}, N: 5}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := Exec(ctx, plan, db, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestExecDoesNotMutateBaseTables: with the ownership refactor the final
// merge works in place and results may alias base-table storage, so plans
// that pass tuples through untouched (scan roots, sorts, limits) must
// never reorder or re-annotate the stored relation.
func TestExecDoesNotMutateBaseTables(t *testing.T) {
	rel := New(schema.New("a", "b"))
	for i := 0; i < 64; i++ {
		rel.Add(Tuple{Vals: rangeval.Tuple{
			rangeval.Certain(types.Int(int64(63 - i))), // reverse order: a sort would reorder
			rangeval.Certain(types.Int(int64(i % 4))),
		}, M: Mult{Lo: 1, SG: 1, Hi: 2}})
	}
	// Value-duplicates: a merge would combine them in place.
	dup := rel.Tuples[0]
	rel.Add(Tuple{Vals: dup.Vals, M: One})
	before := rel.String()
	db := DB{"t": rel}
	plans := []ra.Node{
		&ra.Scan{Table: "t"},
		&ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{0}},
		&ra.Limit{Child: &ra.Scan{Table: "t"}, N: 3},
		&ra.Union{Left: &ra.Scan{Table: "t"}, Right: &ra.Scan{Table: "t"}},
	}
	for _, plan := range plans {
		if _, err := Exec(context.Background(), plan, db, Options{}); err != nil {
			t.Fatalf("%T: %v", plan, err)
		}
		if after := rel.String(); after != before {
			t.Fatalf("%T mutated the base table:\nbefore:\n%.300s\nafter:\n%.300s", plan, before, after)
		}
	}
}
