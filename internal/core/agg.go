package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// aggMonoid captures the aggregation monoids of Section 9.1 (SUM, MIN,
// MAX; COUNT is SUM over indicator values, AVG is derived from SUM and
// COUNT).
type aggMonoid uint8

const (
	monoidSum aggMonoid = iota
	monoidMin
	monoidMax
)

// neutral returns 0_M.
func (m aggMonoid) neutral() types.Value {
	switch m {
	case monoidSum:
		return types.Int(0)
	case monoidMin:
		return types.PosInf()
	default:
		return types.NegInf()
	}
}

// plus is +_M on domain values.
func (m aggMonoid) plus(a, b types.Value) (types.Value, error) {
	switch m {
	case monoidSum:
		return types.Add(a, b)
	case monoidMin:
		return types.Min(a, b), nil
	default:
		return types.Max(a, b), nil
	}
}

// star is k ∗_{N,M} m (Section 9.1): SUM scales by the multiplicity,
// MIN/MAX are the identity unless the multiplicity is zero, in which case
// the neutral element results.
func (m aggMonoid) star(k int64, v types.Value) (types.Value, error) {
	switch m {
	case monoidSum:
		return types.Mul(types.Int(k), v)
	default:
		if k == 0 {
			return m.neutral(), nil
		}
		return v, nil
	}
}

// starBounds computes the lower/upper components of ⊛_M (Definition 23):
// min/max over the four combinations of multiplicity bounds and value
// bounds.
func (m aggMonoid) starBounds(k Mult, v rangeval.V) (lo, hi types.Value, err error) {
	if k.Lo == k.Hi && types.Equal(v.Lo, v.Hi) {
		// Certain multiplicity and value: all four combinations are the
		// same star call, so one evaluation gives lo = hi (bit-identical
		// to the loop below, which would fold four equal results).
		x, err := m.star(k.Lo, v.Lo)
		if err != nil {
			return types.Null(), types.Null(), err
		}
		return x, x, nil
	}
	first := true
	for _, kk := range []int64{k.Lo, k.Hi} {
		for _, vv := range []types.Value{v.Lo, v.Hi} {
			x, err := m.star(kk, vv)
			if err != nil {
				return types.Null(), types.Null(), err
			}
			if first {
				lo, hi = x, x
				first = false
				continue
			}
			lo = types.Min(lo, x)
			hi = types.Max(hi, x)
		}
	}
	return lo, hi, nil
}

// aggPlan is the per-aggregate evaluation plan.
type aggPlan struct {
	spec   ra.AggSpec
	monoid aggMonoid
	// arg computes the range-annotated input value of the aggregate for
	// one tuple. For count it is the not-null indicator.
	arg func(rangeval.Tuple) (rangeval.V, error)
	// argDet is the deterministic counterpart of arg for the certain-only
	// contribution pass; only used when detOK reports the argument
	// expression is fast-path safe (expr.CertainFastSafe).
	argDet func(types.Tuple) (types.Value, error)
	detOK  bool
	// isAvg marks AVG, computed from a sum and a count(*).
	isAvg bool
}

func planAggs(specs []ra.AggSpec) ([]aggPlan, error) {
	plans := make([]aggPlan, 0, len(specs))
	for _, s := range specs {
		if s.Distinct {
			return nil, fmt.Errorf("core: DISTINCT aggregates are not supported over AU-DBs (aggregate %s)", s.Name)
		}
		p := aggPlan{spec: s}
		switch s.Fn {
		case ra.AggSum:
			p.monoid = monoidSum
			p.arg = rangeArg(s.Arg)
			p.argDet, p.detOK = detArg(s.Arg)
		case ra.AggMin:
			p.monoid = monoidMin
			p.arg = rangeArg(s.Arg)
			p.argDet, p.detOK = detArg(s.Arg)
		case ra.AggMax:
			p.monoid = monoidMax
			p.arg = rangeArg(s.Arg)
			p.argDet, p.detOK = detArg(s.Arg)
		case ra.AggCount:
			p.monoid = monoidSum
			p.arg = countArg(s.Arg)
			p.argDet, p.detOK = countArgDet(s.Arg)
		case ra.AggAvg:
			p.monoid = monoidSum
			p.arg = rangeArg(s.Arg)
			p.argDet, p.detOK = detArg(s.Arg)
			p.isAvg = true
		default:
			return nil, fmt.Errorf("core: unknown aggregate %v", s.Fn)
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// rangeArg evaluates the aggregate argument with range semantics.
func rangeArg(e expr.Expr) func(rangeval.Tuple) (rangeval.V, error) {
	return func(t rangeval.Tuple) (rangeval.V, error) { return e.EvalRange(t) }
}

// countArg yields the indicator [0/0/0] or [1/1/1] (or an uncertain
// indicator for possibly-null arguments); count(*) has a nil argument and
// always counts 1.
func countArg(e expr.Expr) func(rangeval.Tuple) (rangeval.V, error) {
	one := rangeval.Certain(types.Int(1))
	if e == nil {
		return func(rangeval.Tuple) (rangeval.V, error) { return one, nil }
	}
	ind := expr.If{
		Cond: expr.IsNull{E: e},
		Then: expr.CInt(0),
		Else: expr.CInt(1),
	}
	return func(t rangeval.Tuple) (rangeval.V, error) { return ind.EvalRange(t) }
}

// detArg is rangeArg's deterministic counterpart.
func detArg(e expr.Expr) (func(types.Tuple) (types.Value, error), bool) {
	return e.Eval, expr.CertainFastSafe(e)
}

// countArgDet is countArg's deterministic counterpart.
func countArgDet(e expr.Expr) (func(types.Tuple) (types.Value, error), bool) {
	if e == nil {
		one := types.Int(1)
		return func(types.Tuple) (types.Value, error) { return one, nil }, true
	}
	ind := expr.If{
		Cond: expr.IsNull{E: e},
		Then: expr.CInt(0),
		Else: expr.CInt(1),
	}
	return ind.Eval, expr.CertainFastSafe(ind)
}

// contrib is one (possibly merged) contribution to the aggregation overlap
// join: group-by ranges, tuple annotation and the per-aggregate argument
// ranges (the last slot additionally carries the count indicator used by
// AVG).
type contrib struct {
	gb   rangeval.Tuple
	m    Mult
	args []rangeval.V
	ug   bool // ug(G, R, t): group membership is uncertain
}

// boundsAcc folds lower/upper aggregate bounds per Definition 26.
type boundsAcc struct {
	m      aggMonoid
	lo, hi types.Value
}

func newBoundsAcc(m aggMonoid) *boundsAcc {
	n := m.neutral()
	return &boundsAcc{m: m, lo: n, hi: n}
}

func (a *boundsAcc) add(k Mult, v rangeval.V, uncertainGroup bool) error {
	cl, ch, err := a.m.starBounds(k, v)
	if err != nil {
		return err
	}
	if uncertainGroup {
		// lbagg/ubagg: a tuple that may not belong to the group
		// contributes at worst the neutral element.
		n := a.m.neutral()
		cl = types.Min(n, cl)
		ch = types.Max(n, ch)
	}
	if a.lo, err = a.m.plus(a.lo, cl); err != nil {
		return err
	}
	a.hi, err = a.m.plus(a.hi, ch)
	return err
}

// avgBounds derives AVG bounds from sum and count bound triples using
// conservative interval division with the count clamped to at least one
// (the bounds need only cover worlds in which the group is non-empty).
func avgBounds(sum, cnt rangeval.V) rangeval.V {
	cLo := types.Max(types.Int(1), cnt.Lo)
	cHi := types.Max(types.Int(1), cnt.Hi)
	var sg types.Value
	if !types.Less(types.Int(0), cnt.SG) { // count.sg <= 0: group absent in SGW
		sg = types.Float(0)
	} else {
		var err error
		sg, err = types.Div(sum.SG, cnt.SG)
		if err != nil {
			sg = types.Float(0)
		}
	}
	div := func(n, d types.Value) types.Value {
		v, err := types.Div(n, d)
		if err != nil {
			return types.Float(0)
		}
		return v
	}
	cands := []types.Value{div(sum.Lo, cLo), div(sum.Lo, cHi), div(sum.Hi, cLo), div(sum.Hi, cHi)}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		lo = types.Min(lo, c)
		hi = types.Max(hi, c)
	}
	lo = types.Min(lo, sg)
	hi = types.Max(hi, sg)
	return rangeval.New(lo, sg, hi)
}

// AggRelations is the grouping-aggregation kernel on a materialized input,
// implementing the default grouping strategy (Definitions 24-28). With
// Options.AggCompression > 0 the possible-contribution side is compressed
// first (Section 10.5), trading bound tightness for running time. outSchema
// is the operator's inferred output schema (group-by attributes then
// aggregate names).
func AggRelations(ctx context.Context, in *Relation, groupBy []int, specs []ra.AggSpec, outSchema schema.Schema, opt Options) (*Relation, error) {
	plans, err := planAggs(specs)
	if err != nil {
		return nil, err
	}
	return aggregate(ctx, in, groupBy, plans, outSchema, opt)
}

// buildContribs evaluates argument ranges for every tuple, chunked across
// workers (each contribution is independent and lands in its input slot).
// The extra final slot carries the count(*) indicator used by AVG counts.
func buildContribs(ctx context.Context, in *Relation, groupBy []int, plans []aggPlan, workers int) ([]contrib, error) {
	one := rangeval.Certain(types.Int(1))
	out := make([]contrib, len(in.Tuples))
	spans := ChunkSpans(len(in.Tuples), workers, minParTuples)
	err := runSpans(ctx, spans, func(_ int, s Span, p *ctxpoll.Poll) error {
		for i := s.Lo; i < s.Hi; i++ {
			if err := p.Due(); err != nil {
				return err
			}
			tup := in.Tuples[i]
			args := make([]rangeval.V, len(plans)+1)
			for j, p := range plans {
				v, err := p.arg(tup.Vals)
				if err != nil {
					return fmt.Errorf("core: aggregate %s: %w", p.spec.Name, err)
				}
				args[j] = v
			}
			args[len(plans)] = one
			gb := tup.Vals.Project(groupBy)
			out[i] = contrib{
				gb:   gb,
				m:    tup.M,
				args: args,
				ug:   tup.M.Lo == 0 || !gb.IsCertain(),
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// buildContribsCertain is the certain-only contribution pass: on a
// FastCertain input with fast-path-safe aggregate arguments, arguments
// evaluate deterministically over the flat columns and lift to certain
// triples (bit-identical to range evaluation on certain null-free rows),
// group-by values project to certain ranges, and group membership is
// uncertain only when the tuple itself may be absent (gb is certain by
// construction).
func buildContribsCertain(ctx context.Context, in *Relation, groupBy []int, plans []aggPlan, workers int) ([]contrib, error) {
	one := rangeval.Certain(types.Int(1))
	flat := in.flatView()
	arity := in.Schema.Arity()
	out := make([]contrib, in.Len())
	spans := ChunkSpans(in.Len(), workers, minParTuples)
	err := runSpans(ctx, spans, func(_ int, s Span, p *ctxpoll.Poll) error {
		det := make(types.Tuple, arity)
		for i := s.Lo; i < s.Hi; i++ {
			if err := p.Due(); err != nil {
				return err
			}
			for c := range flat {
				det[c] = flat[c][i]
			}
			args := make([]rangeval.V, len(plans)+1)
			for j, pl := range plans {
				v, err := pl.argDet(det)
				if err != nil {
					return fmt.Errorf("core: aggregate %s: %w", pl.spec.Name, err)
				}
				args[j] = rangeval.Certain(v)
			}
			args[len(plans)] = one
			gb := make(rangeval.Tuple, len(groupBy))
			for j, c := range groupBy {
				gb[j] = rangeval.Certain(flat[c][i])
			}
			m := in.MultAt(i)
			out[i] = contrib{gb: gb, m: m, args: args, ug: m.Lo == 0}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// aggFastOK reports whether every aggregate argument qualifies for the
// deterministic contribution pass.
func aggFastOK(plans []aggPlan) bool {
	for _, p := range plans {
		if !p.detOK {
			return false
		}
	}
	return true
}

// outGroup is one output group of the default grouping strategy.
type outGroup struct {
	gbox    rangeval.Tuple
	members []int
}

// buildGroups assigns every contribution to its output group (Definition
// 24: one output per distinct SG group-by value) and folds the group's
// bounding box (Definition 25). Workers build partial group maps over
// contiguous chunks; merging partials in chunk order reproduces the serial
// first-seen group order and ascending member order exactly.
func buildGroups(ctx context.Context, exact []contrib, groupBy []int, workers, sizeHint int) (map[string]*outGroup, []string, error) {
	spans := ChunkSpans(len(exact), workers, minParTuples)
	maps := make([]map[string]*outGroup, len(spans))
	orders := make([][]string, len(spans))
	if err := runSpans(ctx, spans, func(c int, s Span, p *ctxpoll.Poll) error {
		var err error
		maps[c], orders[c], err = buildGroupsRange(exact, groupBy, s.Lo, s.Hi, sizeHint, p)
		return err
	}); err != nil {
		return nil, nil, err
	}
	if len(spans) == 0 {
		return map[string]*outGroup{}, nil, nil
	}
	groups, order := maps[0], orders[0]
	for c := 1; c < len(spans); c++ {
		for _, k := range orders[c] {
			part := maps[c][k]
			if g, ok := groups[k]; ok {
				g.gbox = g.gbox.Union(part.gbox)
				g.members = append(g.members, part.members...)
				continue
			}
			groups[k] = part
			order = append(order, k)
		}
	}
	return groups, order, nil
}

// buildGroupsRange is the serial group assignment over contribs [lo, hi).
// sizeHint (the planner's estimated group count, 0 = none) pre-sizes the
// group map; it is capped against the input size so a wild over-estimate
// cannot allocate more buckets than distinct groups are possible.
func buildGroupsRange(exact []contrib, groupBy []int, lo, hi, sizeHint int, p *ctxpoll.Poll) (map[string]*outGroup, []string, error) {
	if sizeHint < 0 {
		sizeHint = 0
	}
	if sizeHint > hi-lo {
		sizeHint = hi - lo
	}
	groups := make(map[string]*outGroup, sizeHint)
	var order []string
	for i := lo; i < hi; i++ {
		if err := p.Due(); err != nil {
			return nil, nil, err
		}
		k := exact[i].gb.SGKey()
		g, ok := groups[k]
		if !ok {
			sgCert := make(rangeval.Tuple, len(groupBy))
			for j := range groupBy {
				sgCert[j] = rangeval.Certain(exact[i].gb[j].SG)
			}
			g = &outGroup{gbox: sgCert}
			groups[k] = g
			order = append(order, k)
		}
		g.gbox = g.gbox.Union(exact[i].gb) // Definition 25
		g.members = append(g.members, i)
	}
	return groups, order, nil
}

// compressContribs merges contributions down to roughly n entries
// (Section 10.5, the aggregation analog of Cpr): contributions are ordered
// by the lower endpoint of the first group-by attribute and merged
// equi-depth. Merged contributions take the bounding box of group-by and
// argument ranges, sum their upper multiplicities, zero their lower/SG
// multiplicities and become uncertain members (exactly like Cpr output).
func compressContribs(cs []contrib, n int) []contrib {
	if n <= 0 || len(cs) <= n {
		return cs
	}
	sorted := append([]contrib(nil), cs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if len(sorted[i].gb) == 0 {
			return false
		}
		return types.Less(sorted[i].gb[0].Lo, sorted[j].gb[0].Lo)
	})
	out := make([]contrib, 0, n)
	per := (len(sorted) + n - 1) / n
	for start := 0; start < len(sorted); start += per {
		end := start + per
		if end > len(sorted) {
			end = len(sorted)
		}
		merged := contrib{
			gb:   sorted[start].gb.Clone(),
			m:    Mult{0, 0, sorted[start].m.Hi},
			args: append([]rangeval.V(nil), sorted[start].args...),
			ug:   true,
		}
		for _, c := range sorted[start+1 : end] {
			merged.gb = merged.gb.Union(c.gb)
			merged.m.Hi += c.m.Hi
			for j := range merged.args {
				merged.args[j] = merged.args[j].Union(c.args[j])
			}
		}
		out = append(out, merged)
	}
	return out
}

// aggregate executes grouping (or global) aggregation.
func aggregate(ctx context.Context, in *Relation, groupBy []int, plans []aggPlan, outSchema schema.Schema, opt Options) (*Relation, error) {
	workers := opt.workerCount()
	var exact []contrib
	var err error
	if in.FastCertain() && aggFastOK(plans) {
		exact, err = buildContribsCertain(ctx, in, groupBy, plans, workers)
	} else {
		exact, err = buildContribs(ctx, in.Dense(), groupBy, plans, workers)
	}
	if err != nil {
		return nil, err
	}

	// Default grouping strategy (Definition 24): one output per distinct
	// SG group-by value; α assigns every tuple by its SG values. Without
	// group-by there is a single output group.
	groups, order, err := buildGroups(ctx, exact, groupBy, workers, opt.SizeHint)
	if err != nil {
		return nil, err
	}

	out := New(outSchema)
	noGroup := len(groupBy) == 0
	if noGroup && len(order) == 0 {
		// Empty input: one output row with neutral bounds (Definition 27).
		row := make(rangeval.Tuple, len(plans))
		for j, p := range plans {
			n := p.monoid.neutral()
			if p.isAvg {
				row[j] = rangeval.Certain(types.Float(0))
			} else {
				row[j] = rangeval.Certain(n)
			}
		}
		out.Add(Tuple{Vals: row, M: One})
		return out, nil
	}

	// Possibly-compressed contribution side for the overlap join.
	joinSide := exact
	if opt.AggCompression > 0 {
		joinSide = compressContribs(exact, opt.AggCompression)
	}
	// Index attribute-certain contributions by their point group-by key.
	pointIdx := map[string][]int{}
	var boxIdx []int
	for ci := range joinSide {
		if joinSide[ci].gb.IsCertain() {
			k := joinSide[ci].gb.SGKey()
			pointIdx[k] = append(pointIdx[k], ci)
		} else {
			boxIdx = append(boxIdx, ci)
		}
	}

	// Every output group folds an independent slice of read-only state
	// (contributions, indexes), so groups are computed in parallel chunks;
	// appending rows in group order keeps the output identical to the
	// serial loop.
	computeGroup := func(g *outGroup, p *ctxpoll.Poll) (Tuple, error) {
		// Lower/upper aggregate bounds from ð(g) (Definition 26).
		accs := make([]*boundsAcc, len(plans))
		cntAccs := make([]*boundsAcc, len(plans))
		for j, p := range plans {
			accs[j] = newBoundsAcc(p.monoid)
			if p.isAvg {
				cntAccs[j] = newBoundsAcc(monoidSum)
			}
		}
		// A contribution counts as a certain group member only when its
		// own group membership is certain AND the output's group box is
		// exactly its (certain) group-by point — the condition θ_c of the
		// rewrite (Section 10.2). A widened group box means the output may
		// represent other groups, for which this tuple's contribution is
		// not guaranteed.
		fold := func(c contrib, certainMember bool) error {
			if err := p.Due(); err != nil {
				return err
			}
			ug := c.ug || !certainMember
			for j := range plans {
				if err := accs[j].add(c.m, c.args[j], ug); err != nil {
					return err
				}
				if cntAccs[j] != nil {
					if err := cntAccs[j].add(c.m, c.args[len(plans)], ug); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if g.gbox.IsCertain() {
			// Point box: certain contributions at exactly this point, plus
			// overlapping box contributions.
			for _, ci := range pointIdx[g.gbox.SGKey()] {
				if err := fold(joinSide[ci], true); err != nil {
					return Tuple{}, err
				}
			}
			for _, ci := range boxIdx {
				if joinSide[ci].gb.Overlaps(g.gbox) {
					if err := fold(joinSide[ci], false); err != nil {
						return Tuple{}, err
					}
				}
			}
		} else {
			for _, cis := range pointIdx {
				if joinSide[cis[0]].gb.Overlaps(g.gbox) {
					for _, ci := range cis {
						if err := fold(joinSide[ci], false); err != nil {
							return Tuple{}, err
						}
					}
				}
			}
			for _, ci := range boxIdx {
				if joinSide[ci].gb.Overlaps(g.gbox) {
					if err := fold(joinSide[ci], false); err != nil {
						return Tuple{}, err
					}
				}
			}
		}

		// SG results: exactly the α-members, standard K-relational
		// semantics over the SGW (mirrors the piggy-backed computation of
		// the optimized rewrite).
		sgVals := make([]types.Value, len(plans))
		sgCnts := make([]types.Value, len(plans))
		for j, p := range plans {
			sgVals[j] = p.monoid.neutral()
			sgCnts[j] = types.Int(0)
		}
		for _, i := range g.members {
			if err := p.Due(); err != nil {
				return Tuple{}, err
			}
			c := exact[i]
			if c.m.SG == 0 {
				continue
			}
			for j, p := range plans {
				x, err := p.monoid.star(c.m.SG, c.args[j].SG)
				if err != nil {
					return Tuple{}, err
				}
				if sgVals[j], err = p.monoid.plus(sgVals[j], x); err != nil {
					return Tuple{}, err
				}
				if p.isAvg {
					cx, err := types.Mul(types.Int(c.m.SG), c.args[len(plans)].SG)
					if err != nil {
						return Tuple{}, err
					}
					if sgCnts[j], err = types.Add(sgCnts[j], cx); err != nil {
						return Tuple{}, err
					}
				}
			}
		}

		// Row annotation (Definition 27/28), always from exact members.
		var m Mult
		if noGroup {
			m = One
		} else {
			var loSum, sgSum, hiSum int64
			for _, i := range g.members {
				c := exact[i]
				if !c.ug {
					loSum += c.m.Lo
				}
				sgSum += c.m.SG
				hiSum += c.m.Hi
			}
			m = Mult{Lo: delta(loSum), SG: delta(sgSum), Hi: hiSum}
		}

		row := make(rangeval.Tuple, 0, len(groupBy)+len(plans))
		row = append(row, g.gbox...)
		for j, p := range plans {
			sum := rangeval.New(accs[j].lo, sgVals[j], accs[j].hi)
			if p.isAvg {
				cnt := rangeval.New(cntAccs[j].lo, sgCnts[j], cntAccs[j].hi)
				row = append(row, avgBounds(sum, cnt))
			} else {
				row = append(row, sum)
			}
		}
		return Tuple{Vals: row, M: m}, nil
	}

	rows := make([]Tuple, len(order))
	spans := ChunkSpans(len(order), workers, minParGroups)
	err = runSpans(ctx, spans, func(_ int, s Span, p *ctxpoll.Poll) error {
		for gi := s.Lo; gi < s.Hi; gi++ {
			row, err := computeGroup(groups[order[gi]], p)
			if err != nil {
				return err
			}
			rows[gi] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merge := ctxpoll.New(ctx)
	for _, row := range rows {
		if err := merge.Due(); err != nil {
			return nil, err
		}
		out.Add(row)
	}
	return out, nil
}
