package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

func iv(lo, sg, hi int64) rangeval.V {
	return rangeval.New(types.Int(lo), types.Int(sg), types.Int(hi))
}

func civ(v int64) rangeval.V { return rangeval.Certain(types.Int(v)) }

func cst(s string) rangeval.V { return rangeval.Certain(types.String(s)) }

func detRow(vs ...int64) types.Tuple {
	out := make(types.Tuple, len(vs))
	for i, v := range vs {
		out[i] = types.Int(v)
	}
	return out
}

func TestMult(t *testing.T) {
	m := Mult{1, 2, 3}
	if !m.Valid() || m.IsZero() {
		t.Error("valid")
	}
	if (Mult{2, 1, 3}).Valid() || (Mult{-1, 0, 0}).Valid() {
		t.Error("invalid triples accepted")
	}
	if m.Add(Mult{1, 1, 1}) != (Mult{2, 3, 4}) {
		t.Error("add")
	}
	if m.Mul(Mult{2, 2, 2}) != (Mult{2, 4, 6}) {
		t.Error("mul")
	}
	if m.Delta() != (Mult{1, 1, 1}) || Zero.Delta() != Zero {
		t.Error("delta")
	}
	if !m.Bounds(2) || m.Bounds(4) || m.Bounds(0) {
		t.Error("bounds")
	}
	// Section 8.2 counterexample: pointwise monus breaks ordering, the
	// bound-preserving variant does not.
	r := Mult{1, 2, 2}
	s := Mult{0, 0, 3}
	got := r.MonusBounds(s)
	if got != (Mult{0, 2, 2}) {
		t.Errorf("MonusBounds: %v", got)
	}
	if !got.Valid() {
		t.Error("MonusBounds validity")
	}
	if m.String() != "(1,2,3)" {
		t.Error("render")
	}
}

// fig5Relation builds the AU-relation of Figure 5a.
func fig5Relation() *Relation {
	r := New(schema.New("a", "b"))
	r.Add(Tuple{Vals: rangeval.Tuple{civ(1), civ(1)}, M: Mult{2, 2, 3}})
	r.Add(Tuple{Vals: rangeval.Tuple{civ(1), iv(1, 1, 3)}, M: Mult{2, 3, 3}})
	r.Add(Tuple{Vals: rangeval.Tuple{iv(1, 2, 2), civ(3)}, M: Mult{1, 1, 1}})
	return r
}

func TestSGWExtraction(t *testing.T) {
	r := fig5Relation()
	sgw := r.SGW()
	// Figure 5b: (1,1) x5, (2,3) x1.
	if sgw.Count(detRow(1, 1)) != 5 || sgw.Count(detRow(2, 3)) != 1 {
		t.Errorf("SGW:\n%s", sgw)
	}
	if sgw.Size() != 6 {
		t.Errorf("SGW size %d", sgw.Size())
	}
}

func TestBoundsWorldFig5(t *testing.T) {
	r := fig5Relation()
	// World D1 = SGW.
	d1 := bag.New(schema.New("a", "b"))
	d1.Add(detRow(1, 1), 5)
	d1.Add(detRow(2, 3), 1)
	if !r.BoundsWorld(d1) {
		t.Error("D1 should be bounded")
	}
	// A compatible second world.
	d2 := bag.New(schema.New("a", "b"))
	d2.Add(detRow(1, 1), 2)
	d2.Add(detRow(1, 3), 2)
	d2.Add(detRow(2, 3), 1)
	if !r.BoundsWorld(d2) {
		t.Error("D2 should be bounded")
	}
	if !r.BoundsWorlds([]*bag.Relation{d1, d2}) {
		t.Error("incomplete database should be bounded (SGW = D1)")
	}
	// Unbounded worlds.
	bad := bag.New(schema.New("a", "b"))
	bad.Add(detRow(9, 9), 1)
	if r.BoundsWorld(bad) {
		t.Error("(9,9) cannot be covered")
	}
	tooMany := bag.New(schema.New("a", "b"))
	tooMany.Add(detRow(1, 1), 10) // exceeds all upper bounds
	if r.BoundsWorld(tooMany) {
		t.Error("multiplicity 10 exceeds upper bounds")
	}
	tooFew := bag.New(schema.New("a", "b"))
	tooFew.Add(detRow(1, 1), 1) // t1 requires at least 2
	if r.BoundsWorld(tooFew) {
		t.Error("lower bounds cannot be met")
	}
	if r.BoundsWorlds([]*bag.Relation{d2}) {
		t.Error("without the SGW among worlds, Definition 17 fails")
	}
}

func TestSGCombine(t *testing.T) {
	r := New(schema.New("a", "b"))
	r.Add(Tuple{Vals: rangeval.Tuple{iv(1, 2, 2), iv(1, 3, 5)}, M: Mult{1, 2, 2}})
	r.Add(Tuple{Vals: rangeval.Tuple{iv(2, 2, 4), iv(3, 3, 4)}, M: Mult{3, 3, 4}})
	c := r.SGCombine()
	// Section 8.1 example: merged into ([1/2/4],[1/3/5]) with (4,5,6).
	if c.Len() != 1 {
		t.Fatalf("combined to %d tuples", c.Len())
	}
	got := c.Tuples[0]
	if got.M != (Mult{4, 5, 6}) {
		t.Errorf("combined annotation %v", got.M)
	}
	if types.Compare(got.Vals[0].Lo, types.Int(1)) != 0 ||
		types.Compare(got.Vals[0].Hi, types.Int(4)) != 0 ||
		types.Compare(got.Vals[1].Lo, types.Int(1)) != 0 ||
		types.Compare(got.Vals[1].Hi, types.Int(5)) != 0 {
		t.Errorf("combined ranges %v", got.Vals)
	}
}

func TestSelectExample9(t *testing.T) {
	// Example 9: R(A,B) = ([1/2/3], 2) with (1,2,3); σ_{A=2}.
	r := New(schema.New("a", "b"))
	r.Add(Tuple{Vals: rangeval.Tuple{iv(1, 2, 3), civ(2)}, M: Mult{1, 2, 3}})
	db := DB{"r": r}
	out, err := Exec(context.Background(), &ra.Select{
		Child: &ra.Scan{Table: "r"},
		Pred:  expr.Eq(expr.Col(0, "a"), expr.CInt(2)),
	}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows: %d", out.Len())
	}
	if out.Tuples[0].M != (Mult{0, 2, 3}) {
		t.Errorf("annotation %v, want (0,2,3)", out.Tuples[0].M)
	}
	// Certainly-failing tuples are removed entirely.
	out, err = Exec(context.Background(), &ra.Select{
		Child: &ra.Scan{Table: "r"},
		Pred:  expr.Eq(expr.Col(0, "a"), expr.CInt(9)),
	}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("certainly-false tuples kept: %s", out)
	}
}

func TestProjectMergesValueEquivalent(t *testing.T) {
	r := New(schema.New("a", "b"))
	r.Add(Tuple{Vals: rangeval.Tuple{civ(1), civ(10)}, M: Mult{1, 1, 1}})
	r.Add(Tuple{Vals: rangeval.Tuple{civ(1), civ(20)}, M: Mult{1, 1, 2}})
	out, err := Exec(context.Background(), &ra.Project{
		Child: &ra.Scan{Table: "r"},
		Cols:  []ra.ProjCol{{E: expr.Col(0, "a"), Name: "a"}},
	}, DB{"r": r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0].M != (Mult{2, 2, 3}) {
		t.Errorf("projection merge: %s", out)
	}
}

func TestSetDifferenceSection82(t *testing.T) {
	// The running counterexample of Section 8.2 (no attribute
	// uncertainty): R(1) -> (1,2,2), R(2) -> (0,0,1); S(1) -> (0,0,3),
	// S(2) -> (0,1,1). Bound-preserving result for (1) is (0,2,2).
	r := New(schema.New("v"))
	r.Add(Tuple{Vals: rangeval.Tuple{civ(1)}, M: Mult{1, 2, 2}})
	r.Add(Tuple{Vals: rangeval.Tuple{civ(2)}, M: Mult{0, 0, 1}})
	s := New(schema.New("v"))
	s.Add(Tuple{Vals: rangeval.Tuple{civ(1)}, M: Mult{0, 0, 3}})
	s.Add(Tuple{Vals: rangeval.Tuple{civ(2)}, M: Mult{0, 1, 1}})
	out, err := Exec(context.Background(), &ra.Diff{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "s"}},
		DB{"r": r, "s": s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	find := func(v int64) (Mult, bool) {
		for _, tup := range out.Tuples {
			if types.Compare(tup.Vals[0].SG, types.Int(v)) == 0 {
				return tup.M, true
			}
		}
		return Mult{}, false
	}
	m1, ok := find(1)
	if !ok || m1 != (Mult{0, 2, 2}) {
		t.Errorf("(1): %v ok=%v want (0,2,2)", m1, ok)
	}
	if m2, ok := find(2); ok && m2 != (Mult{0, 0, 1}) {
		t.Errorf("(2): %v want (0,0,1)", m2)
	}
}

func TestDiffWithRangeOverlap(t *testing.T) {
	// Right tuples that only possibly match reduce the lower bound but
	// not the upper bound.
	l := New(schema.New("v"))
	l.Add(Tuple{Vals: rangeval.Tuple{civ(5)}, M: Mult{2, 2, 2}})
	r := New(schema.New("v"))
	r.Add(Tuple{Vals: rangeval.Tuple{iv(4, 6, 7)}, M: Mult{1, 1, 1}})
	out, err := Exec(context.Background(), &ra.Diff{Left: &ra.Scan{Table: "l"}, Right: &ra.Scan{Table: "r"}},
		DB{"l": l, "r": r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows %d", out.Len())
	}
	// lo: 2 - 1(possible match) = 1 ; sg: 2 - 0 = 2 ; hi: 2 - 0 = 2.
	if out.Tuples[0].M != (Mult{1, 2, 2}) {
		t.Errorf("got %v want (1,2,2)", out.Tuples[0].M)
	}
}

// TestAggregationFigure7b reproduces the paper's Figure 7b exactly:
// SELECT sum(#inhab) FROM address, with result [6/7/14] annotated (1,1,1).
func TestAggregationFigure7b(t *testing.T) {
	addr := addressRelation()
	out, err := Exec(context.Background(), &ra.Agg{
		Child: &ra.Scan{Table: "address"},
		Aggs:  []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(2, "inhab"), Name: "pop"}},
	}, DB{"address": addr}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows %d", out.Len())
	}
	got := out.Tuples[0]
	if got.M != One {
		t.Errorf("annotation %v", got.M)
	}
	v := got.Vals[0]
	if v.Lo != types.Int(6) || v.SG != types.Int(7) || v.Hi != types.Int(14) {
		t.Errorf("pop = %v, want [6/7/14]", v)
	}
}

// addressRelation is the input of Figure 7a. The street of the second
// tuple is completely uncertain (rendered red in the paper).
func addressRelation() *Relation {
	full := rangeval.Full(types.String("Canal"))
	r := New(schema.New("street", "number", "inhab"))
	r.Add(Tuple{Vals: rangeval.Tuple{cst("Canal"), civ(165), civ(1)}, M: Mult{1, 1, 2}})
	r.Add(Tuple{Vals: rangeval.Tuple{full, iv(153, 154, 156), iv(1, 2, 2)}, M: Mult{1, 1, 1}})
	r.Add(Tuple{Vals: rangeval.Tuple{cst("State"), iv(623, 623, 629), civ(2)}, M: Mult{2, 2, 3}})
	r.Add(Tuple{Vals: rangeval.Tuple{cst("Monroe"), iv(3550, 3574, 3585), iv(2, 3, 4)}, M: Mult{0, 0, 1}})
	return r
}

// TestAggregationFigure7c checks the group-by aggregation of Figure 7c.
// The State group has a certain (point) group box, so its bounds are tight:
// count [2/2/4] with row annotation (1,1,1).
func TestAggregationFigure7c(t *testing.T) {
	addr := addressRelation()
	out, err := Exec(context.Background(), &ra.Agg{
		Child:   &ra.Scan{Table: "address"},
		GroupBy: []int{0},
		Aggs:    []ra.AggSpec{{Fn: ra.AggCount, Name: "cnt"}},
	}, DB{"address": addr}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 { // SG groups: Canal (incl. the uncertain-street
		// tuple whose SG street is Canal), State, Monroe
		t.Fatalf("groups: %d\n%s", out.Len(), out)
	}
	var state *Tuple
	for i := range out.Tuples {
		if types.Equal(out.Tuples[i].Vals[0].SG, types.String("State")) {
			state = &out.Tuples[i]
		}
	}
	if state == nil {
		t.Fatal("no State group")
	}
	cnt := state.Vals[1]
	if cnt.Lo != types.Int(2) || cnt.SG != types.Int(2) || cnt.Hi != types.Int(4) {
		t.Errorf("State count %v, want [2/2/4]", cnt)
	}
	if state.M != (Mult{1, 1, 3}) {
		// Definition 28: lo=δ(2)=1, sg=δ(2)=1, hi=Σhi=3.
		t.Errorf("State annotation %v, want (1,1,3)", state.M)
	}
}

func TestAggregationEmptyInput(t *testing.T) {
	empty := New(schema.New("a"))
	out, err := Exec(context.Background(), &ra.Agg{
		Child: &ra.Scan{Table: "t"},
		Aggs: []ra.AggSpec{
			{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
			{Fn: ra.AggCount, Name: "c"},
			{Fn: ra.AggMin, Arg: expr.Col(0, "a"), Name: "mn"},
			{Fn: ra.AggAvg, Arg: expr.Col(0, "a"), Name: "av"},
		},
	}, DB{"t": empty}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0].M != One {
		t.Fatalf("empty agg: %s", out)
	}
	vals := out.Tuples[0].Vals
	if vals[0].SG != types.Int(0) || vals[1].SG != types.Int(0) {
		t.Errorf("neutral sum/count: %v", vals)
	}
	if vals[2].SG.Kind() != types.KindPosInf {
		t.Errorf("neutral min: %v", vals[2])
	}
	// Grouped aggregation over empty input yields nothing.
	out, err = Exec(context.Background(), &ra.Agg{
		Child:   &ra.Scan{Table: "t"},
		GroupBy: []int{0},
		Aggs:    []ra.AggSpec{{Fn: ra.AggCount, Name: "c"}},
	}, DB{"t": empty}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("grouped empty agg: %s", out)
	}
}

func TestAggregationDistinctUnsupported(t *testing.T) {
	r := New(schema.New("a"))
	r.Add(Tuple{Vals: rangeval.Tuple{civ(1)}, M: One})
	_, err := Exec(context.Background(), &ra.Agg{
		Child: &ra.Scan{Table: "r"},
		Aggs:  []ra.AggSpec{{Fn: ra.AggCount, Arg: expr.Col(0, "a"), Distinct: true, Name: "c"}},
	}, DB{"r": r}, Options{})
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Errorf("expected DISTINCT error, got %v", err)
	}
}

func TestJoinFigure8Shape(t *testing.T) {
	// Figure 8: both relations have overlapping ranges everywhere, so the
	// un-optimized join degenerates to a cross product of possible pairs.
	r := New(schema.New("a"))
	r.Add(Tuple{Vals: rangeval.Tuple{iv(1, 1, 2)}, M: Mult{2, 2, 3}})
	r.Add(Tuple{Vals: rangeval.Tuple{iv(1, 2, 2)}, M: Mult{1, 1, 2}})
	s := New(schema.New("c"))
	s.Add(Tuple{Vals: rangeval.Tuple{iv(1, 3, 3)}, M: Mult{1, 1, 1}})
	s.Add(Tuple{Vals: rangeval.Tuple{iv(1, 2, 2)}, M: Mult{1, 2, 2}})
	plan := &ra.Join{
		Left:  &ra.Scan{Table: "r"},
		Right: &ra.Scan{Table: "s"},
		Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(1, "c")),
	}
	db := DB{"r": r, "s": s}
	out, err := Exec(context.Background(), plan, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("expected all 4 possible pairs, got %d:\n%s", out.Len(), out)
	}
	// The SG pair ([1/2/2],[1/2/2]) survives in the SGW: sg mult 1*2=2.
	sgw := out.SGW()
	if sgw.Count(detRow(2, 2)) != 2 {
		t.Errorf("SGW of join:\n%s", sgw)
	}
	// Naive and hybrid paths agree.
	naive, err := Exec(context.Background(), plan, db, Options{NaiveJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Len() != out.Len() || naive.PossibleSize() != out.PossibleSize() {
		t.Errorf("naive/hybrid mismatch: %d/%d vs %d/%d",
			naive.Len(), naive.PossibleSize(), out.Len(), out.PossibleSize())
	}
}

func TestJoinCompressionBoundsResultSize(t *testing.T) {
	// Many uncertain tuples: compression caps the possible side.
	r := New(schema.New("a"))
	s := New(schema.New("c"))
	for i := int64(0); i < 40; i++ {
		r.Add(Tuple{Vals: rangeval.Tuple{iv(i, i+1, i+3)}, M: Mult{0, 1, 1}})
		s.Add(Tuple{Vals: rangeval.Tuple{iv(i, i+2, i+4)}, M: Mult{0, 1, 1}})
	}
	plan := &ra.Join{
		Left:  &ra.Scan{Table: "r"},
		Right: &ra.Scan{Table: "s"},
		Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(1, "c")),
	}
	db := DB{"r": r, "s": s}
	exact, err := Exec(context.Background(), plan, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Exec(context.Background(), plan, db, Options{JoinCompression: 4})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= exact.Len() {
		t.Errorf("compression did not shrink: %d vs %d", comp.Len(), exact.Len())
	}
	// The compressed result still over-approximates: total possible mass
	// must not shrink below the exact result's SGW-visible mass.
	if comp.SGW().Size() != exact.SGW().Size() {
		t.Errorf("compression must preserve the SGW: %d vs %d",
			comp.SGW().Size(), exact.SGW().Size())
	}
}

func TestSplitLemma6(t *testing.T) {
	r := fig5Relation()
	sg, up := Split(r)
	// split_sg holds only certain attribute values.
	for _, tup := range sg.Tuples {
		if !tup.Vals.IsCertain() {
			t.Errorf("split_sg kept uncertain tuple %v", tup)
		}
	}
	// split↑ annotations are (0,0,hi).
	for _, tup := range up.Tuples {
		if tup.M.Lo != 0 || tup.M.SG != 0 {
			t.Errorf("split↑ annotation %v", tup.M)
		}
	}
	// The union encodes the same SGW (Lemma 6).
	both := New(r.Schema)
	both.Tuples = append(both.Tuples, sg.Tuples...)
	both.Tuples = append(both.Tuples, up.Tuples...)
	if !both.SGW().Equal(r.SGW()) {
		t.Errorf("split broke the SGW:\n%s\nvs\n%s", both.SGW(), r.SGW())
	}
	// And still bounds the worlds bounded before.
	d1 := bag.New(schema.New("a", "b"))
	d1.Add(detRow(1, 1), 5)
	d1.Add(detRow(2, 3), 1)
	if !both.BoundsWorld(d1) {
		t.Error("split union no longer bounds D1")
	}
}

func TestCompressLemma7(t *testing.T) {
	r := New(schema.New("a"))
	for i := int64(0); i < 20; i++ {
		r.Add(Tuple{Vals: rangeval.Tuple{iv(i, i, i+1)}, M: Mult{0, 0, 1}})
	}
	c := Compress(r, 0, 4)
	if c.Len() > 4 {
		t.Errorf("compressed to %d > 4", c.Len())
	}
	if c.PossibleSize() != r.PossibleSize() {
		t.Errorf("compression lost mass: %d vs %d", c.PossibleSize(), r.PossibleSize())
	}
	// Every world bounded before stays bounded (Lemma 7): test a world
	// picking each tuple's SG value.
	w := bag.New(schema.New("a"))
	for i := int64(0); i < 20; i++ {
		w.Add(detRow(i), 1)
	}
	if !c.BoundsWorld(w) {
		t.Error("compressed relation no longer bounds world")
	}
	// Compressing an empty relation is a no-op.
	if Compress(New(schema.New("a")), 0, 4).Len() != 0 {
		t.Error("empty compress")
	}
}

func TestDistinct(t *testing.T) {
	r := New(schema.New("v"))
	r.Add(Tuple{Vals: rangeval.Tuple{civ(1)}, M: Mult{2, 3, 4}})
	r.Add(Tuple{Vals: rangeval.Tuple{iv(5, 6, 9)}, M: Mult{1, 2, 3}})
	out, err := Exec(context.Background(), &ra.Distinct{Child: &ra.Scan{Table: "r"}}, DB{"r": r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byVal := map[int64]Mult{}
	for _, tup := range out.Tuples {
		byVal[tup.Vals[0].SG.AsInt()] = tup.M
	}
	if byVal[1] != (Mult{1, 1, 1}) {
		t.Errorf("certain distinct: %v", byVal[1])
	}
	// Uncertain tuple may stand for up to 3 distinct values.
	if byVal[6] != (Mult{1, 1, 3}) {
		t.Errorf("uncertain distinct: %v", byVal[6])
	}
}

func TestDistinctOverlapDropsLowerBound(t *testing.T) {
	r := New(schema.New("v"))
	r.Add(Tuple{Vals: rangeval.Tuple{iv(1, 2, 5)}, M: Mult{1, 1, 1}})
	r.Add(Tuple{Vals: rangeval.Tuple{iv(1, 3, 5)}, M: Mult{1, 1, 1}})
	out, err := Exec(context.Background(), &ra.Distinct{Child: &ra.Scan{Table: "r"}}, DB{"r": r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range out.Tuples {
		if tup.M.Lo != 0 {
			t.Errorf("overlapping tuples must lose certain lower bounds: %v", tup)
		}
	}
	// Witness: the world where both collapse onto value 2.
	w := bag.New(schema.New("v"))
	w.Add(detRow(2), 1)
	if !out.BoundsWorld(w) {
		t.Error("collapsed world must stay bounded after distinct")
	}
}

func TestUnionAndOrderBy(t *testing.T) {
	r := New(schema.New("v"))
	r.Add(Tuple{Vals: rangeval.Tuple{civ(2)}, M: One})
	s := New(schema.New("v"))
	s.Add(Tuple{Vals: rangeval.Tuple{civ(1)}, M: One})
	s.Add(Tuple{Vals: rangeval.Tuple{civ(2)}, M: One})
	db := DB{"r": r, "s": s}
	out, err := Exec(context.Background(), &ra.Union{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "s"}}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("union rows %d", out.Len())
	}
	ord, err := Exec(context.Background(), &ra.OrderBy{Child: &ra.Union{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "s"}}, Keys: []int{0}, Desc: true}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ord.Tuples[0].Vals[0].SG.AsInt() != 2 {
		t.Errorf("order by desc: %s", ord)
	}
	// Mismatched arity unions fail.
	two := New(schema.New("a", "b"))
	two.Add(Tuple{Vals: rangeval.Tuple{civ(1), civ(2)}, M: One})
	db["two"] = two
	if _, err := Exec(context.Background(), &ra.Union{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "two"}}, db, Options{}); err == nil {
		t.Error("union arity mismatch should error")
	}
	if _, err := Exec(context.Background(), &ra.Diff{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "two"}}, db, Options{}); err == nil {
		t.Error("diff arity mismatch should error")
	}
	if _, err := Exec(context.Background(), &ra.Scan{Table: "missing"}, db, Options{}); err == nil {
		t.Error("missing table should error")
	}
}

func TestFromDeterministicRoundtrip(t *testing.T) {
	d := bag.New(schema.New("a", "b"))
	d.Add(detRow(1, 2), 3)
	d.Add(detRow(4, 5), 1)
	au := FromDeterministic(d)
	if au.Len() != 2 || au.CertainSize() != 4 || au.PossibleSize() != 4 {
		t.Errorf("lift: %s", au)
	}
	if !au.SGW().Equal(d) {
		t.Error("SGW of lifted relation differs")
	}
	if !au.BoundsWorld(d) {
		t.Error("lifted relation must bound its origin")
	}
	dbs := DB{"t": au}
	if len(dbs.Schemas()) != 1 {
		t.Error("schemas")
	}
	if !dbs.SGW()["t"].Equal(d) {
		t.Error("db SGW")
	}
	lifted := FromDeterministicDB(bag.DB{"t": d})
	if lifted["t"].Len() != 2 {
		t.Error("lift DB")
	}
	if au.String() == "" || au.Tuples[0].String() == "" {
		t.Error("render")
	}
}

// TestJoinBuildSideIdentity: the hybrid join must produce the identical
// canonical result whichever side feeds the hash index — the property the
// stats-driven build-side selection relies on.
func TestJoinBuildSideIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func(rows int) *Relation {
		rel := New(schema.New("a", "b"))
		for i := 0; i < rows; i++ {
			v := rangeval.Certain(types.Int(int64(rng.Intn(5))))
			if rng.Intn(5) == 0 {
				sg := int64(rng.Intn(5))
				v = rangeval.New(types.Int(sg-1), types.Int(sg), types.Int(sg+1))
			}
			rel.Add(Tuple{
				Vals: rangeval.Tuple{v, rangeval.Certain(types.Int(int64(rng.Intn(4))))},
				M:    Mult{Lo: int64(rng.Intn(2)), SG: 1, Hi: 1 + int64(rng.Intn(2))},
			})
		}
		return rel
	}
	l, r := mk(40), mk(13)
	cond := expr.And(
		expr.Eq(expr.Col(0, "a"), expr.Col(2, "a")),
		expr.Leq(expr.Col(1, "b"), expr.Col(3, "b")),
	)
	for _, workers := range []int{1, 4} {
		right, err := JoinRelations(context.Background(), l, r, cond, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		left, err := JoinRelations(context.Background(), l, r, cond, Options{Workers: workers, JoinBuildLeft: true})
		if err != nil {
			t.Fatal(err)
		}
		if right.Merge().Sort().String() != left.Merge().Sort().String() {
			t.Fatalf("build side changed the join result (workers=%d):\n%s\nvs\n%s", workers, right, left)
		}
	}
}
