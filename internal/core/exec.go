package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Options tune the performance/precision trade-offs of Section 10.4-10.5.
// The zero value evaluates the exact (uncompressed) semantics.
type Options struct {
	// JoinCompression, when > 0, applies the split + Cpr optimization to
	// joins (Section 10.4): the attribute-uncertain parts of both inputs
	// are compressed to at most this many tuples before the overlap join.
	JoinCompression int
	// AggCompression, when > 0, compresses the possible-group side of the
	// aggregation overlap join to at most this many tuples (Section 10.5).
	AggCompression int
	// NaiveJoin forces the pure nested-loop overlap join, disabling the
	// exact hash-partitioned fast path. Used to reproduce the "Non-Op"
	// series of Figure 14.
	NaiveJoin bool
	// Workers is the number of goroutines the executor may use for the hot
	// operators (hybrid join, aggregation, selection, projection, split).
	// 0 (the zero value) means runtime.GOMAXPROCS(0); 1 forces the serial
	// reference evaluation. Results are identical for every worker count.
	Workers int
	// JoinBuildLeft builds the hybrid join's hash index over the left
	// input's certain partition and probes with the right — the
	// stats-driven physical lowering (internal/phys) sets it per join
	// when the left input is estimated smaller. Results are identical
	// either way (only the emission order of the certain×certain quadrant
	// changes, and every result is canonically merged).
	JoinBuildLeft bool
	// SizeHint is the planner's estimated output rows for the operator
	// this Options value is applied to (0 = no estimate). The
	// aggregation kernel pre-sizes its group maps from it (capped by the
	// actual input size); it never affects results. Set per operator by
	// the stats-driven lowering, never database-wide.
	SizeHint int
}

// Compressed reports whether either split+compress optimization is on.
// Compression makes intermediate results sensitive to how value-equivalent
// tuples are merged (equi-depth bucket boundaries count tuples), which is
// why the pipelined executor (internal/phys) materializes the legacy merge
// points when it is enabled.
func (o Options) Compressed() bool {
	return o.JoinCompression > 0 || o.AggCompression > 0
}

// Exec evaluates an RA_agg plan over an AU-database using the
// bound-preserving semantics of Sections 7-9 and returns the merged result.
// This is the operator-at-a-time reference executor: every intermediate is
// a fully materialized Relation. The pipelined executor (internal/phys)
// produces bit-identical results while streaming.
//
// Operators hand ownership of their outputs downstream, so the final merge
// works in place; only a plan whose root is a bare table scan pays a
// (shallow) defensive copy. Result tuples may share attribute-range storage
// with the base tables — treat results as read-only, as all engines do.
//
// Cancellation of ctx aborts the evaluation promptly — operators check the
// context cooperatively at chunk boundaries and inside their hot loops
// (including sorting and the final merge) — and the error is ctx.Err(). A
// nil ctx is treated as context.Background().
func Exec(ctx context.Context, n ra.Node, db DB, opt Options) (*Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	cat := ra.CatalogMap(db.Schemas())
	out, owned, err := exec(ctx, n, db, cat, opt)
	if err != nil {
		return nil, err
	}
	return own(out, owned).MergeCtx(ctx)
}

// own returns in when the caller already owns it, and a shallow clone
// otherwise (see Relation.ShallowClone for what ownership covers).
func own(in *Relation, owned bool) *Relation {
	if owned {
		return in
	}
	return in.ShallowClone()
}

// exec evaluates a plan node. The returned flag reports whether the caller
// owns the result — may reorder its Tuples slice and mutate annotations.
// Every operator builds a fresh output; only a base-table scan returns a
// shared (unowned) relation.
func exec(ctx context.Context, n ra.Node, db DB, cat ra.Catalog, opt Options) (*Relation, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if ra.IsNil(n) {
		// A nil child reached through a nested operator (e.g. a
		// hand-built plan with a missing input).
		return nil, false, fmt.Errorf("core: nil plan node")
	}
	// one evaluates a unary operator's input; two evaluates a binary
	// operator's inputs left to right (Join stays inline to label which
	// side failed).
	one := func(c ra.Node) (*Relation, bool, error) { return exec(ctx, c, db, cat, opt) }
	two := func(left, right ra.Node) (*Relation, *Relation, error) {
		l, _, err := exec(ctx, left, db, cat, opt)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := exec(ctx, right, db, cat, opt)
		if err != nil {
			return nil, nil, err
		}
		return l, r, nil
	}
	switch t := n.(type) {
	case *ra.Scan:
		r, ok := db.LookupFold(t.Table)
		if !ok {
			return nil, false, schema.UnknownTable("core", t.Table, db.Names())
		}
		return r, false, nil
	case *ra.Select:
		in, _, err := one(t.Child)
		if err != nil {
			return nil, false, err
		}
		out, err := ApplySelect(ctx, in, t.Pred, opt)
		return out, true, err
	case *ra.Project:
		in, _, err := one(t.Child)
		if err != nil {
			return nil, false, err
		}
		out, err := ApplyProject(ctx, in, t.Cols, opt)
		return out, true, err
	case *ra.Join:
		l, _, err := exec(ctx, t.Left, db, cat, opt)
		if err != nil {
			return nil, false, fmt.Errorf("core: join left input: %w", err)
		}
		r, _, err := exec(ctx, t.Right, db, cat, opt)
		if err != nil {
			return nil, false, fmt.Errorf("core: join right input: %w", err)
		}
		out, err := JoinRelations(ctx, l, r, t.Cond, opt)
		return out, true, err
	case *ra.Union:
		l, r, err := two(t.Left, t.Right)
		if err != nil {
			return nil, false, err
		}
		out, err := UnionRelations(ctx, l, r)
		return out, true, err
	case *ra.Diff:
		l, r, err := two(t.Left, t.Right)
		if err != nil {
			return nil, false, err
		}
		out, err := DiffRelations(ctx, l, r)
		return out, true, err
	case *ra.Distinct:
		in, _, err := one(t.Child)
		if err != nil {
			return nil, false, err
		}
		out, err := DistinctRelation(ctx, in, opt)
		return out, true, err
	case *ra.Agg:
		in, _, err := one(t.Child)
		if err != nil {
			return nil, false, fmt.Errorf("core: aggregation input: %w", err)
		}
		outSchema, err := ra.InferSchema(t, cat)
		if err != nil {
			return nil, false, err
		}
		out, err := AggRelations(ctx, in, t.GroupBy, t.Aggs, outSchema, opt)
		return out, true, err
	case *ra.OrderBy:
		in, owned, err := one(t.Child)
		if err != nil {
			return nil, false, err
		}
		out, err := ApplyOrderBy(ctx, own(in, owned), t.Keys, t.Desc)
		return out, true, err
	case *ra.Limit:
		in, owned, err := one(t.Child)
		if err != nil {
			return nil, false, err
		}
		out, err := ApplyLimit(ctx, own(in, owned), t.N)
		return out, true, err
	}
	return nil, false, fmt.Errorf("core: unknown node %T", n)
}

// condMult maps a range-annotated boolean to an N^AU element (Definition 19
// and 20): true components become 1, false components 0.
func condMult(v rangeval.V) Mult {
	b2i := func(x types.Value) int64 {
		if x.Kind() == types.KindBool && x.AsBool() {
			return 1
		}
		return 0
	}
	return Mult{b2i(v.Lo), b2i(v.SG), b2i(v.Hi)}
}

// FilterTuple is the per-tuple selection kernel (Section 7): the tuple's
// annotation is multiplied by the condition's annotation triple
// (Definition 19/20). keep is false for tuples whose upper bound drops to
// zero — they are certainly absent and must not be emitted. The returned
// tuple shares the input's attribute ranges (selection never mutates
// values), which is what lets the pipelined executor stream it clone-free.
func FilterTuple(t Tuple, pred expr.Expr) (out Tuple, keep bool, err error) {
	v, err := pred.EvalRange(t.Vals)
	if err != nil {
		return Tuple{}, false, fmt.Errorf("core: selection: %w", err)
	}
	m := t.M.Mul(condMult(v))
	if m.Hi <= 0 {
		return Tuple{}, false, nil
	}
	return Tuple{Vals: t.Vals, M: m}, true, nil
}

// ApplySelect implements σ over N^AU on a materialized input. Tuples are
// predicate-checked in parallel chunks; output order is the input order.
// A FastCertain input takes the certain-only loop; any other sparse input
// falls back to a transient dense view.
func ApplySelect(ctx context.Context, in *Relation, pred expr.Expr, opt Options) (*Relation, error) {
	if in.FastCertain() && expr.CertainFastSafe(pred) {
		return selectCertain(ctx, in, pred, opt)
	}
	in = in.Dense()
	out := New(in.Schema)
	var err error
	out.Tuples, err = parMapTuples(ctx, in.Tuples, opt.workerCount(), func(tup Tuple, emit func(Tuple)) error {
		ot, keep, err := FilterTuple(tup, pred)
		if err != nil {
			return err
		}
		if keep {
			emit(ot)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// selectCertain is the certain-only σ fast path. On a FastCertain input
// every value is certain and non-null and every multiplicity is (m,m,m),
// so the predicate can be evaluated deterministically — Eval agrees with
// EvalRange on certain null-free tuples, including errors (the null-free
// part matters: a certain-null comparison evaluates to the maybe-triple
// [F/F/T] under range semantics but to false deterministically) — and a
// kept tuple's annotation passes through unchanged, since
// condMult([T/T/T]) is the semiring one. Kept rows materialize as fresh
// dense tuples; chunks concatenate in input order, so the result is
// bit-identical to the dense path.
func selectCertain(ctx context.Context, in *Relation, pred expr.Expr, opt Options) (*Relation, error) {
	arity := in.Schema.Arity()
	flat := make([][]types.Value, arity)
	for c := range flat {
		flat[c] = in.FlatCol(c)
	}
	spans := ChunkSpans(in.Len(), opt.workerCount(), minParTuples)
	chunks := make([][]Tuple, len(spans))
	err := runSpans(ctx, spans, func(ci int, s Span, p *ctxpoll.Poll) error {
		det := make(types.Tuple, arity)
		var keep []int
		for i := s.Lo; i < s.Hi; i++ {
			if err := p.Due(); err != nil {
				return err
			}
			for c := range flat {
				det[c] = flat[c][i]
			}
			v, err := pred.Eval(det)
			if err != nil {
				return fmt.Errorf("core: selection: %w", err)
			}
			if v.Kind() == types.KindBool && v.AsBool() {
				keep = append(keep, i)
			}
		}
		rows := make([]Tuple, len(keep))
		arena := make(rangeval.Tuple, len(keep)*arity)
		for j, i := range keep {
			vals := arena[j*arity : (j+1)*arity : (j+1)*arity]
			for c := range flat {
				vals[c] = rangeval.Certain(flat[c][i])
			}
			rows[j] = Tuple{Vals: vals, M: in.MultAt(i)}
		}
		chunks[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := New(in.Schema)
	out.Tuples = concatTuples(chunks)
	return out, nil
}

// ProjectTuple is the per-tuple generalized-projection kernel: range
// expressions are evaluated per Definition 9; the annotation is unchanged.
func ProjectTuple(t Tuple, cols []ra.ProjCol) (Tuple, error) {
	row := make(rangeval.Tuple, len(cols))
	for j, c := range cols {
		v, err := c.E.EvalRange(t.Vals)
		if err != nil {
			return Tuple{}, fmt.Errorf("core: projection %s: %w", c.Name, err)
		}
		row[j] = v
	}
	return Tuple{Vals: row, M: t.M}, nil
}

// ApplyProject implements generalized projection on a materialized input.
// Value-equivalent output tuples are merged (summing annotations), which is
// why Project is a merge point for the pipelined executor whenever merge
// granularity matters (compression enabled).
func ApplyProject(ctx context.Context, in *Relation, cols []ra.ProjCol, opt Options) (*Relation, error) {
	attrs := make([]string, len(cols))
	for i, c := range cols {
		attrs[i] = c.Name
	}
	out := New(schema.Schema{Attrs: attrs})
	if in.FastCertain() && projCertainSafe(cols) {
		rows, err := projectCertain(ctx, in, cols, opt)
		if err != nil {
			return nil, err
		}
		out.Tuples = rows
		return out.MergeCtx(ctx)
	}
	in = in.Dense()
	var err error
	out.Tuples, err = parMapTuples(ctx, in.Tuples, opt.workerCount(), func(tup Tuple, emit func(Tuple)) error {
		ot, err := ProjectTuple(tup, cols)
		if err != nil {
			return err
		}
		emit(ot)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out.MergeCtx(ctx)
}

// projCertainSafe reports whether every projection expression qualifies
// for deterministic evaluation on certain null-free inputs.
func projCertainSafe(cols []ra.ProjCol) bool {
	for _, c := range cols {
		if !expr.CertainFastSafe(c.E) {
			return false
		}
	}
	return true
}

// projectCertain is the certain-only π kernel: projection expressions are
// evaluated deterministically over the flat columns and wrapped back to
// certain range values, which is bit-identical to range evaluation on
// certain null-free inputs (see selectCertain). Annotations pass through.
func projectCertain(ctx context.Context, in *Relation, cols []ra.ProjCol, opt Options) ([]Tuple, error) {
	arity := in.Schema.Arity()
	flat := make([][]types.Value, arity)
	for c := range flat {
		flat[c] = in.FlatCol(c)
	}
	spans := ChunkSpans(in.Len(), opt.workerCount(), minParTuples)
	chunks := make([][]Tuple, len(spans))
	err := runSpans(ctx, spans, func(ci int, s Span, p *ctxpoll.Poll) error {
		det := make(types.Tuple, arity)
		rows := make([]Tuple, 0, s.Hi-s.Lo)
		arena := make(rangeval.Tuple, (s.Hi-s.Lo)*len(cols))
		for i := s.Lo; i < s.Hi; i++ {
			if err := p.Due(); err != nil {
				return err
			}
			for c := range flat {
				det[c] = flat[c][i]
			}
			row := arena[:len(cols):len(cols)]
			arena = arena[len(cols):]
			for j, c := range cols {
				v, err := c.E.Eval(det)
				if err != nil {
					return fmt.Errorf("core: projection %s: %w", c.Name, err)
				}
				row[j] = rangeval.Certain(v)
			}
			rows = append(rows, Tuple{Vals: row, M: in.MultAt(i)})
		}
		chunks[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatTuples(chunks), nil
}

// UnionRelations adds annotations pointwise and merges value-equivalent
// tuples.
func UnionRelations(ctx context.Context, l, r *Relation) (*Relation, error) {
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("core: union arity mismatch %s vs %s", l.Schema, r.Schema)
	}
	l, r = l.Dense(), r.Dense()
	out := New(l.Schema)
	out.Tuples = make([]Tuple, 0, len(l.Tuples)+len(r.Tuples))
	out.Tuples = append(out.Tuples, l.Tuples...)
	out.Tuples = append(out.Tuples, r.Tuples...)
	return out.MergeCtx(ctx)
}

// DistinctRelation implements duplicate elimination δ over N^AU on a
// materialized input. Tuples are first SG-combined (Definition 21), so
// distinct stored tuples have distinct selected-guess values. The SG
// component is then exactly δ of the SG multiplicity. The upper bound drops
// to 1 only for attribute-certain tuples; an attribute-uncertain tuple may
// stand for up to Hi distinct tuples and keeps its upper bound. The lower
// bound survives δ only for tuples that do not ≃-overlap any other stored
// tuple: overlapping tuples may collapse to one tuple in some world, in
// which case duplicate elimination leaves a single copy that cannot witness
// a positive lower bound for both.
func DistinctRelation(ctx context.Context, in *Relation, opt Options) (*Relation, error) {
	comb := in.SGCombine()
	out := New(in.Schema)
	rows := make([]Tuple, len(comb.Tuples))
	spans := ChunkSpans(len(comb.Tuples), opt.workerCount(), minParGroups)
	err := runSpans(ctx, spans, func(_ int, s Span, p *ctxpoll.Poll) error {
		for i := s.Lo; i < s.Hi; i++ {
			tup := comb.Tuples[i]
			m := Mult{Lo: 0, SG: delta(tup.M.SG), Hi: tup.M.Hi}
			if tup.Vals.IsCertain() {
				m.Hi = delta(m.Hi)
			}
			overlapsOther := false
			for j, other := range comb.Tuples {
				if err := p.Due(); err != nil {
					return err
				}
				if i != j && tup.Vals.Overlaps(other.Vals) {
					overlapsOther = true
					break
				}
			}
			if !overlapsOther {
				m.Lo = delta(tup.M.Lo)
			}
			rows[i] = Tuple{Vals: tup.Vals, M: m}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merge := ctxpoll.New(ctx)
	for _, row := range rows {
		if err := merge.Due(); err != nil {
			return nil, err
		}
		out.Add(row)
	}
	return out, nil
}

// OrderCompare is the ORDER BY comparison of presentation sorting. It
// compares only the selected-guess (SG) component of the key attributes —
// intentionally, per the paper's Section 6 semantics: an AU-relation
// annotates one selected-guess world, and presentation order is defined in
// that world, exactly as a conventional database would order the
// selected-guess answer (the EngineSGW answer sorts identically). Attribute
// bounds do not participate: two tuples whose [lb, ub] intervals overlap —
// or even contain one another — in any pattern compare solely by their SG
// values, and SG ties are broken by the (stable) input order, never by
// bounds. TestOrderBySGSemantics guards this against accidental change; do
// not "fix" this to consider Lo/Hi without revisiting the paper's
// Definition 13.
func OrderCompare(a, b rangeval.Tuple, keys []int, desc bool) int {
	for _, k := range keys {
		if c := types.Compare(a[k].SG, b[k].SG); c != 0 {
			if desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// sortCancelled carries ctx.Err() out of a sort.SliceStable comparison.
type sortCancelled struct{ err error }

// SortTuples stable-sorts ts in place by the SG values of the key columns
// (see OrderCompare for why only SG participates). Cancellation is checked
// at ctxpoll stride inside the comparison function, so even a large sort
// aborts with ctx.Err() well before completing.
func SortTuples(ctx context.Context, ts []Tuple, keys []int, desc bool) (err error) {
	p := ctxpoll.New(ctx)
	defer func() {
		if r := recover(); r != nil {
			sc, ok := r.(sortCancelled)
			if !ok {
				panic(r)
			}
			err = sc.err
		}
	}()
	sort.SliceStable(ts, func(i, j int) bool {
		if e := p.Due(); e != nil {
			panic(sortCancelled{err: e})
		}
		return OrderCompare(ts[i].Vals, ts[j].Vals, keys, desc) < 0
	})
	return nil
}

// ApplyOrderBy sorts in place and returns its input; it takes ownership of
// in (callers pass an owned relation, see exec).
func ApplyOrderBy(ctx context.Context, in *Relation, keys []int, desc bool) (*Relation, error) {
	in.densifyInPlace() // owned by contract; sorting needs the dense layout
	if err := SortTuples(ctx, in.Tuples, keys, desc); err != nil {
		return nil, err
	}
	return in, nil
}

// ApplyLimit merges value-equivalent tuples, then truncates to the first n
// rows; it takes ownership of in. Limit applies to merged rows — under
// uncertainty the row order is that of the selected-guess world — so the
// whole input participates in the merge even when only n rows survive (the
// pipelined executor does the same with O(n) state).
func ApplyLimit(ctx context.Context, in *Relation, n int) (*Relation, error) {
	out, err := in.MergeCtx(ctx)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		n = 0
	}
	if n < len(out.Tuples) {
		out.Tuples = out.Tuples[:n]
	}
	return out, nil
}
