package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Options tune the performance/precision trade-offs of Section 10.4-10.5.
// The zero value evaluates the exact (uncompressed) semantics.
type Options struct {
	// JoinCompression, when > 0, applies the split + Cpr optimization to
	// joins (Section 10.4): the attribute-uncertain parts of both inputs
	// are compressed to at most this many tuples before the overlap join.
	JoinCompression int
	// AggCompression, when > 0, compresses the possible-group side of the
	// aggregation overlap join to at most this many tuples (Section 10.5).
	AggCompression int
	// NaiveJoin forces the pure nested-loop overlap join, disabling the
	// exact hash-partitioned fast path. Used to reproduce the "Non-Op"
	// series of Figure 14.
	NaiveJoin bool
	// Workers is the number of goroutines the executor may use for the hot
	// operators (hybrid join, aggregation, selection, projection, split).
	// 0 (the zero value) means runtime.GOMAXPROCS(0); 1 forces the serial
	// reference evaluation. Results are identical for every worker count.
	Workers int
}

// Exec evaluates an RA_agg plan over an AU-database using the
// bound-preserving semantics of Sections 7-9 and returns the merged result.
// Cancellation of ctx aborts the evaluation promptly — operators check the
// context cooperatively at chunk boundaries and inside their hot loops —
// and the error is ctx.Err(). A nil ctx is treated as context.Background().
func Exec(ctx context.Context, n ra.Node, db DB, opt Options) (*Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	cat := ra.CatalogMap(db.Schemas())
	out, err := exec(ctx, n, db, cat, opt)
	if err != nil {
		return nil, err
	}
	return out.Clone().Merge(), nil
}

func exec(ctx context.Context, n ra.Node, db DB, cat ra.Catalog, opt Options) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ra.IsNil(n) {
		// A nil child reached through a nested operator (e.g. a
		// hand-built plan with a missing input).
		return nil, fmt.Errorf("core: nil plan node")
	}
	switch t := n.(type) {
	case *ra.Scan:
		r, ok := db.LookupFold(t.Table)
		if !ok {
			return nil, schema.UnknownTable("core", t.Table, db.Names())
		}
		return r, nil
	case *ra.Select:
		return execSelect(ctx, t, db, cat, opt)
	case *ra.Project:
		return execProject(ctx, t, db, cat, opt)
	case *ra.Join:
		return execJoin(ctx, t, db, cat, opt)
	case *ra.Union:
		return execUnion(ctx, t, db, cat, opt)
	case *ra.Diff:
		return execDiff(ctx, t, db, cat, opt)
	case *ra.Distinct:
		return execDistinct(ctx, t, db, cat, opt)
	case *ra.Agg:
		return execAgg(ctx, t, db, cat, opt)
	case *ra.OrderBy:
		in, err := exec(ctx, t.Child, db, cat, opt)
		if err != nil {
			return nil, err
		}
		out := in.Clone()
		sort.SliceStable(out.Tuples, func(i, j int) bool {
			a, b := out.Tuples[i].Vals, out.Tuples[j].Vals
			for _, k := range t.Keys {
				if c := types.Compare(a[k].SG, b[k].SG); c != 0 {
					if t.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		return out, nil
	case *ra.Limit:
		in, err := exec(ctx, t.Child, db, cat, opt)
		if err != nil {
			return nil, err
		}
		out := in.Clone().Merge()
		if t.N < len(out.Tuples) {
			out.Tuples = out.Tuples[:t.N]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown node %T", n)
}

// condMult maps a range-annotated boolean to an N^AU element (Definition 19
// and 20): true components become 1, false components 0.
func condMult(v rangeval.V) Mult {
	b2i := func(x types.Value) int64 {
		if x.Kind() == types.KindBool && x.AsBool() {
			return 1
		}
		return 0
	}
	return Mult{b2i(v.Lo), b2i(v.SG), b2i(v.Hi)}
}

// execSelect implements σ over N^AU (Section 7): the annotation of each
// tuple is multiplied by the condition's annotation triple. Tuples whose
// upper bound drops to zero are certainly absent and removed. Tuples are
// predicate-checked in parallel chunks; output order is the input order.
func execSelect(ctx context.Context, t *ra.Select, db DB, cat ra.Catalog, opt Options) (*Relation, error) {
	in, err := exec(ctx, t.Child, db, cat, opt)
	if err != nil {
		return nil, err
	}
	out := New(in.Schema)
	out.Tuples, err = parMapTuples(ctx, in.Tuples, opt.workerCount(), func(tup Tuple, emit func(Tuple)) error {
		v, err := t.Pred.EvalRange(tup.Vals)
		if err != nil {
			return fmt.Errorf("core: selection: %w", err)
		}
		m := tup.M.Mul(condMult(v))
		if m.Hi > 0 {
			emit(Tuple{Vals: tup.Vals, M: m})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// execProject implements generalized projection: range expressions are
// evaluated per Definition 9; annotations are unchanged (summing of
// value-equivalent results happens in Merge).
func execProject(ctx context.Context, t *ra.Project, db DB, cat ra.Catalog, opt Options) (*Relation, error) {
	in, err := exec(ctx, t.Child, db, cat, opt)
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		attrs[i] = c.Name
	}
	out := New(schema.Schema{Attrs: attrs})
	out.Tuples, err = parMapTuples(ctx, in.Tuples, opt.workerCount(), func(tup Tuple, emit func(Tuple)) error {
		row := make(rangeval.Tuple, len(t.Cols))
		for j, c := range t.Cols {
			v, err := c.E.EvalRange(tup.Vals)
			if err != nil {
				return fmt.Errorf("core: projection %s: %w", c.Name, err)
			}
			row[j] = v
		}
		emit(Tuple{Vals: row, M: tup.M})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out.Merge(), nil
}

// execUnion adds annotations pointwise.
func execUnion(ctx context.Context, t *ra.Union, db DB, cat ra.Catalog, opt Options) (*Relation, error) {
	l, err := exec(ctx, t.Left, db, cat, opt)
	if err != nil {
		return nil, err
	}
	r, err := exec(ctx, t.Right, db, cat, opt)
	if err != nil {
		return nil, err
	}
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("core: union arity mismatch %s vs %s", l.Schema, r.Schema)
	}
	out := New(l.Schema)
	out.Tuples = append(out.Tuples, l.Tuples...)
	out.Tuples = append(out.Tuples, r.Tuples...)
	return out.Clone().Merge(), nil
}

// execDistinct implements duplicate elimination δ over N^AU. Tuples are
// first SG-combined (Definition 21), so distinct stored tuples have
// distinct selected-guess values. The SG component is then exactly δ of the
// SG multiplicity. The upper bound drops to 1 only for attribute-certain
// tuples; an attribute-uncertain tuple may stand for up to Hi distinct
// tuples and keeps its upper bound. The lower bound survives δ only for
// tuples that do not ≃-overlap any other stored tuple: overlapping tuples
// may collapse to one tuple in some world, in which case duplicate
// elimination leaves a single copy that cannot witness a positive lower
// bound for both.
func execDistinct(ctx context.Context, t *ra.Distinct, db DB, cat ra.Catalog, opt Options) (*Relation, error) {
	in, err := exec(ctx, t.Child, db, cat, opt)
	if err != nil {
		return nil, err
	}
	comb := in.SGCombine()
	out := New(in.Schema)
	rows := make([]Tuple, len(comb.Tuples))
	spans := chunkSpans(len(comb.Tuples), opt.workerCount(), minParGroups)
	err = runSpans(ctx, spans, func(_ int, s span, p *ctxpoll.Poll) error {
		for i := s.lo; i < s.hi; i++ {
			tup := comb.Tuples[i]
			m := Mult{Lo: 0, SG: delta(tup.M.SG), Hi: tup.M.Hi}
			if tup.Vals.IsCertain() {
				m.Hi = delta(m.Hi)
			}
			overlapsOther := false
			for j, other := range comb.Tuples {
				if err := p.Due(); err != nil {
					return err
				}
				if i != j && tup.Vals.Overlaps(other.Vals) {
					overlapsOther = true
					break
				}
			}
			if !overlapsOther {
				m.Lo = delta(tup.M.Lo)
			}
			rows[i] = Tuple{Vals: tup.Vals, M: m}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		out.Add(row)
	}
	return out, nil
}
