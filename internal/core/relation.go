package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Tuple is one AU-DB tuple: range-annotated attribute values plus an N^AU
// multiplicity annotation.
type Tuple struct {
	Vals rangeval.Tuple
	M    Mult
}

// Clone returns a deep copy.
func (t Tuple) Clone() Tuple {
	return Tuple{Vals: t.Vals.Clone(), M: t.M}
}

// String renders the tuple with its annotation.
func (t Tuple) String() string {
	return t.Vals.String() + " " + t.M.String()
}

// Relation is an N^AU-relation (Definition 12): a finite support function
// from range-annotated tuples to multiplicity triples, stored as a slice.
// Tuples with zero annotations are never stored.
//
// A relation holds its rows in exactly one of two representations: the
// dense Tuples slice, or the columnar sparse form (sp, see sparse.go)
// that a Catalog compacts mostly-certain tables into. Code that reads
// Tuples directly must first obtain a dense view via Dense()/DenseRange()
// or iterate with EachTuple; the accessors on *Relation (Len, Repr,
// FastCertain, ...) work on either representation.
type Relation struct {
	Schema schema.Schema
	Tuples []Tuple

	// sp holds the columnar storage of a compacted relation; nil for
	// dense relations. Invariant: sp != nil implies Tuples == nil.
	sp *sparseRows
}

// New creates an empty AU-relation with the given schema.
func New(s schema.Schema) *Relation { return &Relation{Schema: s} }

// FromDeterministic lifts a deterministic bag relation into an AU-relation
// with certain attribute values and exact annotations (k,k,k).
func FromDeterministic(r *bag.Relation) *Relation {
	out := New(r.Schema)
	for i, t := range r.Tuples {
		c := r.Counts[i]
		out.Add(Tuple{Vals: rangeval.CertainTuple(t), M: Mult{c, c, c}})
	}
	return out
}

// Add appends a tuple unless its annotation is zero or invalid-by-zero.
// Adding to a sparse relation densifies it first: a mutated table can no
// longer trust its compaction-time certainty analysis, so it flips back
// to dense until the next registration or Analyze re-evaluates it.
func (r *Relation) Add(t Tuple) {
	if t.M.Hi <= 0 {
		return
	}
	r.densifyInPlace()
	r.Tuples = append(r.Tuples, t)
}

// Len returns the number of stored AU-tuples.
func (r *Relation) Len() int {
	if r.sp != nil {
		return r.sp.n
	}
	return len(r.Tuples)
}

// PossibleSize returns the total upper-bound multiplicity, the measure of
// over-approximation size reported in Figure 14b.
func (r *Relation) PossibleSize() int64 {
	var n int64
	if r.sp != nil {
		for i := 0; i < r.sp.n; i++ {
			n += r.sp.multAt(i).Hi
		}
		return n
	}
	for _, t := range r.Tuples {
		n += t.M.Hi
	}
	return n
}

// CertainSize returns the total lower-bound multiplicity.
func (r *Relation) CertainSize() int64 {
	var n int64
	if r.sp != nil {
		for i := 0; i < r.sp.n; i++ {
			n += r.sp.multAt(i).Lo
		}
		return n
	}
	for _, t := range r.Tuples {
		n += t.M.Lo
	}
	return n
}

// Clone returns a deep copy (dense, regardless of r's representation).
func (r *Relation) Clone() *Relation {
	if r.sp != nil {
		// Dense materialization is already a deep copy: fresh Vals
		// slices over immutable values.
		return r.Dense()
	}
	out := New(r.Schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// ShallowClone copies the Tuples slice — annotations are value-copied with
// the Tuple structs — without deep-copying attribute ranges. The clone owns
// its slice and annotations (it may be reordered, truncated and Merged),
// while attribute values still alias r's; every engine treats range values
// as immutable, so slice-level ownership is all the executors need. A
// sparse relation yields a fresh dense materialization, which owns
// everything.
func (r *Relation) ShallowClone() *Relation {
	if r.sp != nil {
		return r.Dense()
	}
	out := New(r.Schema)
	out.Tuples = append([]Tuple(nil), r.Tuples...)
	return out
}

// Merge combines value-equivalent tuples (identical [lb/sg/ub] on every
// attribute), summing annotations. The relational encoding requires merged
// relations (Section 10.2, "merge annotations").
func (r *Relation) Merge() *Relation {
	// The background context is never cancelled, so mergePoll cannot fail.
	out, _ := r.mergePoll(ctxpoll.New(context.Background()))
	return out
}

// MergeCtx is Merge with cooperative cancellation, polled per tuple: the
// O(result) merge of a large output aborts promptly with ctx.Err().
func (r *Relation) MergeCtx(ctx context.Context) (*Relation, error) {
	return r.mergePoll(ctxpoll.New(ctx))
}

func (r *Relation) mergePoll(p *ctxpoll.Poll) (*Relation, error) {
	// Merge mutates in place, so it only runs on owned relations; owned
	// relations are dense (ShallowClone densifies), but densify
	// defensively so a stray sparse input cannot corrupt the merge.
	r.densifyInPlace()
	if len(r.Tuples) == 0 {
		return r, nil
	}
	idx := make(map[string]int, len(r.Tuples))
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		k := t.Vals.Key()
		if j, ok := idx[k]; ok {
			out[j].M = out[j].M.Add(t.M)
			continue
		}
		idx[k] = len(out)
		out = append(out, t)
	}
	r.Tuples = out
	return r, nil
}

// SGW extracts the selected-guess world encoded by the relation
// (Definition 13): group tuples by their SG attribute values and sum the SG
// components of their annotations.
func (r *Relation) SGW() *bag.Relation {
	// The background context is never cancelled, so sgwCtx cannot fail.
	out, _ := r.sgwCtx(ctxpoll.New(context.Background()))
	return out
}

// sgwCtx is SGW with cooperative cancellation, polled per tuple.
func (r *Relation) sgwCtx(p *ctxpoll.Poll) (*bag.Relation, error) {
	out := bag.New(r.Schema)
	counts := map[string]int64{}
	reps := map[string]types.Tuple{}
	var order []string
	err := r.EachTuple(func(t Tuple) error {
		if err := p.Due(); err != nil {
			return err
		}
		sg := t.Vals.SG() // fresh tuple, safe past the scratch Vals
		k := sg.Key()
		if _, ok := counts[k]; !ok {
			order = append(order, k)
			reps[k] = sg
		}
		counts[k] += t.M.SG
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		if counts[k] > 0 {
			out.Add(reps[k], counts[k])
		}
	}
	return out, nil
}

// SGCombine implements the SG-combiner Ψ (Definition 21): tuples with the
// same selected-guess attribute values are merged into a single tuple whose
// attribute ranges are the minimum bounding box and whose annotation is the
// sum.
func (r *Relation) SGCombine() *Relation {
	out := New(r.Schema)
	idx := make(map[string]int, r.Len())
	_ = r.EachTuple(func(t Tuple) error {
		k := t.Vals.SGKey()
		if j, ok := idx[k]; ok {
			out.Tuples[j].Vals = out.Tuples[j].Vals.Union(t.Vals)
			out.Tuples[j].M = out.Tuples[j].M.Add(t.M)
			return nil
		}
		idx[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, t.Clone())
		return nil
	})
	return out
}

// Sort orders tuples by SG values then bounds, for stable output. Sorting
// reorders in place, so a sparse relation densifies first.
func (r *Relation) Sort() *Relation {
	r.densifyInPlace()
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i], r.Tuples[j]
		if c := a.Vals.SG().Compare(b.Vals.SG()); c != 0 {
			return c < 0
		}
		return a.Vals.Key() < b.Vals.Key()
	})
	return r
}

// String renders the relation as a table.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(r.Schema.String())
	sb.WriteByte('\n')
	_ = r.EachTuple(func(t Tuple) error {
		fmt.Fprintf(&sb, "%s\n", t)
		return nil
	})
	return sb.String()
}

// DB is a named collection of AU-relations.
type DB map[string]*Relation

// Schemas returns a catalog view.
func (db DB) Schemas() map[string]schema.Schema {
	out := make(map[string]schema.Schema, len(db))
	for n, r := range db {
		out[strings.ToLower(n)] = r.Schema
	}
	return out
}

// SGW extracts the selected-guess world of every relation.
func (db DB) SGW() bag.DB {
	out, _ := db.SGWContext(context.Background())
	return out
}

// SGWContext is SGW with cooperative cancellation, so the O(database)
// extraction phase of a selected-guess query aborts promptly.
func (db DB) SGWContext(ctx context.Context) (bag.DB, error) {
	out := bag.DB{}
	p := ctxpoll.New(ctx)
	for n, r := range db {
		sgw, err := r.sgwCtx(p)
		if err != nil {
			return nil, err
		}
		out[n] = sgw
	}
	return out, nil
}

// FromDeterministicDB lifts a whole deterministic database.
func FromDeterministicDB(db bag.DB) DB {
	out := DB{}
	for n, r := range db {
		out[n] = FromDeterministic(r)
	}
	return out
}
