package core

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

// JoinRelations is the join kernel on materialized inputs — the strategy
// dispatch shared by the reference executor and the pipelined build side.
// It implements join over N^AU-relations (Section 7): the cross product
// multiplies annotations pointwise and the join condition is evaluated
// with range-annotated semantics, contributing a condition triple via M_N
// (Definition 20). Equality on uncertain attributes degenerates to an
// interval-overlap join.
//
// Three physical strategies:
//
//   - NaiveJoin: nested loop over all pairs (the paper's un-optimized
//     rewrite; quadratic).
//   - default: an exact hash-partitioned hybrid. Tuples whose
//     equality-join attributes are certain meet through a hash join on
//     their SG values (for certain values, possible-equality coincides
//     with SG equality); every pair involving an uncertain side goes
//     through the nested loop. Produces exactly the naive result.
//   - JoinCompression > 0: the split + Cpr optimization of Section 10.4,
//     trading precision for a bounded possible-side size.
func JoinRelations(ctx context.Context, l, r *Relation, cond expr.Expr, opt Options) (*Relation, error) {
	w := opt.workerCount()
	if opt.JoinCompression > 0 {
		return joinOptimized(ctx, l.Dense(), r.Dense(), cond, opt.JoinCompression, w)
	}
	if opt.NaiveJoin {
		return joinNested(ctx, l.Dense(), r.Dense(), cond, nil, nil, w)
	}
	return joinHybrid(ctx, l, r, cond, opt.JoinBuildLeft, w)
}

// joinPair combines one pair of tuples under the condition, returning a
// zero-annotation tuple when the pair certainly does not join.
func joinPair(lt, rt Tuple, cond expr.Expr) (Tuple, error) {
	vals := lt.Vals.Concat(rt.Vals)
	m := lt.M.Mul(rt.M)
	if cond != nil {
		cv, err := cond.EvalRange(vals)
		if err != nil {
			return Tuple{}, fmt.Errorf("core: join condition: %w", err)
		}
		m = m.Mul(condMult(cv))
	}
	return Tuple{Vals: vals, M: m}, nil
}

// joinNested is the quadratic overlap join. When leftIdx/rightIdx are
// non-nil only those row indices participate. The outer rows are
// block-partitioned across workers; each block's pairs are produced in the
// serial order, and blocks concatenate in order.
func joinNested(ctx context.Context, l, r *Relation, cond expr.Expr, leftIdx, rightIdx []int, workers int) (*Relation, error) {
	out := New(l.Schema.Concat(r.Schema))
	li := leftIdx
	if li == nil {
		li = allIdx(len(l.Tuples))
	}
	ri := rightIdx
	if ri == nil {
		ri = allIdx(len(r.Tuples))
	}
	if len(ri) == 0 {
		return out, nil
	}
	// Size outer chunks so each holds at least minParPairs pairs.
	minRows := (minParPairs + len(ri) - 1) / len(ri)
	spans := ChunkSpans(len(li), workers, minRows)
	bufs := make([][]Tuple, len(spans))
	err := runSpans(ctx, spans, func(c int, s Span, p *ctxpoll.Poll) error {
		var buf []Tuple
		for _, i := range li[s.Lo:s.Hi] {
			lt := l.Tuples[i]
			for _, j := range ri {
				if err := p.Due(); err != nil {
					return err
				}
				tup, err := joinPair(lt, r.Tuples[j], cond)
				if err != nil {
					return err
				}
				if tup.M.Hi > 0 {
					buf = append(buf, tup)
				}
			}
		}
		bufs[c] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Tuples = concatTuples(bufs)
	return out, nil
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// joinHybrid partitions both inputs on the certainty of the equality-join
// attributes and hash joins the certain parts. Exact: identical result to
// joinNested. The hash-probe side and the uncertain nested-loop quadrants
// are both partitioned across workers.
func joinHybrid(ctx context.Context, l, r *Relation, cond expr.Expr, buildLeft bool, workers int) (*Relation, error) {
	split := l.Schema.Arity()
	var lCols, rCols []int
	if cond != nil {
		for _, c := range expr.Conjuncts(cond) {
			if lix, rix, ok := expr.EquiPair(c, split); ok {
				lCols = append(lCols, lix)
				rCols = append(rCols, rix)
			}
		}
	}
	if len(lCols) == 0 {
		return joinNested(ctx, l.Dense(), r.Dense(), cond, nil, nil, workers)
	}
	if l.FastCertain() && r.FastCertain() && expr.CertainFastSafe(cond) {
		return joinCertain(ctx, l, r, cond, lCols, rCols, buildLeft, workers)
	}
	l, r = l.Dense(), r.Dense()

	lCert, lUnc := partitionCertain(l, lCols)
	rCert, rUnc := partitionCertain(r, rCols)

	out := New(l.Schema.Concat(r.Schema))

	// Certain x certain: hash join on SG values of the join columns. The
	// full condition is still evaluated with range semantics to account
	// for residual conjuncts over other (possibly uncertain) attributes.
	// The build side is sequential; probes run chunked over workers.
	// Options.JoinBuildLeft (set per join by the stats-driven lowering)
	// feeds the index from the left input instead of the right; output
	// columns are unchanged — only which side the probe loop iterates
	// over (and therefore the emission order of this quadrant) differs,
	// and every result is canonically merged.
	build, probe := rCert, lCert
	buildRel, probeRel := r, l
	buildCols, probeCols := rCols, lCols
	if buildLeft {
		build, probe = lCert, rCert
		buildRel, probeRel = l, r
		buildCols, probeCols = lCols, rCols
	}
	index := make(map[string][]int, len(build))
	for _, j := range build {
		k := sgKeyOn(buildRel.Tuples[j].Vals, buildCols)
		index[k] = append(index[k], j)
	}
	spans := ChunkSpans(len(probe), workers, minParTuples)
	bufs := make([][]Tuple, len(spans))
	err := runSpans(ctx, spans, func(c int, s Span, p *ctxpoll.Poll) error {
		var buf []Tuple
		for _, i := range probe[s.Lo:s.Hi] {
			if err := p.Due(); err != nil {
				return err
			}
			k := sgKeyOn(probeRel.Tuples[i].Vals, probeCols)
			for _, j := range index[k] {
				if err := p.Due(); err != nil {
					return err
				}
				li, ri := i, j
				if buildLeft {
					li, ri = j, i
				}
				tup, err := joinPair(l.Tuples[li], r.Tuples[ri], cond)
				if err != nil {
					return err
				}
				if tup.M.Hi > 0 {
					buf = append(buf, tup)
				}
			}
		}
		bufs[c] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Tuples = concatTuples(bufs)

	// Pairs involving an uncertain side: nested loops. Empty partitions
	// must be skipped explicitly (joinNested treats nil as "all rows").
	appendAll := func(rel *Relation, li, ri []int) error {
		if len(li) == 0 || len(ri) == 0 {
			return nil
		}
		part, err := joinNested(ctx, l, r, cond, li, ri, workers)
		if err != nil {
			return err
		}
		rel.Tuples = append(rel.Tuples, part.Tuples...)
		return nil
	}
	if err := appendAll(out, lUnc, allIdx(len(r.Tuples))); err != nil {
		return nil, err
	}
	if err := appendAll(out, lCert, rUnc); err != nil {
		return nil, err
	}
	return out, nil
}

// joinCertain is the certain-only equi-join fast path: both inputs are
// FastCertain, so every row lands in the hybrid join's certain×certain
// quadrant (the uncertain nested-loop quadrants are empty) and the
// residual condition evaluates deterministically over flat values —
// bit-identical to range evaluation on certain null-free tuples. The
// build/probe structure, hash keys (AppendKey over the SG values, which
// for flat columns are the stored values) and emission order replicate
// joinHybrid exactly.
func joinCertain(ctx context.Context, l, r *Relation, cond expr.Expr, lCols, rCols []int, buildLeft bool, workers int) (*Relation, error) {
	la, ra := l.Schema.Arity(), r.Schema.Arity()
	lFlat, rFlat := l.flatView(), r.flatView()
	out := New(l.Schema.Concat(r.Schema))

	buildFlat, probeFlat := rFlat, lFlat
	buildCols, probeCols := rCols, lCols
	buildN, probeN := r.Len(), l.Len()
	if buildLeft {
		buildFlat, probeFlat = lFlat, rFlat
		buildCols, probeCols = lCols, rCols
		buildN, probeN = l.Len(), r.Len()
	}
	index := make(map[string][]int, buildN)
	var kb []byte
	for j := 0; j < buildN; j++ {
		kb = kb[:0]
		for _, c := range buildCols {
			kb = buildFlat[c][j].AppendKey(kb)
		}
		index[string(kb)] = append(index[string(kb)], j)
	}
	spans := ChunkSpans(probeN, workers, minParTuples)
	bufs := make([][]Tuple, len(spans))
	err := runSpans(ctx, spans, func(ci int, s Span, p *ctxpoll.Poll) error {
		det := make(types.Tuple, la+ra)
		var key []byte
		var buf []Tuple
		for i := s.Lo; i < s.Hi; i++ {
			if err := p.Due(); err != nil {
				return err
			}
			key = key[:0]
			for _, c := range probeCols {
				key = probeFlat[c][i].AppendKey(key)
			}
			for _, j := range index[string(key)] {
				if err := p.Due(); err != nil {
					return err
				}
				li, ri := i, j
				if buildLeft {
					li, ri = j, i
				}
				for c := 0; c < la; c++ {
					det[c] = lFlat[c][li]
				}
				for c := 0; c < ra; c++ {
					det[la+c] = rFlat[c][ri]
				}
				if cond != nil {
					v, err := cond.Eval(det)
					if err != nil {
						return fmt.Errorf("core: join condition: %w", err)
					}
					if v.Kind() != types.KindBool || !v.AsBool() {
						continue
					}
				}
				m := l.MultAt(li).Mul(r.MultAt(ri))
				if m.Hi <= 0 {
					continue
				}
				vals := make(rangeval.Tuple, la+ra)
				for c, dv := range det {
					vals[c] = rangeval.Certain(dv)
				}
				buf = append(buf, Tuple{Vals: vals, M: m})
			}
		}
		bufs[ci] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Tuples = concatTuples(bufs)
	return out, nil
}

// partitionCertain splits row indices by whether all listed attributes are
// certain.
func partitionCertain(r *Relation, cols []int) (certain, uncertain []int) {
	for i, t := range r.Tuples {
		ok := true
		for _, c := range cols {
			if !t.Vals[c].IsCertain() {
				ok = false
				break
			}
		}
		if ok {
			certain = append(certain, i)
		} else {
			uncertain = append(uncertain, i)
		}
	}
	return certain, uncertain
}

func sgKeyOn(t rangeval.Tuple, cols []int) string {
	var buf []byte
	for _, c := range cols {
		buf = t[c].SG.AppendKey(buf)
	}
	return string(buf)
}

// joinOptimized is the split + Cpr optimization (Section 10.4):
//
//	opt(Q1 ⋈ Q2) = (split_sg(Q1) ⋈_sg split_sg(Q2))
//	             ∪ (Cpr(split↑(Q1)) ⋈ Cpr(split↑(Q2)))
//
// The SG join sees only attribute-certain tuples and uses the exact hybrid
// path (pure hash join there); the possible join is bounded by ct tuples
// per side. Lemma 10.1: the result bounds the un-optimized result.
func joinOptimized(ctx context.Context, l, r *Relation, cond expr.Expr, ct, workers int) (*Relation, error) {
	lSG, lUp, err := splitN(ctx, l, workers)
	if err != nil {
		return nil, err
	}
	rSG, rUp, err := splitN(ctx, r, workers)
	if err != nil {
		return nil, err
	}

	sgJoin, err := joinHybrid(ctx, lSG, rSG, cond, false, workers)
	if err != nil {
		return nil, err
	}

	// Choose compression attributes: prefer the first equality conjunct so
	// both sides share bucket boundaries and each compressed tuple joins
	// with at most a few partners.
	split := l.Schema.Arity()
	la, ra := 0, 0
	shared := false
	if cond != nil {
		for _, c := range expr.Conjuncts(cond) {
			if lix, rix, ok := expr.EquiPair(c, split); ok {
				la, ra, shared = lix, rix, true
				break
			}
		}
	}
	var lCpr, rCpr *Relation
	if shared {
		bounds := sharedBoundaries(lUp, la, rUp, ra, ct)
		lCpr = CompressWithBoundaries(lUp, la, bounds)
		rCpr = CompressWithBoundaries(rUp, ra, bounds)
	} else {
		lCpr = Compress(lUp, la, ct)
		rCpr = Compress(rUp, ra, ct)
	}
	posJoin, err := joinNested(ctx, lCpr, rCpr, cond, nil, nil, workers)
	if err != nil {
		return nil, err
	}

	out := New(l.Schema.Concat(r.Schema))
	out.Tuples = append(out.Tuples, sgJoin.Tuples...)
	out.Tuples = append(out.Tuples, posJoin.Tuples...)
	return out, nil
}
