package core

import (
	"context"
	"runtime"
	"sync"

	"github.com/audb/audb/internal/ctxpoll"
)

// The parallel executor partitions operator inputs into contiguous chunks
// and evaluates chunks on worker goroutines. Every parallel path merges its
// per-chunk results in chunk order, so the output — tuple order, annotation
// sums, group order — is identical to the serial left-to-right evaluation
// and Workers: 1 remains the reference semantics for the paper's
// bound-preservation guarantees.
//
// Cancellation: every chunk body receives a poll bound to the query
// context. Operators call poll.due() inside their hot loops; runSpans
// additionally checks the context at every chunk boundary, so both the
// serial path (one goroutine walking chunks) and the parallel path (one
// goroutine per chunk) abort promptly once the context is cancelled.

// Minimum work per chunk before an operator goes parallel: below these
// sizes goroutine spawn and merge overhead dominates the work itself.
const (
	minParTuples = 1024 // per-tuple maps (selection, projection, split)
	minParPairs  = 4096 // nested-loop join pairs
	minParGroups = 16   // aggregation output groups
)

// workerCount resolves Options.Workers: 0 (the zero value) means one worker
// per available CPU.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Span is a half-open index interval [Lo, Hi) — the contiguous input
// partition unit shared by the chunked kernels and the pipelined
// executor's exchange operator.
type Span struct{ Lo, Hi int }

// ChunkSpans partitions [0, n) into at most w contiguous spans of at least
// min indices each. A single span signals the serial fallback.
func ChunkSpans(n, w, min int) []Span {
	if n <= 0 {
		return nil
	}
	if min < 1 {
		min = 1
	}
	nc := w
	if limit := n / min; nc > limit {
		nc = limit
	}
	if nc < 1 {
		nc = 1
	}
	out := make([]Span, nc)
	for c := 0; c < nc; c++ {
		out[c] = Span{Lo: c * n / nc, Hi: (c + 1) * n / nc}
	}
	return out
}

// runSpans executes body once per span — inline for a single span,
// otherwise one goroutine per span. The context is checked at every chunk
// boundary and each body receives its own ctxpoll.Poll for finer-grained
// checks.
// It reports the error of the earliest failing span, matching what the
// serial evaluation order would surface; all goroutines are joined before
// returning, so a cancelled run leaks nothing.
func runSpans(ctx context.Context, spans []Span, body func(c int, s Span, p *ctxpoll.Poll) error) error {
	if len(spans) == 0 {
		return ctx.Err()
	}
	if len(spans) == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return body(0, spans[0], ctxpoll.New(ctx))
	}
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	wg.Add(len(spans))
	for c := range spans {
		go func(c int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[c] = err
				return
			}
			errs[c] = body(c, spans[c], ctxpoll.New(ctx))
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parMapTuples maps fn over in with the given parallelism. Each chunk emits
// into its own buffer and the buffers are concatenated in chunk order, so
// the result equals the serial left-to-right map regardless of workers.
func parMapTuples(ctx context.Context, in []Tuple, workers int, fn func(t Tuple, emit func(Tuple)) error) ([]Tuple, error) {
	spans := ChunkSpans(len(in), workers, minParTuples)
	bufs := make([][]Tuple, len(spans))
	err := runSpans(ctx, spans, func(c int, s Span, p *ctxpoll.Poll) error {
		buf := make([]Tuple, 0, s.Hi-s.Lo)
		emit := func(t Tuple) { buf = append(buf, t) }
		for _, t := range in[s.Lo:s.Hi] {
			if err := p.Due(); err != nil {
				return err
			}
			if err := fn(t, emit); err != nil {
				return err
			}
		}
		bufs[c] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatTuples(bufs), nil
}

// concatTuples flattens per-chunk buffers preserving chunk order.
func concatTuples(bufs [][]Tuple) []Tuple {
	if len(bufs) == 1 {
		return bufs[0]
	}
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	out := make([]Tuple, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
