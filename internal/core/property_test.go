package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// incompleteRel is a tiny block-independent incomplete relation used by the
// property tests: each row has a set of alternative tuples and may be
// optional.
type incompleteRel struct {
	schema schema.Schema
	rows   []incompleteRow
}

type incompleteRow struct {
	alts     []types.Tuple
	optional bool
}

// auRelation builds the AU-DB encoding of r: the SG picks each row's first
// alternative; bounds span all alternatives.
func (r *incompleteRel) auRelation() *Relation {
	out := New(r.schema)
	for _, row := range r.rows {
		vals := make(rangeval.Tuple, r.schema.Arity())
		for c := 0; c < r.schema.Arity(); c++ {
			lo, hi := row.alts[0][c], row.alts[0][c]
			for _, a := range row.alts[1:] {
				lo = types.Min(lo, a[c])
				hi = types.Max(hi, a[c])
			}
			vals[c] = rangeval.New(lo, row.alts[0][c], hi)
		}
		m := Mult{1, 1, 1}
		if row.optional {
			m.Lo = 0
		}
		out.Add(Tuple{Vals: vals, M: m})
	}
	return out
}

// worlds enumerates every possible world (SGW first).
func (r *incompleteRel) worlds() []*bag.Relation {
	combos := [][]types.Tuple{{}}
	for _, row := range r.rows {
		var next [][]types.Tuple
		choices := append([]types.Tuple{}, row.alts...)
		for _, w := range combos {
			for _, c := range choices {
				next = append(next, append(append([]types.Tuple{}, w...), c))
			}
			if row.optional {
				next = append(next, append([]types.Tuple{}, w...)) // absent
			}
		}
		combos = next
	}
	out := make([]*bag.Relation, 0, len(combos))
	for _, c := range combos {
		w := bag.New(r.schema)
		for _, t := range c {
			w.Add(t, 1)
		}
		out = append(out, w.Merge())
	}
	return out
}

// genIncomplete builds a random incomplete relation with small integer
// domains so that range overlaps and group collisions are frequent.
func genIncomplete(r *rand.Rand, s schema.Schema, nrows int) *incompleteRel {
	rel := &incompleteRel{schema: s}
	for i := 0; i < nrows; i++ {
		row := incompleteRow{optional: r.Intn(5) == 0}
		nalts := 1 + r.Intn(3)
		for a := 0; a < nalts; a++ {
			t := make(types.Tuple, s.Arity())
			for c := range t {
				t[c] = types.Int(int64(r.Intn(6)))
			}
			row.alts = append(row.alts, t)
		}
		rel.rows = append(rel.rows, row)
	}
	return rel
}

// plans to exercise; each uses tables r (a, b) and s (c, d).
func propertyPlans() map[string]ra.Node {
	scanR := func() ra.Node { return &ra.Scan{Table: "r"} }
	scanS := func() ra.Node { return &ra.Scan{Table: "s"} }
	return map[string]ra.Node{
		"select": &ra.Select{
			Child: scanR(),
			Pred:  expr.Lt(expr.Col(0, "a"), expr.CInt(3)),
		},
		"select-and": &ra.Select{
			Child: scanR(),
			Pred: expr.And(
				expr.Geq(expr.Col(0, "a"), expr.CInt(1)),
				expr.Neq(expr.Col(1, "b"), expr.CInt(4))),
		},
		"project-arith": &ra.Project{
			Child: scanR(),
			Cols: []ra.ProjCol{
				{E: expr.Add(expr.Col(0, "a"), expr.Col(1, "b")), Name: "ab"},
				{E: expr.Mul(expr.Col(0, "a"), expr.CInt(2)), Name: "a2"},
			},
		},
		"join-eq": &ra.Join{
			Left:  scanR(),
			Right: scanS(),
			Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
		},
		"join-theta": &ra.Join{
			Left:  scanR(),
			Right: scanS(),
			Cond:  expr.Lt(expr.Col(1, "b"), expr.Col(3, "d")),
		},
		"union": &ra.Union{Left: scanR(), Right: scanR()},
		"diff": &ra.Diff{
			Left:  scanR(),
			Right: &ra.Project{Child: scanS(), Cols: []ra.ProjCol{{E: expr.Col(0, "c"), Name: "a"}, {E: expr.Col(1, "d"), Name: "b"}}},
		},
		"distinct": &ra.Distinct{Child: &ra.Project{Child: scanR(), Cols: []ra.ProjCol{{E: expr.Col(1, "b"), Name: "b"}}}},
		"agg-global": &ra.Agg{
			Child: scanR(),
			Aggs: []ra.AggSpec{
				{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
				{Fn: ra.AggCount, Name: "c"},
				{Fn: ra.AggMin, Arg: expr.Col(0, "a"), Name: "mn"},
				{Fn: ra.AggMax, Arg: expr.Col(0, "a"), Name: "mx"},
			},
		},
		"agg-group": &ra.Agg{
			Child:   scanR(),
			GroupBy: []int{1},
			Aggs: []ra.AggSpec{
				{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
				{Fn: ra.AggCount, Name: "c"},
				{Fn: ra.AggMin, Arg: expr.Col(0, "a"), Name: "mn"},
			},
		},
		"agg-avg": &ra.Agg{
			Child:   scanR(),
			GroupBy: []int{1},
			Aggs:    []ra.AggSpec{{Fn: ra.AggAvg, Arg: expr.Col(0, "a"), Name: "av"}},
		},
		"join-agg": &ra.Agg{
			Child: &ra.Join{
				Left:  scanR(),
				Right: scanS(),
				Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
			},
			GroupBy: []int{1},
			Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(3, "d"), Name: "sd"}},
		},
		"having": &ra.Select{
			Child: &ra.Agg{
				Child:   scanR(),
				GroupBy: []int{1},
				Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"}},
			},
			Pred: expr.Gt(expr.Col(1, "s"), expr.CInt(2)),
		},
		"agg-of-agg": &ra.Agg{
			Child: &ra.Agg{
				Child:   scanR(),
				GroupBy: []int{1},
				Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"}},
			},
			Aggs: []ra.AggSpec{{Fn: ra.AggMax, Arg: expr.Col(1, "s"), Name: "m"}},
		},
	}
}

// checkPlan verifies Corollary 2 for one plan over one random database:
// the AU result bounds the query result in EVERY possible world, and its
// SGW equals the query result over the input's SGW.
func checkPlan(t *testing.T, name string, plan ra.Node, rRel, sRel *incompleteRel, opt Options, seed int64) {
	t.Helper()
	audb := DB{"r": rRel.auRelation(), "s": sRel.auRelation()}
	res, err := Exec(context.Background(), plan, audb, opt)
	if err != nil {
		t.Fatalf("[%s seed=%d] AU exec: %v", name, seed, err)
	}
	// SGW preservation: queries commute with SGW extraction.
	sgw, err := bag.Exec(context.Background(), plan, audb.SGW())
	if err != nil {
		t.Fatalf("[%s seed=%d] SGW exec: %v", name, seed, err)
	}
	if !res.SGW().Equal(sgw) {
		t.Fatalf("[%s seed=%d opt=%+v] SGW mismatch:\nAU result SGW:\n%s\nquery over SGW:\n%s\nAU result:\n%s",
			name, seed, opt, res.SGW(), sgw, res)
	}
	// Bound preservation across all worlds.
	rws, sws := rRel.worlds(), sRel.worlds()
	for ri, rw := range rws {
		for si, sw := range sws {
			det, err := bag.Exec(context.Background(), plan, bag.DB{"r": rw, "s": sw})
			if err != nil {
				t.Fatalf("[%s seed=%d] det exec: %v", name, seed, err)
			}
			if !res.BoundsWorld(det) {
				t.Fatalf("[%s seed=%d opt=%+v] bound violation in world (%d,%d):\nworld r:\n%s\nworld s:\n%s\ndet result:\n%s\nAU result:\n%s",
					name, seed, opt, ri, si, rw, sw, det, res)
			}
		}
	}
}

// TestCorollary2BoundPreservation is the paper's central claim: RA_agg
// evaluation over AU-DBs preserves bounds, under the exact semantics and
// under every optimization mode.
func TestCorollary2BoundPreservation(t *testing.T) {
	plans := propertyPlans()
	modes := []Options{
		{},
		{NaiveJoin: true},
		{JoinCompression: 2, AggCompression: 2},
		{JoinCompression: 3, AggCompression: 5},
	}
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for name, plan := range plans {
		for trial := 0; trial < trials; trial++ {
			seed := int64(1000*trial) + int64(len(name))
			rng := rand.New(rand.NewSource(seed))
			rRel := genIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(3))
			sRel := genIncomplete(rng, schema.New("c", "d"), 1+rng.Intn(2))
			for _, opt := range modes {
				checkPlan(t, name, plan, rRel, sRel, opt, seed)
			}
		}
	}
}

// TestTightnessSanity spot-checks that exact evaluation produces bounds at
// least as tight as compressed evaluation (Lemmas 10.1/10.2 direction).
func TestTightnessSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rRel := genIncomplete(rng, schema.New("a", "b"), 4)
	sRel := genIncomplete(rng, schema.New("c", "d"), 3)
	audb := DB{"r": rRel.auRelation(), "s": sRel.auRelation()}
	plan := &ra.Agg{
		Child:   &ra.Scan{Table: "r"},
		GroupBy: []int{1},
		Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"}},
	}
	exact, err := Exec(context.Background(), plan, audb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Exec(context.Background(), plan, audb, Options{AggCompression: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = sRel
	// Compare aggregate ranges per SG group.
	looseByKey := map[string]rangeval.V{}
	for _, tup := range loose.Tuples {
		looseByKey[tup.Vals[0].SG.String()] = tup.Vals[1]
	}
	for _, tup := range exact.Tuples {
		lv, ok := looseByKey[tup.Vals[0].SG.String()]
		if !ok {
			t.Fatalf("group %v missing from compressed result", tup.Vals[0])
		}
		ev := tup.Vals[1]
		if types.Less(ev.Lo, lv.Lo) || types.Less(lv.Hi, ev.Hi) {
			t.Fatalf("compressed bounds tighter than exact: exact %v loose %v", ev, lv)
		}
	}
	fmt.Sprintln() // keep fmt imported for failure formatting
}
