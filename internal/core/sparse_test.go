package core

import (
	"context"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// certainRelations builds the same all-certain two-column relation in both
// representations.
func certainRelations(rows int) (dense, sparse *Relation) {
	sch := schema.New("a", "b")
	bd := NewRelationBuilder(sch, rows)
	bs := NewRelationBuilder(sch, rows)
	for i := 0; i < rows; i++ {
		t := Tuple{
			Vals: rangeval.Tuple{
				rangeval.Certain(types.Int(int64(i % 16))),
				rangeval.Certain(types.Int(int64(i))),
			},
			M: Mult{Lo: 1, SG: 1, Hi: 1},
		}
		bd.Add(t)
		bs.Add(t)
	}
	dense = bd.Finish(StoragePolicy{Mode: ReprForceDense})
	sparse = bs.Finish(StoragePolicy{Mode: ReprForceSparse})
	return dense, sparse
}

// TestBuilderRepresentations: the builder's Finish honors the policy and
// both representations agree tuple for tuple.
func TestBuilderRepresentations(t *testing.T) {
	dense, sparse := certainRelations(100)
	if dense.IsSparse() || !sparse.IsSparse() || !sparse.FastCertain() {
		t.Fatalf("representations: dense sparse=%v, sparse sparse=%v fast=%v",
			dense.IsSparse(), sparse.IsSparse(), sparse.FastCertain())
	}
	if dense.String() != sparse.String() {
		t.Fatalf("representations render differently:\n%s\nvs\n%s", dense, sparse)
	}
	back := sparse.Dense()
	if back.IsSparse() || back.Len() != dense.Len() {
		t.Fatal("Dense() did not round-trip")
	}
	for i, want := range dense.Tuples {
		got := back.Tuples[i]
		if want.M != got.M || len(want.Vals) != len(got.Vals) {
			t.Fatalf("row %d diverged: %v vs %v", i, want, got)
		}
		for c := range want.Vals {
			if types.Compare(want.Vals[c].SG, got.Vals[c].SG) != 0 {
				t.Fatalf("row %d col %d diverged: %v vs %v", i, c, want.Vals[c], got.Vals[c])
			}
		}
	}
}

// TestCertainSelectAllocGate is the benchmem CI gate for the certain-only
// selection loop: on identical all-certain data, the sparse fast path must
// allocate no more than the generic dense kernel per operation. The fast
// path materializes output tuples out of a single arena, so it should in
// fact allocate strictly less; the gate only pins "no worse" to stay
// robust across runtime versions.
func TestCertainSelectAllocGate(t *testing.T) {
	dense, sparse := certainRelations(4096)
	pred := expr.Lt(expr.Col(0, "a"), expr.CInt(8))
	ctx := context.Background()
	opt := Options{Workers: 1}

	run := func(in *Relation) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := ApplySelect(ctx, in, pred, opt); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Sanity: both paths agree before measuring.
	want, err := ApplySelect(ctx, dense, pred, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplySelect(ctx, sparse, pred, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("select results diverged:\n%s\nvs\n%s", want, got)
	}
	if !sparse.FastCertain() || !expr.CertainFastSafe(pred) {
		t.Fatal("fast-path preconditions not met; the gate would measure the wrong loop")
	}

	denseAllocs := run(dense)
	sparseAllocs := run(sparse)
	t.Logf("allocs/op: dense=%.0f sparse=%.0f", denseAllocs, sparseAllocs)
	if sparseAllocs > denseAllocs {
		t.Fatalf("certain-only select allocates more than the dense kernel: sparse=%.0f dense=%.0f",
			sparseAllocs, denseAllocs)
	}
}
