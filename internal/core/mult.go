// Package core implements the paper's primary contribution: AU-DBs
// (attribute-annotated uncertain databases, Section 6) and their RA_agg
// query semantics (Sections 7-9), specialized to bag semantics (N^AU).
//
// A core.Relation annotates one selected-guess world: every attribute value
// is a range [lb/sg/ub] and every tuple carries a multiplicity triple
// (lb, sg, ub) bounding the tuple's certain multiplicity from below, giving
// its multiplicity in the selected-guess world, and bounding its possible
// multiplicity from above. Query evaluation preserves these bounds
// (Theorems 3, 4, 6 and Corollary 2).
package core

import "fmt"

// Mult is an element of N^AU (Definition 11 for K = N): a triple
// (Lo, SG, Hi) with 0 <= Lo <= SG <= Hi in the natural order of N.
type Mult struct {
	Lo, SG, Hi int64
}

// One is the multiplicative identity (1,1,1).
var One = Mult{1, 1, 1}

// Zero is the additive identity (0,0,0).
var Zero = Mult{0, 0, 0}

// Valid reports 0 <= Lo <= SG <= Hi.
func (m Mult) Valid() bool { return 0 <= m.Lo && m.Lo <= m.SG && m.SG <= m.Hi }

// IsZero reports whether m is the zero annotation.
func (m Mult) IsZero() bool { return m == Zero }

// Add is pointwise semiring addition in N^AU.
func (m Mult) Add(o Mult) Mult {
	return Mult{m.Lo + o.Lo, m.SG + o.SG, m.Hi + o.Hi}
}

// Mul is pointwise semiring multiplication in N^AU.
func (m Mult) Mul(o Mult) Mult {
	return Mult{m.Lo * o.Lo, m.SG * o.SG, m.Hi * o.Hi}
}

// MonusBounds is the bound-preserving difference of Section 8.2: the lower
// bound subtracts the other side's upper bound and vice versa. (Pointwise
// monus does not preserve bounds.)
func (m Mult) MonusBounds(o Mult) Mult {
	return Mult{monus(m.Lo, o.Hi), monus(m.SG, o.SG), monus(m.Hi, o.Lo)}
}

func monus(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return 0
}

// Delta applies δ_N pointwise: δ(k) = 1 if k != 0 else 0.
func (m Mult) Delta() Mult {
	return Mult{delta(m.Lo), delta(m.SG), delta(m.Hi)}
}

func delta(k int64) int64 {
	if k != 0 {
		return 1
	}
	return 0
}

// Bounds reports whether the deterministic multiplicity k is sandwiched:
// Lo <= k <= Hi.
func (m Mult) Bounds(k int64) bool { return m.Lo <= k && k <= m.Hi }

// String renders the annotation as (lo,sg,hi).
func (m Mult) String() string { return fmt.Sprintf("(%d,%d,%d)", m.Lo, m.SG, m.Hi) }
