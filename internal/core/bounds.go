package core

import (
	"github.com/audb/audb/internal/bag"
)

// BoundsWorld reports whether the AU-relation bounds the deterministic bag
// relation w (Definition 16): there must exist a tuple matching TM — a
// distribution of each world tuple's multiplicity over the AU tuples whose
// attribute ranges cover it — such that every AU tuple receives a total
// between its lower and upper annotation.
//
// Deciding the existence of such a matching is a feasible-flow problem with
// edge lower bounds, solved here by the standard reduction to max-flow
// (small instances only: this is a verification tool for tests and
// accuracy metrics, not part of query processing).
func (r *Relation) BoundsWorld(w *bag.Relation) bool {
	wm := w.Clone().Merge()
	rm := r.Clone().Merge()
	nw, na := len(wm.Tuples), len(rm.Tuples)

	// Node layout: 0 = super-source, 1 = super-sink, 2 = s, 3 = t,
	// 4..4+nw-1 world tuples, 4+nw..4+nw+na-1 AU tuples.
	const (
		superSrc = 0
		superSnk = 1
		src      = 2
		snk      = 3
	)
	base := 4
	g := newFlowGraph(base + nw + na)
	const inf = int64(1) << 40

	// addBounded inserts an edge with lower bound l and capacity u using
	// the lower-bound reduction: capacity u-l plus super-source/sink
	// demand edges.
	need := int64(0)
	addBounded := func(u, v int, lo, hi int64) {
		if hi > lo {
			g.addEdge(u, v, hi-lo)
		}
		if lo > 0 {
			g.addEdge(superSrc, v, lo)
			g.addEdge(u, superSnk, lo)
			need += lo
		}
	}

	// s -> world tuple: exactly the world multiplicity.
	for i := range wm.Tuples {
		addBounded(src, base+i, wm.Counts[i], wm.Counts[i])
	}
	// world tuple -> AU tuple when the ranges cover the world tuple.
	for i, wt := range wm.Tuples {
		for j, at := range rm.Tuples {
			if at.Vals.Bounds(wt) {
				g.addEdge(base+i, base+nw+j, inf)
			}
		}
	}
	// AU tuple -> t within [lo, hi].
	for j, at := range rm.Tuples {
		addBounded(base+nw+j, snk, at.M.Lo, at.M.Hi)
	}
	// Close the circulation.
	g.addEdge(snk, src, inf)

	return g.maxflow(superSrc, superSnk) == need
}

// BoundsWorlds reports whether r bounds the incomplete database given by
// worlds (Definition 17): every world is bounded and the selected-guess
// world of r is one of the worlds.
func (r *Relation) BoundsWorlds(worlds []*bag.Relation) bool {
	sgw := r.SGW()
	sgFound := false
	for _, w := range worlds {
		if !r.BoundsWorld(w) {
			return false
		}
		if sgw.Equal(w) {
			sgFound = true
		}
	}
	return sgFound
}

// flowGraph is a minimal Edmonds-Karp max-flow implementation.
type flowGraph struct {
	n     int
	head  []int
	to    []int
	next  []int
	cap   []int64
	queue []int
	prevE []int
}

func newFlowGraph(n int) *flowGraph {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &flowGraph{n: n, head: h}
}

func (g *flowGraph) addEdge(u, v int, c int64) {
	g.to = append(g.to, v)
	g.cap = append(g.cap, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = len(g.to) - 1
	// reverse edge
	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.next = append(g.next, g.head[v])
	g.head[v] = len(g.to) - 1
}

func (g *flowGraph) maxflow(s, t int) int64 {
	var total int64
	for {
		// BFS for an augmenting path.
		g.prevE = make([]int, g.n)
		for i := range g.prevE {
			g.prevE[i] = -1
		}
		g.queue = g.queue[:0]
		g.queue = append(g.queue, s)
		g.prevE[s] = -2
		found := false
	bfs:
		for qi := 0; qi < len(g.queue); qi++ {
			u := g.queue[qi]
			for e := g.head[u]; e != -1; e = g.next[e] {
				v := g.to[e]
				if g.cap[e] > 0 && g.prevE[v] == -1 {
					g.prevE[v] = e
					if v == t {
						found = true
						break bfs
					}
					g.queue = append(g.queue, v)
				}
			}
		}
		if !found {
			return total
		}
		// Find bottleneck.
		aug := int64(1) << 62
		for v := t; v != s; {
			e := g.prevE[v]
			if g.cap[e] < aug {
				aug = g.cap[e]
			}
			v = g.to[e^1]
		}
		for v := t; v != s; {
			e := g.prevE[v]
			g.cap[e] -= aug
			g.cap[e^1] += aug
			v = g.to[e^1]
		}
		total += aug
	}
}
