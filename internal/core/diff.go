package core

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/ctxpoll"
)

// DiffRelations implements bag set difference over N^AU-relations
// (Definition 22). The left input is first SG-combined (Ψ, Definition 21)
// so that each selected-guess tuple is encoded once. For each combined
// tuple t:
//
//	lo(t) = Ψ(L)(t).lo  monus  Σ_{t ≃ t'} R(t').hi     (any possibly-equal
//	                                                    right tuple may
//	                                                    cancel it)
//	sg(t) = Ψ(L)(t).sg  monus  Σ_{t.sg = t'.sg} R(t').sg
//	hi(t) = Ψ(L)(t).hi  monus  Σ_{t ≡ t'} R(t').lo     (only certainly-equal
//	                                                    right tuples are
//	                                                    guaranteed to cancel)
//
// Theorem 4: this semantics preserves bounds; the pointwise monus does not.
func DiffRelations(ctx context.Context, l, r *Relation) (*Relation, error) {
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("core: difference arity mismatch %s vs %s", l.Schema, r.Schema)
	}
	return diffRelations(ctx, l.Dense(), r.Dense())
}

func diffRelations(ctx context.Context, l, r *Relation) (*Relation, error) {
	comb := l.SGCombine()
	out := New(l.Schema)
	p := ctxpoll.New(ctx)

	// Pre-aggregate the right side by SG key for the SG component.
	rSG := map[string]int64{}
	for _, rt := range r.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		rSG[rt.Vals.SGKey()] += rt.M.SG
	}

	for _, lt := range comb.Tuples {
		var overlapHi, certLo int64
		for _, rt := range r.Tuples {
			if err := p.Due(); err != nil {
				return nil, err
			}
			if lt.Vals.Overlaps(rt.Vals) { // t ≃ t'
				overlapHi += rt.M.Hi
			}
			if lt.Vals.CertainlyEqual(rt.Vals) { // t ≡ t'
				certLo += rt.M.Lo
			}
		}
		m := Mult{
			Lo: monus(lt.M.Lo, overlapHi),
			SG: monus(lt.M.SG, rSG[lt.Vals.SGKey()]),
			Hi: monus(lt.M.Hi, certLo),
		}
		// monus with different subtrahends can break the triple ordering
		// only towards tighter-than-valid; clamp upward conservatively.
		if m.SG > m.Hi {
			m.SG = m.Hi
		}
		if m.Lo > m.SG {
			m.Lo = m.SG
		}
		if m.Hi > 0 {
			out.Add(Tuple{Vals: lt.Vals, M: m})
		}
	}
	return out, nil
}
