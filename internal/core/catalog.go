package core

import (
	"sync"

	"github.com/audb/audb/internal/schema"
)

// Catalog is a concurrency-safe collection of named AU-relations: the
// mutable registry behind a Database. Registration and lookup may race
// freely with query execution because executors never see the live map —
// they run over an immutable Snapshot taken when the query starts.
// Enumeration (Tables, and every diagnostic built on it) is always in
// sorted name order, never Go map order.
//
// The catalog guards the name → relation mapping only; the relations
// themselves are shared. Mutating a registered relation (e.g. adding rows
// to its table) while queries are in flight is the caller's race to avoid.
type Catalog struct {
	mu   sync.RWMutex
	rels DB
	obs  CatalogObserver
}

// CatalogObserver is notified of catalog mutations — the hook the
// statistics registry (internal/stats) uses to keep per-table statistics
// in sync with registration. Notifications are delivered under the
// catalog's lock, in mutation order, so an observer always sees the same
// sequence of events the catalog applied; implementations must therefore
// be fast and must not call back into the catalog.
type CatalogObserver interface {
	// Registered reports that r is now registered under name (a
	// replacement delivers Registered for the new relation only).
	Registered(name string, r *Relation)
	// Dropped reports that the table is gone (also delivered when a
	// case-variant registration displaces an existing entry).
	Dropped(name string)
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{rels: DB{}} }

// SetObserver installs the mutation observer (nil uninstalls). Install it
// before registering tables; events are not replayed.
func (c *Catalog) SetObserver(o CatalogObserver) {
	c.mu.Lock()
	c.obs = o
	c.mu.Unlock()
}

// Register adds or replaces a relation under the given name. Names are
// case-insensitive to match the planner (which resolves them against a
// lowercased schema catalog): registering a case-variant of an existing
// name replaces it, so the catalog never holds two tables a query could
// not tell apart.
func (c *Catalog) Register(name string, r *Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k, ok := schema.ResolveFold(c.rels, name); ok && k != name {
		delete(c.rels, k)
		if c.obs != nil {
			c.obs.Dropped(k)
		}
	}
	c.rels[name] = r
	if c.obs != nil {
		c.obs.Registered(name, r)
	}
}

// Drop removes a relation, resolving the name the way queries do
// (exact, then case-insensitive); it is a no-op for unknown names.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k, ok := schema.ResolveFold(c.rels, name); ok {
		delete(c.rels, k)
		if c.obs != nil {
			c.obs.Dropped(k)
		}
	}
}

// Lookup returns the relation registered under name, resolving it the
// way queries do (exact, then case-insensitive).
func (c *Catalog) Lookup(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return schema.LookupFold(c.rels, name)
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// Tables lists the registered names in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels.Names()
}

// Snapshot returns an immutable point-in-time view of the catalog for one
// query execution. The map is copied (so later Register/Drop calls cannot
// race with the executor); the relations are shared.
func (c *Catalog) Snapshot() DB {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(DB, len(c.rels))
	for n, r := range c.rels {
		out[n] = r
	}
	return out
}

// Schemas returns a catalog view for planning, keyed by lowercased name.
func (c *Catalog) Schemas() map[string]schema.Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels.Schemas()
}

// Names returns the table names of a raw AU-database in sorted order, for
// deterministic diagnostics.
func (db DB) Names() []string { return schema.SortedNames(db) }

// LookupFold resolves a table name the way the planner does (exact, then
// case-insensitive), keeping execution consistent with compilation.
func (db DB) LookupFold(name string) (*Relation, bool) {
	return schema.LookupFold(db, name)
}
