package core

import (
	"sync"

	"github.com/audb/audb/internal/schema"
)

// Catalog is a concurrency-safe collection of named AU-relations: the
// mutable registry behind a Database. Registration and lookup may race
// freely with query execution because executors never see the live map —
// they run over an immutable Snapshot taken when the query starts.
// Enumeration (Tables, and every diagnostic built on it) is always in
// sorted name order, never Go map order.
//
// The catalog guards the name → relation mapping only; the relations
// themselves are shared. Mutating a registered relation (e.g. adding rows
// to its table) while queries are in flight is the caller's race to avoid.
type Catalog struct {
	mu   sync.RWMutex
	rels DB
	obs  CatalogObserver
	pol  StoragePolicy
	// seen tracks relations this catalog has already compacted, so
	// re-registering a relation that queries may be reading never
	// mutates its representation again (Compact runs once, before the
	// relation's first publication, under the same lock readers take
	// snapshots under).
	seen map[*Relation]struct{}
}

// CatalogObserver is notified of catalog mutations — the hook the
// statistics registry (internal/stats) uses to keep per-table statistics
// in sync with registration. Notifications are delivered under the
// catalog's lock, in mutation order, so an observer always sees the same
// sequence of events the catalog applied; implementations must therefore
// be fast and must not call back into the catalog.
type CatalogObserver interface {
	// Registered reports that r is now registered under name (a
	// replacement delivers Registered for the new relation only).
	Registered(name string, r *Relation)
	// Dropped reports that the table is gone (also delivered when a
	// case-variant registration displaces an existing entry).
	Dropped(name string)
}

// NewCatalog creates an empty catalog with the default storage policy.
func NewCatalog() *Catalog {
	return &Catalog{rels: DB{}, seen: map[*Relation]struct{}{}}
}

// SetStoragePolicy installs the representation policy applied to future
// registrations. Already registered relations keep their representation
// until re-registered or re-analyzed.
func (c *Catalog) SetStoragePolicy(p StoragePolicy) {
	c.mu.Lock()
	c.pol = p
	c.mu.Unlock()
}

// StoragePolicy returns the current representation policy.
func (c *Catalog) StoragePolicy() StoragePolicy {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pol
}

// SetObserver installs the mutation observer (nil uninstalls). Install it
// before registering tables; events are not replayed.
func (c *Catalog) SetObserver(o CatalogObserver) {
	c.mu.Lock()
	c.obs = o
	c.mu.Unlock()
}

// Register adds or replaces a relation under the given name. Names are
// case-insensitive to match the planner (which resolves them against a
// lowercased schema catalog): registering a case-variant of an existing
// name replaces it, so the catalog never holds two tables a query could
// not tell apart.
//
// The first time a relation is registered, the catalog compacts it per
// the storage policy (see Compact). This happens under the catalog lock
// before the relation becomes visible, so queries — which snapshot under
// the same lock — only ever see a settled representation; re-registering
// the same relation never re-compacts it.
func (c *Catalog) Register(name string, r *Relation) {
	c.registerWith(name, r, true)
}

// RegisterPrebuilt registers a relation whose representation was already
// chosen (e.g. by RelationBuilder.Finish or a replacement built for a
// flip), skipping compaction.
func (c *Catalog) RegisterPrebuilt(name string, r *Relation) {
	c.registerWith(name, r, false)
}

// registerWith is the insertion step shared by the Register variants.
func (c *Catalog) registerWith(name string, r *Relation, compact bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, done := c.seen[r]; !done {
		if compact {
			r.Compact(c.pol)
		}
		c.seen[r] = struct{}{}
	}
	if k, ok := schema.ResolveFold(c.rels, name); ok && k != name {
		delete(c.rels, k)
		if c.obs != nil {
			c.obs.Dropped(k)
		}
	}
	c.rels[name] = r
	if c.obs != nil {
		c.obs.Registered(name, r)
	}
}

// ReplaceIf atomically replaces the relation registered under name with
// repl, but only when the current entry is still old — the compare-and-
// swap a representation flip needs so it cannot resurrect a table that a
// concurrent Register or Drop changed meanwhile. It reports whether the
// swap happened.
func (c *Catalog) ReplaceIf(name string, old, repl *Relation) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k, ok := schema.ResolveFold(c.rels, name)
	if !ok || c.rels[k] != old {
		return false
	}
	c.seen[repl] = struct{}{}
	c.rels[k] = repl
	if c.obs != nil {
		c.obs.Registered(k, repl)
	}
	return true
}

// Drop removes a relation, resolving the name the way queries do
// (exact, then case-insensitive); it is a no-op for unknown names.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k, ok := schema.ResolveFold(c.rels, name); ok {
		r := c.rels[k]
		delete(c.rels, k)
		if c.obs != nil {
			c.obs.Dropped(k)
		}
		// Forget the compaction marker unless the relation is still
		// registered under another name, so seen stays bounded by the
		// live table count.
		for _, other := range c.rels {
			if other == r {
				return
			}
		}
		delete(c.seen, r)
	}
}

// Lookup returns the relation registered under name, resolving it the
// way queries do (exact, then case-insensitive).
func (c *Catalog) Lookup(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return schema.LookupFold(c.rels, name)
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// Tables lists the registered names in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels.Names()
}

// Snapshot returns an immutable point-in-time view of the catalog for one
// query execution. The map is copied (so later Register/Drop calls cannot
// race with the executor); the relations are shared.
func (c *Catalog) Snapshot() DB {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(DB, len(c.rels))
	for n, r := range c.rels {
		out[n] = r
	}
	return out
}

// Schemas returns a catalog view for planning, keyed by lowercased name.
func (c *Catalog) Schemas() map[string]schema.Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels.Schemas()
}

// Names returns the table names of a raw AU-database in sorted order, for
// deterministic diagnostics.
func (db DB) Names() []string { return schema.SortedNames(db) }

// LookupFold resolves a table name the way the planner does (exact, then
// case-insensitive), keeping execution consistent with compilation.
func (db DB) LookupFold(name string) (*Relation, bool) {
	return schema.LookupFold(db, name)
}
