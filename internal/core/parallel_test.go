package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
)

// TestParallelMatchesSerial asserts the central contract of the parallel
// executor: for every plan, database, worker count and join strategy, the
// result — tuple order, attribute bounds and annotations — is identical to
// the Workers: 1 reference evaluation. Runs under -race in CI, which also
// exercises the chunked paths for data races.
func TestParallelMatchesSerial(t *testing.T) {
	plans := propertyPlans()
	bases := []Options{
		{},
		{NaiveJoin: true},
		{JoinCompression: 2, AggCompression: 3},
	}
	trials := 8
	if testing.Short() {
		trials = 3
	}
	// Tiny thresholds would defeat the test: real inputs here are far below
	// minParTuples, so force chunking by lowering worker granularity via
	// larger synthetic inputs below AND by checking small inputs still work.
	for name, plan := range plans {
		for trial := 0; trial < trials; trial++ {
			seed := int64(100*trial) + int64(len(name))
			rng := rand.New(rand.NewSource(seed))
			rRel := genIncomplete(rng, schema.New("a", "b"), 2+rng.Intn(30))
			sRel := genIncomplete(rng, schema.New("c", "d"), 1+rng.Intn(20))
			db := DB{"r": rRel.auRelation(), "s": sRel.auRelation()}
			for _, base := range bases {
				ref, err := Exec(context.Background(), plan, db, withWorkers(base, 1))
				if err != nil {
					t.Fatalf("[%s seed=%d opt=%+v] serial exec: %v", name, seed, base, err)
				}
				for _, w := range []int{2, 4, 8} {
					got, err := Exec(context.Background(), plan, db, withWorkers(base, w))
					if err != nil {
						t.Fatalf("[%s seed=%d opt=%+v workers=%d] parallel exec: %v", name, seed, base, w, err)
					}
					if got.String() != ref.String() {
						t.Fatalf("[%s seed=%d opt=%+v workers=%d] parallel result differs from serial:\nserial:\n%s\nparallel:\n%s",
							name, seed, base, w, ref, got)
					}
				}
			}
		}
	}
}

func withWorkers(o Options, w int) Options {
	o.Workers = w
	return o
}

// TestParallelMatchesSerialLarge pushes one equi-join + aggregation over
// inputs big enough to cross the chunking thresholds, so the goroutine
// paths (not the serial fallbacks) are what gets compared.
func TestParallelMatchesSerialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large parallel-identity check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	rRel := genIncomplete(rng, schema.New("a", "b"), 1500)
	sRel := genIncomplete(rng, schema.New("c", "d"), 60)
	db := DB{"r": rRel.auRelation(), "s": sRel.auRelation()}
	plans := map[string]ra.Node{
		"select": &ra.Select{
			Child: &ra.Scan{Table: "r"},
			Pred:  expr.Lt(expr.Col(0, "a"), expr.CInt(4)),
		},
		"join": &ra.Join{
			Left:  &ra.Scan{Table: "r"},
			Right: &ra.Scan{Table: "s"},
			Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
		},
		"agg": &ra.Agg{
			Child:   &ra.Scan{Table: "r"},
			GroupBy: []int{1},
			Aggs: []ra.AggSpec{
				{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
				{Fn: ra.AggCount, Name: "c"},
			},
		},
	}
	for name, plan := range plans {
		for _, base := range []Options{{}, {JoinCompression: 8, AggCompression: 8}} {
			ref, err := Exec(context.Background(), plan, db, withWorkers(base, 1))
			if err != nil {
				t.Fatalf("[%s] serial exec: %v", name, err)
			}
			for _, w := range []int{2, 4, 8} {
				got, err := Exec(context.Background(), plan, db, withWorkers(base, w))
				if err != nil {
					t.Fatalf("[%s workers=%d] parallel exec: %v", name, w, err)
				}
				if got.String() != ref.String() {
					t.Fatalf("[%s workers=%d opt=%+v] parallel result differs from serial", name, w, base)
				}
			}
		}
	}
}

// TestExecDefensiveErrors covers the error paths that used to panic or
// surface without context: nil plans, typed-nil children, unknown tables
// reached through nested operators.
func TestExecDefensiveErrors(t *testing.T) {
	db := DB{"r": New(schema.New("a", "b"))}
	cases := []struct {
		name string
		plan ra.Node
		want string
	}{
		{"nil-plan", nil, "nil plan"},
		{"typed-nil-plan", (*ra.Scan)(nil), "nil plan"},
		{"nil-select-child", &ra.Select{Child: nil, Pred: expr.CBool(true)}, "nil plan node"},
		{"typed-nil-join-child", &ra.Join{Left: (*ra.Join)(nil), Right: &ra.Scan{Table: "r"}}, "nil plan node"},
		{"unknown-table", &ra.Scan{Table: "missing"}, `unknown table "missing"`},
		{
			"unknown-table-under-join",
			&ra.Join{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "missing"}},
			"join right input",
		},
		{
			"unknown-table-under-agg",
			&ra.Agg{Child: &ra.Scan{Table: "missing"},
				Aggs: []ra.AggSpec{{Fn: ra.AggCount, Name: "c"}}},
			"aggregation input",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Exec(context.Background(), tc.plan, db, Options{})
			if err == nil {
				t.Fatalf("expected error, got result:\n%s", res)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestChunkSpans pins down the partitioning invariants every parallel path
// relies on: spans cover [0, n) contiguously, respect the minimum chunk
// size, and never exceed the worker count.
func TestChunkSpans(t *testing.T) {
	for _, tc := range []struct{ n, w, min, maxChunks int }{
		{0, 4, 1, 0},
		{1, 4, 1, 1},
		{10, 4, 1, 4},
		{10, 4, 100, 1},
		{1000, 4, 100, 4},
		{1000, 1, 1, 1},
		{7, 16, 1, 7},
	} {
		spans := ChunkSpans(tc.n, tc.w, tc.min)
		if len(spans) > tc.maxChunks {
			t.Errorf("ChunkSpans(%d,%d,%d): %d chunks, want <= %d", tc.n, tc.w, tc.min, len(spans), tc.maxChunks)
		}
		next := 0
		for _, s := range spans {
			if s.Lo != next || s.Hi < s.Lo {
				t.Fatalf("ChunkSpans(%d,%d,%d): bad span %+v at offset %d", tc.n, tc.w, tc.min, s, next)
			}
			next = s.Hi
		}
		if next != tc.n {
			t.Errorf("ChunkSpans(%d,%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.w, tc.min, next, tc.n)
		}
	}
}
