package core

import (
	"context"
	"sort"

	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

// Split implements the split operator of Section 10.4. It decomposes R into
//
//   - split_sg(R): the selected-guess content with all attribute-level
//     uncertainty removed. Each tuple keeps only its SG values; its SG and
//     upper annotations become the SG multiplicity, and its lower
//     annotation survives only if the tuple was attribute-certain.
//   - split↑(R): the over-approximation of possible content. Tuples keep
//     their ranges; annotations become (0, 0, hi).
//
// Lemma 6: split_sg(R) ∪ split↑(R) bounds whatever R bounds, and encodes
// the same selected-guess world.
func Split(r *Relation) (sg, up *Relation) {
	// The background context is never cancelled, so splitN cannot fail.
	sg, up, _ = splitN(context.Background(), r, 1)
	return sg, up
}

// splitN is Split with chunked parallel evaluation: workers build partial
// split_sg relations over contiguous tuple ranges which are merged in chunk
// order, reproducing the serial first-seen tuple order and (commutative)
// annotation sums exactly.
func splitN(ctx context.Context, r *Relation, workers int) (sg, up *Relation, err error) {
	spans := ChunkSpans(len(r.Tuples), workers, minParTuples)
	parts := make([]*Relation, len(spans))
	upBufs := make([][]Tuple, len(spans))
	if err := runSpans(ctx, spans, func(c int, s Span, p *ctxpoll.Poll) error {
		var err error
		parts[c], err = splitSGRange(r, s.Lo, s.Hi, p)
		if err != nil {
			return err
		}
		buf := make([]Tuple, 0, s.Hi-s.Lo)
		for _, t := range r.Tuples[s.Lo:s.Hi] {
			if err := p.Due(); err != nil {
				return err
			}
			if t.M.Hi > 0 {
				buf = append(buf, Tuple{Vals: t.Vals, M: Mult{0, 0, t.M.Hi}})
			}
		}
		upBufs[c] = buf
		return nil
	}); err != nil {
		return nil, nil, err
	}

	sg = New(r.Schema)
	merge := ctxpoll.New(ctx)
	if len(parts) > 0 {
		sg = parts[0]
		idx := make(map[string]int, len(sg.Tuples))
		for j, t := range sg.Tuples {
			if err := merge.Due(); err != nil {
				return nil, nil, err
			}
			idx[t.Vals.SGKey()] = j
		}
		for _, part := range parts[1:] {
			for _, t := range part.Tuples {
				if err := merge.Due(); err != nil {
					return nil, nil, err
				}
				k := t.Vals.SGKey()
				if j, ok := idx[k]; ok {
					sg.Tuples[j].M = sg.Tuples[j].M.Add(t.M)
					continue
				}
				idx[k] = len(sg.Tuples)
				sg.Tuples = append(sg.Tuples, t)
			}
		}
	}
	// Normalize: lower bounds may not exceed SG counts after merging.
	kept := sg.Tuples[:0]
	for _, t := range sg.Tuples {
		if err := merge.Due(); err != nil {
			return nil, nil, err
		}
		if t.M.Lo > t.M.SG {
			t.M.Lo = t.M.SG
		}
		if t.M.Hi > 0 {
			kept = append(kept, t)
		}
	}
	sg.Tuples = kept

	up = New(r.Schema)
	up.Tuples = concatTuples(upBufs)
	return sg, up, nil
}

// splitSGRange builds the split_sg contribution of tuples [lo, hi). Tuples
// that are certainly absent everywhere (SG and lower bound both zero)
// create no entry, matching the serial construction; merged entries sum
// annotations.
func splitSGRange(r *Relation, lo, hi int, p *ctxpoll.Poll) (*Relation, error) {
	sg := New(r.Schema)
	idx := map[string]int{}
	for _, t := range r.Tuples[lo:hi] {
		if err := p.Due(); err != nil {
			return nil, err
		}
		cert := make(rangeval.Tuple, len(t.Vals))
		for i, v := range t.Vals {
			cert[i] = rangeval.Certain(v.SG)
		}
		mLo := int64(0)
		if t.Vals.IsCertain() {
			mLo = t.M.Lo
		}
		k := cert.SGKey()
		if j, ok := idx[k]; ok {
			sg.Tuples[j].M = sg.Tuples[j].M.Add(Mult{mLo, t.M.SG, t.M.SG})
			continue
		}
		if t.M.SG <= 0 && mLo <= 0 {
			continue
		}
		idx[k] = len(sg.Tuples)
		sg.Tuples = append(sg.Tuples, Tuple{Vals: cert, M: Mult{mLo, t.M.SG, t.M.SG}})
	}
	return sg, nil
}

// Compress implements Cpr_{A,n} (Section 10.4): group tuples into at most n
// buckets by attribute attr (equi-depth over observed lower endpoints) and
// merge each bucket into one tuple whose attribute ranges are the bucket's
// minimum bounding box and whose annotation is (0, 0, Σ hi).
// Lemma 7: compression preserves bounds.
func Compress(r *Relation, attr, n int) *Relation {
	return CompressWithBoundaries(r, attr, boundariesOf(r, attr, n))
}

// boundariesOf computes up to n-1 equi-depth split points over the lower
// endpoints of attribute attr.
func boundariesOf(r *Relation, attr, n int) []types.Value {
	if n <= 1 || len(r.Tuples) == 0 {
		return nil
	}
	vals := make([]types.Value, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		vals = append(vals, t.Vals[attr].Lo)
	}
	sort.Slice(vals, func(i, j int) bool { return types.Less(vals[i], vals[j]) })
	var bounds []types.Value
	for i := 1; i < n; i++ {
		j := i * len(vals) / n
		if j >= len(vals) {
			break
		}
		v := vals[j]
		if len(bounds) == 0 || types.Less(bounds[len(bounds)-1], v) {
			bounds = append(bounds, v)
		}
	}
	return bounds
}

// sharedBoundaries computes equi-depth boundaries over the union of both
// inputs' attribute endpoints so that equi-join partners land in aligned
// buckets.
func sharedBoundaries(l *Relation, la int, r *Relation, ra, n int) []types.Value {
	merged := New(l.Schema)
	for _, t := range l.Tuples {
		merged.Tuples = append(merged.Tuples, Tuple{Vals: rangeval.Tuple{t.Vals[la]}, M: t.M})
	}
	for _, t := range r.Tuples {
		merged.Tuples = append(merged.Tuples, Tuple{Vals: rangeval.Tuple{t.Vals[ra]}, M: t.M})
	}
	return boundariesOf(merged, 0, n)
}

// CompressWithBoundaries buckets tuples of r by attribute attr against the
// given ascending split points (tuple assigned by its lower endpoint) and
// merges each bucket.
func CompressWithBoundaries(r *Relation, attr int, bounds []types.Value) *Relation {
	out := New(r.Schema)
	if len(r.Tuples) == 0 {
		return out
	}
	bucketOf := func(v types.Value) int {
		// First bucket whose boundary exceeds v; sort.Search over bounds.
		return sort.Search(len(bounds), func(i int) bool { return types.Less(v, bounds[i]) })
	}
	acc := map[int]*Tuple{}
	var order []int
	for _, t := range r.Tuples {
		b := bucketOf(t.Vals[attr].Lo)
		if cur, ok := acc[b]; ok {
			cur.Vals = cur.Vals.Union(t.Vals)
			cur.M.Hi += t.M.Hi
			continue
		}
		cp := t.Clone()
		cp.M = Mult{0, 0, t.M.Hi}
		acc[b] = &cp
		order = append(order, b)
	}
	sort.Ints(order)
	for _, b := range order {
		out.Add(*acc[b])
	}
	return out
}
