package baselines

import (
	"context"
	"math/rand"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// MCDBResult holds per-sampled-world query results (the "tuple bundle"
// summary of MCDB-style processing).
type MCDBResult struct {
	Samples []*bag.Relation
}

// ExecMCDB evaluates the query over n sampled worlds (the paper uses 10).
// This supports arbitrary queries but yields only sample-derived statistics
// and requires probabilities.
func ExecMCDB(ctx context.Context, n ra.Node, db worlds.XDB, samples int, seed int64) (*MCDBResult, error) {
	rng := rand.New(rand.NewSource(seed))
	out := &MCDBResult{}
	for i := 0; i < samples; i++ {
		world := db.Sample(rng)
		res, err := bag.Exec(ctx, n, world)
		if err != nil {
			return nil, err
		}
		out.Samples = append(out.Samples, res)
	}
	return out, nil
}

// PossibleTuples returns the union of tuples seen across samples (an
// under-approximation of the possible answers: unseen possible tuples are
// missed).
func (r *MCDBResult) PossibleTuples() *bag.Relation {
	if len(r.Samples) == 0 {
		return nil
	}
	out := bag.New(r.Samples[0].Schema)
	seen := map[string]bool{}
	for _, s := range r.Samples {
		m := s.Clone().Merge()
		for _, t := range m.Tuples {
			if !seen[t.Key()] {
				seen[t.Key()] = true
				out.Add(t, 1)
			}
		}
	}
	return out
}

// GuaranteedTuples returns tuples present in every sample with their
// minimum multiplicity — an approximation of certain answers that can
// both miss certain tuples and contain non-certain ones (MCDB cannot
// distinguish certain from highly likely).
func (r *MCDBResult) GuaranteedTuples() *bag.Relation {
	if len(r.Samples) == 0 {
		return nil
	}
	counts := map[string][]int64{}
	reps := map[string]types.Tuple{}
	for wi, s := range r.Samples {
		m := s.Clone().Merge()
		for i, t := range m.Tuples {
			k := t.Key()
			if _, ok := counts[k]; !ok {
				counts[k] = make([]int64, len(r.Samples))
				reps[k] = t
			}
			counts[k][wi] = m.Counts[i]
		}
	}
	out := bag.New(r.Samples[0].Schema)
	for k, cs := range counts {
		mn := cs[0]
		for _, c := range cs[1:] {
			if c < mn {
				mn = c
			}
		}
		if mn > 0 {
			out.Add(reps[k], mn)
		}
	}
	return out
}

// GroupBounds summarizes, for results whose first g columns identify a
// group, the min/max observed aggregate value per group across samples —
// the sample-derived interval MCDB reports for aggregation queries.
func (r *MCDBResult) GroupBounds(groupCols int, valueCol int) map[string][2]types.Value {
	out := map[string][2]types.Value{}
	gc := make([]int, groupCols)
	for i := range gc {
		gc[i] = i
	}
	for _, s := range r.Samples {
		for _, t := range s.Tuples {
			k := t.KeyOn(gc)
			v := t[valueCol]
			if cur, ok := out[k]; ok {
				out[k] = [2]types.Value{types.Min(cur[0], v), types.Max(cur[1], v)}
			} else {
				out[k] = [2]types.Value{v, v}
			}
		}
	}
	return out
}
