package baselines

import (
	"fmt"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// Symb reimplements the symbolic aggregation strategy (aggregate
// semimodule expressions à la Amsterdamer et al., with bound extraction
// standing in for the paper's Z3 usage; DESIGN.md substitution 4).
// Aggregation results are kept as symbolic sums of guarded terms — one
// term per input tuple — so the representation scales with the aggregate
// INPUT, not the output. Chained aggregations nest: every step walks and
// re-wraps all terms of the previous step, which is exactly the cost
// profile that makes this approach uncompetitive for multi-aggregate
// queries (Figure 11).

// symTerm is one guarded contribution: when guard block takes alternative
// alt, the term contributes a value in [lo, hi].
type symTerm struct {
	guard   *blockRef // nil = unconditional
	alt     int
	lo, hi  types.Value
	nested  []symTerm // chained aggregation keeps sub-terms symbolically
	scaleLo types.Value
	scaleHi types.Value
}

// SymExpr is a symbolic aggregate expression for one group.
type SymExpr struct {
	Fn    ra.AggFn
	Terms []symTerm
}

// SymResult maps group keys to symbolic expressions.
type SymResult struct {
	Groups map[string]*SymExpr
	Order  []string
}

// ExecSymbChain evaluates a chain of aggregations symbolically: the first
// aggregation builds per-tuple terms; every further step re-aggregates the
// symbolic result (sum of the previous expression across groups), keeping
// all underlying terms. The final bounds are extracted by the interval
// solver.
func ExecSymbChain(db worlds.XDB, table string, valueCol, groupCol int, chain int) (lo, hi types.Value, err error) {
	rel, ok := db[table]
	if !ok {
		return types.Null(), types.Null(), fmt.Errorf("baselines: unknown table %q", table)
	}
	// Step 1: grouped symbolic sums.
	res := &SymResult{Groups: map[string]*SymExpr{}}
	for bi := range rel.Tuples {
		blk := &rel.Tuples[bi]
		certain := len(blk.Alts) == 1 && !blk.IsOptional()
		for ai, alt := range blk.Alts {
			key := alt[groupCol].String()
			g, okg := res.Groups[key]
			if !okg {
				g = &SymExpr{Fn: ra.AggSum}
				res.Groups[key] = g
				res.Order = append(res.Order, key)
			}
			term := symTerm{lo: alt[valueCol], hi: alt[valueCol], scaleLo: types.Int(1), scaleHi: types.Int(1)}
			if !certain {
				term.guard = &blockRef{rel: table, idx: bi}
				term.alt = ai
			}
			g.Terms = append(g.Terms, term)
		}
	}
	// Steps 2..chain: aggregate the previous layer's symbolic results
	// into a single symbolic expression, preserving all terms.
	cur := res
	for step := 1; step < chain; step++ {
		next := &SymResult{Groups: map[string]*SymExpr{}, Order: []string{"all"}}
		agg := &SymExpr{Fn: ra.AggSum}
		for _, k := range cur.Order {
			prev := cur.Groups[k]
			// Wrap the whole group expression as a nested term; the
			// symbolic representation grows with every chained step.
			agg.Terms = append(agg.Terms, symTerm{
				nested:  append([]symTerm(nil), prev.Terms...),
				scaleLo: types.Int(1), scaleHi: types.Int(1),
				lo: types.Int(0), hi: types.Int(0),
			})
		}
		next.Groups["all"] = agg
		cur = next
	}
	// Extract bounds from the final expression (summing the groups of the
	// last layer when it still has several).
	total := &SymExpr{Fn: ra.AggSum}
	for _, k := range cur.Order {
		total.Terms = append(total.Terms, cur.Groups[k].Terms...)
	}
	if len(total.Terms) == 0 {
		return types.Int(0), types.Int(0), nil
	}
	lo, hi, err = SolveBounds(total)
	return lo, hi, err
}

// SolveBounds extracts numeric bounds from a symbolic expression. Guarded
// terms from the same block are mutually exclusive: per block, the
// minimum/maximum single-alternative contribution (or zero when the block
// is also allowed to pick an alternative outside this group) bounds the
// block's effect. Unconditional terms contribute their value ranges
// directly. The walk visits every term of every nesting level — the cost
// that grows along aggregation chains.
func SolveBounds(e *SymExpr) (types.Value, types.Value, error) {
	type blockAgg struct{ lo, hi types.Value }
	perBlock := map[blockRef]*blockAgg{}
	lo, hi := types.Int(0), types.Int(0)
	var err error
	var walk func(ts []symTerm) error
	walk = func(ts []symTerm) error {
		for i := range ts {
			t := &ts[i]
			if len(t.nested) > 0 {
				if err := walk(t.nested); err != nil {
					return err
				}
				continue
			}
			if t.guard == nil {
				if lo, err = types.Add(lo, t.lo); err != nil {
					return err
				}
				if hi, err = types.Add(hi, t.hi); err != nil {
					return err
				}
				continue
			}
			ba, ok := perBlock[*t.guard]
			if !ok {
				// A guarded block may contribute nothing (alternative
				// outside the group or block absent).
				ba = &blockAgg{lo: types.Int(0), hi: types.Int(0)}
				perBlock[*t.guard] = ba
			}
			ba.lo = types.Min(ba.lo, t.lo)
			ba.hi = types.Max(ba.hi, t.hi)
		}
		return nil
	}
	if err := walk(e.Terms); err != nil {
		return lo, hi, err
	}
	for _, ba := range perBlock {
		if lo, err = types.Add(lo, ba.lo); err != nil {
			return lo, hi, err
		}
		if hi, err = types.Add(hi, ba.hi); err != nil {
			return lo, hi, err
		}
	}
	return lo, hi, nil
}

var (
	_ = expr.Expr(nil)
	_ = worlds.XTuple{}
)
