// Package baselines reimplements the query-processing strategies of the
// systems the paper compares against (Section 12): UA-DBs, MCDB-style
// sampling, Libkin-style certain-answer under-approximation, MayBMS-style
// possible-answer computation, Trio-style aggregate bounds, and symbolic
// aggregate encodings (Symb). Each reimplementation preserves the
// asymptotic behaviour of the original system's strategy on the shared
// deterministic substrate (see DESIGN.md, substitution 3).
package baselines

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// UADB is an uncertainty-annotated database (Feng et al. 2019, reviewed in
// Section 3.3): a pair of an under-approximation of the certain tuples and
// a selected-guess world. Queries from RA+ evaluate component-wise in the
// product semiring K².
type UADB struct {
	Lower bag.DB // under-approximation of certain tuples
	SG    bag.DB // selected-guess world
}

// UADBFromX builds a UA-DB from an x-database: the SG world picks best
// alternatives; the lower bound keeps only tuples from certain,
// single-alternative blocks (tuples with any uncertainty are marked
// uncertain, as in the paper's PDBench setup).
func UADBFromX(db worlds.XDB) *UADB {
	out := &UADB{Lower: bag.DB{}, SG: bag.DB{}}
	for name, rel := range db {
		lower := bag.New(rel.Schema)
		for i := range rel.Tuples {
			blk := &rel.Tuples[i]
			if len(blk.Alts) == 1 && !blk.IsOptional() {
				lower.Add(blk.Alts[0], 1)
			}
		}
		out.Lower[name] = lower.Merge()
		out.SG[name] = rel.SGW()
	}
	return out
}

// UADBResult pairs the two component results.
type UADBResult struct {
	Lower *bag.Relation
	SG    *bag.Relation
}

// ExecUADB evaluates an RA+ query over both components. Set difference and
// aggregation are outside the UA-DB query class; aggregation is evaluated
// per component for benchmark parity (its certain side is generally empty,
// matching the paper's observation that UA-DB aggregates return no certain
// answers).
func ExecUADB(ctx context.Context, n ra.Node, db *UADB) (*UADBResult, error) {
	if containsDiff(n) {
		return nil, fmt.Errorf("baselines: UA-DBs do not support set difference")
	}
	low, err := bag.Exec(ctx, n, db.Lower)
	if err != nil {
		return nil, err
	}
	sg, err := bag.Exec(ctx, n, db.SG)
	if err != nil {
		return nil, err
	}
	// The certain under-approximation of a non-monotone aggregate is
	// empty; intersect grouped results defensively: keep lower tuples
	// only when they also appear in the SG world with the same values.
	if containsAgg(n) {
		filtered := bag.New(low.Schema)
		for i, t := range low.Tuples {
			if sg.Count(t) > 0 {
				filtered.Add(t, minInt64(low.Counts[i], sg.Count(t)))
			}
		}
		low = filtered
	}
	return &UADBResult{Lower: low, SG: sg}, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func containsDiff(n ra.Node) bool {
	if _, ok := n.(*ra.Diff); ok {
		return true
	}
	for _, c := range n.Children() {
		if containsDiff(c) {
			return true
		}
	}
	return false
}

func containsAgg(n ra.Node) bool {
	if _, ok := n.(*ra.Agg); ok {
		return true
	}
	for _, c := range n.Children() {
		if containsAgg(c) {
			return true
		}
	}
	return false
}

// LibkinDB is the labeled-null under-approximation of certain answers
// (Guagliardo & Libkin, Section 12's "Libkin" baseline): uncertain cells
// become nulls, null comparisons never hold, so every produced tuple is
// certain. (Our simplification drops labeled-null unification — two
// occurrences of the same unknown never compare equal — which keeps the
// result a sound under-approximation with the same evaluation cost.)
func LibkinDB(db worlds.XDB) bag.DB {
	out := bag.DB{}
	for name, rel := range db {
		r := bag.New(rel.Schema)
		for i := range rel.Tuples {
			blk := &rel.Tuples[i]
			if blk.IsOptional() {
				continue // possibly-absent tuples are never certain
			}
			row := make(types.Tuple, rel.Schema.Arity())
			for c := 0; c < rel.Schema.Arity(); c++ {
				v := blk.Alts[0][c]
				certain := true
				for _, a := range blk.Alts[1:] {
					if types.Compare(a[c], v) != 0 {
						certain = false
						break
					}
				}
				if certain {
					row[c] = v
				} else {
					row[c] = types.Null()
				}
			}
			r.Add(row, 1)
		}
		out[name] = r.Merge()
	}
	return out
}

// ExecLibkin evaluates the query over the null-coded database; the result
// under-approximates the certain answers (rows containing nulls stand for
// tuples whose values are not certain).
func ExecLibkin(ctx context.Context, n ra.Node, db bag.DB) (*bag.Relation, error) {
	return bag.Exec(ctx, n, db)
}
