package baselines

import (
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// trioTuple is an alternative-expanded tuple carrying its lineage: the set
// of (block, alternative) choices it derives from, in the spirit of Trio's
// ULDB model.
type trioTuple struct {
	vals    types.Tuple
	lineage map[blockRef]int
	certain bool // derived exclusively from certain blocks
}

type trioRelation struct {
	schema schema.Schema
	tuples []trioTuple
}

// TrioAggResult is a per-group aggregate interval (Trio reports GLB/LUB
// bounds for aggregates over groups with certain group-by values).
type TrioAggResult struct {
	Schema schema.Schema
	Groups []TrioGroup
}

// TrioGroup is one output group.
type TrioGroup struct {
	Key     types.Tuple
	Lo, Hi  []types.Value
	Certain bool
}

// ExecTrioSPJ evaluates an SPJ query Trio-style: alternatives are expanded
// eagerly with lineage tracking (the cost profile that makes Trio slow on
// uncertain joins), and the distinct possible tuples are returned along
// with which are certain.
func ExecTrioSPJ(n ra.Node, db worlds.XDB) (*bag.Relation, *bag.Relation, error) {
	rel, err := execTrio(n, db)
	if err != nil {
		return nil, nil, err
	}
	poss := bag.New(rel.schema)
	cert := bag.New(rel.schema)
	seen := map[string]bool{}
	for _, t := range rel.tuples {
		k := t.vals.Key()
		if !seen[k] {
			seen[k] = true
			poss.Add(t.vals, 1)
			if t.certain {
				cert.Add(t.vals, 1)
			}
		}
	}
	return cert, poss, nil
}

func execTrio(n ra.Node, db worlds.XDB) (*trioRelation, error) {
	switch t := n.(type) {
	case *ra.Scan:
		rel, ok := db[t.Table]
		if !ok {
			return nil, fmt.Errorf("baselines: unknown table %q", t.Table)
		}
		out := &trioRelation{schema: rel.Schema}
		for bi := range rel.Tuples {
			blk := &rel.Tuples[bi]
			certainBlock := len(blk.Alts) == 1 && !blk.IsOptional()
			for ai, alt := range blk.Alts {
				tt := trioTuple{vals: alt, certain: certainBlock}
				if !certainBlock {
					tt.lineage = map[blockRef]int{{rel: t.Table, idx: bi}: ai}
				}
				out.tuples = append(out.tuples, tt)
			}
		}
		return out, nil
	case *ra.Select:
		in, err := execTrio(t.Child, db)
		if err != nil {
			return nil, err
		}
		out := &trioRelation{schema: in.schema}
		for _, tt := range in.tuples {
			v, err := t.Pred.Eval(tt.vals)
			if err != nil {
				return nil, err
			}
			if v.AsBool() {
				out.tuples = append(out.tuples, tt)
			}
		}
		return out, nil
	case *ra.Project:
		in, err := execTrio(t.Child, db)
		if err != nil {
			return nil, err
		}
		attrs := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			attrs[i] = c.Name
		}
		out := &trioRelation{schema: schema.Schema{Attrs: attrs}}
		for _, tt := range in.tuples {
			row := make(types.Tuple, len(t.Cols))
			for i, c := range t.Cols {
				v, err := c.E.Eval(tt.vals)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out.tuples = append(out.tuples, trioTuple{vals: row, lineage: tt.lineage, certain: tt.certain})
		}
		return out, nil
	case *ra.Join:
		l, err := execTrio(t.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := execTrio(t.Right, db)
		if err != nil {
			return nil, err
		}
		out := &trioRelation{schema: l.schema.Concat(r.schema)}
		for _, lt := range l.tuples {
			for _, rt := range r.tuples {
				lin, ok := mergeConds(lt.lineage, rt.lineage)
				if !ok {
					continue
				}
				joined := lt.vals.Concat(rt.vals)
				if t.Cond != nil {
					v, err := t.Cond.Eval(joined)
					if err != nil {
						return nil, err
					}
					if !v.AsBool() {
						continue
					}
				}
				out.tuples = append(out.tuples, trioTuple{
					vals: joined, lineage: lin, certain: lt.certain && rt.certain,
				})
			}
		}
		return out, nil
	case *ra.Union:
		l, err := execTrio(t.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := execTrio(t.Right, db)
		if err != nil {
			return nil, err
		}
		out := &trioRelation{schema: l.schema}
		out.tuples = append(out.tuples, l.tuples...)
		out.tuples = append(out.tuples, r.tuples...)
		return out, nil
	case *ra.Distinct, *ra.OrderBy:
		return execTrio(t.Children()[0], db)
	}
	return nil, fmt.Errorf("baselines: Trio-style evaluation does not support %T", n)
}

// ExecTrioAgg computes Trio-style aggregate bounds: for each group (over
// certain group-by columns of the expanded input) the exact GLB/LUB of the
// aggregate given block-independence. Uncertain group-by values are not
// supported — the group simply reflects each alternative's value, as Trio
// has no range representation for groups (cf. Figure 4: "GLB+LUB",
// grouping on certain attributes).
// blockContrib collects the possible aggregate contributions of one block
// to one group.
type blockContrib struct {
	vals []types.Value
}

func ExecTrioAgg(child ra.Node, db worlds.XDB, groupBy []int, agg ra.AggSpec) (*TrioAggResult, error) {
	in, err := execTrio(child, db)
	if err != nil {
		return nil, err
	}
	type group struct {
		key  types.Tuple
		byBl map[blockRef]*blockContrib
		cert []types.Value // contributions from certain tuples
	}
	groups := map[string]*group{}
	var order []string
	for _, tt := range in.tuples {
		key := tt.vals.Project(groupBy)
		k := key.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{key: key, byBl: map[blockRef]*blockContrib{}}
			groups[k] = g
			order = append(order, k)
		}
		var v types.Value = types.Int(1)
		if agg.Arg != nil {
			v, err = agg.Arg.Eval(tt.vals)
			if err != nil {
				return nil, err
			}
		}
		if tt.certain {
			g.cert = append(g.cert, v)
			continue
		}
		// Attribute the contribution to its first lineage block (blocks
		// are independent; multi-block lineage is approximated by the
		// first choice, keeping bounds conservative).
		var ref blockRef
		for r := range tt.lineage {
			ref = r
			break
		}
		bc, ok := g.byBl[ref]
		if !ok {
			bc = &blockContrib{}
			g.byBl[ref] = bc
		}
		bc.vals = append(bc.vals, v)
	}

	out := &TrioAggResult{}
	for _, k := range order {
		g := groups[k]
		lo, hi, err := trioBounds(agg.Fn, g.cert, g.byBl)
		if err != nil {
			return nil, err
		}
		out.Groups = append(out.Groups, TrioGroup{
			Key: g.key, Lo: []types.Value{lo}, Hi: []types.Value{hi},
			Certain: len(g.cert) > 0,
		})
	}
	return out, nil
}

// trioBounds folds certain contributions plus per-block min/max optional
// contributions into a GLB/LUB interval.
func trioBounds(fn ra.AggFn, cert []types.Value, blocks map[blockRef]*blockContrib) (types.Value, types.Value, error) {
	switch fn {
	case ra.AggSum, ra.AggCount:
		lo, hi := types.Int(0), types.Int(0)
		var err error
		for _, v := range cert {
			if fn == ra.AggCount {
				v = types.Int(1)
			}
			if lo, err = types.Add(lo, v); err != nil {
				return lo, hi, err
			}
			if hi, err = types.Add(hi, v); err != nil {
				return lo, hi, err
			}
		}
		for _, bc := range blocks {
			bmin, bmax := types.Int(0), types.Int(0) // the block may avoid the group
			for _, v := range bc.vals {
				if fn == ra.AggCount {
					v = types.Int(1)
				}
				bmin = types.Min(bmin, v)
				bmax = types.Max(bmax, v)
			}
			if lo, err = types.Add(lo, bmin); err != nil {
				return lo, hi, err
			}
			if hi, err = types.Add(hi, bmax); err != nil {
				return lo, hi, err
			}
		}
		return lo, hi, nil
	case ra.AggMin, ra.AggMax:
		lo, hi := types.PosInf(), types.NegInf()
		for _, v := range cert {
			lo = types.Min(lo, v)
			hi = types.Max(hi, v)
		}
		for _, bc := range blocks {
			for _, v := range bc.vals {
				lo = types.Min(lo, v)
				hi = types.Max(hi, v)
			}
		}
		if fn == ra.AggMin {
			return lo, hi, nil
		}
		return lo, hi, nil
	case ra.AggAvg:
		sLo, sHi, err := trioBounds(ra.AggSum, cert, blocks)
		if err != nil {
			return sLo, sHi, err
		}
		cLo, cHi, err := trioBounds(ra.AggCount, cert, blocks)
		if err != nil {
			return sLo, sHi, err
		}
		one := types.Int(1)
		cLo, cHi = types.Max(one, cLo), types.Max(one, cHi)
		q1, _ := types.Div(sLo, cLo)
		q2, _ := types.Div(sLo, cHi)
		q3, _ := types.Div(sHi, cLo)
		q4, _ := types.Div(sHi, cHi)
		lo := types.Min(types.Min(q1, q2), types.Min(q3, q4))
		hi := types.Max(types.Max(q1, q2), types.Max(q3, q4))
		return lo, hi, nil
	}
	return types.Null(), types.Null(), fmt.Errorf("baselines: Trio aggregate %v unsupported", fn)
}

var _ = expr.Expr(nil)
