package baselines

import (
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// condTuple is a U-relation tuple: values plus the block choices (world-set
// descriptor) it depends on, à la MayBMS.
type condTuple struct {
	vals types.Tuple
	cond map[blockRef]int // block -> chosen alternative
}

type blockRef struct {
	rel string
	idx int
}

// uRelation is a MayBMS-style conditional table.
type uRelation struct {
	schema schema.Schema
	tuples []condTuple
}

// ExecMayBMS computes the possible answers of an SPJ (RA+) query over an
// x-database by propagating world-set descriptors through the operators
// (the columnar alternative expansion of MayBMS's native representation).
// Aggregation and difference are unsupported, as in the paper's setup
// where MayBMS is used to compute possible answers for SPJ queries only.
func ExecMayBMS(n ra.Node, db worlds.XDB) (*bag.Relation, error) {
	u, err := execU(n, db)
	if err != nil {
		return nil, err
	}
	// Possible answers: distinct value tuples.
	out := bag.New(u.schema)
	seen := map[string]bool{}
	for _, t := range u.tuples {
		k := t.vals.Key()
		if !seen[k] {
			seen[k] = true
			out.Add(t.vals, 1)
		}
	}
	return out, nil
}

func execU(n ra.Node, db worlds.XDB) (*uRelation, error) {
	switch t := n.(type) {
	case *ra.Scan:
		rel, ok := db[t.Table]
		if !ok {
			return nil, fmt.Errorf("baselines: unknown table %q", t.Table)
		}
		out := &uRelation{schema: rel.Schema}
		for bi := range rel.Tuples {
			blk := &rel.Tuples[bi]
			for ai, alt := range blk.Alts {
				ct := condTuple{vals: alt}
				if len(blk.Alts) > 1 || blk.IsOptional() {
					ct.cond = map[blockRef]int{{rel: t.Table, idx: bi}: ai}
				}
				out.tuples = append(out.tuples, ct)
			}
		}
		return out, nil
	case *ra.Select:
		in, err := execU(t.Child, db)
		if err != nil {
			return nil, err
		}
		out := &uRelation{schema: in.schema}
		for _, ct := range in.tuples {
			v, err := t.Pred.Eval(ct.vals)
			if err != nil {
				return nil, err
			}
			if v.AsBool() {
				out.tuples = append(out.tuples, ct)
			}
		}
		return out, nil
	case *ra.Project:
		in, err := execU(t.Child, db)
		if err != nil {
			return nil, err
		}
		attrs := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			attrs[i] = c.Name
		}
		out := &uRelation{schema: schema.Schema{Attrs: attrs}}
		for _, ct := range in.tuples {
			row := make(types.Tuple, len(t.Cols))
			for i, c := range t.Cols {
				v, err := c.E.Eval(ct.vals)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out.tuples = append(out.tuples, condTuple{vals: row, cond: ct.cond})
		}
		return out, nil
	case *ra.Join:
		l, err := execU(t.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := execU(t.Right, db)
		if err != nil {
			return nil, err
		}
		out := &uRelation{schema: l.schema.Concat(r.schema)}
		emit := func(lt, rt condTuple) error {
			merged, ok := mergeConds(lt.cond, rt.cond)
			if !ok {
				return nil // inconsistent world-set descriptors
			}
			joined := lt.vals.Concat(rt.vals)
			if t.Cond != nil {
				v, err := t.Cond.Eval(joined)
				if err != nil {
					return err
				}
				if !v.AsBool() {
					return nil
				}
			}
			out.tuples = append(out.tuples, condTuple{vals: joined, cond: merged})
			return nil
		}
		// MayBMS compiles to plain SQL over U-relations, so equality
		// conjuncts hash join as usual.
		var lCols, rCols []int
		if t.Cond != nil {
			split := l.schema.Arity()
			for _, c := range expr.Conjuncts(t.Cond) {
				if li, ri, ok := expr.EquiPair(c, split); ok {
					lCols = append(lCols, li)
					rCols = append(rCols, ri)
				}
			}
		}
		if len(lCols) > 0 {
			idx := map[string][]int{}
			for i, rt := range r.tuples {
				idx[rt.vals.KeyOn(rCols)] = append(idx[rt.vals.KeyOn(rCols)], i)
			}
			for _, lt := range l.tuples {
				for _, j := range idx[lt.vals.KeyOn(lCols)] {
					if err := emit(lt, r.tuples[j]); err != nil {
						return nil, err
					}
				}
			}
		} else {
			for _, lt := range l.tuples {
				for _, rt := range r.tuples {
					if err := emit(lt, rt); err != nil {
						return nil, err
					}
				}
			}
		}
		return out, nil
	case *ra.Union:
		l, err := execU(t.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := execU(t.Right, db)
		if err != nil {
			return nil, err
		}
		out := &uRelation{schema: l.schema}
		out.tuples = append(out.tuples, l.tuples...)
		out.tuples = append(out.tuples, r.tuples...)
		return out, nil
	case *ra.Distinct:
		in, err := execU(t.Child, db)
		if err != nil {
			return nil, err
		}
		return in, nil // possible answers are already computed set-wise
	case *ra.OrderBy:
		return execU(t.Child, db)
	}
	return nil, fmt.Errorf("baselines: MayBMS-style evaluation does not support %T", n)
}

func mergeConds(a, b map[blockRef]int) (map[blockRef]int, bool) {
	if len(a) == 0 {
		return b, true
	}
	if len(b) == 0 {
		return a, true
	}
	out := make(map[blockRef]int, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; ok && prev != v {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}
