package baselines

import (
	"context"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

func row(vs ...interface{}) types.Tuple {
	out := make(types.Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			out[i] = types.Int(int64(x))
		case string:
			out[i] = types.String(x)
		default:
			panic("bad value")
		}
	}
	return out
}

// xdb: r(k, v) with one certain tuple, one 2-alternative block, one
// optional block; s(k, w) certain.
func testXDB() worlds.XDB {
	r := worlds.NewXRelation(schema.New("k", "v"))
	r.AddCertain(row(1, 10))
	r.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(2, 20), row(2, 25)}, Probs: []float64{0.6, 0.4}})
	r.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(3, 30)}, Probs: []float64{0.3}})
	s := worlds.NewXRelation(schema.New("k", "w"))
	s.AddCertain(row(1, 100))
	s.AddCertain(row(2, 200))
	return worlds.XDB{"r": r, "s": s}
}

func scanR() ra.Node { return &ra.Scan{Table: "r"} }

func joinPlan() ra.Node {
	return &ra.Join{
		Left: scanR(), Right: &ra.Scan{Table: "s"},
		Cond: expr.Eq(expr.Col(0, "k"), expr.Col(2, "k")),
	}
}

func TestUADB(t *testing.T) {
	db := testXDB()
	ua := UADBFromX(db)
	if ua.Lower["r"].Size() != 1 { // only the certain single-alternative block
		t.Errorf("lower:\n%s", ua.Lower["r"])
	}
	if ua.SG["r"].Size() != 2 { // certain + best alternative; optional dropped (p=0.3)
		t.Errorf("sg:\n%s", ua.SG["r"])
	}
	res, err := ExecUADB(context.Background(), joinPlan(), ua)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lower.Size() != 1 || res.SG.Size() != 2 {
		t.Errorf("join results: lower %d sg %d", res.Lower.Size(), res.SG.Size())
	}
	// Set difference rejected.
	diff := &ra.Diff{Left: scanR(), Right: scanR()}
	if _, err := ExecUADB(context.Background(), diff, ua); err == nil {
		t.Error("diff should be rejected")
	}
	// Aggregation: certain side intersected with SG.
	agg := &ra.Agg{Child: scanR(), GroupBy: []int{0},
		Aggs: []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "v"), Name: "s"}}}
	res, err = ExecUADB(context.Background(), agg, ua)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lower.Size() > res.SG.Size() {
		t.Error("certain aggregate rows must not exceed SG rows")
	}
}

func TestLibkin(t *testing.T) {
	db := testXDB()
	ldb := LibkinDB(db)
	// Block 2 has uncertain v -> null; optional block dropped entirely.
	if ldb["r"].Size() != 2 {
		t.Errorf("libkin relation:\n%s", ldb["r"])
	}
	out, err := ExecLibkin(context.Background(), &ra.Select{
		Child: scanR(),
		Pred:  expr.Gt(expr.Col(1, "v"), expr.CInt(5)),
	}, ldb)
	if err != nil {
		t.Fatal(err)
	}
	// Only the certain tuple passes (null comparison is false).
	if out.Size() != 1 {
		t.Errorf("certain under-approximation:\n%s", out)
	}
}

func TestMCDB(t *testing.T) {
	db := testXDB()
	res, err := ExecMCDB(context.Background(), joinPlan(), db, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 10 {
		t.Fatalf("samples: %d", len(res.Samples))
	}
	poss := res.PossibleTuples()
	if poss.Count(row(1, 10, 1, 100)) != 1 {
		t.Errorf("possible misses certain join tuple:\n%s", poss)
	}
	guar := res.GuaranteedTuples()
	if guar.Count(row(1, 10, 1, 100)) != 1 {
		t.Errorf("guaranteed misses certain join tuple:\n%s", guar)
	}
	// Aggregation bounds across samples.
	agg := &ra.Agg{Child: scanR(), GroupBy: []int{0},
		Aggs: []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "v"), Name: "s"}}}
	ares, err := ExecMCDB(context.Background(), agg, db, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	gb := ares.GroupBounds(1, 1)
	if len(gb) == 0 {
		t.Error("no group bounds")
	}
	k2 := row(2).Key()
	if b, ok := gb[k2]; ok {
		if b[0].AsInt() < 20 || b[1].AsInt() > 25 {
			t.Errorf("group 2 bounds: %v", b)
		}
	}
}

func TestMayBMS(t *testing.T) {
	db := testXDB()
	out, err := ExecMayBMS(joinPlan(), db)
	if err != nil {
		t.Fatal(err)
	}
	// Possible join results: (1,10,1,100), (2,20,2,200), (2,25,2,200).
	if out.Size() != 3 {
		t.Errorf("possible answers:\n%s", out)
	}
	// Selection + projection.
	plan := &ra.Project{
		Child: &ra.Select{Child: scanR(), Pred: expr.Geq(expr.Col(1, "v"), expr.CInt(20))},
		Cols:  []ra.ProjCol{{E: expr.Col(1, "v"), Name: "v"}},
	}
	out, err = ExecMayBMS(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 3 { // 20, 25, 30
		t.Errorf("select/project possible:\n%s", out)
	}
	// Self join of the uncertain block: alternatives must not combine.
	self := &ra.Join{Left: scanR(), Right: scanR(),
		Cond: expr.Eq(expr.Col(0, "k"), expr.Col(2, "k"))}
	out, err = ExecMayBMS(self, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range out.Tuples {
		if tup[0].AsInt() == 2 && types.Compare(tup[1], tup[3]) != 0 {
			t.Errorf("inconsistent world-set combined: %v", tup)
		}
	}
	// Aggregation unsupported.
	agg := &ra.Agg{Child: scanR(), Aggs: []ra.AggSpec{{Fn: ra.AggCount, Name: "c"}}}
	if _, err := ExecMayBMS(agg, db); err == nil {
		t.Error("aggregation should be unsupported")
	}
	if _, err := ExecMayBMS(&ra.Scan{Table: "zzz"}, db); err == nil {
		t.Error("unknown table should error")
	}
}

func TestTrioSPJ(t *testing.T) {
	db := testXDB()
	cert, poss, err := ExecTrioSPJ(joinPlan(), db)
	if err != nil {
		t.Fatal(err)
	}
	if poss.Size() != 3 {
		t.Errorf("possible:\n%s", poss)
	}
	if cert.Size() != 1 || cert.Count(row(1, 10, 1, 100)) != 1 {
		t.Errorf("certain:\n%s", cert)
	}
	// Union and projection paths.
	u := &ra.Union{Left: scanR(), Right: scanR()}
	if _, _, err := ExecTrioSPJ(u, db); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExecTrioSPJ(&ra.Diff{Left: scanR(), Right: scanR()}, db); err == nil {
		t.Error("diff unsupported")
	}
}

func TestTrioAgg(t *testing.T) {
	db := testXDB()
	res, err := ExecTrioAgg(scanR(), db, []int{0}, ra.AggSpec{Fn: ra.AggSum, Arg: expr.Col(1, "v"), Name: "s"})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int64]TrioGroup{}
	for _, g := range res.Groups {
		byKey[g.Key[0].AsInt()] = g
	}
	// Group 1: certain sum 10.
	if g := byKey[1]; g.Lo[0].AsInt() != 10 || g.Hi[0].AsInt() != 10 || !g.Certain {
		t.Errorf("group 1: %+v", g)
	}
	// Group 2: block contributes 20 or 25, never absent within the block
	// (both alternatives have k=2) but Trio's bounds conservatively allow
	// absence: [0..25] would be conservative; min over alts with 0 floor
	// gives lo 0, hi 25.
	if g := byKey[2]; g.Hi[0].AsInt() != 25 || g.Lo[0].AsInt() > 20 {
		t.Errorf("group 2: %+v", g)
	}
	// count / min / max / avg variants.
	if _, err := ExecTrioAgg(scanR(), db, []int{0}, ra.AggSpec{Fn: ra.AggCount, Name: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecTrioAgg(scanR(), db, []int{0}, ra.AggSpec{Fn: ra.AggMin, Arg: expr.Col(1, "v"), Name: "m"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecTrioAgg(scanR(), db, []int{0}, ra.AggSpec{Fn: ra.AggAvg, Arg: expr.Col(1, "v"), Name: "a"}); err != nil {
		t.Fatal(err)
	}
}

func TestSymb(t *testing.T) {
	db := testXDB()
	lo, hi, err := ExecSymbChain(db, "r", 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Total sum across groups: certain 10 + block {20|25} + optional {0|30}.
	if lo.AsInt() > 30 || hi.AsInt() < 55 {
		t.Errorf("bounds [%v, %v]", lo, hi)
	}
	// Chained aggregation keeps bounds stable here (sum of sums) but
	// grows the symbolic representation.
	lo2, hi2, err := ExecSymbChain(db, "r", 1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if types.Compare(lo, lo2) != 0 || types.Compare(hi, hi2) != 0 {
		t.Errorf("chained bounds differ: [%v,%v] vs [%v,%v]", lo, hi, lo2, hi2)
	}
	if _, _, err := ExecSymbChain(db, "zzz", 1, 0, 1); err == nil {
		t.Error("unknown table should error")
	}
}
