package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	root.SetAttr("sql", "select 1")
	child := root.StartChild("parse")
	child.SetInt("tokens", 3)
	child.End()
	root.Attach(&Span{Name: "rule fold-constants", Dur: 5 * time.Microsecond})
	root.End()

	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
	out := root.String()
	for _, want := range []string{"query", "sql=select 1", "  parse", "tokens=3", "  rule fold-constants"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSpanNilSafe: the whole span API must be callable through nil so
// untraced paths need no branches beyond the receiver check.
func TestSpanNilSafe(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("StartChild on nil returned a span")
	}
	c.SetAttr("k", "v")
	c.SetInt("n", 1)
	c.Attach(&Span{Name: "y"})
	c.End()
	if got := c.String(); got != "" {
		t.Fatalf("nil span renders %q, want empty", got)
	}
}

func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if s := SpanFrom(ctx); s != nil {
		t.Fatal("SpanFrom on a bare context returned a span")
	}
	root := StartSpan("r")
	ctx = WithSpan(ctx, root)
	if s := SpanFrom(ctx); s != root {
		t.Fatal("SpanFrom did not return the carried span")
	}
	if got := WithSpan(context.Background(), nil); got != context.Background() {
		t.Fatal("WithSpan(nil) should return the context unchanged")
	}
}

func TestRecorderRingAndSampling(t *testing.T) {
	r := NewRecorder(2, 3)
	// Sampling admits the 1st, 4th, 7th, ... call.
	var admitted []int
	for i := 1; i <= 7; i++ {
		if r.Sample() {
			admitted = append(admitted, i)
		}
	}
	if len(admitted) != 3 || admitted[0] != 1 || admitted[1] != 4 || admitted[2] != 7 {
		t.Fatalf("sampled calls = %v, want [1 4 7]", admitted)
	}
	for _, name := range []string{"a", "b", "c"} {
		r.Record(&Span{Name: name})
	}
	got := r.Traces()
	if len(got) != 2 || got[0].Name != "b" || got[1].Name != "c" {
		t.Fatalf("ring kept %v, want oldest-first [b c]", names(got))
	}
	if r.Total() != 3 {
		t.Fatalf("Total() = %d, want 3", r.Total())
	}
}

func TestRecorderNil(t *testing.T) {
	var r *Recorder
	if r.Sample() {
		t.Fatal("nil recorder sampled")
	}
	r.Record(&Span{Name: "x"})
	if r.Traces() != nil || r.Total() != 0 {
		t.Fatal("nil recorder retained state")
	}
}

func names(ss []*Span) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s.Name)
	}
	return out
}

// TestObsDisabledZeroAlloc is the hot-path gate: the exact per-query
// instrumentation sequence the Database and server run when tracing is
// off — context lookup, nil-span navigation, counter/gauge/histogram
// updates, an unsampling recorder — must not allocate. CI runs this by
// name; it is what keeps BenchmarkPipe* and BenchmarkStmtExec* honest.
func TestObsDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	reg := NewRegistry()
	byEngine := reg.CounterVec("q_total", "", "engine").With("native")
	gauge := reg.Gauge("inflight", "")
	hist := reg.Histogram("lat", "")
	var nilCounter *Counter
	var nilRec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		// Tracing off: no span in the context, children are nil.
		sp := SpanFrom(ctx)
		child := sp.StartChild("execute")
		child.SetInt("rows", 1)
		child.End()
		sp.End()
		// Metrics on (they always are): pre-resolved handles only.
		byEngine.Add(1)
		gauge.Inc()
		hist.Observe(42 * time.Microsecond)
		gauge.Dec()
		// Absent optional instruments are nil and must stay free.
		nilCounter.Add(1)
		if nilRec.Sample() {
			t.Fatal("nil recorder sampled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f per op, want 0", allocs)
	}
}
