package obs

import (
	"bytes"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("one_total", "first registry").Add(1)
	reg2 := NewRegistry()
	reg2.Counter("two_total", "second registry").Add(2)
	srv := httptest.NewServer(Handler(reg, reg2))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "one_total 1") || !strings.Contains(body, "two_total 2") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body = get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// pprof index must answer; profiles themselves are exercised enough
	// by being the stdlib handlers.
	if code, _ = get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// TestSlowQueryHook: fast queries stay silent, slow and failed ones
// emit one structured line with the promised fields.
func TestSlowQueryHook(t *testing.T) {
	var buf bytes.Buffer
	hook := SlowQueryHook(slog.New(slog.NewJSONHandler(&buf, nil)), 10*time.Millisecond)

	hook(QueryInfo{Fingerprint: "select ?", Engine: "native", Duration: time.Millisecond})
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %s", buf.String())
	}

	hook(QueryInfo{
		Fingerprint: "select x from t where y = ?",
		Engine:      "native", ExecMode: "pipelined",
		Duration: 25 * time.Millisecond,
		Rows:     10, EstRows: 40, HasEst: true,
	})
	line := buf.String()
	for _, want := range []string{
		`"msg":"slow query"`,
		`"fingerprint":"select x from t where y = ?"`,
		`"engine":"native"`,
		`"exec_mode":"pipelined"`,
		`"rows":10`,
		`"est_rows":40`,
		`"card_error":4`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %s:\n%s", want, line)
		}
	}

	buf.Reset()
	hook(QueryInfo{Fingerprint: "select ?", Engine: "native", Duration: time.Millisecond, ErrCode: "timeout"})
	if !strings.Contains(buf.String(), `"error":"timeout"`) {
		t.Errorf("failed query not logged: %s", buf.String())
	}
}

func TestCardinalityError(t *testing.T) {
	cases := []struct {
		qi   QueryInfo
		want float64
	}{
		{QueryInfo{HasEst: false, EstRows: 5, Rows: 50}, 0},
		{QueryInfo{HasEst: true, EstRows: 10, Rows: 10}, 1},
		{QueryInfo{HasEst: true, EstRows: 10, Rows: 40}, 4},
		{QueryInfo{HasEst: true, EstRows: 40, Rows: 10}, 4},
		{QueryInfo{HasEst: true, EstRows: 0, Rows: 0}, 1},
	}
	for _, c := range cases {
		if got := c.qi.CardinalityError(); got != c.want {
			t.Errorf("CardinalityError(est=%d rows=%d) = %v, want %v", c.qi.EstRows, c.qi.Rows, got, c.want)
		}
	}
}
