package obs

import "testing"

func TestFingerprint(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT x FROM t WHERE y = 3", "select x from t where y = ?"},
		{"select  x\nfrom t where y=3 and z='abc'", "select x from t where y=? and z=?"},
		{"SELECT * FROM t1 WHERE x2 > 10", "select * from t1 where x2 > ?"},
		{"select 1.5e-3, 'it''s'", "select ?, ?"},
		{"  select   1  ", "select ?"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Fingerprint(c.in); got != c.want {
			t.Errorf("Fingerprint(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Structurally identical statements share a fingerprint.
	a := Fingerprint("SELECT x FROM t WHERE y = 1")
	b := Fingerprint("select x from t where y = 99999")
	if a != b {
		t.Errorf("fingerprints differ: %q vs %q", a, b)
	}
}
