// Package obs is the zero-dependency observability layer: lightweight
// span tracing for the query lifecycle, striped counters, gauges and
// log-bucketed latency histograms with a Prometheus text exposition,
// and the structured slow-query hook audbd wires into log/slog.
//
// Everything is built to cost nothing when unused. A nil *Span is a
// valid no-op receiver (StartChild returns nil, End and SetAttr do
// nothing), SpanFrom on a context that carries no span returns nil
// without allocating, and a nil *Counter/*Gauge/*Histogram swallows
// updates. TestObsDisabledZeroAlloc holds that disabled path to zero
// allocations so instrumentation can ride on every hot path.
package obs

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Span is one timed region of a trace. Fields are exported so
// producers that already measured their work (optimizer rule steps,
// per-operator ExecStats) can attach pre-timed spans via Attach
// without going through StartChild/End.
//
// A span tree is built by one goroutine; only the finished tree may be
// shared (the Recorder hands out completed roots).
type Span struct {
	Name     string
	Start    time.Time
	Dur      time.Duration
	Attrs    []Attr
	Children []*Span
}

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild begins a child span. On a nil receiver it returns nil, so
// an untraced request pays only the nil checks.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// End stamps the span's duration. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Dur = time.Since(s.Start)
}

// Attach adds an already-timed child span (Dur set by the producer).
func (s *Span) Attach(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.Children = append(s.Children, c)
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// SetInt annotates the span with an integer value. No-op on nil.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: strconv.FormatInt(val, 10)})
}

// String renders the span tree, one line per span, children indented.
func (s *Span) String() string {
	var b strings.Builder
	s.write(&b, 0)
	return b.String()
}

func (s *Span) write(b *strings.Builder, depth int) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Name)
	b.WriteString("  ")
	b.WriteString(fmtDur(s.Dur))
	for _, a := range s.Attrs {
		b.WriteString("  ")
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.write(b, depth+1)
	}
}

// fmtDur trims a duration to a readable precision for span output.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// WithSpan returns a context carrying s. A nil span returns ctx
// unchanged, so callers can thread an optional span unconditionally.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil. The nil path does
// not allocate.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Recorder keeps the most recent completed root spans in a fixed ring,
// admitting only one request in every sampleEvery so tracing under
// load stays cheap. A nil Recorder never samples and drops records.
type Recorder struct {
	sampleEvery uint64
	seq         atomic.Uint64

	mu    sync.Mutex
	ring  []*Span
	next  int
	total int
}

// NewRecorder returns a ring of the given capacity (default 32)
// sampling one request in every sampleEvery (default 1: every request).
func NewRecorder(capacity, sampleEvery int) *Recorder {
	if capacity <= 0 {
		capacity = 32
	}
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	return &Recorder{ring: make([]*Span, capacity), sampleEvery: uint64(sampleEvery)}
}

// Sample reports whether the caller should trace this request: true
// once per sampleEvery calls, starting with the first.
func (r *Recorder) Sample() bool {
	if r == nil {
		return false
	}
	return (r.seq.Add(1)-1)%r.sampleEvery == 0
}

// Record stores a completed root span, evicting the oldest.
func (r *Recorder) Record(s *Span) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// Traces returns the recorded spans, oldest first.
func (r *Recorder) Traces() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Span
	n := len(r.ring)
	for i := 0; i < n; i++ {
		if s := r.ring[(r.next+i)%n]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Total reports how many spans have ever been recorded (including
// evicted ones).
func (r *Recorder) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
