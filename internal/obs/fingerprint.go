package obs

import "strings"

// Fingerprint normalizes a query so structurally identical statements
// aggregate under one key in the slow-query log: string and numeric
// literals become '?', ASCII letters lowercase, and whitespace runs
// collapse to single spaces. Numbers embedded in identifiers (t1, x_2)
// are kept — only standalone literals are masked.
func Fingerprint(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	inIdent := false // previous emitted byte continues an identifier
	for i := 0; i < len(q); {
		c := q[i]
		switch {
		case c == '\'':
			// String literal: skip to the closing quote ('' escapes).
			i++
			for i < len(q) {
				if q[i] == '\'' {
					if i+1 < len(q) && q[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			b.WriteByte('?')
			inIdent = false
		case c >= '0' && c <= '9':
			if inIdent {
				// Digit inside an identifier: keep it.
				b.WriteByte(c)
				i++
				continue
			}
			// Standalone numeric literal (digits, dot, exponent).
			i++
			for i < len(q) && isNumByte(q, i) {
				i++
			}
			b.WriteByte('?')
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
			for i < len(q) && (q[i] == ' ' || q[i] == '\t' || q[i] == '\n' || q[i] == '\r') {
				i++
			}
			b.WriteByte(' ')
			inIdent = false
		default:
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
			inIdent = c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
			i++
		}
	}
	return strings.TrimSpace(b.String())
}

// isNumByte reports whether q[i] continues a numeric literal.
func isNumByte(q string, i int) bool {
	c := q[i]
	if (c >= '0' && c <= '9') || c == '.' {
		return true
	}
	if c == 'e' || c == 'E' {
		// Exponent marker only if followed by a digit or sign+digit.
		if i+1 < len(q) && (q[i+1] >= '0' && q[i+1] <= '9') {
			return true
		}
		if i+2 < len(q) && (q[i+1] == '+' || q[i+1] == '-') && q[i+2] >= '0' && q[i+2] <= '9' {
			return true
		}
	}
	if (c == '+' || c == '-') && i > 0 && (q[i-1] == 'e' || q[i-1] == 'E') {
		return true
	}
	return false
}
