package obs

import (
	"context"
	"log/slog"
	"time"
)

// QueryInfo describes one completed query, delivered to the Database's
// query hook. It is only assembled when a hook is installed, so the
// default path pays nothing for it.
type QueryInfo struct {
	Query       string        // original statement text ("" for pre-compiled plans)
	Fingerprint string        // normalized statement (see Fingerprint)
	Engine      string        // engine that ran it (native, rewrite, sgw)
	ExecMode    string        // physical mode for the native engine ("" otherwise)
	Duration    time.Duration // wall time inside dispatch
	Rows        int64         // result cardinality (0 on error)
	EstRows     int64         // optimizer's root cardinality estimate
	HasEst      bool          // whether EstRows is meaningful
	ErrCode     string        // wire-stable error code, "" on success
}

// CardinalityError is the q-error between the optimizer's estimate and
// the actual result size: max(est,rows)/min(est,rows) with both
// clamped to ≥1, so 1.0 is a perfect estimate. 0 when no estimate.
func (q QueryInfo) CardinalityError() float64 {
	if !q.HasEst {
		return 0
	}
	est, act := float64(q.EstRows), float64(q.Rows)
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

// SlowQueryHook returns a query hook that emits one structured log
// line for every query at least threshold slow (and for every failed
// query, which is always worth a line). This is what audbd installs
// behind -slow-query-ms.
func SlowQueryHook(l *slog.Logger, threshold time.Duration) func(QueryInfo) {
	return func(qi QueryInfo) {
		if qi.Duration < threshold && qi.ErrCode == "" {
			return
		}
		attrs := []slog.Attr{
			slog.String("fingerprint", qi.Fingerprint),
			slog.String("engine", qi.Engine),
			slog.Float64("duration_ms", float64(qi.Duration)/float64(time.Millisecond)),
			slog.Int64("rows", qi.Rows),
		}
		if qi.ExecMode != "" {
			attrs = append(attrs, slog.String("exec_mode", qi.ExecMode))
		}
		if qi.HasEst {
			attrs = append(attrs,
				slog.Int64("est_rows", qi.EstRows),
				slog.Float64("card_error", qi.CardinalityError()))
		}
		if qi.ErrCode != "" {
			attrs = append(attrs, slog.String("error", qi.ErrCode))
		}
		l.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
	}
}
