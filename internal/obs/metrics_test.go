package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one striped counter from many
// goroutines (run under -race in CI) and checks the total is exact.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("Value() = %d, want %d", got, workers*each)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("Value() = %d, want 10", got)
	}
}

// TestHistogramQuantileEmpty: no observations → every quantile is 0.
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram Count=%d Sum=%v", h.Count(), h.Sum())
	}
}

// TestHistogramQuantileSingle: one observation — every quantile is
// that observation's bucket upper bound.
func TestHistogramQuantileSingle(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)
	// 100µs lands in bucket bits.Len64(100)=7, upper bound 2^7−1 = 127µs.
	want := 127 * time.Microsecond
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if h.Count() != 1 {
		t.Fatalf("Count() = %d, want 1", h.Count())
	}
}

// TestHistogramQuantileBoundaries pins the bucket edges: values 2^k−1
// and 2^k µs fall in adjacent buckets, and quantile extraction walks
// the cumulative counts to the correct edge.
func TestHistogramQuantileBoundaries(t *testing.T) {
	var h Histogram
	// 0µs → bucket 0 (upper 0); 1µs → bucket 1 (upper 1µs);
	// 2µs and 3µs → bucket 2 (upper 3µs); 4µs → bucket 3 (upper 7µs).
	for _, us := range []int64{0, 1, 2, 3, 4} {
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.20, 0},                    // first of 5 → bucket 0
		{0.40, 1 * time.Microsecond}, // second → bucket 1
		{0.80, 3 * time.Microsecond}, // third+fourth → bucket 2
		{1.00, 7 * time.Microsecond}, // fifth → bucket 3
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramOverflow: absurdly long observations land in the last
// bucket rather than indexing out of range.
func TestHistogramOverflow(t *testing.T) {
	var h Histogram
	h.Observe(200 * time.Hour)
	h.Observe(-time.Second) // negative clamps to 0
	if h.Count() != 2 {
		t.Fatalf("Count() = %d, want 2", h.Count())
	}
	if got := h.Quantile(1); got != bucketUpper(histBuckets-1) {
		t.Fatalf("Quantile(1) = %v, want top bucket %v", got, bucketUpper(histBuckets-1))
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("audb_test_total", "test counter").Add(3)
	reg.CounterVec("audb_errors_total", "errors by code", "code").With("timeout").Add(2)
	reg.Gauge("audb_depth", "queue depth").Set(5)
	reg.GaugeFunc("audb_pulled", "pulled gauge", func() int64 { return 9 })
	reg.Histogram("audb_latency_seconds", "latency").Observe(2 * time.Microsecond)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP audb_test_total test counter",
		"# TYPE audb_test_total counter",
		"audb_test_total 3",
		`audb_errors_total{code="timeout"} 2`,
		"audb_depth 5",
		"audb_pulled 9",
		"# TYPE audb_latency_seconds histogram",
		`audb_latency_seconds_bucket{le="+Inf"} 1`,
		"audb_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c").Add(4)
	h := reg.Histogram("lat", "l")
	h.Observe(time.Millisecond)
	snap := reg.Snapshot()
	if !strings.Contains(snap, "c_total 4") {
		t.Errorf("snapshot missing counter:\n%s", snap)
	}
	if !strings.Contains(snap, "lat count=1 p50=") {
		t.Errorf("snapshot missing histogram summary:\n%s", snap)
	}
}

// TestRegistryReuse: registering the same name again returns the same
// underlying metric, so handles can be resolved idempotently.
func TestRegistryReuse(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same", "x")
	b := reg.Counter("same", "x")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("same", "x")
}
