package obs

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------- counter --

// counterShards stripes a counter across cache lines; picked by a
// cheap per-goroutine random so concurrent writers rarely contend.
const counterShards = 8

type counterShard struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so shards do not false-share
}

// Counter is a monotonically increasing metric. Add is wait-free and
// allocation-free; Value sums the shards (each shard is atomic, so the
// total is exact once writers quiesce). A nil Counter drops updates.
type Counter struct {
	shards [counterShards]counterShard
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[rand.Uint64()%counterShards].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// ------------------------------------------------------------ gauge --

// Gauge is an instantaneous value (queue depth, active connections).
// A nil Gauge drops updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc increments the gauge.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// -------------------------------------------------------- histogram --

// histBuckets covers sub-microsecond through (2^38-1)µs ≈ 76h; the
// last bucket absorbs anything longer.
const histBuckets = 40

// Histogram records durations in power-of-two microsecond buckets:
// bucket i counts observations v with bits.Len64(µs(v)) == i, i.e.
// inclusive upper bound 2^i−1 µs (bucket 0 holds sub-microsecond
// observations). Observe is atomic and allocation-free; quantiles are
// extracted from the log-bucketed distribution as upper bounds. A nil
// Histogram drops observations.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load()) * time.Microsecond
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1): the
// upper edge of the first bucket whose cumulative count reaches q of
// the total. An empty histogram reports 0; sub-microsecond
// observations land in bucket 0, whose upper edge is 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > 0 && float64(cum) >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is bucket i's inclusive upper bound, 2^i−1 µs.
func bucketUpper(i int) time.Duration {
	return time.Duration((int64(1)<<i)-1) * time.Microsecond
}

// --------------------------------------------------------- registry --

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one instance inside a family: unlabeled (labelVal "") or
// one value of the family's single label dimension.
type metric struct {
	labelVal string
	c        *Counter
	g        *Gauge
	fn       func() int64
	h        *Histogram
}

// family groups the metrics sharing one name (and at most one label
// dimension, which covers every consumer in this module).
type family struct {
	name  string
	help  string
	kind  metricKind
	label string

	mu      sync.Mutex
	order   []string
	metrics map[string]*metric
}

func (f *family) get(labelVal string) *metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[labelVal]; ok {
		return m
	}
	m := &metric{labelVal: labelVal}
	switch f.kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	f.metrics[labelVal] = m
	f.order = append(f.order, labelVal)
	return m
}

// snapshot returns the family's metrics in registration order.
func (f *family) snapshot() []*metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*metric, 0, len(f.order))
	for _, k := range f.order {
		out = append(out, f.metrics[k])
	}
	return out
}

// Registry holds named metric families and renders them in Prometheus
// text exposition format or as a human-readable snapshot. Registration
// is get-or-create, so handles can be resolved once and kept.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.label != label {
			panic("obs: metric " + name + " re-registered with a different kind or label")
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label, metrics: map[string]*metric{}}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// families returns the registered families in registration order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.fams...)
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, "").get("").c
}

// CounterVec registers a counter family with one label dimension.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, label)}
}

// CounterVec hands out per-label-value counters from one family.
type CounterVec struct {
	f *family
}

// With returns the counter for one label value, creating it on first
// use. Resolve hot-path label values once and keep the handle.
func (v *CounterVec) With(value string) *Counter {
	return v.f.get(value).c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, "").get("").g
}

// GaugeFunc registers a gauge whose value is pulled from fn at render
// time — for values the owner already tracks (in-flight queries).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.family(name, help, kindGaugeFunc, "").get("").fn = fn
}

// Histogram registers (or finds) an unlabeled latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.family(name, help, kindHistogram, "").get("").h
}

// HistogramVec registers a histogram family with one label dimension.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, label)}
}

// HistogramVec hands out per-label-value histograms from one family.
type HistogramVec struct {
	f *family
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.get(value).h
}

// ---------------------------------------------------------- render --

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// series renders the metric name plus its label pairs (if any).
func series(name, label, labelVal, extraLabel, extraVal string) string {
	var pairs []string
	if label != "" {
		pairs = append(pairs, label+`="`+escapeLabel(labelVal)+`"`)
	}
	if extraLabel != "" {
		pairs = append(pairs, extraLabel+`="`+extraVal+`"`)
	}
	if len(pairs) == 0 {
		return name
	}
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// WritePrometheus renders every family in Prometheus text exposition
// format (histograms as cumulative buckets with le bounds in seconds).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	for _, f := range r.families() {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, m := range f.snapshot() {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s %d\n", series(f.name, f.label, m.labelVal, "", ""), m.c.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s %d\n", series(f.name, f.label, m.labelVal, "", ""), m.g.Value())
			case kindGaugeFunc:
				var v int64
				if m.fn != nil {
					v = m.fn()
				}
				fmt.Fprintf(w, "%s %d\n", series(f.name, f.label, m.labelVal, "", ""), v)
			case kindHistogram:
				writePromHistogram(w, f, m)
			}
		}
	}
}

func writePromHistogram(w io.Writer, f *family, m *metric) {
	h := m.h
	// Find the highest used bucket so the exposition stays compact.
	maxUsed := 0
	counts := make([]int64, histBuckets)
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			maxUsed = i
		}
	}
	var cum int64
	for i := 0; i <= maxUsed; i++ {
		cum += counts[i]
		le := strconv.FormatFloat(float64(bucketUpper(i))/float64(time.Second), 'g', -1, 64)
		fmt.Fprintf(w, "%s %d\n", series(f.name+"_bucket", f.label, m.labelVal, "le", le), cum)
	}
	fmt.Fprintf(w, "%s %d\n", series(f.name+"_bucket", f.label, m.labelVal, "le", "+Inf"), h.Count())
	sum := strconv.FormatFloat(float64(h.Sum())/float64(time.Second), 'g', -1, 64)
	fmt.Fprintf(w, "%s %s\n", series(f.name+"_sum", f.label, m.labelVal, "", ""), sum)
	fmt.Fprintf(w, "%s %d\n", series(f.name+"_count", f.label, m.labelVal, "", ""), h.Count())
}

// Snapshot renders a compact human-readable view: one line per series,
// histograms summarized as count plus p50/p95/p99 upper bounds. Lines
// within a family are sorted by label value for stable output.
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, f := range r.families() {
		ms := f.snapshot()
		sort.Slice(ms, func(i, j int) bool { return ms[i].labelVal < ms[j].labelVal })
		for _, m := range ms {
			name := series(f.name, f.label, m.labelVal, "", "")
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s %d\n", name, m.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s %d\n", name, m.g.Value())
			case kindGaugeFunc:
				var v int64
				if m.fn != nil {
					v = m.fn()
				}
				fmt.Fprintf(&b, "%s %d\n", name, v)
			case kindHistogram:
				fmt.Fprintf(&b, "%s count=%d p50=%s p95=%s p99=%s\n", name,
					m.h.Count(), fmtDur(m.h.Quantile(0.50)), fmtDur(m.h.Quantile(0.95)), fmtDur(m.h.Quantile(0.99)))
			}
		}
	}
	return b.String()
}
