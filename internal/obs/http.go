package obs

import (
	"io"
	"net/http"
	"net/http/pprof"
)

// Handler serves the operational HTTP surface audbd exposes behind
// -metrics-addr: /metrics renders every given registry in Prometheus
// text exposition format, /healthz answers liveness probes, and
// /debug/pprof/* serves the standard runtime profiles.
func Handler(regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			r.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
