package worlds

import (
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

func row(vs ...int64) types.Tuple {
	out := make(types.Tuple, len(vs))
	for i, v := range vs {
		out[i] = types.Int(v)
	}
	return out
}

func TestXTupleBasics(t *testing.T) {
	x := XTuple{Alts: []types.Tuple{row(1), row(2)}, Probs: []float64{0.3, 0.5}}
	if x.P() != 0.8 {
		t.Errorf("P = %f", x.P())
	}
	if !x.IsOptional() {
		t.Error("P<1 means optional")
	}
	if x.BestAlt() != 1 {
		t.Error("best alt")
	}
	y := XTuple{Alts: []types.Tuple{row(1)}}
	if y.IsOptional() || y.P() != 1 || y.BestAlt() != 0 {
		t.Error("certain block")
	}
	z := XTuple{Alts: []types.Tuple{row(1)}, Optional: true}
	if !z.IsOptional() || z.P() != 0.5 {
		t.Error("explicitly optional block")
	}
}

func TestXRelationWorlds(t *testing.T) {
	r := NewXRelation(schema.New("v"))
	r.AddCertain(row(1))
	r.AddBlock(XTuple{Alts: []types.Tuple{row(2), row(3)}})
	r.AddBlock(XTuple{Alts: []types.Tuple{row(4)}, Optional: true})
	if got := r.WorldCount(100); got != 4 {
		t.Errorf("world count %d", got)
	}
	ws, err := r.Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("%d worlds", len(ws))
	}
	// Every world contains (1); exactly one of (2),(3); maybe (4).
	for _, w := range ws {
		if w.Count(row(1)) != 1 {
			t.Error("certain tuple missing")
		}
		if w.Count(row(2))+w.Count(row(3)) != 1 {
			t.Error("block must contribute exactly one alternative")
		}
	}
	if _, err := r.Worlds(2); err == nil {
		t.Error("limit should trigger")
	}
	if r.WorldCount(2) != 3 {
		t.Error("capped world count")
	}
}

func TestSGWAndSample(t *testing.T) {
	r := NewXRelation(schema.New("v"))
	r.AddBlock(XTuple{Alts: []types.Tuple{row(1), row(2)}, Probs: []float64{0.2, 0.7}})
	r.AddBlock(XTuple{Alts: []types.Tuple{row(5)}, Probs: []float64{0.3}}) // absent more likely
	sgw := r.SGW()
	if sgw.Count(row(2)) != 1 {
		t.Error("SGW should pick the 0.7 alternative")
	}
	if sgw.Count(row(5)) != 0 {
		t.Error("SGW should drop the 0.3 block")
	}
	rng := rand.New(rand.NewSource(5))
	counts := map[int64]int{}
	for i := 0; i < 2000; i++ {
		w := r.Sample(rng)
		for _, v := range []int64{1, 2, 5} {
			if w.Count(row(v)) > 0 {
				counts[v]++
			}
		}
	}
	// Frequencies should approximate the marginals.
	if counts[2] < 1200 || counts[2] > 1600 {
		t.Errorf("sampled P(2) ~ %f", float64(counts[2])/2000)
	}
	if counts[5] < 450 || counts[5] > 750 {
		t.Errorf("sampled P(5) ~ %f", float64(counts[5])/2000)
	}
	// Uniform sampling without probabilities.
	u := NewXRelation(schema.New("v"))
	u.AddBlock(XTuple{Alts: []types.Tuple{row(1), row(2)}})
	w := u.Sample(rng)
	if w.Size() != 1 {
		t.Error("uniform block sample")
	}
}

func TestEnumerateDBAndCertainPossible(t *testing.T) {
	r := NewXRelation(schema.New("v"))
	r.AddCertain(row(1))
	r.AddBlock(XTuple{Alts: []types.Tuple{row(1), row(2)}})
	s := NewXRelation(schema.New("w"))
	s.AddBlock(XTuple{Alts: []types.Tuple{row(7)}, Optional: true})
	db := XDB{"r": r, "s": s}
	dbs, err := EnumerateDB(db, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 4 {
		t.Fatalf("%d database worlds", len(dbs))
	}
	if len(db.Schemas()) != 2 {
		t.Error("schemas")
	}
	sgw := db.SGW()
	if sgw["r"].Count(row(1)) != 2 {
		t.Error("db SGW")
	}
	rng := rand.New(rand.NewSource(1))
	if db.Sample(rng)["r"].Size() != 2 {
		t.Error("db sample")
	}
	// Ground truth over the r-worlds.
	ws, err := r.Worlds(10)
	if err != nil {
		t.Fatal(err)
	}
	cert, poss := CertainPossible(ws)
	if cert.Count(row(1)) != 1 { // (1) certain at least once (min over worlds: 1 or 2)
		t.Errorf("certain:\n%s", cert)
	}
	if poss.Count(row(1)) != 2 || poss.Count(row(2)) != 1 {
		t.Errorf("possible:\n%s", poss)
	}
	if c, p := CertainPossible(nil); c != nil || p != nil {
		t.Error("empty results")
	}
	if _, err := EnumerateDB(db, 2); err == nil {
		t.Error("db enumeration limit")
	}
}

func TestCTableWorlds(t *testing.T) {
	// Two variables x,y over {1,2}; row1 = (x); row2 = (y) if x != y;
	// global: true.
	ct := &CTable{
		Schema: schema.New("v"),
		Vars: []CVar{
			{Name: "x", Domain: []types.Value{types.Int(1), types.Int(2)}},
			{Name: "y", Domain: []types.Value{types.Int(1), types.Int(2)}},
		},
	}
	ct.Rows = []CRow{
		{Cells: []CValue{CRef("x")}},
		{Cells: []CValue{CRef("y")}, Local: expr.Neq(ct.Ref("x"), ct.Ref("y"))},
	}
	ws, err := ct.Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	// Valuations: (1,1)->{1}, (1,2)->{1,2}, (2,1)->{2,1}, (2,2)->{2}
	// Distinct worlds: {1}, {1,2}, {2} = 3.
	if len(ws) != 3 {
		t.Fatalf("%d distinct worlds", len(ws))
	}
	sgw, err := ct.SGW(100)
	if err != nil {
		t.Fatal(err)
	}
	if sgw.Count(row(1)) != 1 || sgw.Size() != 1 {
		t.Errorf("SGW:\n%s", sgw)
	}
}

func TestCTableGlobalCondition(t *testing.T) {
	ct := &CTable{
		Schema: schema.New("v"),
		Vars: []CVar{
			{Name: "x", Domain: []types.Value{types.Int(1), types.Int(2), types.Int(3)},
				Probs: []float64{0.2, 0.5, 0.3}},
		},
	}
	ct.Global = expr.Gt(ct.Ref("x"), expr.CInt(1))
	ct.Rows = []CRow{{Cells: []CValue{CRef("x")}}}
	ws, err := ct.Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 { // x=2, x=3
		t.Fatalf("%d worlds", len(ws))
	}
	// Best valuation x=2 (highest prob) satisfies the global condition.
	mu, err := ct.BestValuation(100)
	if err != nil {
		t.Fatal(err)
	}
	if mu[0].AsInt() != 2 {
		t.Errorf("best valuation %v", mu)
	}
	// Unsatisfiable global condition.
	bad := &CTable{
		Schema: schema.New("v"),
		Vars:   []CVar{{Name: "x", Domain: []types.Value{types.Int(1)}}},
		Global: expr.Gt(expr.Col(0, "x"), expr.CInt(9)),
		Rows:   []CRow{{Cells: []CValue{CRef("x")}}},
	}
	if _, err := bad.Worlds(10); err == nil {
		t.Error("unsatisfiable C-table should error")
	}
	if _, err := bad.BestValuation(10); err == nil {
		t.Error("unsatisfiable best valuation should error")
	}
	// Global condition filtering inside BestValuation fallback.
	fall := &CTable{
		Schema: schema.New("v"),
		Vars: []CVar{{Name: "x", Domain: []types.Value{types.Int(1), types.Int(5)},
			Probs: []float64{0.9, 0.1}}},
		Rows: []CRow{{Cells: []CValue{CRef("x")}}},
	}
	fall.Global = expr.Gt(fall.Ref("x"), expr.CInt(2))
	mu, err = fall.BestValuation(10)
	if err != nil || mu[0].AsInt() != 5 {
		t.Errorf("fallback valuation %v err %v", mu, err)
	}
}

func TestCTableUnknownVariable(t *testing.T) {
	ct := &CTable{
		Schema: schema.New("v"),
		Vars:   []CVar{{Name: "x", Domain: []types.Value{types.Int(1)}}},
		Rows:   []CRow{{Cells: []CValue{CRef("nope")}}},
	}
	if _, err := ct.Worlds(10); err == nil {
		t.Error("unknown variable should error")
	}
	if ct.VarIndex("nope") != -1 {
		t.Error("VarIndex missing")
	}
}

func TestCTableValuationLimit(t *testing.T) {
	dom := make([]types.Value, 10)
	for i := range dom {
		dom[i] = types.Int(int64(i))
	}
	ct := &CTable{
		Schema: schema.New("v"),
		Vars: []CVar{
			{Name: "a", Domain: dom}, {Name: "b", Domain: dom}, {Name: "c", Domain: dom},
		},
		Rows: []CRow{{Cells: []CValue{CRef("a")}}},
	}
	if _, err := ct.Worlds(100); err == nil {
		t.Error("valuation explosion should error")
	}
}
