// Package worlds implements the incomplete and probabilistic database
// models the paper translates into AU-DBs (Sections 3.2 and 11):
// tuple-independent databases (TI-DBs), block-independent x-DBs, and
// C-tables, together with possible-world enumeration and exact
// certain/possible ground truth used by tests and accuracy metrics.
package worlds

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// XTuple is one block of a block-independent database: a set of mutually
// exclusive alternative tuples, at most one of which appears in any world.
// Probs, when present, are per-alternative marginal probabilities; the
// block is optional iff Optional is set (incomplete semantics) or the
// probabilities sum below one (probabilistic semantics).
type XTuple struct {
	Alts     []types.Tuple
	Probs    []float64
	Optional bool
}

// P returns the total probability of the block (1 when no probabilities
// are attached and the block is not optional).
func (x *XTuple) P() float64 {
	if x.Probs == nil {
		if x.Optional {
			return 0.5
		}
		return 1
	}
	var p float64
	for _, q := range x.Probs {
		p += q
	}
	return p
}

// IsOptional reports whether some world omits the block entirely.
func (x *XTuple) IsOptional() bool {
	if x.Optional {
		return true
	}
	return x.Probs != nil && x.P() < 1-1e-9
}

// BestAlt returns the index of the highest-probability alternative
// (pickMax of Section 11.2; first alternative wins ties or when no
// probabilities are attached).
func (x *XTuple) BestAlt() int {
	if x.Probs == nil {
		return 0
	}
	best := 0
	for i, p := range x.Probs {
		if p > x.Probs[best] {
			best = i
		}
	}
	return best
}

// XRelation is a block-independent (x-)relation.
type XRelation struct {
	Schema schema.Schema
	Tuples []XTuple
}

// NewXRelation creates an empty x-relation.
func NewXRelation(s schema.Schema) *XRelation { return &XRelation{Schema: s} }

// AddCertain appends a certain (single-alternative, non-optional) block.
func (r *XRelation) AddCertain(t types.Tuple) {
	r.Tuples = append(r.Tuples, XTuple{Alts: []types.Tuple{t}})
}

// AddBlock appends a block of alternatives.
func (r *XRelation) AddBlock(x XTuple) { r.Tuples = append(r.Tuples, x) }

// WorldCount returns the number of possible worlds (capped multiplication).
func (r *XRelation) WorldCount(cap int64) int64 {
	n := int64(1)
	for i := range r.Tuples {
		c := int64(len(r.Tuples[i].Alts))
		if r.Tuples[i].IsOptional() {
			c++
		}
		n *= c
		if n > cap {
			return cap + 1
		}
	}
	return n
}

// Worlds enumerates all possible worlds; it fails when more than limit
// worlds would be produced.
func (r *XRelation) Worlds(limit int) ([]*bag.Relation, error) {
	if c := r.WorldCount(int64(limit)); c > int64(limit) {
		return nil, fmt.Errorf("worlds: more than %d possible worlds", limit)
	}
	combos := []*bag.Relation{bag.New(r.Schema)}
	for i := range r.Tuples {
		blk := &r.Tuples[i]
		var next []*bag.Relation
		for _, w := range combos {
			for _, alt := range blk.Alts {
				nw := w.Clone()
				nw.Add(alt, 1)
				next = append(next, nw)
			}
			if blk.IsOptional() {
				next = append(next, w.Clone())
			}
		}
		combos = next
	}
	for _, w := range combos {
		w.Merge()
	}
	return combos, nil
}

// SGW returns the selected-guess world: every block contributes its
// highest-probability alternative unless omitting it is more likely
// (Section 11.2).
func (r *XRelation) SGW() *bag.Relation {
	out := bag.New(r.Schema)
	for i := range r.Tuples {
		blk := &r.Tuples[i]
		best := blk.BestAlt()
		keep := true
		if blk.Probs != nil && 1-blk.P() > blk.Probs[best] {
			keep = false
		}
		if keep {
			out.Add(blk.Alts[best], 1)
		}
	}
	return out.Merge()
}

// Sample draws one world at random: each block independently picks an
// alternative by probability (uniform when none are attached), possibly
// none when optional.
func (r *XRelation) Sample(rng *rand.Rand) *bag.Relation {
	out := bag.New(r.Schema)
	for i := range r.Tuples {
		blk := &r.Tuples[i]
		if blk.Probs == nil {
			n := len(blk.Alts)
			if blk.IsOptional() {
				n++
			}
			pick := rng.Intn(n)
			if pick < len(blk.Alts) {
				out.Add(blk.Alts[pick], 1)
			}
			continue
		}
		u := rng.Float64()
		acc := 0.0
		picked := false
		for a, p := range blk.Probs {
			acc += p
			if u < acc {
				out.Add(blk.Alts[a], 1)
				picked = true
				break
			}
		}
		_ = picked // falling through means the block is absent
	}
	return out.Merge()
}

// XDB is a database of x-relations.
type XDB map[string]*XRelation

// SGW extracts the selected-guess world of every relation.
func (db XDB) SGW() bag.DB {
	out := bag.DB{}
	for n, r := range db {
		out[n] = r.SGW()
	}
	return out
}

// Sample draws one deterministic database.
func (db XDB) Sample(rng *rand.Rand) bag.DB {
	out := bag.DB{}
	for n, r := range db {
		out[n] = r.Sample(rng)
	}
	return out
}

// Schemas returns a catalog view.
func (db XDB) Schemas() map[string]schema.Schema {
	out := map[string]schema.Schema{}
	for n, r := range db {
		out[strings.ToLower(n)] = r.Schema
	}
	return out
}

// EnumerateDB enumerates all database-level worlds (the cross product of
// per-relation worlds), up to limit.
func EnumerateDB(db XDB, limit int) ([]bag.DB, error) {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	combos := []bag.DB{{}}
	for _, n := range names {
		ws, err := db[n].Worlds(limit)
		if err != nil {
			return nil, err
		}
		var next []bag.DB
		for _, c := range combos {
			for _, w := range ws {
				nc := bag.DB{}
				for k, v := range c {
					nc[k] = v
				}
				nc[n] = w
				next = append(next, nc)
			}
		}
		if len(next) > limit {
			return nil, fmt.Errorf("worlds: more than %d database worlds", limit)
		}
		combos = next
	}
	return combos, nil
}

// CertainPossible computes, over a set of query results (one per world),
// the exact certain multiplicity (glb = min across worlds) and possible
// multiplicity (lub = max) of every tuple (Section 3.2.1 for K = N).
func CertainPossible(results []*bag.Relation) (certain, possible *bag.Relation) {
	if len(results) == 0 {
		return nil, nil
	}
	s := results[0].Schema
	counts := map[string][]int64{}
	reps := map[string]types.Tuple{}
	for wi, res := range results {
		m := res.Clone().Merge()
		for i, t := range m.Tuples {
			k := t.Key()
			if _, ok := counts[k]; !ok {
				counts[k] = make([]int64, len(results))
				reps[k] = t
			}
			counts[k][wi] = m.Counts[i]
		}
	}
	certain, possible = bag.New(s), bag.New(s)
	for k, cs := range counts {
		mn, mx := cs[0], cs[0]
		for _, c := range cs[1:] {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		if mn > 0 {
			certain.Add(reps[k], mn)
		}
		if mx > 0 {
			possible.Add(reps[k], mx)
		}
	}
	certain.Sort()
	possible.Sort()
	return certain, possible
}
