package worlds

import (
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// CVar is a C-table variable with a finite domain (and optionally a
// probability per domain value, for probabilistic C-tables).
type CVar struct {
	Name   string
	Domain []types.Value
	Probs  []float64
}

// CValue is either a constant or a variable reference in a C-table row.
type CValue struct {
	IsVar bool
	Const types.Value
	Var   string
}

// CConst and CRef build C-table cell values.
func CConst(v types.Value) CValue { return CValue{Const: v} }
func CRef(name string) CValue     { return CValue{IsVar: true, Var: name} }

// CRow is one C-table row: cell values plus a local condition over the
// table's variables (nil means true). Conditions are expr trees whose
// attribute indices refer to variable positions.
type CRow struct {
	Cells []CValue
	Local expr.Expr
}

// CTable is a C-table (Imielinski & Lipski; reviewed in Sections 6.4 and
// 11.3): rows with variables, local conditions and a global condition.
// C-tables use set semantics.
type CTable struct {
	Schema schema.Schema
	Vars   []CVar
	Rows   []CRow
	Global expr.Expr // nil means true
}

// VarIndex resolves a variable name to its position.
func (c *CTable) VarIndex(name string) int {
	for i, v := range c.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Ref builds an expr attribute referencing the named variable, for use in
// local and global conditions.
func (c *CTable) Ref(name string) expr.Expr {
	return expr.Col(c.VarIndex(name), name)
}

// valuations enumerates all assignments over the variable domains.
func (c *CTable) valuations(limit int) ([]types.Tuple, error) {
	n := 1
	for _, v := range c.Vars {
		n *= len(v.Domain)
		if n > limit {
			return nil, fmt.Errorf("worlds: more than %d C-table valuations", limit)
		}
	}
	out := []types.Tuple{{}}
	for _, v := range c.Vars {
		var next []types.Tuple
		for _, val := range out {
			for _, d := range v.Domain {
				next = append(next, append(append(types.Tuple{}, val...), d))
			}
		}
		out = next
	}
	return out, nil
}

// instantiate evaluates one row under a valuation.
func (c *CTable) instantiate(row CRow, mu types.Tuple) (types.Tuple, bool, error) {
	if row.Local != nil {
		v, err := row.Local.Eval(mu)
		if err != nil {
			return nil, false, err
		}
		if !v.AsBool() {
			return nil, false, nil
		}
	}
	t := make(types.Tuple, len(row.Cells))
	for i, cell := range row.Cells {
		if cell.IsVar {
			idx := c.VarIndex(cell.Var)
			if idx < 0 {
				return nil, false, fmt.Errorf("worlds: unknown C-table variable %q", cell.Var)
			}
			t[i] = mu[idx]
		} else {
			t[i] = cell.Const
		}
	}
	return t, true, nil
}

// Worlds enumerates the set of possible worlds represented by the C-table
// (set semantics: every world tuple has multiplicity 1). Valuations
// violating the global condition are skipped; duplicate worlds are merged.
func (c *CTable) Worlds(limit int) ([]*bag.Relation, error) {
	vals, err := c.valuations(limit)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []*bag.Relation
	for _, mu := range vals {
		if c.Global != nil {
			g, err := c.Global.Eval(mu)
			if err != nil {
				return nil, err
			}
			if !g.AsBool() {
				continue
			}
		}
		w := bag.New(c.Schema)
		dedup := map[string]bool{}
		for _, row := range c.Rows {
			t, ok, err := c.instantiate(row, mu)
			if err != nil {
				return nil, err
			}
			if !ok || dedup[t.Key()] {
				continue
			}
			dedup[t.Key()] = true
			w.Add(t, 1)
		}
		key := w.Sorted().String()
		if !seen[key] {
			seen[key] = true
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("worlds: C-table global condition unsatisfiable")
	}
	return out, nil
}

// BestValuation picks the selected-guess valuation: per variable the
// highest-probability domain value (first value when no probabilities),
// falling back to searching for any valuation satisfying the global
// condition.
func (c *CTable) BestValuation(limit int) (types.Tuple, error) {
	mu := make(types.Tuple, len(c.Vars))
	for i, v := range c.Vars {
		best := 0
		for j := range v.Domain {
			if v.Probs != nil && v.Probs[j] > v.Probs[best] {
				best = j
			}
		}
		mu[i] = v.Domain[best]
	}
	if c.Global == nil {
		return mu, nil
	}
	if g, err := c.Global.Eval(mu); err == nil && g.AsBool() {
		return mu, nil
	}
	// Search all valuations for a satisfying one.
	vals, err := c.valuations(limit)
	if err != nil {
		return nil, err
	}
	for _, cand := range vals {
		if g, err := c.Global.Eval(cand); err == nil && g.AsBool() {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("worlds: C-table global condition unsatisfiable")
}

// SGW instantiates the world selected by BestValuation.
func (c *CTable) SGW(limit int) (*bag.Relation, error) {
	mu, err := c.BestValuation(limit)
	if err != nil {
		return nil, err
	}
	w := bag.New(c.Schema)
	dedup := map[string]bool{}
	for _, row := range c.Rows {
		t, ok, err := c.instantiate(row, mu)
		if err != nil {
			return nil, err
		}
		if !ok || dedup[t.Key()] {
			continue
		}
		dedup[t.Key()] = true
		w.Add(t, 1)
	}
	return w, nil
}
