package tpch

import (
	"context"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/translate"
)

func TestGenerateShapes(t *testing.T) {
	db := Generate(Config{Scale: 0.01, Seed: 1})
	for _, tbl := range []string{"region", "nation", "supplier", "customer", "orders", "lineitem"} {
		if db[tbl] == nil || db[tbl].Size() == 0 {
			t.Fatalf("table %s empty", tbl)
		}
	}
	if db["region"].Size() != 5 || db["nation"].Size() != 25 {
		t.Error("dimension table sizes")
	}
	if db["lineitem"].Size() < db["orders"].Size() {
		t.Error("lineitem should dominate")
	}
	// Deterministic generation.
	db2 := Generate(Config{Scale: 0.01, Seed: 1})
	if !db["customer"].Equal(db2["customer"]) {
		t.Error("generation must be deterministic")
	}
	db3 := Generate(Config{Scale: 0.01, Seed: 2})
	if db["customer"].Equal(db3["customer"]) {
		t.Error("different seeds should differ")
	}
}

func TestInjectPDBench(t *testing.T) {
	db := Generate(Config{Scale: 0.01, Seed: 1})
	x := InjectPDBench(db, 0.05, 1.0, 7)
	// Dimension tables stay certain.
	for i := range x["nation"].Tuples {
		if len(x["nation"].Tuples[i].Alts) != 1 {
			t.Fatal("nation should be certain")
		}
	}
	// Some lineitem rows must be uncertain at 5%.
	uncertain := 0
	for i := range x["lineitem"].Tuples {
		if len(x["lineitem"].Tuples[i].Alts) > 1 {
			uncertain++
		}
	}
	if uncertain == 0 {
		t.Fatal("no uncertainty injected")
	}
	frac := float64(uncertain) / float64(len(x["lineitem"].Tuples))
	// 8 eligible columns at 5% each: ~34% of rows have >=1 uncertain cell.
	if frac < 0.15 || frac > 0.6 {
		t.Errorf("uncertain row fraction %.2f out of expected band", frac)
	}
	// The SGW of the injection is the original database.
	if !x["lineitem"].SGW().Equal(db["lineitem"]) {
		t.Error("injection must keep the original database as SGW")
	}
}

func TestAllQueriesRunDeterministically(t *testing.T) {
	db := Generate(Config{Scale: 0.01, Seed: 1})
	cat := ra.CatalogMap(db.Schemas())
	for name := range Queries {
		plan, err := Compile(name, cat)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		res, err := bag.Exec(context.Background(), plan, db)
		if err != nil {
			t.Fatalf("%s: exec: %v", name, err)
		}
		if name == "Q1" && res.Len() == 0 {
			t.Errorf("%s: empty result", name)
		}
	}
	if _, err := Compile("nope", cat); err == nil {
		t.Error("unknown query should error")
	}
}

func TestQueriesOverAUDB(t *testing.T) {
	db := Generate(Config{Scale: 0.005, Seed: 1})
	x := InjectPDBench(db, 0.02, 0.1, 7)
	audb := translate.XDBAll(x)
	cat := ra.CatalogMap(db.Schemas())
	for _, name := range []string{"PB1", "PB2", "Q1", "Q10"} {
		plan, err := Compile(name, cat)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := core.Exec(context.Background(), plan, audb, core.Options{JoinCompression: 16, AggCompression: 16})
		if err != nil {
			t.Fatalf("%s over AU-DB: %v", name, err)
		}
		// The SGW of the AU result must equal the deterministic result
		// over the SGW (= the original database).
		det, err := bag.Exec(context.Background(), plan, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.SGW().Equal(det) {
			t.Errorf("%s: AU-DB SGW diverges from deterministic result", name)
		}
	}
}
