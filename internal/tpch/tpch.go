// Package tpch generates TPC-H-shaped databases and the queries of the
// paper's evaluation (Section 12.1): the PDBench select-project-join
// queries and TPC-H Q1, Q3, Q5, Q7 and Q10, expressed in the SQL subset of
// this repository. Row counts scale with a configurable factor mapped to
// in-memory sizes (DESIGN.md substitution 2; EXPERIMENTS.md records the
// mapping).
package tpch

import (
	"fmt"
	"math/rand"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// Config controls generation.
type Config struct {
	// Scale is the in-repository scale factor: 1.0 generates roughly 60k
	// lineitem rows (the paper's SF1 corresponds to 6M rows on Postgres;
	// our SF is 1/100 of TPC-H's, keeping relative table sizes intact).
	Scale float64
	Seed  int64
}

// Rows computed from the scale factor (minimums keep tiny scales usable).
func (c Config) counts() (suppliers, customers, orders, lineitems int) {
	atLeast := func(n, min int) int {
		if n < min {
			return min
		}
		return n
	}
	suppliers = atLeast(int(100*c.Scale), 5)
	customers = atLeast(int(1500*c.Scale), 10)
	orders = atLeast(int(15000*c.Scale), 30)
	lineitems = atLeast(int(60000*c.Scale), 100)
	return
}

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	returnFlags  = []string{"A", "N", "R"}
	lineStatuses = []string{"O", "F"}
)

// Generate builds the deterministic TPC-H-shaped database.
func Generate(cfg Config) bag.DB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nSupp, nCust, nOrd, nLine := cfg.counts()
	db := bag.DB{}

	region := bag.New(schema.New("r_regionkey", "r_name"))
	for i, n := range regionNames {
		region.Add(types.Tuple{types.Int(int64(i)), types.String(n)}, 1)
	}
	db["region"] = region

	nation := bag.New(schema.New("n_nationkey", "n_name", "n_regionkey"))
	for i, n := range nationNames {
		nation.Add(types.Tuple{
			types.Int(int64(i)), types.String(n), types.Int(int64(i % 5)),
		}, 1)
	}
	db["nation"] = nation

	supplier := bag.New(schema.New("s_suppkey", "s_name", "s_nationkey", "s_acctbal"))
	for i := 0; i < nSupp; i++ {
		supplier.Add(types.Tuple{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("Supplier#%05d", i)),
			types.Int(rng.Int63n(int64(len(nationNames)))),
			types.Float(float64(rng.Intn(1000000))/100 - 1000),
		}, 1)
	}
	db["supplier"] = supplier

	customer := bag.New(schema.New("c_custkey", "c_name", "c_nationkey", "c_acctbal", "c_mktsegment"))
	for i := 0; i < nCust; i++ {
		customer.Add(types.Tuple{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("Customer#%06d", i)),
			types.Int(rng.Int63n(int64(len(nationNames)))),
			types.Float(float64(rng.Intn(1100000))/100 - 1000),
			types.String(segments[rng.Intn(len(segments))]),
		}, 1)
	}
	db["customer"] = customer

	orders := bag.New(schema.New("o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_shippriority"))
	orderDates := make([]int64, nOrd)
	for i := 0; i < nOrd; i++ {
		orderDates[i] = rng.Int63n(2400) // day number within the 6.5-year window
		orders.Add(types.Tuple{
			types.Int(int64(i)),
			types.Int(rng.Int63n(int64(nCust))),
			types.String([]string{"O", "F", "P"}[rng.Intn(3)]),
			types.Float(float64(rng.Intn(45000000)) / 100),
			types.Int(orderDates[i]),
			types.Int(0),
		}, 1)
	}
	db["orders"] = orders

	lineitem := bag.New(schema.New("l_orderkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_shipdate"))
	for i := 0; i < nLine; i++ {
		ord := rng.Int63n(int64(nOrd))
		ship := orderDates[ord] + 1 + rng.Int63n(120)
		lineitem.Add(types.Tuple{
			types.Int(ord),
			types.Int(rng.Int63n(int64(nSupp))),
			types.Int(1 + rng.Int63n(50)),
			types.Float(float64(900+rng.Intn(100000)) / 10),
			types.Float(float64(rng.Intn(11)) / 100),
			types.Float(float64(rng.Intn(9)) / 100),
			types.String(returnFlags[rng.Intn(len(returnFlags))]),
			types.String(lineStatuses[rng.Intn(len(lineStatuses))]),
			types.Int(ship),
		}, 1)
	}
	db["lineitem"] = lineitem
	return db
}

// InjectPDBench applies PDBench-style uncertainty: `cellProb` of the
// eligible cells get up to 8 alternatives spanning `rangeFrac` of the
// column domain (1.0 = the whole domain, PDBench's setup). Dimension
// tables (region, nation) stay certain, mirroring PDBench which seeds
// uncertainty in the large data-bearing tables.
func InjectPDBench(db bag.DB, cellProb, rangeFrac float64, seed int64) worlds.XDB {
	out := worlds.XDB{}
	for name, rel := range db {
		if name == "region" || name == "nation" {
			x := worlds.NewXRelation(rel.Schema)
			for i, t := range rel.Tuples {
				for k := int64(0); k < rel.Counts[i]; k++ {
					x.AddCertain(t)
				}
			}
			out[name] = x
			continue
		}
		sub := synth.Inject(bag.DB{name: rel}, synth.InjectConfig{
			CellProb:  cellProb,
			MaxAlts:   8,
			RangeFrac: rangeFrac,
			Seed:      seed + int64(len(name)),
		})
		out[name] = sub[name]
	}
	return out
}

// Queries of the evaluation, in the repository's SQL subset. Dates are day
// numbers; query constants follow the TPC-H templates' selectivity.
var Queries = map[string]string{
	// PDBench select-project-join workload.
	"PB1": `SELECT c_custkey, c_name, c_acctbal FROM customer WHERE c_acctbal > 4000`,
	"PB2": `SELECT c.c_name, o.o_totalprice FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_totalprice > 200000`,
	"PB3": `SELECT c.c_name, l.l_extendedprice FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_quantity > 45`,

	// TPC-H queries (simplified to the supported SQL subset).
	"Q1": `SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem WHERE l_shipdate <= 2300
GROUP BY l_returnflag, l_linestatus`,

	"Q3": `SELECT l.l_orderkey, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
     JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 1200 AND l.l_shipdate > 1200
GROUP BY l.l_orderkey`,

	"Q5": `SELECT n.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
     JOIN lineitem l ON o.o_orderkey = l.l_orderkey
     JOIN supplier s ON l.l_suppkey = s.s_suppkey
     JOIN nation n ON s.s_nationkey = n.n_nationkey
     JOIN region r ON n.n_regionkey = r.r_regionkey
WHERE r.r_name = 'ASIA' AND c.c_nationkey = s.s_nationkey
  AND o.o_orderdate >= 365 AND o.o_orderdate < 730
GROUP BY n.n_name`,

	"Q7": `SELECT n1.n_name, n2.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM supplier s JOIN lineitem l ON s.s_suppkey = l.l_suppkey
     JOIN orders o ON o.o_orderkey = l.l_orderkey
     JOIN customer c ON c.c_custkey = o.o_custkey
     JOIN nation n1 ON s.s_nationkey = n1.n_nationkey
     JOIN nation n2 ON c.c_nationkey = n2.n_nationkey
WHERE ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
    OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
  AND l.l_shipdate BETWEEN 1095 AND 1825
GROUP BY n1.n_name, n2.n_name`,

	"Q10": `SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue, n.n_name
FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
     JOIN lineitem l ON o.o_orderkey = l.l_orderkey
     JOIN nation n ON c.c_nationkey = n.n_nationkey
WHERE o.o_orderdate >= 800 AND o.o_orderdate < 890 AND l.l_returnflag = 'R'
GROUP BY c.c_custkey, c.c_name, n.n_name`,
}

// Compile builds the RA plan of a named query against a catalog.
func Compile(name string, cat ra.Catalog) (ra.Node, error) {
	q, ok := Queries[name]
	if !ok {
		return nil, fmt.Errorf("tpch: unknown query %q", name)
	}
	return sql.Compile(q, cat)
}
