package stats

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

func certRow(vals ...int64) core.Tuple {
	t := make(rangeval.Tuple, len(vals))
	for i, v := range vals {
		t[i] = rangeval.Certain(types.Int(v))
	}
	return core.Tuple{Vals: t, M: core.One}
}

func TestCollectBasic(t *testing.T) {
	rel := core.New(schema.New("a", "b"))
	rel.Add(certRow(1, 10))
	rel.Add(certRow(2, 10))
	rel.Add(certRow(2, 20))
	rel.Add(core.Tuple{
		Vals: rangeval.Tuple{
			rangeval.New(types.Int(3), types.Int(4), types.Int(7)),
			rangeval.Certain(types.Int(30)),
		},
		M: core.Mult{Lo: 0, SG: 1, Hi: 2},
	})
	ts := Collect("t", rel)
	if ts.Rows != 4 || ts.CertainRows != 3 || ts.SGRows != 4 || ts.PossibleRows != 5 {
		t.Fatalf("row counts: %+v", ts)
	}
	if got := ts.CertainTupleFrac; got != 0.75 {
		t.Fatalf("CertainTupleFrac = %v", got)
	}
	a, b := ts.Cols[0], ts.Cols[1]
	if a.Name != "a" || b.Name != "b" {
		t.Fatalf("col names: %+v", ts.Cols)
	}
	if types.Compare(a.MinSG, types.Int(1)) != 0 || types.Compare(a.MaxSG, types.Int(4)) != 0 {
		t.Fatalf("a min/max: %s..%s", a.MinSG, a.MaxSG)
	}
	if a.NDV != 3 || b.NDV != 3 { // a: {1,2,4}, b: {10,20,30}
		t.Fatalf("ndv: a=%d b=%d", a.NDV, b.NDV)
	}
	if !a.Numeric || !b.Numeric {
		t.Fatalf("numeric flags: %+v %+v", a, b)
	}
	if a.CertainFrac != 0.75 || b.CertainFrac != 1 {
		t.Fatalf("certain fracs: a=%v b=%v", a.CertainFrac, b.CertainFrac)
	}
	// One uncertain row of width 7-3=4 over 4 rows.
	if math.Abs(a.MeanWidth-1.0) > 1e-9 {
		t.Fatalf("a mean width = %v", a.MeanWidth)
	}
	if b.MeanWidth != 0 {
		t.Fatalf("b mean width = %v", b.MeanWidth)
	}
	if s := ts.String(); s == "" {
		t.Fatal("empty rendering")
	}
}

func TestCollectNonNumericAndInfinite(t *testing.T) {
	rel := core.New(schema.New("s", "x"))
	rel.Add(core.Tuple{
		Vals: rangeval.Tuple{
			rangeval.Certain(types.String("hi")),
			rangeval.New(types.NegInf(), types.Int(5), types.PosInf()),
		},
		M: core.One,
	})
	rel.Add(certRow0(types.String("lo"), types.Int(15)))
	ts := Collect("t", rel)
	if ts.Cols[0].Numeric {
		t.Fatal("string column marked numeric")
	}
	if ts.Cols[0].MeanWidth != 0 {
		t.Fatalf("string mean width = %v", ts.Cols[0].MeanWidth)
	}
	// The unbounded row contributes the SG spread (15-5=10) over 2 rows.
	if got := ts.Cols[1].MeanWidth; math.Abs(got-5) > 1e-9 {
		t.Fatalf("inf mean width = %v", got)
	}
}

func certRow0(vals ...types.Value) core.Tuple {
	t := make(rangeval.Tuple, len(vals))
	for i, v := range vals {
		t[i] = rangeval.Certain(v)
	}
	return core.Tuple{Vals: t, M: core.One}
}

func TestCollectEmpty(t *testing.T) {
	ts := Collect("e", core.New(schema.New("a")))
	if ts.Rows != 0 || ts.CertainTupleFrac != 1 {
		t.Fatalf("empty: %+v", ts)
	}
	if !ts.Cols[0].MinSG.IsNull() || ts.Cols[0].NDV != 0 || ts.Cols[0].CertainFrac != 1 {
		t.Fatalf("empty col: %+v", ts.Cols[0])
	}
}

// TestDistinctCounterLarge: beyond the exact cap the adaptive-sampling
// estimate must stay within a reasonable relative error.
func TestDistinctCounterLarge(t *testing.T) {
	rel := core.New(schema.New("a"))
	n := 50000
	for i := 0; i < n; i++ {
		rel.Add(certRow(int64(i)))
	}
	ts := Collect("t", rel)
	got := float64(ts.Cols[0].NDV)
	if got < 0.7*float64(n) || got > 1.3*float64(n) {
		t.Fatalf("ndv estimate %v for %d distinct", got, n)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	g := NewRegistry()
	rel := core.New(schema.New("a"))
	rel.Add(certRow(1))
	g.Registered("T1", rel)
	ts, ok := g.TableStats("t1") // case-folded lookup
	if !ok || ts.Rows != 1 || ts.Table != "T1" {
		t.Fatalf("lookup after register: %v %v", ts, ok)
	}
	// Replacement invalidates: new relation, new stats.
	rel2 := core.New(schema.New("a"))
	rel2.Add(certRow(1))
	rel2.Add(certRow(2))
	g.Registered("t1", rel2)
	if ts, ok := g.TableStats("T1"); !ok || ts.Rows != 2 {
		t.Fatalf("stats after replace: %+v %v", ts, ok)
	}
	// Analyze picks up in-place mutation.
	rel2.Add(certRow(3))
	if ts, ok := g.TableStats("t1"); !ok || ts.Rows != 2 {
		t.Fatalf("cached stats should be stale until Analyze: %+v %v", ts, ok)
	}
	if ts, ok := g.Analyze("t1"); !ok || ts.Rows != 3 {
		t.Fatalf("Analyze: %+v %v", ts, ok)
	}
	if ts, ok := g.TableStats("t1"); !ok || ts.Rows != 3 {
		t.Fatalf("stats after Analyze: %+v %v", ts, ok)
	}
	// Dropped tables are never served again.
	g.Dropped("T1")
	if _, ok := g.TableStats("t1"); ok {
		t.Fatal("stats served for a dropped table")
	}
	if _, ok := g.Analyze("t1"); ok {
		t.Fatal("Analyze succeeded for a dropped table")
	}
	if g.Len() != 0 {
		t.Fatalf("Len = %d", g.Len())
	}
}

// TestRegistryConcurrency races registration, drops, analyzes and reads;
// run with -race. Lazy collection must compute each entry's stats exactly
// once and never serve stats for a table dropped before the read started.
func TestRegistryConcurrency(t *testing.T) {
	g := NewRegistry()
	rel := core.New(schema.New("a"))
	for i := 0; i < 100; i++ {
		rel.Add(certRow(int64(i % 7)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", w%4)
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					g.Registered(name, rel)
				case 1:
					if ts, ok := g.TableStats(name); ok && ts.Rows != 100 {
						t.Errorf("bad stats: %+v", ts)
					}
				case 2:
					g.Analyze(name)
				case 3:
					g.Dropped(name)
				default:
					g.Len()
				}
			}
		}(w)
	}
	wg.Wait()
}
