package stats

import (
	"strings"
	"sync"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/obs"
)

// Provider resolves a table name to its current statistics. It is the
// planner-facing read interface: the cost-based optimizer depends on this,
// not on the Registry, so tests can substitute fixed statistics.
type Provider interface {
	// TableStats returns the statistics for a registered table, or false
	// when the table is unknown (the planner then falls back to defaults).
	TableStats(name string) (*TableStats, bool)
}

// Registry caches per-table statistics for a catalog. Registration (via
// the core.CatalogObserver hooks) only records the relation — collection
// is deferred to the first TableStats call, so registering a large table
// stays O(1) and tables that are never planned cost nothing. Dropping or
// re-registering a table invalidates its entry immediately: once Dropped
// returns, TableStats reports the table unknown.
//
// All methods are safe for concurrent use. Collection reads the relation
// exactly like query execution does, so mutating a registered relation's
// rows while statistics are being collected is the caller's race to avoid
// (the same contract as core.Catalog).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry // keyed by lowercased name

	// Observability counters (nil until Instrument; a nil obs.Counter
	// drops updates, so the registry works uninstrumented).
	collections   *obs.Counter // deferred stat collections actually run
	invalidations *obs.Counter // entries discarded by re-register/drop/analyze
}

// entry is one table's cached statistics; stats are computed at most once
// per entry (Analyze swaps in a fresh entry to force recollection).
type entry struct {
	name      string
	rel       *core.Relation
	once      sync.Once
	ts        *TableStats
	collected *obs.Counter // owning registry's collection counter
}

func (e *entry) stats() *TableStats {
	e.once.Do(func() {
		e.ts = Collect(e.name, e.rel)
		e.collected.Add(1)
	})
	return e.ts
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// Instrument registers the registry's counters with reg: how many
// deferred collections actually ran, and how many cached entries were
// invalidated (drop, re-register, or explicit Analyze). Call before
// the registry sees traffic.
func (g *Registry) Instrument(reg *obs.Registry) {
	g.collections = reg.Counter("audb_stats_collections_total",
		"table statistics collections run (deferred, on first planner use)")
	g.invalidations = reg.Counter("audb_stats_invalidations_total",
		"cached table statistics invalidated by drop, re-register, or ANALYZE")
}

// Registered implements core.CatalogObserver: (re-)registering a table
// discards any cached statistics and records the new relation.
func (g *Registry) Registered(name string, r *core.Relation) {
	key := strings.ToLower(name)
	g.mu.Lock()
	if _, existed := g.entries[key]; existed {
		g.invalidations.Add(1)
	}
	g.entries[key] = &entry{name: name, rel: r, collected: g.collections}
	g.mu.Unlock()
}

// Dropped implements core.CatalogObserver: the entry is removed, so stats
// for a dropped table are never served again.
func (g *Registry) Dropped(name string) {
	key := strings.ToLower(name)
	g.mu.Lock()
	if _, existed := g.entries[key]; existed {
		g.invalidations.Add(1)
	}
	delete(g.entries, key)
	g.mu.Unlock()
}

// Prime installs pre-collected statistics for a table, so ingest paths
// that already streamed every row through a Collector (COPY, Analyze's
// representation pass) don't pay a second collection pass. Call after the
// relation is registered in the catalog: registration invalidates the
// entry, so the order must be Register, then Prime. The statistics only
// land while the cached entry still records the same relation — if a
// concurrent Register or Drop changed the table between collection and
// Prime, the stale statistics are discarded rather than installed (they
// describe a relation the catalog no longer serves).
func (g *Registry) Prime(name string, rel *core.Relation, ts *TableStats) {
	key := strings.ToLower(name)
	e := &entry{name: name, rel: rel, collected: g.collections}
	e.once.Do(func() { e.ts = ts })
	g.mu.Lock()
	if cur, ok := g.entries[key]; ok && cur.rel == rel {
		g.entries[key] = e
		g.invalidations.Add(1)
	}
	g.mu.Unlock()
}

// TableStats implements Provider, collecting the statistics on first use.
func (g *Registry) TableStats(name string) (*TableStats, bool) {
	g.mu.RLock()
	e := g.entries[strings.ToLower(name)]
	g.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	return e.stats(), true
}

// Analyze forces a fresh collection for the named table (e.g. after its
// rows were mutated in place) and returns the new statistics; false when
// the table is not registered. Concurrent readers keep the old entry
// until the swap, so a query planning mid-analyze sees a consistent
// (possibly stale) snapshot, never a half-built one.
func (g *Registry) Analyze(name string) (*TableStats, bool) {
	key := strings.ToLower(name)
	g.mu.Lock()
	old := g.entries[key]
	if old == nil {
		g.mu.Unlock()
		return nil, false
	}
	fresh := &entry{name: old.name, rel: old.rel, collected: g.collections}
	g.entries[key] = fresh
	g.invalidations.Add(1)
	g.mu.Unlock()
	return fresh.stats(), true
}

// Len returns the number of tables with (lazily collected) entries.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}
