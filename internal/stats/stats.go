// Package stats computes catalog statistics over AU-relations for the
// cost-based planner. A TableStats summarizes one range relation: stored
// tuple counts, the multiplicity mass (certain / selected-guess /
// possible), and per-column summaries of the selected-guess values (min,
// max, estimated number of distinct values) together with two measures of
// attribute-level uncertainty — the mean bound width and the certain
// fraction — that the cardinality estimator (internal/opt) uses to widen
// selectivities so uncertain predicates never under-estimate.
//
// Collection is one O(rows × columns) pass. Distinct values are counted
// exactly up to a cap and by adaptive sampling beyond it (hashes are kept
// only while they fall under a shrinking threshold; the estimate scales
// the surviving count back up), so collection memory stays bounded on any
// table size.
//
// The Registry caches statistics per registered table, collects them
// lazily on first use, and invalidates them when a table is dropped or
// replaced; it implements core.CatalogObserver so a core.Catalog keeps it
// in sync, and the Provider interface consumed by the planner.
package stats

import (
	"fmt"
	"hash"
	"hash/fnv"
	"strings"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// ColStats summarizes one column of a range relation. All value-level
// measures are over the selected-guess components; the width and certain
// fraction describe the [lb, ub] bounds around them.
type ColStats struct {
	// Name is the attribute name.
	Name string
	// MinSG/MaxSG bound the selected-guess values (types.Compare order).
	// Null for an empty relation.
	MinSG, MaxSG types.Value
	// NDV is the estimated number of distinct selected-guess values
	// (exact below the collection cap).
	NDV int64
	// Numeric reports whether every non-null selected-guess value is
	// numeric, i.e. MeanWidth and the numeric Min/Max are meaningful.
	Numeric bool
	// MeanWidth is the mean numeric bound width ub-lb across all rows
	// (certain values contribute 0; an infinite bound contributes the
	// column's selected-guess spread). 0 for non-numeric columns.
	MeanWidth float64
	// CertainFrac is the fraction of rows whose value is certain
	// (lb = sg = ub). 1 for an empty relation.
	CertainFrac float64
}

// TableStats summarizes one registered relation.
type TableStats struct {
	// Table is the name the relation was registered under.
	Table string
	// Rows is the number of stored AU-tuples.
	Rows int64
	// CertainRows/SGRows/PossibleRows are the total lower-bound,
	// selected-guess and upper-bound multiplicities.
	CertainRows, SGRows, PossibleRows int64
	// CertainTupleFrac is the fraction of stored tuples all of whose
	// attribute values are certain — exactly the tuples the hybrid join
	// can hash; the remainder pays the quadratic overlap path.
	CertainTupleFrac float64
	// Cols holds the per-column summaries in schema order.
	Cols []ColStats
	// Storage is the relation's storage representation at collection time
	// (dense row-major or sparse columnar).
	Storage core.Repr
	// FlatCols is the number of columns stored as flat value slices;
	// 0 for a dense relation.
	FlatCols int
	// MultFlat reports whether row multiplicities are stored as single
	// certain counts; false for a dense relation.
	MultFlat bool
}

// distinctCap bounds the exact distinct-counting set per column; beyond
// it the counter switches to adaptive sampling (halving the kept-hash
// threshold until the set fits) and Estimate scales back up.
const distinctCap = 4096

// distinctCounter estimates the number of distinct 64-bit hashes fed to
// add, exactly while fewer than distinctCap survive.
type distinctCounter struct {
	set   map[uint64]struct{}
	shift uint
}

// mix64 is a 64-bit finalizer (the murmur3 fmix64 constants): FNV sums
// alone are not uniform enough in their high bits for threshold sampling.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (d *distinctCounter) add(h uint64) {
	h = mix64(h)
	if d.set == nil {
		d.set = make(map[uint64]struct{})
	}
	if d.shift > 0 && h>>(64-d.shift) != 0 {
		return
	}
	d.set[h] = struct{}{}
	for len(d.set) > distinctCap {
		d.shift++
		for k := range d.set {
			if k>>(64-d.shift) != 0 {
				delete(d.set, k)
			}
		}
	}
}

func (d *distinctCounter) estimate() int64 {
	return int64(len(d.set)) << d.shift
}

// colAcc accumulates one column's statistics during the collection pass.
type colAcc struct {
	dc         distinctCounter
	min, max   types.Value
	any        bool
	allNumeric bool
	widthSum   float64 // finite numeric widths
	infWidths  int64   // rows whose bound width is unbounded
	certain    int64
}

// Collector accumulates table statistics incrementally, one tuple at a
// time, so streaming ingest (COPY) can collect statistics in the same pass
// that builds the relation instead of re-scanning it afterwards. Add never
// retains its argument; feeding it a reused scratch tuple is safe.
type Collector struct {
	sch        schema.Schema
	ts         *TableStats
	accs       []colAcc
	h          hash.Hash64
	scratch    []byte
	certTuples int64
}

// NewCollector starts a collection pass for a table with the given schema.
func NewCollector(table string, sch schema.Schema) *Collector {
	c := &Collector{
		sch:  sch,
		ts:   &TableStats{Table: table, CertainTupleFrac: 1},
		accs: make([]colAcc, sch.Arity()),
		h:    fnv.New64a(),
	}
	for i := range c.accs {
		c.accs[i].allNumeric = true
	}
	return c
}

// Add folds one tuple into the running statistics.
func (c *Collector) Add(t core.Tuple) {
	ts := c.ts
	ts.Rows++
	ts.CertainRows += t.M.Lo
	ts.SGRows += t.M.SG
	ts.PossibleRows += t.M.Hi
	if t.Vals.IsCertain() {
		c.certTuples++
	}
	for i := 0; i < len(c.accs) && i < len(t.Vals); i++ {
		a := &c.accs[i]
		v := t.Vals[i]
		sg := v.SG
		if !a.any {
			a.min, a.max = sg, sg
			a.any = true
		} else {
			a.min = types.Min(a.min, sg)
			a.max = types.Max(a.max, sg)
		}
		if !sg.IsNull() && !sg.IsNumeric() {
			a.allNumeric = false
		}
		if v.IsCertain() {
			a.certain++
		} else if v.Lo.IsNumeric() && v.Hi.IsNumeric() {
			a.widthSum += v.Hi.AsFloat() - v.Lo.AsFloat()
		} else {
			a.infWidths++
		}
		c.h.Reset()
		c.scratch = sg.AppendKey(c.scratch[:0])
		c.h.Write(c.scratch)
		a.dc.add(c.h.Sum64())
	}
}

// Finish computes the final statistics. The collector must not be used
// afterwards.
func (c *Collector) Finish() *TableStats {
	ts := c.ts
	if ts.Rows > 0 {
		ts.CertainTupleFrac = float64(c.certTuples) / float64(ts.Rows)
	}
	ts.Cols = make([]ColStats, len(c.accs))
	for i := range ts.Cols {
		a := &c.accs[i]
		cs := ColStats{Name: c.sch.Attrs[i], CertainFrac: 1}
		if a.any {
			cs.MinSG, cs.MaxSG = a.min, a.max
			cs.NDV = a.dc.estimate()
			cs.Numeric = a.allNumeric
			cs.CertainFrac = float64(a.certain) / float64(ts.Rows)
			if cs.Numeric {
				// Unbounded widths contribute the selected-guess spread:
				// the widest window the estimator will ever consider.
				spread := 0.0
				if a.min.IsNumeric() && a.max.IsNumeric() {
					spread = a.max.AsFloat() - a.min.AsFloat()
				}
				cs.MeanWidth = (a.widthSum + float64(a.infWidths)*spread) / float64(ts.Rows)
			}
		} else {
			cs.MinSG, cs.MaxSG = types.Null(), types.Null()
		}
		ts.Cols[i] = cs
	}
	return ts
}

// SetStorage records the storage representation of the collected relation
// the way Collect does, for callers that finish a collection against a
// relation built elsewhere (COPY ingest).
func (ts *TableStats) SetStorage(rel *core.Relation) {
	ts.Storage, ts.FlatCols, ts.MultFlat = rel.StorageDetail()
}

// Collect computes the statistics of rel in one pass. The relation is only
// read; callers must not mutate it concurrently (the same contract as
// query execution). Both storage representations are supported.
func Collect(table string, rel *core.Relation) *TableStats {
	c := NewCollector(table, rel.Schema)
	// EachTuple may reuse a scratch tuple; Add never retains it. The
	// callback cannot fail, so EachTuple cannot either.
	_ = rel.EachTuple(func(t core.Tuple) error {
		c.Add(t)
		return nil
	})
	ts := c.Finish()
	ts.SetStorage(rel)
	return ts
}

// String renders the statistics the way audbsh \stats prints them.
func (t *TableStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "table %s: %d rows (certain %d, sg %d, possible %d), %.1f%% certain tuples\n",
		t.Table, t.Rows, t.CertainRows, t.SGRows, t.PossibleRows, 100*t.CertainTupleFrac)
	if t.Storage == core.ReprSparse {
		mult := "triple"
		if t.MultFlat {
			mult = "flat"
		}
		fmt.Fprintf(&sb, "storage: sparse (%d/%d flat columns, %s multiplicities)\n",
			t.FlatCols, len(t.Cols), mult)
	} else {
		sb.WriteString("storage: dense\n")
	}
	w := len("column")
	for _, c := range t.Cols {
		if len(c.Name) > w {
			w = len(c.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %-8s %-10s %-10s %-10s %s\n", w, "column", "ndv", "min", "max", "width", "certain")
	for _, c := range t.Cols {
		width := "-"
		if c.Numeric {
			width = fmt.Sprintf("%.2f", c.MeanWidth)
		}
		fmt.Fprintf(&sb, "%-*s  %-8d %-10s %-10s %-10s %.1f%%\n",
			w, c.Name, c.NDV, c.MinSG, c.MaxSG, width, 100*c.CertainFrac)
	}
	return sb.String()
}
