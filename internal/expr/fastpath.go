package expr

// CertainFastSafe reports whether e qualifies for the certain-only fast
// path of the execution kernels: for every certain, null-free input tuple,
// Eval over the flat values is bit-identical to EvalRange over the lifted
// [v/v/v] tuple — same value (a certain triple around the deterministic
// result) and same error behavior.
//
// Two constructions break that equivalence and are rejected:
//
//   - Null literals. A certain input tuple cannot carry nulls on the fast
//     path, but a NULL constant re-introduces them, and comparing two
//     certain nulls evaluates to the maybe-triple [F/F/T] under range
//     semantics while deterministic evaluation yields plain false.
//   - Logical connectives whose right operand can fail. Eval
//     short-circuits (FALSE AND 1/0 = FALSE) while EvalRange always
//     evaluates both sides (and errors), so the right subtree of every
//     connective must be incapable of erroring.
//
// Unknown expression node types are rejected conservatively. The check
// walks the expression once; kernels call it per operator invocation, not
// per tuple.
func CertainFastSafe(e Expr) bool {
	switch n := e.(type) {
	case Const:
		return !n.V.IsNull()
	case Attr:
		return true
	case Logic:
		return CertainFastSafe(n.L) && CertainFastSafe(n.R) && errFree(n.R)
	case Not:
		return CertainFastSafe(n.E)
	case Cmp:
		return CertainFastSafe(n.L) && CertainFastSafe(n.R)
	case Arith:
		return CertainFastSafe(n.L) && CertainFastSafe(n.R)
	case If:
		return CertainFastSafe(n.Cond) && CertainFastSafe(n.Then) && CertainFastSafe(n.Else)
	case IsNull:
		return CertainFastSafe(n.E)
	case NAry:
		for _, a := range n.Args {
			if !CertainFastSafe(a) {
				return false
			}
		}
		return true
	}
	return false
}

// errFree reports whether evaluating e can never return an error, so that
// skipping it under deterministic short-circuit cannot hide a failure
// that range evaluation would raise. Arithmetic is never error-free
// (division by zero, type errors on non-numeric data); comparisons and
// connectives are total. Attribute references assume a planner-validated
// index — both semantics bound-check identically on well-formed plans.
func errFree(e Expr) bool {
	switch n := e.(type) {
	case Const, Attr:
		return true
	case Logic:
		return errFree(n.L) && errFree(n.R)
	case Not:
		return errFree(n.E)
	case Cmp:
		return errFree(n.L) && errFree(n.R)
	case If:
		return errFree(n.Cond) && errFree(n.Then) && errFree(n.Else)
	case IsNull:
		return errFree(n.E)
	case NAry:
		if len(n.Args) == 0 {
			return false // zero-argument least/greatest errors
		}
		for _, a := range n.Args {
			if !errFree(a) {
				return false
			}
		}
		return true
	}
	return false // Arith and unknown nodes
}
