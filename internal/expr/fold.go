package expr

import "github.com/audb/audb/internal/types"

// This file implements the static expression analyses and rewrites used by
// the logical optimizer (internal/opt): substitution, structural equality,
// totality, and constant folding. Every rewrite here must be exact under
// BOTH evaluation semantics — deterministic Eval (Definition 4) and
// range-annotated EvalRange (Definition 9) — because the same optimized
// plan is interpreted by the deterministic bag engine, the native AU-DB
// engine, and the Section 10 rewriting middleware.

// Subst rebuilds e with every attribute reference #i replaced by cols[i].
// It is the expression composition used when a predicate or projection is
// pushed through a generalized projection: evaluating the substituted
// expression over the projection's input is exactly evaluating the
// original over the projection's output, under both semantics, because
// Eval and EvalRange are purely compositional in the attribute values.
// Indices outside cols are left untouched (callers validate first).
func Subst(e Expr, cols []Expr) Expr {
	switch n := e.(type) {
	case Const:
		return n
	case Attr:
		if n.Idx >= 0 && n.Idx < len(cols) {
			return cols[n.Idx]
		}
		return n
	case Logic:
		return Logic{Op: n.Op, L: Subst(n.L, cols), R: Subst(n.R, cols)}
	case Not:
		return Not{E: Subst(n.E, cols)}
	case Cmp:
		return Cmp{Op: n.Op, L: Subst(n.L, cols), R: Subst(n.R, cols)}
	case Arith:
		return Arith{Op: n.Op, L: Subst(n.L, cols), R: Subst(n.R, cols)}
	case If:
		return If{Cond: Subst(n.Cond, cols), Then: Subst(n.Then, cols), Else: Subst(n.Else, cols)}
	case IsNull:
		return IsNull{E: Subst(n.E, cols)}
	case NAry:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Subst(a, cols)
		}
		return NAry{Op: n.Op, Args: args}
	}
	return e
}

// Equal reports structural equality of two expressions. String() is not a
// faithful key (an Attr prints its name, not its index), so optimizer
// fixpoint detection and tests use this instead.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case Const:
		y, ok := b.(Const)
		return ok && types.Equal(x.V, y.V) && x.V.Kind() == y.V.Kind()
	case Attr:
		y, ok := b.(Attr)
		return ok && x.Idx == y.Idx && x.Name == y.Name
	case Logic:
		y, ok := b.(Logic)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Not:
		y, ok := b.(Not)
		return ok && Equal(x.E, y.E)
	case Cmp:
		y, ok := b.(Cmp)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Arith:
		y, ok := b.(Arith)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case If:
		y, ok := b.(If)
		return ok && Equal(x.Cond, y.Cond) && Equal(x.Then, y.Then) && Equal(x.Else, y.Else)
	case IsNull:
		y, ok := b.(IsNull)
		return ok && Equal(x.E, y.E)
	case NAry:
		y, ok := b.(NAry)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Total reports whether evaluating e can never raise a runtime error on
// well-typed inputs: it contains no arithmetic (division can fail on a
// zero or zero-spanning divisor; +,-,* can fail on non-numeric operands).
// Comparisons, boolean connectives, IS NULL, least/greatest and the
// conditional are total over the whole domain.
//
// The optimizer uses this to gate rewrites that would evaluate a predicate
// over MORE tuples than the original plan does (pushing a selection below
// a join evaluates it on tuples that never find a join partner; folding a
// selection into a join condition evaluates it on pairs the original
// condition rejects). A total predicate cannot turn those extra
// evaluations into new errors, so the rewrite is observationally exact.
func Total(e Expr) bool {
	switch n := e.(type) {
	case Const, Attr:
		return true
	case Logic:
		return Total(n.L) && Total(n.R)
	case Not:
		return Total(n.E)
	case Cmp:
		return Total(n.L) && Total(n.R)
	case Arith:
		return false
	case If:
		return Total(n.Cond) && Total(n.Then) && Total(n.Else)
	case IsNull:
		return Total(n.E)
	case NAry:
		for _, a := range n.Args {
			if !Total(a) {
				return false
			}
		}
		return true
	}
	return false
}

// boolShaped reports whether e always evaluates to a boolean (or is the
// boolean result of a connective). Logic simplifications that drop a
// connective (true AND x → x) are only value-preserving when x is
// boolean-shaped: the connective coerces its operands to booleans, so
// replacing it by a non-boolean operand would change a projected value.
func boolShaped(e Expr) bool {
	switch n := e.(type) {
	case Const:
		return n.V.Kind() == types.KindBool
	case Logic, Not, Cmp, IsNull:
		return true
	case If:
		return boolShaped(n.Then) && boolShaped(n.Else)
	}
	return false
}

// isConst reports whether e is a constant, returning the value.
func isConst(e Expr) (types.Value, bool) {
	c, ok := e.(Const)
	if !ok {
		return types.Value{}, false
	}
	return c.V, true
}

// isBoolConst reports whether e is a boolean constant.
func isBoolConst(e Expr, want bool) bool {
	v, ok := isConst(e)
	return ok && v.Kind() == types.KindBool && v.AsBool() == want
}

// IsConstTrue reports whether e is the boolean constant true — the
// predicate a trivially-true selection folds to.
func IsConstTrue(e Expr) bool { return isBoolConst(e, true) }

// Fold performs constant folding and boolean simplification. The result
// evaluates identically to e under both semantics on every tuple:
//
//   - a subtree with no attribute references whose deterministic
//     evaluation succeeds is replaced by its value (for constant inputs
//     the range semantics of every operator degenerates to the
//     deterministic result wrapped as a certain value, so the two
//     semantics agree); subtrees whose evaluation fails (division by
//     zero, type errors) are left in place so the runtime error surfaces
//     exactly as before;
//   - IF with a constant condition keeps only the taken branch (both
//     semantics evaluate only that branch when the condition is certain);
//   - boolean units are dropped (true AND x → x, false OR x → x) when x
//     is boolean-shaped, and absorbing constants short out (false AND x →
//     false, true OR x → true) when x is Total — EvalRange does not
//     short-circuit, so dropping a partial x could suppress a runtime
//     error the unoptimized plan raises.
func Fold(e Expr) Expr {
	switch n := e.(type) {
	case Const, Attr:
		return e
	case Logic:
		return foldLogicNode(Logic{Op: n.Op, L: Fold(n.L), R: Fold(n.R)})
	case Not:
		return foldConst(Not{E: Fold(n.E)})
	case Cmp:
		return foldConst(Cmp{Op: n.Op, L: Fold(n.L), R: Fold(n.R)})
	case Arith:
		return foldConst(Arith{Op: n.Op, L: Fold(n.L), R: Fold(n.R)})
	case If:
		c := Fold(n.Cond)
		if isBoolConst(c, true) {
			return Fold(n.Then)
		}
		if v, ok := isConst(c); ok && !(v.Kind() == types.KindBool && v.AsBool()) {
			// Any non-true constant condition selects the ELSE branch
			// under both semantics (truth() coerces non-booleans to false).
			return Fold(n.Else)
		}
		return If{Cond: c, Then: Fold(n.Then), Else: Fold(n.Else)}
	case IsNull:
		return foldConst(IsNull{E: Fold(n.E)})
	case NAry:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Fold(a)
		}
		return foldConst(NAry{Op: n.Op, Args: args})
	}
	return e
}

// foldLogicNode simplifies a connective whose operands are already folded.
func foldLogicNode(n Logic) Expr {
	l, r := n.L, n.R
	if n.Op == OpAnd {
		if isBoolConst(l, true) && boolShaped(r) {
			return r
		}
		if isBoolConst(r, true) && boolShaped(l) {
			return l
		}
		if (constNotTrue(l) && Total(r)) || (constNotTrue(r) && Total(l)) {
			return CBool(false)
		}
	} else {
		if constNotTrue(l) && boolShaped(r) {
			return r
		}
		if constNotTrue(r) && boolShaped(l) {
			return l
		}
		if (isBoolConst(l, true) && Total(r)) || (isBoolConst(r, true) && Total(l)) {
			return CBool(true)
		}
	}
	return foldConst(n)
}

// constNotTrue reports whether e is a constant that truth() maps to false
// (false, null, or any non-boolean constant).
func constNotTrue(e Expr) bool {
	v, ok := isConst(e)
	return ok && !(v.Kind() == types.KindBool && v.AsBool())
}

// foldConst evaluates an attribute-free expression to a constant. The
// expression is kept (so the runtime error still surfaces, and only on
// plans that actually evaluate it) unless BOTH semantics evaluate
// successfully to the same certain value: deterministic evaluation
// short-circuits connectives while range evaluation does not, so an
// error hiding in a det-skipped branch must block the fold.
func foldConst(e Expr) Expr {
	if MaxAttr(e) >= 0 {
		return e
	}
	v, err := e.Eval(nil)
	if err != nil {
		return e
	}
	rv, err := e.EvalRange(nil)
	if err != nil {
		return e
	}
	if !rv.IsCertain() || !types.Equal(rv.SG, v) || rv.SG.Kind() != v.Kind() {
		return e
	}
	return Const{V: v}
}
