package expr

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/audb/audb/internal/types"
)

// vecCols builds random flat columns (null-free: the precondition the
// vectorized path is gated on).
func vecCols(rng *rand.Rand, arity, n int) [][]types.Value {
	cols := make([][]types.Value, arity)
	for c := range cols {
		cols[c] = make([]types.Value, n)
		for i := range cols[c] {
			cols[c][i] = types.Int(int64(rng.Intn(9) - 2))
		}
	}
	return cols
}

func rowOf(cols [][]types.Value, i int) types.Tuple {
	row := make(types.Tuple, len(cols))
	for c := range cols {
		row[c] = cols[c][i]
	}
	return row
}

// vecCorpus is a fixed expression corpus spanning every compilable node
// kind (comparisons, logic, arithmetic, If partitioning, IsNull, n-ary
// folds, nesting).
func vecCorpus() []Expr {
	a, b := Col(0, "a"), Col(1, "b")
	return []Expr{
		Lt(a, CInt(3)),
		Leq(Add(a, b), CInt(4)),
		And(Gt(a, CInt(0)), Or(Eq(b, CInt(1)), Neq(a, b))),
		Not{E: Geq(a, b)},
		Mul(Sub(a, b), CInt(2)),
		If{Cond: Lt(a, CInt(0)), Then: Sub(CInt(0), a), Else: a},
		// The guarded division: the Else branch must never see rows where
		// b is zero — the one-branch-per-row discipline under test.
		If{Cond: Eq(b, CInt(0)), Then: CInt(-1), Else: Div(a, b)},
		IsNull{E: a},
		Least(a, b, CInt(2)),
		Greatest(a, Sub(b, CInt(1))),
		Eq(Least(a, b), Greatest(a, b)),
	}
}

// TestVecMatchesEval: over random flat columns, SelectInto must keep
// exactly the rows where Eval is true, and EvalInto must write exactly
// Eval's value at every live index — the bit-identity the vectorized
// kernels rely on.
func TestVecMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		cols := vecCols(rng, 2, n)
		// Alternate full batches and selection-vector subsets.
		var live []int
		if trial%2 == 1 {
			for i := 0; i < n; i += 1 + rng.Intn(3) {
				live = append(live, i)
			}
		}
		idxs := live
		if idxs == nil {
			for i := 0; i < n; i++ {
				idxs = append(idxs, i)
			}
		}
		for _, e := range vecCorpus() {
			p, ok := CompileVec(e)
			if !ok {
				t.Fatalf("corpus expression did not compile: %s", e)
			}
			sel, err := p.SelectInto(cols, n, live, nil)
			if err != nil {
				t.Fatalf("%s: SelectInto: %v", e, err)
			}
			var want []int
			for _, i := range idxs {
				v, err := e.Eval(rowOf(cols, i))
				if err != nil {
					t.Fatalf("%s: Eval row %d: %v", e, i, err)
				}
				if v.Kind() == types.KindBool && v.AsBool() {
					want = append(want, i)
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("%s: sel %v, want %v", e, sel, want)
			}
			for k := range sel {
				if sel[k] != want[k] {
					t.Fatalf("%s: sel %v, want %v", e, sel, want)
				}
			}

			out := make([]types.Value, n)
			if err := p.EvalInto(cols, n, live, out); err != nil {
				t.Fatalf("%s: EvalInto: %v", e, err)
			}
			for _, i := range idxs {
				want, err := e.Eval(rowOf(cols, i))
				if err != nil {
					t.Fatalf("%s: Eval row %d: %v", e, i, err)
				}
				if types.Compare(out[i], want) != 0 || out[i].IsNull() != want.IsNull() {
					t.Fatalf("%s: row %d = %v, want %v", e, i, out[i], want)
				}
			}
		}
	}
}

// TestVecProgReuse: one Prog re-evaluated over different batches and
// selection vectors must stay correct (its buffers are reused, its
// identity selection cached).
func TestVecProgReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := If{Cond: Eq(Col(1, "b"), CInt(0)), Then: CInt(-1), Else: Div(Col(0, "a"), Col(1, "b"))}
	p, ok := CompileVec(e)
	if !ok {
		t.Fatal("did not compile")
	}
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(64)
		cols := vecCols(rng, 2, n)
		out := make([]types.Value, n)
		if err := p.EvalInto(cols, n, nil, out); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			want, err := e.Eval(rowOf(cols, i))
			if err != nil {
				t.Fatal(err)
			}
			if types.Compare(out[i], want) != 0 {
				t.Fatalf("trial %d row %d = %v, want %v", trial, i, out[i], want)
			}
		}
	}
}

// TestVecErrors: an unguarded division by zero errors out of the batch
// (the caller then re-runs per row for the canonical error), and the
// error set matches Eval's — the batch errors iff some live row's Eval
// errors.
func TestVecErrors(t *testing.T) {
	e := Div(Col(0, "a"), Col(1, "b"))
	p, ok := CompileVec(e)
	if !ok {
		t.Fatal("did not compile")
	}
	cols := [][]types.Value{
		{types.Int(4), types.Int(6)},
		{types.Int(2), types.Int(0)},
	}
	if _, err := p.SelectInto(cols, 2, nil, nil); err == nil {
		t.Fatal("division by zero did not error")
	}
	// With the zero divisor dead in the selection vector, no error.
	out := make([]types.Value, 2)
	if err := p.EvalInto(cols, 2, []int{0}, out); err != nil {
		t.Fatalf("live-only eval: %v", err)
	}
	if types.Compare(out[0], types.Int(2)) != 0 {
		t.Fatalf("out[0] = %v, want 2", out[0])
	}
	// A missing column is an error, not a panic.
	wide, ok := CompileVec(Lt(Col(5, "z"), CInt(1)))
	if !ok {
		t.Fatal("did not compile")
	}
	if _, err := wide.SelectInto(cols, 2, nil, nil); err == nil || !strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("missing column error = %v", err)
	}
}

// TestCompileVecRejects: expressions outside the CertainFastSafe subset
// (or vectorization-specific exclusions) must not compile.
func TestCompileVecRejects(t *testing.T) {
	for _, e := range []Expr{
		C(types.Null()),                         // null constant breaks Eval≡EvalRange
		Least(),                                 // zero-arg n-ary: canonical error path
		And(CBool(true), Div(CInt(1), CInt(0))), // non-errFree right operand
	} {
		if _, ok := CompileVec(e); ok {
			t.Fatalf("%s compiled, want rejection", e)
		}
	}
	if _, ok := CompileVec(Lt(Col(0, "a"), CInt(1))); !ok {
		t.Fatal("safe comparison rejected")
	}
}
