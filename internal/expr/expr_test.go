package expr

import (
	"strings"
	"testing"

	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

func mustEval(t *testing.T, e Expr, tup types.Tuple) types.Value {
	t.Helper()
	v, err := e.Eval(tup)
	if err != nil {
		t.Fatalf("Eval(%s) error: %v", e, err)
	}
	return v
}

func mustRange(t *testing.T, e Expr, tup rangeval.Tuple) rangeval.V {
	t.Helper()
	v, err := e.EvalRange(tup)
	if err != nil {
		t.Fatalf("EvalRange(%s) error: %v", e, err)
	}
	if !v.Valid() {
		t.Fatalf("EvalRange(%s) produced invalid range %v", e, v)
	}
	return v
}

func TestConstAndAttr(t *testing.T) {
	tup := types.Tuple{types.Int(10), types.String("a")}
	if mustEval(t, CInt(3), tup) != types.Int(3) {
		t.Error("const")
	}
	if mustEval(t, Col(0, "x"), tup) != types.Int(10) {
		t.Error("attr")
	}
	if _, err := Col(5, "oob").Eval(tup); err == nil {
		t.Error("out of range attr should error")
	}
	rt := rangeval.CertainTuple(tup)
	if _, err := Col(5, "oob").EvalRange(rt); err == nil {
		t.Error("out of range attr should error (range)")
	}
	if got := mustRange(t, CStr("q"), rt); !got.IsCertain() {
		t.Error("const range should be certain")
	}
	if Col(2, "").String() != "$2" || Col(2, "n").String() != "n" {
		t.Error("attr string")
	}
	if CStr("s").String() != `"s"` || CInt(1).String() != "1" {
		t.Error("const string")
	}
}

func TestArithmeticDetEval(t *testing.T) {
	tup := types.Tuple{types.Int(6), types.Int(4)}
	a, b := Col(0, "a"), Col(1, "b")
	if mustEval(t, Add(a, b), tup) != types.Int(10) {
		t.Error("add")
	}
	if mustEval(t, Sub(a, b), tup) != types.Int(2) {
		t.Error("sub")
	}
	if mustEval(t, Mul(a, b), tup) != types.Int(24) {
		t.Error("mul")
	}
	if mustEval(t, Div(a, b), tup) != types.Float(1.5) {
		t.Error("div")
	}
	if _, err := Div(a, CInt(0)).Eval(tup); err == nil {
		t.Error("div by zero")
	}
	if !strings.Contains(Add(a, b).String(), "+") {
		t.Error("string rendering")
	}
}

func TestComparisonsDetEval(t *testing.T) {
	tup := types.Tuple{types.Int(3), types.Int(5)}
	a, b := Col(0, "a"), Col(1, "b")
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(a, b), false}, {Eq(a, a), true},
		{Neq(a, b), true}, {Lt(a, b), true}, {Lt(b, a), false},
		{Leq(a, a), true}, {Gt(b, a), true}, {Geq(a, b), false},
	}
	for _, c := range cases {
		if got := mustEval(t, c.e, tup).AsBool(); got != c.want {
			t.Errorf("%s = %v want %v", c.e, got, c.want)
		}
	}
	// Null comparisons are false.
	nt := types.Tuple{types.Null(), types.Int(5)}
	if mustEval(t, Eq(a, b), nt).AsBool() || mustEval(t, Lt(a, b), nt).AsBool() {
		t.Error("comparison with null should be false")
	}
	if !mustEval(t, IsNull{E: a}, nt).AsBool() {
		t.Error("IS NULL on null")
	}
	if mustEval(t, IsNull{E: b}, nt).AsBool() {
		t.Error("IS NULL on non-null")
	}
}

func TestLogicDetEval(t *testing.T) {
	tup := types.Tuple{types.Bool(true), types.Bool(false)}
	a, b := Col(0, "a"), Col(1, "b")
	if !mustEval(t, And(a, Not{b}), tup).AsBool() {
		t.Error("true AND NOT false")
	}
	if mustEval(t, And(a, b), tup).AsBool() {
		t.Error("true AND false")
	}
	if !mustEval(t, Or(b, a), tup).AsBool() {
		t.Error("false OR true")
	}
	if And() == nil || Or() == nil {
		t.Error("empty connectives")
	}
	if !mustEval(t, And(), tup).AsBool() {
		t.Error("empty AND is true")
	}
	if mustEval(t, Or(), tup).AsBool() {
		t.Error("empty OR is false")
	}
	// Short circuit: the erroring right side is never evaluated.
	bad := Div(CInt(1), CInt(0))
	if mustEval(t, And(b, Eq(bad, bad)), tup).AsBool() {
		t.Error("short-circuit AND")
	}
	if !mustEval(t, Or(a, Eq(bad, bad)), tup).AsBool() {
		t.Error("short-circuit OR")
	}
}

func TestIfDetEval(t *testing.T) {
	tup := types.Tuple{types.Int(1)}
	e := If{Cond: Eq(Col(0, "x"), CInt(1)), Then: CStr("one"), Else: CStr("other")}
	if mustEval(t, e, tup).AsString() != "one" {
		t.Error("then branch")
	}
	tup[0] = types.Int(2)
	if mustEval(t, e, tup).AsString() != "other" {
		t.Error("else branch")
	}
	if !strings.Contains(e.String(), "IF") {
		t.Error("if rendering")
	}
}

func TestLeastGreatest(t *testing.T) {
	tup := types.Tuple{types.Int(4), types.Int(2), types.Int(9)}
	cols := []Expr{Col(0, ""), Col(1, ""), Col(2, "")}
	if mustEval(t, Least(cols...), tup) != types.Int(2) {
		t.Error("least")
	}
	if mustEval(t, Greatest(cols...), tup) != types.Int(9) {
		t.Error("greatest")
	}
	if _, err := Least().Eval(tup); err == nil {
		t.Error("least() should error")
	}
	if _, err := (Greatest()).EvalRange(rangeval.CertainTuple(tup)); err == nil {
		t.Error("greatest() range should error")
	}
	if !strings.Contains(Least(cols...).String(), "least(") {
		t.Error("least rendering")
	}
}

func rv(lo, sg, hi int64) rangeval.V {
	return rangeval.New(types.Int(lo), types.Int(sg), types.Int(hi))
}

func TestRangeArithmetic(t *testing.T) {
	tup := rangeval.Tuple{rv(1, 2, 3), rv(-4, -3, -3)}
	a, b := Col(0, "a"), Col(1, "b")
	got := mustRange(t, Add(a, b), tup)
	if types.Compare(got.Lo, types.Int(-3)) != 0 || types.Compare(got.Hi, types.Int(0)) != 0 ||
		types.Compare(got.SG, types.Int(-1)) != 0 {
		t.Errorf("add range: %v", got)
	}
	got = mustRange(t, Sub(a, b), tup)
	if types.Compare(got.Lo, types.Int(4)) != 0 || types.Compare(got.Hi, types.Int(7)) != 0 {
		t.Errorf("sub range: %v", got)
	}
	got = mustRange(t, Mul(a, b), tup)
	// products: 1*-4=-4, 1*-3=-3, 3*-4=-12, 3*-3=-9 -> [-12, -3]
	if types.Compare(got.Lo, types.Int(-12)) != 0 || types.Compare(got.Hi, types.Int(-3)) != 0 {
		t.Errorf("mul range: %v", got)
	}
	if types.Compare(got.SG, types.Int(-6)) != 0 {
		t.Errorf("mul sg: %v", got.SG)
	}
}

func TestRangeDiv(t *testing.T) {
	tup := rangeval.Tuple{rv(4, 8, 8), rv(2, 2, 4)}
	got := mustRange(t, Div(Col(0, ""), Col(1, "")), tup)
	if got.Lo.AsFloat() != 1 || got.Hi.AsFloat() != 4 || got.SG.AsFloat() != 4 {
		t.Errorf("div range: %v", got)
	}
	// Divisor spanning zero with nonzero SG: full range.
	tup = rangeval.Tuple{rv(4, 8, 8), rv(-1, 2, 4)}
	got = mustRange(t, Div(Col(0, ""), Col(1, "")), tup)
	if got.Lo.Kind() != types.KindNegInf || got.Hi.Kind() != types.KindPosInf {
		t.Errorf("div by zero-spanning range should be unbounded: %v", got)
	}
	// Certainly zero divisor: error.
	tup = rangeval.Tuple{rv(4, 8, 8), rv(0, 0, 0)}
	if _, err := Div(Col(0, ""), Col(1, "")).EvalRange(tup); err == nil {
		t.Error("division by certain zero should error")
	}
	// Zero SG but nonzero possible: SG path errors.
	tup = rangeval.Tuple{rv(4, 8, 8), rv(0, 0, 4)}
	if _, err := Div(Col(0, ""), Col(1, "")).EvalRange(tup); err == nil {
		t.Error("division with zero SG should error")
	}
}

func TestRangeComparisons(t *testing.T) {
	a, b := Col(0, "a"), Col(1, "b")
	// Disjoint: a < b certainly.
	tup := rangeval.Tuple{rv(1, 2, 3), rv(5, 6, 9)}
	got := mustRange(t, Lt(a, b), tup)
	if !got.Lo.AsBool() || !got.Hi.AsBool() {
		t.Errorf("certainly less: %v", got)
	}
	got = mustRange(t, Eq(a, b), tup)
	if got.Lo.AsBool() || got.Hi.AsBool() {
		t.Errorf("certainly not equal: %v", got)
	}
	// Overlapping: possibly equal, not certainly.
	tup = rangeval.Tuple{rv(1, 2, 5), rv(4, 6, 9)}
	got = mustRange(t, Eq(a, b), tup)
	if got.Lo.AsBool() || !got.Hi.AsBool() {
		t.Errorf("possibly equal: %v", got)
	}
	if got.SG.AsBool() {
		t.Error("sg: 2 != 6")
	}
	// Certain equal values.
	tup = rangeval.Tuple{rv(7, 7, 7), rv(7, 7, 7)}
	got = mustRange(t, Eq(a, b), tup)
	if !got.Lo.AsBool() || !got.Hi.AsBool() {
		t.Errorf("certainly equal: %v", got)
	}
	got = mustRange(t, Neq(a, b), tup)
	if got.Lo.AsBool() || got.Hi.AsBool() {
		t.Errorf("certainly not unequal: %v", got)
	}
	got = mustRange(t, Leq(a, b), tup)
	if !got.Lo.AsBool() || !got.Hi.AsBool() {
		t.Errorf("7 <= 7 certain: %v", got)
	}
	// Geq/Gt coverage.
	tup = rangeval.Tuple{rv(5, 6, 9), rv(1, 2, 3)}
	if got = mustRange(t, Gt(a, b), tup); !got.Lo.AsBool() {
		t.Errorf("certainly greater: %v", got)
	}
	if got = mustRange(t, Geq(a, b), tup); !got.Lo.AsBool() {
		t.Errorf("certainly geq: %v", got)
	}
}

func TestRangeLogicAndNot(t *testing.T) {
	ct, cf := rangeval.CertTrue, rangeval.CertFalse
	mt := rangeval.MaybeTrue // [F/T/T]
	tup := rangeval.Tuple{ct, cf, mt}
	a, b, c := Col(0, ""), Col(1, ""), Col(2, "")
	got := mustRange(t, And(a, c), tup)
	if got.Lo.AsBool() || !got.Hi.AsBool() || !got.SG.AsBool() {
		t.Errorf("T AND maybe: %v", got)
	}
	got = mustRange(t, Or(b, c), tup)
	if got.Lo.AsBool() || !got.Hi.AsBool() {
		t.Errorf("F OR maybe: %v", got)
	}
	got = mustRange(t, Not{c}, tup)
	if got.Lo.AsBool() || !got.Hi.AsBool() || got.SG.AsBool() {
		t.Errorf("NOT maybe: %v", got)
	}
	got = mustRange(t, Not{a}, tup)
	if got.Lo.AsBool() || got.Hi.AsBool() {
		t.Errorf("NOT certain true: %v", got)
	}
}

func TestRangeIf(t *testing.T) {
	// Uncertain condition takes min/max over branches.
	tup := rangeval.Tuple{rangeval.MaybeTrue, rv(1, 2, 3), rv(10, 20, 30)}
	e := If{Cond: Col(0, ""), Then: Col(1, ""), Else: Col(2, "")}
	got := mustRange(t, e, tup)
	if types.Compare(got.Lo, types.Int(1)) != 0 || types.Compare(got.Hi, types.Int(30)) != 0 {
		t.Errorf("if bounds: %v", got)
	}
	if types.Compare(got.SG, types.Int(2)) != 0 {
		t.Errorf("if sg should follow sg cond: %v", got)
	}
	// Certain condition is lazy: the else branch would divide by zero.
	lazyTup := rangeval.Tuple{rangeval.CertTrue, rv(1, 2, 3)}
	lazy := If{Cond: Col(0, ""), Then: Col(1, ""), Else: Div(CInt(1), CInt(0))}
	if _, err := lazy.EvalRange(lazyTup); err != nil {
		t.Errorf("certain-true if must not evaluate else: %v", err)
	}
	lazyTup[0] = rangeval.CertFalse
	lazy = If{Cond: Col(0, ""), Then: Div(CInt(1), CInt(0)), Else: Col(1, "")}
	if _, err := lazy.EvalRange(lazyTup); err != nil {
		t.Errorf("certain-false if must not evaluate then: %v", err)
	}
}

func TestRangeIsNull(t *testing.T) {
	tup := rangeval.Tuple{
		rangeval.Certain(types.Null()),
		rangeval.Certain(types.Int(1)),
		rangeval.New(types.Null(), types.Int(5), types.Int(9)),
	}
	got := mustRange(t, IsNull{Col(0, "")}, tup)
	if !got.Lo.AsBool() || !got.Hi.AsBool() {
		t.Errorf("certainly null: %v", got)
	}
	got = mustRange(t, IsNull{Col(1, "")}, tup)
	if got.Lo.AsBool() || got.Hi.AsBool() {
		t.Errorf("certainly not null: %v", got)
	}
	got = mustRange(t, IsNull{Col(2, "")}, tup)
	if got.Lo.AsBool() || !got.Hi.AsBool() {
		t.Errorf("possibly null: %v", got)
	}
}

func TestRangeLeastGreatest(t *testing.T) {
	tup := rangeval.Tuple{rv(1, 2, 3), rv(0, 5, 9)}
	got := mustRange(t, Least(Col(0, ""), Col(1, "")), tup)
	if types.Compare(got.Lo, types.Int(0)) != 0 || types.Compare(got.Hi, types.Int(3)) != 0 ||
		types.Compare(got.SG, types.Int(2)) != 0 {
		t.Errorf("least range: %v", got)
	}
	got = mustRange(t, Greatest(Col(0, ""), Col(1, "")), tup)
	if types.Compare(got.Lo, types.Int(1)) != 0 || types.Compare(got.Hi, types.Int(9)) != 0 ||
		types.Compare(got.SG, types.Int(5)) != 0 {
		t.Errorf("greatest range: %v", got)
	}
}

func TestMapAttrsAndHelpers(t *testing.T) {
	e := And(Eq(Col(0, "a"), Col(3, "b")), Lt(Add(Col(1, "c"), CInt(1)), Col(0, "a")))
	shifted := ShiftAttrs(e, 10)
	attrs := Attrs(shifted)
	want := map[int]bool{10: true, 13: true, 11: true}
	if len(attrs) != 3 {
		t.Fatalf("attrs: %v", attrs)
	}
	for _, a := range attrs {
		if !want[a] {
			t.Errorf("unexpected attr %d", a)
		}
	}
	if MaxAttr(shifted) != 13 {
		t.Error("MaxAttr")
	}
	if MaxAttr(CInt(0)) != -1 {
		t.Error("MaxAttr of const")
	}
	cj := Conjuncts(e)
	if len(cj) != 2 {
		t.Errorf("conjuncts: %d", len(cj))
	}
	// Full node coverage of MapAttrs.
	all := If{
		Cond: IsNull{Col(0, "")},
		Then: Least(Col(1, ""), CInt(1)),
		Else: Not{Or(Col(2, ""), CBool(false))},
	}
	m := MapAttrs(all, func(a Attr) Attr { a.Idx++; return a })
	if MaxAttr(m) != 3 {
		t.Error("MapAttrs over all node types")
	}
}

func TestEquiPair(t *testing.T) {
	// split at 2: left attrs {0,1}, right attrs {2,3} (as 0,1 on the right)
	e := Eq(Col(0, "l"), Col(3, "r"))
	l, r, ok := EquiPair(e, 2)
	if !ok || l != 0 || r != 1 {
		t.Errorf("EquiPair: %d %d %v", l, r, ok)
	}
	e2 := Eq(Col(2, "r"), Col(1, "l"))
	l, r, ok = EquiPair(e2, 2)
	if !ok || l != 1 || r != 0 {
		t.Errorf("EquiPair flipped: %d %d %v", l, r, ok)
	}
	if _, _, ok := EquiPair(Lt(Col(0, ""), Col(2, "")), 2); ok {
		t.Error("non-eq should not be an equi pair")
	}
	if _, _, ok := EquiPair(Eq(Col(0, ""), Col(1, "")), 2); ok {
		t.Error("same-side eq should not be an equi pair")
	}
	if _, _, ok := EquiPair(Eq(Col(0, ""), CInt(3)), 2); ok {
		t.Error("attr=const should not be an equi pair")
	}
}
