package expr

import (
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

func TestSubstComposes(t *testing.T) {
	// cols: [a+b, 2, a]
	cols := []Expr{
		Add(Col(0, "a"), Col(1, "b")),
		CInt(2),
		Col(0, "a"),
	}
	// pred over projection output: ($0 > $1) AND ($2 <= 4)
	pred := And(Gt(Col(0, ""), Col(1, "")), Leq(Col(2, ""), CInt(4)))
	sub := Subst(pred, cols)

	tup := types.Tuple{types.Int(3), types.Int(1)}
	// Project, then evaluate the original.
	row := make(types.Tuple, len(cols))
	for i, c := range cols {
		v, err := c.Eval(tup)
		if err != nil {
			t.Fatal(err)
		}
		row[i] = v
	}
	want, err := pred.Eval(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sub.Eval(tup)
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(want, got) {
		t.Fatalf("det substitution: want %v, got %v", want, got)
	}

	// Same under range semantics.
	rt := rangeval.Tuple{
		rangeval.New(types.Int(2), types.Int(3), types.Int(4)),
		rangeval.Certain(types.Int(1)),
	}
	rrow := make(rangeval.Tuple, len(cols))
	for i, c := range cols {
		v, err := c.EvalRange(rt)
		if err != nil {
			t.Fatal(err)
		}
		rrow[i] = v
	}
	wantR, err := pred.EvalRange(rrow)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := sub.EvalRange(rt)
	if err != nil {
		t.Fatal(err)
	}
	if wantR.String() != gotR.String() {
		t.Fatalf("range substitution: want %v, got %v", wantR, gotR)
	}
}

func TestExprEqual(t *testing.T) {
	a := And(Eq(Col(0, "a"), CInt(1)), Lt(Col(1, "b"), CInt(2)))
	b := And(Eq(Col(0, "a"), CInt(1)), Lt(Col(1, "b"), CInt(2)))
	if !Equal(a, b) {
		t.Fatal("identical expressions must be Equal")
	}
	if Equal(a, And(Eq(Col(0, "a"), CInt(1)), Lt(Col(1, "b"), CInt(3)))) {
		t.Fatal("different constants must differ")
	}
	if Equal(Col(0, "a"), Col(1, "a")) {
		t.Fatal("same name, different index must differ (String would collide)")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Fatal("nil handling")
	}
	if Equal(CInt(1), CFloat(1)) {
		t.Fatal("kind-distinct constants must differ")
	}
}

func TestTotal(t *testing.T) {
	total := []Expr{
		And(Eq(Col(0, ""), CInt(1)), Not{E: IsNull{E: Col(1, "")}}),
		Least(Col(0, ""), CInt(5)),
		If{Cond: Lt(Col(0, ""), CInt(2)), Then: CBool(true), Else: CBool(false)},
	}
	for _, e := range total {
		if !Total(e) {
			t.Errorf("%s should be total", e)
		}
	}
	partial := []Expr{
		Lt(Div(CInt(1), Col(0, "")), CInt(2)),
		Eq(Add(Col(0, ""), Col(1, "")), CInt(3)),
		If{Cond: CBool(true), Then: Mul(Col(0, ""), CInt(2)), Else: CInt(0)},
	}
	for _, e := range partial {
		if Total(e) {
			t.Errorf("%s should not be total", e)
		}
	}
}

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		in   Expr
		want Expr
	}{
		{Add(CInt(1), CInt(2)), CInt(3)},
		{Eq(Add(CInt(1), CInt(1)), CInt(2)), CBool(true)},
		{And(CBool(true), Lt(Col(0, "a"), CInt(3))), Lt(Col(0, "a"), CInt(3))},
		{Or(CBool(false), Lt(Col(0, "a"), CInt(3))), Lt(Col(0, "a"), CInt(3))},
		{And(CBool(false), Lt(Col(0, "a"), CInt(3))), CBool(false)},
		{Or(CBool(true), Lt(Col(0, "a"), CInt(3))), CBool(true)},
		{If{Cond: CBool(true), Then: Col(0, "a"), Else: Div(CInt(1), CInt(0))}, Col(0, "a")},
		{If{Cond: CInt(7), Then: CInt(1), Else: Col(1, "b")}, Col(1, "b")},
		{Not{E: CBool(false)}, CBool(true)},
	}
	for _, c := range cases {
		got := Fold(c.in)
		if !Equal(got, c.want) {
			t.Errorf("Fold(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestFoldKeepsFailingConstants(t *testing.T) {
	e := Div(CInt(1), CInt(0))
	if !Equal(Fold(e), e) {
		t.Fatal("failing constant division must not fold")
	}
	// Absorption must not skip a partial operand: And(false, 1/0=1) keeps
	// the connective because dropping it would suppress the range-
	// semantics error.
	partial := And(CBool(false), Eq(Div(CInt(1), Col(0, "")), CInt(1)))
	if Equal(Fold(partial), CBool(false)) {
		t.Fatal("absorption over a partial operand must not fire")
	}
	// Unit folding must not replace a boolean context with a non-boolean
	// value: true AND a (a an int column) coerces to bool.
	unit := And(CBool(true), Col(0, "a"))
	if Equal(Fold(unit), Col(0, "a")) {
		t.Fatal("unit folding over a non-boolean operand must not fire")
	}
}

// TestFoldSemanticsPreserved: on random expressions over random tuples,
// Fold changes neither deterministic nor range evaluation (including
// which of them error).
func TestFoldSemanticsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(rng, 3)
		f := Fold(e)
		tup := types.Tuple{types.Int(int64(rng.Intn(5))), types.Int(int64(rng.Intn(5) - 1))}
		wantV, wantErr := e.Eval(tup)
		gotV, gotErr := f.Eval(tup)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("fold changed det error: %s -> %s (%v vs %v)", e, f, wantErr, gotErr)
		}
		if wantErr == nil && !(types.Equal(wantV, gotV) && wantV.Kind() == gotV.Kind()) {
			t.Fatalf("fold changed det value: %s -> %s (%v vs %v)", e, f, wantV, gotV)
		}
		rt := rangeval.Tuple{
			rangeval.New(types.Int(0), types.Int(int64(rng.Intn(3))), types.Int(4)),
			rangeval.Certain(types.Int(int64(rng.Intn(4)))),
		}
		wantR, wantErrR := e.EvalRange(rt)
		gotR, gotErrR := f.EvalRange(rt)
		if (wantErrR == nil) != (gotErrR == nil) {
			t.Fatalf("fold changed range error: %s -> %s (%v vs %v)", e, f, wantErrR, gotErrR)
		}
		if wantErrR == nil && wantR.String() != gotR.String() {
			t.Fatalf("fold changed range value: %s -> %s (%v vs %v)", e, f, wantR, gotR)
		}
	}
}

// randomExpr generates a random total-or-partial expression over two int
// attributes. Division is excluded so that error behaviour differences
// come only from folding bugs, not from zero-spanning divisors that the
// two semantics legitimately treat differently (det errors, range
// saturates).
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return CInt(int64(rng.Intn(4)))
		case 1:
			return CBool(rng.Intn(2) == 0)
		case 2:
			return Col(0, "a")
		default:
			return Col(1, "b")
		}
	}
	l, r := randomExpr(rng, depth-1), randomExpr(rng, depth-1)
	switch rng.Intn(7) {
	case 0:
		return And(l, r)
	case 1:
		return Or(l, r)
	case 2:
		return Not{E: l}
	case 3:
		return Cmp{Op: CmpOp(rng.Intn(6)), L: l, R: r}
	case 4:
		return Arith{Op: ArithOp(rng.Intn(3)), L: l, R: r} // +,-,* — no div
	case 5:
		return If{Cond: randomExpr(rng, depth-1), Then: l, Else: r}
	default:
		return IsNull{E: l}
	}
}
