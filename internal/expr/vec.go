package expr

import (
	"fmt"

	"github.com/audb/audb/internal/types"
)

// Column-at-a-time evaluation for the pipelined executor's vectorized
// kernels. A Prog walks the expression tree once per batch, each node
// producing a whole vector of deterministic values over the live rows of
// flat (certain, null-free) input columns before its parent consumes
// them — the tight slice loops the CPU can prefetch — instead of
// re-walking the tree per row.
//
// The semantics replicate Expr.Eval exactly, per row:
//
//   - Logic evaluates both sides eagerly where Eval short-circuits. That
//     is unobservable here: compilation requires CertainFastSafe, whose
//     Logic case demands an error-free right operand, and the connective's
//     value depends only on both truth values.
//   - If partitions the live rows by the condition's truth and evaluates
//     each branch only on its own partition, preserving Eval's
//     one-branch-per-row discipline (a guarded division never sees the
//     rows its guard excludes).
//   - Any error aborts the batch. The caller re-evaluates the batch
//     row-at-a-time through the canonical per-row kernel, which both
//     reproduces the exact row-order error the reference executor reports
//     and makes the vectorized evaluation order unobservable.
//
// A Prog owns reusable buffers and is not safe for concurrent use; each
// operator instance compiles its own.

// Prog is a compiled column-at-a-time program over flat input columns.
type Prog struct {
	root  *vnode
	attrs []int
	bufs  [][]types.Value
	idxs  [][]int
	seq   []int
}

// vnode mirrors one expression node with its buffer slot assignments.
type vnode struct {
	e            Expr
	kids         []*vnode
	slot         int // value-buffer slot; -1 for leaves
	liveT, liveF int // If partition scratch slots; -1 otherwise
}

// CompileVec compiles e for vectorized evaluation over certain, null-free
// flat columns. ok is false when e is outside the CertainFastSafe subset
// (or uses a form the vectorized evaluator does not support); the caller
// must then use the per-row path.
func CompileVec(e Expr) (*Prog, bool) {
	if !CertainFastSafe(e) {
		return nil, false
	}
	p := &Prog{}
	var nSlots, nIdx int
	root, ok := compileVec(e, &nSlots, &nIdx)
	if !ok {
		return nil, false
	}
	p.root = root
	p.attrs = Attrs(e)
	p.bufs = make([][]types.Value, nSlots)
	p.idxs = make([][]int, nIdx)
	return p, true
}

func compileVec(e Expr, nSlots, nIdx *int) (*vnode, bool) {
	n := &vnode{e: e, slot: -1, liveT: -1, liveF: -1}
	slot := func() {
		n.slot = *nSlots
		*nSlots++
	}
	kids := func(es ...Expr) bool {
		for _, k := range es {
			kn, ok := compileVec(k, nSlots, nIdx)
			if !ok {
				return false
			}
			n.kids = append(n.kids, kn)
		}
		return true
	}
	switch t := e.(type) {
	case Const, Attr:
		return n, true
	case Logic:
		if !kids(t.L, t.R) {
			return nil, false
		}
		slot()
	case Not:
		if !kids(t.E) {
			return nil, false
		}
		slot()
	case Cmp:
		if !kids(t.L, t.R) {
			return nil, false
		}
		slot()
	case Arith:
		if !kids(t.L, t.R) {
			return nil, false
		}
		slot()
	case If:
		if !kids(t.Cond, t.Then, t.Else) {
			return nil, false
		}
		slot()
		n.liveT, n.liveF = *nIdx, *nIdx+1
		*nIdx += 2
	case IsNull:
		if !kids(t.E) {
			return nil, false
		}
		slot()
	case NAry:
		// Zero-argument least/greatest always errors; leave it to the
		// per-row path so the canonical error surfaces.
		if len(t.Args) == 0 {
			return nil, false
		}
		if !kids(t.Args...) {
			return nil, false
		}
		slot()
	default:
		return nil, false
	}
	return n, true
}

// Attrs returns the attribute indexes the program reads (first-seen
// order). The caller must supply a non-nil flat column for each.
func (p *Prog) Attrs() []int { return p.attrs }

// vres is one node's result: either a vector valid at the live physical
// indexes, or a broadcast constant.
type vres struct {
	col     []types.Value
	cv      types.Value
	isConst bool
}

func (r vres) at(i int) types.Value {
	if r.isConst {
		return r.cv
	}
	return r.col[i]
}

// SelectInto evaluates the program as a predicate over cols — one slice
// per attribute, indexed by physical row in [0, n) — at the live indexes
// (all of [0, n) when live is nil) and appends the indexes where it holds
// to out. On error, out is unchanged and the caller must re-evaluate the
// batch per row.
func (p *Prog) SelectInto(cols [][]types.Value, n int, live []int, out []int) ([]int, error) {
	if live == nil {
		live = p.ascending(n)
	}
	p.grow(n)
	r, err := p.eval(p.root, cols, live)
	if err != nil {
		return out, err
	}
	for _, i := range live {
		if truth(r.at(i)) {
			out = append(out, i)
		}
	}
	return out, nil
}

// EvalInto evaluates the program over cols at the live indexes (all of
// [0, n) when live is nil), writing each row's value into out at its
// physical index. out must have length at least n; dead slots are left
// untouched.
func (p *Prog) EvalInto(cols [][]types.Value, n int, live []int, out []types.Value) error {
	if live == nil {
		live = p.ascending(n)
	}
	p.grow(n)
	r, err := p.eval(p.root, cols, live)
	if err != nil {
		return err
	}
	for _, i := range live {
		out[i] = r.at(i)
	}
	return nil
}

// ascending returns the cached identity selection [0, n).
func (p *Prog) ascending(n int) []int {
	for len(p.seq) < n {
		p.seq = append(p.seq, len(p.seq))
	}
	return p.seq[:n]
}

// grow sizes every value buffer to at least n physical slots.
func (p *Prog) grow(n int) {
	for s := range p.bufs {
		if len(p.bufs[s]) < n {
			p.bufs[s] = make([]types.Value, n)
		}
	}
}

func (p *Prog) eval(n *vnode, cols [][]types.Value, live []int) (vres, error) {
	switch t := n.e.(type) {
	case Const:
		return vres{cv: t.V, isConst: true}, nil

	case Attr:
		if t.Idx < 0 || t.Idx >= len(cols) || cols[t.Idx] == nil {
			return vres{}, fmt.Errorf("expr: vectorized attribute %s(#%d) unavailable", t.Name, t.Idx)
		}
		return vres{col: cols[t.Idx]}, nil

	case Logic:
		l, err := p.eval(n.kids[0], cols, live)
		if err != nil {
			return vres{}, err
		}
		r, err := p.eval(n.kids[1], cols, live)
		if err != nil {
			return vres{}, err
		}
		out := p.bufs[n.slot]
		if t.Op == OpAnd {
			for _, i := range live {
				out[i] = types.Bool(truth(l.at(i)) && truth(r.at(i)))
			}
		} else {
			for _, i := range live {
				out[i] = types.Bool(truth(l.at(i)) || truth(r.at(i)))
			}
		}
		return vres{col: out}, nil

	case Not:
		v, err := p.eval(n.kids[0], cols, live)
		if err != nil {
			return vres{}, err
		}
		out := p.bufs[n.slot]
		for _, i := range live {
			out[i] = types.Bool(!truth(v.at(i)))
		}
		return vres{col: out}, nil

	case Cmp:
		l, err := p.eval(n.kids[0], cols, live)
		if err != nil {
			return vres{}, err
		}
		r, err := p.eval(n.kids[1], cols, live)
		if err != nil {
			return vres{}, err
		}
		out := p.bufs[n.slot]
		op := t.Op
		for _, i := range live {
			lv, rv := l.at(i), r.at(i)
			if lv.IsNull() || rv.IsNull() {
				// SQL-style, as in Cmp.Eval: null comparisons do not hold.
				out[i] = types.Bool(false)
				continue
			}
			cmp := types.Compare(lv, rv)
			var b bool
			switch op {
			case OpEq:
				b = cmp == 0
			case OpNeq:
				b = cmp != 0
			case OpLt:
				b = cmp < 0
			case OpLeq:
				b = cmp <= 0
			case OpGt:
				b = cmp > 0
			case OpGeq:
				b = cmp >= 0
			}
			out[i] = types.Bool(b)
		}
		return vres{col: out}, nil

	case Arith:
		l, err := p.eval(n.kids[0], cols, live)
		if err != nil {
			return vres{}, err
		}
		r, err := p.eval(n.kids[1], cols, live)
		if err != nil {
			return vres{}, err
		}
		out := p.bufs[n.slot]
		op := t.Op
		for _, i := range live {
			var v types.Value
			var err error
			switch op {
			case OpAdd:
				v, err = types.Add(l.at(i), r.at(i))
			case OpSub:
				v, err = types.Sub(l.at(i), r.at(i))
			case OpMul:
				v, err = types.Mul(l.at(i), r.at(i))
			default:
				v, err = types.Div(l.at(i), r.at(i))
			}
			if err != nil {
				return vres{}, err
			}
			out[i] = v
		}
		return vres{col: out}, nil

	case If:
		c, err := p.eval(n.kids[0], cols, live)
		if err != nil {
			return vres{}, err
		}
		liveT := p.idxs[n.liveT][:0]
		liveF := p.idxs[n.liveF][:0]
		for _, i := range live {
			if truth(c.at(i)) {
				liveT = append(liveT, i)
			} else {
				liveF = append(liveF, i)
			}
		}
		p.idxs[n.liveT], p.idxs[n.liveF] = liveT, liveF
		out := p.bufs[n.slot]
		if len(liveT) > 0 {
			tv, err := p.eval(n.kids[1], cols, liveT)
			if err != nil {
				return vres{}, err
			}
			for _, i := range liveT {
				out[i] = tv.at(i)
			}
		}
		if len(liveF) > 0 {
			ev, err := p.eval(n.kids[2], cols, liveF)
			if err != nil {
				return vres{}, err
			}
			for _, i := range liveF {
				out[i] = ev.at(i)
			}
		}
		return vres{col: out}, nil

	case IsNull:
		v, err := p.eval(n.kids[0], cols, live)
		if err != nil {
			return vres{}, err
		}
		out := p.bufs[n.slot]
		for _, i := range live {
			out[i] = types.Bool(v.at(i).IsNull())
		}
		return vres{col: out}, nil

	case NAry:
		acc, err := p.eval(n.kids[0], cols, live)
		if err != nil {
			return vres{}, err
		}
		out := p.bufs[n.slot]
		for _, i := range live {
			out[i] = acc.at(i)
		}
		for _, k := range n.kids[1:] {
			v, err := p.eval(k, cols, live)
			if err != nil {
				return vres{}, err
			}
			if t.Op == OpLeast {
				for _, i := range live {
					out[i] = types.Min(out[i], v.at(i))
				}
			} else {
				for _, i := range live {
					out[i] = types.Max(out[i], v.at(i))
				}
			}
		}
		return vres{col: out}, nil
	}
	return vres{}, fmt.Errorf("expr: vectorized eval: unknown node %T", n.e)
}
