package expr

import (
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

// genExpr builds a random numeric-or-boolean expression over nvars integer
// variables. Division is included but guarded by the error-skipping logic in
// the property check.
func genExpr(r *rand.Rand, nvars, depth int, wantBool bool) Expr {
	if depth <= 0 {
		if wantBool {
			return CBool(r.Intn(2) == 0)
		}
		if r.Intn(2) == 0 {
			return Col(r.Intn(nvars), "")
		}
		return CInt(int64(r.Intn(11) - 5))
	}
	if wantBool {
		switch r.Intn(5) {
		case 0:
			return And(genExpr(r, nvars, depth-1, true), genExpr(r, nvars, depth-1, true))
		case 1:
			return Or(genExpr(r, nvars, depth-1, true), genExpr(r, nvars, depth-1, true))
		case 2:
			return Not{genExpr(r, nvars, depth-1, true)}
		default:
			ops := []CmpOp{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq}
			return Cmp{
				Op: ops[r.Intn(len(ops))],
				L:  genExpr(r, nvars, depth-1, false),
				R:  genExpr(r, nvars, depth-1, false),
			}
		}
	}
	switch r.Intn(6) {
	case 0:
		return Add(genExpr(r, nvars, depth-1, false), genExpr(r, nvars, depth-1, false))
	case 1:
		return Sub(genExpr(r, nvars, depth-1, false), genExpr(r, nvars, depth-1, false))
	case 2:
		return Mul(genExpr(r, nvars, depth-1, false), genExpr(r, nvars, depth-1, false))
	case 3:
		return If{
			Cond: genExpr(r, nvars, depth-1, true),
			Then: genExpr(r, nvars, depth-1, false),
			Else: genExpr(r, nvars, depth-1, false),
		}
	case 4:
		return Least(genExpr(r, nvars, depth-1, false), genExpr(r, nvars, depth-1, false))
	default:
		return Greatest(genExpr(r, nvars, depth-1, false), genExpr(r, nvars, depth-1, false))
	}
}

// TestTheorem1BoundPreservation is the paper's Theorem 1: if a range
// valuation bounds an incomplete valuation, the range result of an
// expression bounds all deterministic outcomes.
func TestTheorem1BoundPreservation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const nvars = 3
	trials := 3000
	checked := 0
	for trial := 0; trial < trials; trial++ {
		e := genExpr(r, nvars, 3, r.Intn(2) == 0)

		// Build an incomplete valuation: each variable has 1-3 possible
		// integer values.
		possible := make([][]types.Value, nvars)
		for i := range possible {
			n := 1 + r.Intn(3)
			for j := 0; j < n; j++ {
				possible[i] = append(possible[i], types.Int(int64(r.Intn(13)-6)))
			}
		}
		// The SG world picks one possible value per variable.
		sg := make(types.Tuple, nvars)
		rt := make(rangeval.Tuple, nvars)
		for i, ps := range possible {
			sg[i] = ps[r.Intn(len(ps))]
			lo, hi := ps[0], ps[0]
			for _, p := range ps[1:] {
				lo = types.Min(lo, p)
				hi = types.Max(hi, p)
			}
			rt[i] = rangeval.New(lo, sg[i], hi)
		}

		rangeRes, err := e.EvalRange(rt)
		if err != nil {
			continue // partial operation (division etc); theorem presumes definedness
		}
		if !rangeRes.Valid() {
			t.Fatalf("invalid range result %v for %s", rangeRes, e)
		}

		// Enumerate all worlds (cross product of possible values).
		worlds := [][]types.Value{{}}
		for _, ps := range possible {
			var next [][]types.Value
			for _, w := range worlds {
				for _, p := range ps {
					nw := append(append([]types.Value{}, w...), p)
					next = append(next, nw)
				}
			}
			worlds = next
		}
		allOK := true
		for _, w := range worlds {
			dv, err := e.Eval(types.Tuple(w))
			if err != nil {
				allOK = false
				break
			}
			if !rangeRes.Contains(dv) {
				t.Fatalf("bound violation: expr %s\n  world %v -> %v\n  range %v (ranges %v)",
					e, w, dv, rangeRes, rt)
			}
		}
		if !allOK {
			continue
		}
		// SG component must equal the deterministic result in the SG world.
		dv, err := e.Eval(sg)
		if err == nil && types.Compare(dv, rangeRes.SG) != 0 {
			t.Fatalf("SG mismatch: expr %s sg world %v -> %v but range sg %v",
				e, sg, dv, rangeRes.SG)
		}
		checked++
	}
	if checked < trials/2 {
		t.Fatalf("too few effective trials: %d of %d", checked, trials)
	}
}
