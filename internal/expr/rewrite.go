package expr

import "fmt"

// MapAttrs rebuilds e with every attribute index remapped by f. It is used
// by planners to re-point expressions after projections and joins.
func MapAttrs(e Expr, f func(Attr) Attr) Expr {
	switch n := e.(type) {
	case Const:
		return n
	case Attr:
		return f(n)
	case Logic:
		return Logic{Op: n.Op, L: MapAttrs(n.L, f), R: MapAttrs(n.R, f)}
	case Not:
		return Not{E: MapAttrs(n.E, f)}
	case Cmp:
		return Cmp{Op: n.Op, L: MapAttrs(n.L, f), R: MapAttrs(n.R, f)}
	case Arith:
		return Arith{Op: n.Op, L: MapAttrs(n.L, f), R: MapAttrs(n.R, f)}
	case If:
		return If{Cond: MapAttrs(n.Cond, f), Then: MapAttrs(n.Then, f), Else: MapAttrs(n.Else, f)}
	case IsNull:
		return IsNull{E: MapAttrs(n.E, f)}
	case NAry:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = MapAttrs(a, f)
		}
		return NAry{Op: n.Op, Args: args}
	}
	panic(fmt.Sprintf("expr: MapAttrs: unknown node %T", e))
}

// ShiftAttrs remaps all attribute indices by a constant delta.
func ShiftAttrs(e Expr, delta int) Expr {
	return MapAttrs(e, func(a Attr) Attr {
		a.Idx += delta
		return a
	})
}

// Attrs returns the set of attribute indices referenced by e, in first-seen
// order.
func Attrs(e Expr) []int {
	var out []int
	seen := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Const:
		case Attr:
			if !seen[n.Idx] {
				seen[n.Idx] = true
				out = append(out, n.Idx)
			}
		case Logic:
			walk(n.L)
			walk(n.R)
		case Not:
			walk(n.E)
		case Cmp:
			walk(n.L)
			walk(n.R)
		case Arith:
			walk(n.L)
			walk(n.R)
		case If:
			walk(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case IsNull:
			walk(n.E)
		case NAry:
			for _, a := range n.Args {
				walk(a)
			}
		default:
			panic(fmt.Sprintf("expr: Attrs: unknown node %T", e))
		}
	}
	walk(e)
	return out
}

// MaxAttr returns the largest attribute index referenced by e, or -1.
func MaxAttr(e Expr) int {
	max := -1
	for _, i := range Attrs(e) {
		if i > max {
			max = i
		}
	}
	return max
}

// Conjuncts splits a conjunction into its top-level conjuncts.
func Conjuncts(e Expr) []Expr {
	if l, ok := e.(Logic); ok && l.Op == OpAnd {
		return append(Conjuncts(l.L), Conjuncts(l.R)...)
	}
	return []Expr{e}
}

// EquiPair inspects a conjunct of a join condition of the form
// left.A = right.B (with left attributes < split and right attributes >=
// split) and returns the two indices. ok is false if the conjunct does not
// have this shape.
func EquiPair(e Expr, split int) (left, right int, ok bool) {
	c, isCmp := e.(Cmp)
	if !isCmp || c.Op != OpEq {
		return 0, 0, false
	}
	la, lok := c.L.(Attr)
	ra, rok := c.R.(Attr)
	if !lok || !rok {
		return 0, 0, false
	}
	switch {
	case la.Idx < split && ra.Idx >= split:
		return la.Idx, ra.Idx - split, true
	case ra.Idx < split && la.Idx >= split:
		return ra.Idx, la.Idx - split, true
	}
	return 0, 0, false
}
