// Package expr implements the scalar expression language of the paper
// (Section 5): constants, attribute references, boolean connectives,
// comparisons, arithmetic, and conditional expressions, with two evaluation
// semantics:
//
//   - deterministic evaluation over ordinary tuples (Definition 4), used for
//     selected-guess worlds and for the deterministic bag engine;
//   - range-annotated evaluation over tuples of [lb/sg/ub] triples
//     (Definition 9), which is bound preserving (Theorem 1).
//
// Null handling in the deterministic semantics follows the pragmatics of the
// paper's implementation: arithmetic propagates null, comparisons against
// null are false, and logical connectives treat null as false. Completely
// unknown values are represented by full ranges, not nulls, once data has
// been translated into an AU-DB.
package expr

import (
	"fmt"
	"strings"

	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

// Expr is a scalar expression over the attributes of a single tuple.
type Expr interface {
	// Eval evaluates the expression over a deterministic tuple.
	Eval(t types.Tuple) (types.Value, error)
	// EvalRange evaluates the expression over a range-annotated tuple
	// using the bound-preserving semantics of Definition 9.
	EvalRange(t rangeval.Tuple) (rangeval.V, error)
	// String renders the expression.
	String() string
}

// ---------------------------------------------------------------- leaves --

// Const is a constant expression.
type Const struct{ V types.Value }

// C builds a constant expression.
func C(v types.Value) Const { return Const{V: v} }

// CInt, CFloat, CStr and CBool are typed constant shorthands.
func CInt(i int64) Const     { return Const{V: types.Int(i)} }
func CFloat(f float64) Const { return Const{V: types.Float(f)} }
func CStr(s string) Const    { return Const{V: types.String(s)} }
func CBool(b bool) Const     { return Const{V: types.Bool(b)} }

func (c Const) Eval(types.Tuple) (types.Value, error) { return c.V, nil }
func (c Const) EvalRange(rangeval.Tuple) (rangeval.V, error) {
	return rangeval.Certain(c.V), nil
}
func (c Const) String() string {
	if c.V.Kind() == types.KindString {
		return fmt.Sprintf("%q", c.V.AsString())
	}
	return c.V.String()
}

// Attr references the attribute at a tuple position. Name is informational.
type Attr struct {
	Idx  int
	Name string
}

// Col builds an attribute reference.
func Col(idx int, name string) Attr { return Attr{Idx: idx, Name: name} }

func (a Attr) Eval(t types.Tuple) (types.Value, error) {
	if a.Idx < 0 || a.Idx >= len(t) {
		return types.Null(), fmt.Errorf("expr: attribute %s(#%d) out of range (arity %d)", a.Name, a.Idx, len(t))
	}
	return t[a.Idx], nil
}

func (a Attr) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	if a.Idx < 0 || a.Idx >= len(t) {
		return rangeval.V{}, fmt.Errorf("expr: attribute %s(#%d) out of range (arity %d)", a.Name, a.Idx, len(t))
	}
	return t[a.Idx], nil
}

func (a Attr) String() string {
	if a.Name != "" {
		return a.Name
	}
	return fmt.Sprintf("$%d", a.Idx)
}

// ----------------------------------------------------------------- logic --

// LogicOp identifies a boolean connective.
type LogicOp uint8

const (
	OpAnd LogicOp = iota
	OpOr
)

// Logic is a binary boolean connective.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// And and Or build (possibly n-ary, right-nested) connectives.
func And(es ...Expr) Expr { return foldLogic(OpAnd, true, es) }
func Or(es ...Expr) Expr  { return foldLogic(OpOr, false, es) }

func foldLogic(op LogicOp, unit bool, es []Expr) Expr {
	if len(es) == 0 {
		return CBool(unit)
	}
	e := es[0]
	for _, n := range es[1:] {
		e = Logic{Op: op, L: e, R: n}
	}
	return e
}

func truth(v types.Value) bool { return v.Kind() == types.KindBool && v.AsBool() }

func (l Logic) Eval(t types.Tuple) (types.Value, error) {
	lv, err := l.L.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	// Short circuit.
	if l.Op == OpAnd && !truth(lv) {
		return types.Bool(false), nil
	}
	if l.Op == OpOr && truth(lv) {
		return types.Bool(true), nil
	}
	rv, err := l.R.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	return types.Bool(truth(rv)), nil
}

func (l Logic) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	a, err := l.L.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	b, err := l.R.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	alo, asg, ahi := truth(a.Lo), truth(a.SG), truth(a.Hi)
	blo, bsg, bhi := truth(b.Lo), truth(b.SG), truth(b.Hi)
	if l.Op == OpAnd {
		return boolRange(alo && blo, asg && bsg, ahi && bhi), nil
	}
	return boolRange(alo || blo, asg || bsg, ahi || bhi), nil
}

func (l Logic) String() string {
	op := " AND "
	if l.Op == OpOr {
		op = " OR "
	}
	return "(" + l.L.String() + op + l.R.String() + ")"
}

// Not is boolean negation.
type Not struct{ E Expr }

func (n Not) Eval(t types.Tuple) (types.Value, error) {
	v, err := n.E.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	return types.Bool(!truth(v)), nil
}

// EvalRange implements ¬ per Definition 9: lb := ¬ub, ub := ¬lb.
func (n Not) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	v, err := n.E.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	return boolRange(!truth(v.Hi), !truth(v.SG), !truth(v.Lo)), nil
}

func (n Not) String() string { return "NOT " + n.E.String() }

func boolRange(lo, sg, hi bool) rangeval.V {
	return rangeval.New(types.Bool(lo), types.Bool(sg), types.Bool(hi))
}

// ------------------------------------------------------------ comparison --

// CmpOp identifies a comparison operator.
type CmpOp uint8

const (
	OpEq CmpOp = iota
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	}
	return "?"
}

// Cmp is a comparison under the total order of the domain.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Comparison constructors.
func Eq(l, r Expr) Cmp  { return Cmp{Op: OpEq, L: l, R: r} }
func Neq(l, r Expr) Cmp { return Cmp{Op: OpNeq, L: l, R: r} }
func Lt(l, r Expr) Cmp  { return Cmp{Op: OpLt, L: l, R: r} }
func Leq(l, r Expr) Cmp { return Cmp{Op: OpLeq, L: l, R: r} }
func Gt(l, r Expr) Cmp  { return Cmp{Op: OpGt, L: l, R: r} }
func Geq(l, r Expr) Cmp { return Cmp{Op: OpGeq, L: l, R: r} }

func (c Cmp) Eval(t types.Tuple) (types.Value, error) {
	lv, err := c.L.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	rv, err := c.R.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		// SQL-style: comparisons with null do not hold.
		return types.Bool(false), nil
	}
	cmp := types.Compare(lv, rv)
	var out bool
	switch c.Op {
	case OpEq:
		out = cmp == 0
	case OpNeq:
		out = cmp != 0
	case OpLt:
		out = cmp < 0
	case OpLeq:
		out = cmp <= 0
	case OpGt:
		out = cmp > 0
	case OpGeq:
		out = cmp >= 0
	}
	return types.Bool(out), nil
}

// EvalRange implements the comparison bounds of Definition 9.
func (c Cmp) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	a, err := c.L.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	b, err := c.R.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	sgv, err := c.Eval(rangeSG(t))
	if err != nil {
		return rangeval.V{}, err
	}
	sg := truth(sgv)
	var lo, hi bool
	switch c.Op {
	case OpEq:
		// Certainly equal iff both are certain and equal; possibly equal
		// iff the intervals overlap.
		lo = types.Equal(a.Hi, b.Lo) && types.Equal(b.Hi, a.Lo)
		hi = a.Overlaps(b)
	case OpNeq:
		lo = !a.Overlaps(b)
		hi = !(types.Equal(a.Hi, b.Lo) && types.Equal(b.Hi, a.Lo))
	case OpLt:
		lo = types.Less(a.Hi, b.Lo)
		hi = types.Less(a.Lo, b.Hi)
	case OpLeq:
		lo = !types.Less(b.Lo, a.Hi)
		hi = !types.Less(b.Hi, a.Lo)
	case OpGt:
		lo = types.Less(b.Hi, a.Lo)
		hi = types.Less(b.Lo, a.Hi)
	case OpGeq:
		lo = !types.Less(a.Lo, b.Hi)
		hi = !types.Less(a.Hi, b.Lo)
	}
	return boolRange(lo, sg, hi), nil
}

func (c Cmp) String() string {
	return "(" + c.L.String() + " " + c.Op.String() + " " + c.R.String() + ")"
}

// rangeSG views a range tuple as the deterministic SG tuple without copying
// attribute by attribute more than once.
func rangeSG(t rangeval.Tuple) types.Tuple { return t.SG() }

// ------------------------------------------------------------ arithmetic --

// ArithOp identifies an arithmetic operator.
type ArithOp uint8

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Arithmetic constructors.
func Add(l, r Expr) Arith { return Arith{Op: OpAdd, L: l, R: r} }
func Sub(l, r Expr) Arith { return Arith{Op: OpSub, L: l, R: r} }
func Mul(l, r Expr) Arith { return Arith{Op: OpMul, L: l, R: r} }
func Div(l, r Expr) Arith { return Arith{Op: OpDiv, L: l, R: r} }

func (a Arith) Eval(t types.Tuple) (types.Value, error) {
	lv, err := a.L.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	rv, err := a.R.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	switch a.Op {
	case OpAdd:
		return types.Add(lv, rv)
	case OpSub:
		return types.Sub(lv, rv)
	case OpMul:
		return types.Mul(lv, rv)
	default:
		return types.Div(lv, rv)
	}
}

func (a Arith) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	lv, err := a.L.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	rv, err := a.R.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	switch a.Op {
	case OpAdd:
		return RangeAdd(lv, rv)
	case OpSub:
		return RangeSub(lv, rv)
	case OpMul:
		return RangeMul(lv, rv)
	default:
		return RangeDiv(lv, rv)
	}
}

func (a Arith) String() string {
	return "(" + a.L.String() + " " + a.Op.String() + " " + a.R.String() + ")"
}

// satAdd adds two bound values, saturating mixed infinities toward the
// conservative direction dir (-1: lower bound, +1: upper bound).
func satAdd(x, y types.Value, dir int) (types.Value, error) {
	v, err := types.Add(x, y)
	if err == nil {
		return v, nil
	}
	if _, ok := err.(*types.ErrType); ok && (x.IsInf() || y.IsInf()) {
		if dir < 0 {
			return types.NegInf(), nil
		}
		return types.PosInf(), nil
	}
	return types.Null(), err
}

// RangeAdd implements [a] + [b] per Definition 9.
func RangeAdd(a, b rangeval.V) (rangeval.V, error) {
	lo, err := satAdd(a.Lo, b.Lo, -1)
	if err != nil {
		return rangeval.V{}, err
	}
	hi, err := satAdd(a.Hi, b.Hi, 1)
	if err != nil {
		return rangeval.V{}, err
	}
	sg, err := types.Add(a.SG, b.SG)
	if err != nil {
		return rangeval.V{}, err
	}
	return rangeval.New(lo, sg, hi), nil
}

// RangeSub implements [a] - [b]: lower bound a.lb - b.ub, upper a.ub - b.lb.
func RangeSub(a, b rangeval.V) (rangeval.V, error) {
	nb, err := rangeNeg(b)
	if err != nil {
		return rangeval.V{}, err
	}
	return RangeAdd(a, nb)
}

func rangeNeg(a rangeval.V) (rangeval.V, error) {
	lo, err := types.Neg(a.Hi)
	if err != nil {
		return rangeval.V{}, err
	}
	hi, err := types.Neg(a.Lo)
	if err != nil {
		return rangeval.V{}, err
	}
	sg, err := types.Neg(a.SG)
	if err != nil {
		return rangeval.V{}, err
	}
	return rangeval.New(lo, sg, hi), nil
}

// RangeMul implements [a] * [b]: min/max over the four bound products.
func RangeMul(a, b rangeval.V) (rangeval.V, error) {
	sg, err := types.Mul(a.SG, b.SG)
	if err != nil {
		return rangeval.V{}, err
	}
	prods := make([]types.Value, 0, 4)
	for _, x := range []types.Value{a.Lo, a.Hi} {
		for _, y := range []types.Value{b.Lo, b.Hi} {
			p, err := types.Mul(x, y)
			if err != nil {
				return rangeval.V{}, err
			}
			prods = append(prods, p)
		}
	}
	lo, hi := prods[0], prods[0]
	for _, p := range prods[1:] {
		lo = types.Min(lo, p)
		hi = types.Max(hi, p)
	}
	return rangeval.New(lo, sg, hi), nil
}

// RangeDiv implements [a] / [b]. If the divisor interval contains zero the
// result is unbounded, [-inf/sg/+inf], which soundly over-approximates the
// possible quotients (cf. the remark after Definition 9 that 1/e is
// undefined when the range of e spans zero; returning the full range keeps
// queries total). If the divisor is certainly zero, or zero in the selected
// guess world, division fails as in the deterministic semantics.
func RangeDiv(a, b rangeval.V) (rangeval.V, error) {
	zero := types.Int(0)
	spansZero := b.Contains(zero)
	if spansZero && b.IsCertain() {
		return rangeval.V{}, types.ErrDivisionByZero{}
	}
	sg, err := types.Div(a.SG, b.SG)
	if err != nil {
		return rangeval.V{}, err
	}
	if spansZero {
		return rangeval.New(types.NegInf(), sg, types.PosInf()), nil
	}
	quots := make([]types.Value, 0, 4)
	for _, x := range []types.Value{a.Lo, a.Hi} {
		for _, y := range []types.Value{b.Lo, b.Hi} {
			q, err := types.Div(x, y)
			if err != nil {
				if _, ok := err.(*types.ErrType); ok {
					// inf/inf: saturate conservatively to both ends.
					quots = append(quots, types.NegInf(), types.PosInf())
					continue
				}
				return rangeval.V{}, err
			}
			quots = append(quots, q)
		}
	}
	lo, hi := quots[0], quots[0]
	for _, q := range quots[1:] {
		lo = types.Min(lo, q)
		hi = types.Max(hi, q)
	}
	return rangeval.New(lo, sg, hi), nil
}

// ------------------------------------------------------------------- if --

// If is the conditional expression "if Cond then Then else Else".
type If struct {
	Cond, Then, Else Expr
}

func (e If) Eval(t types.Tuple) (types.Value, error) {
	c, err := e.Cond.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	if truth(c) {
		return e.Then.Eval(t)
	}
	return e.Else.Eval(t)
}

// EvalRange implements the conditional bounds of Definition 9. Branches are
// evaluated lazily when the condition is certain so that guarded partial
// operations (e.g. division) do not raise spurious errors.
func (e If) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	c, err := e.Cond.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	clo, csg, chi := truth(c.Lo), truth(c.SG), truth(c.Hi)
	switch {
	case clo && chi: // certainly true
		return e.Then.EvalRange(t)
	case !clo && !chi: // certainly false
		return e.Else.EvalRange(t)
	}
	tv, err := e.Then.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	ev, err := e.Else.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	sg := tv.SG
	if !csg {
		sg = ev.SG
	}
	return rangeval.New(types.Min(tv.Lo, ev.Lo), sg, types.Max(tv.Hi, ev.Hi)), nil
}

func (e If) String() string {
	return "IF " + e.Cond.String() + " THEN " + e.Then.String() + " ELSE " + e.Else.String()
}

// --------------------------------------------------------------- is null --

// IsNull tests whether the argument is null.
type IsNull struct{ E Expr }

func (n IsNull) Eval(t types.Tuple) (types.Value, error) {
	v, err := n.E.Eval(t)
	if err != nil {
		return types.Null(), err
	}
	return types.Bool(v.IsNull()), nil
}

func (n IsNull) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	v, err := n.E.EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	null := types.Null()
	certainlyNull := types.Equal(v.Lo, null) && types.Equal(v.Hi, null)
	possiblyNull := v.Contains(null)
	return boolRange(certainlyNull, v.SG.IsNull(), possiblyNull), nil
}

func (n IsNull) String() string { return n.E.String() + " IS NULL" }

// ----------------------------------------------------- least / greatest --

// NAryOp identifies a variadic builtin.
type NAryOp uint8

const (
	OpLeast NAryOp = iota
	OpGreatest
)

// NAry is a variadic least/greatest expression. Both are monotone in every
// argument, so range evaluation is component-wise.
type NAry struct {
	Op   NAryOp
	Args []Expr
}

// Least and Greatest build variadic min/max expressions.
func Least(args ...Expr) NAry    { return NAry{Op: OpLeast, Args: args} }
func Greatest(args ...Expr) NAry { return NAry{Op: OpGreatest, Args: args} }

func (n NAry) Eval(t types.Tuple) (types.Value, error) {
	if len(n.Args) == 0 {
		return types.Null(), fmt.Errorf("expr: %s of zero arguments", n.opName())
	}
	acc, err := n.Args[0].Eval(t)
	if err != nil {
		return types.Null(), err
	}
	for _, a := range n.Args[1:] {
		v, err := a.Eval(t)
		if err != nil {
			return types.Null(), err
		}
		if n.Op == OpLeast {
			acc = types.Min(acc, v)
		} else {
			acc = types.Max(acc, v)
		}
	}
	return acc, nil
}

func (n NAry) EvalRange(t rangeval.Tuple) (rangeval.V, error) {
	if len(n.Args) == 0 {
		return rangeval.V{}, fmt.Errorf("expr: %s of zero arguments", n.opName())
	}
	acc, err := n.Args[0].EvalRange(t)
	if err != nil {
		return rangeval.V{}, err
	}
	for _, a := range n.Args[1:] {
		v, err := a.EvalRange(t)
		if err != nil {
			return rangeval.V{}, err
		}
		if n.Op == OpLeast {
			acc = rangeval.New(types.Min(acc.Lo, v.Lo), types.Min(acc.SG, v.SG), types.Min(acc.Hi, v.Hi))
		} else {
			acc = rangeval.New(types.Max(acc.Lo, v.Lo), types.Max(acc.SG, v.SG), types.Max(acc.Hi, v.Hi))
		}
	}
	return acc, nil
}

func (n NAry) opName() string {
	if n.Op == OpLeast {
		return "least"
	}
	return "greatest"
}

func (n NAry) String() string {
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.String()
	}
	return n.opName() + "(" + strings.Join(parts, ", ") + ")"
}
