// Package csvio loads and stores relations as CSV, the ingestion path for
// the audbsh command and the examples. Values are typed by inference
// (int, float, bool, null, string); a header row names the attributes.
//
// An extended cell syntax carries attribute-level uncertainty directly in
// CSV files: a cell of the form "lb|sg|ub" is parsed as a range-annotated
// value when the file is loaded with ReadAU. The literal "?" denotes a
// completely unknown value (null selected guess, full range).
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// ParseValue infers the type of a CSV cell.
func ParseValue(s string) types.Value {
	trimmed := strings.TrimSpace(s)
	switch strings.ToLower(trimmed) {
	case "", "null":
		return types.Null()
	case "true":
		return types.Bool(true)
	case "false":
		return types.Bool(false)
	}
	if i, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
		return types.Int(i)
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
		return types.Float(f)
	}
	return types.String(trimmed)
}

// Read loads a deterministic relation from CSV with a header row.
func Read(r io.Reader) (*bag.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	rel := bag.New(schema.New(header...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		row := make(types.Tuple, len(rec))
		for i, cell := range rec {
			row[i] = ParseValue(cell)
		}
		rel.Add(row, 1)
	}
	return rel, nil
}

// parseRangeCell parses a cell in ReadAU mode: "lb|sg|ub" is a range, "?"
// is a fully unknown value, anything else is certain.
func parseRangeCell(cell string) (rangeval.V, error) {
	trimmed := strings.TrimSpace(cell)
	if trimmed == "?" {
		return rangeval.Full(types.Null()), nil
	}
	if strings.Contains(trimmed, "|") {
		parts := strings.Split(trimmed, "|")
		if len(parts) != 3 {
			return rangeval.V{}, fmt.Errorf("csvio: range cell %q must have the form lb|sg|ub", cell)
		}
		return rangeval.Checked(ParseValue(parts[0]), ParseValue(parts[1]), ParseValue(parts[2]))
	}
	return rangeval.Certain(ParseValue(trimmed)), nil
}

// ReadAU loads an AU-relation from CSV. Besides the range cell syntax, two
// optional trailing pseudo-columns named "_mult_lb" and "_mult_ub" (in
// that order, after the value columns) carry tuple multiplicity bounds;
// without them every row is certain, (1,1,1).
func ReadAU(r io.Reader) (*core.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	n := len(header)
	hasMult := n >= 2 && header[n-2] == "_mult_lb" && header[n-1] == "_mult_ub"
	if hasMult {
		n -= 2
	}
	rel := core.New(schema.New(header[:n]...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		vals := make(rangeval.Tuple, n)
		for i := 0; i < n; i++ {
			v, err := parseRangeCell(rec[i])
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		m := core.One
		if hasMult {
			lb := ParseValue(rec[n]).AsInt()
			ub := ParseValue(rec[n+1]).AsInt()
			sg := int64(1)
			if lb > sg {
				sg = lb
			}
			if ub < sg {
				sg = ub
			}
			m = core.Mult{Lo: lb, SG: sg, Hi: ub}
			if !m.Valid() {
				return nil, fmt.Errorf("csvio: invalid multiplicity bounds (%d, %d)", lb, ub)
			}
		}
		rel.Add(core.Tuple{Vals: vals, M: m})
	}
	return rel, nil
}

// Write stores a deterministic relation as CSV (duplicates expanded).
func Write(w io.Writer, rel *bag.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema.Attrs); err != nil {
		return err
	}
	for i, t := range rel.Tuples {
		rec := make([]string, len(t))
		for j, v := range t {
			rec[j] = v.String()
		}
		for k := int64(0); k < rel.Counts[i]; k++ {
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAU stores an AU-relation using the range cell syntax plus the
// multiplicity pseudo-columns.
func WriteAU(w io.Writer, rel *core.Relation) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, rel.Schema.Attrs...), "_mult_lb", "_mult_ub")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range rel.Tuples {
		rec := make([]string, 0, len(t.Vals)+2)
		for _, v := range t.Vals {
			if v.IsCertain() {
				rec = append(rec, v.SG.String())
			} else {
				rec = append(rec, fmt.Sprintf("%s|%s|%s", v.Lo, v.SG, v.Hi))
			}
		}
		rec = append(rec, fmt.Sprint(t.M.Lo), fmt.Sprint(t.M.Hi))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
