package csvio

import (
	"strings"
	"testing"

	"github.com/audb/audb/internal/types"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want types.Value
	}{
		{"42", types.Int(42)},
		{"-7", types.Int(-7)},
		{"3.5", types.Float(3.5)},
		{"true", types.Bool(true)},
		{"FALSE", types.Bool(false)},
		{"", types.Null()},
		{"null", types.Null()},
		{"hello", types.String("hello")},
		{" padded ", types.String("padded")},
	}
	for _, c := range cases {
		if got := ParseValue(c.in); types.Compare(got, c.want) != 0 {
			t.Errorf("ParseValue(%q) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	in := "a,b,c\n1,x,2.5\n2,y,0\n2,y,0\n"
	rel, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Size() != 3 || rel.Schema.Arity() != 3 {
		t.Fatalf("loaded: %s", rel)
	}
	var sb strings.Builder
	if err := Write(&sb, rel.Merge()); err != nil {
		t.Fatal(err)
	}
	again, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(again) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", rel, again)
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should fail on header")
	}
	if _, err := Read(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestReadAU(t *testing.T) {
	in := "k,v\n1,10\n2,8|10|14\n3,?\n"
	rel, err := ReadAU(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("rows: %d", rel.Len())
	}
	if !rel.Tuples[0].Vals.IsCertain() {
		t.Error("row 1 certain")
	}
	r2 := rel.Tuples[1].Vals[1]
	if r2.Lo.AsInt() != 8 || r2.SG.AsInt() != 10 || r2.Hi.AsInt() != 14 {
		t.Errorf("range cell: %v", r2)
	}
	r3 := rel.Tuples[2].Vals[1]
	if !r3.Contains(types.Int(999999)) || !r3.SG.IsNull() {
		t.Errorf("unknown cell: %v", r3)
	}
	// Multiplicity pseudo-columns.
	in = "k,_mult_lb,_mult_ub\n1,0,2\n"
	rel, err = ReadAU(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m := rel.Tuples[0].M
	if m.Lo != 0 || m.Hi != 2 || !m.Valid() {
		t.Errorf("multiplicity: %v", m)
	}
	// Errors.
	if _, err := ReadAU(strings.NewReader("k\n1|2\n")); err == nil {
		t.Error("two-part range should fail")
	}
	if _, err := ReadAU(strings.NewReader("k\n9|5|1\n")); err == nil {
		t.Error("descending bounds should fail")
	}
	if _, err := ReadAU(strings.NewReader("k,_mult_lb,_mult_ub\n1,5,2\n")); err == nil {
		t.Error("invalid multiplicity bounds should fail")
	}
	if _, err := ReadAU(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestWriteAURoundtrip(t *testing.T) {
	in := "k,v\n1,10\n2,8|10|14\n"
	rel, err := ReadAU(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteAU(&sb, rel); err != nil {
		t.Fatal(err)
	}
	again, err := ReadAU(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if again.Len() != rel.Len() {
		t.Fatalf("roundtrip rows: %d vs %d", again.Len(), rel.Len())
	}
	for i := range rel.Tuples {
		if rel.Tuples[i].Vals.Key() != again.Tuples[i].Vals.Key() {
			t.Errorf("row %d values differ", i)
		}
		if rel.Tuples[i].M.Lo != again.Tuples[i].M.Lo || rel.Tuples[i].M.Hi != again.Tuples[i].M.Hi {
			t.Errorf("row %d multiplicities differ", i)
		}
	}
}
