package synth

import (
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/translate"
	"github.com/audb/audb/internal/types"
)

func TestWideTable(t *testing.T) {
	r := WideTable(100, 10, 50, 1)
	if r.Len() != 100 || r.Schema.Arity() != 10 {
		t.Fatalf("shape: %d x %d", r.Len(), r.Schema.Arity())
	}
	for _, tup := range r.Tuples {
		for _, v := range tup {
			if v.AsInt() < 1 || v.AsInt() > 50 {
				t.Fatalf("value out of domain: %v", v)
			}
		}
	}
	if !WideTable(10, 3, 5, 9).Equal(WideTable(10, 3, 5, 9)) {
		t.Error("deterministic")
	}
}

func TestInject(t *testing.T) {
	r := WideTable(500, 5, 100, 2)
	x := Inject(bag.DB{"t": r}, InjectConfig{CellProb: 0.2, MaxAlts: 4, RangeFrac: 0.5, Seed: 3})
	rel := x["t"]
	if len(rel.Tuples) != 500 {
		t.Fatalf("blocks: %d", len(rel.Tuples))
	}
	uncertain := 0
	for i := range rel.Tuples {
		blk := &rel.Tuples[i]
		if len(blk.Alts) > 1 {
			uncertain++
			if len(blk.Alts) > 4 {
				t.Fatalf("too many alternatives: %d", len(blk.Alts))
			}
			// Column 0 is never injected by default.
			for _, a := range blk.Alts[1:] {
				if types.Compare(a[0], blk.Alts[0][0]) != 0 {
					t.Fatal("key column must stay certain")
				}
			}
		}
	}
	if uncertain == 0 {
		t.Fatal("nothing injected")
	}
	// SGW preserved.
	if !rel.SGW().Equal(r) {
		t.Error("SGW must be the original relation")
	}
	// Explicit eligible columns.
	x2 := Inject(bag.DB{"t": r}, InjectConfig{CellProb: 1.0, MaxAlts: 2, EligibleCols: []int{2}, Seed: 3})
	for i := range x2["t"].Tuples {
		blk := &x2["t"].Tuples[i]
		for _, a := range blk.Alts[1:] {
			for c := range a {
				if c != 2 && types.Compare(a[c], blk.Alts[0][c]) != 0 {
					t.Fatalf("column %d should be untouched", c)
				}
			}
		}
	}
}

func TestInjectRangeFraction(t *testing.T) {
	r := WideTable(2000, 2, 1000, 4)
	narrow := Inject(bag.DB{"t": r}, InjectConfig{CellProb: 0.5, MaxAlts: 3, RangeFrac: 0.05, Seed: 5})
	maxSpread := int64(0)
	for i := range narrow["t"].Tuples {
		blk := &narrow["t"].Tuples[i]
		for _, a := range blk.Alts[1:] {
			d := a[1].AsInt() - blk.Alts[0][1].AsInt()
			if d < 0 {
				d = -d
			}
			if d > maxSpread {
				maxSpread = d
			}
		}
	}
	// 5% of a domain of ~1000 is ~50; allow slack for rounding.
	if maxSpread > 60 {
		t.Errorf("alternatives spread %d exceeds 5%% of the domain", maxSpread)
	}
}

func TestJoinPair(t *testing.T) {
	a, b := JoinPair(100, 50, 6)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatal("sizes")
	}
	if a.Equal(b) {
		t.Error("the two sides should differ")
	}
}

func TestKeyViolationTable(t *testing.T) {
	for _, p := range []KeyViolationProfile{NetflixProfile, CrimesProfile, HealthcareProfile} {
		rel := KeyViolationTable(p)
		if rel.Len() < p.Rows {
			t.Fatalf("%s: %d rows < %d", p.Name, rel.Len(), p.Rows)
		}
		// Count violating keys and average choices.
		perKey := map[int64]int{}
		for _, tup := range rel.Tuples {
			perKey[tup[0].AsInt()]++
		}
		viol, totalChoices := 0, 0
		for _, n := range perKey {
			if n > 1 {
				viol++
				totalChoices += n
			}
		}
		frac := float64(viol) / float64(len(perKey))
		if frac < p.ViolFrac/3 || frac > p.ViolFrac*3 {
			t.Errorf("%s: violation fraction %.4f vs profile %.4f", p.Name, frac, p.ViolFrac)
		}
		if viol > 0 {
			avg := float64(totalChoices) / float64(viol)
			if avg < 1.5 || avg > p.AvgChoices*2 {
				t.Errorf("%s: avg choices %.2f vs profile %.2f", p.Name, avg, p.AvgChoices)
			}
		}
		// The table translates into an AU-DB via key repair.
		au := translate.KeyRepair(rel, []int{0})
		if au.Len() != len(perKey) {
			t.Errorf("%s: repaired size %d vs %d keys", p.Name, au.Len(), len(perKey))
		}
	}
}
