// Package synth generates the synthetic workloads of the paper's
// evaluation (Section 12.2-12.3): PDBench-style attribute-level
// uncertainty injection, the wide 100-attribute microbenchmark table, join
// workloads, and key-violation datasets whose uncertainty profiles match
// the real-world datasets of Figure 17 (DESIGN.md substitution 5).
package synth

import (
	"fmt"
	"math/rand"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// InjectConfig controls PDBench-style uncertainty injection.
type InjectConfig struct {
	// CellProb is the probability that an eligible cell becomes uncertain
	// (PDBench's "amount of uncertainty": 2%, 5%, 10%, 30%).
	CellProb float64
	// MaxAlts is the maximum number of alternatives per uncertain row
	// (PDBench uses up to 8).
	MaxAlts int
	// RangeFrac is the fraction of the column's domain that alternative
	// values may span around the original value; 1.0 reproduces PDBench's
	// worst case of alternatives across the whole domain.
	RangeFrac float64
	// EligibleCols restricts injection to the listed column indexes; nil
	// means every column except column 0 (the conventional key).
	EligibleCols []int
	// Seed drives the deterministic generator.
	Seed int64
}

// Inject replaces random cells of every relation with uncertain
// alternatives, producing a block-independent x-database. The first
// alternative of every block is the original tuple, so the original
// database is the natural selected-guess world.
func Inject(db bag.DB, cfg InjectConfig) worlds.XDB {
	if cfg.MaxAlts < 2 {
		cfg.MaxAlts = 2
	}
	if cfg.RangeFrac <= 0 {
		cfg.RangeFrac = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := worlds.XDB{}
	for name, rel := range db {
		out[name] = injectRelation(rel, cfg, rng)
	}
	return out
}

// colStats captures a column's observed domain.
type colStats struct {
	lo, hi   float64
	numeric  bool
	observed []types.Value
}

func statsOf(rel *bag.Relation) []colStats {
	stats := make([]colStats, rel.Schema.Arity())
	for c := range stats {
		stats[c].numeric = true
	}
	for _, t := range rel.Tuples {
		for c, v := range t {
			st := &stats[c]
			if !v.IsNumeric() {
				st.numeric = false
			}
			if st.numeric {
				f := v.AsFloat()
				if len(st.observed) == 0 || f < st.lo {
					st.lo = f
				}
				if len(st.observed) == 0 || f > st.hi {
					st.hi = f
				}
			}
			if len(st.observed) < 256 {
				st.observed = append(st.observed, v)
			}
		}
	}
	return stats
}

func injectRelation(rel *bag.Relation, cfg InjectConfig, rng *rand.Rand) *worlds.XRelation {
	out := worlds.NewXRelation(rel.Schema)
	stats := statsOf(rel)
	eligible := cfg.EligibleCols
	if eligible == nil {
		for c := 1; c < rel.Schema.Arity(); c++ {
			eligible = append(eligible, c)
		}
	}
	for ti, t := range rel.Tuples {
		_ = ti
		var uncertainCols []int
		for _, c := range eligible {
			if rng.Float64() < cfg.CellProb {
				uncertainCols = append(uncertainCols, c)
			}
		}
		for k := int64(0); k < rel.Counts[ti]; k++ {
			if len(uncertainCols) == 0 {
				out.AddCertain(t.Clone())
				continue
			}
			nalts := 2 + rng.Intn(cfg.MaxAlts-1)
			alts := make([]types.Tuple, 0, nalts)
			alts = append(alts, t.Clone())
			for a := 1; a < nalts; a++ {
				alt := t.Clone()
				for _, c := range uncertainCols {
					alt[c] = alternativeValue(t[c], &stats[c], cfg.RangeFrac, rng)
				}
				alts = append(alts, alt)
			}
			out.AddBlock(worlds.XTuple{Alts: alts})
		}
	}
	return out
}

// alternativeValue draws a replacement value within RangeFrac of the
// column domain around the original (numeric columns) or uniformly from
// the observed values (other columns).
func alternativeValue(orig types.Value, st *colStats, frac float64, rng *rand.Rand) types.Value {
	if st.numeric && st.hi > st.lo {
		width := (st.hi - st.lo) * frac
		center := orig.AsFloat()
		lo := center - width/2
		hi := center + width/2
		if lo < st.lo {
			lo = st.lo
		}
		if hi > st.hi {
			hi = st.hi
		}
		v := lo + rng.Float64()*(hi-lo)
		if orig.Kind() == types.KindInt {
			return types.Int(int64(v))
		}
		return types.Float(v)
	}
	if len(st.observed) > 0 {
		return st.observed[rng.Intn(len(st.observed))]
	}
	return orig
}

// WideTable generates the 100-attribute microbenchmark table (Section
// 12.2): `rows` tuples with uniform random integers in [1, domain].
func WideTable(rows, cols int, domain int64, seed int64) *bag.Relation {
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]string, cols)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	rel := bag.New(schema.Schema{Attrs: attrs})
	for r := 0; r < rows; r++ {
		t := make(types.Tuple, cols)
		for c := range t {
			t[c] = types.Int(1 + rng.Int63n(domain))
		}
		rel.Add(t, 1)
	}
	return rel
}

// JoinPair generates the two join-microbenchmark tables (Figure 14/16):
// t1(a0, a1), t2(a0, a1) with `rows` tuples over [1, domain].
func JoinPair(rows int, domain int64, seed int64) (t1, t2 *bag.Relation) {
	rng := rand.New(rand.NewSource(seed))
	gen := func() *bag.Relation {
		rel := bag.New(schema.New("a0", "a1"))
		for r := 0; r < rows; r++ {
			rel.Add(types.Tuple{
				types.Int(1 + rng.Int63n(domain)),
				types.Int(1 + rng.Int63n(domain)),
			}, 1)
		}
		return rel
	}
	return gen(), gen()
}

// KeyViolationProfile describes a Figure 17 dataset: number of rows, the
// fraction of key groups with violations, and the average number of
// possibilities per violating group.
type KeyViolationProfile struct {
	Name        string
	Rows        int
	ViolFrac    float64 // fraction of keys with >1 tuple
	AvgChoices  float64 // alternatives per violated key
	ValueCols   int     // non-key attribute count
	StringCols  int     // of which this many are categorical
	ValueDomain int64
	Seed        int64
}

// Profiles matching the uncertainty statistics reported in Figure 17:
// Netflix (1.9% uncertain, 2.1 possibilities), Chicago Crimes (0.1%, 3.2),
// Medicare Healthcare (1.0%, 2.7). Row counts are scaled to in-memory
// sizes; the accuracy metrics depend on the uncertainty profile, not the
// raw volume.
var (
	NetflixProfile = KeyViolationProfile{
		Name: "netflix", Rows: 6000, ViolFrac: 0.019, AvgChoices: 2.1,
		ValueCols: 4, StringCols: 2, ValueDomain: 2020, Seed: 101,
	}
	CrimesProfile = KeyViolationProfile{
		Name: "crimes", Rows: 20000, ViolFrac: 0.001, AvgChoices: 3.2,
		ValueCols: 4, StringCols: 2, ValueDomain: 3000, Seed: 102,
	}
	HealthcareProfile = KeyViolationProfile{
		Name: "healthcare", Rows: 12000, ViolFrac: 0.010, AvgChoices: 2.7,
		ValueCols: 4, StringCols: 2, ValueDomain: 500, Seed: 103,
	}
)

// KeyViolationTable generates a relation with key violations matching the
// profile: schema (k, s0..s{StringCols-1}, v0..).
func KeyViolationTable(p KeyViolationProfile) *bag.Relation {
	rng := rand.New(rand.NewSource(p.Seed))
	attrs := []string{"k"}
	for i := 0; i < p.StringCols; i++ {
		attrs = append(attrs, fmt.Sprintf("s%d", i))
	}
	numCols := p.ValueCols - p.StringCols
	for i := 0; i < numCols; i++ {
		attrs = append(attrs, fmt.Sprintf("v%d", i))
	}
	rel := bag.New(schema.Schema{Attrs: attrs})
	// A realistic categorical domain (director names, districts, facility
	// names...) has dozens-to-thousands of values; 48 keeps group boxes
	// from trivially covering the whole domain.
	cats := make([]string, 48)
	for i := range cats {
		cats[i] = fmt.Sprintf("cat%02d", i)
	}
	base := func(key int64) types.Tuple {
		t := make(types.Tuple, len(attrs))
		t[0] = types.Int(key)
		for i := 0; i < p.StringCols; i++ {
			t[1+i] = types.String(cats[rng.Intn(len(cats))])
		}
		for i := 0; i < numCols; i++ {
			t[1+p.StringCols+i] = types.Int(1 + rng.Int63n(p.ValueDomain))
		}
		return t
	}
	for k := int64(0); k < int64(p.Rows); k++ {
		b := base(k)
		rel.Add(b, 1)
		if rng.Float64() < p.ViolFrac {
			// Violating key: extra conflicting versions (average
			// AvgChoices total). Real-world duplicates mostly agree —
			// each extra version perturbs one numeric column (± up to
			// 10% of the domain) and only occasionally a categorical one.
			extra := int(p.AvgChoices - 1 + rng.Float64())
			if extra < 1 {
				extra = 1
			}
			for e := 0; e < extra; e++ {
				dup := b.Clone()
				if numCols > 0 {
					c := 1 + p.StringCols + rng.Intn(numCols)
					delta := rng.Int63n(p.ValueDomain/10+1) - p.ValueDomain/20
					v := dup[c].AsInt() + delta
					if v < 1 {
						v = 1
					}
					dup[c] = types.Int(v)
				}
				if p.StringCols > 0 && rng.Float64() < 0.05 {
					// Categorical conflicts are typo-like: the variant is
					// lexicographically adjacent, not a random category.
					c := 1 + rng.Intn(p.StringCols)
					cur := dup[c].AsString()
					pos := 0
					for ci, cat := range cats {
						if cat == cur {
							pos = ci
							break
						}
					}
					step := 1 + rng.Intn(2)
					if rng.Intn(2) == 0 && pos >= step {
						pos -= step
					} else if pos+step < len(cats) {
						pos += step
					}
					dup[c] = types.String(cats[pos])
				}
				rel.Add(dup, 1)
			}
		}
	}
	return rel
}
