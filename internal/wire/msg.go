package wire

import (
	"fmt"

	"github.com/audb/audb/internal/core"
)

// Msg is one protocol message. Concrete messages are plain structs;
// encode appends the payload to the frame buffer and decodeMsg is the
// inverse (exact: trailing bytes are an error).
type Msg interface {
	msgType() byte
	encode(b []byte) []byte
}

// ExecOptions carries the per-query execution options across the wire,
// mirroring the session API's functional options. The zero value selects
// every default (native engine, optimizer and cost model on, pipelined
// executor, workers per CPU, no compression, no deadline).
type ExecOptions struct {
	// Engine is the audb.Engine (0 native, 1 rewrite, 2 sgw).
	Engine uint8
	// Workers is core.Options.Workers (0 = one per CPU, 1 = serial).
	Workers int
	// JoinCompression / AggCompression are the Section 10.4/10.5 targets.
	JoinCompression int
	AggCompression  int
	// OptimizerOff / CostOff / Materialized flip the on-by-default modes.
	OptimizerOff bool
	CostOff      bool
	Materialized bool
	// TimeoutMS bounds execution server-side; 0 means no deadline beyond
	// the server's own cap.
	TimeoutMS uint64
}

func (o ExecOptions) encode(b []byte) []byte {
	b = append(b, o.Engine)
	b = encVarint(b, int64(o.Workers))
	b = encVarint(b, int64(o.JoinCompression))
	b = encVarint(b, int64(o.AggCompression))
	b = encBool(b, o.OptimizerOff)
	b = encBool(b, o.CostOff)
	b = encBool(b, o.Materialized)
	return encUvarint(b, o.TimeoutMS)
}

func (d *dec) execOptions() ExecOptions {
	return ExecOptions{
		Engine:          d.u8(),
		Workers:         int(d.varint()),
		JoinCompression: int(d.varint()),
		AggCompression:  int(d.varint()),
		OptimizerOff:    d.bool(),
		CostOff:         d.bool(),
		Materialized:    d.bool(),
		TimeoutMS:       d.uvarint(),
	}
}

// ----------------------------------------------------------- session --

// Hello opens a connection.
type Hello struct {
	Version uint32
	Client  string // client name, for server logs
}

func (Hello) msgType() byte { return THello }
func (m Hello) encode(b []byte) []byte {
	b = encUvarint(b, uint64(m.Version))
	return encString(b, m.Client)
}

// HelloOK accepts a connection.
type HelloOK struct {
	Version uint32
	Server  string
	Tables  []string // registered table names at connect time, sorted
}

func (HelloOK) msgType() byte { return THelloOK }
func (m HelloOK) encode(b []byte) []byte {
	b = encUvarint(b, uint64(m.Version))
	b = encString(b, m.Server)
	return encStrings(b, m.Tables)
}

// ------------------------------------------------------------ queries --

// Query executes one SQL statement.
type Query struct {
	ID   uint64
	SQL  string
	Opts ExecOptions
}

func (Query) msgType() byte { return TQuery }
func (m Query) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	b = encString(b, m.SQL)
	return m.Opts.encode(b)
}

// Result carries a query's AU-relation answer.
type Result struct {
	ID  uint64
	Rel *core.Relation
}

func (Result) msgType() byte { return TResult }
func (m Result) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encRelation(b, m.Rel)
}

// Error reports a failed request.
type Error struct {
	ID      uint64
	Code    string // one of the Code* constants
	Message string
}

func (Error) msgType() byte { return TError }
func (m Error) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	b = encString(b, m.Code)
	return encString(b, m.Message)
}

// -------------------------------------------------- prepared statements --

// Prepare compiles a statement server-side.
type Prepare struct {
	ID  uint64
	SQL string
}

func (Prepare) msgType() byte { return TPrepare }
func (m Prepare) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encString(b, m.SQL)
}

// PrepareOK returns the statement handle.
type PrepareOK struct {
	ID   uint64
	Stmt uint64
}

func (PrepareOK) msgType() byte { return TPrepareOK }
func (m PrepareOK) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encUvarint(b, m.Stmt)
}

// ExecStmt executes a prepared statement.
type ExecStmt struct {
	ID   uint64
	Stmt uint64
	Opts ExecOptions
}

func (ExecStmt) msgType() byte { return TExecStmt }
func (m ExecStmt) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	b = encUvarint(b, m.Stmt)
	return m.Opts.encode(b)
}

// CloseStmt drops a prepared statement.
type CloseStmt struct {
	ID   uint64
	Stmt uint64
}

func (CloseStmt) msgType() byte { return TCloseStmt }
func (m CloseStmt) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encUvarint(b, m.Stmt)
}

// OK is the bare success acknowledgement.
type OK struct{ ID uint64 }

func (OK) msgType() byte            { return TOK }
func (m OK) encode(b []byte) []byte { return encUvarint(b, m.ID) }

// ------------------------------------------------------------- ingest --

// CopyBegin opens a bulk-ingest stream for one table.
type CopyBegin struct {
	ID    uint64
	Table string
	Cols  []string
}

func (CopyBegin) msgType() byte { return TCopyBegin }
func (m CopyBegin) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	b = encString(b, m.Table)
	return encStrings(b, m.Cols)
}

// CopyData carries one chunk of range tuples for the open copy stream.
type CopyData struct {
	ID     uint64
	Tuples []core.Tuple
}

func (CopyData) msgType() byte { return TCopyData }
func (m CopyData) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	arity := 0
	if len(m.Tuples) > 0 {
		arity = len(m.Tuples[0].Vals)
	}
	return encTuples(b, arity, m.Tuples)
}

// CopyEnd closes the stream and registers the table.
type CopyEnd struct{ ID uint64 }

func (CopyEnd) msgType() byte            { return TCopyEnd }
func (m CopyEnd) encode(b []byte) []byte { return encUvarint(b, m.ID) }

// CopyOK acknowledges a completed ingest.
type CopyOK struct {
	ID   uint64
	Rows uint64
}

func (CopyOK) msgType() byte { return TCopyOK }
func (m CopyOK) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encUvarint(b, m.Rows)
}

// -------------------------------------------------------- diagnostics --

// Explain requests a plan explanation; with Analyze it executes the
// query through the instrumented physical layer and returns per-operator
// counters. The answer is rendered server-side (ExplainResult.Text), the
// same text audbsh prints locally.
type Explain struct {
	ID      uint64
	SQL     string
	Opts    ExecOptions
	Analyze bool
}

func (Explain) msgType() byte { return TExplain }
func (m Explain) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	b = encString(b, m.SQL)
	b = m.Opts.encode(b)
	return encBool(b, m.Analyze)
}

// ExplainResult carries the rendered explanation.
type ExplainResult struct {
	ID   uint64
	Text string
}

func (ExplainResult) msgType() byte { return TExplainResult }
func (m ExplainResult) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encString(b, m.Text)
}

// TableStats requests a table's statistics (rendered); with Analyze the
// statistics are recollected first.
type TableStats struct {
	ID      uint64
	Table   string
	Analyze bool
}

func (TableStats) msgType() byte { return TTableStats }
func (m TableStats) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	b = encString(b, m.Table)
	return encBool(b, m.Analyze)
}

// StatsResult carries rendered table statistics.
type StatsResult struct {
	ID   uint64
	Text string
}

func (StatsResult) msgType() byte { return TStatsResult }
func (m StatsResult) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encString(b, m.Text)
}

// Trace requests a fully instrumented execution: the server runs the
// query through Database.Trace and answers with the rendered span tree
// (parse → optimize → cost → lower → per-operator execute), plus
// server-side spans for admission-queue wait and wire encoding.
type Trace struct {
	ID   uint64
	SQL  string
	Opts ExecOptions
}

func (Trace) msgType() byte { return TTrace }
func (m Trace) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	b = encString(b, m.SQL)
	return m.Opts.encode(b)
}

// TraceResult carries the rendered span tree.
type TraceResult struct {
	ID   uint64
	Text string
}

func (TraceResult) msgType() byte { return TTraceResult }
func (m TraceResult) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encString(b, m.Text)
}

// ServerStats requests the server's metrics snapshot (connection and
// admission counters, per-code errors, byte totals, plus the embedded
// database's registry) and its most recent sampled request traces.
type ServerStats struct{ ID uint64 }

func (ServerStats) msgType() byte            { return TServerStats }
func (m ServerStats) encode(b []byte) []byte { return encUvarint(b, m.ID) }

// ServerStatsResult carries the rendered server statistics.
type ServerStatsResult struct {
	ID   uint64
	Text string
}

func (ServerStatsResult) msgType() byte { return TServerStatsResult }
func (m ServerStatsResult) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encString(b, m.Text)
}

// ------------------------------------------------------------ control --

// Cancel aborts the in-flight or queued request with the same ID. It is
// fire-and-forget: the cancelled request answers with Error(CodeCanceled).
type Cancel struct{ ID uint64 }

func (Cancel) msgType() byte            { return TCancel }
func (m Cancel) encode(b []byte) []byte { return encUvarint(b, m.ID) }

// Ping checks liveness.
type Ping struct{ ID uint64 }

func (Ping) msgType() byte            { return TPing }
func (m Ping) encode(b []byte) []byte { return encUvarint(b, m.ID) }

// Pong answers Ping.
type Pong struct{ ID uint64 }

func (Pong) msgType() byte            { return TPong }
func (m Pong) encode(b []byte) []byte { return encUvarint(b, m.ID) }

// ListTables requests the current table names.
type ListTables struct{ ID uint64 }

func (ListTables) msgType() byte            { return TListTables }
func (m ListTables) encode(b []byte) []byte { return encUvarint(b, m.ID) }

// Tables answers ListTables with the sorted table names.
type Tables struct {
	ID    uint64
	Names []string
}

func (Tables) msgType() byte { return TTables }
func (m Tables) encode(b []byte) []byte {
	b = encUvarint(b, m.ID)
	return encStrings(b, m.Names)
}

// ----------------------------------------------------------- decoding --

// decodeMsg decodes one frame payload.
func decodeMsg(t byte, payload []byte) (Msg, error) {
	d := &dec{b: payload}
	var m Msg
	switch t {
	case THello:
		m = Hello{Version: uint32(d.uvarint()), Client: d.string()}
	case THelloOK:
		m = HelloOK{Version: uint32(d.uvarint()), Server: d.string(), Tables: d.strings()}
	case TQuery:
		m = Query{ID: d.uvarint(), SQL: d.string(), Opts: d.execOptions()}
	case TResult:
		m = Result{ID: d.uvarint(), Rel: d.relation()}
	case TError:
		m = Error{ID: d.uvarint(), Code: d.string(), Message: d.string()}
	case TPrepare:
		m = Prepare{ID: d.uvarint(), SQL: d.string()}
	case TPrepareOK:
		m = PrepareOK{ID: d.uvarint(), Stmt: d.uvarint()}
	case TExecStmt:
		m = ExecStmt{ID: d.uvarint(), Stmt: d.uvarint(), Opts: d.execOptions()}
	case TCloseStmt:
		m = CloseStmt{ID: d.uvarint(), Stmt: d.uvarint()}
	case TOK:
		m = OK{ID: d.uvarint()}
	case TCopyBegin:
		m = CopyBegin{ID: d.uvarint(), Table: d.string(), Cols: d.strings()}
	case TCopyData:
		m = CopyData{ID: d.uvarint(), Tuples: d.tuples()}
	case TCopyEnd:
		m = CopyEnd{ID: d.uvarint()}
	case TCopyOK:
		m = CopyOK{ID: d.uvarint(), Rows: d.uvarint()}
	case TExplain:
		m = Explain{ID: d.uvarint(), SQL: d.string(), Opts: d.execOptions(), Analyze: d.bool()}
	case TExplainResult:
		m = ExplainResult{ID: d.uvarint(), Text: d.string()}
	case TTableStats:
		m = TableStats{ID: d.uvarint(), Table: d.string(), Analyze: d.bool()}
	case TStatsResult:
		m = StatsResult{ID: d.uvarint(), Text: d.string()}
	case TTrace:
		m = Trace{ID: d.uvarint(), SQL: d.string(), Opts: d.execOptions()}
	case TTraceResult:
		m = TraceResult{ID: d.uvarint(), Text: d.string()}
	case TServerStats:
		m = ServerStats{ID: d.uvarint()}
	case TServerStatsResult:
		m = ServerStatsResult{ID: d.uvarint(), Text: d.string()}
	case TCancel:
		m = Cancel{ID: d.uvarint()}
	case TPing:
		m = Ping{ID: d.uvarint()}
	case TPong:
		m = Pong{ID: d.uvarint()}
	case TListTables:
		m = ListTables{ID: d.uvarint()}
	case TTables:
		m = Tables{ID: d.uvarint(), Names: d.strings()}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
	if err := d.finish(TypeName(t)); err != nil {
		return nil, err
	}
	return m, nil
}

// ResponseID extracts the request ID a server->client message answers.
// It reports false for messages that are not responses (Hello, requests).
func ResponseID(m Msg) (uint64, bool) {
	switch m := m.(type) {
	case Result:
		return m.ID, true
	case Error:
		return m.ID, true
	case PrepareOK:
		return m.ID, true
	case OK:
		return m.ID, true
	case CopyOK:
		return m.ID, true
	case ExplainResult:
		return m.ID, true
	case StatsResult:
		return m.ID, true
	case TraceResult:
		return m.ID, true
	case ServerStatsResult:
		return m.ID, true
	case Pong:
		return m.ID, true
	case Tables:
		return m.ID, true
	}
	return 0, false
}
