package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Encoding primitives. Encoders append to a caller-owned []byte (the
// Writer's frame buffer); the decoder is a cursor with a sticky error so
// message decoders read fields linearly and check once at the end.

// ---------------------------------------------------------- encoders --

func encBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func encUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func encVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func encString(b []byte, s string) []byte {
	b = encUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func encStrings(b []byte, ss []string) []byte {
	b = encUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = encString(b, s)
	}
	return b
}

// encValue writes one domain value: a kind byte plus the payload the
// kind needs (null and the infinity sentinels are the kind byte alone).
func encValue(b []byte, v types.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case types.KindBool:
		b = encBool(b, v.AsBool())
	case types.KindInt:
		b = encVarint(b, v.AsInt())
	case types.KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
	case types.KindString:
		b = encString(b, v.AsString())
	}
	return b
}

// Range-value tags: the common shapes collapse to a single stored value.
const (
	rvCertain byte = iota // [v/v/v]: one value
	rvFull                // [-inf/sg/+inf]: one value
	rvRange               // general triple: three values
)

// encRangeVal writes one range-annotated value compactly.
func encRangeVal(b []byte, v rangeval.V) []byte {
	switch {
	case v.IsCertain():
		b = append(b, rvCertain)
		return encValue(b, v.SG)
	case v.Lo.Kind() == types.KindNegInf && v.Hi.Kind() == types.KindPosInf:
		b = append(b, rvFull)
		return encValue(b, v.SG)
	default:
		b = append(b, rvRange)
		b = encValue(b, v.Lo)
		b = encValue(b, v.SG)
		return encValue(b, v.Hi)
	}
}

// Multiplicity tags.
const (
	multCertain byte = iota // (n,n,n): one varint
	multTriple              // general: three varints
)

// encMult writes a multiplicity triple compactly.
func encMult(b []byte, m core.Mult) []byte {
	if m.Lo == m.SG && m.SG == m.Hi {
		b = append(b, multCertain)
		return encVarint(b, m.SG)
	}
	b = append(b, multTriple)
	b = encVarint(b, m.Lo)
	b = encVarint(b, m.SG)
	return encVarint(b, m.Hi)
}

// encTuple writes one AU-tuple (values then multiplicity). The arity is
// carried by the surrounding message, not repeated per tuple.
func encTuple(b []byte, t core.Tuple) []byte {
	for _, v := range t.Vals {
		b = encRangeVal(b, v)
	}
	return encMult(b, t.M)
}

// encTuples writes a counted tuple chunk prefixed with its arity.
func encTuples(b []byte, arity int, ts []core.Tuple) []byte {
	b = encUvarint(b, uint64(arity))
	b = encUvarint(b, uint64(len(ts)))
	for _, t := range ts {
		b = encTuple(b, t)
	}
	return b
}

// AppendRelation appends the wire encoding of a relation to b and
// returns the extended slice. It exists so the server can measure a
// result's encoded size (the wire-encode span of a traced query)
// without sending it.
func AppendRelation(b []byte, r *core.Relation) []byte {
	return encRelation(b, r)
}

// encRelation writes a whole AU-relation: schema then tuples. Both
// storage representations encode identically (EachTuple yields the same
// rows either way; every value is copied into the buffer immediately).
func encRelation(b []byte, r *core.Relation) []byte {
	b = encStrings(b, r.Schema.Attrs)
	b = encUvarint(b, uint64(r.Len()))
	_ = r.EachTuple(func(t core.Tuple) error {
		b = encTuple(b, t)
		return nil
	})
	return b
}

// ---------------------------------------------------------- decoder --

// dec is a decoding cursor with a sticky error.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *dec) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and sanity-bounds it against the
// remaining payload (each element costs at least min bytes), so a corrupt
// length cannot drive a huge allocation.
func (d *dec) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(d.b)-d.off)/uint64(min)+1 {
		d.fail("implausible count %d at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

func (d *dec) string() string {
	n := d.count(1)
	b := d.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *dec) strings() []string {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.string()
	}
	return out
}

func (d *dec) value() types.Value {
	switch k := types.Kind(d.u8()); k {
	case types.KindNull:
		return types.Null()
	case types.KindBool:
		return types.Bool(d.bool())
	case types.KindInt:
		return types.Int(d.varint())
	case types.KindFloat:
		b := d.bytes(8)
		if b == nil {
			return types.Null()
		}
		return types.Float(math.Float64frombits(binary.BigEndian.Uint64(b)))
	case types.KindString:
		return types.String(d.string())
	case types.KindNegInf:
		return types.NegInf()
	case types.KindPosInf:
		return types.PosInf()
	default:
		d.fail("unknown value kind %d", k)
		return types.Null()
	}
}

func (d *dec) rangeVal() rangeval.V {
	switch tag := d.u8(); tag {
	case rvCertain:
		return rangeval.Certain(d.value())
	case rvFull:
		return rangeval.Full(d.value())
	case rvRange:
		lo, sg, hi := d.value(), d.value(), d.value()
		if d.err != nil {
			return rangeval.V{}
		}
		v, err := rangeval.Checked(lo, sg, hi)
		if err != nil {
			d.fail("%v", err)
			return rangeval.V{}
		}
		return v
	default:
		d.fail("unknown range-value tag %d", tag)
		return rangeval.V{}
	}
}

func (d *dec) mult() core.Mult {
	switch tag := d.u8(); tag {
	case multCertain:
		n := d.varint()
		return core.Mult{Lo: n, SG: n, Hi: n}
	case multTriple:
		m := core.Mult{Lo: d.varint(), SG: d.varint(), Hi: d.varint()}
		if d.err == nil && !m.Valid() {
			d.fail("invalid multiplicity triple (%d,%d,%d)", m.Lo, m.SG, m.Hi)
		}
		return m
	default:
		d.fail("unknown multiplicity tag %d", tag)
		return core.Mult{}
	}
}

func (d *dec) tuple(arity int) core.Tuple {
	vals := make(rangeval.Tuple, arity)
	for i := range vals {
		vals[i] = d.rangeVal()
	}
	return core.Tuple{Vals: vals, M: d.mult()}
}

// tuples reads a counted tuple chunk (arity prefix included).
func (d *dec) tuples() []core.Tuple {
	arity := d.count(1)
	n := d.count(2) // a tuple is at least a mult tag + varint... but arity 0 tuples are just that
	if d.err != nil {
		return nil
	}
	out := make([]core.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.tuple(arity))
		if d.err != nil {
			return nil
		}
	}
	return out
}

// relation decodes an AU-relation, materializing it straight into its
// storage representation: the rows stream through a RelationBuilder, so a
// mostly-certain result arrives in sparse columnar form without ever
// holding the dense triples (the default auto policy decides, exactly as
// catalog registration would).
func (d *dec) relation() *core.Relation {
	attrs := d.strings()
	n := d.count(2)
	if d.err != nil {
		return nil
	}
	b := core.NewRelationBuilder(schema.New(attrs...), n)
	for i := 0; i < n; i++ {
		t := d.tuple(len(attrs))
		if d.err != nil {
			return nil
		}
		b.Add(t)
	}
	return b.Finish(core.StoragePolicy{})
}

// finish fails on trailing bytes, so every decoder is exact.
func (d *dec) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %s: %d trailing bytes", what, len(d.b)-d.off)
	}
	return nil
}
