// Package wire implements the AU-DB client/server protocol: a simple
// length-prefixed binary framing with a compact encoding for range
// tuples. It is the shared language of cmd/audbd (the server), the
// public client package, and audbsh's remote mode.
//
// # Frame layout
//
// Every message travels in one frame:
//
//	+------+----------------------+---------------------+
//	| type | payload length (u32) | payload (length B)  |
//	| 1 B  | big endian           |                     |
//	+------+----------------------+---------------------+
//
// The type byte identifies the message (see the T* constants); the
// payload is the message's own encoding (enc.go primitives: varints,
// length-prefixed strings, tagged values). A reader enforces a maximum
// payload length (DefaultMaxFrame unless configured) so a corrupt or
// hostile peer cannot make it allocate unboundedly.
//
// # Conversation
//
// The client opens with Hello and the server answers HelloOK (version
// negotiation is equality on Version today). After that the client sends
// requests, each carrying a client-chosen request ID, and the server
// answers every request with exactly one terminal response frame bearing
// the same ID — Result, PrepareOK, OK, CopyOK, ExplainResult,
// StatsResult, Tables, Pong or Error — except Cancel, which is
// fire-and-forget: it makes the in-flight request with that ID fail
// promptly with an Error frame of code CodeCanceled. COPY ingest is the
// one multi-frame request: CopyBegin, any number of CopyData frames,
// then CopyEnd, answered by a single CopyOK (or Error).
//
// Requests on one connection execute in order, one at a time; the
// server's read loop stays responsive while a query runs, which is what
// makes Cancel (and abrupt disconnect) abort server-side work in
// milliseconds.
//
// # Range tuples on the wire
//
// Attribute values are range triples [lb/sg/ub] and every tuple carries
// an (lb, sg, ub) multiplicity. The encoding spends one tag byte to
// collapse the common certain cases (see encRangeVal/encMult): a certain
// attribute costs 1 tag + 1 value, a fully unknown one 1 tag + 1 value,
// and only a genuine range pays for three values; a (1,1,1)
// multiplicity costs two bytes total.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version spoken by this package. Hello carries
// it; the server rejects mismatched clients with CodeProto.
const Version = 1

// DefaultMaxFrame is the payload-size cap a Reader enforces unless
// configured otherwise: large enough for a hefty result relation, small
// enough to bound a single allocation.
const DefaultMaxFrame = 64 << 20

// Message type bytes. The zero value is invalid on purpose: a zeroed
// frame header fails decoding instead of aliasing a real message.
const (
	TInvalid byte = iota

	// Session setup.
	THello   // client -> server: version, client name
	THelloOK // server -> client: version, server name, table names

	// Query execution.
	TQuery  // client -> server: SQL + options
	TResult // server -> client: an AU-relation

	// Prepared statements.
	TPrepare   // client -> server: SQL
	TPrepareOK // server -> client: statement handle
	TExecStmt  // client -> server: statement handle + options
	TCloseStmt // client -> server: statement handle

	// Bulk ingest (COPY).
	TCopyBegin // client -> server: table name, columns
	TCopyData  // client -> server: a chunk of range tuples
	TCopyEnd   // client -> server: finish + register
	TCopyOK    // server -> client: rows ingested

	// Plan diagnostics.
	TExplain       // client -> server: SQL + options (+ analyze flag)
	TExplainResult // server -> client: rendered text
	TTableStats    // client -> server: table name (+ analyze flag)
	TStatsResult   // server -> client: rendered statistics

	// Control.
	TCancel     // client -> server: abort the in-flight request with this ID
	TPing       // client -> server
	TPong       // server -> client
	TListTables // client -> server
	TTables     // server -> client: table names
	TOK         // server -> client: bare acknowledgement
	TError      // server -> client: request failed

	// Observability (appended so earlier type bytes stay stable).
	TTrace             // client -> server: SQL + options, run with lifecycle tracing
	TTraceResult       // server -> client: rendered span tree
	TServerStats       // client -> server: request a server metrics snapshot
	TServerStatsResult // server -> client: rendered snapshot
)

// typeNames renders type bytes for diagnostics.
var typeNames = map[byte]string{
	THello: "Hello", THelloOK: "HelloOK",
	TQuery: "Query", TResult: "Result",
	TPrepare: "Prepare", TPrepareOK: "PrepareOK",
	TExecStmt: "ExecStmt", TCloseStmt: "CloseStmt",
	TCopyBegin: "CopyBegin", TCopyData: "CopyData", TCopyEnd: "CopyEnd", TCopyOK: "CopyOK",
	TExplain: "Explain", TExplainResult: "ExplainResult",
	TTableStats: "TableStats", TStatsResult: "StatsResult",
	TCancel: "Cancel", TPing: "Ping", TPong: "Pong",
	TListTables: "ListTables", TTables: "Tables",
	TOK: "OK", TError: "Error",
	TTrace: "Trace", TTraceResult: "TraceResult",
	TServerStats: "ServerStats", TServerStatsResult: "ServerStatsResult",
}

// Type reports a message's type byte (for diagnostics outside the
// package; encoding uses it internally).
func Type(m Msg) byte { return m.msgType() }

// TypeName names a message type byte for diagnostics.
func TypeName(t byte) string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("type(%d)", t)
}

// Error codes carried by the Error message. Codes are short stable
// strings (not numbers) so logs and tests read directly.
const (
	CodeProto        = "proto"         // protocol violation (bad frame, bad handshake)
	CodeSQL          = "sql"           // compile/plan/execution error
	CodeCanceled     = "canceled"      // cancelled via Cancel frame or client disconnect
	CodeDeadline     = "deadline"      // per-query deadline exceeded
	CodeQueueTimeout = "queue_timeout" // admission queue wait exceeded the limit
	CodeShutdown     = "shutdown"      // server is draining; no new work accepted
	CodeUnknownStmt  = "unknown_stmt"  // ExecStmt/CloseStmt with a stale handle
	CodeInternal     = "internal"      // anything else
)

// ErrFrameTooLarge is returned by a Reader when a frame header announces
// a payload larger than the configured maximum.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// frameHeaderLen is the fixed frame header: type byte + u32 length.
const frameHeaderLen = 5

// ByteCounter observes wire traffic volume; obs.Counter satisfies it.
// Kept as a local interface so the protocol package stays dependency-
// free of the observability layer.
type ByteCounter interface {
	Add(n int64)
}

// Writer frames and writes messages. It buffers nothing beyond the
// frame being written; callers own any locking (the client serializes
// writers, the server writes responses from one goroutine).
type Writer struct {
	w   io.Writer
	buf []byte // reused header+payload assembly buffer
	bc  ByteCounter
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// SetByteCounter counts every written frame's bytes (header included)
// into bc. The server points this at its bytes-out counter.
func (w *Writer) SetByteCounter(bc ByteCounter) { w.bc = bc }

// Write encodes m into one frame and writes it.
func (w *Writer) Write(m Msg) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, m.msgType(), 0, 0, 0, 0)
	w.buf = m.encode(w.buf)
	payload := len(w.buf) - frameHeaderLen
	if payload > DefaultMaxFrame {
		return fmt.Errorf("%w: encoding %s (%d bytes)", ErrFrameTooLarge, TypeName(m.msgType()), payload)
	}
	binary.BigEndian.PutUint32(w.buf[1:frameHeaderLen], uint32(payload))
	_, err := w.w.Write(w.buf)
	if err == nil && w.bc != nil {
		w.bc.Add(int64(len(w.buf)))
	}
	return err
}

// Reader reads and decodes frames.
type Reader struct {
	r        io.Reader
	maxFrame int
	hdr      [frameHeaderLen]byte
	bc       ByteCounter
}

// NewReader returns a Reader with the default frame-size cap.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, maxFrame: DefaultMaxFrame} }

// SetMaxFrame overrides the payload-size cap (advanced use; tests).
func (r *Reader) SetMaxFrame(n int) { r.maxFrame = n }

// SetByteCounter counts every read frame's bytes (header included)
// into bc. The server points this at its bytes-in counter.
func (r *Reader) SetByteCounter(bc ByteCounter) { r.bc = bc }

// Read reads one frame and decodes its message. io.EOF is returned
// untouched on a clean close between frames; a partial frame surfaces
// io.ErrUnexpectedEOF.
func (r *Reader) Read() (Msg, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(r.hdr[1:]))
	if n > r.maxFrame {
		return nil, fmt.Errorf("%w: %s announces %d bytes (max %d)",
			ErrFrameTooLarge, TypeName(r.hdr[0]), n, r.maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if r.bc != nil {
		r.bc.Add(int64(frameHeaderLen + n))
	}
	return decodeMsg(r.hdr[0], payload)
}
