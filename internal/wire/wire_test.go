package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// testRelation covers every value kind, every range-value shape and both
// multiplicity shapes.
func testRelation() *core.Relation {
	r := core.New(schema.New("a", "b", "c"))
	r.Add(core.Tuple{
		Vals: rangeval.Tuple{
			rangeval.Certain(types.Int(42)),
			rangeval.Certain(types.String("hello, world")),
			rangeval.Certain(types.Bool(true)),
		},
		M: core.Mult{Lo: 1, SG: 1, Hi: 1},
	})
	r.Add(core.Tuple{
		Vals: rangeval.Tuple{
			rangeval.New(types.Int(-5), types.Int(0), types.Int(7)),
			rangeval.Full(types.Null()),
			rangeval.New(types.Float(1.5), types.Float(2.25), types.Float(math.MaxFloat64)),
		},
		M: core.Mult{Lo: 0, SG: 1, Hi: 3},
	})
	r.Add(core.Tuple{
		Vals: rangeval.Tuple{
			rangeval.New(types.NegInf(), types.Int(9), types.Int(9)),
			rangeval.New(types.String(""), types.String("x"), types.PosInf()),
			rangeval.Certain(types.Float(-0.125)),
		},
		M: core.Mult{Lo: 2, SG: 2, Hi: 2},
	})
	r.Add(core.Tuple{
		Vals: rangeval.Tuple{
			rangeval.Certain(types.Null()),
			rangeval.New(types.Bool(false), types.Bool(false), types.Bool(true)),
			rangeval.Full(types.String("sg")),
		},
		M: core.Mult{Lo: 0, SG: 0, Hi: 5},
	})
	return r
}

// allMessages is one instance of every message type, with every field
// populated (round-trip equality is reflect.DeepEqual).
func allMessages() []Msg {
	rel := testRelation()
	opts := ExecOptions{
		Engine:          2,
		Workers:         4,
		JoinCompression: 16,
		AggCompression:  8,
		OptimizerOff:    true,
		CostOff:         true,
		Materialized:    true,
		TimeoutMS:       1500,
	}
	return []Msg{
		Hello{Version: Version, Client: "test-client"},
		HelloOK{Version: Version, Server: "audbd/test", Tables: []string{"r", "s"}},
		Query{ID: 1, SQL: "SELECT a FROM r", Opts: opts},
		Query{ID: 2, SQL: "SELECT * FROM r"}, // zero options
		Result{ID: 3, Rel: rel},
		Result{ID: 4, Rel: core.New(schema.New())}, // empty schema, no tuples
		Error{ID: 5, Code: CodeSQL, Message: "unknown table \"nope\""},
		Prepare{ID: 6, SQL: "SELECT b FROM r WHERE a < 3"},
		PrepareOK{ID: 7, Stmt: 99},
		ExecStmt{ID: 8, Stmt: 99, Opts: opts},
		CloseStmt{ID: 9, Stmt: 99},
		OK{ID: 10},
		CopyBegin{ID: 11, Table: "t", Cols: []string{"x", "y", "z"}},
		CopyData{ID: 12, Tuples: rel.Tuples},
		CopyData{ID: 13}, // empty chunk
		CopyEnd{ID: 14},
		CopyOK{ID: 15, Rows: 12345},
		Explain{ID: 16, SQL: "SELECT a FROM r", Opts: opts, Analyze: true},
		ExplainResult{ID: 17, Text: "Scan(r)\n"},
		TableStats{ID: 18, Table: "r", Analyze: true},
		StatsResult{ID: 19, Text: "rows: 4\n"},
		Trace{ID: 25, SQL: "SELECT a FROM r", Opts: opts},
		TraceResult{ID: 26, Text: "query 1ms\n  parse 10µs\n"},
		ServerStats{ID: 27},
		ServerStatsResult{ID: 28, Text: "audbd_requests_total 3\n"},
		Cancel{ID: 20},
		Ping{ID: 21},
		Pong{ID: 22},
		ListTables{ID: 23},
		Tables{ID: 24, Names: []string{"a", "b"}},
	}
}

// TestRoundTripAllMessages: encode -> frame -> decode must reproduce
// every message exactly.
func TestRoundTripAllMessages(t *testing.T) {
	for _, m := range allMessages() {
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(m); err != nil {
			t.Fatalf("%s: write: %v", TypeName(m.msgType()), err)
		}
		got, err := NewReader(&buf).Read()
		if err != nil {
			t.Fatalf("%s: read: %v", TypeName(m.msgType()), err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(got)) {
			t.Errorf("%s: round trip mismatch:\n in: %#v\nout: %#v", TypeName(m.msgType()), m, got)
		}
	}
}

// normalize maps nil and empty slices/relations to a comparable shape:
// the wire cannot distinguish nil from empty, and does not need to.
func normalize(m Msg) Msg {
	switch m := m.(type) {
	case HelloOK:
		m.Tables = orEmpty(m.Tables)
		return m
	case CopyBegin:
		m.Cols = orEmpty(m.Cols)
		return m
	case CopyData:
		if len(m.Tuples) == 0 {
			m.Tuples = nil
		}
		return m
	case Tables:
		m.Names = orEmpty(m.Names)
		return m
	case Result:
		if m.Rel != nil && len(m.Rel.Tuples) == 0 {
			m.Rel.Tuples = nil
		}
		if m.Rel != nil && len(m.Rel.Schema.Attrs) == 0 {
			m.Rel.Schema.Attrs = nil
		}
		return m
	}
	return m
}

func orEmpty(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	return s
}

// TestRelationRoundTripExact: the relation encoding must reproduce the
// bit-identical relation (same String rendering AND same rows — the
// decoder may pick the sparse storage representation, so rows are
// compared through the dense view).
func TestRelationRoundTripExact(t *testing.T) {
	rel := testRelation()
	b := encRelation(nil, rel)
	d := &dec{b: b}
	got := d.relation()
	if err := d.finish("relation"); err != nil {
		t.Fatal(err)
	}
	dense := got.Dense()
	if !reflect.DeepEqual(rel.Schema, dense.Schema) || !reflect.DeepEqual(rel.Tuples, dense.Tuples) {
		t.Fatalf("relation round trip mismatch:\n in: %v\nout: %v", rel, dense)
	}
	if rel.String() != got.String() {
		t.Fatalf("rendering differs:\n%s\nvs\n%s", rel, got)
	}
}

// TestCompactEncoding: certain values and multiplicities must pay the
// compact representation, not three full values.
func TestCompactEncoding(t *testing.T) {
	certain := encRangeVal(nil, rangeval.Certain(types.Int(7)))
	ranged := encRangeVal(nil, rangeval.New(types.Int(1), types.Int(2), types.Int(3)))
	if len(certain) >= len(ranged) {
		t.Errorf("certain value (%dB) should encode smaller than a range (%dB)", len(certain), len(ranged))
	}
	if want := 3; len(certain) != want { // tag + kind + varint
		t.Errorf("certain int = %dB, want %d", len(certain), want)
	}
	if m := encMult(nil, core.Mult{Lo: 1, SG: 1, Hi: 1}); len(m) != 2 { // tag + varint
		t.Errorf("certain mult = %dB, want 2", len(m))
	}
	full := encRangeVal(nil, rangeval.Full(types.Int(5)))
	if len(full) != 3 { // tag + kind + varint; the infinities are implicit
		t.Errorf("full range = %dB, want 3", len(full))
	}
}

// TestValueKindsRoundTrip: every kind of domain value survives.
func TestValueKindsRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null(), types.Bool(true), types.Bool(false),
		types.Int(0), types.Int(-1), types.Int(math.MaxInt64), types.Int(math.MinInt64),
		types.Float(0), types.Float(-1.5), types.Float(math.Inf(1)), types.Float(math.SmallestNonzeroFloat64),
		types.String(""), types.String("héllo\x00world"),
		types.NegInf(), types.PosInf(),
	}
	for _, v := range vals {
		b := encValue(nil, v)
		d := &dec{b: b}
		got := d.value()
		if err := d.finish("value"); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got != v {
			t.Errorf("value round trip: in %#v out %#v", v, got)
		}
	}
}

// TestDecodeErrors: corrupt payloads fail cleanly, never panic.
func TestDecodeErrors(t *testing.T) {
	// Unknown type byte.
	if _, err := decodeMsg(200, nil); err == nil {
		t.Error("unknown type should error")
	}
	// Truncations of every valid message at every length must error or
	// decode without panicking (self-delimiting prefixes may succeed).
	for _, m := range allMessages() {
		full := m.encode(nil)
		for i := 0; i < len(full); i++ {
			decodeMsg(m.msgType(), full[:i]) // must not panic
		}
		// Trailing garbage is always an error.
		if _, err := decodeMsg(m.msgType(), append(append([]byte{}, full...), 0xfe)); err == nil {
			t.Errorf("%s: trailing bytes accepted", TypeName(m.msgType()))
		}
	}
	// Out-of-order range bounds are rejected at decode time.
	bad := append([]byte{rvRange}, encValue(nil, types.Int(9))...)
	bad = append(bad, encValue(nil, types.Int(0))...)
	bad = append(bad, encValue(nil, types.Int(1))...)
	d := &dec{b: bad}
	d.rangeVal()
	if d.err == nil {
		t.Error("out-of-order bounds accepted")
	}
	// Invalid multiplicity triples are rejected.
	badM := []byte{multTriple}
	badM = encVarint(badM, 5)
	badM = encVarint(badM, 1)
	badM = encVarint(badM, 2)
	d = &dec{b: badM}
	d.mult()
	if d.err == nil {
		t.Error("invalid multiplicity accepted")
	}
}

// TestFrameSizeCap: a frame announcing more than the cap is refused
// before allocating.
func TestFrameSizeCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(StatsResult{ID: 1, Text: string(make([]byte, 4096))}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.SetMaxFrame(128)
	if _, err := r.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestPartialFrame: a frame cut mid-payload surfaces ErrUnexpectedEOF;
// a clean close between frames is io.EOF.
func TestPartialFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(Ping{ID: 7}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := NewReader(bytes.NewReader(full[:len(full)-1])).Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("partial payload: want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader(full[:2])).Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("partial header: want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)).Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: want EOF, got %v", err)
	}
}

// TestStreamedMessages: several frames back to back decode in order.
func TestStreamedMessages(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := allMessages()
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.msgType() != want.msgType() {
			t.Fatalf("message %d: got %s want %s", i, TypeName(got.msgType()), TypeName(want.msgType()))
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream: want EOF, got %v", err)
	}
}

// TestByteCounters: reader and writer count whole frames (header
// included) so the server's bytes_in/bytes_out totals match what
// crossed the socket.
func TestByteCounters(t *testing.T) {
	var in, out testCounter
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetByteCounter(&out)
	if err := w.Write(Ping{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(StatsResult{ID: 2, Text: "hello"}); err != nil {
		t.Fatal(err)
	}
	wrote := int64(buf.Len())
	if int64(out) != wrote {
		t.Fatalf("writer counted %d bytes, wire carried %d", out, wrote)
	}
	r := NewReader(&buf)
	r.SetByteCounter(&in)
	for i := 0; i < 2; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	if int64(in) != wrote {
		t.Fatalf("reader counted %d bytes, wire carried %d", in, wrote)
	}
}

type testCounter int64

func (c *testCounter) Add(n int64) { *c += testCounter(n) }

// TestAppendRelation: the exported sizing helper produces exactly the
// bytes Result's encoding embeds.
func TestAppendRelation(t *testing.T) {
	rel := testRelation()
	if got, want := AppendRelation(nil, rel), encRelation(nil, rel); !bytes.Equal(got, want) {
		t.Fatalf("AppendRelation differs from the internal encoding")
	}
}

// TestResponseID: every server->client response exposes its request ID;
// requests and Hello do not.
func TestResponseID(t *testing.T) {
	responses := map[byte]bool{
		TResult: true, TError: true, TPrepareOK: true, TOK: true, TCopyOK: true,
		TExplainResult: true, TStatsResult: true, TPong: true, TTables: true,
		TTraceResult: true, TServerStatsResult: true,
	}
	for _, m := range allMessages() {
		id, ok := ResponseID(m)
		if want := responses[m.msgType()]; ok != want {
			t.Errorf("%s: ResponseID ok=%v want %v", TypeName(m.msgType()), ok, want)
		} else if ok && id == 0 {
			t.Errorf("%s: ResponseID lost the ID", TypeName(m.msgType()))
		}
	}
}
