package metrics

import (
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

func iv(lo, sg, hi int64) rangeval.V {
	return rangeval.New(types.Int(lo), types.Int(sg), types.Int(hi))
}

func row(vs ...int64) types.Tuple {
	out := make(types.Tuple, len(vs))
	for i, v := range vs {
		out[i] = types.Int(v)
	}
	return out
}

func auRel() *core.Relation {
	r := core.New(schema.New("k", "v"))
	r.Add(core.Tuple{Vals: rangeval.Tuple{rangeval.Certain(types.Int(1)), iv(5, 10, 20)}, M: core.Mult{Lo: 1, SG: 1, Hi: 1}})
	r.Add(core.Tuple{Vals: rangeval.Tuple{rangeval.Certain(types.Int(2)), iv(0, 3, 4)}, M: core.Mult{Lo: 0, SG: 1, Hi: 1}})
	return r
}

func TestRecalls(t *testing.T) {
	au := auRel()
	cert := bag.New(schema.New("k", "v"))
	cert.Add(row(1, 10), 1)
	if got := CertainRecall(au, cert); got != 1 {
		t.Errorf("certain recall %f", got)
	}
	cert.Add(row(2, 3), 1) // covered only by a Lo=0 tuple -> missed
	if got := CertainRecall(au, cert); got != 0.5 {
		t.Errorf("certain recall %f", got)
	}
	poss := bag.New(schema.New("k", "v"))
	poss.Add(row(1, 7), 1)
	poss.Add(row(2, 4), 1)
	poss.Add(row(9, 9), 1)
	if got := PossibleRecall(au, poss); got < 0.66 || got > 0.67 {
		t.Errorf("possible recall %f", got)
	}
	if got := PossibleRecallByKey(au, poss, []int{0}); got < 0.66 || got > 0.67 {
		t.Errorf("possible recall by key %f", got)
	}
	// Empty ground truths are trivially satisfied.
	empty := bag.New(schema.New("k", "v"))
	if CertainRecall(au, empty) != 1 || PossibleRecall(au, empty) != 1 || PossibleRecallByKey(au, empty, []int{0}) != 1 {
		t.Error("empty ground truth")
	}
}

func TestTightness(t *testing.T) {
	exact := map[string][2]types.Value{
		rangeval.Tuple{rangeval.Certain(types.Int(1))}.SGKey(): {types.Int(8), types.Int(12)},
	}
	st := TightnessOf(auRel(), []int{0}, 1, exact)
	if st.N != 1 {
		t.Fatalf("N=%d", st.N)
	}
	// AU width 15 vs exact width 4 -> (15+1)/(4+1) = 3.2
	if st.Mean < 3.1 || st.Mean > 3.3 {
		t.Errorf("tightness %f", st.Mean)
	}
	if st.Min != st.Max || st.Min != st.Mean {
		t.Error("single sample stats")
	}
	// Degenerate: no matching groups.
	st = TightnessOf(auRel(), []int{0}, 1, map[string][2]types.Value{})
	if st.N != 0 || st.Min != 0 {
		t.Error("no samples")
	}
	if Tightness(rangeval.Full(types.Int(0)), types.Int(0), types.Int(1)) < 1e10 {
		t.Error("unbounded range should have huge tightness")
	}
	if w := width(types.String("a"), types.String("a")); w != 0 {
		t.Error("equal strings zero width")
	}
	if w := width(types.String("a"), types.String("b")); w != 1 {
		t.Error("distinct strings unit width")
	}
}

func TestOverGrouping(t *testing.T) {
	// Two certain groups, no overlap: 0%.
	r := core.New(schema.New("g", "v"))
	r.Add(core.Tuple{Vals: rangeval.Tuple{rangeval.Certain(types.Int(1)), iv(1, 1, 1)}, M: core.One})
	r.Add(core.Tuple{Vals: rangeval.Tuple{rangeval.Certain(types.Int(2)), iv(1, 1, 1)}, M: core.One})
	if got := OverGrouping(r, []int{0}); got != 0 {
		t.Errorf("no overlap: %f", got)
	}
	// A wide tuple overlapping both groups inflates membership.
	r.Add(core.Tuple{Vals: rangeval.Tuple{iv(1, 1, 2), iv(1, 1, 1)}, M: core.One})
	if got := OverGrouping(r, []int{0}); got <= 0 {
		t.Errorf("overlap should inflate: %f", got)
	}
	if OverGrouping(core.New(schema.New("g")), []int{0}) != 0 {
		t.Error("empty input")
	}
}

func TestMeanRangeWidthAndOverEstimation(t *testing.T) {
	au := auRel()
	if got := MeanRangeWidth(au, 1); got != (15.0+4.0)/2 {
		t.Errorf("mean width %f", got)
	}
	if MeanRangeWidth(core.New(schema.New("a")), 0) != 0 {
		t.Error("empty mean width")
	}
	exact := map[string][2]types.Value{
		rangeval.Tuple{rangeval.Certain(types.Int(1))}.SGKey(): {types.Int(5), types.Int(20)},
		rangeval.Tuple{rangeval.Certain(types.Int(2))}.SGKey(): {types.Int(0), types.Int(4)},
	}
	// Exact bounds equal AU bounds -> factor 1.
	if got := RangeOverEstimation(au, []int{0}, 1, exact); got != 1 {
		t.Errorf("over-estimation %f", got)
	}
	if RangeOverEstimation(au, []int{0}, 1, map[string][2]types.Value{}) != 1 {
		t.Error("no groups default")
	}
}

func TestExactGroupSumBounds(t *testing.T) {
	x := worlds.NewXRelation(schema.New("g", "v"))
	x.AddCertain(row(1, 10))
	x.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(1, 5), row(2, 7)}})
	x.AddBlock(worlds.XTuple{Alts: []types.Tuple{row(2, 3)}, Optional: true})
	bounds := ExactGroupSumBounds(x, 0, 1)
	k1 := string(types.Int(1).AppendKey(nil))
	k2 := string(types.Int(2).AppendKey(nil))
	// Group 1: certain 10 + {0 or 5} -> [10, 15].
	if b := bounds[k1]; b[0].AsInt() != 10 || b[1].AsInt() != 15 {
		t.Errorf("group 1: %v", b)
	}
	// Group 2: {0 or 7} + {0 or 3} -> [0, 10].
	if b := bounds[k2]; b[0].AsInt() != 0 || b[1].AsInt() != 10 {
		t.Errorf("group 2: %v", b)
	}
	// Cross-check against enumeration.
	ws, err := x.Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	minSum, maxSum := map[string]int64{}, map[string]int64{}
	first := true
	for _, w := range ws {
		sums := map[string]int64{k1: 0, k2: 0}
		for i, tup := range w.Tuples {
			k := string(tup[0].AppendKey(nil))
			sums[k] += tup[1].AsInt() * w.Counts[i]
		}
		for k, s := range sums {
			if first || s < minSum[k] {
				minSum[k] = s
			}
			if first || s > maxSum[k] {
				maxSum[k] = s
			}
		}
		first = false
	}
	for _, k := range []string{k1, k2} {
		if bounds[k][0].AsInt() > minSum[k] || bounds[k][1].AsInt() < maxSum[k] {
			t.Errorf("exact bounds not covering enumeration for %q: [%v,%v] vs [%d,%d]",
				k, bounds[k][0], bounds[k][1], minSum[k], maxSum[k])
		}
	}
}
