package metrics

import (
	"fmt"
	"strings"
	"time"
)

// This file holds the runtime side of the metrics package: per-operator
// execution counters for EXPLAIN ANALYZE. The physical executor
// (internal/phys) fills one OpStats per physical operator while the query
// runs; the accuracy measures above are computed after the fact.

// OpStats is one physical operator's execution counters.
type OpStats struct {
	// Op is the logical operator rendering (e.g. "Select[(a < 3)]").
	Op string
	// Strategy names the physical realization: "stream" for pipelined
	// operators, "materialize" for pipeline breakers, "exchange(n)" for a
	// parallel scan segment over n partitions, "top-k" for the fused
	// ORDER BY + LIMIT.
	Strategy string
	// Rows is the number of tuples this operator emitted.
	Rows int64
	// EstRows is the planner's estimated output rows (meaningful when
	// HasEst) — printed next to the actual count so estimate-vs-actual
	// drift is visible in one trace.
	EstRows int64
	// HasEst reports whether the cost model produced an estimate for
	// this operator (false when cost-based planning was off).
	HasEst bool
	// Batches is the number of non-empty batches this operator emitted.
	// Materialized operators stream their result too, so they report
	// ceil(rows / batch size) like any other operator.
	Batches int64
	// ColBatches counts the emitted batches that were columnar
	// (struct-of-arrays views with a selection vector); the remainder were
	// row batches.
	ColBatches int64
	// ColRows is the live rows of the columnar batches (selection-vector
	// survivors) and ColPhysRows their physical rows; their ratio is the
	// mean selection-vector density this operator emitted.
	ColRows     int64
	ColPhysRows int64
	// Elapsed is cumulative wall time spent inside this operator,
	// including its children (the root's Elapsed is the execution time).
	Elapsed time.Duration
	// Children are the input operators' counters.
	Children []*OpStats
}

// Rep names the batch representation the operator emitted: "row", "col",
// "mixed" when both occurred, or "-" when it emitted no batches.
func (s *OpStats) Rep() string {
	switch {
	case s.Batches == 0:
		return "-"
	case s.ColBatches == 0:
		return "row"
	case s.ColBatches == s.Batches:
		return "col"
	default:
		return "mixed"
	}
}

// VecDensity renders the mean selection-vector density of the columnar
// batches (live rows over physical rows), or "-" when none were emitted.
func (s *OpStats) VecDensity() string {
	if s.ColPhysRows == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(s.ColRows)/float64(s.ColPhysRows))
}

// Self is the operator's own time: Elapsed minus the children's.
func (s *OpStats) Self() time.Duration {
	d := s.Elapsed
	for _, c := range s.Children {
		d -= c.Elapsed
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ExecStats is the EXPLAIN ANALYZE result for one execution.
type ExecStats struct {
	// Mode is the executor mode ("pipelined" or "materialized").
	Mode string
	// BatchSize is the pipeline batch size used.
	BatchSize int
	// Total is the end-to-end execution time (open, drain, merge).
	Total time.Duration
	// Root is the root operator's counters.
	Root *OpStats
}

// String renders the analysis as an indented operator tree, one line per
// operator with its strategy and counters — the format audbsh \analyze
// prints. Every column is padded to the widest value in the tree, so
// est=- lines align with est=<n> lines and large counts never shift
// the columns to their right.
func (s *ExecStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "execution: %s (batch %d), total %s\n", s.Mode, s.BatchSize, fmtDur(s.Total))
	if s.Root == nil {
		return sb.String()
	}
	type row struct {
		op, strategy, rep, rows, est, batches, vec, time, self string
	}
	var rows []row
	var wOp, wStrategy, wRep, wRows, wEst, wBatches, wVec int
	var collect func(o *OpStats, depth int)
	collect = func(o *OpStats, depth int) {
		est := "-"
		if o.HasEst {
			est = fmt.Sprintf("%d", o.EstRows)
		}
		r := row{
			op:       strings.Repeat("  ", depth) + o.Op,
			strategy: o.Strategy,
			rep:      o.Rep(),
			rows:     fmt.Sprintf("%d", o.Rows),
			est:      est,
			batches:  fmt.Sprintf("%d", o.Batches),
			vec:      o.VecDensity(),
			time:     fmtDur(o.Elapsed),
			self:     fmtDur(o.Self()),
		}
		rows = append(rows, r)
		wOp = max(wOp, len(r.op))
		wStrategy = max(wStrategy, len(r.strategy))
		wRep = max(wRep, len(r.rep))
		wRows = max(wRows, len(r.rows))
		wEst = max(wEst, len(r.est))
		wBatches = max(wBatches, len(r.batches))
		wVec = max(wVec, len(r.vec))
		for _, c := range o.Children {
			collect(c, depth+1)
		}
	}
	collect(s.Root, 0)
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-*s  %-*s rep=%-*s rows=%-*s est=%-*s batches=%-*s vec=%-*s time=%s (self %s)\n",
			wOp, r.op, wStrategy, r.strategy, wRep, r.rep, wRows, r.rows, wEst, r.est, wBatches, r.batches, wVec, r.vec, r.time, r.self)
	}
	return sb.String()
}

// fmtDur renders durations with millisecond precision suited to query
// timings (short times keep microsecond detail).
func fmtDur(d time.Duration) string {
	if d < time.Millisecond {
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
