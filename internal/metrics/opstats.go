package metrics

import (
	"fmt"
	"strings"
	"time"
)

// This file holds the runtime side of the metrics package: per-operator
// execution counters for EXPLAIN ANALYZE. The physical executor
// (internal/phys) fills one OpStats per physical operator while the query
// runs; the accuracy measures above are computed after the fact.

// OpStats is one physical operator's execution counters.
type OpStats struct {
	// Op is the logical operator rendering (e.g. "Select[(a < 3)]").
	Op string
	// Strategy names the physical realization: "stream" for pipelined
	// operators, "materialize" for pipeline breakers, "exchange(n)" for a
	// parallel scan segment over n partitions, "top-k" for the fused
	// ORDER BY + LIMIT.
	Strategy string
	// Rows is the number of tuples this operator emitted.
	Rows int64
	// EstRows is the planner's estimated output rows (meaningful when
	// HasEst) — printed next to the actual count so estimate-vs-actual
	// drift is visible in one trace.
	EstRows int64
	// HasEst reports whether the cost model produced an estimate for
	// this operator (false when cost-based planning was off).
	HasEst bool
	// Batches is the number of non-empty batches this operator emitted.
	// Materialized operators stream their result too, so they report
	// ceil(rows / batch size) like any other operator.
	Batches int64
	// Elapsed is cumulative wall time spent inside this operator,
	// including its children (the root's Elapsed is the execution time).
	Elapsed time.Duration
	// Children are the input operators' counters.
	Children []*OpStats
}

// Self is the operator's own time: Elapsed minus the children's.
func (s *OpStats) Self() time.Duration {
	d := s.Elapsed
	for _, c := range s.Children {
		d -= c.Elapsed
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ExecStats is the EXPLAIN ANALYZE result for one execution.
type ExecStats struct {
	// Mode is the executor mode ("pipelined" or "materialized").
	Mode string
	// BatchSize is the pipeline batch size used.
	BatchSize int
	// Total is the end-to-end execution time (open, drain, merge).
	Total time.Duration
	// Root is the root operator's counters.
	Root *OpStats
}

// String renders the analysis as an indented operator tree, one line per
// operator with its strategy and counters — the format audbsh \analyze
// prints.
func (s *ExecStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "execution: %s (batch %d), total %s\n", s.Mode, s.BatchSize, fmtDur(s.Total))
	if s.Root == nil {
		return sb.String()
	}
	// Measure the operator column so counters align.
	width := 0
	var measure func(o *OpStats, depth int)
	measure = func(o *OpStats, depth int) {
		if w := 2*depth + len(o.Op); w > width {
			width = w
		}
		for _, c := range o.Children {
			measure(c, depth+1)
		}
	}
	measure(s.Root, 0)
	var walk func(o *OpStats, depth int)
	walk = func(o *OpStats, depth int) {
		op := strings.Repeat("  ", depth) + o.Op
		est := "-"
		if o.HasEst {
			est = fmt.Sprintf("%d", o.EstRows)
		}
		fmt.Fprintf(&sb, "%-*s  %-12s rows=%-8d est=%-8s batches=%-6d time=%s (self %s)\n",
			width, op, o.Strategy, o.Rows, est, o.Batches, fmtDur(o.Elapsed), fmtDur(o.Self()))
		for _, c := range o.Children {
			walk(c, depth+1)
		}
	}
	walk(s.Root, 0)
	return sb.String()
}

// fmtDur renders durations with millisecond precision suited to query
// timings (short times keep microsecond detail).
func fmtDur(d time.Duration) string {
	if d < time.Millisecond {
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
