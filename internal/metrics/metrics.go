// Package metrics implements the accuracy measures of the paper's
// evaluation (Section 12): certain/possible tuple recall, attribute-bound
// tightness relative to exact bounds (Figure 17), over-grouping percentage
// and aggregation-range over-estimation (Figure 15), plus exact per-group
// aggregate bounds for block-independent inputs used as the ground truth.
package metrics

import (
	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/worlds"
)

// CertainRecall returns the fraction of ground-truth certain tuples that
// the AU result reports as certain (covered by a tuple with a positive
// lower multiplicity).
func CertainRecall(au *core.Relation, certain *bag.Relation) float64 {
	if certain.Len() == 0 {
		return 1
	}
	hit := 0
	for _, gt := range certain.Tuples {
		for _, t := range au.Tuples {
			if t.M.Lo > 0 && t.Vals.Bounds(gt) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(certain.Len())
}

// PossibleRecall returns the fraction of ground-truth possible tuples
// covered by some AU tuple's ranges.
func PossibleRecall(au *core.Relation, possible *bag.Relation) float64 {
	if possible.Len() == 0 {
		return 1
	}
	hit := 0
	for _, gt := range possible.Tuples {
		for _, t := range au.Tuples {
			if t.Vals.Bounds(gt) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(possible.Len())
}

// PossibleRecallByKey groups ground-truth possible tuples by the given key
// columns and reports the fraction of groups with at least one covered
// member (the paper's "pos.tup by id" metric).
func PossibleRecallByKey(au *core.Relation, possible *bag.Relation, keyCols []int) float64 {
	if possible.Len() == 0 {
		return 1
	}
	groups := map[string]bool{} // key -> covered
	for _, gt := range possible.Tuples {
		k := gt.KeyOn(keyCols)
		if _, ok := groups[k]; !ok {
			groups[k] = false
		}
		if groups[k] {
			continue
		}
		for _, t := range au.Tuples {
			if t.Vals.Bounds(gt) {
				groups[k] = true
				break
			}
		}
	}
	hit := 0
	for _, ok := range groups {
		if ok {
			hit++
		}
	}
	return float64(hit) / float64(len(groups))
}

// Tightness compares the width of an AU attribute range against an exact
// range, as a ratio >= 1 (1 = exactly tight). Zero-width exact ranges are
// smoothed by one domain step.
func Tightness(auRange rangeval.V, exactLo, exactHi types.Value) float64 {
	const eps = 1.0
	aw := width(auRange.Lo, auRange.Hi)
	ew := width(exactLo, exactHi)
	return (aw + eps) / (ew + eps)
}

func width(lo, hi types.Value) float64 {
	if lo.IsInf() || hi.IsInf() {
		return 1e18
	}
	if !lo.IsNumeric() || !hi.IsNumeric() {
		if types.Equal(lo, hi) {
			return 0
		}
		return 1
	}
	return hi.AsFloat() - lo.AsFloat()
}

// TightnessStats summarizes per-tuple tightness ratios for one value
// column of an AU result against exact per-key bounds.
type TightnessStats struct {
	Min, Max, Mean float64
	N              int
}

// TightnessOf computes tightness of column col of every certain AU tuple
// against exact bounds keyed by the tuple's SG key columns.
func TightnessOf(au *core.Relation, keyCols []int, col int, exact map[string][2]types.Value) TightnessStats {
	st := TightnessStats{Min: 1e18, Max: 0}
	for _, t := range au.Tuples {
		if t.M.Lo == 0 {
			continue
		}
		key := t.Vals.Project(keyCols).SGKey()
		ex, ok := exact[key]
		if !ok {
			continue
		}
		r := Tightness(t.Vals[col], ex[0], ex[1])
		if r < st.Min {
			st.Min = r
		}
		if r > st.Max {
			st.Max = r
		}
		st.Mean += r
		st.N++
	}
	if st.N > 0 {
		st.Mean /= float64(st.N)
	} else {
		st.Min, st.Max = 0, 0
	}
	return st
}

// OverGrouping measures how much larger the possible-membership side of
// aggregation is than the exact SG grouping (Figure 15a): the percentage
// increase of overlap-join pairs over α-membership pairs.
func OverGrouping(in *core.Relation, groupBy []int) float64 {
	type box struct {
		gb      rangeval.Tuple
		members int
	}
	groups := map[string]*box{}
	var order []string
	for _, t := range in.Tuples {
		gb := t.Vals.Project(groupBy)
		k := gb.SGKey()
		g, ok := groups[k]
		if !ok {
			sgPoint := make(rangeval.Tuple, len(groupBy))
			for i := range groupBy {
				sgPoint[i] = rangeval.Certain(gb[i].SG)
			}
			g = &box{gb: sgPoint}
			groups[k] = g
			order = append(order, k)
		}
		g.gb = g.gb.Union(gb)
		g.members++
	}
	alphaPairs, overlapPairs := 0, 0
	for _, k := range order {
		g := groups[k]
		alphaPairs += g.members
		for _, t := range in.Tuples {
			if t.Vals.Project(groupBy).Overlaps(g.gb) {
				overlapPairs++
			}
		}
	}
	if alphaPairs == 0 {
		return 0
	}
	return 100 * (float64(overlapPairs)/float64(alphaPairs) - 1)
}

// RangeOverEstimation compares AU aggregate ranges against exact bounds
// per group (Figure 15b), returning the mean width ratio.
func RangeOverEstimation(au *core.Relation, keyCols []int, col int, exact map[string][2]types.Value) float64 {
	total, n := 0.0, 0
	for _, t := range au.Tuples {
		key := t.Vals.Project(keyCols).SGKey()
		ex, ok := exact[key]
		if !ok {
			continue
		}
		total += Tightness(t.Vals[col], ex[0], ex[1])
		n++
	}
	if n == 0 {
		return 1
	}
	return total / float64(n)
}

// MeanRangeWidth returns the average bound width of one result column,
// the accuracy measure of Figure 13d.
func MeanRangeWidth(au *core.Relation, col int) float64 {
	if au.Len() == 0 {
		return 0
	}
	total := 0.0
	for _, t := range au.Tuples {
		total += width(t.Vals[col].Lo, t.Vals[col].Hi)
	}
	return total / float64(au.Len())
}

// ExactGroupSumBounds computes the exact per-group bounds of SUM(valCol)
// GROUP BY groupCol for a block-independent x-relation: blocks choose at
// most one alternative, so each block contributes its per-group
// minimum/maximum (with 0 for avoiding the group when possible).
func ExactGroupSumBounds(x *worlds.XRelation, groupCol, valCol int) map[string][2]types.Value {
	out := map[string][2]types.Value{}
	ensure := func(k string) [2]types.Value {
		if v, ok := out[k]; ok {
			return v
		}
		z := [2]types.Value{types.Int(0), types.Int(0)}
		out[k] = z
		return z
	}
	for i := range x.Tuples {
		blk := &x.Tuples[i]
		// Per group: min/max contribution of this block.
		perGroup := map[string][2]types.Value{}
		groupsSeen := map[string]bool{}
		for _, alt := range blk.Alts {
			k := string(alt[groupCol].AppendKey(nil))
			v := alt[valCol]
			if cur, ok := perGroup[k]; ok {
				perGroup[k] = [2]types.Value{types.Min(cur[0], v), types.Max(cur[1], v)}
			} else {
				perGroup[k] = [2]types.Value{v, v}
			}
			groupsSeen[k] = true
		}
		canAvoid := func(k string) bool {
			if blk.IsOptional() || len(groupsSeen) > 1 {
				return true
			}
			return !groupsSeen[k]
		}
		for k, mv := range perGroup {
			cur := ensure(k)
			lo, hi := mv[0], mv[1]
			if canAvoid(k) {
				lo = types.Min(lo, types.Int(0))
				hi = types.Max(hi, types.Int(0))
			}
			nl, err1 := types.Add(cur[0], lo)
			nh, err2 := types.Add(cur[1], hi)
			if err1 == nil && err2 == nil {
				out[k] = [2]types.Value{nl, nh}
			}
		}
	}
	return out
}
