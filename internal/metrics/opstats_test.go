package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestOpStatsSelfAndRender(t *testing.T) {
	leaf := &OpStats{Op: "Scan(t)", Strategy: "stream", Rows: 100, Batches: 2, Elapsed: 3 * time.Millisecond,
		EstRows: 90, HasEst: true}
	mid := &OpStats{Op: "Select[(a < 3)]", Strategy: "stream", Rows: 40, Batches: 2,
		Elapsed: 5 * time.Millisecond, Children: []*OpStats{leaf}}
	root := &OpStats{Op: "Limit(5)", Strategy: "stream", Rows: 5, Batches: 1,
		Elapsed: 6 * time.Millisecond, Children: []*OpStats{mid}}
	if got := mid.Self(); got != 2*time.Millisecond {
		t.Fatalf("Self = %v, want 2ms", got)
	}
	// Clock skew between parent and child samples must not go negative.
	skew := &OpStats{Op: "x", Elapsed: time.Millisecond, Children: []*OpStats{{Elapsed: 2 * time.Millisecond}}}
	if got := skew.Self(); got != 0 {
		t.Fatalf("skewed Self = %v, want 0", got)
	}

	s := &ExecStats{Mode: "pipelined", BatchSize: 64, Total: 7 * time.Millisecond, Root: root}
	out := s.String()
	for _, want := range []string{
		"execution: pipelined (batch 64), total 7.00ms",
		"Limit(5)", "  Select[(a < 3)]", "    Scan(t)",
		"rows=100", "est=90", "batches=2", "self",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// Nil root renders the header only.
	empty := &ExecStats{Mode: "materialized", BatchSize: 1}
	if got := empty.String(); !strings.HasPrefix(got, "execution: materialized") || strings.Count(got, "\n") != 1 {
		t.Fatalf("empty render: %q", got)
	}
}

// TestOpStatsGolden pins the exact ExplainAnalyze rendering: columns
// are padded to the widest value in the tree, so a mixed est=-/est=<n>
// trace (cost model on, but no estimate for every operator) stays
// aligned and wide counters never shift the columns after them. The
// rep= column names the batch representation each operator emitted and
// vec= its mean selection-vector density (row batches render vec=-).
func TestOpStatsGolden(t *testing.T) {
	leaf := &OpStats{Op: "Scan(t)", Strategy: "exchange(4)", Rows: 123456, Batches: 1930,
		ColBatches: 1930, ColRows: 123456, ColPhysRows: 287000,
		EstRows: 100000, HasEst: true, Elapsed: 3 * time.Millisecond}
	mid := &OpStats{Op: "Select[(a < 3)]", Strategy: "stream", Rows: 40, Batches: 2,
		Elapsed: 5 * time.Millisecond, Children: []*OpStats{leaf}}
	root := &OpStats{Op: "Limit(5)", Strategy: "stream", Rows: 5, EstRows: 5, HasEst: true,
		Batches: 1, Elapsed: 6 * time.Millisecond, Children: []*OpStats{mid}}
	s := &ExecStats{Mode: "pipelined", BatchSize: 64, Total: 7 * time.Millisecond, Root: root}

	want := "" +
		"execution: pipelined (batch 64), total 7.00ms\n" +
		"Limit(5)           stream      rep=row rows=5      est=5      batches=1    vec=-    time=6.00ms (self 1.00ms)\n" +
		"  Select[(a < 3)]  stream      rep=row rows=40     est=-      batches=2    vec=-    time=5.00ms (self 2.00ms)\n" +
		"    Scan(t)        exchange(4) rep=col rows=123456 est=100000 batches=1930 vec=0.43 time=3.00ms (self 3.00ms)\n"
	if got := s.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestOpStatsRep pins the representation labels: no batches renders "-",
// all-columnar "col", all-row "row", and a mix "mixed".
func TestOpStatsRep(t *testing.T) {
	for _, tc := range []struct {
		st   OpStats
		want string
	}{
		{OpStats{}, "-"},
		{OpStats{Batches: 3}, "row"},
		{OpStats{Batches: 3, ColBatches: 3}, "col"},
		{OpStats{Batches: 3, ColBatches: 1}, "mixed"},
	} {
		if got := tc.st.Rep(); got != tc.want {
			t.Fatalf("Rep(%+v) = %q, want %q", tc.st, got, tc.want)
		}
	}
	dense := OpStats{Batches: 2, ColBatches: 2, ColRows: 5, ColPhysRows: 10}
	if got := dense.VecDensity(); got != "0.50" {
		t.Fatalf("VecDensity = %q, want 0.50", got)
	}
	rowOnly := OpStats{Batches: 2}
	if got := rowOnly.VecDensity(); got != "-" {
		t.Fatalf("row-only VecDensity = %q, want -", got)
	}
}

// TestOpStatsEstColumn: operators without an estimate render est=-, ones
// with an estimate render the number — so a cost-off trace is visibly
// distinct from an est-0 trace.
func TestOpStatsEstColumn(t *testing.T) {
	with := &OpStats{Op: "Scan(t)", Strategy: "stream", Rows: 3, EstRows: 0, HasEst: true}
	s := &ExecStats{Mode: "pipelined", BatchSize: 1, Root: with}
	if out := s.String(); !strings.Contains(out, "est=0") {
		t.Fatalf("explicit zero estimate missing:\n%s", out)
	}
	without := &OpStats{Op: "Scan(t)", Strategy: "stream", Rows: 3}
	s = &ExecStats{Mode: "pipelined", BatchSize: 1, Root: without}
	if out := s.String(); !strings.Contains(out, "est=-") {
		t.Fatalf("missing est placeholder:\n%s", out)
	}
}
