package ra

import (
	"strings"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/schema"
)

func catalog() CatalogMap {
	return CatalogMap{
		"r": schema.New("a", "b"),
		"s": schema.New("c"),
	}
}

func TestCatalogMap(t *testing.T) {
	cat := catalog()
	s, err := cat.TableSchema("r")
	if err != nil || s.Arity() != 2 {
		t.Fatal("lookup r")
	}
	if _, err := cat.TableSchema("R"); err != nil {
		t.Error("case-insensitive lookup")
	}
	if _, err := cat.TableSchema("zzz"); err == nil {
		t.Error("missing table")
	}
}

func TestInferSchemaAllNodes(t *testing.T) {
	cat := catalog()
	scanR := &Scan{Table: "r"}
	scanS := &Scan{Table: "s"}
	cases := []struct {
		node Node
		want string
	}{
		{scanR, "(a, b)"},
		{&Select{Child: scanR, Pred: expr.CBool(true)}, "(a, b)"},
		{&Project{Child: scanR, Cols: []ProjCol{{E: expr.Col(0, "a"), Name: "x"}}}, "(x)"},
		{&Join{Left: scanR, Right: scanS}, "(a, b, c)"},
		{&Union{Left: scanS, Right: scanS}, "(c)"},
		{&Diff{Left: scanS, Right: scanS}, "(c)"},
		{&Distinct{Child: scanR}, "(a, b)"},
		{&Agg{Child: scanR, GroupBy: []int{1}, Aggs: []AggSpec{{Fn: AggSum, Arg: expr.Col(0, "a"), Name: "s"}}}, "(b, s)"},
		{&OrderBy{Child: scanR, Keys: []int{0}}, "(a, b)"},
		{&Limit{Child: scanR, N: 5}, "(a, b)"},
	}
	for _, c := range cases {
		s, err := InferSchema(c.node, cat)
		if err != nil {
			t.Fatalf("%s: %v", c.node, err)
		}
		if s.String() != c.want {
			t.Errorf("%s schema %s want %s", c.node, s, c.want)
		}
	}
	// Errors.
	if _, err := InferSchema(&Scan{Table: "zzz"}, cat); err == nil {
		t.Error("missing table")
	}
	if _, err := InferSchema(&Union{Left: scanR, Right: scanS}, cat); err == nil {
		t.Error("union arity mismatch")
	}
	if _, err := InferSchema(&Diff{Left: scanR, Right: scanS}, cat); err == nil {
		t.Error("diff arity mismatch")
	}
	if _, err := InferSchema(&Agg{Child: scanR, GroupBy: []int{9}}, cat); err == nil {
		t.Error("group-by out of range")
	}
}

func TestValidate(t *testing.T) {
	cat := catalog()
	good := &Agg{
		Child: &Join{
			Left:  &Select{Child: &Scan{Table: "r"}, Pred: expr.Gt(expr.Col(0, "a"), expr.CInt(1))},
			Right: &Scan{Table: "s"},
			Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
		},
		GroupBy: []int{1},
		Aggs:    []AggSpec{{Fn: AggMax, Arg: expr.Col(2, "c"), Name: "m"}},
	}
	if err := Validate(good, cat); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Node{
		&Select{Child: &Scan{Table: "r"}, Pred: expr.Col(5, "")},
		&Project{Child: &Scan{Table: "r"}, Cols: []ProjCol{{E: expr.Col(7, ""), Name: "x"}}},
		&Join{Left: &Scan{Table: "r"}, Right: &Scan{Table: "s"}, Cond: expr.Col(9, "")},
		&Agg{Child: &Scan{Table: "r"}, Aggs: []AggSpec{{Fn: AggSum, Arg: expr.Col(9, ""), Name: "s"}}},
		&Select{Child: &Scan{Table: "zzz"}, Pred: expr.CBool(true)},
	}
	for i, n := range bad {
		if err := Validate(n, cat); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestStringsAndHelpers(t *testing.T) {
	plan := &OrderBy{
		Child: &Limit{
			Child: &Distinct{
				Child: &Diff{
					Left: &Union{
						Left:  &Scan{Table: "s"},
						Right: &Scan{Table: "s"},
					},
					Right: &Scan{Table: "s"},
				},
			},
			N: 3,
		},
		Keys: []int{0},
	}
	rendered := Render(plan)
	for _, want := range []string{"OrderBy", "Limit(3)", "Distinct", "Diff", "Union", "Scan(s)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %s:\n%s", want, rendered)
		}
	}
	tables := Tables(plan)
	if len(tables) != 1 || tables[0] != "s" {
		t.Errorf("tables: %v", tables)
	}
	if (AggSpec{Fn: AggCount, Name: "c"}).String() != "count(*) AS c" {
		t.Error("count(*) rendering")
	}
	if !strings.Contains((AggSpec{Fn: AggSum, Arg: expr.Col(0, "a"), Distinct: true, Name: "d"}).String(), "DISTINCT") {
		t.Error("distinct rendering")
	}
	for _, fn := range []AggFn{AggSum, AggCount, AggMin, AggMax, AggAvg} {
		if fn.String() == "?" {
			t.Error("agg fn rendering")
		}
	}
	cross := &Join{Left: &Scan{Table: "r"}, Right: &Scan{Table: "s"}}
	if cross.String() != "CrossProduct" {
		t.Error("cross product rendering")
	}
}
