package ra

import (
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/schema"
)

// TestCatalogMapMixedCase: a catalog keyed by mixed-case names must
// resolve probes in any case, exactly like core.Catalog — previously
// only the probe was folded, so mixed-case KEYS never resolved.
func TestCatalogMapMixedCase(t *testing.T) {
	cat := CatalogMap{"Emp": schema.New("id", "name")}
	for _, probe := range []string{"Emp", "emp", "EMP", "eMp"} {
		s, err := cat.TableSchema(probe)
		if err != nil {
			t.Errorf("TableSchema(%q): %v", probe, err)
		} else if s.Arity() != 2 {
			t.Errorf("TableSchema(%q): arity %d", probe, s.Arity())
		}
	}
	if _, err := cat.TableSchema("dept"); err == nil {
		t.Error("unknown table should error")
	}
	// Exact matches win over case-folded ones when both exist.
	two := CatalogMap{"T": schema.New("a"), "t": schema.New("a", "b")}
	s, err := two.TableSchema("t")
	if err != nil || s.Arity() != 2 {
		t.Errorf("exact match should win: %v, %v", s, err)
	}
	// Schema inference over a mixed-case catalog works end to end.
	if _, err := InferSchema(&Scan{Table: "emp"}, cat); err != nil {
		t.Errorf("InferSchema over mixed-case catalog: %v", err)
	}
}

func samplePlan() Node {
	return &Project{
		Child: &Select{
			Child: &Join{
				Left:  &Scan{Table: "r"},
				Right: &Scan{Table: "s"},
				Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
			},
			Pred: expr.Lt(expr.Col(1, "b"), expr.CInt(3)),
		},
		Cols: []ProjCol{{E: expr.Col(0, "a"), Name: "a"}},
	}
}

func TestEqual(t *testing.T) {
	if !Equal(samplePlan(), samplePlan()) {
		t.Fatal("structurally identical plans must be Equal")
	}
	if Equal(samplePlan(), &Scan{Table: "r"}) {
		t.Fatal("different operators must differ")
	}
	other := samplePlan().(*Project)
	other.Cols = []ProjCol{{E: expr.Col(0, "a"), Name: "renamed"}}
	if Equal(samplePlan(), other) {
		t.Fatal("different column names must differ")
	}
	agg1 := &Agg{Child: &Scan{Table: "r"}, GroupBy: []int{0},
		Aggs: []AggSpec{{Fn: AggSum, Arg: expr.Col(1, "b"), Name: "s"}}}
	agg2 := &Agg{Child: &Scan{Table: "r"}, GroupBy: []int{0},
		Aggs: []AggSpec{{Fn: AggMax, Arg: expr.Col(1, "b"), Name: "s"}}}
	if Equal(agg1, agg2) {
		t.Fatal("different aggregate functions must differ")
	}
	if !Equal(nil, nil) || Equal(samplePlan(), nil) {
		t.Fatal("nil handling")
	}
	var typed *Scan
	if !Equal(typed, nil) {
		t.Fatal("typed nil equals nil")
	}
}

func TestTransformSharesUnchangedSubtrees(t *testing.T) {
	in := samplePlan()
	out := Transform(in, func(n Node) Node { return n })
	if out != in {
		t.Fatal("identity transform must return the same tree")
	}
	// A rewrite of the selection rebuilds the spine but shares the scans.
	inSel := in.(*Project).Child.(*Select)
	out = Transform(in, func(n Node) Node {
		if s, ok := n.(*Select); ok {
			return &Select{Child: s.Child, Pred: expr.CBool(true)}
		}
		return n
	})
	if out == in {
		t.Fatal("rewrite must produce a new tree")
	}
	outJoin := out.(*Project).Child.(*Select).Child.(*Join)
	if outJoin != inSel.Child.(*Join) {
		t.Fatal("unchanged join subtree must be shared")
	}
	if Equal(out, in) {
		t.Fatal("rewritten plan must differ structurally")
	}
}

func TestWithChildren(t *testing.T) {
	j := &Join{Left: &Scan{Table: "r"}, Right: &Scan{Table: "s"}, Cond: expr.CBool(true)}
	same := WithChildren(j, []Node{j.Left, j.Right})
	if same != Node(j) {
		t.Fatal("identical children must return the original node")
	}
	swapped := WithChildren(j, []Node{j.Right, j.Left}).(*Join)
	if swapped == j || swapped.Left != j.Right || !expr.Equal(swapped.Cond, j.Cond) {
		t.Fatal("replacement must rebuild with shared fields")
	}
}
