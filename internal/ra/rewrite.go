package ra

import (
	"github.com/audb/audb/internal/expr"
)

// This file holds the structural plan utilities the logical optimizer
// (internal/opt) builds on: equality, functional rebuilding, and child
// replacement. Plans are treated as immutable trees — rewrites construct
// new nodes and share unchanged subtrees, so a cached plan (e.g. inside a
// prepared statement) is never mutated behind its owner's back.

// Equal reports structural equality of two plans: same operators, same
// expressions (expr.Equal), same column lists. It is the optimizer's
// fixpoint test and the ground truth for "this rewrite changed nothing".
func Equal(a, b Node) bool {
	if IsNil(a) || IsNil(b) {
		return IsNil(a) && IsNil(b)
	}
	switch x := a.(type) {
	case *Scan:
		y, ok := b.(*Scan)
		return ok && x.Table == y.Table
	case *Select:
		y, ok := b.(*Select)
		return ok && expr.Equal(x.Pred, y.Pred) && Equal(x.Child, y.Child)
	case *Project:
		y, ok := b.(*Project)
		if !ok || len(x.Cols) != len(y.Cols) {
			return false
		}
		for i := range x.Cols {
			if x.Cols[i].Name != y.Cols[i].Name || !expr.Equal(x.Cols[i].E, y.Cols[i].E) {
				return false
			}
		}
		return Equal(x.Child, y.Child)
	case *Join:
		y, ok := b.(*Join)
		return ok && expr.Equal(x.Cond, y.Cond) && Equal(x.Left, y.Left) && Equal(x.Right, y.Right)
	case *Union:
		y, ok := b.(*Union)
		return ok && Equal(x.Left, y.Left) && Equal(x.Right, y.Right)
	case *Diff:
		y, ok := b.(*Diff)
		return ok && Equal(x.Left, y.Left) && Equal(x.Right, y.Right)
	case *Distinct:
		y, ok := b.(*Distinct)
		return ok && Equal(x.Child, y.Child)
	case *Agg:
		y, ok := b.(*Agg)
		if !ok || len(x.GroupBy) != len(y.GroupBy) || len(x.Aggs) != len(y.Aggs) {
			return false
		}
		for i := range x.GroupBy {
			if x.GroupBy[i] != y.GroupBy[i] {
				return false
			}
		}
		for i := range x.Aggs {
			xa, ya := x.Aggs[i], y.Aggs[i]
			if xa.Fn != ya.Fn || xa.Distinct != ya.Distinct || xa.Name != ya.Name || !expr.Equal(xa.Arg, ya.Arg) {
				return false
			}
		}
		return Equal(x.Child, y.Child)
	case *OrderBy:
		y, ok := b.(*OrderBy)
		if !ok || x.Desc != y.Desc || len(x.Keys) != len(y.Keys) {
			return false
		}
		for i := range x.Keys {
			if x.Keys[i] != y.Keys[i] {
				return false
			}
		}
		return Equal(x.Child, y.Child)
	case *Limit:
		y, ok := b.(*Limit)
		return ok && x.N == y.N && Equal(x.Child, y.Child)
	}
	return false
}

// WithChildren returns a copy of n with its inputs replaced, sharing the
// original when every child is identical (pointer equality). The rebuild
// is shallow: expressions and column lists are shared with n.
func WithChildren(n Node, children []Node) Node {
	old := n.Children()
	same := len(old) == len(children)
	for i := 0; same && i < len(old); i++ {
		same = old[i] == children[i]
	}
	if same {
		return n
	}
	switch t := n.(type) {
	case *Select:
		return &Select{Child: children[0], Pred: t.Pred}
	case *Project:
		return &Project{Child: children[0], Cols: t.Cols}
	case *Join:
		return &Join{Left: children[0], Right: children[1], Cond: t.Cond}
	case *Union:
		return &Union{Left: children[0], Right: children[1]}
	case *Diff:
		return &Diff{Left: children[0], Right: children[1]}
	case *Distinct:
		return &Distinct{Child: children[0]}
	case *Agg:
		return &Agg{Child: children[0], GroupBy: t.GroupBy, Aggs: t.Aggs}
	case *OrderBy:
		return &OrderBy{Child: children[0], Keys: t.Keys, Desc: t.Desc}
	case *Limit:
		return &Limit{Child: children[0], N: t.N}
	}
	return n
}

// Transform rebuilds the plan bottom-up: children are transformed first,
// then f rewrites each (rebuilt) node. Returning the input node unchanged
// is the no-op; unchanged subtrees are shared, not copied.
func Transform(n Node, f func(Node) Node) Node {
	if IsNil(n) {
		return n
	}
	old := n.Children()
	if len(old) > 0 {
		next := make([]Node, len(old))
		for i, c := range old {
			next[i] = Transform(c, f)
		}
		n = WithChildren(n, next)
	}
	return f(n)
}
