// Package ra defines the logical relational algebra RA_agg shared by every
// engine in this repository: the full relational algebra (selection,
// projection, join, union, difference, duplicate elimination) extended with
// grouping aggregation, as studied in Sections 7-9 of the paper. Plans are
// engine-agnostic trees; the deterministic bag engine (internal/bag), the
// native AU-DB engine (internal/core) and the rewriting middleware
// (internal/encoding) all interpret the same nodes.
package ra

import (
	"fmt"
	"reflect"
	"strings"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/schema"
)

// Node is a logical query plan node.
type Node interface {
	// Children returns the input plans.
	Children() []Node
	// String renders the operator (without inputs).
	String() string
}

// IsNil reports whether n is nil or a typed nil pointer boxed in the
// interface — either would panic inside an engine. The one nil check
// every executor entry point shares.
func IsNil(n Node) bool {
	if n == nil {
		return true
	}
	v := reflect.ValueOf(n)
	return v.Kind() == reflect.Pointer && v.IsNil()
}

// Catalog resolves table names to schemas during schema inference.
type Catalog interface {
	TableSchema(name string) (schema.Schema, error)
}

// CatalogMap is a map-backed catalog.
type CatalogMap map[string]schema.Schema

// TableSchema implements Catalog. Resolution folds case the same way
// core.Catalog and both executors do (schema.ResolveFold: exact match
// first, then case-insensitive), so a catalog keyed by mixed-case names
// resolves identically everywhere. Unknown names report the available
// tables in sorted order, never Go map order.
func (c CatalogMap) TableSchema(name string) (schema.Schema, error) {
	if s, ok := schema.LookupFold(c, name); ok {
		return s, nil
	}
	return schema.Schema{}, schema.UnknownTable("ra", name, schema.SortedNames(c))
}

// Scan reads a base table.
type Scan struct{ Table string }

func (s *Scan) Children() []Node { return nil }
func (s *Scan) String() string   { return "Scan(" + s.Table + ")" }

// Select filters tuples by a boolean predicate over the child schema.
type Select struct {
	Child Node
	Pred  expr.Expr
}

func (s *Select) Children() []Node { return []Node{s.Child} }
func (s *Select) String() string   { return "Select[" + s.Pred.String() + "]" }

// ProjCol is one output column of a generalized projection.
type ProjCol struct {
	E    expr.Expr
	Name string
}

// Project is generalized projection (may compute scalar expressions).
type Project struct {
	Child Node
	Cols  []ProjCol
}

func (p *Project) Children() []Node { return []Node{p.Child} }
func (p *Project) String() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = c.E.String() + " AS " + c.Name
	}
	return "Project[" + strings.Join(parts, ", ") + "]"
}

// Join combines two inputs; Cond is evaluated over the concatenated schema
// (left attributes first). A nil Cond is a cross product.
type Join struct {
	Left, Right Node
	Cond        expr.Expr
}

func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }
func (j *Join) String() string {
	if j.Cond == nil {
		return "CrossProduct"
	}
	return "Join[" + j.Cond.String() + "]"
}

// Union is bag union (annotations add).
type Union struct{ Left, Right Node }

func (u *Union) Children() []Node { return []Node{u.Left, u.Right} }
func (u *Union) String() string   { return "Union" }

// Diff is bag difference (monus; Section 8 semantics over AU-DBs).
type Diff struct{ Left, Right Node }

func (d *Diff) Children() []Node { return []Node{d.Left, d.Right} }
func (d *Diff) String() string   { return "Diff" }

// Distinct is duplicate elimination (δ).
type Distinct struct{ Child Node }

func (d *Distinct) Children() []Node { return []Node{d.Child} }
func (d *Distinct) String() string   { return "Distinct" }

// AggFn identifies an aggregation function.
type AggFn uint8

const (
	AggSum AggFn = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

func (f AggFn) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "?"
}

// AggSpec is one aggregation function application. A nil Arg means count(*).
type AggSpec struct {
	Fn       AggFn
	Arg      expr.Expr
	Distinct bool
	Name     string
}

func (a AggSpec) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s) AS %s", a.Fn, d, arg, a.Name)
}

// Agg is grouping aggregation. GroupBy lists attribute indices of the child
// schema; an empty GroupBy aggregates the whole input into one tuple.
type Agg struct {
	Child   Node
	GroupBy []int
	Aggs    []AggSpec
}

func (a *Agg) Children() []Node { return []Node{a.Child} }
func (a *Agg) String() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		parts[i] = s.String()
	}
	return fmt.Sprintf("Agg[group=%v; %s]", a.GroupBy, strings.Join(parts, ", "))
}

// OrderBy sorts the output (for presentation; annotations unaffected).
// Ordering compares only the selected-guess component of the key
// attributes — intentional, per the paper's Section 6 semantics: an
// AU-relation annotates one selected-guess world, and presentation order
// is defined in that world (see core.OrderCompare for the full rationale
// and the regression test guarding it).
type OrderBy struct {
	Child Node
	Keys  []int
	Desc  bool
}

func (o *OrderBy) Children() []Node { return []Node{o.Child} }
func (o *OrderBy) String() string   { return fmt.Sprintf("OrderBy%v", o.Keys) }

// Limit truncates the output to the first N rows (presentation only; under
// uncertainty the row order is that of the selected-guess world).
type Limit struct {
	Child Node
	N     int
}

func (l *Limit) Children() []Node { return []Node{l.Child} }
func (l *Limit) String() string   { return fmt.Sprintf("Limit(%d)", l.N) }

// InferSchema computes the output schema of a plan.
func InferSchema(n Node, cat Catalog) (schema.Schema, error) {
	switch t := n.(type) {
	case *Scan:
		return cat.TableSchema(t.Table)
	case *Select:
		return InferSchema(t.Child, cat)
	case *Project:
		attrs := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			attrs[i] = c.Name
		}
		return schema.Schema{Attrs: attrs}, nil
	case *Join:
		ls, err := InferSchema(t.Left, cat)
		if err != nil {
			return schema.Schema{}, err
		}
		rs, err := InferSchema(t.Right, cat)
		if err != nil {
			return schema.Schema{}, err
		}
		return ls.Concat(rs), nil
	case *Union:
		ls, err := InferSchema(t.Left, cat)
		if err != nil {
			return schema.Schema{}, err
		}
		rs, err := InferSchema(t.Right, cat)
		if err != nil {
			return schema.Schema{}, err
		}
		if ls.Arity() != rs.Arity() {
			return schema.Schema{}, fmt.Errorf("ra: union arity mismatch: %s vs %s", ls, rs)
		}
		return ls, nil
	case *Diff:
		ls, err := InferSchema(t.Left, cat)
		if err != nil {
			return schema.Schema{}, err
		}
		rs, err := InferSchema(t.Right, cat)
		if err != nil {
			return schema.Schema{}, err
		}
		if ls.Arity() != rs.Arity() {
			return schema.Schema{}, fmt.Errorf("ra: difference arity mismatch: %s vs %s", ls, rs)
		}
		return ls, nil
	case *Distinct:
		return InferSchema(t.Child, cat)
	case *Agg:
		cs, err := InferSchema(t.Child, cat)
		if err != nil {
			return schema.Schema{}, err
		}
		attrs := make([]string, 0, len(t.GroupBy)+len(t.Aggs))
		for _, g := range t.GroupBy {
			if g < 0 || g >= cs.Arity() {
				return schema.Schema{}, fmt.Errorf("ra: group-by index %d out of range for %s", g, cs)
			}
			attrs = append(attrs, cs.Attrs[g])
		}
		for _, a := range t.Aggs {
			attrs = append(attrs, a.Name)
		}
		return schema.Schema{Attrs: attrs}, nil
	case *OrderBy:
		return InferSchema(t.Child, cat)
	case *Limit:
		return InferSchema(t.Child, cat)
	}
	return schema.Schema{}, fmt.Errorf("ra: unknown node %T", n)
}

// Validate checks expression attribute indices against inferred schemas.
func Validate(n Node, cat Catalog) error {
	_, err := InferSchema(n, cat)
	if err != nil {
		return err
	}
	check := func(e expr.Expr, s schema.Schema, where string) error {
		if e == nil {
			return nil
		}
		if m := expr.MaxAttr(e); m >= s.Arity() {
			return fmt.Errorf("ra: %s references attribute #%d beyond schema %s", where, m, s)
		}
		return nil
	}
	switch t := n.(type) {
	case *Select:
		cs, err := InferSchema(t.Child, cat)
		if err != nil {
			return err
		}
		if err := check(t.Pred, cs, "selection predicate"); err != nil {
			return err
		}
	case *Project:
		cs, err := InferSchema(t.Child, cat)
		if err != nil {
			return err
		}
		for _, c := range t.Cols {
			if err := check(c.E, cs, "projection "+c.Name); err != nil {
				return err
			}
		}
	case *Join:
		js, err := InferSchema(t, cat)
		if err != nil {
			return err
		}
		if err := check(t.Cond, js, "join condition"); err != nil {
			return err
		}
	case *Agg:
		cs, err := InferSchema(t.Child, cat)
		if err != nil {
			return err
		}
		for _, a := range t.Aggs {
			if err := check(a.Arg, cs, "aggregate "+a.Name); err != nil {
				return err
			}
		}
	}
	for _, c := range n.Children() {
		if err := Validate(c, cat); err != nil {
			return err
		}
	}
	return nil
}

// Render pretty-prints a plan tree.
func Render(n Node) string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Tables returns the set of base tables referenced by the plan.
func Tables(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok && !seen[s.Table] {
			seen[s.Table] = true
			out = append(out, s.Table)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}
