package bench

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/metrics"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/translate"
)

// wideData builds the microbenchmark table in both representations.
func wideData(rows, cols int, domain int64, cellProb, rangeFrac float64, seed int64) (bag.DB, core.DB) {
	det := bag.DB{"t": synth.WideTable(rows, cols, domain, seed)}
	var eligible []int
	for c := 0; c < cols; c++ {
		eligible = append(eligible, c)
	}
	x := synth.Inject(det, synth.InjectConfig{
		CellProb: cellProb, MaxAlts: 8, RangeFrac: rangeFrac,
		EligibleCols: eligible, Seed: seed + 1,
	})
	return det, core.DB{"t": translate.XDB(x["t"])}
}

// Fig13a: sum aggregation, varying the number of group-by attributes
// (35k rows, 5% uncertainty, value ranges 5% of the domain, CT=25).
func Fig13a(ctx context.Context, cfg Config) (*Table, error) {
	rows, cols := cfg.size(35000, 4000), 100
	counts := []int{1, 5, 10, 25, 50, 75, 99}
	if cfg.quickish() {
		counts = []int{1, 5, 10, 25}
	}
	if cfg.Tiny {
		counts = []int{1, 10}
	}
	det, audb := wideData(rows, cols, 100, 0.05, 0.05, cfg.Seed)
	t := &Table{
		ID:      "fig13a",
		Title:   "sum(a0) varying #group-by attributes (seconds)",
		Headers: []string{"#group-by", "AUDB", "Det"},
		Notes:   []string{fmt.Sprintf("%d rows, 5%% uncertainty, CT=25", rows)},
	}
	for _, n := range counts {
		groupBy := make([]int, n)
		for i := range groupBy {
			groupBy[i] = i + 1 // group on a1..aN, aggregate a0
		}
		plan := &ra.Agg{
			Child:   &ra.Scan{Table: "t"},
			GroupBy: groupBy,
			Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(0, "a0"), Name: "s"}},
		}
		audbT, err := timeIt(func() error {
			_, e := core.Exec(ctx, plan, audb, cfg.opts(core.Options{AggCompression: 25}))
			return e
		})
		if err != nil {
			return nil, err
		}
		detT, err := timeIt(func() error { _, e := bag.Exec(ctx, plan, det); return e })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), secs(audbT), secs(detT)})
	}
	return t, nil
}

// Fig13b: varying the number of aggregation functions (one group-by).
func Fig13b(ctx context.Context, cfg Config) (*Table, error) {
	rows, cols := cfg.size(35000, 4000), 100
	counts := []int{1, 5, 10, 25, 50, 99}
	if cfg.quickish() {
		counts = []int{1, 5, 10, 25}
	}
	if cfg.Tiny {
		counts = []int{1, 10}
	}
	det, audb := wideData(rows, cols, 100, 0.05, 0.05, cfg.Seed)
	t := &Table{
		ID:      "fig13b",
		Title:   "varying #aggregation functions, grouped by a0 (seconds)",
		Headers: []string{"#aggs", "AUDB", "Det"},
		Notes:   []string{fmt.Sprintf("%d rows, 5%% uncertainty, CT=25", rows)},
	}
	for _, n := range counts {
		aggs := make([]ra.AggSpec, n)
		for i := range aggs {
			aggs[i] = ra.AggSpec{
				Fn: ra.AggSum, Arg: expr.Col(1+i%(cols-1), ""),
				Name: fmt.Sprintf("s%d", i),
			}
		}
		plan := &ra.Agg{Child: &ra.Scan{Table: "t"}, GroupBy: []int{0}, Aggs: aggs}
		audbT, err := timeIt(func() error {
			_, e := core.Exec(ctx, plan, audb, cfg.opts(core.Options{AggCompression: 25}))
			return e
		})
		if err != nil {
			return nil, err
		}
		detT, err := timeIt(func() error { _, e := bag.Exec(ctx, plan, det); return e })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), secs(audbT), secs(detT)})
	}
	return t, nil
}

// Fig13c: varying the size of attribute-level ranges under different
// compression targets (runtime of AU-DB aggregation).
func Fig13c(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(35000, 4000)
	fracs := []float64{0.05, 0.25, 0.5, 0.75, 1.0}
	if cfg.Tiny {
		fracs = []float64{0.05, 1.0}
	}
	cts := []int{4, 32, 256, 512}
	t := &Table{
		ID:      "fig13c",
		Title:   "sum(a1) group by a0: attribute bound size vs compression (seconds)",
		Headers: []string{"range/domain", "CT=4", "CT=32", "CT=256", "CT=512"},
		Notes:   []string{fmt.Sprintf("%d rows, 5%% uncertainty, domain 100k", rows)},
	}
	for _, frac := range fracs {
		_, audb := wideData(rows, 4, 100000, 0.05, frac, cfg.Seed)
		plan := &ra.Agg{
			Child:   &ra.Scan{Table: "t"},
			GroupBy: []int{0},
			Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "a1"), Name: "s"}},
		}
		row := []string{fmt.Sprintf("%.0f%%", frac*100)}
		for _, ct := range cts {
			dt, err := timeIt(func() error {
				_, e := core.Exec(ctx, plan, audb, cfg.opts(core.Options{AggCompression: ct}))
				return e
			})
			if err != nil {
				return nil, err
			}
			row = append(row, secs(dt))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13d: the compression trade-off: runtime and mean result range while
// sweeping the compression target.
func Fig13d(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(10000, 2000)
	cts := []int{4, 32, 256, 4096, 65536}
	if cfg.quickish() {
		cts = []int{4, 32, 256, 2048}
	}
	if cfg.Tiny {
		cts = []int{4, 256}
	}
	_, audb := wideData(rows, 4, 10000, 0.10, 0.02, cfg.Seed)
	plan := &ra.Agg{
		Child:   &ra.Scan{Table: "t"},
		GroupBy: []int{0},
		Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "a1"), Name: "s"}},
	}
	t := &Table{
		ID:      "fig13d",
		Title:   "compression trade-off: runtime vs mean aggregate range",
		Headers: []string{"CT", "seconds", "mean range"},
		Notes:   []string{fmt.Sprintf("%d rows, 10%% uncertainty", rows)},
	}
	for _, ct := range cts {
		var res *core.Relation
		dt, err := timeIt(func() error {
			r, e := core.Exec(ctx, plan, audb, cfg.opts(core.Options{AggCompression: ct}))
			res = r
			return e
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ct), secs(dt),
			fmt.Sprintf("%.0f", metrics.MeanRangeWidth(res, 1)),
		})
	}
	return t, nil
}
