// Package bench is the experiment harness: one entry per table and figure
// of the paper's evaluation (Section 12), each regenerating the same
// rows/series the paper reports. Absolute numbers differ from the paper's
// Postgres-on-2011-hardware setup; the shape — which system wins, growth
// trends, crossover points — is the reproduction target (EXPERIMENTS.md
// records paper-vs-measured for every experiment).
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/baselines"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/tpch"
	"github.com/audb/audb/internal/translate"
	"github.com/audb/audb/internal/worlds"
)

// Config selects experiment sizes and executor parallelism.
type Config struct {
	// Quick shrinks datasets so the whole suite runs in minutes; the full
	// sizes approach the paper's (scaled to this in-memory engine).
	Quick bool
	// Tiny shrinks Quick sizes further so the whole suite smoke-runs in
	// seconds — the mode used by `go test ./internal/bench` unless
	// AUDB_BENCH_FULL is set. Implies Quick.
	Tiny bool
	Seed int64
	// Workers is threaded into core.Options.Workers for every AU-DB
	// execution: 0 uses one worker per CPU, 1 forces the serial reference
	// path.
	Workers int
}

// opts overlays this configuration's parallelism onto experiment-chosen
// compression options.
func (c Config) opts(o core.Options) core.Options {
	o.Workers = c.Workers
	return o
}

// size picks the dataset size for the active mode. Tiny falls back to
// quick/8 (at least 1) when no explicit tiny size is given.
func (c Config) size(full, quick int) int {
	if c.Tiny {
		if s := quick / 8; s > 0 {
			return s
		}
		return 1
	}
	if c.Quick {
		return quick
	}
	return full
}

// sizef is size for fractional scale factors.
func (c Config) sizef(full, quick float64) float64 {
	if c.Tiny {
		return quick / 8
	}
	if c.Quick {
		return quick
	}
	return full
}

// quickish reports whether any reduced-size mode is active.
func (c Config) quickish() bool { return c.Quick || c.Tiny }

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render pretty-prints the table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	line(dashes(widths))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Experiment is a runnable experiment. Run observes ctx: cancelling it
// aborts the experiment's query executions with ctx.Err().
type Experiment struct {
	ID    string
	Run   func(context.Context, Config) (*Table, error)
	Paper string // which paper artifact it reproduces
}

// Registry lists every experiment in figure order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig10a", Run: Fig10a, Paper: "Figure 10a: PDBench queries, varying uncertainty"},
		{ID: "fig10b", Run: Fig10b, Paper: "Figure 10b: PDBench queries, varying database size"},
		{ID: "fig11", Run: Fig11, Paper: "Figure 11: simple aggregation, varying #agg operators"},
		{ID: "fig12", Run: Fig12, Paper: "Figure 12: TPC-H query performance"},
		{ID: "fig13a", Run: Fig13a, Paper: "Figure 13a: varying #group-by attributes"},
		{ID: "fig13b", Run: Fig13b, Paper: "Figure 13b: varying #aggregation functions"},
		{ID: "fig13c", Run: Fig13c, Paper: "Figure 13c: varying attribute range"},
		{ID: "fig13d", Run: Fig13d, Paper: "Figure 13d: compression trade-off"},
		{ID: "fig14", Run: Fig14, Paper: "Figure 14a/b: join optimization"},
		{ID: "fig15", Run: Fig15, Paper: "Figure 15a/b: aggregation accuracy vs attribute range"},
		{ID: "fig16", Run: Fig16, Paper: "Figure 16: multi-join performance"},
		{ID: "fig17", Run: Fig17, Paper: "Figure 17: real-world data (simulated profiles)"},
		{ID: "par", Run: Par, Paper: "parallel executor scaling (this implementation; not a paper figure)"},
		{ID: "prep", Run: Prep, Paper: "prepared-statement plan-cache throughput (this implementation; not a paper figure)"},
		{ID: "opt", Run: Opt, Paper: "logical optimizer speedup (this implementation; not a paper figure)"},
		{ID: "pipe", Run: Pipe, Paper: "pipelined vs materialized executor (this implementation; not a paper figure)"},
		{ID: "cbo", Run: CBO, Paper: "cost-based join reordering speedup (this implementation; not a paper figure)"},
		{ID: "net", Run: Net, Paper: "audbd service layer: concurrent client throughput (this implementation; not a paper figure)"},
		{ID: "sparse", Run: Sparse, Paper: "sparse storage: resident memory and certain-only fast paths (this implementation; not a paper figure)"},
		{ID: "vec", Run: Vec, Paper: "columnar batches + vectorized kernels vs row batches (this implementation; not a paper figure)"},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// timeIt measures one execution.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func ratio(d, base time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(d)/float64(base))
}

// pdbenchData bundles one uncertain TPC-H instance in every
// representation the compared systems consume.
type pdbenchData struct {
	det    bag.DB
	xdb    worlds.XDB
	audb   core.DB
	uadb   *baselines.UADB
	libkin bag.DB
	cat    ra.CatalogMap
}

func buildPDBench(scale, cellProb, rangeFrac float64, seed int64) *pdbenchData {
	det := tpch.Generate(tpch.Config{Scale: scale, Seed: seed})
	xdb := tpch.InjectPDBench(det, cellProb, rangeFrac, seed+1)
	return &pdbenchData{
		det:    det,
		xdb:    xdb,
		audb:   translate.XDBAll(xdb),
		uadb:   baselines.UADBFromX(xdb),
		libkin: baselines.LibkinDB(xdb),
		cat:    ra.CatalogMap(det.Schemas()),
	}
}

// sortedKeys for deterministic iteration over maps.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
