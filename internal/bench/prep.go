package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/audb/audb"
)

// Prep measures the plan-cache payoff of the session API (not a paper
// figure): the same aggregation query executed unprepared (parse + plan
// every time via QueryContext), prepared (Prepare once, Stmt.Exec in a
// loop), and prepared from several goroutines concurrently. The workload
// is deliberately small so the front-end cost is a visible fraction of
// each execution — exactly the regime a prepared statement exists for.
func Prep(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(2048, 512)
	iters := cfg.size(2000, 400)
	const workers = 4

	db, query := prepWorkload(cfg, rows)
	t := &Table{
		ID:      "prep",
		Title:   "prepared vs unprepared execution throughput",
		Headers: []string{"mode", "execs", "total_ms", "per-exec_ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("rows=%d iters=%d; query: %s", rows, iters, query),
			fmt.Sprintf("concurrent mode uses %d goroutines over one shared Stmt", workers),
		},
	}

	// Unprepared: the full parse/plan/execute pipeline per call.
	unprep, err := timeIt(func() error {
		for i := 0; i < iters; i++ {
			if _, err := db.QueryContext(ctx, query); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("prep: unprepared: %w", err)
	}

	stmt, err := db.Prepare(query)
	if err != nil {
		return nil, fmt.Errorf("prep: %w", err)
	}

	// Prepared, serial: parse/plan amortized away.
	prep, err := timeIt(func() error {
		for i := 0; i < iters; i++ {
			if _, err := stmt.Exec(ctx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("prep: prepared: %w", err)
	}

	// Prepared, concurrent: one shared Stmt, several executing goroutines.
	conc, err := timeIt(func() error {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		per := (iters + workers - 1) / workers
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := stmt.Exec(ctx); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("prep: concurrent: %w", err)
	}
	concExecs := ((iters + workers - 1) / workers) * workers

	perExec := func(total time.Duration, n int) time.Duration {
		if n == 0 {
			return 0
		}
		return total / time.Duration(n)
	}
	t.Rows = append(t.Rows,
		[]string{"unprepared", fmt.Sprint(iters), ms(unprep), ms(perExec(unprep, iters)), "1.00"},
		[]string{"prepared", fmt.Sprint(iters), ms(prep), ms(perExec(prep, iters)), ratio(unprep, prep)},
		[]string{"prepared 4g", fmt.Sprint(concExecs), ms(conc), ms(perExec(conc, concExecs)), ratio(perExec(unprep, iters), perExec(conc, concExecs))},
	)
	return t, nil
}

// prepWorkload builds a small uncertain table and the aggregation query
// Prep executes against it.
func prepWorkload(cfg Config, rows int) (*audb.Database, string) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := audb.NewUncertainTable("r", "k", "grp", "val")
	for i := 0; i < rows; i++ {
		v := int64(rng.Intn(1000))
		spread := int64(rng.Intn(10))
		tbl.AddRow(audb.RangeRow{
			audb.CertainOf(audb.Int(int64(i))),
			audb.CertainOf(audb.Int(int64(rng.Intn(16)))),
			audb.Range(audb.Int(v-spread), audb.Int(v), audb.Int(v+spread)),
		}, audb.CertainMult(1))
	}
	db := audb.New()
	db.Add(tbl)
	db.SetOptions(audb.Options{Workers: cfg.Workers})
	return db, `SELECT grp, sum(val) AS s, count(*) AS n FROM r WHERE k >= 0 GROUP BY grp`
}
