package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/client"
	"github.com/audb/audb/internal/server"
)

// Net measures the network service layer (not a paper figure): the prep
// workload executed through audbd over loopback TCP by 1, 4 and 16
// concurrent client connections, reporting throughput and p50/p99
// latency per level, against the in-process baseline. Before timing,
// the remote result is checked bit-identical to the in-process result
// on every engine — the service layer must not change answers.
func Net(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(2048, 512)
	itersPerClient := cfg.size(300, 60)
	levels := []int{1, 4, 16}

	db, query := prepWorkload(cfg, rows)
	srv := server.New(db, server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("net: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		<-serveErr
	}()
	addr := lis.Addr().String()

	// Correctness gate: remote answers must be bit-identical to the
	// in-process ones on every engine before any timing is reported.
	check, err := client.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("net: %w", err)
	}
	for _, eng := range []audb.Engine{audb.EngineNative, audb.EngineRewrite, audb.EngineSGW} {
		local, err := db.QueryContext(ctx, query, audb.WithEngine(eng))
		if err != nil {
			check.Close()
			return nil, fmt.Errorf("net: in-process %s: %w", eng, err)
		}
		remote, err := check.Query(ctx, query, client.WithEngine(eng))
		if err != nil {
			check.Close()
			return nil, fmt.Errorf("net: remote %s: %w", eng, err)
		}
		if local.Sort().String() != remote.Sort().String() {
			check.Close()
			return nil, fmt.Errorf("net: remote result differs from in-process on engine %s", eng)
		}
	}
	check.Close()

	t := &Table{
		ID:      "net",
		Title:   "audbd service layer: concurrent client throughput",
		Headers: []string{"mode", "clients", "execs", "total_ms", "qps", "p50_ms", "p99_ms"},
		Notes: []string{
			fmt.Sprintf("rows=%d iters/client=%d loopback TCP; query: %s", rows, itersPerClient, query),
			"remote results verified bit-identical to in-process on all engines before timing",
		},
	}

	// In-process baseline: same query, same iteration count, no wire.
	var baseLat []time.Duration
	base, err := timeIt(func() error {
		for i := 0; i < itersPerClient; i++ {
			lat, err := timeIt(func() error {
				_, err := db.QueryContext(ctx, query)
				return err
			})
			if err != nil {
				return err
			}
			baseLat = append(baseLat, lat)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("net: baseline: %w", err)
	}
	t.Rows = append(t.Rows, netRow("in-process", 1, itersPerClient, base, baseLat))

	for _, clients := range levels {
		conns := make([]*client.Conn, clients)
		for i := range conns {
			if conns[i], err = client.Dial(addr); err != nil {
				return nil, fmt.Errorf("net: dial: %w", err)
			}
		}
		lats := make([][]time.Duration, clients)
		errs := make([]error, clients)
		total, _ := timeIt(func() error {
			var wg sync.WaitGroup
			wg.Add(clients)
			for w := 0; w < clients; w++ {
				go func(w int) {
					defer wg.Done()
					c := conns[w]
					for i := 0; i < itersPerClient; i++ {
						lat, err := timeIt(func() error {
							_, err := c.Query(ctx, query)
							return err
						})
						if err != nil {
							errs[w] = err
							return
						}
						lats[w] = append(lats[w], lat)
					}
				}(w)
			}
			wg.Wait()
			return nil
		})
		for _, c := range conns {
			c.Close()
		}
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("net: %d clients: %w", clients, err)
			}
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		t.Rows = append(t.Rows, netRow("remote", clients, len(all), total, all))
	}
	return t, nil
}

// netRow renders one throughput/latency row.
func netRow(mode string, clients, execs int, total time.Duration, lats []time.Duration) []string {
	qps := "n/a"
	if total > 0 {
		qps = fmt.Sprintf("%.0f", float64(execs)/total.Seconds())
	}
	return []string{
		mode, fmt.Sprint(clients), fmt.Sprint(execs), ms(total), qps,
		ms(percentile(lats, 0.50)), ms(percentile(lats, 0.99)),
	}
}

// percentile returns the p-quantile (0..1) of the latency sample.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
