package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/baselines"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/tpch"
)

// pdbenchQueries is the SPJ workload of Figures 10a/10b.
var pdbenchQueries = []string{"PB1", "PB2", "PB3"}

// runPDBenchSystems times the whole SPJ workload on every system and
// returns the per-system total durations. opts should already carry the
// configured worker count (Config.opts).
func runPDBenchSystems(ctx context.Context, d *pdbenchData, opts core.Options) (map[string]time.Duration, error) {
	totals := map[string]time.Duration{}
	sgw, err := d.audb.SGWContext(ctx)
	if err != nil {
		return nil, err
	}
	for _, q := range pdbenchQueries {
		// The MayBMS/Trio baselines predate the context plumbing; check at
		// segment boundaries so Ctrl-C still lands between measurements.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan, err := tpch.Compile(q, d.cat)
		if err != nil {
			return nil, err
		}
		// Det: selected-guess query processing.
		dt, err := timeIt(func() error { _, e := bag.Exec(ctx, plan, sgw); return e })
		if err != nil {
			return nil, fmt.Errorf("%s det: %w", q, err)
		}
		totals["Det"] += dt
		// UA-DB.
		dt, err = timeIt(func() error { _, e := baselines.ExecUADB(ctx, plan, d.uadb); return e })
		if err != nil {
			return nil, fmt.Errorf("%s uadb: %w", q, err)
		}
		totals["UA-DB"] += dt
		// AU-DB (native engine with the split+Cpr join optimization).
		dt, err = timeIt(func() error { _, e := core.Exec(ctx, plan, d.audb, opts); return e })
		if err != nil {
			return nil, fmt.Errorf("%s audb: %w", q, err)
		}
		totals["AU-DB"] += dt
		// Libkin-style certain answers.
		dt, err = timeIt(func() error { _, e := baselines.ExecLibkin(ctx, plan, d.libkin); return e })
		if err != nil {
			return nil, fmt.Errorf("%s libkin: %w", q, err)
		}
		totals["Libkin"] += dt
		// MayBMS-style possible answers.
		dt, err = timeIt(func() error { _, e := baselines.ExecMayBMS(plan, d.xdb); return e })
		if err != nil {
			return nil, fmt.Errorf("%s maybms: %w", q, err)
		}
		totals["MayBMS"] += dt
		// MCDB-style sampling (10 worlds).
		dt, err = timeIt(func() error { _, e := baselines.ExecMCDB(ctx, plan, d.xdb, 10, 7); return e })
		if err != nil {
			return nil, fmt.Errorf("%s mcdb: %w", q, err)
		}
		totals["MCDB"] += dt
	}
	return totals, nil
}

var fig10Systems = []string{"Det", "UA-DB", "AU-DB", "Libkin", "MayBMS", "MCDB"}

// Fig10a reproduces Figure 10a: runtime of the PDBench SPJ workload
// normalized to deterministic SGQP, varying the amount of uncertainty.
func Fig10a(ctx context.Context, cfg Config) (*Table, error) {
	scale := cfg.sizef(0.05, 0.01)
	t := &Table{
		ID:      "fig10a",
		Title:   "PDBench SPJ workload, runtime / Det-runtime, varying uncertainty",
		Headers: append([]string{"uncertainty"}, fig10Systems...),
		Notes: []string{
			fmt.Sprintf("scale=%.3f (in-memory engine; see EXPERIMENTS.md for the SF mapping)", scale),
			"alternatives span the whole domain (PDBench worst case)",
		},
	}
	uncs := []float64{0.02, 0.05, 0.10, 0.30}
	if cfg.Tiny {
		uncs = []float64{0.02, 0.30}
	}
	for _, unc := range uncs {
		d := buildPDBench(scale, unc, 1.0, cfg.Seed)
		totals, err := runPDBenchSystems(ctx, d, cfg.opts(core.Options{JoinCompression: 64}))
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.0f%%", unc*100)}
		for _, sys := range fig10Systems {
			row = append(row, ratio(totals[sys], totals["Det"]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10b reproduces Figure 10b: the same workload at 2% uncertainty,
// varying the database size.
func Fig10b(ctx context.Context, cfg Config) (*Table, error) {
	scales := []float64{0.02, 0.1, 0.5}
	labels := []string{"0.1x", "1x", "10x"}
	if cfg.quickish() {
		scales = []float64{0.005, 0.01, 0.05}
	}
	if cfg.Tiny {
		scales = []float64{0.002, 0.004, 0.01}
	}
	t := &Table{
		ID:      "fig10b",
		Title:   "PDBench SPJ workload, runtime / Det-runtime, varying database size (2% uncertainty)",
		Headers: append([]string{"size"}, fig10Systems...),
	}
	for i, scale := range scales {
		d := buildPDBench(scale, 0.02, 1.0, cfg.Seed)
		totals, err := runPDBenchSystems(ctx, d, cfg.opts(core.Options{JoinCompression: 64}))
		if err != nil {
			return nil, err
		}
		row := []string{labels[i]}
		for _, sys := range fig10Systems {
			row = append(row, ratio(totals[sys], totals["Det"]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
