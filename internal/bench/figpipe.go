package bench

import (
	"context"
	"fmt"
	"runtime"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/phys"
	"github.com/audb/audb/internal/ra"
)

// Pipe is not a paper figure: it compares the pipelined physical executor
// (internal/phys) against the materializing reference on the plans the
// pipeline is built for — the streaming chain Scan→Select→Project→Limit
// (no intermediate relation is ever materialized; peak intermediate state
// is O(batch) + O(limit)) and the fused top-k ORDER BY ... LIMIT (O(k)
// candidate state instead of a full sort + merge). One row per
// (plan, executor): wall time, total bytes allocated, allocation count and
// the live-heap growth across the run — the peak-memory proxy the
// streaming executor is supposed to flatten.
func Pipe(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(400000, 60000)
	_, db := wideData(rows, 4, 1000, 0.05, 0.05, cfg.Seed)

	chain := &ra.Limit{
		N: 100,
		Child: &ra.Project{
			Cols: []ra.ProjCol{
				{E: expr.Col(0, "a0"), Name: "a0"},
				{E: expr.Add(expr.Col(1, "a1"), expr.Col(2, "a2")), Name: "s"},
			},
			Child: &ra.Select{
				Child: &ra.Scan{Table: "t"},
				Pred:  expr.Lt(expr.Col(1, "a1"), expr.CInt(700)),
			},
		},
	}
	topk := &ra.Limit{
		N:     10,
		Child: &ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{1}},
	}
	filter := &ra.Select{
		Child: &ra.Scan{Table: "t"},
		Pred:  expr.Lt(expr.Col(1, "a1"), expr.CInt(500)),
	}

	t := &Table{
		ID:      "pipe",
		Title:   "pipelined vs materialized executor: latency and allocation",
		Headers: []string{"plan", "executor", "seconds", "alloc MB", "allocs", "live-heap MB"},
		Notes: []string{
			fmt.Sprintf("%d input rows; chain = scan>select>project>limit(100), top-k = order-by+limit(10)", rows),
			"alloc MB / allocs: total heap allocation per execution; live-heap MB: heap growth while the query runs (peak-memory proxy)",
			"results are bit-identical across executors (internal/phys property tests)",
		},
	}

	plans := []struct {
		label string
		plan  ra.Node
	}{
		{"stream-chain", chain},
		{"top-k", topk},
		{"select", filter},
	}
	opts := cfg.opts(core.Options{})
	for _, p := range plans {
		for _, mode := range []string{"pipelined", "materialized"} {
			run := func() error {
				var err error
				if mode == "pipelined" {
					_, err = phys.Exec(ctx, p.plan, db, phys.Options{Exec: opts})
				} else {
					_, err = core.Exec(ctx, p.plan, db, opts)
				}
				return err
			}
			// Warm up once (lazily grown buffers, map sizing), then
			// measure a single execution with before/after heap stats.
			if err := run(); err != nil {
				return nil, fmt.Errorf("pipe %s/%s: %w", p.label, mode, err)
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			dt, err := timeIt(run)
			if err != nil {
				return nil, fmt.Errorf("pipe %s/%s: %w", p.label, mode, err)
			}
			runtime.ReadMemStats(&after)
			// A mid-run GC can shrink HeapAlloc below the baseline; clamp
			// the live-heap delta at zero instead of underflowing uint64.
			liveGrowth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
			if liveGrowth < 0 {
				liveGrowth = 0
			}
			t.Rows = append(t.Rows, []string{
				p.label, mode, secs(dt),
				fmt.Sprintf("%.1f", float64(after.TotalAlloc-before.TotalAlloc)/(1<<20)),
				fmt.Sprintf("%d", after.Mallocs-before.Mallocs),
				fmt.Sprintf("%.1f", float64(liveGrowth)/(1<<20)),
			})
		}
	}
	return t, nil
}
