package bench

import (
	"context"
	"fmt"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/translate"
)

// CBO is not a paper figure: it measures what the cost-based planner
// (statistics + greedy join reordering + stats-driven physical lowering)
// buys over the rule-only optimizer on the native engine. The workloads
// write join chains in an adversarial order — the two large, dense
// tables first, the tiny selective table last — so the rule-only plan
// materializes a huge intermediate join before the selective table
// prunes it, while the cost-based plan starts from the tiny table:
//
//   - cbo-3way: t1 |x| t2 dense equi-join (domain ~ rows/16), then a
//     tiny filtered table keyed into t2.
//   - cbo-4way: the same with one more large table appended.
//
// Both orders run through the session API with the rule optimizer ON —
// the baseline is WithCostModel(CostOff), so the measured gap is the
// cost-based pass alone — and results are verified bit-identical before
// any timing is reported.
func CBO(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(8000, 2000)
	// Dense join keys make the adversarial first join's output a real
	// cost; a small uncertainty fraction on the keys exercises the
	// quadratic overlap quadrants the cost model prices in.
	domain := int64(rows / 16)
	if domain < 4 {
		domain = 4
	}
	tinyRows := rows / 100
	if tinyRows < 4 {
		tinyRows = 4
	}

	db := audb.New()
	t1, t2 := synth.JoinPair(rows, domain, cfg.Seed)
	t3, t4 := synth.JoinPair(tinyRows, int64(tinyRows), cfg.Seed+1)
	x := synth.Inject(bag.DB{"t1": t1, "t2": t2}, synth.InjectConfig{
		CellProb: 0.01, MaxAlts: 4, RangeFrac: 0.02,
		EligibleCols: []int{0}, Seed: cfg.Seed + 2,
	})
	db.AddRelation("t1", translate.XDB(x["t1"]))
	db.AddRelation("t2", translate.XDB(x["t2"]))
	db.AddRelation("t3", core.FromDeterministic(t3))
	db.AddRelation("t4", core.FromDeterministic(t4))

	// t3.a1 is uniform over [1, tinyRows]; <= tinyRows/2 keeps ~half of
	// the already-tiny table.
	sel := tinyRows / 2
	if sel < 1 {
		sel = 1
	}
	workloads := []struct {
		label string
		query string
	}{
		{"cbo-3way", fmt.Sprintf(
			`SELECT t1.a1, t2.a1, t3.a1 FROM t1, t2, t3 `+
				`WHERE t1.a0 = t2.a0 AND t2.a1 = t3.a0 AND t3.a1 <= %d`, sel)},
		{"cbo-4way", fmt.Sprintf(
			`SELECT t1.a1, t4.a1 FROM t1, t2, t4, t3 `+
				`WHERE t1.a0 = t2.a0 AND t2.a1 = t3.a0 AND t3.a1 = t4.a0 AND t3.a1 <= %d`, sel)},
	}

	t := &Table{
		ID:      "cbo",
		Title:   "cost-based planner: join reordering vs written order (native engine)",
		Headers: []string{"workload", "cost_off_s", "cost_on_s", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d rows/large table, join domain %d, tiny table %d rows, 1%% uncertain join keys", rows, domain, tinyRows),
			"rule optimizer ON in both runs; WithCostModel(CostOff) is the baseline",
			"results verified bit-identical before timing",
		},
	}
	for _, w := range workloads {
		var offRes, onRes *core.Relation
		off, err := timeIt(func() error {
			r, e := db.QueryContext(ctx, w.query,
				audb.WithCostModel(audb.CostOff), audb.WithWorkers(cfg.Workers))
			offRes = r
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("%s cost-off: %w", w.label, err)
		}
		on, err := timeIt(func() error {
			r, e := db.QueryContext(ctx, w.query,
				audb.WithCostModel(audb.CostOn), audb.WithWorkers(cfg.Workers))
			onRes = r
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("%s cost-on: %w", w.label, err)
		}
		if offRes.Sort().String() != onRes.Sort().String() {
			return nil, fmt.Errorf("%s: cost-based result differs from cost-off", w.label)
		}
		t.Rows = append(t.Rows, []string{
			w.label, secs(off), secs(on), ratio(off, on),
		})
	}
	return t, nil
}
