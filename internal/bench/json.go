package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// Result is the machine-readable form of one experiment run, written by
// audbench -json alongside the rendered table so CI and plotting
// scripts can consume experiment output without screen-scraping.
type Result struct {
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Paper      string     `json:"paper,omitempty"`
	Mode       string     `json:"mode"` // tiny, quick or full
	Seed       int64      `json:"seed"`
	Workers    int        `json:"workers"`
	Headers    []string   `json:"headers"`
	Rows       [][]string `json:"rows"`
	// Series re-keys the row data by column header: Series[h][i] is the
	// h column of row i. Redundant with Rows but what plotting wants.
	Series map[string][]string `json:"series"`
	Notes  []string            `json:"notes,omitempty"`
	TookMS float64             `json:"took_ms"`
}

// JSONResult assembles the machine-readable result for one finished
// experiment.
func JSONResult(t *Table, paper, mode string, seed int64, workers int, took time.Duration) Result {
	r := Result{
		Experiment: t.ID,
		Title:      t.Title,
		Paper:      paper,
		Mode:       mode,
		Seed:       seed,
		Workers:    workers,
		Headers:    t.Headers,
		Rows:       t.Rows,
		Series:     make(map[string][]string, len(t.Headers)),
		Notes:      t.Notes,
		TookMS:     float64(took.Microseconds()) / 1000,
	}
	for i, h := range t.Headers {
		col := make([]string, 0, len(t.Rows))
		for _, row := range t.Rows {
			if i < len(row) {
				col = append(col, row[i])
			}
		}
		r.Series[h] = col
	}
	return r
}

// WriteJSON writes r to BENCH_<experiment>.json in dir and returns the
// path.
func WriteJSON(dir string, r Result) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+r.Experiment+".json")
	return path, os.WriteFile(path, append(b, '\n'), 0o644)
}
