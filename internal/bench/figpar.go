package bench

import (
	"context"
	"fmt"
	"runtime"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
)

// Par is not a paper figure: it reports the serial-vs-parallel scaling of
// this implementation's worker-pool executor on the two hot operators the
// paper optimizes — the hybrid overlap join (Section 10.4 territory) and
// grouping aggregation (Section 10.5) — plus a plain selection for the
// chunked-map path. One row per (operator, worker count), with the speedup
// over the Workers=1 reference evaluation.
func Par(ctx context.Context, cfg Config) (*Table, error) {
	joinRows := cfg.size(8000, 2000)
	aggRows := cfg.size(200000, 30000)

	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > counts[len(counts)-1] {
		counts = append(counts, n)
	}

	t := &Table{
		ID:      "par",
		Title:   "parallel executor scaling: seconds and speedup vs Workers=1",
		Headers: []string{"operator", "workers", "seconds", "speedup"},
		Notes: []string{
			fmt.Sprintf("join: %d rows/side hybrid equi-join; agg+select: %d rows", joinRows, aggRows),
			"results are identical across worker counts (see TestParallelMatchesSerial)",
		},
	}

	joinDB := joinData(joinRows, 0.03, 0.02, cfg.Seed)
	_, aggDB := wideData(aggRows, 4, 1000, 0.05, 0.05, cfg.Seed)

	cases := []struct {
		label string
		db    core.DB
		plan  ra.Node
		opts  core.Options
	}{
		{"hybrid-join", joinDB, equiJoinPlan(), core.Options{}},
		{"agg", aggDB, &ra.Agg{
			Child:   &ra.Scan{Table: "t"},
			GroupBy: []int{0},
			Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "a1"), Name: "s"}},
		}, core.Options{AggCompression: 64}},
		{"select", aggDB, &ra.Select{
			Child: &ra.Scan{Table: "t"},
			Pred:  expr.Lt(expr.Col(1, "a1"), expr.CInt(500)),
		}, core.Options{}},
	}
	for _, c := range cases {
		var serial float64
		for _, w := range counts {
			opts := c.opts
			opts.Workers = w
			dt, err := timeIt(func() error {
				_, e := core.Exec(ctx, c.plan, c.db, opts)
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", c.label, w, err)
			}
			sec := dt.Seconds()
			if w == 1 {
				serial = sec
			}
			speedup := "1.00"
			if w > 1 && sec > 0 {
				speedup = fmt.Sprintf("%.2f", serial/sec)
			}
			t.Rows = append(t.Rows, []string{
				c.label, fmt.Sprintf("%d", w), secs(dt), speedup,
			})
		}
	}
	return t, nil
}
