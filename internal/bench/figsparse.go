package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/translate"
)

// Sparse is not a paper figure: it measures the sparse storage
// representation on the mostly-certain regime it targets. The dataset is
// ≥90% certain: a wide fact table whose values are all certain (the
// common case the fast paths exploit), a small certain dimension table,
// and a "mix" table whose uncertainty is concentrated in one dedicated
// column — the U-relations-style vertical split where every other column
// stays flat. One row per metric comparing dense and sparse: resident
// memory of each representation, and the select/join hot loops (which run
// the certain-only kernels on the sparse side). Results are verified
// bit-identical between representations before anything is timed.
func Sparse(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(300000, 40000)
	const cols, domain = 8, 1000
	certSrc := translateWide("t", rows, cols, domain, 0, nil, cfg.Seed)
	dimSrc := translateWide("s", 2000, 2, domain, 0, nil, cfg.Seed+7)
	// Uncertainty concentrated in the last column: 10% of its cells, so
	// ~98.8% of the table's values stay certain and 7 of 8 columns flat.
	mixSrc := translateWide("mix", rows/4, cols, domain, 0.10, []int{cols - 1}, cfg.Seed+13)

	type reprPair struct{ dense, sparse *core.Relation }
	build := func(rel *core.Relation) (reprPair, [2]float64) {
		var p reprPair
		var mb [2]float64
		p.dense, mb[0] = rebuildMeasured(rel, core.ReprForceDense)
		p.sparse, mb[1] = rebuildMeasured(rel, core.ReprForceSparse)
		return p, mb
	}
	cert, certMB := build(certSrc)
	dim, _ := build(dimSrc)
	mix, mixMB := build(mixSrc)
	if !cert.sparse.FastCertain() {
		return nil, fmt.Errorf("sparse: certain table did not qualify for the fast path")
	}
	if mix.sparse.FastCertain() || !mix.sparse.IsSparse() {
		return nil, fmt.Errorf("sparse: mix table has the wrong representation")
	}

	denseDB := core.DB{"t": cert.dense, "s": dim.dense, "mix": mix.dense}
	sparseDB := core.DB{"t": cert.sparse, "s": dim.sparse, "mix": mix.sparse}

	plans := []struct {
		label string
		plan  ra.Node
	}{
		{"select", &ra.Select{
			Child: &ra.Scan{Table: "t"},
			Pred:  expr.Lt(expr.Col(1, "a1"), expr.CInt(domain/2)),
		}},
		{"join", &ra.Join{
			Left:  &ra.Scan{Table: "t"},
			Right: &ra.Scan{Table: "s"},
			Cond:  expr.Eq(expr.Col(0, "t.a0"), expr.Col(cols, "s.a0")),
		}},
		{"select-mix", &ra.Select{
			Child: &ra.Scan{Table: "mix"},
			Pred:  expr.Lt(expr.Col(1, "a1"), expr.CInt(domain/2)),
		}},
	}

	t := &Table{
		ID:      "sparse",
		Title:   "sparse vs dense storage: resident memory and certain-only hot loops",
		Headers: []string{"metric", "dense", "sparse", "dense/sparse"},
		Notes: []string{
			fmt.Sprintf("t: %d rows x %d certain columns; s: 2000 rows x 2 certain columns; mix: %d rows with 10%% uncertainty in one column", rows, cols, rows/4),
			"resident MB: live-heap growth while building each representation (GC-settled)",
			"select/join run the certain-only kernels on the sparse side; select-mix shows the dense-fallback cost on a partially uncertain table",
			"every plan's result is verified bit-identical between representations before timing",
		},
	}
	mem := func(label string, mb [2]float64) {
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.1f MB", mb[0]),
			fmt.Sprintf("%.1f MB", mb[1]),
			fmt.Sprintf("%.2f", mb[0]/mb[1]),
		})
	}
	mem("resident t", certMB)
	mem("resident mix", mixMB)

	opts := cfg.opts(core.Options{})
	for _, p := range plans {
		// Correctness first: both representations must produce the same
		// relation, tuple for tuple, before either is timed.
		dres, err := core.Exec(ctx, p.plan, denseDB, opts)
		if err != nil {
			return nil, fmt.Errorf("sparse %s (dense): %w", p.label, err)
		}
		sres, err := core.Exec(ctx, p.plan, sparseDB, opts)
		if err != nil {
			return nil, fmt.Errorf("sparse %s (sparse): %w", p.label, err)
		}
		if dh, sh := fingerprint(dres), fingerprint(sres); dh != sh {
			return nil, fmt.Errorf("sparse %s: representations diverged (%x vs %x)", p.label, dh, sh)
		}
		measure := func(db core.DB) (time.Duration, error) {
			runtime.GC()
			return timeIt(func() error {
				_, err := core.Exec(ctx, p.plan, db, opts)
				return err
			})
		}
		dt, err := measure(denseDB)
		if err != nil {
			return nil, fmt.Errorf("sparse %s (dense): %w", p.label, err)
		}
		st, err := measure(sparseDB)
		if err != nil {
			return nil, fmt.Errorf("sparse %s (sparse): %w", p.label, err)
		}
		t.Rows = append(t.Rows, []string{
			p.label + " seconds", secs(dt), secs(st), ratio(dt, st),
		})
	}
	return t, nil
}

// translateWide builds one AU-relation: a wide deterministic table with
// uncertainty injected into the given columns only (none when cellProb is
// 0 or eligible is empty).
func translateWide(name string, rows, cols int, domain int64, cellProb float64, eligible []int, seed int64) *core.Relation {
	det := bag.DB{name: synth.WideTable(rows, cols, domain, seed)}
	x := synth.Inject(det, synth.InjectConfig{
		CellProb: cellProb, MaxAlts: 8, RangeFrac: 0.05,
		EligibleCols: eligible, Seed: seed + 1,
	})
	return translate.XDB(x[name])
}

// rebuildMeasured rebuilds rel under the given representation mode and
// reports the live-heap growth attributable to the copy, in MB — the
// resident-memory comparison the sparse representation is about.
func rebuildMeasured(rel *core.Relation, mode core.ReprMode) (*core.Relation, float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b := core.NewRelationBuilder(rel.Schema, rel.Len())
	_ = rel.EachTuple(func(t core.Tuple) error {
		b.Add(t)
		return nil
	})
	out := b.Finish(core.StoragePolicy{Mode: mode})
	runtime.GC()
	runtime.ReadMemStats(&after)
	// Pin the source past the final reading: its last use is the copy
	// loop above, so without this the settling GC could collect it inside
	// the measured window and drag the delta negative.
	runtime.KeepAlive(rel)
	live := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if live < 0 {
		live = 0
	}
	return out, float64(live) / (1 << 20)
}

// fingerprint hashes a relation's rendered tuples in order, so two
// results can be compared for bit-identity without holding both rendered
// strings.
func fingerprint(rel *core.Relation) uint64 {
	h := fnv.New64a()
	_ = rel.EachTuple(func(t core.Tuple) error {
		fmt.Fprintf(h, "%v|%d,%d,%d\n", t.Vals, t.M.Lo, t.M.SG, t.M.Hi)
		return nil
	})
	return h.Sum64()
}
